// pm2sim -- lightweight component-scoped tracing.
//
// Tracing is off by default and costs one branch per call site when
// disabled. Enable globally with `Trace::set_level(...)` or per component,
// or via the PM2SIM_TRACE environment variable:
//   PM2SIM_TRACE=debug                 -> everything at debug
//   PM2SIM_TRACE=info,nmad=debug       -> info default, nmad at debug
#pragma once

#include <cstdarg>
#include <string>

#include "simcore/time.hpp"

namespace pm2::sim {

class Engine;

enum class TraceLevel : int {
  kOff = 0,
  kError = 1,
  kWarn = 2,
  kInfo = 3,
  kDebug = 4,
};

/// Global trace configuration + emission. All state is process-global since
/// the simulator is single-threaded.
class Trace {
 public:
  /// Set the default level for all components.
  static void set_level(TraceLevel level);

  /// Set the level for one component (e.g. "nmad", "pioman", "sched").
  static void set_level(const std::string& component, TraceLevel level);

  /// Parse a PM2SIM_TRACE-style spec; returns false on malformed input.
  static bool configure(const std::string& spec);

  /// Read PM2SIM_TRACE from the environment (called lazily on first use).
  static void configure_from_env();

  /// The engine whose clock timestamps trace lines (optional).
  static void attach_clock(const Engine* engine);

  static bool enabled(const char* component, TraceLevel level);

  /// printf-style emission; cheap no-op when the component/level is off.
  static void emit(const char* component, TraceLevel level, const char* fmt,
                   ...) __attribute__((format(printf, 3, 4)));
};

}  // namespace pm2::sim

/// Convenience macros: PM2_TRACE("nmad", kDebug, "posted pw %u", id);
#define PM2_TRACE(component, level, ...)                                      \
  do {                                                                        \
    if (::pm2::sim::Trace::enabled((component), ::pm2::sim::TraceLevel::level)) \
      ::pm2::sim::Trace::emit((component), ::pm2::sim::TraceLevel::level,     \
                              __VA_ARGS__);                                   \
  } while (0)
