#include "simcore/event_queue.hpp"

#include <algorithm>

namespace pm2::sim {

namespace {
constexpr std::size_t kArity = 4;
}

void EventQueue::grow_slots() {
  chunks_.push_back(std::make_unique<Slot[]>(kSlotChunk));
}

void EventQueue::heap_push(HeapEntry e) {
  heap_.push_back(e);
  std::size_t i = heap_.size() - 1;
  while (i > 0) {
    const std::size_t parent = (i - 1) / kArity;
    if (!later(heap_[parent], e)) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = e;
}

void EventQueue::sift_down(std::size_t i) {
  const HeapEntry e = heap_[i];
  const std::size_t n = heap_.size();
  for (;;) {
    const std::size_t first = kArity * i + 1;
    if (first >= n) break;
    std::size_t best = first;
    const std::size_t end = std::min(first + kArity, n);
    for (std::size_t c = first + 1; c < end; ++c) {
      if (later(heap_[best], heap_[c])) best = c;
    }
    if (!later(e, heap_[best])) break;
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = e;
}

void EventQueue::remove_top() {
  heap_[0] = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0);
}

void EventQueue::compact() {
  std::erase_if(heap_, [this](const HeapEntry& e) { return entry_dead(e); });
  // Floyd heap construction: sift down every internal node, bottom up.
  const std::size_t n = heap_.size();
  if (n >= 2) {
    for (std::size_t i = (n - 2) / kArity + 1; i-- > 0;) {
      sift_down(i);
    }
  }
  // The lane stays sorted under erasure, so it just shrinks in place.
  lane_.erase(lane_.begin(),
              lane_.begin() + static_cast<std::ptrdiff_t>(lane_head_));
  lane_head_ = 0;
  std::erase_if(lane_, [this](const HeapEntry& e) { return entry_dead(e); });
}

}  // namespace pm2::sim
