#include "simcore/event_queue.hpp"

#include <algorithm>
#include <cassert>

namespace pm2::sim {

EventHandle EventQueue::schedule(Time when, Callback cb) {
  auto dead = std::make_shared<bool>(false);
  heap_.push_back(Entry{when, seq_++, std::move(cb), dead});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  ++live_;
  return EventHandle(std::move(dead));
}

bool EventQueue::cancel(EventHandle& h) {
  if (!h.pending()) return false;
  *h.state_ = true;
  assert(live_ > 0);
  --live_;
  return true;
}

void EventQueue::drop_dead() {
  while (!heap_.empty() && *heap_.front().dead) {
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    heap_.pop_back();
  }
}

Time EventQueue::next_time() {
  drop_dead();
  return heap_.empty() ? kTimeInfinity : heap_.front().when;
}

std::pair<Time, EventQueue::Callback> EventQueue::pop() {
  drop_dead();
  assert(!heap_.empty() && "pop() on empty EventQueue");
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  Entry e = std::move(heap_.back());
  heap_.pop_back();
  *e.dead = true;  // mark fired so handles see it as no-longer-pending
  assert(live_ > 0);
  --live_;
  return {e.when, std::move(e.cb)};
}

}  // namespace pm2::sim
