// pm2sim -- binary trace records and the hot-path record sink contract.
//
// The high-throughput telemetry path (obs::TraceLog) stores timeline and
// flow-lifecycle events as fixed-size binary records instead of JSON: the
// producer side is a lock-free per-partition ring write (reserve/commit on
// an SPSC head/tail pair), with no mutex, no string formatting and no
// allocation. Strings are interned once (cold path) into small ids; the
// offline converter resolves them back when it renders ChromeTrace JSON.
//
// This header defines only what the simcore layer needs to *produce*
// records (ChromeTrace delegates here when a sink is attached); the ring
// buffers, the binary log format and the canonical merge live in
// src/obs/trace_ring.hpp / trace_log.hpp.
#pragma once

#include <cstdint>
#include <string_view>
#include <type_traits>

#include "simcore/time.hpp"

namespace pm2::sim {

/// Phase byte for flow-lifecycle stamps (obs::FlowTracer). Not a Chrome
/// trace phase: the converter aggregates these records into the per-stage
/// latency breakdown and synthesizes the "s"/"t"/"f" flow-arrow events the
/// legacy direct-JSON path emitted inline.
inline constexpr std::uint8_t kFlowStampPhase = 0x80;

/// One fixed-size binary trace record (48 bytes, trivially copyable).
///
/// Field use by phase:
///   'X' complete   ts=start dur=duration     name/cat interned
///   'i' instant    ts=t                      name/cat interned
///   'C' counter    ts=t     id=value bits    name interned
///   'M' metadata   name=display name         cat=interned meta kind
///   's'/'t'/'f'    ts=t     id=flow id       name/cat interned
///   kFlowStampPhase ts=stamp time  dur=stage  id=flow id  pid/tid=node/core
///
/// `emit` is the virtual time at which the record was *created* (the
/// producing partition's clock), the primary canonical-merge key: within a
/// partition it is non-decreasing in ring order, and it is a virtual-time
/// property, so the merged order -- and the converted JSON -- is identical
/// for any host worker count.
struct TraceRecord {
  Time ts = 0;
  Time emit = 0;
  std::int64_t dur = 0;
  std::uint64_t id = 0;
  std::int32_t pid = 0;
  std::int32_t tid = 0;
  std::uint16_t name = 0;
  std::uint16_t cat = 0;
  std::uint8_t phase = 0;
  std::uint8_t pad[3] = {0, 0, 0};
};
static_assert(sizeof(TraceRecord) == 48, "binary log format is 48 B/record");
static_assert(std::is_trivially_copyable_v<TraceRecord>);

/// Where ChromeTrace sends records when the ring-buffer telemetry path is
/// enabled. Implemented by obs::TraceLog.
///
/// Contract: push() is called from simulation hot paths (any engine worker
/// thread, concurrently) and must be lock-free per partition; intern() is
/// callable from the same contexts (lock-free lookup, locked only on first
/// sight of a string); record_count()/to_json() are read-side calls --
/// drain the rings and must not race a concurrent drain.
class TraceRecordSink {
 public:
  virtual ~TraceRecordSink() = default;

  /// Id of @p s, assigning one on first sight. Never returns a nonzero id
  /// for the empty string (id 0 is reserved for "").
  virtual std::uint16_t intern(std::string_view s) = 0;

  /// Append a record to the calling partition's ring. The sink stamps
  /// `emit` (and routes by sim::tls_partition); callers fill everything
  /// else.
  virtual void push(TraceRecord r) = 0;

  /// Total records captured so far (drains the rings first).
  virtual std::size_t record_count() = 0;

  /// Render everything captured so far as ChromeTrace JSON in canonical
  /// (emit, partition, seq) order -- byte-stable for any worker count.
  virtual std::string to_json() = 0;
};

}  // namespace pm2::sim
