#include "simcore/engine.hpp"

#include <cassert>
#include <stdexcept>

namespace pm2::sim {

EventHandle Engine::schedule_at(Time when, EventQueue::Callback cb) {
  if (when < now_) {
    throw std::logic_error("Engine::schedule_at: time " + format_time(when) +
                           " is in the past (now = " + format_time(now_) + ")");
  }
  return queue_.schedule(when, std::move(cb));
}

EventHandle Engine::schedule_after(Time delay, EventQueue::Callback cb) {
  assert(delay >= 0 && "negative delay");
  return schedule_at(now_ + delay, std::move(cb));
}

bool Engine::step() {
  if (queue_.empty()) return false;
  auto [when, cb] = queue_.pop();
  assert(when >= now_ && "event queue went backwards");
  now_ = when;
  ++executed_;
  cb();
  return true;
}

void Engine::run() {
  stopped_ = false;
  while (!stopped_ && step()) {
  }
}

void Engine::run_until(Time deadline) {
  stopped_ = false;
  while (!stopped_ && queue_.next_time() <= deadline && step()) {
  }
  if (!stopped_ && now_ < deadline) now_ = deadline;
}

}  // namespace pm2::sim
