#include "simcore/engine.hpp"

#include <algorithm>
#include <barrier>
#include <cassert>
#include <stdexcept>
#include <thread>

namespace pm2::sim {

Engine::Engine() {
  parts_.push_back(std::make_unique<Partition>());
  mail_.resize(1);
}

Engine::~Engine() = default;

Engine::PartitionScope::PartitionScope(Engine& engine, int p)
    : prev_(tls_partition) {
  assert(p >= 0 && p < engine.num_partitions() && "partition out of range");
  (void)engine;
  tls_partition = p;
}

void Engine::configure_partitions(int n, Time lookahead) {
  if (n < 1) {
    throw std::invalid_argument("Engine::configure_partitions: n must be >= 1");
  }
  if (num_partitions() != 1 || part(0).queue.total_scheduled() != 0) {
    throw std::logic_error(
        "Engine::configure_partitions: must be called at most once, before "
        "any event is scheduled");
  }
  if (n == 1) return;
  if (lookahead <= 0) {
    throw std::invalid_argument(
        "Engine::configure_partitions: lookahead must be positive");
  }
  lookahead_ = lookahead;
  parts_.reserve(static_cast<std::size_t>(n));
  for (int i = 1; i < n; ++i) parts_.push_back(std::make_unique<Partition>());
  mail_.resize(static_cast<std::size_t>(n) * static_cast<std::size_t>(n));
}

void Engine::set_workers(int w) { workers_ = std::max(1, w); }

void Engine::set_mailbox_capacity(std::size_t cap) {
  mailbox_cap_ = std::max<std::size_t>(1, cap);
}

EventHandle Engine::schedule_at(Time when, EventQueue::Callback cb) {
  Partition& p = part(active_partition());
  if (when < p.now) {
    throw std::logic_error("Engine::schedule_at: time " + format_time(when) +
                           " is in the past (now = " + format_time(p.now) +
                           ")");
  }
  return p.queue.schedule(when, std::move(cb));
}

EventHandle Engine::schedule_after(Time delay, EventQueue::Callback cb) {
  assert(delay >= 0 && "negative delay");
  return schedule_at(now() + delay, std::move(cb));
}

void Engine::schedule_cross(int dst, Time when, EventQueue::Callback cb) {
  const int src = active_partition();
  if (num_partitions() == 1 || dst == src) {
    schedule_at(when, std::move(cb));
    return;
  }
  assert(dst >= 0 && dst < num_partitions() && "partition out of range");
  Partition& s = part(src);
  assert(when >= s.window_floor + lookahead_ &&
         "cross-partition event violates the lookahead contract");
  auto& box = mailbox(src, dst);
  box.push_back(CrossEvent{when, s.out_seq++, src, std::move(cb)});
  ++s.cross_sent;
  if (box.size() >= mailbox_cap_ && !s.window_abort) {
    ++s.overflows;
    s.window_abort = true;
  }
}

bool Engine::cancel(EventHandle& h) {
  return h.queue_ != nullptr && h.queue_->cancel(h);
}

bool Engine::step_partition(Partition& p) {
  if (p.queue.empty()) return false;
  auto [when, cb] = p.queue.pop();
  assert(when >= p.now && "event queue went backwards");
  p.now = when;
  ++p.executed;
  cb();
  return true;
}

bool Engine::step() {
  assert(num_partitions() == 1 && "step() is single-partition only");
  return step_partition(part(0));
}

void Engine::run() {
  stopped_.store(false, std::memory_order_relaxed);
  if (num_partitions() == 1) {
    while (!stopped() && step_partition(part(0))) {
    }
    return;
  }
  if (workers_ > 1) {
    run_windows_parallel(kTimeInfinity);
  } else {
    run_windows(kTimeInfinity);
  }
  if (!stopped()) {
    // Clean drain: join the clocks so now() reports the cluster-wide finish
    // time from every partition's point of view.
    Time tmax = 0;
    for (auto& p : parts_) tmax = std::max(tmax, p->now);
    for (auto& p : parts_) p->now = tmax;
  }
}

void Engine::run_until(Time deadline) {
  stopped_.store(false, std::memory_order_relaxed);
  if (num_partitions() == 1) {
    Partition& p = part(0);
    while (!stopped() && p.queue.next_time() <= deadline &&
           step_partition(p)) {
    }
    if (!stopped() && p.now < deadline) p.now = deadline;
    return;
  }
  if (workers_ > 1) {
    run_windows_parallel(deadline);
  } else {
    run_windows(deadline);
  }
  if (!stopped()) {
    for (auto& p : parts_) {
      if (p->now < deadline) p->now = deadline;
    }
  }
}

std::size_t Engine::pending_events() const {
  std::size_t n = 0;
  for (auto& p : parts_) n += p->queue.size();
  return n;
}

std::uint64_t Engine::events_executed() const {
  std::uint64_t n = 0;
  for (auto& p : parts_) n += p->executed;
  return n;
}

std::uint64_t Engine::cross_events() const {
  std::uint64_t n = 0;
  for (auto& p : parts_) n += p->cross_sent;
  return n;
}

std::uint64_t Engine::mailbox_overflows() const {
  std::uint64_t n = 0;
  for (auto& p : parts_) n += p->overflows;
  return n;
}

Time Engine::window_horizon(Time tmin) const {
  return tmin > kTimeInfinity - lookahead_ ? kTimeInfinity : tmin + lookahead_;
}

void Engine::drain_mailboxes_for(int dst) {
  Partition& d = part(dst);
  auto& scratch = d.inbox_scratch;
  scratch.clear();
  const int n = num_partitions();
  for (int src = 0; src < n; ++src) {
    auto& box = mailbox(src, dst);
    for (auto& e : box) scratch.push_back(std::move(e));
    box.clear();
  }
  // Canonical merge order: time, then source partition, then per-source send
  // sequence. Independent of which host thread ran the sender and of the
  // drain's gather order, so the target heap's tie-break sequence -- and
  // with it the whole downstream schedule -- is reproducible.
  std::sort(scratch.begin(), scratch.end(),
            [](const CrossEvent& a, const CrossEvent& b) {
              if (a.when != b.when) return a.when < b.when;
              if (a.src != b.src) return a.src < b.src;
              return a.seq < b.seq;
            });
  for (auto& e : scratch) {
    assert(e.when >= d.now && "cross event arrived in the past");
    d.queue.schedule(e.when, std::move(e.cb));
  }
  scratch.clear();
}

void Engine::run_window(int idx, Time tmin, Time horizon, Time deadline) {
  Partition& p = part(idx);
  p.window_floor = tmin;
  p.window_abort = false;
  const int prev = tls_partition;
  tls_partition = idx;
  while (!p.window_abort) {
    const Time next = p.queue.next_time();
    if (next >= horizon || next > deadline) break;
    step_partition(p);
  }
  tls_partition = prev;
}

void Engine::run_windows(Time deadline) {
  const int n = num_partitions();
  for (;;) {
    // Deliver everything the previous window posted before looking at the
    // heaps: T_min must see cross events too.
    for (int d = 0; d < n; ++d) drain_mailboxes_for(d);
    if (stopped()) break;
    Time tmin = kTimeInfinity;
    for (int p = 0; p < n; ++p) {
      tmin = std::min(tmin, part(p).queue.next_time());
    }
    if (tmin == kTimeInfinity || tmin > deadline) break;
    const Time horizon = window_horizon(tmin);
    ++windows_;
    for (int p = 0; p < n; ++p) run_window(p, tmin, horizon, deadline);
  }
}

void Engine::run_windows_parallel(Time deadline) {
  const int n = num_partitions();
  const int w = std::min(workers_, n);
  struct alignas(64) MinSlot {
    Time t = kTimeInfinity;
  };
  std::vector<MinSlot> local_min(static_cast<std::size_t>(w));
  std::barrier<> bar(w);

  // Partition p always runs on worker p % w, so a partition's fibers never
  // migrate between host threads within a run. Every worker recomputes the
  // same T_min from the shared slots after the barrier, so all of them take
  // the same break decision -- nobody can be left waiting on the barrier.
  auto worker = [&](int id) {
    for (;;) {
      Time lm = kTimeInfinity;
      for (int p = id; p < n; p += w) {
        drain_mailboxes_for(p);
        lm = std::min(lm, part(p).queue.next_time());
      }
      local_min[static_cast<std::size_t>(id)].t = lm;
      bar.arrive_and_wait();
      Time tmin = kTimeInfinity;
      for (int i = 0; i < w; ++i) {
        tmin = std::min(tmin, local_min[static_cast<std::size_t>(i)].t);
      }
      if (stopped() || tmin == kTimeInfinity || tmin > deadline) break;
      const Time horizon = window_horizon(tmin);
      if (id == 0) ++windows_;
      for (int p = id; p < n; p += w) run_window(p, tmin, horizon, deadline);
      bar.arrive_and_wait();
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(w - 1));
  for (int id = 1; id < w; ++id) threads.emplace_back(worker, id);
  worker(0);
  for (auto& t : threads) t.join();
}

}  // namespace pm2::sim
