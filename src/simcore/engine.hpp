// pm2sim -- the discrete-event engine.
//
// One Engine owns the virtual time of an entire simulated cluster. Every
// higher layer (machine model, thread scheduler, NICs, locks) expresses the
// passage of time as events scheduled here.
//
// The engine runs in one of two shapes:
//
//  * *single-partition* (the default): one event heap, one clock, strictly
//    single-host-threaded -- the deterministic reference every test and
//    figure was built on. Behavior is bit-identical to the pre-partitioned
//    engine.
//  * *partitioned*: configure_partitions(n, lookahead) splits the world
//    into n partitions, each with its own event heap, virtual clock and
//    executed-event counter. Partitions advance in conservative windows:
//    every partition may execute events strictly below
//    `horizon = T_min + lookahead` (T_min = earliest pending event across
//    all partitions) without seeing anything from its peers, because the
//    only cross-partition edges are simnet wire deliveries and those take
//    at least `lookahead` of virtual time. Cross-partition events travel
//    through per-(src,dst) mailboxes, drained at the window barrier in a
//    canonical (when, src, seq) order, so the schedule -- and therefore
//    every virtual timestamp and every CSV -- is byte-identical no matter
//    how many host workers execute the windows. set_workers(w) spreads the
//    partitions over w host threads (partition p runs on worker p % w,
//    always the same thread for a given run).
//
// Determinism contract: for a fixed partition count, runs are identical
// across worker counts (1 or many) and across repeated runs. Changing the
// *partition* count changes event interleaving order (each partition has
// its own tie-break sequence), so compare like with like.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "simcore/event_queue.hpp"
#include "simcore/partition.hpp"
#include "simcore/time.hpp"

namespace pm2::sim {

/// Discrete-event simulation engine: virtual clock(s) plus event queue(s).
///
/// Usage pattern:
/// ```
/// Engine eng;
/// eng.schedule_after(microseconds(3), [] { ... });
/// eng.run();                 // until no event remains
/// ```
/// Components never busy-wait on the host: "waiting" is always expressed as
/// a scheduled wake-up event or by simply not being scheduled at all.
class Engine {
 public:
  Engine();
  ~Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  // --- partitioning ---------------------------------------------------------

  /// Split the world into @p n partitions synchronized with conservative
  /// @p lookahead (ns, > 0 when n > 1). Must be called before any event is
  /// scheduled and at most once. n == 1 keeps the reference single-heap
  /// engine (lookahead is ignored).
  void configure_partitions(int n, Time lookahead);

  int num_partitions() const { return static_cast<int>(parts_.size()); }
  Time lookahead() const { return lookahead_; }

  /// Host worker threads used by run()/run_until() in partitioned mode
  /// (clamped to the partition count; 1 = run all partitions on the calling
  /// thread). The schedule is identical for every value.
  void set_workers(int w);
  int workers() const { return workers_; }

  /// The partition the calling thread is currently executing for (the
  /// ambient PartitionScope during setup, the event's partition during a
  /// run, 0 otherwise).
  int current_partition() const { return active_partition(); }

  /// RAII: route schedule_at()/schedule_after() and the partition-sharded
  /// singletons (metrics, simsan) to partition @p p for the current thread.
  /// Used around world construction so every component's events live in its
  /// node's partition.
  class PartitionScope {
   public:
    PartitionScope(Engine& engine, int p);
    ~PartitionScope() { tls_partition = prev_; }
    PartitionScope(const PartitionScope&) = delete;
    PartitionScope& operator=(const PartitionScope&) = delete;

   private:
    int prev_;
  };

  // --- clock & scheduling ---------------------------------------------------

  /// Current virtual time of the calling context's partition.
  Time now() const { return parts_[active_partition()]->now; }

  /// Virtual clock of one partition (diagnostics, tests).
  Time partition_now(int p) const { return part(p).now; }

  /// Schedule a callback at absolute virtual time @p when in the calling
  /// context's partition. @p when must not be in the past.
  EventHandle schedule_at(Time when, EventQueue::Callback cb);

  /// Schedule a callback @p delay nanoseconds from now (delay >= 0).
  EventHandle schedule_after(Time delay, EventQueue::Callback cb);

  /// Schedule a callback into partition @p dst at time @p when. The only
  /// legal producer of true cross-partition events is the simnet wire (the
  /// delivery time is what carries the lookahead): @p when must be at least
  /// the current window's floor plus the configured lookahead. Same-
  /// partition destinations degrade to a plain schedule_at. Cross events
  /// are buffered in a per-(src,dst) mailbox and merged into the target
  /// heap at the next window barrier in (when, src partition, send seq)
  /// order -- deterministic for any worker count.
  void schedule_cross(int dst, Time when, EventQueue::Callback cb);

  /// Cancel a pending event. Safe on fired/cancelled handles. (Cross-
  /// partition events are not cancellable -- they have no handle.)
  bool cancel(EventHandle& h);

  // --- running --------------------------------------------------------------

  /// Run until the queues drain or stop() is called.
  void run();

  /// Run events up to and including time @p deadline; clocks are left at
  /// @p deadline (single-partition: min(deadline, last fired event time) as
  /// before).
  void run_until(Time deadline);

  /// Run exactly one event if any is pending. Returns false if queue empty.
  /// Single-partition engines only.
  bool step();

  /// Request run()/run_until() to return. Single-partition: after the
  /// current event. Partitioned: at the next window boundary (every
  /// partition finishes the current window first, which keeps the stop
  /// point identical for every worker count).
  void stop() { stopped_.store(true, std::memory_order_relaxed); }

  /// True if stop() was called during the current/last run.
  bool stopped() const { return stopped_.load(std::memory_order_relaxed); }

  // --- introspection --------------------------------------------------------

  /// Number of live pending events (all partitions; excludes undelivered
  /// mailbox entries).
  std::size_t pending_events() const;

  /// Total events executed since construction (all partitions).
  std::uint64_t events_executed() const;

  /// Events executed by one partition (load-balance diagnostics).
  std::uint64_t partition_events_executed(int p) const {
    return part(p).executed;
  }

  /// Synchronization windows executed by partitioned runs.
  std::uint64_t windows_executed() const { return windows_; }

  /// Cross-partition events sent through mailboxes.
  std::uint64_t cross_events() const;

  /// Times a sender's window was cut short by a full mailbox.
  std::uint64_t mailbox_overflows() const;

  /// Soft mailbox capacity: when a (src,dst) mailbox reaches this many
  /// undelivered events, the sending partition ends its current window
  /// early (deterministic backpressure -- the events are delivered at the
  /// barrier as usual and the window resumes from the same horizon rule).
  void set_mailbox_capacity(std::size_t cap);
  std::size_t mailbox_capacity() const { return mailbox_cap_; }

 private:
  struct CrossEvent {
    Time when;
    std::uint64_t seq;  ///< per-source send sequence (ties: src, then seq)
    int src;
    EventQueue::Callback cb;
  };

  /// One shard of the world: event heap + clock + counters. Padded so two
  /// workers' hot partitions never share a cache line.
  struct alignas(64) Partition {
    EventQueue queue;
    Time now = 0;
    std::uint64_t executed = 0;
    std::uint64_t out_seq = 0;     ///< next cross-event send sequence
    std::uint64_t cross_sent = 0;
    std::uint64_t overflows = 0;
    Time window_floor = 0;         ///< T_min of the window being executed
    bool window_abort = false;     ///< backpressure: end this window early
    std::vector<CrossEvent> inbox_scratch;  ///< drain-time merge buffer
  };

  int active_partition() const {
    const int p = tls_partition;
    return p > 0 && p < static_cast<int>(parts_.size()) ? p : 0;
  }
  Partition& part(int p) { return *parts_.at(static_cast<std::size_t>(p)); }
  const Partition& part(int p) const {
    return *parts_.at(static_cast<std::size_t>(p));
  }
  std::vector<CrossEvent>& mailbox(int src, int dst) {
    return mail_[static_cast<std::size_t>(src) * parts_.size() +
                 static_cast<std::size_t>(dst)];
  }

  Time window_horizon(Time tmin) const;
  bool step_partition(Partition& p);
  void drain_mailboxes_for(int dst);
  /// Execute partition @p idx's share of the window [tmin, horizon).
  void run_window(int idx, Time tmin, Time horizon, Time deadline);
  void run_windows(Time deadline);
  void run_windows_parallel(Time deadline);

  std::vector<std::unique_ptr<Partition>> parts_;
  /// Per-(src,dst) mailboxes, indexed src * n + dst. Written only by src's
  /// executing thread during a window, drained only by dst's thread after
  /// the barrier -- the barrier is the hand-off, so no locks are needed.
  std::vector<std::vector<CrossEvent>> mail_;
  Time lookahead_ = 0;
  int workers_ = 1;
  std::size_t mailbox_cap_ = 4096;
  std::uint64_t windows_ = 0;
  std::atomic<bool> stopped_{false};
};

}  // namespace pm2::sim
