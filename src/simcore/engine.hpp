// pm2sim -- the discrete-event engine.
//
// One Engine owns the virtual clock of an entire simulated cluster. Every
// higher layer (machine model, thread scheduler, NICs, locks) expresses the
// passage of time as events scheduled here. The engine is strictly
// single-host-threaded and deterministic: identical programs produce
// identical event orders and identical virtual timestamps on every run.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "simcore/event_queue.hpp"
#include "simcore/time.hpp"

namespace pm2::sim {

/// Discrete-event simulation engine: a virtual clock plus an event queue.
///
/// Usage pattern:
/// ```
/// Engine eng;
/// eng.schedule_after(microseconds(3), [] { ... });
/// eng.run();                 // until no event remains
/// ```
/// Components never busy-wait on the host: "waiting" is always expressed as
/// a scheduled wake-up event or by simply not being scheduled at all.
class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current virtual time.
  Time now() const { return now_; }

  /// Schedule a callback at absolute virtual time @p when.
  /// @p when must not be in the past.
  EventHandle schedule_at(Time when, EventQueue::Callback cb);

  /// Schedule a callback @p delay nanoseconds from now (delay >= 0).
  EventHandle schedule_after(Time delay, EventQueue::Callback cb);

  /// Cancel a pending event. Safe on fired/cancelled handles.
  bool cancel(EventHandle& h) { return queue_.cancel(h); }

  /// Run until the queue drains or stop() is called.
  void run();

  /// Run events up to and including time @p deadline; the clock is left at
  /// min(deadline, time of last fired event >= now).
  void run_until(Time deadline);

  /// Run exactly one event if any is pending. Returns false if queue empty.
  bool step();

  /// Request run()/run_until() to return after the current event completes.
  void stop() { stopped_ = true; }

  /// True if stop() was called during the current/last run.
  bool stopped() const { return stopped_; }

  /// Number of live pending events.
  std::size_t pending_events() const { return queue_.size(); }

  /// Total events executed since construction (diagnostics / tests).
  std::uint64_t events_executed() const { return executed_; }

 private:
  EventQueue queue_;
  Time now_ = 0;
  std::uint64_t executed_ = 0;
  bool stopped_ = false;
};

}  // namespace pm2::sim
