// pm2sim -- small-buffer-optimized move-only callable.
//
// The event hot path fires millions of callbacks per simulated second;
// std::function heap-allocates any capture larger than its tiny internal
// buffer (two pointers on libstdc++), which makes every scheduler dispatch
// and NIC completion pay a malloc/free pair. InplaceFunction stores the
// callable inline in a caller-sized buffer instead, falling back to a single
// heap allocation only for captures that do not fit. The capacity is chosen
// per use site so that all in-tree captures stay inline.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace pm2::sim {

/// Move-only `void()` callable with @p Capacity bytes of inline storage.
///
/// Callables whose size, alignment and nothrow-movability allow it are
/// constructed directly in the inline buffer; moving the InplaceFunction
/// relocates them (move-construct + destroy source). Oversized callables are
/// heap-allocated once and owned; `heap_fallbacks()` counts such spills so
/// tests can assert the hot path never takes them.
template <std::size_t Capacity>
class InplaceFunction {
 public:
  InplaceFunction() noexcept = default;
  InplaceFunction(std::nullptr_t) noexcept {}  // NOLINT(google-explicit-constructor)

  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, InplaceFunction> &&
                                        std::is_invocable_r_v<void, D&>>>
  InplaceFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    if constexpr (fits_inline<D>) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      ops_ = &kInlineOps<D>;
    } else {
      ::new (static_cast<void*>(buf_)) D*(new D(std::forward<F>(f)));
      ops_ = &kHeapOps<D>;
      ++heap_fallbacks_;
    }
  }

  InplaceFunction(InplaceFunction&& other) noexcept : ops_(other.ops_) {
    if (ops_ != nullptr) {
      relocate_from(other);
    }
  }

  InplaceFunction& operator=(InplaceFunction&& other) noexcept {
    if (this != &other) {
      reset();
      ops_ = other.ops_;
      if (ops_ != nullptr) {
        relocate_from(other);
      }
    }
    return *this;
  }

  InplaceFunction(const InplaceFunction&) = delete;
  InplaceFunction& operator=(const InplaceFunction&) = delete;

  ~InplaceFunction() { reset(); }

  void operator()() {
    assert(ops_ != nullptr && "calling an empty InplaceFunction");
    ops_->invoke(buf_);
  }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  /// Destroy the held callable (if any); the function becomes empty.
  void reset() noexcept {
    if (ops_ != nullptr) {
      if (!ops_->trivial) ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  /// True if the held callable spilled to the heap (capture too large).
  bool on_heap() const noexcept { return ops_ != nullptr && ops_->heap; }

  /// Process-wide count of captures that did not fit inline (diagnostics;
  /// one counter per Capacity instantiation).
  static std::uint64_t heap_fallbacks() noexcept { return heap_fallbacks_; }

 private:
  struct Ops {
    void (*invoke)(void*);
    /// Move-construct the callable at @p dst from @p src, destroy @p src.
    void (*relocate)(void* dst, void* src);
    void (*destroy)(void*);
    bool heap;
    /// Trivially relocatable and destructible: moves are a memcpy, reset is
    /// a pointer clear. True for the scheduler's this+index captures, which
    /// dominate the hot path.
    bool trivial;
  };

  template <typename D>
  static constexpr bool fits_inline =
      sizeof(D) <= Capacity && alignof(D) <= alignof(std::max_align_t) &&
      std::is_nothrow_move_constructible_v<D>;

  template <typename D>
  static constexpr bool trivial_inline =
      fits_inline<D> && std::is_trivially_copyable_v<D> &&
      std::is_trivially_destructible_v<D>;

  /// Pre: ops_ == other.ops_ != nullptr. Moves the payload, empties other.
  void relocate_from(InplaceFunction& other) noexcept {
    if (ops_->trivial) {
      std::memcpy(buf_, other.buf_, Capacity);
    } else {
      ops_->relocate(buf_, other.buf_);
    }
    other.ops_ = nullptr;
  }

  template <typename D>
  static D* as(void* p) {
    return std::launder(reinterpret_cast<D*>(p));
  }

  template <typename D>
  inline static const Ops kInlineOps = {
      [](void* p) { (*as<D>(p))(); },
      [](void* dst, void* src) {
        D* s = as<D>(src);
        ::new (dst) D(std::move(*s));
        s->~D();
      },
      [](void* p) { as<D>(p)->~D(); },
      /*heap=*/false,
      /*trivial=*/trivial_inline<D>,
  };

  template <typename D>
  inline static const Ops kHeapOps = {
      [](void* p) { (**as<D*>(p))(); },
      [](void* dst, void* src) { ::new (dst) D*(*as<D*>(src)); },
      [](void* p) { delete *as<D*>(p); },
      /*heap=*/true,
      /*trivial=*/false,
  };

  inline static std::uint64_t heap_fallbacks_ = 0;

  alignas(std::max_align_t) unsigned char buf_[Capacity];
  const Ops* ops_ = nullptr;
};

}  // namespace pm2::sim
