// pm2sim -- virtual time.
//
// All simulated durations and instants are expressed in integer nanoseconds.
// A signed 64-bit count covers ~292 years of simulated time, far beyond any
// benchmark in this repository, while keeping arithmetic on differences safe.
#pragma once

#include <cstdint>
#include <limits>
#include <string>

namespace pm2::sim {

/// An instant or duration on the virtual clock, in nanoseconds.
using Time = std::int64_t;

/// Sentinel meaning "never" / "no deadline".
inline constexpr Time kTimeInfinity = std::numeric_limits<Time>::max();

/// @name Duration literals-as-functions
/// `nanoseconds(70)`, `microseconds(5)`, ... read naturally at call sites
/// and avoid any dependence on <chrono> conversions in hot paths.
///@{
constexpr Time nanoseconds(std::int64_t n) { return n; }
constexpr Time microseconds(std::int64_t n) { return n * 1000; }
constexpr Time milliseconds(std::int64_t n) { return n * 1000 * 1000; }
constexpr Time seconds(std::int64_t n) { return n * 1000 * 1000 * 1000; }
///@}

/// Convert a virtual duration to (double) microseconds, the unit used by all
/// figures in the paper.
constexpr double to_us(Time t) { return static_cast<double>(t) / 1e3; }

/// Convert a virtual duration to (double) seconds.
constexpr double to_sec(Time t) { return static_cast<double>(t) / 1e9; }

/// Render a duration human-readably ("3.214 us", "1.2 ms").
std::string format_time(Time t);

}  // namespace pm2::sim
