// pm2sim -- deterministic pseudo-random source (splitmix64 + xoshiro256**).
//
// Workload generators must not depend on std::mt19937's unspecified
// distribution implementations across standard libraries, so distributions
// are implemented here directly. Same seed => same stream, everywhere.
#pragma once

#include <cstdint>

namespace pm2::sim {

/// xoshiro256** seeded via splitmix64. Small, fast, well-distributed.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Uniform in [0, bound) without modulo bias. Pre: bound > 0.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Pre: lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Exponential with mean @p mean (> 0); used for arrival processes.
  double exponential(double mean);

  /// True with probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Split off an independent generator (for per-component determinism).
  Rng split();

 private:
  std::uint64_t s_[4];
};

}  // namespace pm2::sim
