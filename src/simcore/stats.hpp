// pm2sim -- statistics accumulators used by tests and the benchmark harness.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace pm2::sim {

/// Streaming accumulator: count / min / max / mean / variance (Welford).
/// Suitable for latency samples expressed in any unit.
class RunningStats {
 public:
  void add(double x);
  void clear();

  std::size_t count() const { return n_; }
  double min() const;
  double max() const;
  double mean() const;
  /// Unbiased sample variance; 0 when fewer than 2 samples.
  double variance() const;
  double stddev() const;

 private:
  std::size_t n_ = 0;
  double min_ = 0, max_ = 0;
  double mean_ = 0, m2_ = 0;
};

/// Reservoir of raw samples supporting exact percentiles; used where the
/// paper-style "median of many iterations" reporting is wanted.
class SampleSet {
 public:
  void add(double x) { samples_.push_back(x); }
  void clear() { samples_.clear(); }
  std::size_t count() const { return samples_.size(); }

  /// Exact percentile by nearest-rank on the sorted samples (p in [0,100]).
  double percentile(double p) const;
  double median() const { return percentile(50.0); }
  double min() const { return percentile(0.0); }
  double max() const { return percentile(100.0); }
  double mean() const;

  const std::vector<double>& samples() const { return samples_; }

 private:
  std::vector<double> samples_;
};

/// Fixed-bucket histogram for diagnostics (e.g. poll-interval distribution).
class Histogram {
 public:
  /// Buckets of equal width over [lo, hi); values outside are clamped into
  /// the first/last bucket. Pre: buckets >= 1, hi > lo.
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x);
  std::size_t bucket_count() const { return counts_.size(); }
  std::uint64_t bucket(std::size_t i) const { return counts_.at(i); }
  std::uint64_t total() const { return total_; }
  double bucket_lo(std::size_t i) const;
  double bucket_hi(std::size_t i) const;

  /// Multi-line ASCII rendering for debugging.
  std::string render(std::size_t width = 40) const;

 private:
  double lo_, hi_, width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace pm2::sim
