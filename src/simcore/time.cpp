#include "simcore/time.hpp"

#include <cstdio>

namespace pm2::sim {

std::string format_time(Time t) {
  char buf[64];
  const double ns = static_cast<double>(t);
  if (t < 0) {
    std::snprintf(buf, sizeof(buf), "%lld ns", static_cast<long long>(t));
  } else if (ns < 1e3) {
    std::snprintf(buf, sizeof(buf), "%lld ns", static_cast<long long>(t));
  } else if (ns < 1e6) {
    std::snprintf(buf, sizeof(buf), "%.3f us", ns / 1e3);
  } else if (ns < 1e9) {
    std::snprintf(buf, sizeof(buf), "%.3f ms", ns / 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.3f s", ns / 1e9);
  }
  return buf;
}

}  // namespace pm2::sim
