// pm2sim -- cancellable time-ordered event queue.
//
// The queue is the heart of the discrete-event engine. Keys are (time,
// sequence) pairs -- ties on time break by insertion order, so simulation
// runs are fully deterministic. Two structures hold pending entries:
//
//  * a *monotone lane*: events scheduled in nondecreasing key order append
//    to a sorted FIFO and pop off its front -- O(1), branch-predictable,
//    sequential memory. Discrete-event workloads are full of such streams
//    (timer ticks, monotone NIC wire completions, schedule_after(0) kicks),
//    and bulk schedule-then-run patterns ride entirely in the lane;
//  * a 4-ary implicit heap for everything else. Four 16-byte PODs per
//    cache line and half the sift-down depth of a binary heap, which is
//    what the pop-heavy engine loop is bound by at scale.
//
// pop() takes the smaller of (lane front, heap top); each schedule costs at
// most one extra comparison versus a pure heap.
//
// The hot path is allocation-free in steady state:
//  * callbacks live in slab-pooled slots as small-buffer-optimized
//    InplaceFunction objects (no std::function heap traffic); slots are
//    recycled through an intrusive free list threaded through their keys;
//  * handles carry the event's 64-bit key -- no shared_ptr control block
//    per event; a released slot can never match a stale key, so handles to
//    fired/cancelled events are detected in O(1) even after slot reuse;
//  * heap/lane entries are 16-byte PODs, so sifts move no callables.
//
// Cancellation is lazy: cancel() releases the slot immediately (the capture
// is destroyed, the handle goes stale) but leaves the heap/lane entry in
// place to be dropped when it reaches the front. To keep cancel-heavy
// workloads from retaining unbounded dead entries, both structures are
// compacted whenever dead entries outnumber both live ones and a fixed
// floor, which bounds dead_entries() at max(kCompactFloor, size()) after
// every operation.
#pragma once

#include <cassert>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "simcore/inplace_function.hpp"
#include "simcore/time.hpp"

namespace pm2::sim {

class EventQueue;

/// Inline capture budget for event callbacks. Sized so that every in-tree
/// capture fits without heap fallback; the largest is the NIC wire-done
/// completion (this + shared state + a user std::function, 56 bytes).
inline constexpr std::size_t kEventCallbackCapacity = 64;

/// Opaque handle to a scheduled event, usable to cancel it.
///
/// Handles are two words, trivially copyable, and go stale safely: a
/// handle's key names one specific (slot, schedule-sequence) pairing, so
/// once the event fires or is cancelled the handle reports !pending(), even
/// if the slot has been reused by a newer event. A handle must not be
/// queried after its EventQueue has been destroyed.
class EventHandle {
 public:
  EventHandle() = default;

  /// True if the event has neither fired nor been cancelled yet.
  bool pending() const;

  /// True if this handle refers to some event (even one that already fired).
  bool valid() const { return queue_ != nullptr; }

 private:
  friend class EventQueue;
  friend class Engine;  // routes Engine::cancel to the owning queue
  EventHandle(EventQueue* queue, std::uint64_t key)
      : queue_(queue), key_(key) {}

  EventQueue* queue_ = nullptr;
  std::uint64_t key_ = 0;
};

/// Priority queue of timed callbacks with deterministic tie-breaking, lazy
/// cancellation and slab-pooled slots. Not thread-safe by itself: the
/// partitioned engine gives each partition its own queue and guarantees one
/// host thread touches it at a time (single-partition worlds are strictly
/// single-threaded, as before).
class EventQueue {
 public:
  using Callback = InplaceFunction<kEventCallbackCapacity>;

  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// Schedule @p cb to fire at absolute time @p when.
  EventHandle schedule(Time when, Callback cb) {
    const std::uint32_t s = acquire_slot();
    assert(seq_ < (std::uint64_t{1} << (64 - kSlotBits)) && "sequence overflow");
    const std::uint64_t key = (seq_++ << kSlotBits) | s;
    Slot& sl = slot(s);
    sl.cb = std::move(cb);
    sl.key = key;
    const HeapEntry e{when, key};
    // Keys grow monotonically, so "e after lane back" reduces to a time
    // comparison: nondecreasing streams ride the O(1) lane.
    if (lane_empty() || when >= lane_.back().when) {
      if (lane_empty()) lane_trim();
      lane_.push_back(e);
    } else {
      heap_push(e);
    }
    ++live_;
    return EventHandle(this, key);
  }

  /// Cancel a previously scheduled event. No-op if already fired/cancelled.
  /// Returns true if the event was pending and is now cancelled. The
  /// callback's capture is destroyed immediately.
  bool cancel(EventHandle& h) {
    if (h.queue_ != this || !key_pending(h.key_)) return false;
    release_slot(slot_of(h.key_));
    assert(live_ > 0);
    --live_;
    maybe_compact();
    return true;
  }

  /// True if no live event remains.
  bool empty() const { return live_ == 0; }

  /// Number of live (pending) events.
  std::size_t size() const { return live_; }

  /// Time of the earliest live event; kTimeInfinity if empty.
  Time next_time() {
    drop_dead();
    Time t = kTimeInfinity;
    if (!heap_.empty()) t = heap_[0].when;
    if (!lane_empty() && lane_[lane_head_].when < t) t = lane_[lane_head_].when;
    return t;
  }

  /// Pop the earliest live event. Pre: !empty().
  /// Returns its (time, callback); the callback is not invoked here so the
  /// engine can advance the clock first.
  std::pair<Time, Callback> pop() {
    drop_dead();
    assert(live_ > 0 && "pop() on empty EventQueue");
    HeapEntry e;
    const bool from_lane =
        !lane_empty() && (heap_.empty() || later(heap_[0], lane_[lane_head_]));
    if (from_lane) {
      e = lane_[lane_head_++];
      if (lane_empty()) lane_trim();
    } else {
      assert(!heap_.empty());
      e = heap_[0];
      remove_top();
    }
    const std::uint32_t s = slot_of(e.key);
    Callback cb = std::move(slot(s).cb);
    release_slot(s);
    --live_;
    return {e.when, std::move(cb)};
  }

  /// Total number of events ever scheduled (diagnostics).
  std::uint64_t total_scheduled() const { return seq_; }

  /// Cancelled-but-not-yet-dropped entries (diagnostics). Compaction keeps
  /// this bounded at max(kCompactFloor, size()) after every operation.
  std::size_t dead_entries() const {
    return heap_.size() + (lane_.size() - lane_head_) - live_;
  }

  /// Event slots currently pooled for reuse (diagnostics).
  std::size_t free_slots() const { return num_free_; }

  /// Dead entries below this floor never trigger compaction (avoids O(n)
  /// rebuilds over tiny heaps where lazy dropping is cheaper).
  static constexpr std::size_t kCompactFloor = 64;

 private:
  friend class EventHandle;

  // An event's identity is one 64-bit key: (schedule sequence << kSlotBits)
  // | slot index. The slot records the key of its current occupant, so
  // liveness of a heap entry or handle is a single 64-bit compare, and heap
  // entries shrink to 16 bytes (four children per cache line, which the
  // memory-bound sift loop feels). Freed slots link into an intrusive free
  // list through their key field, tagged with the top bit -- live keys have
  // seq < 2^40, so a free slot can never match a stale entry or handle.
  static constexpr unsigned kSlotBits = 24;
  static constexpr std::uint64_t kSlotMask = (std::uint64_t{1} << kSlotBits) - 1;
  static constexpr std::uint64_t kFreeTag = std::uint64_t{1} << 63;
  static constexpr std::uint32_t kNoSlot = ~std::uint32_t{0};

  struct Slot {
    Callback cb;
    /// Occupant's key; kFreeTag | next-free-index when on the free list.
    std::uint64_t key = kFreeTag | kNoSlot;
  };
  /// POD heap/lane entry; the callback stays in its slot so sifts are cheap.
  struct HeapEntry {
    Time when;
    std::uint64_t key;
  };
  /// Strict weak order "fires after": (when, seq) lexicographic, reversed.
  /// Keys compare like sequences: slots occupy the low bits and sequence
  /// numbers are unique, so equal-when entries order by schedule order.
  static bool later(const HeapEntry& a, const HeapEntry& b) {
    if (a.when != b.when) return a.when > b.when;
    return a.key > b.key;
  }
  static std::uint32_t slot_of(std::uint64_t key) {
    return static_cast<std::uint32_t>(key & kSlotMask);
  }

  /// Slots live in fixed chunks so growth never moves a pending callback.
  static constexpr std::size_t kSlotChunkShift = 10;
  static constexpr std::size_t kSlotChunk = std::size_t{1} << kSlotChunkShift;

  Slot& slot(std::uint32_t i) {
    return chunks_[i >> kSlotChunkShift][i & (kSlotChunk - 1)];
  }
  const Slot& slot(std::uint32_t i) const {
    return chunks_[i >> kSlotChunkShift][i & (kSlotChunk - 1)];
  }
  bool key_pending(std::uint64_t key) const {
    const std::uint32_t s = slot_of(key);
    return s < num_slots_ && slot(s).key == key;
  }
  bool entry_dead(const HeapEntry& e) const {
    return slot(slot_of(e.key)).key != e.key;
  }

  std::uint32_t acquire_slot() {
    if (free_head_ != kNoSlot) {
      const std::uint32_t s = free_head_;
      free_head_ = static_cast<std::uint32_t>(slot(s).key);
      --num_free_;
      return s;
    }
    if (num_slots_ == chunks_.size() * kSlotChunk) grow_slots();
    assert(num_slots_ <= kSlotMask && "too many concurrent events");
    return static_cast<std::uint32_t>(num_slots_++);
  }

  /// Destroy the slot's capture, mark it free, link it for reuse.
  void release_slot(std::uint32_t s) {
    Slot& sl = slot(s);
    sl.cb.reset();
    sl.key = kFreeTag | free_head_;
    free_head_ = s;
    ++num_free_;
  }

  void drop_dead() {
    while (lane_head_ < lane_.size() && entry_dead(lane_[lane_head_])) {
      ++lane_head_;
    }
    if (lane_empty()) lane_trim();
    while (!heap_.empty() && entry_dead(heap_[0])) {
      remove_top();
    }
  }

  void maybe_compact() {
    const std::size_t dead = heap_.size() + (lane_.size() - lane_head_) - live_;
    if (dead > kCompactFloor && dead > live_) compact();
  }

  bool lane_empty() const { return lane_head_ == lane_.size(); }

  /// Reclaim the lane's processed prefix / reset an emptied lane.
  void lane_trim() {
    if (lane_empty()) {
      lane_.clear();
      lane_head_ = 0;
    } else if (lane_head_ > 4096 && lane_head_ > lane_.size() / 2) {
      lane_.erase(lane_.begin(),
                  lane_.begin() + static_cast<std::ptrdiff_t>(lane_head_));
      lane_head_ = 0;
    }
  }

  void grow_slots();
  void heap_push(HeapEntry e);
  /// Remove heap_[0], restoring the heap property.
  void remove_top();
  void sift_down(std::size_t i);
  void compact();

  std::vector<HeapEntry> heap_;
  /// Sorted by key; entries before lane_head_ already popped.
  std::vector<HeapEntry> lane_;
  std::size_t lane_head_ = 0;
  std::vector<std::unique_ptr<Slot[]>> chunks_;
  std::size_t num_slots_ = 0;
  std::uint32_t free_head_ = kNoSlot;
  std::size_t num_free_ = 0;
  std::size_t live_ = 0;
  std::uint64_t seq_ = 0;
};

inline bool EventHandle::pending() const {
  return queue_ != nullptr && queue_->key_pending(key_);
}

}  // namespace pm2::sim
