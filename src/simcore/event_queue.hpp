// pm2sim -- cancellable time-ordered event queue.
//
// The queue is the heart of the discrete-event engine: a binary heap of
// (time, sequence, callback) entries. Ties on time are broken by insertion
// order so that simulation runs are fully deterministic.
//
// Cancellation is lazy: cancel() marks the entry dead; dead entries are
// dropped when they reach the top of the heap. This keeps both schedule()
// and cancel() O(log n) / O(1) without heap surgery.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "simcore/time.hpp"

namespace pm2::sim {

/// Opaque handle to a scheduled event, usable to cancel it.
///
/// Handles are cheap to copy and outlive the event safely: cancelling an
/// already-fired (or already-cancelled) event is a no-op.
class EventHandle {
 public:
  EventHandle() = default;

  /// True if the event has neither fired nor been cancelled yet.
  bool pending() const { return state_ && !*state_; }

  /// True if this handle refers to some event (even one that already fired).
  bool valid() const { return static_cast<bool>(state_); }

 private:
  friend class EventQueue;
  explicit EventHandle(std::shared_ptr<bool> state) : state_(std::move(state)) {}
  // *state_ == true  <=>  event is dead (fired or cancelled).
  std::shared_ptr<bool> state_;
};

/// Min-heap of timed callbacks with deterministic tie-breaking and lazy
/// cancellation. Not thread-safe: the whole simulation is single-threaded
/// by design.
class EventQueue {
 public:
  using Callback = std::function<void()>;

  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// Schedule @p cb to fire at absolute time @p when.
  EventHandle schedule(Time when, Callback cb);

  /// Cancel a previously scheduled event. No-op if already fired/cancelled.
  /// Returns true if the event was pending and is now cancelled.
  bool cancel(EventHandle& h);

  /// True if no live event remains.
  bool empty() const { return live_ == 0; }

  /// Number of live (pending) events.
  std::size_t size() const { return live_; }

  /// Time of the earliest live event; kTimeInfinity if empty.
  Time next_time();

  /// Pop the earliest live event. Pre: !empty().
  /// Returns its (time, callback); the callback is not invoked here so the
  /// engine can advance the clock first.
  std::pair<Time, Callback> pop();

  /// Total number of events ever scheduled (diagnostics).
  std::uint64_t total_scheduled() const { return seq_; }

 private:
  struct Entry {
    Time when;
    std::uint64_t seq;
    Callback cb;
    std::shared_ptr<bool> dead;  // shared with the EventHandle
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  void drop_dead();

  std::vector<Entry> heap_;
  std::size_t live_ = 0;
  std::uint64_t seq_ = 0;
};

}  // namespace pm2::sim
