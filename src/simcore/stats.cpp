#include "simcore/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace pm2::sim {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::clear() { *this = RunningStats{}; }

double RunningStats::min() const { return n_ ? min_ : 0.0; }
double RunningStats::max() const { return n_ ? max_ : 0.0; }
double RunningStats::mean() const { return mean_; }

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double SampleSet::percentile(double p) const {
  if (samples_.empty()) return 0.0;
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  if (p <= 0) return sorted.front();
  if (p >= 100) return sorted.back();
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= sorted.size()) return sorted.back();
  return sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac;
}

double SampleSet::mean() const {
  if (samples_.empty()) return 0.0;
  double sum = 0;
  for (double s : samples_) sum += s;
  return sum / static_cast<double>(samples_.size());
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets, 0) {
  if (buckets < 1 || hi <= lo) {
    throw std::invalid_argument("Histogram: bad range/bucket count");
  }
  width_ = (hi - lo) / static_cast<double>(buckets);
}

void Histogram::add(double x) {
  double idx = (x - lo_) / width_;
  auto i = static_cast<std::int64_t>(std::floor(idx));
  i = std::clamp<std::int64_t>(i, 0, static_cast<std::int64_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(i)];
  ++total_;
}

double Histogram::bucket_lo(std::size_t i) const { return lo_ + width_ * static_cast<double>(i); }
double Histogram::bucket_hi(std::size_t i) const { return bucket_lo(i) + width_; }

std::string Histogram::render(std::size_t width) const {
  std::uint64_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  std::string out;
  char line[160];
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto bar = static_cast<std::size_t>(
        static_cast<double>(counts_[i]) / static_cast<double>(peak) *
        static_cast<double>(width));
    std::snprintf(line, sizeof(line), "[%10.2f, %10.2f) %8llu |", bucket_lo(i),
                  bucket_hi(i), static_cast<unsigned long long>(counts_[i]));
    out += line;
    out.append(bar, '#');
    out += '\n';
  }
  return out;
}

}  // namespace pm2::sim
