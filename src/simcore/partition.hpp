// pm2sim -- partition identity of the executing host thread.
//
// The partitioned engine (engine.hpp) shards the simulated cluster into
// partitions, each with its own event heap and virtual clock. Layers that
// keep per-partition state (the metrics registry's counter shards, the
// simsan analyzer shards) need to know which partition the current host
// thread is animating *without* a reference to the engine -- so the id
// lives in one thread-local integer, maintained by the engine around every
// event it executes and by Engine::PartitionScope around world setup.
//
// Partition 0 is the default: the main thread outside any run, single-
// partition worlds, and every pre-existing call site observe the same
// behavior as before the engine was partitioned.
#pragma once

// Thread-locals on the simulation hot path are read from fiber stacks
// (ucontext under the sanitizers, raw asm switches otherwise). Pin them to
// the initial-exec TLS model and constant initialization so every access
// compiles to a plain %fs-relative load -- the lazy TLS-init guard and
// __tls_get_addr paths are not reliable from a fiber stack under
// ASan/UBSan/TSan instrumentation.
#if defined(__GNUC__) || defined(__clang__)
#define PM2SIM_TLS_FAST __attribute__((tls_model("initial-exec")))
#else
#define PM2SIM_TLS_FAST
#endif

namespace pm2::sim {

/// Partition the current host thread is executing for. Written only by the
/// engine's run loops and Engine::PartitionScope; read by per-partition
/// sharded singletons (obs::MetricsRegistry, san::Analyzer).
PM2SIM_TLS_FAST inline thread_local constinit int tls_partition = 0;

}  // namespace pm2::sim
