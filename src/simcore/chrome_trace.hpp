// pm2sim -- Chrome trace-event timeline export.
//
// Records spans and instants on the virtual clock and writes the Chrome
// trace-event JSON format (load in chrome://tracing or https://ui.perfetto.dev):
// processes = simulated nodes, threads = cores. The scheduler and the NICs
// feed this when a Cluster has its timeline enabled.
//
// Two recording backends share this front-end API:
//
//  - Ring sink (default under Cluster): set_record_sink() attaches a
//    TraceRecordSink (obs::TraceLog) and every event becomes one fixed-size
//    binary record pushed into the calling partition's lock-free ring --
//    no mutex, no string copy. Names are interned to u16 ids; hot call
//    sites can pre-intern and use the id overloads to skip even the hash
//    lookup. to_json() then renders the canonical (emit, partition, seq)
//    merge, which is byte-stable for any worker count.
//
//  - Legacy direct storage (debug fallback, ClusterConfig::legacy_trace):
//    events append to a mutexed vector and to_json() renders them in
//    append order -- reproducible only for single-worker runs.
//
// Both backends produce the same JSON bytes for the same event sequence:
// they share append_trace_event_json() below.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "simcore/time.hpp"
#include "simcore/trace_sink.hpp"

namespace pm2::sim {

/// One trace event with all strings resolved, ready to serialize. The
/// legacy vector path and the binary-record converter both lower their
/// events to this view so the JSON bytes match exactly.
struct TraceEventView {
  char phase = 'X';  // 'X' complete, 'i' instant, 'C' counter, 'M' metadata,
                     // 's'/'t'/'f' flow start/step/end
  std::string_view name;
  std::string_view category;
  std::string_view meta_kind;  // for 'M': "process_name" / "thread_name"
  int pid = 0;
  int tid = 0;
  Time ts = 0;
  Time dur = 0;
  double value = 0;           // for 'C'
  std::uint64_t flow_id = 0;  // for 's'/'t'/'f'
};

/// Append one trace-event JSON object (no separators, no newline) to @p out.
void append_trace_event_json(std::string& out, const TraceEventView& e);

class ChromeTrace {
 public:
  /// Route all subsequent events into @p sink as binary records instead of
  /// the internal vector. Attach before recording or interning anything;
  /// pass nullptr to return to direct storage.
  void set_record_sink(TraceRecordSink* sink) { sink_ = sink; }
  TraceRecordSink* record_sink() const { return sink_; }

  /// Intern @p s in the active backend and return its id (0 is always "").
  /// Hot call sites cache the result and use the id overloads below.
  std::uint16_t intern(std::string_view s);

  /// A completed span of [start, start+duration) on (pid, tid).
  void complete_event(std::string_view name, std::string_view category,
                      int pid, int tid, Time start, Time duration);
  void complete_event(std::uint16_t name_id, std::uint16_t category_id,
                      int pid, int tid, Time start, Time duration);

  /// A point event.
  void instant_event(std::string_view name, std::string_view category,
                     int pid, int tid, Time t);
  void instant_event(std::uint16_t name_id, std::uint16_t category_id,
                     int pid, int tid, Time t);

  /// Counter sample (renders as a chart track).
  void counter_event(std::string_view name, int pid, Time t, double value);

  /// Flow events (ph "s" / "t" / "f"): one arrow per @p id, drawn by
  /// Perfetto from the enclosing slice at flow_begin to the slices at each
  /// flow_step and flow_end -- across processes, which is how send -> recv
  /// arrows cross node tracks. Timestamps must be non-decreasing per id.
  void flow_begin(std::string_view name, std::string_view category,
                  int pid, int tid, Time t, std::uint64_t id);
  void flow_step(std::string_view name, std::string_view category,
                 int pid, int tid, Time t, std::uint64_t id);
  void flow_end(std::string_view name, std::string_view category,
                int pid, int tid, Time t, std::uint64_t id);

  /// Metadata: display names for processes (nodes) and threads (cores).
  void set_process_name(int pid, std::string_view name);
  void set_thread_name(int pid, int tid, std::string_view name);

  std::size_t event_count() const;

  /// Serialize to trace-event JSON.
  std::string to_json() const;

  /// Write to a file; throws on I/O failure.
  void write(const std::string& path) const;

 private:
  struct Event {
    char phase;
    std::uint16_t name = 0;  // interned; for 'M' the display name
    std::uint16_t cat = 0;   // interned; for 'M' the meta kind
    int pid = 0;
    int tid = 0;
    Time ts = 0;
    Time dur = 0;
    double value = 0;
    std::uint64_t flow_id = 0;
  };

  std::uint16_t intern_locked(std::string_view s);
  void record(char phase, std::uint16_t name, std::uint16_t cat, int pid,
              int tid, Time ts, Time dur, double value, std::uint64_t flow_id);

  TraceRecordSink* sink_ = nullptr;
  mutable std::mutex mu_;                          // guards the legacy store
  std::vector<Event> events_;                      // legacy backend only
  std::vector<std::string> strings_{std::string()};  // legacy id -> string
  std::unordered_map<std::string, std::uint16_t> ids_{{std::string(), 0}};
};

}  // namespace pm2::sim
