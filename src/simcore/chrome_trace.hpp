// pm2sim -- Chrome trace-event timeline export.
//
// Records spans and instants on the virtual clock and writes the Chrome
// trace-event JSON format (load in chrome://tracing or https://ui.perfetto.dev):
// processes = simulated nodes, threads = cores. The scheduler and the NICs
// feed this when a Cluster has its timeline enabled.
//
// Recording is thread-safe (partitioned runs append from several host
// threads). Every event carries its own virtual timestamp, so viewers
// render identical timelines regardless of append order; the JSON byte
// order, however, follows append order and is only reproducible for
// single-worker runs -- which is why the byte-identity gate compares CSVs
// and reports, not timelines.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "simcore/time.hpp"

namespace pm2::sim {

class ChromeTrace {
 public:
  /// A completed span of [start, start+duration) on (pid, tid).
  void complete_event(const std::string& name, const std::string& category,
                      int pid, int tid, Time start, Time duration);

  /// A point event.
  void instant_event(const std::string& name, const std::string& category,
                     int pid, int tid, Time t);

  /// Counter sample (renders as a chart track).
  void counter_event(const std::string& name, int pid, Time t, double value);

  /// Flow events (ph "s" / "t" / "f"): one arrow per @p id, drawn by
  /// Perfetto from the enclosing slice at flow_begin to the slices at each
  /// flow_step and flow_end -- across processes, which is how send -> recv
  /// arrows cross node tracks. Timestamps must be non-decreasing per id.
  void flow_begin(const std::string& name, const std::string& category,
                  int pid, int tid, Time t, std::uint64_t id);
  void flow_step(const std::string& name, const std::string& category,
                 int pid, int tid, Time t, std::uint64_t id);
  void flow_end(const std::string& name, const std::string& category,
                int pid, int tid, Time t, std::uint64_t id);

  /// Metadata: display names for processes (nodes) and threads (cores).
  void set_process_name(int pid, const std::string& name);
  void set_thread_name(int pid, int tid, const std::string& name);

  std::size_t event_count() const { return events_.size(); }

  /// Serialize to trace-event JSON.
  std::string to_json() const;

  /// Write to a file; throws on I/O failure.
  void write(const std::string& path) const;

 private:
  struct Event {
    char phase;  // 'X' complete, 'i' instant, 'C' counter, 'M' metadata,
                 // 's'/'t'/'f' flow start/step/end
    std::string name;
    std::string category;
    int pid = 0;
    int tid = 0;
    Time ts = 0;
    Time dur = 0;
    double value = 0;
    std::string meta_kind;  // for 'M': "process_name" / "thread_name"
    std::uint64_t flow_id = 0;  // for 's'/'t'/'f'
  };
  std::mutex mu_;
  std::vector<Event> events_;
};

}  // namespace pm2::sim
