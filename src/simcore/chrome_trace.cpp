#include "simcore/chrome_trace.hpp"

#include <bit>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <stdexcept>

namespace pm2::sim {

namespace {
void append_escaped(std::string& out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

/// Virtual nanoseconds -> trace microseconds (fractional).
double to_trace_us(Time t) { return static_cast<double>(t) / 1e3; }
}  // namespace

void append_trace_event_json(std::string& out, const TraceEventView& e) {
  char buf[160];
  out += "{\"ph\":\"";
  out += e.phase;
  out += "\",\"name\":\"";
  append_escaped(out, e.phase == 'M' ? e.meta_kind : e.name);
  out += "\"";
  if (e.phase == 'M') {
    out += ",\"args\":{\"name\":\"";
    append_escaped(out, e.name);
    out += "\"}";
  } else {
    out += ",\"cat\":\"";
    append_escaped(out, e.category.empty() ? std::string_view{"sim"}
                                           : e.category);
    out += "\"";
    std::snprintf(buf, sizeof(buf), ",\"ts\":%.3f", to_trace_us(e.ts));
    out += buf;
    if (e.phase == 'X') {
      std::snprintf(buf, sizeof(buf), ",\"dur\":%.3f", to_trace_us(e.dur));
      out += buf;
    }
    if (e.phase == 'C') {
      std::snprintf(buf, sizeof(buf), ",\"args\":{\"value\":%g}", e.value);
      out += buf;
    }
    if (e.phase == 'i') out += ",\"s\":\"t\"";
    if (e.phase == 's' || e.phase == 't' || e.phase == 'f') {
      std::snprintf(buf, sizeof(buf), ",\"id\":%llu",
                    static_cast<unsigned long long>(e.flow_id));
      out += buf;
      // Bind the arrow end to the enclosing slice, not the next one.
      if (e.phase == 'f') out += ",\"bp\":\"e\"";
    }
  }
  std::snprintf(buf, sizeof(buf), ",\"pid\":%d,\"tid\":%d}", e.pid, e.tid);
  out += buf;
}

std::uint16_t ChromeTrace::intern(std::string_view s) {
  if (sink_ != nullptr) return sink_->intern(s);
  std::lock_guard<std::mutex> lock(mu_);
  return intern_locked(s);
}

std::uint16_t ChromeTrace::intern_locked(std::string_view s) {
  auto it = ids_.find(std::string{s});
  if (it != ids_.end()) return it->second;
  if (strings_.size() > 0xFFFF) return 0;  // table full: alias to ""
  auto id = static_cast<std::uint16_t>(strings_.size());
  strings_.emplace_back(s);
  ids_.emplace(strings_.back(), id);
  return id;
}

void ChromeTrace::record(char phase, std::uint16_t name, std::uint16_t cat,
                         int pid, int tid, Time ts, Time dur, double value,
                         std::uint64_t flow_id) {
  if (sink_ != nullptr) {
    TraceRecord r;
    r.ts = ts;
    r.dur = dur;
    r.id = phase == 'C' ? std::bit_cast<std::uint64_t>(value) : flow_id;
    r.pid = pid;
    r.tid = tid;
    r.name = name;
    r.cat = cat;
    r.phase = static_cast<std::uint8_t>(phase);
    sink_->push(r);
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(Event{phase, name, cat, pid, tid, ts, dur, value, flow_id});
}

void ChromeTrace::complete_event(std::string_view name,
                                 std::string_view category, int pid, int tid,
                                 Time start, Time duration) {
  complete_event(intern(name), intern(category), pid, tid, start, duration);
}

void ChromeTrace::complete_event(std::uint16_t name_id,
                                 std::uint16_t category_id, int pid, int tid,
                                 Time start, Time duration) {
  record('X', name_id, category_id, pid, tid, start, duration, 0, 0);
}

void ChromeTrace::instant_event(std::string_view name,
                                std::string_view category, int pid, int tid,
                                Time t) {
  instant_event(intern(name), intern(category), pid, tid, t);
}

void ChromeTrace::instant_event(std::uint16_t name_id,
                                std::uint16_t category_id, int pid, int tid,
                                Time t) {
  record('i', name_id, category_id, pid, tid, t, 0, 0, 0);
}

void ChromeTrace::counter_event(std::string_view name, int pid, Time t,
                                double value) {
  record('C', intern(name), intern("counter"), pid, 0, t, 0, value, 0);
}

void ChromeTrace::flow_begin(std::string_view name, std::string_view category,
                             int pid, int tid, Time t, std::uint64_t id) {
  record('s', intern(name), intern(category), pid, tid, t, 0, 0, id);
}

void ChromeTrace::flow_step(std::string_view name, std::string_view category,
                            int pid, int tid, Time t, std::uint64_t id) {
  record('t', intern(name), intern(category), pid, tid, t, 0, 0, id);
}

void ChromeTrace::flow_end(std::string_view name, std::string_view category,
                           int pid, int tid, Time t, std::uint64_t id) {
  record('f', intern(name), intern(category), pid, tid, t, 0, 0, id);
}

void ChromeTrace::set_process_name(int pid, std::string_view name) {
  record('M', intern(name), intern("process_name"), pid, 0, 0, 0, 0, 0);
}

void ChromeTrace::set_thread_name(int pid, int tid, std::string_view name) {
  record('M', intern(name), intern("thread_name"), pid, tid, 0, 0, 0, 0);
}

std::size_t ChromeTrace::event_count() const {
  if (sink_ != nullptr) return sink_->record_count();
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

std::string ChromeTrace::to_json() const {
  if (sink_ != nullptr) return sink_->to_json();
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"traceEvents\":[\n";
  bool first = true;
  for (const Event& e : events_) {
    if (!first) out += ",\n";
    first = false;
    TraceEventView v;
    v.phase = e.phase;
    if (e.phase == 'M') {
      v.name = strings_[e.name];
      v.meta_kind = strings_[e.cat];
    } else {
      v.name = strings_[e.name];
      v.category = strings_[e.cat];
    }
    v.pid = e.pid;
    v.tid = e.tid;
    v.ts = e.ts;
    v.dur = e.dur;
    v.value = e.value;
    v.flow_id = e.flow_id;
    append_trace_event_json(out, v);
  }
  out += "\n]}\n";
  return out;
}

void ChromeTrace::write(const std::string& path) const {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("ChromeTrace: cannot open " + path);
  f << to_json();
  if (!f) throw std::runtime_error("ChromeTrace: write failed: " + path);
}

}  // namespace pm2::sim
