#include "simcore/chrome_trace.hpp"

#include <fstream>
#include <mutex>
#include <sstream>
#include <stdexcept>

namespace pm2::sim {

namespace {
void append_escaped(std::string& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

/// Virtual nanoseconds -> trace microseconds (fractional).
double to_trace_us(Time t) { return static_cast<double>(t) / 1e3; }
}  // namespace

void ChromeTrace::complete_event(const std::string& name,
                                 const std::string& category, int pid, int tid,
                                 Time start, Time duration) {
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(Event{'X', name, category, pid, tid, start, duration, 0, {}});
}

void ChromeTrace::instant_event(const std::string& name,
                                const std::string& category, int pid, int tid,
                                Time t) {
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(Event{'i', name, category, pid, tid, t, 0, 0, {}});
}

void ChromeTrace::counter_event(const std::string& name, int pid, Time t,
                                double value) {
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(Event{'C', name, "counter", pid, 0, t, 0, value, {}});
}

void ChromeTrace::flow_begin(const std::string& name,
                             const std::string& category, int pid, int tid,
                             Time t, std::uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(Event{'s', name, category, pid, tid, t, 0, 0, {}, id});
}

void ChromeTrace::flow_step(const std::string& name,
                            const std::string& category, int pid, int tid,
                            Time t, std::uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(Event{'t', name, category, pid, tid, t, 0, 0, {}, id});
}

void ChromeTrace::flow_end(const std::string& name,
                           const std::string& category, int pid, int tid,
                           Time t, std::uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(Event{'f', name, category, pid, tid, t, 0, 0, {}, id});
}

void ChromeTrace::set_process_name(int pid, const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(Event{'M', name, {}, pid, 0, 0, 0, 0, "process_name"});
}

void ChromeTrace::set_thread_name(int pid, int tid, const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(Event{'M', name, {}, pid, tid, 0, 0, 0, "thread_name"});
}

std::string ChromeTrace::to_json() const {
  std::string out = "{\"traceEvents\":[\n";
  bool first = true;
  char buf[160];
  for (const Event& e : events_) {
    if (!first) out += ",\n";
    first = false;
    out += "{\"ph\":\"";
    out += e.phase;
    out += "\",\"name\":\"";
    append_escaped(out, e.phase == 'M' ? e.meta_kind : e.name);
    out += "\"";
    if (e.phase == 'M') {
      out += ",\"args\":{\"name\":\"";
      append_escaped(out, e.name);
      out += "\"}";
    } else {
      out += ",\"cat\":\"";
      append_escaped(out, e.category.empty() ? "sim" : e.category);
      out += "\"";
      std::snprintf(buf, sizeof(buf), ",\"ts\":%.3f", to_trace_us(e.ts));
      out += buf;
      if (e.phase == 'X') {
        std::snprintf(buf, sizeof(buf), ",\"dur\":%.3f", to_trace_us(e.dur));
        out += buf;
      }
      if (e.phase == 'C') {
        std::snprintf(buf, sizeof(buf), ",\"args\":{\"value\":%g}", e.value);
        out += buf;
      }
      if (e.phase == 'i') out += ",\"s\":\"t\"";
      if (e.phase == 's' || e.phase == 't' || e.phase == 'f') {
        std::snprintf(buf, sizeof(buf), ",\"id\":%llu",
                      static_cast<unsigned long long>(e.flow_id));
        out += buf;
        // Bind the arrow end to the enclosing slice, not the next one.
        if (e.phase == 'f') out += ",\"bp\":\"e\"";
      }
    }
    std::snprintf(buf, sizeof(buf), ",\"pid\":%d,\"tid\":%d}", e.pid, e.tid);
    out += buf;
  }
  out += "\n]}\n";
  return out;
}

void ChromeTrace::write(const std::string& path) const {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("ChromeTrace: cannot open " + path);
  f << to_json();
  if (!f) throw std::runtime_error("ChromeTrace: write failed: " + path);
}

}  // namespace pm2::sim
