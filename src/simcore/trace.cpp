#include "simcore/trace.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>

#include "simcore/engine.hpp"

namespace pm2::sim {

namespace {

struct TraceState {
  TraceLevel default_level = TraceLevel::kOff;
  std::map<std::string, TraceLevel> per_component;
  const Engine* clock = nullptr;
  bool env_checked = false;
};

TraceState& state() {
  static TraceState s;
  return s;
}

bool parse_level(const std::string& word, TraceLevel* out) {
  std::string lower;
  lower.reserve(word.size());
  for (char c : word) {
    lower += static_cast<char>(
        std::tolower(static_cast<unsigned char>(c)));
  }
  if (lower == "off") *out = TraceLevel::kOff;
  else if (lower == "error") *out = TraceLevel::kError;
  else if (lower == "warn") *out = TraceLevel::kWarn;
  else if (lower == "info") *out = TraceLevel::kInfo;
  else if (lower == "debug") *out = TraceLevel::kDebug;
  else return false;
  return true;
}

const char* level_tag(TraceLevel level) {
  switch (level) {
    case TraceLevel::kError: return "E";
    case TraceLevel::kWarn: return "W";
    case TraceLevel::kInfo: return "I";
    case TraceLevel::kDebug: return "D";
    default: return "?";
  }
}

}  // namespace

void Trace::set_level(TraceLevel level) { state().default_level = level; }

void Trace::set_level(const std::string& component, TraceLevel level) {
  state().per_component[component] = level;
}

bool Trace::configure(const std::string& spec) {
  if (spec.empty()) return true;
  // Parse into a staging copy and commit only if the whole spec is valid:
  // a malformed tail must not leave half the spec silently applied.
  TraceLevel default_level = state().default_level;
  std::map<std::string, TraceLevel> per_component = state().per_component;
  size_t pos = 0;
  while (pos <= spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    std::string item = spec.substr(pos, comma - pos);
    pos = comma + 1;
    // Empty segments ("info," / ",,debug") are malformed: a trailing comma
    // usually means a truncated spec, and succeeding here would differ
    // silently from what the user meant.
    if (item.empty()) return false;
    size_t eq = item.find('=');
    TraceLevel level;
    if (eq == std::string::npos) {
      if (!parse_level(item, &level)) return false;
      default_level = level;
    } else {
      std::string component = item.substr(0, eq);
      if (component.empty()) return false;
      if (!parse_level(item.substr(eq + 1), &level)) return false;
      per_component[std::move(component)] = level;
    }
    if (comma == spec.size()) break;
  }
  state().default_level = default_level;
  state().per_component = std::move(per_component);
  return true;
}

void Trace::configure_from_env() {
  TraceState& s = state();
  if (s.env_checked) return;
  s.env_checked = true;
  if (const char* env = std::getenv("PM2SIM_TRACE")) {
    if (!configure(env)) {
      std::fprintf(stderr, "pm2sim: malformed PM2SIM_TRACE spec '%s'\n", env);
    }
  }
}

void Trace::attach_clock(const Engine* engine) { state().clock = engine; }

bool Trace::enabled(const char* component, TraceLevel level) {
  configure_from_env();
  const TraceState& s = state();
  auto it = s.per_component.find(component);
  TraceLevel limit = it != s.per_component.end() ? it->second : s.default_level;
  return static_cast<int>(level) <= static_cast<int>(limit);
}

void Trace::emit(const char* component, TraceLevel level, const char* fmt,
                 ...) {
  const TraceState& s = state();
  char body[1024];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(body, sizeof(body), fmt, ap);
  va_end(ap);
  if (s.clock) {
    std::fprintf(stderr, "[%12s] %s/%s: %s\n",
                 format_time(s.clock->now()).c_str(), level_tag(level),
                 component, body);
  } else {
    std::fprintf(stderr, "%s/%s: %s\n", level_tag(level), component, body);
  }
}

}  // namespace pm2::sim
