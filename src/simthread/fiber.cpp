#include "simthread/fiber.hpp"

#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <exception>

#if PM2SIM_FIBER_ASAN
#include <sanitizer/common_interface_defs.h>
#endif
#if PM2SIM_FIBER_TSAN
#include <sanitizer/tsan_interface.h>
#endif

namespace pm2::mth {

thread_local constinit Fiber* Fiber::current_ = nullptr;

namespace {
constexpr std::size_t kMinStack = 64 * 1024;
}

Fiber::Fiber(std::function<void()> body, std::size_t stack_size)
    : body_(std::move(body)),
      stack_(StackPool::instance().acquire(
          stack_size < kMinStack ? kMinStack : stack_size)) {}

Fiber::~Fiber() {
  // Destroying a live suspended fiber leaks whatever its stack owned; the
  // scheduler keeps threads alive until the whole world is torn down, so
  // this only happens for programs abandoned mid-run (e.g. deadlock tests).
  // The stack memory itself is recycled either way: once the fiber is gone
  // it can never be resumed, so its frames are unreachable.
#if !PM2SIM_FIBER_ASM && PM2SIM_FIBER_TSAN
  if (tsan_fiber_ != nullptr) __tsan_destroy_fiber(tsan_fiber_);
#endif
  StackPool::instance().release(std::move(stack_));
}

#if PM2SIM_FIBER_ASM

// --- x86-64 assembly backend -------------------------------------------------
//
// The switch saves the SysV callee-saved registers (rbx, rbp, r12-r15), the
// x87 control word and MXCSR on the outgoing stack, stores rsp, loads the
// incoming stack pointer and restores in reverse. Caller-saved state needs
// no treatment: pm2sim_fiber_switch is an ordinary function call, so the
// compiler already assumes those registers are clobbered. The signal mask
// is deliberately NOT switched (the simulator neither masks signals nor
// runs fiber code from handlers); skipping it is what removes the
// rt_sigprocmask syscall that makes swapcontext slow.
//
// Saved-frame layout, ascending from the stored rsp:
//   +0  : x87 control word (2B) | pad
//   +4  : MXCSR (4B)
//   +8  : r15   +16 : r14   +24 : r13   +32 : r12
//   +40 : rbx   +48 : rbp   +56 : return address
// Total 64 bytes; frames are created 16-byte aligned.

extern "C" void pm2sim_fiber_switch(void** save_sp, void* load_sp);
extern "C" void pm2sim_fiber_entry();
extern "C" void pm2sim_fiber_run(void* fiber);

__asm__(
    ".text\n"
    ".align 16\n"
    ".globl pm2sim_fiber_switch\n"
    ".hidden pm2sim_fiber_switch\n"
    ".type pm2sim_fiber_switch,@function\n"
    "pm2sim_fiber_switch:\n"
    "  pushq %rbp\n"
    "  pushq %rbx\n"
    "  pushq %r12\n"
    "  pushq %r13\n"
    "  pushq %r14\n"
    "  pushq %r15\n"
    "  subq  $8, %rsp\n"
    "  stmxcsr 4(%rsp)\n"
    "  fnstcw  (%rsp)\n"
    "  movq  %rsp, (%rdi)\n"
    "  movq  %rsi, %rsp\n"
    "  fldcw   (%rsp)\n"
    "  ldmxcsr 4(%rsp)\n"
    "  addq  $8, %rsp\n"
    "  popq  %r15\n"
    "  popq  %r14\n"
    "  popq  %r13\n"
    "  popq  %r12\n"
    "  popq  %rbx\n"
    "  popq  %rbp\n"
    "  retq\n"
    ".size pm2sim_fiber_switch,.-pm2sim_fiber_switch\n"
    // First entry into a fresh fiber: the prepared frame leaves the Fiber*
    // in r15 and "returns" here; hand it over with a call so the stack is
    // 16-byte aligned at the callee's entry.
    ".align 16\n"
    ".globl pm2sim_fiber_entry\n"
    ".hidden pm2sim_fiber_entry\n"
    ".type pm2sim_fiber_entry,@function\n"
    "pm2sim_fiber_entry:\n"
    "  movq %r15, %rdi\n"
    "  callq pm2sim_fiber_run\n"
    "  ud2\n"
    ".size pm2sim_fiber_entry,.-pm2sim_fiber_entry\n");

void fiber_run_trampoline(Fiber* f) { f->run_body(); }

extern "C" void pm2sim_fiber_run(void* fiber) {
  fiber_run_trampoline(static_cast<Fiber*>(fiber));
  // run_body never returns (its final switch is never resumed).
  std::abort();
}

void Fiber::prepare_stack() {
  // Build an initial saved frame at the top of the stack that the switch
  // can "restore": registers zeroed except r15 = this, return address =
  // pm2sim_fiber_entry, and the current FP control words (a fresh fiber
  // inherits the host's rounding/exception configuration, like a thread).
  std::uint8_t* top = stack_.mem.get() + stack_.size;
  top = reinterpret_cast<std::uint8_t*>(
      reinterpret_cast<std::uintptr_t>(top) & ~std::uintptr_t{15});
  std::uint8_t* frame = top - 64;  // stays 16-byte aligned
  std::uint16_t fpcw = 0;
  std::uint32_t mxcsr = 0;
  __asm__ volatile("fnstcw %0" : "=m"(fpcw));
  __asm__ volatile("stmxcsr %0" : "=m"(mxcsr));
  *reinterpret_cast<std::uint16_t*>(frame + 0) = fpcw;
  *reinterpret_cast<std::uint32_t*>(frame + 4) = mxcsr;
  *reinterpret_cast<std::uintptr_t*>(frame + 8) =
      reinterpret_cast<std::uintptr_t>(this);         // r15
  *reinterpret_cast<std::uintptr_t*>(frame + 16) = 0;  // r14
  *reinterpret_cast<std::uintptr_t*>(frame + 24) = 0;  // r13
  *reinterpret_cast<std::uintptr_t*>(frame + 32) = 0;  // r12
  *reinterpret_cast<std::uintptr_t*>(frame + 40) = 0;  // rbx
  *reinterpret_cast<std::uintptr_t*>(frame + 48) = 0;  // rbp
  *reinterpret_cast<std::uintptr_t*>(frame + 56) =
      reinterpret_cast<std::uintptr_t>(&pm2sim_fiber_entry);
  fiber_sp_ = frame;
}

void Fiber::resume() {
  assert(!finished_ && "resume() on finished fiber");
  assert(current_ == nullptr && "resume() called from inside a fiber");
  if (!started_) {
    started_ = true;
    prepare_stack();
  }
  active_ = true;
  current_ = this;
  pm2sim_fiber_switch(&return_sp_, fiber_sp_);
  // Back from the fiber: it either suspended or finished.
  current_ = nullptr;
}

void Fiber::suspend() {
  assert(current_ == this && "suspend() called from outside the fiber");
  active_ = false;
  current_ = nullptr;
  pm2sim_fiber_switch(&fiber_sp_, return_sp_);
  // Resumed again.
  active_ = true;
  current_ = this;
}

#else  // !PM2SIM_FIBER_ASM --------------------------------------------------

void Fiber::trampoline(unsigned hi, unsigned lo) {
  auto ptr = (static_cast<std::uintptr_t>(hi) << 32) |
             static_cast<std::uintptr_t>(lo);
  reinterpret_cast<Fiber*>(ptr)->run_body();
}

void Fiber::resume() {
  assert(!finished_ && "resume() on finished fiber");
  assert(current_ == nullptr && "resume() called from inside a fiber");
  if (!started_) {
    started_ = true;
    if (getcontext(&ctx_) != 0) {
      std::perror("getcontext");
      std::abort();
    }
    ctx_.uc_stack.ss_sp = stack_.mem.get();
    ctx_.uc_stack.ss_size = stack_.size;
    ctx_.uc_link = nullptr;
    const auto ptr = reinterpret_cast<std::uintptr_t>(this);
    makecontext(&ctx_, reinterpret_cast<void (*)()>(&Fiber::trampoline), 2,
                static_cast<unsigned>(ptr >> 32),
                static_cast<unsigned>(ptr & 0xffffffffu));
  }
  active_ = true;
  current_ = this;
#if PM2SIM_FIBER_ASAN
  __sanitizer_start_switch_fiber(&resumer_fake_, stack_.mem.get(),
                                 stack_.size);
#endif
#if PM2SIM_FIBER_TSAN
  if (tsan_fiber_ == nullptr) tsan_fiber_ = __tsan_create_fiber(0);
  tsan_resumer_ = __tsan_get_current_fiber();
  __tsan_switch_to_fiber(tsan_fiber_, 0);
#endif
  swapcontext(&return_ctx_, &ctx_);
#if PM2SIM_FIBER_ASAN
  __sanitizer_finish_switch_fiber(resumer_fake_, nullptr, nullptr);
#endif
  // Back from the fiber: it either suspended or finished.
  current_ = nullptr;
}

void Fiber::suspend() {
  assert(current_ == this && "suspend() called from outside the fiber");
  active_ = false;
  current_ = nullptr;
#if PM2SIM_FIBER_ASAN
  __sanitizer_start_switch_fiber(&fiber_fake_, return_stack_bottom_,
                                 return_stack_size_);
#endif
#if PM2SIM_FIBER_TSAN
  __tsan_switch_to_fiber(tsan_resumer_, 0);
#endif
  swapcontext(&ctx_, &return_ctx_);
#if PM2SIM_FIBER_ASAN
  __sanitizer_finish_switch_fiber(fiber_fake_, &return_stack_bottom_,
                                  &return_stack_size_);
#endif
  // Resumed again.
  active_ = true;
  current_ = this;
}

#endif  // PM2SIM_FIBER_ASM

void Fiber::run_body() {
#if !PM2SIM_FIBER_ASM && PM2SIM_FIBER_ASAN
  // First instruction on the fiber stack: tell ASan the switch landed and
  // learn the resumer's stack bounds for switching back out.
  __sanitizer_finish_switch_fiber(nullptr, &return_stack_bottom_,
                                  &return_stack_size_);
#endif
  try {
    body_();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "pm2sim: uncaught exception in fiber: %s\n", e.what());
    std::abort();
  } catch (...) {
    std::fprintf(stderr, "pm2sim: uncaught exception in fiber\n");
    std::abort();
  }
  finished_ = true;
  // Return to the last resumer; this context is never entered again.
  active_ = false;
  current_ = nullptr;
#if PM2SIM_FIBER_ASM
  pm2sim_fiber_switch(&fiber_sp_, return_sp_);
#else
#if PM2SIM_FIBER_ASAN
  // Final exit: null fake-stack save tells ASan to free this fiber's fake
  // frames instead of keeping them for a resume that never comes.
  __sanitizer_start_switch_fiber(nullptr, return_stack_bottom_,
                                 return_stack_size_);
#endif
#if PM2SIM_FIBER_TSAN
  // The fiber's TSan state stays alive until ~Fiber (destroying the state
  // one is currently running on is not allowed).
  __tsan_switch_to_fiber(tsan_resumer_, 0);
#endif
  swapcontext(&ctx_, &return_ctx_);
#endif
  // Unreachable: resume() refuses finished fibers.
  std::abort();
}

}  // namespace pm2::mth
