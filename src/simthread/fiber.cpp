#include "simthread/fiber.hpp"

#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <exception>

namespace pm2::mth {

Fiber* Fiber::current_ = nullptr;

namespace {
constexpr std::size_t kMinStack = 64 * 1024;
}

Fiber::Fiber(std::function<void()> body, std::size_t stack_size)
    : body_(std::move(body)),
      stack_(StackPool::instance().acquire(
          stack_size < kMinStack ? kMinStack : stack_size)) {}

Fiber::~Fiber() {
  // Destroying a live suspended fiber leaks whatever its stack owned; the
  // scheduler keeps threads alive until the whole world is torn down, so
  // this only happens for programs abandoned mid-run (e.g. deadlock tests).
  // The stack memory itself is recycled either way: once the fiber is gone
  // it can never be resumed, so its frames are unreachable.
  StackPool::instance().release(std::move(stack_));
}

void Fiber::trampoline(unsigned hi, unsigned lo) {
  auto ptr = (static_cast<std::uintptr_t>(hi) << 32) |
             static_cast<std::uintptr_t>(lo);
  reinterpret_cast<Fiber*>(ptr)->run_body();
}

void Fiber::run_body() {
  try {
    body_();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "pm2sim: uncaught exception in fiber: %s\n", e.what());
    std::abort();
  } catch (...) {
    std::fprintf(stderr, "pm2sim: uncaught exception in fiber\n");
    std::abort();
  }
  finished_ = true;
  // Return to the last resumer; this context is never entered again.
  active_ = false;
  current_ = nullptr;
  swapcontext(&ctx_, &return_ctx_);
  // Unreachable: resume() refuses finished fibers.
  std::abort();
}

void Fiber::resume() {
  assert(!finished_ && "resume() on finished fiber");
  assert(current_ == nullptr && "resume() called from inside a fiber");
  if (!started_) {
    started_ = true;
    if (getcontext(&ctx_) != 0) {
      std::perror("getcontext");
      std::abort();
    }
    ctx_.uc_stack.ss_sp = stack_.mem.get();
    ctx_.uc_stack.ss_size = stack_.size;
    ctx_.uc_link = nullptr;
    const auto ptr = reinterpret_cast<std::uintptr_t>(this);
    makecontext(&ctx_, reinterpret_cast<void (*)()>(&Fiber::trampoline), 2,
                static_cast<unsigned>(ptr >> 32),
                static_cast<unsigned>(ptr & 0xffffffffu));
  }
  active_ = true;
  current_ = this;
  swapcontext(&return_ctx_, &ctx_);
  // Back from the fiber: it either suspended or finished.
  current_ = nullptr;
}

void Fiber::suspend() {
  assert(current_ == this && "suspend() called from outside the fiber");
  active_ = false;
  current_ = nullptr;
  swapcontext(&ctx_, &return_ctx_);
  // Resumed again.
  active_ = true;
  current_ = this;
}

}  // namespace pm2::mth
