// pm2sim -- stackful coroutines (fibers) over POSIX ucontext.
//
// Every simulated thread body runs on its own fiber so that benchmark and
// application code can be written as ordinary sequential C++ (loops, RAII,
// blocking calls); the scheduler suspends/resumes fibers as virtual time
// dictates. Only the engine/scheduler context ever resumes a fiber, and a
// fiber never resumes another fiber, so the switch discipline is strictly
// two-level.
#pragma once

#include <ucontext.h>

#include <cstddef>
#include <cstdint>
#include <functional>

#include "simthread/stack_pool.hpp"

namespace pm2::mth {

/// A stackful coroutine. Not copyable, not movable (the stack address is
/// baked into the saved context).
class Fiber {
 public:
  /// Create a fiber that will execute @p body on its first resume().
  /// @p stack_size is rounded up to a sane minimum. The stack comes from
  /// the process-wide StackPool and returns there on destruction, so thread
  /// churn does not hit the allocator in steady state.
  explicit Fiber(std::function<void()> body, std::size_t stack_size = 256 * 1024);
  ~Fiber();

  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;

  /// Run the fiber until it suspends or finishes. Must not be called from
  /// inside any fiber. Pre: !finished().
  void resume();

  /// Suspend this fiber, returning control to the resume() caller.
  /// Must be called from inside this fiber.
  void suspend();

  /// True once body() has returned.
  bool finished() const { return finished_; }

  /// True while the fiber is the one currently executing.
  bool active() const { return active_; }

  /// The fiber currently executing on this host thread, or nullptr when in
  /// the engine/scheduler context.
  static Fiber* current() { return current_; }

 private:
  static void trampoline(unsigned hi, unsigned lo);
  void run_body();

  std::function<void()> body_;
  StackPool::Stack stack_;
  ucontext_t ctx_{};
  ucontext_t return_ctx_{};
  bool started_ = false;
  bool finished_ = false;
  bool active_ = false;

  static Fiber* current_;
};

}  // namespace pm2::mth
