// pm2sim -- stackful coroutines (fibers).
//
// Every simulated thread body runs on its own fiber so that benchmark and
// application code can be written as ordinary sequential C++ (loops, RAII,
// blocking calls); the scheduler suspends/resumes fibers as virtual time
// dictates. Only the engine/scheduler context ever resumes a fiber, and a
// fiber never resumes another fiber, so the switch discipline is strictly
// two-level.
//
// Two switch backends share one interface:
//   * x86-64 assembly (default on __x86_64__): saves/restores only the
//     SysV callee-saved registers plus the FP control words -- no syscall.
//     The ucontext path's swapcontext() performs a rt_sigprocmask syscall
//     per switch, which dominates the host cost of charge()-heavy
//     workloads (every virtual-time charge is a suspend/resume pair).
//   * POSIX ucontext fallback: used on other architectures and under
//     Address/ThreadSanitizer (both track stack switches through dedicated
//     fiber APIs; a raw assembly switch would confuse their shadow stacks).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>

#include "simcore/partition.hpp"
#include "simthread/stack_pool.hpp"

#if !defined(PM2SIM_FIBER_ASM)
#if defined(__x86_64__) && !defined(__SANITIZE_ADDRESS__) && \
    !defined(__SANITIZE_THREAD__) && !defined(PM2SIM_FIBER_UCONTEXT)
#if defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define PM2SIM_FIBER_ASM 0
#else
#define PM2SIM_FIBER_ASM 1
#endif
#else
#define PM2SIM_FIBER_ASM 1
#endif
#else
#define PM2SIM_FIBER_ASM 0
#endif
#endif

#if !PM2SIM_FIBER_ASM
#include <ucontext.h>
#endif

// Under AddressSanitizer the ucontext backend additionally annotates every
// switch with __sanitizer_{start,finish}_switch_fiber so ASan tracks the
// live stack. Without this, throwing an exception on a fiber stack makes
// __asan_handle_no_return unpoison using the *thread's* stack bounds and
// report a bogus stack-buffer-overflow (google/sanitizers#189).
#if !defined(PM2SIM_FIBER_ASAN)
#if defined(__SANITIZE_ADDRESS__)
#define PM2SIM_FIBER_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define PM2SIM_FIBER_ASAN 1
#else
#define PM2SIM_FIBER_ASAN 0
#endif
#else
#define PM2SIM_FIBER_ASAN 0
#endif
#endif

// Under ThreadSanitizer every fiber gets its own __tsan fiber state and
// each switch is announced with __tsan_switch_to_fiber; without this, TSan
// sees one host thread whose stack pointer teleports between allocations
// and its shadow-stack bookkeeping breaks. Switches keep synchronization
// (flag 0): everything runs on one host thread, so fiber switches are real
// happens-before and suppressing them would only manufacture false races.
#if !defined(PM2SIM_FIBER_TSAN)
#if defined(__SANITIZE_THREAD__)
#define PM2SIM_FIBER_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define PM2SIM_FIBER_TSAN 1
#else
#define PM2SIM_FIBER_TSAN 0
#endif
#else
#define PM2SIM_FIBER_TSAN 0
#endif
#endif

#if PM2SIM_FIBER_ASM && PM2SIM_FIBER_TSAN
#error "the assembly fiber backend cannot run under TSan; define PM2SIM_FIBER_UCONTEXT"
#endif

namespace pm2::mth {

/// A stackful coroutine. Not copyable, not movable (the stack address is
/// baked into the saved context).
class Fiber {
 public:
  /// Create a fiber that will execute @p body on its first resume().
  /// @p stack_size is rounded up to a sane minimum. The stack comes from
  /// the process-wide StackPool and returns there on destruction, so thread
  /// churn does not hit the allocator in steady state.
  explicit Fiber(std::function<void()> body, std::size_t stack_size = std::size_t{256} * 1024);
  ~Fiber();

  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;

  /// Run the fiber until it suspends or finishes. Must not be called from
  /// inside any fiber. Pre: !finished().
  void resume();

  /// Suspend this fiber, returning control to the resume() caller.
  /// Must be called from inside this fiber.
  void suspend();

  /// True once body() has returned.
  bool finished() const { return finished_; }

  /// True while the fiber is the one currently executing.
  bool active() const { return active_; }

  /// The fiber currently executing on this host thread, or nullptr when in
  /// the engine/scheduler context.
  static Fiber* current() { return current_; }

 private:
  void run_body();

  std::function<void()> body_;
  StackPool::Stack stack_;
#if PM2SIM_FIBER_ASM
  friend void fiber_run_trampoline(Fiber* f);
  void prepare_stack();
  void* fiber_sp_ = nullptr;   ///< saved stack pointer of the fiber context
  void* return_sp_ = nullptr;  ///< saved stack pointer of the resumer
#else
  static void trampoline(unsigned hi, unsigned lo);
  ucontext_t ctx_{};
  ucontext_t return_ctx_{};
#if PM2SIM_FIBER_ASAN
  void* resumer_fake_ = nullptr;  ///< ASan fake stack saved by resume()
  void* fiber_fake_ = nullptr;    ///< ASan fake stack saved by suspend()
  const void* return_stack_bottom_ = nullptr;  ///< resumer's stack, for
  std::size_t return_stack_size_ = 0;          ///< switching back out
#endif
#if PM2SIM_FIBER_TSAN
  void* tsan_fiber_ = nullptr;    ///< TSan fiber state for this fiber
  void* tsan_resumer_ = nullptr;  ///< TSan state of the resuming context
#endif
#endif
  bool started_ = false;
  bool finished_ = false;
  bool active_ = false;

  // See PM2SIM_TLS_FAST in simcore/partition.hpp: read from fiber stacks.
  PM2SIM_TLS_FAST static thread_local constinit Fiber* current_;
};

}  // namespace pm2::mth
