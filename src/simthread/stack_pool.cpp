#include "simthread/stack_pool.hpp"

namespace pm2::mth {

StackPool& StackPool::instance() {
  static StackPool pool;
  return pool;
}

StackPool::Stack StackPool::acquire(std::size_t size) {
  const std::size_t cls = ((size + kGranule - 1) / kGranule) * kGranule;
  std::lock_guard<std::mutex> lock(mu_);
  if (auto it = classes_.find(cls); it != classes_.end() && !it->second.empty()) {
    Stack s = std::move(it->second.back());
    it->second.pop_back();
    pooled_bytes_ -= s.size;
    ++reuses_;
    return s;
  }
  ++fresh_allocs_;
  return Stack{std::make_unique<std::uint8_t[]>(cls), cls};
}

void StackPool::release(Stack s) {
  if (!s.mem) return;
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Stack>& cache = classes_[s.size];
  if (cache.size() >= kMaxPooledPerClass) return;  // frees the stack
  pooled_bytes_ += s.size;
  cache.push_back(std::move(s));
}

void StackPool::trim() {
  std::lock_guard<std::mutex> lock(mu_);
  classes_.clear();
  pooled_bytes_ = 0;
}

}  // namespace pm2::mth
