#include "simthread/scheduler.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "simcore/chrome_trace.hpp"
#include "simcore/trace.hpp"
#include "simsan/context.hpp"

namespace pm2::mth {

const char* to_string(ThreadState s) {
  switch (s) {
    case ThreadState::kReady: return "ready";
    case ThreadState::kRunning: return "running";
    case ThreadState::kBlocked: return "blocked";
    case ThreadState::kSleeping: return "sleeping";
    case ThreadState::kFinished: return "finished";
  }
  return "?";
}

ExecContext::~ExecContext() = default;
thread_local constinit ExecContext* ExecContext::current_ = nullptr;

// ---------------------------------------------------------------------------
// Thread / ThreadContext
// ---------------------------------------------------------------------------

Thread::Thread(Scheduler& sched, std::uint64_t id, ThreadFunc body,
               ThreadAttrs attrs)
    : sched_(sched),
      id_(id),
      attrs_(std::move(attrs)),
      fiber_(std::move(body), attrs_.stack_size),
      ctx_(*this) {}

void ThreadContext::charge(sim::Time t) {
  thread_.sched_.charge_current(t);
}

int ThreadContext::core() const { return thread_.core_; }

mach::Machine& ThreadContext::machine() const {
  return thread_.sched_.machine();
}

Scheduler& ThreadContext::scheduler() const { return thread_.sched_; }

// ---------------------------------------------------------------------------
// Scheduler
// ---------------------------------------------------------------------------

Scheduler::Scheduler(mach::Machine& machine) : machine_(machine) {
  home_partition_ = machine.engine().current_partition();
  cores_.resize(static_cast<std::size_t>(machine.num_cores()));
  auto& reg = obs::MetricsRegistry::global();
  const std::string& node = machine.name();
  for (int i = 0; i < machine.num_cores(); ++i) {
    Core& c = cores_[static_cast<std::size_t>(i)];
    c.id = i;
    c.m_switches = reg.counter({"sched", node, i, "context_switches"});
    c.m_idle_hook_runs = reg.counter({"sched", node, i, "idle_hook_runs"});
    c.m_switch_hook_runs = reg.counter({"sched", node, i, "switch_hook_runs"});
    c.m_timer_hook_runs = reg.counter({"sched", node, i, "timer_hook_runs"});
  }
}

Scheduler::~Scheduler() = default;

Thread* Scheduler::spawn(ThreadFunc body, ThreadAttrs attrs) {
  if (attrs.bind_core >= num_cores()) {
    throw std::out_of_range("Scheduler::spawn: bind_core out of range");
  }
  // Direct calls from the setup thread (e.g. Core::start_poll_thread)
  // otherwise inherit the caller's partition; the new thread and its
  // analyzer registration must live where this node lives -- or, when the
  // attrs carry an explicit partition (per-endpoint progress fibers),
  // where that endpoint lives.
  const int target_partition =
      attrs.partition >= 0 ? attrs.partition : home_partition_;
  if (target_partition >= std::max(1, engine().num_partitions())) {
    throw std::out_of_range("Scheduler::spawn: partition out of range");
  }
  sim::Engine::PartitionScope scope(engine(), target_partition);
  auto owned = std::make_unique<Thread>(*this, next_thread_id_++,
                                        std::move(body), std::move(attrs));
  Thread* t = owned.get();
  threads_.push_back(std::move(owned));
  ++live_threads_;
  PM2_TRACE("sched", kDebug, "spawn thread %llu '%s'",
            static_cast<unsigned long long>(t->id()), t->name().c_str());
  if (running_ != nullptr && Fiber::current() != nullptr) {
    charge_current(costs().thread_spawn);
  }
  if (san::on()) {
    // Everything the spawner did so far happens-before the child's body.
    san::Analyzer::global().on_wake(san::current_actor(),
                                    san::actor_of(t->ctx_));
  }
  enqueue(choose_core(t), t);
  // Idle cores may have had no reason to run their hooks while the world
  // was empty; with a live thread the hook sources may now have work.
  notify_idle_work();
  return t;
}

void Scheduler::enqueue(int core, Thread* t) {
  assert(core >= 0 && core < num_cores());
  Core& c = cores_[static_cast<std::size_t>(core)];
  t->last_core_ = core;
  t->state_ = ThreadState::kReady;
  c.runqueue.push_back(t);
  kick(core);
}

int Scheduler::choose_core(const Thread* t) const {
  if (t->attrs_.bind_core >= 0) return t->attrs_.bind_core;
  if (t->last_core_ >= 0) return t->last_core_;
  int best = 0;
  std::size_t best_load = SIZE_MAX;
  for (const Core& c : cores_) {
    const std::size_t load = c.runqueue.size() + (c.current ? 1u : 0u);
    if (load < best_load) {
      best_load = load;
      best = c.id;
    }
  }
  return best;
}

void Scheduler::kick(int core) {
  Core& c = cores_[static_cast<std::size_t>(core)];
  if (c.kick_event.pending()) return;
  c.kick_event = engine().schedule_after(0, [this, core] { dispatch(core); });
}

void Scheduler::dispatch(int core) {
  Core& c = cores_[static_cast<std::size_t>(core)];
  if (c.current != nullptr) return;  // core is owned; owner will re-kick
  if (c.runqueue.empty()) {
    enter_idle(c);
    return;
  }
  engine().cancel(c.idle_event);
  Thread* t = c.runqueue.front();
  c.runqueue.pop_front();
  assert(t->state_ == ThreadState::kReady);

  sim::Time cost = 0;
  if (c.last_run != t || c.hooks_since_dispatch) {
    cost += costs().context_switch;
    ++c.switches;
    ++total_switches_;
    c.m_switches.inc();
    if (!switch_hooks_.empty()) c.m_switch_hook_runs.inc();
    cost += run_hooks(switch_hooks_, core);
  }
  c.hooks_since_dispatch = false;
  c.current = t;
  t->core_ = core;
  t->state_ = ThreadState::kRunning;
  if (cost > 0) {
    c.busy_time += cost;
    engine().schedule_after(cost, [this, core, t] { begin_run(core, t); });
  } else {
    begin_run(core, t);
  }
}

void Scheduler::set_timeline(sim::ChromeTrace* timeline, int pid) {
  timeline_ = timeline;
  timeline_pid_ = pid;
  if (timeline_ != nullptr) {
    tl_cat_thread_ = timeline_->intern("thread");
    tl_cat_hook_ = timeline_->intern("hook");
    tl_idle_name_ = timeline_->intern("idle hooks");
    for (const Core& c : cores_) {
      timeline_->set_thread_name(pid, c.id, "core " + std::to_string(c.id));
    }
  }
}

void Scheduler::timeline_begin(Core& c) {
  if (timeline_ != nullptr && c.span_start < 0) c.span_start = engine().now();
}

void Scheduler::timeline_end(Core& c, const Thread* t) {
  if (timeline_ == nullptr || c.span_start < 0) return;
  if (t->tl_name_src_ != timeline_) {
    t->tl_name_ = timeline_->intern(t->name());
    t->tl_name_src_ = timeline_;
  }
  timeline_->complete_event(t->tl_name_, tl_cat_thread_, timeline_pid_, c.id,
                            c.span_start, engine().now() - c.span_start);
  c.span_start = -1;
}

void Scheduler::begin_run(int core, Thread* t) {
  Core& c = cores_[static_cast<std::size_t>(core)];
  assert(c.current == t);
  timeline_begin(c);
  t->slice_end_ = engine().now() + costs().timeslice;
  if (!timer_hooks_.empty() && c.next_tick == sim::kTimeInfinity) {
    c.next_tick = engine().now() + costs().timer_tick;
  }
  resume_fiber(core, t);
}

void Scheduler::resume_fiber(int core, Thread* t) {
  Core& c = cores_[static_cast<std::size_t>(core)];
  assert(c.current == t);
  assert(running_ == nullptr && "nested fiber resume");
  running_ = t;
  t->state_ = ThreadState::kRunning;
  t->suspend_reason_ = SuspendReason::kNone;
  {
    ExecContext::Activation act(&t->ctx_);
    t->fiber_.resume();
  }
  running_ = nullptr;
  post_resume(core, t);
}

void Scheduler::post_resume(int core, Thread* t) {
  Core& c = cores_[static_cast<std::size_t>(core)];
  if (t->fiber_.finished()) {
    finish_thread(core, t);
    return;
  }
  switch (t->suspend_reason_) {
    case SuspendReason::kCharge:
    case SuspendReason::kSpin:
      // The core stays owned by t; a resume is (or will be) scheduled.
      return;
    case SuspendReason::kYield:
    case SuspendReason::kPreempt:
      timeline_end(c, t);
      c.last_run = t;
      c.current = nullptr;
      enqueue(core, t);
      return;
    case SuspendReason::kBlock:
      timeline_end(c, t);
      t->state_ = ThreadState::kBlocked;
      c.last_run = t;
      c.current = nullptr;
      kick(core);
      return;
    case SuspendReason::kSleep:
      timeline_end(c, t);
      t->state_ = ThreadState::kSleeping;
      c.last_run = t;
      c.current = nullptr;
      kick(core);
      return;
    case SuspendReason::kMigrate: {
      timeline_end(c, t);
      c.last_run = t;
      c.current = nullptr;
      const int target =
          t->attrs_.bind_core >= 0 ? t->attrs_.bind_core : choose_core(t);
      enqueue(target, t);
      kick(core);
      return;
    }
    case SuspendReason::kNone:
      assert(false && "fiber suspended without a reason");
      return;
  }
}

void Scheduler::finish_thread(int core, Thread* t) {
  Core& c = cores_[static_cast<std::size_t>(core)];
  timeline_end(c, t);
  t->state_ = ThreadState::kFinished;
  c.last_run = t;
  c.current = nullptr;
  PM2_TRACE("sched", kDebug, "thread %llu '%s' finished",
            static_cast<unsigned long long>(t->id()), t->name().c_str());
  for (Thread* j : t->joiners_) {
    if (san::on()) {
      // finish_thread runs in the engine context, so the generic wake()
      // tap sees no actor; the dead thread's history must still reach its
      // joiners (join is a synchronization edge).
      san::Analyzer::global().on_wake(san::actor_of(t->ctx_),
                                      san::actor_of(j->ctx_));
    }
    wake(j);
  }
  t->joiners_.clear();
  --live_threads_;
  kick(core);
  if (live_threads_ == 0) on_all_done();
}

void Scheduler::on_all_done() {
  for (Core& c : cores_) {
    engine().cancel(c.idle_event);
    c.next_tick = sim::kTimeInfinity;
  }
}

// --- waiting / waking -------------------------------------------------------

void Scheduler::wake(Thread* t) {
  // simsan: the waker's history happens-before the wakee's next step.
  // Recorded at the *first* call, while the waking context is still active;
  // a hook-deferred re-issue (below) runs in the engine context and is
  // skipped by current_actor(), so the edge is never double-counted.
  if (san::on()) {
    san::Analyzer::global().on_wake(san::current_actor(),
                                    san::actor_of(t->ctx_));
  }
  // A wake issued from inside a hook becomes visible only once the hook's
  // accumulated work has actually been "paid for" on the virtual clock.
  if (auto* ctx = ExecContext::current_or_null();
      ctx != nullptr && !ctx->can_block()) {
    const sim::Time delay = static_cast<HookContext*>(ctx)->consumed();
    engine().schedule_after(delay, [this, t] { wake(t); });
    return;
  }
  switch (t->state_) {
    case ThreadState::kFinished:
      return;
    case ThreadState::kBlocked:
    case ThreadState::kSleeping:
      enqueue(choose_core(t), t);
      return;
    case ThreadState::kRunning:
    case ThreadState::kReady:
      // The thread has decided to block but has not suspended yet (it may
      // be paying a context-switch charge). Leave it a permit so the
      // upcoming block_current() returns immediately instead of losing
      // this wake-up.
      t->wake_permit_ = true;
      return;
  }
}

void Scheduler::block_current() {
  Thread* t = running_;
  assert(t != nullptr && "block_current outside a thread");
  if (t->wake_permit_) {
    t->wake_permit_ = false;
    return;
  }
  t->suspend_reason_ = SuspendReason::kBlock;
  t->fiber_.suspend();
}

void Scheduler::spin_park() {
  Thread* t = running_;
  assert(t != nullptr && "spin_park outside a thread");
  t->spin_parked_ = true;
  t->spin_start_ = engine().now();
  t->suspend_reason_ = SuspendReason::kSpin;
  t->fiber_.suspend();
}

void Scheduler::spin_unpark(Thread* t, sim::Time detect_delay) {
  // simsan: same first-call edge discipline as wake().
  if (san::on()) {
    san::Analyzer::global().on_wake(san::current_actor(),
                                    san::actor_of(t->ctx_));
  }
  if (auto* ctx = ExecContext::current_or_null();
      ctx != nullptr && !ctx->can_block()) {
    const sim::Time delay = static_cast<HookContext*>(ctx)->consumed();
    engine().schedule_after(delay + detect_delay,
                            [this, t] { spin_unpark(t, 0); });
    return;
  }
  if (!t->spin_parked_) return;
  t->spin_parked_ = false;
  engine().schedule_after(detect_delay, [this, t] {
    Core& c = cores_[static_cast<std::size_t>(t->core_)];
    assert(c.current == t);
    const sim::Time spent = engine().now() - t->spin_start_;
    c.busy_time += spent;
    t->cpu_time_ += spent;
    resume_fiber(t->core_, t);
  });
}

void Scheduler::yield() {
  Thread* t = running_;
  assert(t != nullptr && "yield outside a thread");
  t->suspend_reason_ = SuspendReason::kYield;
  t->fiber_.suspend();
}

bool Scheduler::maybe_preempt() {
  Thread* t = running_;
  assert(t != nullptr && "maybe_preempt outside a thread");
  if (engine().now() < t->slice_end_) return false;
  Core& c = cores_[static_cast<std::size_t>(t->core_)];
  if (c.runqueue.empty()) {
    t->slice_end_ = engine().now() + costs().timeslice;
    return false;
  }
  t->suspend_reason_ = SuspendReason::kPreempt;
  t->fiber_.suspend();
  return true;
}

void Scheduler::sleep_for(sim::Time dt) {
  Thread* t = running_;
  assert(t != nullptr && "sleep_for outside a thread");
  assert(dt >= 0);
  engine().schedule_after(dt, [this, t] {
    if (t->state_ != ThreadState::kSleeping) return;  // woken early
    enqueue(choose_core(t), t);
  });
  t->suspend_reason_ = SuspendReason::kSleep;
  t->fiber_.suspend();
}

void Scheduler::join(Thread* target) {
  Thread* t = running_;
  assert(t != nullptr && "join outside a thread");
  assert(target != t && "thread joining itself");
  if (target->finished()) return;
  target->joiners_.push_back(t);
  block_current();
}

void Scheduler::migrate_current(int core) {
  Thread* t = running_;
  assert(t != nullptr && "migrate outside a thread");
  assert(core >= 0 && core < num_cores());
  t->attrs_.bind_core = core;
  if (core == t->core_) return;
  t->suspend_reason_ = SuspendReason::kMigrate;
  t->fiber_.suspend();
}

// --- work / charging ----------------------------------------------------------

void Scheduler::charge_current(sim::Time dt) {
  Thread* t = running_;
  assert(t != nullptr && "charge_current outside a thread");
  assert(dt >= 0);
  if (dt == 0) return;
  Core& c = cores_[static_cast<std::size_t>(t->core_)];
  c.busy_time += dt;
  t->cpu_time_ += dt;
  const int core = t->core_;
  engine().schedule_after(dt, [this, core, t] { resume_fiber(core, t); });
  t->suspend_reason_ = SuspendReason::kCharge;
  t->fiber_.suspend();
}

void Scheduler::work(sim::Time total) {
  Thread* t = running_;
  assert(t != nullptr && "work outside a thread");
  sim::Time remaining = total;
  while (remaining > 0) {
    Core& c = cores_[static_cast<std::size_t>(t->core_)];
    if (!timer_hooks_.empty() && engine().now() >= c.next_tick) {
      run_timer_tick_inline(t);
      continue;
    }
    sim::Time slice_left = t->slice_end_ - engine().now();
    if (slice_left <= 0) {
      if (!c.runqueue.empty()) {
        t->suspend_reason_ = SuspendReason::kPreempt;
        t->fiber_.suspend();
        continue;  // resumed with a fresh timeslice
      }
      t->slice_end_ = engine().now() + costs().timeslice;
      slice_left = costs().timeslice;
    }
    sim::Time chunk = std::min(remaining, slice_left);
    if (!timer_hooks_.empty()) {
      chunk = std::min(chunk, c.next_tick - engine().now());
    }
    assert(chunk > 0);
    charge_current(chunk);
    remaining -= chunk;
  }
}

void Scheduler::run_timer_tick_inline(Thread* t) {
  Core& c = cores_[static_cast<std::size_t>(t->core_)];
  c.next_tick = engine().now() + costs().timer_tick;
  if (!timer_hooks_.empty()) c.m_timer_hook_runs.inc();
  const sim::Time consumed = run_hooks(timer_hooks_, t->core_);
  c.hook_time += consumed;
  if (consumed > 0) charge_current(consumed);
}

// --- hooks -------------------------------------------------------------------

int Scheduler::add_idle_hook(Hook h) {
  idle_hooks_.emplace_back(next_hook_id_, std::move(h));
  notify_idle_work();
  return next_hook_id_++;
}

int Scheduler::add_switch_hook(Hook h) {
  switch_hooks_.emplace_back(next_hook_id_, std::move(h));
  return next_hook_id_++;
}

int Scheduler::add_timer_hook(Hook h) {
  timer_hooks_.emplace_back(next_hook_id_, std::move(h));
  return next_hook_id_++;
}

namespace {
void remove_hook(std::vector<std::pair<int, Hook>>& hooks, int id) {
  std::erase_if(hooks, [id](const auto& p) { return p.first == id; });
}
}  // namespace

void Scheduler::remove_idle_hook(int id) { remove_hook(idle_hooks_, id); }
void Scheduler::remove_switch_hook(int id) { remove_hook(switch_hooks_, id); }
void Scheduler::remove_timer_hook(int id) { remove_hook(timer_hooks_, id); }

sim::Time Scheduler::run_hooks(std::vector<std::pair<int, Hook>>& hooks,
                               int core) {
  if (hooks.empty()) return 0;
  HookContext hctx(machine_, core);
  return hctx.run([&] {
    for (auto& [id, h] : hooks) {
      (void)id;
      h.run(hctx);
    }
  });
}

bool Scheduler::hooks_want(const std::vector<std::pair<int, Hook>>& hooks,
                           int core) const {
  for (const auto& [id, h] : hooks) {
    (void)id;
    if (h.want && h.want(core)) return true;
  }
  return false;
}

void Scheduler::notify_idle_work() {
  if (live_threads_ == 0) return;
  for (Core& c : cores_) {
    if (c.current == nullptr && c.runqueue.empty() &&
        !c.idle_event.pending() && hooks_want(idle_hooks_, c.id)) {
      arm_idle(c, 0);
    }
  }
}

void Scheduler::enter_idle(Core& c) {
  c.next_tick = sim::kTimeInfinity;
  if (live_threads_ > 0 && !c.idle_event.pending() &&
      hooks_want(idle_hooks_, c.id)) {
    arm_idle(c, 0);
  }
}

void Scheduler::arm_idle(Core& c, sim::Time delay) {
  const int core = c.id;
  c.idle_event = engine().schedule_after(delay, [this, core] { idle_tick(core); });
}

void Scheduler::idle_tick(int core) {
  Core& c = cores_[static_cast<std::size_t>(core)];
  (void)c;
  if (c.current != nullptr) return;
  if (!c.runqueue.empty()) {
    kick(core);
    return;
  }
  if (!idle_hooks_.empty()) c.m_idle_hook_runs.inc();
  const sim::Time consumed = run_hooks(idle_hooks_, core);
  c.hook_time += consumed;
  c.hooks_since_dispatch = true;
  if (timeline_ != nullptr && consumed > 0) {
    timeline_->complete_event(tl_idle_name_, tl_cat_hook_, timeline_pid_, core,
                              engine().now(), consumed);
  }
  if (live_threads_ > 0 && hooks_want(idle_hooks_, core)) {
    arm_idle(c, std::max(consumed, costs().idle_poll_period));
  }
}

// --- stats ---------------------------------------------------------------------

sim::Time Scheduler::core_busy_time(int core) const {
  return cores_.at(static_cast<std::size_t>(core)).busy_time;
}

sim::Time Scheduler::core_hook_time(int core) const {
  return cores_.at(static_cast<std::size_t>(core)).hook_time;
}

}  // namespace pm2::mth
