// pm2sim -- the two-level thread scheduler (our Marcel).
//
// One Scheduler animates the cores of one Machine. It is modelled on
// Marcel's design as the paper uses it:
//
//  * user-level threads (fibers) multiplexed on per-core runqueues,
//  * optional per-thread core binding,
//  * preemptive round-robin at a configurable timeslice,
//  * and -- the part the paper's Sections 3.3/4 depend on -- *progression
//    hooks*: registered callbacks invoked when a core is idle, on context
//    switches, and on timer ticks, which PIOMan uses to poll networks on
//    otherwise-unused cycles.
//
// All thread-facing operations (work, yield, sleep, block) must be invoked
// from inside a simulated thread; world-facing operations (spawn, wake,
// hook registration) may be invoked from anywhere.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "simcore/engine.hpp"
#include "simcore/time.hpp"
#include "simmachine/machine.hpp"
#include "simthread/exec_context.hpp"
#include "simthread/thread.hpp"

namespace pm2::sim {
class ChromeTrace;
}

namespace pm2::mth {

/// A progression hook. `run` performs (and prices, via the HookContext) a
/// bounded amount of work; `want` reports whether the hook has potential
/// work for a core, which gates the idle loop's re-arming.
struct Hook {
  std::function<void(HookContext&)> run;
  std::function<bool(int core)> want;  ///< may be null => "never pending"
};

class Scheduler {
 public:
  explicit Scheduler(mach::Machine& machine);
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  mach::Machine& machine() const { return machine_; }
  sim::Engine& engine() const { return machine_.engine(); }
  const mach::CostBook& costs() const { return machine_.costs(); }
  int num_cores() const { return static_cast<int>(cores_.size()); }

  // --- world-facing -------------------------------------------------------

  /// Create a thread; it becomes runnable immediately.
  Thread* spawn(ThreadFunc body, ThreadAttrs attrs = {});

  /// Move a Blocked thread back to a runqueue. Callable from any context.
  void wake(Thread* t);

  /// Register progression hooks; returns a handle usable for removal.
  int add_idle_hook(Hook h);
  int add_switch_hook(Hook h);
  int add_timer_hook(Hook h);
  void remove_idle_hook(int id);
  void remove_switch_hook(int id);
  void remove_timer_hook(int id);

  /// Tell idle cores that hook work may now be pending (re-arms idle loops).
  void notify_idle_work();

  /// Number of threads spawned and not yet finished.
  int live_threads() const { return live_threads_; }

  // --- thread-facing (must run inside a simulated thread) ------------------

  /// The running thread of the active context (nullptr in engine context).
  Thread* current_thread() const { return running_; }

  /// Consume CPU time; preemptible at timeslice boundaries, and timer hooks
  /// fire at chunk boundaries.
  void work(sim::Time t);

  /// Consume CPU time without preemption or tick processing (lock costs and
  /// other short critical-path charges).
  void charge_current(sim::Time t);

  void yield();
  void sleep_for(sim::Time t);
  void join(Thread* t);

  /// Timeslice checkpoint for spin/poll loops: if the slice expired and
  /// other threads wait on this core, yield to them; otherwise renew the
  /// slice. Returns true if a preemption happened. Without such
  /// checkpoints a busy-waiting thread could starve the very thread it
  /// waits on when threads outnumber cores.
  bool maybe_preempt();

  /// Number of threads queued on @p core (excluding the running one).
  std::size_t runqueue_length(int core) const {
    return cores_.at(static_cast<std::size_t>(core)).runqueue.size();
  }

  /// Block the current thread until wake(). Used by sync primitives.
  void block_current();

  /// Park the current thread in a busy-spin: the core stays occupied and
  /// accounted busy, but no events fire until spin_unpark().
  void spin_park();

  /// Resume a spin-parked thread after @p detect_delay (the granularity at
  /// which the spinner re-reads the flag). Callable from any context.
  void spin_unpark(Thread* t, sim::Time detect_delay);

  /// True if @p t is currently spin-parked (i.e. spinning).
  bool spin_parked(const Thread* t) const { return t->spin_parked_; }

  /// Re-bind the current thread to @p core and migrate there.
  void migrate_current(int core);

  // --- statistics ----------------------------------------------------------

  std::uint64_t context_switches() const { return total_switches_; }
  sim::Time core_busy_time(int core) const;
  sim::Time core_hook_time(int core) const;

  /// Attach a Chrome-trace timeline: thread execution spans and hook
  /// activity are recorded as (pid=@p pid, tid=core). nullptr detaches.
  void set_timeline(sim::ChromeTrace* timeline, int pid);

 private:
  friend class ThreadContext;

  struct Core {
    int id = 0;
    std::deque<Thread*> runqueue;
    Thread* current = nullptr;   ///< thread owning the core (may be suspended)
    Thread* last_run = nullptr;  ///< for switch-cost accounting
    sim::EventHandle kick_event;
    sim::EventHandle idle_event;
    sim::Time next_tick = sim::kTimeInfinity;
    sim::Time busy_time = 0;
    sim::Time hook_time = 0;
    std::uint64_t switches = 0;
    /// Idle hooks ran since the last dispatch: the core's context belongs
    /// to the idle loop, so even re-dispatching the same thread pays a
    /// full switch (this is half of the paper's 750 ns passive-wait cost).
    bool hooks_since_dispatch = false;
    sim::Time span_start = -1;  ///< timeline: current thread span begin
    // Registry instruments, labeled (sched, <machine>, core=id).
    obs::Counter m_switches;
    obs::Counter m_idle_hook_runs;
    obs::Counter m_switch_hook_runs;
    obs::Counter m_timer_hook_runs;
  };

  void enqueue(int core, Thread* t);
  int choose_core(const Thread* t) const;
  void kick(int core);
  void dispatch(int core);
  void begin_run(int core, Thread* t);
  void resume_fiber(int core, Thread* t);
  void post_resume(int core, Thread* t);
  void finish_thread(int core, Thread* t);
  void enter_idle(Core& c);
  void arm_idle(Core& c, sim::Time delay);
  void idle_tick(int core);
  void run_timer_tick_inline(Thread* t);
  sim::Time run_hooks(std::vector<std::pair<int, Hook>>& hooks, int core);
  bool hooks_want(const std::vector<std::pair<int, Hook>>& hooks, int core) const;
  void on_all_done();
  void ensure_timer_armed();

  mach::Machine& machine_;
  std::vector<Core> cores_;
  std::vector<std::unique_ptr<Thread>> threads_;
  std::vector<std::pair<int, Hook>> idle_hooks_;
  std::vector<std::pair<int, Hook>> switch_hooks_;
  std::vector<std::pair<int, Hook>> timer_hooks_;
  int next_hook_id_ = 1;
  /// Engine partition this node's scheduler was built in. spawn() pins
  /// itself here so public entry points invoked from the setup thread (or
  /// any foreign partition) still schedule into the node's own heap.
  int home_partition_ = 0;
  std::uint64_t next_thread_id_ = 1;
  int live_threads_ = 0;
  Thread* running_ = nullptr;
  std::uint64_t total_switches_ = 0;
  sim::ChromeTrace* timeline_ = nullptr;
  int timeline_pid_ = 0;
  // Interned-id caches for the per-slice span emission (hot path): filled
  // in set_timeline so steady-state spans never touch the string table.
  std::uint16_t tl_cat_thread_ = 0;
  std::uint16_t tl_cat_hook_ = 0;
  std::uint16_t tl_idle_name_ = 0;

  void timeline_begin(Core& c);
  void timeline_end(Core& c, const Thread* t);
};

}  // namespace pm2::mth
