// pm2sim -- execution contexts: who is currently consuming CPU, and how.
//
// Code that charges virtual time (locks, NIC drivers, PIOMan, NewMadeleine)
// runs in one of two contexts:
//
//  * a *thread* context -- inside a simulated thread; charging time suspends
//    the fiber until the virtual clock catches up, and blocking is allowed;
//  * a *hook* context -- inside a scheduler hook (idle loop, context-switch
//    hook, timer tick) or a tasklet; there is no thread to suspend, so costs
//    accumulate and are applied by the scheduler afterwards, and blocking is
//    forbidden (the paper, Sec. 4.2: "usual locking mechanisms cannot be
//    used in this context").
//
// The active context is reachable through ExecContext::current() so that
// shared primitives work identically in both worlds.
#pragma once

#include <cassert>

#include "simcore/partition.hpp"
#include "simcore/time.hpp"
#include "simmachine/machine.hpp"

namespace pm2::mth {

class ExecContext {
 public:
  virtual ~ExecContext();

  /// Consume @p t nanoseconds of CPU on this context's core.
  virtual void charge(sim::Time t) = 0;

  /// True if the context may block (semaphores, condition waits).
  virtual bool can_block() const = 0;

  /// The core this context executes on.
  virtual int core() const = 0;

  /// The node this context executes on.
  virtual mach::Machine& machine() const = 0;

  /// Access a tagged shared cache line: charges the inter-core transfer
  /// cost (if any) and retags the line to this core.
  void touch(mach::CacheLine& line) {
    charge(machine().touch_line(line, core()));
  }

  /// simsan actor cache (see simsan/context.hpp): the interned actor id
  /// for this context, valid while san_epoch matches the analyzer's epoch.
  /// Epoch 0 never matches, so fresh contexts intern lazily on first use.
  std::uint32_t san_actor = 0;
  std::uint32_t san_epoch = 0;

  /// The context active right now; asserts that one exists.
  static ExecContext& current() {
    assert(current_ && "no execution context active");
    return *current_;
  }

  /// The active context or nullptr (engine/main context).
  static ExecContext* current_or_null() { return current_; }

  /// RAII activation of a context around a stretch of host code.
  class Activation {
   public:
    explicit Activation(ExecContext* ctx) : prev_(current_) { current_ = ctx; }
    ~Activation() { current_ = prev_; }
    Activation(const Activation&) = delete;
    Activation& operator=(const Activation&) = delete;

   private:
    ExecContext* prev_;
  };

 private:
  // constinit + initial-exec keep every access a plain %fs-relative load:
  // fibers read this from ucontext stacks under ASan/TSan, where the lazy
  // TLS-init guard and __tls_get_addr paths are not reliable.
  PM2SIM_TLS_FAST static thread_local constinit ExecContext* current_;
};

/// Accumulating context for hooks and tasklets: charge() adds to a counter
/// that the scheduler turns into core-busy time once the hook returns.
class HookContext final : public ExecContext {
 public:
  HookContext(mach::Machine& machine, int core)
      : machine_(machine), core_(core) {}

  void charge(sim::Time t) override {
    assert(t >= 0);
    consumed_ += t;
  }
  bool can_block() const override { return false; }
  int core() const override { return core_; }
  mach::Machine& machine() const override { return machine_; }

  sim::Time consumed() const { return consumed_; }
  void reset() { consumed_ = 0; }

  /// Run @p fn with this context active; returns time consumed by it.
  template <typename Fn>
  sim::Time run(Fn&& fn) {
    const sim::Time before = consumed_;
    Activation act(this);
    fn();
    return consumed_ - before;
  }

 private:
  mach::Machine& machine_;
  int core_;
  sim::Time consumed_ = 0;
};

}  // namespace pm2::mth
