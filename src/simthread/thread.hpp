// pm2sim -- simulated threads.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "simcore/time.hpp"
#include "simthread/exec_context.hpp"
#include "simthread/fiber.hpp"

namespace pm2::mth {

class Scheduler;
class Thread;

/// Thread body.
using ThreadFunc = std::function<void()>;

enum class ThreadState {
  kReady,     ///< on a runqueue
  kRunning,   ///< owning a core (possibly suspended mid-charge)
  kBlocked,   ///< waiting on a synchronization object
  kSleeping,  ///< timed sleep
  kFinished,  ///< body returned
};

const char* to_string(ThreadState s);

/// Creation attributes (name, core binding, stack size).
struct ThreadAttrs {
  std::string name = "thread";
  /// Core to pin the thread to; -1 lets the scheduler place it.
  int bind_core = -1;
  std::size_t stack_size = 256 * 1024;
  /// Engine partition the thread's events belong to; -1 (default) uses the
  /// scheduler's home partition (the partition its node was built in).
  /// Progress fibers spawned on behalf of a specific endpoint pass that
  /// endpoint's home partition here, so spawn() calls arriving from a
  /// foreign partition's context (e.g. cross-partition endpoint stealing)
  /// cannot land the new thread's events in the caller's partition.
  int partition = -1;
};

/// Why a fiber gave control back to the scheduler.
enum class SuspendReason {
  kNone,
  kCharge,   ///< consuming virtual CPU time; resume event is scheduled
  kSpin,     ///< busy-spinning on a flag; resume is triggered by the setter
  kYield,    ///< voluntary yield
  kPreempt,  ///< timeslice expired with other work pending
  kBlock,    ///< blocked on a sync object; wake() will requeue it
  kSleep,    ///< timed sleep; wake event is scheduled
  kMigrate,  ///< moving to another core
};

/// ExecContext implementation for code running inside a simulated thread.
class ThreadContext final : public ExecContext {
 public:
  explicit ThreadContext(Thread& thread) : thread_(thread) {}

  void charge(sim::Time t) override;
  bool can_block() const override { return true; }
  int core() const override;
  mach::Machine& machine() const override;

  Thread& thread() const { return thread_; }
  Scheduler& scheduler() const;

 private:
  Thread& thread_;
};

/// A simulated thread. Owned by its Scheduler; user code holds raw
/// pointers, which stay valid until the Scheduler is destroyed.
class Thread {
 public:
  Thread(Scheduler& sched, std::uint64_t id, ThreadFunc body, ThreadAttrs attrs);

  std::uint64_t id() const { return id_; }
  const std::string& name() const { return attrs_.name; }
  ThreadState state() const { return state_; }
  bool finished() const { return state_ == ThreadState::kFinished; }

  /// Core the thread is currently on (or last ran on); -1 before first run.
  int core() const { return core_; }

  /// Requested binding (-1 = unbound).
  int bind_core() const { return attrs_.bind_core; }

  /// Total virtual CPU time consumed by this thread.
  sim::Time cpu_time() const { return cpu_time_; }

 private:
  friend class Scheduler;
  friend class ThreadContext;

  Scheduler& sched_;
  std::uint64_t id_;
  ThreadAttrs attrs_;
  Fiber fiber_;
  ThreadContext ctx_;

  ThreadState state_ = ThreadState::kReady;
  SuspendReason suspend_reason_ = SuspendReason::kNone;
  int core_ = -1;
  int last_core_ = -1;
  sim::Time slice_end_ = 0;
  sim::Time spin_start_ = 0;
  /// Timeline name interned once per (thread, recorder): the scheduler's
  /// per-slice span emission must not re-hash the name string. Mutable --
  /// a cache filled from the const accessor path in timeline_end().
  mutable std::uint16_t tl_name_ = 0;
  mutable const void* tl_name_src_ = nullptr;
  bool spin_parked_ = false;
  bool wake_permit_ = false;
  sim::Time cpu_time_ = 0;
  std::vector<Thread*> joiners_;
};

}  // namespace pm2::mth
