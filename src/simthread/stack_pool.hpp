// pm2sim -- fiber stack recycling.
//
// Every simulated thread runs on a fiber with its own stack (256 KB by
// default). Workloads that churn threads -- spawn/join loops, hybrid apps
// with per-phase workers, benchmarks constructing a fresh world per
// iteration -- would otherwise pay a large allocation plus first-touch page
// faults per spawn. The pool keeps released stacks keyed by size class and
// hands them back on the next acquire, so steady-state thread churn performs
// no stack allocations at all.
//
// The pool is process-wide and, with the partitioned engine, partitions on
// different host threads spawn/retire fibers concurrently -- so the pool is
// mutex-guarded. Pool operations happen on spawn/exit, not per context
// switch, so the lock is far off the hot path.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

namespace pm2::mth {

class StackPool {
 public:
  /// An owned stack; returned to the pool via release().
  struct Stack {
    std::unique_ptr<std::uint8_t[]> mem;
    std::size_t size = 0;

    explicit operator bool() const { return mem != nullptr; }
  };

  /// The process-wide pool.
  static StackPool& instance();

  /// Get a stack of at least @p size bytes; the actual size is @p size
  /// rounded up to the 64 KB size-class granule.
  Stack acquire(std::size_t size);

  /// Return a stack for reuse. Classes cache at most kMaxPooledPerClass
  /// stacks; beyond that the memory is freed.
  void release(Stack s);

  /// Free every cached stack (tests / memory pressure).
  void trim();

  /// Acquires served from the cache vs. fresh allocations (diagnostics).
  std::uint64_t reuses() const {
    std::lock_guard<std::mutex> lock(mu_);
    return reuses_;
  }
  std::uint64_t fresh_allocs() const {
    std::lock_guard<std::mutex> lock(mu_);
    return fresh_allocs_;
  }

  /// Bytes currently cached and idle in the pool.
  std::size_t pooled_bytes() const {
    std::lock_guard<std::mutex> lock(mu_);
    return pooled_bytes_;
  }

  static constexpr std::size_t kGranule = 64 * 1024;
  static constexpr std::size_t kMaxPooledPerClass = 64;

 private:
  mutable std::mutex mu_;
  std::map<std::size_t, std::vector<Stack>> classes_;
  std::uint64_t reuses_ = 0;
  std::uint64_t fresh_allocs_ = 0;
  std::size_t pooled_bytes_ = 0;
};

}  // namespace pm2::mth
