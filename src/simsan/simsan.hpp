// pm2sim -- simsan: deterministic concurrency analysis for the simulated
// threading stack.
//
// The simulator runs every interleaving decision on one host thread under a
// virtual clock, so concurrency analysis that is heuristic on real machines
// becomes *reproducible* here: the same seed yields the same event stream,
// the same vector clocks, and byte-identical reports. Three analyses share
// one event stream, tapped from the scheduler (wake/spawn edges), the sync
// primitives (lock acquire/release, signal edges), and the SIMSAN_ACCESS
// annotations on NewMadeleine's declared shared state:
//
//  1. Race detection -- an Eraser-style lockset check combined with
//     FastTrack-style vector-clock happens-before: an access pair races iff
//     it is unordered by happens-before AND the two accesses share no lock.
//     Under LockMode::kNone the collect/matching/transfer lists provably
//     race on the paper's Fig. 3 workload; kCoarse/kFine run clean.
//  2. Lock-order analysis -- a directed graph of "held A while blocking on
//     B" edges with cycle detection. Cycles are flagged even when the two
//     acquisition chains never overlap in (virtual) time.
//  3. Context rules -- the "thread context only" / "hook-safe" comments in
//     sync/ and pioman/ turned into machine-checked rules: blocking
//     primitives entered from hook context, blocking while holding a
//     spinlock (the release_library_all() contract), CondVar::wait without
//     the mutex, re-entrant Mutex::lock.
//
// The analyzer is always compiled and runtime-switchable: disabled, every
// tap is one branch on a global flag and zero allocation; enabled, events
// cost a hash lookup or two. Enable per world via Cluster::enable_simsan()
// (which also routes report timestamps to that world's virtual clock) or
// directly via Analyzer::global().
//
// This header is deliberately free of simthread/sync includes so the
// library sits *below* pm2_simthread in the link order; the inline taps
// that resolve execution contexts to actors live in simsan/context.hpp.
#pragma once

#include <cstdint>
#include <cstdio>
#include <functional>
#include <map>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "obs/metrics.hpp"

namespace pm2::san {

/// Actor id of "nobody": the engine context (raw events, world setup) is
/// not a schedulable actor and its accesses are not analyzed.
inline constexpr std::uint32_t kNoActor = 0xffffffffu;

enum class ActorKind : std::uint8_t {
  kThread,  ///< a simulated thread (stable identity: its ThreadContext)
  kHook,    ///< hook/tasklet runs on one (machine, core) -- serialized, so
            ///< all runs on that core form one logical actor
};

enum class LockKind : std::uint8_t {
  kSpin,    ///< active-wait lock; holding one forbids blocking
  kMutex,   ///< blocking lock
  kRw,      ///< readers-writer lock (readers and writer share the slot)
  kHbOnly,  ///< pseudo-lock carrying happens-before only (condvars,
            ///< semaphores, completion flags, barriers); never "held"
};

enum class FindingKind : std::uint8_t {
  kRace,
  kLockOrderCycle,
  kContextViolation,
};

const char* to_string(FindingKind k);

struct Finding {
  FindingKind kind;
  std::string rule;     ///< short machine-readable id ("write-write-race")
  std::string message;  ///< human text with actor/lock/object names
  std::uint64_t time_ns = 0;  ///< virtual time when detected
};

/// Cached analyzer slot embedded in an instrumented object. Epoch 0 never
/// matches a live analyzer run, so default-initialized tags re-intern
/// lazily after every reset() -- object construction stays free.
struct SlotTag {
  std::uint32_t id = 0;
  std::uint32_t epoch = 0;
};

/// A declared unit of shared state (a list, a table). Embed one per
/// protected structure and annotate every access with SIMSAN_ACCESS (see
/// simsan/context.hpp). Construction never touches the analyzer.
class Shared {
 public:
  explicit Shared(std::string name) : name_(std::move(name)) {}
  const std::string& name() const { return name_; }
  void set_name(std::string n) { name_ = std::move(n); }

 private:
  friend class Analyzer;
  std::string name_;
  SlotTag tag_;
};

class Analyzer {
 public:
  /// The calling thread's analyzer shard. With the partitioned engine each
  /// partition gets a private shard (selected via sim::tls_partition, like
  /// the metrics registry's counter shards), so taps stay lock-free and
  /// each shard's event stream -- coming from one partition's deterministic
  /// schedule -- is itself deterministic. Single-partition worlds always
  /// resolve to shard 0, the original process-global instance.
  static Analyzer& global();

  /// Size the shard set for @p n engine partitions (never shrinks; shard 0
  /// always exists). Installed by Cluster::enable_simsan.
  static void configure_shards(int n);
  static int num_shards();
  static Analyzer& shard(int i);

  /// Cross-shard report: totals summed and findings concatenated in shard
  /// index order -- a partition-stable order, so the merged report is
  /// byte-identical for any worker count (and identical to the single
  /// instance's report when only shard 0 exists).
  static std::size_t merged_total_findings();
  static std::string merged_report_json();
  static void merged_print_report(std::FILE* out);

  Analyzer() = default;
  Analyzer(const Analyzer&) = delete;
  Analyzer& operator=(const Analyzer&) = delete;

  bool enabled() const { return enabled_; }
  /// Enabling (re-)registers the simsan counters with the metrics registry
  /// (zeroing them); disabling leaves findings readable until reset().
  void set_enabled(bool on);

  /// Wipe all analysis state and findings and start a fresh run. Embedded
  /// SlotTags from previous runs are invalidated by the epoch bump.
  void reset();
  std::uint32_t epoch() const { return epoch_; }

  /// Source of report timestamps (virtual nanoseconds). Installed by
  /// Cluster::enable_simsan(); null means "stamp 0".
  void set_now_fn(std::function<std::uint64_t()> fn) { now_fn_ = std::move(fn); }

  // --- identity interning ---------------------------------------------------

  std::uint32_t thread_actor(const void* key, const std::string& name);
  std::uint32_t hook_actor(const void* machine, int core,
                           const std::string& node_name);
  std::uint32_t lock_slot(SlotTag& tag, const std::string& name, LockKind kind);

  // --- event stream ---------------------------------------------------------

  /// A lock was acquired. @p blocking: the caller was prepared to wait
  /// (lock-order edges are recorded); try-acquisitions pass false (a
  /// try_lock can never complete a deadlock cycle).
  void on_acquire(std::uint32_t actor, std::uint32_t lock, bool blocking);
  void on_release(std::uint32_t actor, std::uint32_t lock);

  /// Happens-before publish/observe through a pseudo-lock slot (semaphore
  /// release->acquire, condvar notify->wait, flag set->wait, barrier).
  void hb_release(std::uint32_t actor, std::uint32_t slot);
  void hb_acquire(std::uint32_t actor, std::uint32_t slot);

  /// Direct happens-before edge src -> dst (scheduler wake, thread spawn).
  void on_wake(std::uint32_t src, std::uint32_t dst);

  /// The actor entered a may-block primitive named @p what. Flags the
  /// "never block while holding a spinlock" rule (active waiting is allowed
  /// -- the paper's coarse design busy-waits holding the library lock).
  void on_block(std::uint32_t actor, const char* what);

  /// One access to declared shared state.
  void on_access(std::uint32_t actor, Shared& obj, bool is_write);

  /// Record a context-rule violation. Returns true iff the analyzer is
  /// enabled -- callers use it to soften an assert into a reported finding
  /// during analysis runs:  `if (!report_context(...)) assert(false && ..)`.
  bool report_context(std::uint32_t actor, const char* rule,
                      const std::string& detail);

  // --- results --------------------------------------------------------------

  std::size_t races() const { return races_; }
  std::size_t lock_order_cycles() const { return cycles_; }
  std::size_t context_violations() const { return ctx_violations_; }
  std::size_t total_findings() const {
    return races_ + cycles_ + ctx_violations_;
  }
  const std::vector<Finding>& findings() const { return findings_; }

  /// {"races":N,...,"findings":[{...}]} -- deterministic for a
  /// deterministic run (insertion-ordered, no host state).
  std::string report_json() const;

  /// Human-readable summary + one line per finding.
  void print_report(std::FILE* out) const;

 private:
  using Clock = std::vector<std::uint32_t>;

  struct ActorState {
    std::string name;
    ActorKind kind = ActorKind::kThread;
    Clock clock;                      ///< clock[self] starts at 1
    std::vector<std::uint32_t> held;  ///< lock slots, acquisition order
    int spin_held = 0;                ///< count of kSpin entries in held
  };

  struct LockState {
    std::string name;
    LockKind kind = LockKind::kMutex;
    Clock clock;  ///< released-at clock (joined, not assigned: readers)
  };

  struct Access {
    std::uint32_t actor = kNoActor;
    std::uint32_t at = 0;                ///< acting actor's clock[actor]
    std::vector<std::uint32_t> locks;    ///< held lock slots at the access
    std::uint64_t time_ns = 0;
  };

  struct ObjState {
    std::string name;
    Access last_write;
    std::vector<Access> reads;  ///< one per actor since the last write
  };

  static void join(Clock& a, const Clock& b);
  std::uint32_t tick(ActorState& a, std::uint32_t self);
  bool ordered_before(const Access& prev, const ActorState& cur) const;
  static bool share_lock(const std::vector<std::uint32_t>& a,
                         const std::vector<std::uint32_t>& b);
  std::uint64_t now() const { return now_fn_ ? now_fn_() : 0; }
  void add_finding(FindingKind kind, const char* rule, std::string message);
  void report_race(const char* rule, const Access& prev, std::uint32_t actor,
                   const ObjState& obj, std::uint32_t obj_id);
  void add_order_edge(std::uint32_t from, std::uint32_t to,
                      std::uint32_t actor);
  bool find_path(std::uint32_t from, std::uint32_t to,
                 std::vector<std::uint32_t>& path) const;
  ObjState& resolve_obj(Shared& obj);
  std::string actor_name(std::uint32_t a) const;
  std::string lock_names(const std::vector<std::uint32_t>& locks) const;

  bool enabled_ = false;
  std::uint32_t epoch_ = 1;
  std::function<std::uint64_t()> now_fn_;

  std::vector<ActorState> actors_;
  std::unordered_map<const void*, std::uint32_t> thread_actors_;
  std::map<std::pair<const void*, int>, std::uint32_t> hook_actors_;

  std::vector<LockState> locks_;
  std::vector<ObjState> objects_;

  // Lock-order graph: adjacency per lock slot + dedup of recorded edges
  // and reported cycles (by canonical member set).
  std::vector<std::vector<std::uint32_t>> order_adj_;
  std::unordered_set<std::uint64_t> order_edges_;
  std::unordered_set<std::string> reported_cycles_;

  std::unordered_set<std::uint64_t> reported_races_;
  std::unordered_set<std::string> reported_ctx_;

  std::vector<Finding> findings_;
  std::size_t races_ = 0;
  std::size_t cycles_ = 0;
  std::size_t ctx_violations_ = 0;

  obs::Counter m_races_;
  obs::Counter m_cycles_;
  obs::Counter m_ctx_;
};

}  // namespace pm2::san
