#include "simsan/simsan.hpp"

#include <algorithm>
#include <cassert>
#include <memory>

namespace pm2::san {

namespace {

// Bound on *recorded* findings: counters keep counting past it, but the
// report stays readable and memory stays bounded on pathological runs.
constexpr std::size_t kMaxFindings = 256;

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c; break;
    }
  }
  return out;
}

}  // namespace

const char* to_string(FindingKind k) {
  switch (k) {
    case FindingKind::kRace: return "race";
    case FindingKind::kLockOrderCycle: return "lock-order-cycle";
    case FindingKind::kContextViolation: return "context-violation";
  }
  return "?";
}

namespace {

/// Shard store (leaked: tap sites may run from static destructors). Shard 0
/// is created eagerly so pre-partitioned call sites see one instance.
std::vector<std::unique_ptr<Analyzer>>& shard_store() {
  static auto* shards = [] {
    auto* s = new std::vector<std::unique_ptr<Analyzer>>();
    s->push_back(std::make_unique<Analyzer>());
    return s;
  }();
  return *shards;
}

}  // namespace

Analyzer& Analyzer::global() {
  auto& shards = shard_store();
  const int p = sim::tls_partition;
  const std::size_t i =
      p > 0 && static_cast<std::size_t>(p) < shards.size()
          ? static_cast<std::size_t>(p)
          : 0;
  return *shards[i];
}

void Analyzer::configure_shards(int n) {
  auto& shards = shard_store();
  while (shards.size() < static_cast<std::size_t>(n > 1 ? n : 1)) {
    shards.push_back(std::make_unique<Analyzer>());
  }
}

int Analyzer::num_shards() {
  return static_cast<int>(shard_store().size());
}

Analyzer& Analyzer::shard(int i) {
  return *shard_store().at(static_cast<std::size_t>(i));
}

std::size_t Analyzer::merged_total_findings() {
  std::size_t total = 0;
  for (const auto& s : shard_store()) total += s->total_findings();
  return total;
}

std::string Analyzer::merged_report_json() {
  auto& shards = shard_store();
  std::size_t races = 0, cycles = 0, ctx = 0;
  for (const auto& s : shards) {
    races += s->races_;
    cycles += s->cycles_;
    ctx += s->ctx_violations_;
  }
  std::string out = "{\"races\":" + std::to_string(races) +
                    ",\"lock_order_cycles\":" + std::to_string(cycles) +
                    ",\"context_violations\":" + std::to_string(ctx) +
                    ",\"findings\":[";
  bool first = true;
  for (const auto& s : shards) {
    for (const Finding& f : s->findings_) {
      if (!first) out += ",";
      first = false;
      out += "{\"kind\":\"" + std::string(to_string(f.kind)) +
             "\",\"rule\":\"" + json_escape(f.rule) +
             "\",\"time_ns\":" + std::to_string(f.time_ns) +
             ",\"message\":\"" + json_escape(f.message) + "\"}";
    }
  }
  out += "]}";
  return out;
}

void Analyzer::merged_print_report(std::FILE* out) {
  auto& shards = shard_store();
  std::size_t races = 0, cycles = 0, ctx = 0, recorded = 0;
  for (const auto& s : shards) {
    races += s->races_;
    cycles += s->cycles_;
    ctx += s->ctx_violations_;
    recorded += s->findings_.size();
  }
  std::fprintf(out,
               "simsan: %zu race(s), %zu lock-order cycle(s), %zu context "
               "violation(s)\n",
               races, cycles, ctx);
  for (const auto& s : shards) {
    for (const Finding& f : s->findings_) {
      std::fprintf(out, "[simsan] t=%lluns %s (%s): %s\n",
                   static_cast<unsigned long long>(f.time_ns),
                   to_string(f.kind), f.rule.c_str(), f.message.c_str());
    }
  }
  const std::size_t total = races + cycles + ctx;
  if (total > recorded) {
    std::fprintf(out, "[simsan] ... %zu further finding(s) not recorded\n",
                 total - recorded);
  }
}

void Analyzer::set_enabled(bool on) {
  if (on && !enabled_) {
    auto& reg = obs::MetricsRegistry::global();
    m_races_ = reg.counter({"simsan", "", -1, "races"});
    m_cycles_ = reg.counter({"simsan", "", -1, "lock_order_cycles"});
    m_ctx_ = reg.counter({"simsan", "", -1, "context_violations"});
  }
  enabled_ = on;
}

void Analyzer::reset() {
  ++epoch_;
  actors_.clear();
  thread_actors_.clear();
  hook_actors_.clear();
  locks_.clear();
  objects_.clear();
  order_adj_.clear();
  order_edges_.clear();
  reported_cycles_.clear();
  reported_races_.clear();
  reported_ctx_.clear();
  findings_.clear();
  races_ = 0;
  cycles_ = 0;
  ctx_violations_ = 0;
}

// --- identity ---------------------------------------------------------------

std::uint32_t Analyzer::thread_actor(const void* key, const std::string& name) {
  auto [it, inserted] =
      thread_actors_.emplace(key, static_cast<std::uint32_t>(actors_.size()));
  if (inserted) {
    ActorState a;
    a.name = name;
    a.kind = ActorKind::kThread;
    a.clock.resize(actors_.size() + 1, 0);
    a.clock[actors_.size()] = 1;
    actors_.push_back(std::move(a));
  }
  return it->second;
}

std::uint32_t Analyzer::hook_actor(const void* machine, int core,
                                   const std::string& node_name) {
  auto [it, inserted] = hook_actors_.emplace(
      std::make_pair(machine, core), static_cast<std::uint32_t>(actors_.size()));
  if (inserted) {
    ActorState a;
    a.name = node_name + ".hook" + std::to_string(core);
    a.kind = ActorKind::kHook;
    a.clock.resize(actors_.size() + 1, 0);
    a.clock[actors_.size()] = 1;
    actors_.push_back(std::move(a));
  }
  return it->second;
}

std::uint32_t Analyzer::lock_slot(SlotTag& tag, const std::string& name,
                                  LockKind kind) {
  if (tag.epoch == epoch_) return tag.id;
  tag.id = static_cast<std::uint32_t>(locks_.size());
  tag.epoch = epoch_;
  locks_.push_back(LockState{name, kind, Clock{}});
  return tag.id;
}

// --- clock helpers ----------------------------------------------------------

void Analyzer::join(Clock& a, const Clock& b) {
  if (b.size() > a.size()) a.resize(b.size(), 0);
  for (std::size_t i = 0; i < b.size(); ++i) a[i] = std::max(a[i], b[i]);
}

std::uint32_t Analyzer::tick(ActorState& a, std::uint32_t self) {
  if (a.clock.size() <= self) a.clock.resize(self + 1, 0);
  return ++a.clock[self];
}

bool Analyzer::ordered_before(const Access& prev,
                              const ActorState& cur) const {
  if (prev.actor >= cur.clock.size()) return false;
  return cur.clock[prev.actor] >= prev.at;
}

bool Analyzer::share_lock(const std::vector<std::uint32_t>& a,
                          const std::vector<std::uint32_t>& b) {
  for (std::uint32_t la : a) {
    for (std::uint32_t lb : b) {
      if (la == lb) return true;
    }
  }
  return false;
}

// --- events -----------------------------------------------------------------

void Analyzer::on_acquire(std::uint32_t actor, std::uint32_t lock,
                          bool blocking) {
  if (!enabled_ || actor == kNoActor) return;
  ActorState& a = actors_[actor];
  LockState& l = locks_[lock];
  join(a.clock, l.clock);
  if (blocking) {
    const bool reentrant =
        std::find(a.held.begin(), a.held.end(), lock) != a.held.end();
    if (reentrant) {
      const std::string key = "reentrant:" + std::to_string(lock) + ":" +
                              std::to_string(actor);
      if (reported_cycles_.insert(key).second) {
        ++cycles_;
        m_cycles_.add_always(1);
        add_finding(FindingKind::kLockOrderCycle, "self-deadlock",
                    actor_name(actor) + " blocking-acquires \"" + l.name +
                        "\" while already holding it");
      }
    } else {
      for (std::uint32_t h : a.held) add_order_edge(h, lock, actor);
    }
  }
  a.held.push_back(lock);
  if (l.kind == LockKind::kSpin) ++a.spin_held;
}

void Analyzer::on_release(std::uint32_t actor, std::uint32_t lock) {
  if (!enabled_ || actor == kNoActor) return;
  ActorState& a = actors_[actor];
  LockState& l = locks_[lock];
  // Join (not assign) so a reader releasing an RWLock does not erase the
  // happens-before earlier readers published; conservative for exclusive
  // locks (extra ordering never creates a false positive).
  join(l.clock, a.clock);
  tick(a, actor);
  auto it = std::find(a.held.rbegin(), a.held.rend(), lock);
  if (it != a.held.rend()) {
    a.held.erase(std::next(it).base());
    if (l.kind == LockKind::kSpin) --a.spin_held;
  }
}

void Analyzer::hb_release(std::uint32_t actor, std::uint32_t slot) {
  if (!enabled_ || actor == kNoActor) return;
  ActorState& a = actors_[actor];
  join(locks_[slot].clock, a.clock);
  tick(a, actor);
}

void Analyzer::hb_acquire(std::uint32_t actor, std::uint32_t slot) {
  if (!enabled_ || actor == kNoActor) return;
  join(actors_[actor].clock, locks_[slot].clock);
}

void Analyzer::on_wake(std::uint32_t src, std::uint32_t dst) {
  if (!enabled_ || src == kNoActor || dst == kNoActor || src == dst) return;
  ActorState& s = actors_[src];
  join(actors_[dst].clock, s.clock);
  tick(s, src);
}

void Analyzer::on_block(std::uint32_t actor, const char* what) {
  if (!enabled_ || actor == kNoActor) return;
  ActorState& a = actors_[actor];
  if (a.spin_held == 0) return;
  std::vector<std::uint32_t> spins;
  for (std::uint32_t h : a.held) {
    if (locks_[h].kind == LockKind::kSpin) spins.push_back(h);
  }
  const std::string key = "block-spin:" + std::to_string(actor) + ":" + what +
                          ":" + std::to_string(spins.empty() ? 0 : spins[0]);
  if (!reported_ctx_.insert(key).second) return;
  ++ctx_violations_;
  m_ctx_.add_always(1);
  add_finding(FindingKind::kContextViolation, "block-while-spinlock-held",
              actor_name(actor) + " enters blocking " + what +
                  " while holding spinlock(s) " + lock_names(spins));
}

void Analyzer::on_access(std::uint32_t actor, Shared& obj, bool is_write) {
  if (!enabled_ || actor == kNoActor) return;
  const std::uint32_t obj_id = lock_slot(obj.tag_, obj.name_, LockKind::kHbOnly);
  // Object state is kept parallel to the slot table (slots are shared
  // between locks and objects; an id is only ever used as one or the other).
  if (objects_.size() <= obj_id) objects_.resize(obj_id + 1);
  ObjState& o = objects_[obj_id];
  o.name = obj.name_;
  ActorState& a = actors_[actor];
  Access cur;
  cur.actor = actor;
  cur.at = a.clock.size() > actor ? a.clock[actor] : 0;
  cur.locks = a.held;
  cur.time_ns = now();

  const Access& w = o.last_write;
  if (w.actor != kNoActor && w.actor != actor && !ordered_before(w, a) &&
      !share_lock(w.locks, cur.locks)) {
    report_race(is_write ? "write-write-race" : "read-write-race", w, actor,
                o, obj_id);
  }
  if (is_write) {
    for (const Access& r : o.reads) {
      if (r.actor != actor && !ordered_before(r, a) &&
          !share_lock(r.locks, cur.locks)) {
        report_race("write-read-race", r, actor, o, obj_id);
      }
    }
    o.reads.clear();
    o.last_write = std::move(cur);
  } else {
    auto it = std::find_if(o.reads.begin(), o.reads.end(),
                           [&](const Access& r) { return r.actor == actor; });
    if (it != o.reads.end()) {
      *it = std::move(cur);
    } else {
      o.reads.push_back(std::move(cur));
    }
  }
}

bool Analyzer::report_context(std::uint32_t actor, const char* rule,
                              const std::string& detail) {
  if (!enabled_) return false;
  const std::string key = std::string(rule) + ":" + detail;
  if (reported_ctx_.insert(key).second) {
    ++ctx_violations_;
    m_ctx_.add_always(1);
    add_finding(FindingKind::kContextViolation, rule,
                (actor == kNoActor ? std::string("<engine>")
                                   : actor_name(actor)) +
                    ": " + detail);
  }
  return true;
}

// --- findings ---------------------------------------------------------------

void Analyzer::add_finding(FindingKind kind, const char* rule,
                           std::string message) {
  if (findings_.size() >= kMaxFindings) return;
  findings_.push_back(Finding{kind, rule, std::move(message), now()});
}

void Analyzer::report_race(const char* rule, const Access& prev,
                           std::uint32_t actor, const ObjState& obj,
                           std::uint32_t obj_id) {
  const std::uint32_t lo = std::min(prev.actor, actor);
  const std::uint32_t hi = std::max(prev.actor, actor);
  const std::uint64_t key = (static_cast<std::uint64_t>(obj_id) << 32) |
                            (static_cast<std::uint64_t>(lo) << 16) | hi;
  if (!reported_races_.insert(key).second) return;
  ++races_;
  m_races_.add_always(1);
  add_finding(FindingKind::kRace, rule,
              "\"" + obj.name + "\": " + actor_name(actor) +
                  " conflicts with " + actor_name(prev.actor) +
                  " (no common lock, unordered by happens-before; prior "
                  "access at t=" +
                  std::to_string(prev.time_ns) + "ns held [" +
                  lock_names(prev.locks) + "])");
}

void Analyzer::add_order_edge(std::uint32_t from, std::uint32_t to,
                              std::uint32_t actor) {
  const std::uint64_t key =
      (static_cast<std::uint64_t>(from) << 32) | to;
  if (!order_edges_.insert(key).second) return;
  if (order_adj_.size() <= std::max(from, to)) {
    order_adj_.resize(std::max(from, to) + 1);
  }
  order_adj_[from].push_back(to);
  // New edge from->to closes a cycle iff `from` was already reachable from
  // `to`. The graph is tiny (a handful of named locks), so a DFS per new
  // edge is fine.
  std::vector<std::uint32_t> path;
  if (!find_path(to, from, path)) return;
  // Cycle members: to -> ... -> from -> to.
  std::vector<std::uint32_t> members = path;
  std::vector<std::uint32_t> canon = members;
  std::sort(canon.begin(), canon.end());
  std::string ckey;
  for (std::uint32_t m : canon) ckey += std::to_string(m) + ",";
  if (!reported_cycles_.insert(ckey).second) return;
  ++cycles_;
  m_cycles_.add_always(1);
  std::string msg = "lock order cycle closed by " + actor_name(actor) +
                    " acquiring \"" + locks_[to].name + "\" while holding \"" +
                    locks_[from].name + "\": cycle ";
  for (std::uint32_t m : members) msg += "\"" + locks_[m].name + "\" -> ";
  msg += "\"" + locks_[to].name + "\"";
  add_finding(FindingKind::kLockOrderCycle, "lock-order-cycle",
              std::move(msg));
}

bool Analyzer::find_path(std::uint32_t from, std::uint32_t to,
                         std::vector<std::uint32_t>& path) const {
  if (from >= order_adj_.size()) return false;
  path.push_back(from);
  if (from == to) return true;
  for (std::uint32_t next : order_adj_[from]) {
    // The path also serves as the visited set; lock graphs here are small
    // and acyclic until the first finding.
    if (std::find(path.begin(), path.end(), next) != path.end()) continue;
    if (find_path(next, to, path)) return true;
  }
  path.pop_back();
  return false;
}

// --- reporting --------------------------------------------------------------

std::string Analyzer::actor_name(std::uint32_t a) const {
  if (a >= actors_.size()) return "actor" + std::to_string(a);
  return actors_[a].name;
}

std::string Analyzer::lock_names(const std::vector<std::uint32_t>& locks) const {
  if (locks.empty()) return "<none>";
  std::string out;
  for (std::size_t i = 0; i < locks.size(); ++i) {
    if (i > 0) out += ", ";
    out += "\"" + locks_[locks[i]].name + "\"";
  }
  return out;
}

std::string Analyzer::report_json() const {
  std::string out = "{\"races\":" + std::to_string(races_) +
                    ",\"lock_order_cycles\":" + std::to_string(cycles_) +
                    ",\"context_violations\":" + std::to_string(ctx_violations_) +
                    ",\"findings\":[";
  for (std::size_t i = 0; i < findings_.size(); ++i) {
    const Finding& f = findings_[i];
    if (i > 0) out += ",";
    out += "{\"kind\":\"" + std::string(to_string(f.kind)) + "\",\"rule\":\"" +
           json_escape(f.rule) + "\",\"time_ns\":" +
           std::to_string(f.time_ns) + ",\"message\":\"" +
           json_escape(f.message) + "\"}";
  }
  out += "]}";
  return out;
}

void Analyzer::print_report(std::FILE* out) const {
  std::fprintf(out,
               "simsan: %zu race(s), %zu lock-order cycle(s), %zu context "
               "violation(s)\n",
               races_, cycles_, ctx_violations_);
  for (const Finding& f : findings_) {
    std::fprintf(out, "[simsan] t=%lluns %s (%s): %s\n",
                 static_cast<unsigned long long>(f.time_ns),
                 to_string(f.kind), f.rule.c_str(), f.message.c_str());
  }
  if (total_findings() > findings_.size()) {
    std::fprintf(out, "[simsan] ... %zu further finding(s) not recorded\n",
                 total_findings() - findings_.size());
  }
}

}  // namespace pm2::san
