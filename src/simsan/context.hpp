// pm2sim -- simsan taps: resolving execution contexts to analyzer actors.
//
// This header is the bridge between the analyzer core (simsan.hpp, which
// sits below pm2_simthread in the link order) and the threading stack. It
// is header-only and included from instrumented .cpp files in simthread/,
// sync/, pioman/ and nmad/ -- never from simsan.cpp itself.
//
// Every helper is a no-op unless the analyzer is enabled; guard multi-step
// call sites with `san::on()` so the disabled cost stays at one branch.
#pragma once

#include "simsan/simsan.hpp"
#include "simthread/thread.hpp"

namespace pm2::san {

inline bool on() { return Analyzer::global().enabled(); }

/// The analyzer actor for an execution context. Thread contexts are stable
/// actors keyed by their ThreadContext; hook/tasklet contexts collapse onto
/// one actor per (machine, core) -- hook runs on a core are serialized, so
/// that is the unit that can race with threads. The id is cached in the
/// context and invalidated by Analyzer::reset() through the epoch.
inline std::uint32_t actor_of(mth::ExecContext& ctx) {
  Analyzer& a = Analyzer::global();
  if (ctx.san_epoch == a.epoch()) return ctx.san_actor;
  std::uint32_t id;
  if (ctx.can_block()) {
    // ThreadContext is the only context that can block.
    auto& tc = static_cast<mth::ThreadContext&>(ctx);
    id = a.thread_actor(&tc, tc.thread().name());
  } else {
    id = a.hook_actor(&ctx.machine(), ctx.core(), ctx.machine().name());
  }
  ctx.san_actor = id;
  ctx.san_epoch = a.epoch();
  return id;
}

/// Actor for the currently active context; kNoActor in the engine context
/// (world setup, raw event callbacks), whose accesses are not analyzed.
inline std::uint32_t current_actor() {
  mth::ExecContext* ctx = mth::ExecContext::current_or_null();
  return ctx == nullptr ? kNoActor : actor_of(*ctx);
}

// --- tap helpers (all enabled-checked, engine-context tolerant) -------------

inline void acquired(SlotTag& tag, const std::string& name, LockKind kind,
                     bool blocking) {
  Analyzer& a = Analyzer::global();
  if (!a.enabled()) return;
  const std::uint32_t actor = current_actor();
  if (actor == kNoActor) return;
  a.on_acquire(actor, a.lock_slot(tag, name, kind), blocking);
}

inline void released(SlotTag& tag, const std::string& name, LockKind kind) {
  Analyzer& a = Analyzer::global();
  if (!a.enabled()) return;
  const std::uint32_t actor = current_actor();
  if (actor == kNoActor) return;
  a.on_release(actor, a.lock_slot(tag, name, kind));
}

/// Publish the caller's clock through a pseudo-lock (notify, sem release,
/// flag set, barrier arrival).
inline void hb_release(SlotTag& tag, const std::string& name) {
  Analyzer& a = Analyzer::global();
  if (!a.enabled()) return;
  const std::uint32_t actor = current_actor();
  if (actor == kNoActor) return;
  a.hb_release(actor, a.lock_slot(tag, name, LockKind::kHbOnly));
}

/// Observe previously published clocks (wait return, sem acquire).
inline void hb_acquire(SlotTag& tag, const std::string& name) {
  Analyzer& a = Analyzer::global();
  if (!a.enabled()) return;
  const std::uint32_t actor = current_actor();
  if (actor == kNoActor) return;
  a.hb_acquire(actor, a.lock_slot(tag, name, LockKind::kHbOnly));
}

/// The caller entered a may-block primitive (checks the no-blocking-while-
/// holding-a-spinlock rule). Call at the entry of every blocking path, not
/// at busy-wait loops: active waiting with a lock held is legitimate here
/// (the paper's coarse mode busy-waits holding the library lock).
inline void block_point(const char* what) {
  Analyzer& a = Analyzer::global();
  if (!a.enabled()) return;
  const std::uint32_t actor = current_actor();
  if (actor != kNoActor) a.on_block(actor, what);
}

/// Report a context-rule violation; returns true iff the analyzer is
/// enabled (callers then skip the assert and take a safe fallback).
inline bool violation(const char* rule, const std::string& detail) {
  Analyzer& a = Analyzer::global();
  if (!a.enabled()) return false;
  return a.report_context(current_actor(), rule, detail);
}

/// One access to declared shared state (engine context is skipped).
inline void access(Shared& obj, bool is_write) {
  Analyzer& a = Analyzer::global();
  if (!a.enabled()) return;
  const std::uint32_t actor = current_actor();
  if (actor != kNoActor) a.on_access(actor, obj, is_write);
}

}  // namespace pm2::san

/// Annotate a mutation (or read: _RO) of declared shared state. One branch
/// on a global flag while the analyzer is disabled.
#define SIMSAN_ACCESS(obj) \
  do {                     \
    if (pm2::san::on()) pm2::san::access((obj), /*is_write=*/true); \
  } while (0)
#define SIMSAN_ACCESS_RO(obj) \
  do {                        \
    if (pm2::san::on()) pm2::san::access((obj), /*is_write=*/false); \
  } while (0)
