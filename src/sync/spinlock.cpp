#include "sync/spinlock.hpp"

#include <cassert>

#include "simsan/context.hpp"
#include "sync/context_util.hpp"

namespace pm2::sync {

SpinLock::SpinLock(mth::Scheduler& sched, std::string name)
    : sched_(sched), name_(std::move(name)) {
  auto& reg = obs::MetricsRegistry::global();
  const std::string& node = sched_.machine().name();
  m_acquisitions_ =
      reg.counter({"sync", node, -1, name_ + ".acquisitions"});
  m_contentions_ = reg.counter({"sync", node, -1, name_ + ".contentions"});
  m_hold_ns_ = reg.counter({"sync", node, -1, name_ + ".hold_ns"});
}

void SpinLock::lock() {
  auto& ctx = mth::ExecContext::current();
  ctx.touch(line_);
  ctx.charge(sched_.costs().spin_acquire);
  if (!held_) {
    held_ = true;
    note_acquired(/*blocking=*/true);
    return;
  }
  // Contended: actively spin until a release lets us in. A release wakes
  // the oldest spinner for a retry, but the retry pays the re-check period
  // plus a line transfer -- a local thread re-acquiring immediately wins
  // that race (barging), unless we have been spinning beyond the fairness
  // horizon, in which case unlock() hands the lock over directly.
  if (!ctx.can_block()) {
    // Under analysis this becomes a reported finding and the acquisition is
    // abandoned (the caller does not get the lock) so the run stays alive.
    if (san::violation("spin-in-hook", "SpinLock::lock contended on \"" +
                                           name_ + "\" in hook context")) {
      return;
    }
    assert(false &&
           "spinlock contention outside a thread context; use try_lock()");
    return;
  }
  ++contentions_;
  m_contentions_.inc();
  mth::Thread* self = sched_.current_thread();
  const sim::Time park_start = sched_.engine().now();
  for (;;) {
    // With other threads queued on this core, parking could starve the
    // holder itself: spin-then-yield instead (what preemptible spinlock
    // users must do when threads outnumber cores).
    if (sched_.runqueue_length(self->core()) > 0) {
      ctx.charge(sched_.costs().spin_retry);
      sched_.yield();
      ctx.touch(line_);
      ctx.charge(sched_.costs().spin_acquire);
      if (granted_ == self) {
        granted_ = nullptr;
        assert(held_);
        note_acquired(/*blocking=*/true);
        return;
      }
      if (!held_) {
        held_ = true;
        note_acquired(/*blocking=*/true);
        return;
      }
      continue;
    }
    spinners_.push_back(Waiter{self, park_start});
    sched_.spin_park();
    if (granted_ == self) {
      // Direct handoff: held_ stayed true on our behalf.
      granted_ = nullptr;
      assert(held_);
      ctx.touch(line_);
      note_acquired(/*blocking=*/true);
      return;
    }
    // Woken for a retry window: pay the attempt and re-check.
    ctx.touch(line_);
    ctx.charge(sched_.costs().spin_acquire);
    if (!held_) {
      held_ = true;
      note_acquired(/*blocking=*/true);
      return;
    }
  }
}

bool SpinLock::try_lock() {
  auto& ctx = mth::ExecContext::current();
  ctx.touch(line_);
  ctx.charge(sched_.costs().spin_acquire);
  if (held_) return false;
  held_ = true;
  note_acquired(/*blocking=*/false);
  return true;
}

void SpinLock::san_acquired(bool blocking) {
  san::acquired(san_tag_, name_, san::LockKind::kSpin, blocking);
}

void SpinLock::san_released() {
  san::released(san_tag_, name_, san::LockKind::kSpin);
}

void SpinLock::unlock() {
  assert(held_ && "unlock of a free SpinLock");
  if (san::on()) san_released();
  if (acquired_at_ >= 0) {
    m_hold_ns_.inc(
        static_cast<std::uint64_t>(sched_.engine().now() - acquired_at_));
    acquired_at_ = -1;
  }
  charge_if_ctx(sched_.costs().spin_release);
  if (!spinners_.empty()) {
    Waiter w = spinners_.front();
    spinners_.pop_front();
    const sim::Time waited = sched_.engine().now() - w.park_start;
    if (waited >= sched_.costs().spin_fair_threshold) {
      // Starved long enough: direct handoff, lock stays held on its behalf.
      granted_ = w.t;
      sched_.spin_unpark(w.t, sched_.costs().spin_retry);
      return;
    }
    // Free the lock and give the spinner a retry window; a local barger
    // may still beat it.
    held_ = false;
    sched_.spin_unpark(w.t, sched_.costs().spin_retry);
    return;
  }
  held_ = false;
}

}  // namespace pm2::sync
