// pm2sim -- cost-modeled spinlock.
//
// The paper (Sec. 3.1) uses spinlocks for all of NewMadeleine's critical
// sections because they are "a few microseconds at most": for such short
// sections an active wait beats a context switch. One uncontended
// acquire/release cycle is calibrated at 70 ns (35 + 35), matching the
// paper's measurement.
//
// Contention is modelled faithfully but without event storms: a contended
// acquirer parks in a busy-spin (its core stays occupied and is accounted
// busy) and the releaser hands the lock over, charging the loser one
// re-check period plus the cache-line transfer between the two cores.
#pragma once

#include <deque>
#include <string>

#include "obs/metrics.hpp"
#include "simmachine/machine.hpp"
#include "simsan/simsan.hpp"
#include "simthread/scheduler.hpp"

namespace pm2::sync {

class SpinLock {
 public:
  explicit SpinLock(mth::Scheduler& sched, std::string name = "spinlock");

  SpinLock(const SpinLock&) = delete;
  SpinLock& operator=(const SpinLock&) = delete;

  /// Acquire. If contended, the caller actively spins (no context switch);
  /// contended acquisition therefore requires a thread context. Hooks and
  /// tasklets must use try_lock() instead, as the paper prescribes.
  void lock();

  /// One attempt (one RMW on the lock line); never spins. Any context.
  bool try_lock();

  /// Release; hands off to the oldest spinner if any.
  void unlock();

  bool held() const { return held_; }
  const std::string& name() const { return name_; }

  /// Diagnostics.
  std::uint64_t acquisitions() const { return acquisitions_; }
  std::uint64_t contentions() const { return contentions_; }

 private:
  struct Waiter {
    mth::Thread* t;
    sim::Time park_start;
  };

  /// @p blocking: the caller was prepared to wait for the lock (lock(), not
  /// try_lock()) -- simsan only draws lock-order edges for those.
  void note_acquired(bool blocking) {
    ++acquisitions_;
    m_acquisitions_.inc();
    if (obs::MetricsRegistry::global().enabled()) {
      acquired_at_ = sched_.engine().now();
    }
    if (san::Analyzer::global().enabled()) san_acquired(blocking);
  }
  void san_acquired(bool blocking);
  void san_released();

  mth::Scheduler& sched_;
  std::string name_;
  mach::CacheLine line_;
  bool held_ = false;
  mth::Thread* granted_ = nullptr;  ///< direct-handoff recipient
  std::deque<Waiter> spinners_;
  std::uint64_t acquisitions_ = 0;
  std::uint64_t contentions_ = 0;
  // Registry instruments, labeled (sync, <machine>, <lock name>.*).
  obs::Counter m_acquisitions_;
  obs::Counter m_contentions_;
  obs::Counter m_hold_ns_;
  sim::Time acquired_at_ = -1;  ///< virtual hold-time start (registry only)
  san::SlotTag san_tag_;        ///< simsan lock slot cache
};

/// RAII guard, analogous to std::lock_guard.
class SpinGuard {
 public:
  explicit SpinGuard(SpinLock& lock) : lock_(lock) { lock_.lock(); }
  ~SpinGuard() { lock_.unlock(); }
  SpinGuard(const SpinGuard&) = delete;
  SpinGuard& operator=(const SpinGuard&) = delete;

 private:
  SpinLock& lock_;
};

}  // namespace pm2::sync
