// pm2sim -- cyclic thread barrier (generation-counted, reusable).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "simsan/simsan.hpp"
#include "simthread/scheduler.hpp"

namespace pm2::sync {

class Barrier {
 public:
  /// Barrier for @p parties threads (>= 1). Reusable across generations.
  Barrier(mth::Scheduler& sched, int parties, std::string name = "barrier");

  Barrier(const Barrier&) = delete;
  Barrier& operator=(const Barrier&) = delete;

  /// Block until @p parties threads have arrived in this generation.
  void arrive_and_wait();

  int parties() const { return parties_; }
  std::uint64_t generation() const { return generation_; }

 private:
  mth::Scheduler& sched_;
  std::string name_;
  int parties_;
  int arrived_ = 0;
  std::uint64_t generation_ = 0;
  std::vector<mth::Thread*> waiting_;
  san::SlotTag san_tag_;
};

}  // namespace pm2::sync
