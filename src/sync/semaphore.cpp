#include "sync/semaphore.hpp"

#include <cassert>

#include "simsan/context.hpp"
#include "sync/context_util.hpp"

namespace pm2::sync {

Semaphore::Semaphore(mth::Scheduler& sched, int initial, std::string name)
    : sched_(sched), name_(std::move(name)), count_(initial) {
  assert(initial >= 0);
}

void Semaphore::acquire() {
  auto& ctx = mth::ExecContext::current();
  if (!ctx.can_block()) {
    if (san::violation("blocking-acquire-in-hook",
                       "Semaphore::acquire on \"" + name_ +
                           "\" from hook context")) {
      return;  // abandoned: no token taken
    }
    assert(false && "Semaphore::acquire in a non-blocking context");
    return;
  }
  san::block_point("Semaphore::acquire");
  ctx.touch(line_);
  ctx.charge(sched_.costs().sem_fast_path);
  if (count_ > 0) {
    --count_;
    if (san::on()) san::hb_acquire(san_tag_, name_);
    return;
  }
  // Passive wait: pay the switch out, block, and pay the switch back in
  // when released. (Marcel's blocking primitives go through the scheduler
  // even when the core would otherwise idle.)
  ++blocked_acquires_;
  ctx.charge(sched_.costs().context_switch);
  if (count_ > 0) {
    // A release() landed while we were paying the switch-out. Abort the
    // block (the switch cost is still paid, as on a real machine).
    --count_;
    if (san::on()) san::hb_acquire(san_tag_, name_);
    return;
  }
  // Mesa discipline: release() marks our token before waking us, and we
  // re-check on every wake (stray wake permits are harmless).
  Waiter w{sched_.current_thread(), false};
  waiters_.push_back(&w);
  while (!w.granted) sched_.block_current();
  ctx.charge(sched_.costs().context_switch);
  ctx.touch(line_);
  if (san::on()) san::hb_acquire(san_tag_, name_);
}

bool Semaphore::try_acquire() {
  auto& ctx = mth::ExecContext::current();
  ctx.touch(line_);
  ctx.charge(sched_.costs().sem_fast_path);
  if (count_ == 0) return false;
  --count_;
  if (san::on()) san::hb_acquire(san_tag_, name_);
  return true;
}

void Semaphore::release() {
  if (san::on()) san::hb_release(san_tag_, name_);
  charge_if_ctx(sched_.costs().sem_fast_path);
  touch_if_ctx(line_);
  if (!waiters_.empty()) {
    Waiter* w = waiters_.front();
    waiters_.pop_front();
    w->granted = true;  // direct token handoff
    sched_.wake(w->t);
    return;
  }
  ++count_;
}

}  // namespace pm2::sync
