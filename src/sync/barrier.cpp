#include "sync/barrier.hpp"

#include <cassert>
#include <stdexcept>

#include "simsan/context.hpp"

namespace pm2::sync {

Barrier::Barrier(mth::Scheduler& sched, int parties, std::string name)
    : sched_(sched), name_(std::move(name)), parties_(parties) {
  if (parties < 1) throw std::invalid_argument("Barrier: parties < 1");
}

void Barrier::arrive_and_wait() {
  auto& ctx = mth::ExecContext::current();
  assert(ctx.can_block() && "Barrier::arrive_and_wait outside a thread");
  san::block_point("Barrier::arrive_and_wait");
  ctx.charge(sched_.costs().sem_fast_path);
  // simsan: every arrival publishes its history into the barrier slot, and
  // every departure observes the slot -- all-to-all happens-before across
  // this generation.
  if (san::on()) san::hb_release(san_tag_, name_);
  ++arrived_;
  if (arrived_ == parties_) {
    arrived_ = 0;
    ++generation_;
    for (mth::Thread* t : waiting_) sched_.wake(t);
    waiting_.clear();
    if (san::on()) san::hb_acquire(san_tag_, name_);
    return;
  }
  const std::uint64_t my_generation = generation_;
  waiting_.push_back(sched_.current_thread());
  ctx.charge(sched_.costs().context_switch);
  while (generation_ == my_generation) {
    sched_.block_current();
  }
  ctx.charge(sched_.costs().context_switch);
  if (san::on()) san::hb_acquire(san_tag_, name_);
}

}  // namespace pm2::sync
