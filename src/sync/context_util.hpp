// pm2sim -- helpers for cost charging that tolerate engine context.
//
// Synchronization objects can be poked from three places: simulated threads
// (full ExecContext), scheduler hooks/tasklets (accumulating ExecContext),
// and raw engine events such as NIC completions (no context at all -- the
// "hardware" acts, no CPU pays). These helpers charge when someone is there
// to pay and are no-ops otherwise.
#pragma once

#include "simcore/time.hpp"
#include "simmachine/machine.hpp"
#include "simthread/exec_context.hpp"

namespace pm2::sync {

/// Charge @p t to the active context, if any.
inline void charge_if_ctx(sim::Time t) {
  if (auto* ctx = mth::ExecContext::current_or_null()) ctx->charge(t);
}

/// Touch a shared line from the active context, if any.
inline void touch_if_ctx(mach::CacheLine& line) {
  if (auto* ctx = mth::ExecContext::current_or_null()) ctx->touch(line);
}

}  // namespace pm2::sync
