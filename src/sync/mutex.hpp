// pm2sim -- blocking mutex and condition variable for application threads.
//
// Unlike SpinLock (for the library's nanosecond-scale critical sections),
// Mutex blocks its waiters, which is what application-level code wants for
// longer sections. CondVar follows the POSIX contract (Mesa semantics:
// always re-check the predicate in a loop).
#pragma once

#include <deque>
#include <string>

#include "simsan/simsan.hpp"
#include "simthread/scheduler.hpp"

namespace pm2::sync {

class Mutex {
 public:
  explicit Mutex(mth::Scheduler& sched, std::string name = "mutex");

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  /// Thread context only; non-recursive. Both contracts are asserted, and
  /// reported as context-violation findings instead when simsan is enabled.
  void lock();
  bool try_lock();
  void unlock();

  bool held() const { return owner_ != nullptr; }
  mth::Thread* owner() const { return owner_; }

 private:
  friend class CondVar;
  void san_acquired(bool blocking);

  mth::Scheduler& sched_;
  std::string name_;
  mach::CacheLine line_;
  mth::Thread* owner_ = nullptr;
  std::deque<mth::Thread*> waiters_;
  san::SlotTag san_tag_;
};

/// RAII guard for Mutex.
class MutexGuard {
 public:
  explicit MutexGuard(Mutex& m) : m_(m) { m_.lock(); }
  ~MutexGuard() { m_.unlock(); }
  MutexGuard(const MutexGuard&) = delete;
  MutexGuard& operator=(const MutexGuard&) = delete;

 private:
  Mutex& m_;
};

class CondVar {
 public:
  explicit CondVar(mth::Scheduler& sched, std::string name = "cond");

  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically release @p m and wait; re-acquires @p m before returning.
  /// The caller must hold @p m (asserted; a simsan finding when analysis is
  /// enabled). Mesa semantics: re-check your predicate.
  void wait(Mutex& m);

  /// Wake one / all waiters. Any context, including hooks: these never
  /// block and never take the mutex, and a wake issued from a hook is
  /// deferred by the scheduler until the hook's work has been paid for.
  void notify_one();
  void notify_all();

  std::size_t waiters() const { return waiters_.size(); }

 private:
  mth::Scheduler& sched_;
  std::string name_;
  std::deque<mth::Thread*> waiters_;
  san::SlotTag san_tag_;
};

}  // namespace pm2::sync
