// pm2sim -- completion notification with the paper's three waiting policies.
//
// A CompletionFlag is the object behind nm_wait / MPI_Wait: a producer
// (NIC completion path, PIOMan hook, progression thread) sets it; a
// consumer waits for it. The paper's Sec. 3.3 compares three ways to wait:
//
//  * busy waiting   -- spin, burning the core, lowest latency;
//  * passive waiting -- block on a scheduler primitive, paying ~2 context
//    switches (~750 ns, Fig. 7) but freeing the core;
//  * fixed spin [Karlin et al.] -- spin for a fixed budget (e.g. 5 us),
//    then fall back to blocking: the switch is avoided whenever the event
//    arrives within the budget, amortized otherwise.
//
// The flag's cache line is tracked: when the setter runs on a different
// core than the waiter, both the set and the final read pay the inter-core
// line transfer -- the effect Fig. 8 measures.
#pragma once

#include <cstdint>
#include <list>
#include <string>

#include "simcore/time.hpp"
#include "simsan/simsan.hpp"
#include "simmachine/machine.hpp"
#include "simthread/scheduler.hpp"

namespace pm2::sync {

/// How a waiter waits on a CompletionFlag.
enum class WaitPolicy {
  kBusy,       ///< spin until set
  kPassive,    ///< block immediately
  kFixedSpin,  ///< spin for a budget, then block
};

const char* to_string(WaitPolicy p);

class CompletionFlag {
 public:
  explicit CompletionFlag(mth::Scheduler& sched, std::string name = "flag");

  CompletionFlag(const CompletionFlag&) = delete;
  CompletionFlag& operator=(const CompletionFlag&) = delete;

  /// Unpriced host-side peek (for assertions and control flow).
  bool is_set() const { return done_; }

  /// Priced check from the active context (one flag read).
  bool test();

  /// Mark complete and release every waiter. Any context, including hooks
  /// (never blocks; wakes issued from a hook are deferred by the
  /// scheduler); idempotent.
  void set();

  /// Re-arm for reuse. Only valid with no waiters registered.
  void reset();

  /// Wait according to @p policy; @p spin_budget applies to kFixedSpin.
  void wait(WaitPolicy policy, sim::Time spin_budget = sim::microseconds(5));

  void wait_busy();
  void wait_passive();
  void wait_fixed_spin(sim::Time spin_budget);

  /// Diagnostics: waits that ended up blocking (passive or spun out).
  std::uint64_t blocked_waits() const { return blocked_waits_; }

 private:
  enum class Mode { kSpin, kBlocked };
  struct Waiter {
    mth::Thread* t;
    Mode mode;
  };

  mth::Scheduler& sched_;
  std::string name_;
  mach::CacheLine line_;
  bool done_ = false;
  std::list<Waiter> waiters_;
  std::uint64_t blocked_waits_ = 0;
  san::SlotTag san_tag_;
};

}  // namespace pm2::sync
