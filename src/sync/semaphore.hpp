// pm2sim -- counting semaphore with blocking (passive) waiting.
//
// This is the primitive behind the paper's "passive waiting" (Sec. 3.3):
// acquiring an unavailable semaphore blocks the thread and costs a context
// switch out, plus another switch in when released -- the ~750 ns latency
// penalty of Fig. 7.
#pragma once

#include <cstdint>
#include <deque>
#include <string>

#include "simmachine/machine.hpp"
#include "simsan/simsan.hpp"
#include "simthread/scheduler.hpp"

namespace pm2::sync {

class Semaphore {
 public:
  explicit Semaphore(mth::Scheduler& sched, int initial = 0,
                     std::string name = "sem");

  Semaphore(const Semaphore&) = delete;
  Semaphore& operator=(const Semaphore&) = delete;

  /// P(): decrement or block. Thread context only.
  void acquire();

  /// Non-blocking P(); any context.
  bool try_acquire();

  /// V(): release one waiter or increment. Any context (threads, hooks,
  /// raw engine events).
  void release();

  int value() const { return count_; }
  std::size_t waiters() const { return waiters_.size(); }

  /// Diagnostics: how many acquisitions had to block.
  std::uint64_t blocked_acquires() const { return blocked_acquires_; }

 private:
  struct Waiter {
    mth::Thread* t;
    bool granted;
  };

  mth::Scheduler& sched_;
  std::string name_;
  mach::CacheLine line_;
  int count_;
  std::deque<Waiter*> waiters_;  ///< entries live on the waiters' stacks
  std::uint64_t blocked_acquires_ = 0;
  san::SlotTag san_tag_;
};

}  // namespace pm2::sync
