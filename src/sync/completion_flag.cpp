#include "sync/completion_flag.hpp"

#include <cassert>

#include "simsan/context.hpp"
#include "sync/context_util.hpp"

namespace pm2::sync {

const char* to_string(WaitPolicy p) {
  switch (p) {
    case WaitPolicy::kBusy: return "busy";
    case WaitPolicy::kPassive: return "passive";
    case WaitPolicy::kFixedSpin: return "fixed-spin";
  }
  return "?";
}

CompletionFlag::CompletionFlag(mth::Scheduler& sched, std::string name)
    : sched_(sched), name_(std::move(name)) {}

bool CompletionFlag::test() {
  auto& ctx = mth::ExecContext::current();
  ctx.touch(line_);
  ctx.charge(sched_.costs().spin_retry);
  return done_;
}

void CompletionFlag::set() {
  if (done_) return;
  // simsan: the set publishes the setter's history; every wait return path
  // observes it (set-before-wait included, where no wake edge exists).
  if (san::on()) san::hb_release(san_tag_, name_);
  done_ = true;
  touch_if_ctx(line_);  // the completion write moves the line to the setter
  for (Waiter& w : waiters_) {
    if (w.mode == Mode::kSpin) {
      sched_.spin_unpark(w.t, sched_.costs().spin_retry);
    } else {
      sched_.wake(w.t);
    }
  }
  // Entries are erased by the waiters themselves as they resume.
}

void CompletionFlag::reset() {
  assert(waiters_.empty() && "reset with waiters registered");
  done_ = false;
}

void CompletionFlag::wait(WaitPolicy policy, sim::Time spin_budget) {
  switch (policy) {
    case WaitPolicy::kBusy: wait_busy(); return;
    case WaitPolicy::kPassive: wait_passive(); return;
    case WaitPolicy::kFixedSpin: wait_fixed_spin(spin_budget); return;
  }
}

void CompletionFlag::wait_busy() {
  auto& ctx = mth::ExecContext::current();
  assert(ctx.can_block() && "wait on a flag outside a thread context");
  ctx.touch(line_);
  ctx.charge(sched_.costs().spin_retry);
  if (done_) {
    if (san::on()) san::hb_acquire(san_tag_, name_);
    return;
  }
  mth::Thread* self = sched_.current_thread();
  while (!done_) {
    if (sched_.runqueue_length(self->core()) > 0) {
      // Other threads queued on this core: spin-then-yield so the spinner
      // cannot starve whoever would complete the flag.
      ctx.charge(sched_.costs().spin_retry);
      sched_.yield();
      continue;
    }
    auto it = waiters_.insert(waiters_.end(), Waiter{self, Mode::kSpin});
    sched_.spin_park();
    waiters_.erase(it);
  }
  ctx.touch(line_);  // pay the transfer from the setter's core
  if (san::on()) san::hb_acquire(san_tag_, name_);
}

void CompletionFlag::wait_passive() {
  auto& ctx = mth::ExecContext::current();
  assert(ctx.can_block() && "wait on a flag outside a thread context");
  san::block_point("CompletionFlag::wait_passive");
  ctx.touch(line_);
  ctx.charge(sched_.costs().sem_fast_path);
  if (done_) {
    if (san::on()) san::hb_acquire(san_tag_, name_);
    return;
  }
  ++blocked_waits_;
  auto it = waiters_.insert(waiters_.end(),
                            Waiter{sched_.current_thread(), Mode::kBlocked});
  ctx.charge(sched_.costs().context_switch);
  // Mesa discipline: re-check on every wake; stray permits re-loop.
  while (!done_) sched_.block_current();
  waiters_.erase(it);
  ctx.charge(sched_.costs().context_switch);
  ctx.touch(line_);
  if (san::on()) san::hb_acquire(san_tag_, name_);
}

void CompletionFlag::wait_fixed_spin(sim::Time spin_budget) {
  auto& ctx = mth::ExecContext::current();
  assert(ctx.can_block() && "wait on a flag outside a thread context");
  assert(spin_budget >= 0);
  ctx.touch(line_);
  ctx.charge(sched_.costs().spin_retry);
  if (done_) {
    if (san::on()) san::hb_acquire(san_tag_, name_);
    return;
  }

  mth::Thread* self = sched_.current_thread();
  auto it = waiters_.insert(waiters_.end(), Waiter{self, Mode::kSpin});
  // Spin for the budget; if the flag is still unset, fall back to blocking.
  auto timeout = sched_.engine().schedule_after(spin_budget, [this, self] {
    if (!done_ && sched_.spin_parked(self)) sched_.spin_unpark(self, 0);
  });
  sched_.spin_park();
  sched_.engine().cancel(timeout);
  if (done_) {
    waiters_.erase(it);
    ctx.touch(line_);
    if (san::on()) san::hb_acquire(san_tag_, name_);
    return;
  }
  // Spun out: block. The switch cost is now a small fraction of the total
  // wait, which is the whole point of the fixed-spin algorithm.
  san::block_point("CompletionFlag::wait_fixed_spin(block)");
  ++blocked_waits_;
  it->mode = Mode::kBlocked;
  ctx.charge(sched_.costs().context_switch);
  while (!done_) sched_.block_current();
  waiters_.erase(it);
  ctx.charge(sched_.costs().context_switch);
  ctx.touch(line_);
  if (san::on()) san::hb_acquire(san_tag_, name_);
}

}  // namespace pm2::sync
