#include "sync/mutex.hpp"

#include <cassert>

#include "sync/context_util.hpp"

namespace pm2::sync {

Mutex::Mutex(mth::Scheduler& sched, std::string name)
    : sched_(sched), name_(std::move(name)) {}

void Mutex::lock() {
  auto& ctx = mth::ExecContext::current();
  assert(ctx.can_block() && "Mutex::lock in a non-blocking context");
  mth::Thread* self = sched_.current_thread();
  assert(owner_ != self && "recursive Mutex::lock");
  ctx.touch(line_);
  ctx.charge(sched_.costs().sem_fast_path);
  if (owner_ == nullptr) {
    owner_ = self;
    return;
  }
  ctx.charge(sched_.costs().context_switch);
  if (owner_ == nullptr) {
    // The holder released while we were paying the switch-out.
    owner_ = self;
    return;
  }
  waiters_.push_back(self);
  // Mesa discipline: unlock() hands ownership over before waking us; any
  // other wake is spurious and we simply block again.
  while (owner_ != self) sched_.block_current();
  ctx.charge(sched_.costs().context_switch);
  ctx.touch(line_);
}

bool Mutex::try_lock() {
  auto& ctx = mth::ExecContext::current();
  ctx.touch(line_);
  ctx.charge(sched_.costs().sem_fast_path);
  if (owner_ != nullptr) return false;
  owner_ = sched_.current_thread();
  return true;
}

void Mutex::unlock() {
  assert(owner_ != nullptr && "unlock of a free Mutex");
  charge_if_ctx(sched_.costs().sem_fast_path);
  touch_if_ctx(line_);
  if (!waiters_.empty()) {
    mth::Thread* next = waiters_.front();
    waiters_.pop_front();
    owner_ = next;  // direct handoff
    sched_.wake(next);
    return;
  }
  owner_ = nullptr;
}

CondVar::CondVar(mth::Scheduler& sched, std::string name)
    : sched_(sched), name_(std::move(name)) {}

void CondVar::wait(Mutex& m) {
  auto& ctx = mth::ExecContext::current();
  assert(ctx.can_block() && "CondVar::wait in a non-blocking context");
  mth::Thread* self = sched_.current_thread();
  assert(m.owner() == self && "CondVar::wait without holding the mutex");
  waiters_.push_back(self);
  m.unlock();
  ctx.charge(sched_.costs().context_switch);
  sched_.block_current();  // a notify during the charge left a wake permit
  ctx.charge(sched_.costs().context_switch);
  m.lock();
}

void CondVar::notify_one() {
  charge_if_ctx(sched_.costs().sem_fast_path);
  if (waiters_.empty()) return;
  mth::Thread* t = waiters_.front();
  waiters_.pop_front();
  sched_.wake(t);
}

void CondVar::notify_all() {
  charge_if_ctx(sched_.costs().sem_fast_path);
  while (!waiters_.empty()) {
    mth::Thread* t = waiters_.front();
    waiters_.pop_front();
    sched_.wake(t);
  }
}

}  // namespace pm2::sync
