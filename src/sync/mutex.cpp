#include "sync/mutex.hpp"

#include <cassert>

#include "simsan/context.hpp"
#include "sync/context_util.hpp"

namespace pm2::sync {

Mutex::Mutex(mth::Scheduler& sched, std::string name)
    : sched_(sched), name_(std::move(name)) {}

void Mutex::lock() {
  auto& ctx = mth::ExecContext::current();
  if (!ctx.can_block()) {
    // Under analysis this is a reported finding and the acquisition is
    // abandoned (no lock taken, no owner clobbered) so the run stays alive;
    // otherwise it is the contract assert it always was.
    if (san::violation("blocking-lock-in-hook", "Mutex::lock on \"" + name_ +
                                                    "\" from hook context")) {
      return;
    }
    assert(false && "Mutex::lock in a non-blocking context");
    return;
  }
  san::block_point("Mutex::lock");
  mth::Thread* self = sched_.current_thread();
  if (owner_ == self) {
    // Non-recursive by contract; under analysis, report and treat the
    // re-entry as a no-op (the caller already holds the mutex).
    if (san::violation("recursive-mutex-lock",
                       "recursive Mutex::lock on \"" + name_ + "\"")) {
      return;
    }
    assert(false && "recursive Mutex::lock");
    return;
  }
  ctx.touch(line_);
  ctx.charge(sched_.costs().sem_fast_path);
  if (owner_ == nullptr) {
    owner_ = self;
    san_acquired(/*blocking=*/true);
    return;
  }
  ctx.charge(sched_.costs().context_switch);
  if (owner_ == nullptr) {
    // The holder released while we were paying the switch-out.
    owner_ = self;
    san_acquired(/*blocking=*/true);
    return;
  }
  waiters_.push_back(self);
  // Mesa discipline: unlock() hands ownership over before waking us; any
  // other wake is spurious and we simply block again.
  while (owner_ != self) sched_.block_current();
  ctx.charge(sched_.costs().context_switch);
  ctx.touch(line_);
  san_acquired(/*blocking=*/true);
}

void Mutex::san_acquired(bool blocking) {
  if (san::on()) san::acquired(san_tag_, name_, san::LockKind::kMutex, blocking);
}

bool Mutex::try_lock() {
  auto& ctx = mth::ExecContext::current();
  ctx.touch(line_);
  ctx.charge(sched_.costs().sem_fast_path);
  if (owner_ != nullptr) return false;
  owner_ = sched_.current_thread();
  san_acquired(/*blocking=*/false);
  return true;
}

void Mutex::unlock() {
  assert(owner_ != nullptr && "unlock of a free Mutex");
  if (san::on()) san::released(san_tag_, name_, san::LockKind::kMutex);
  charge_if_ctx(sched_.costs().sem_fast_path);
  touch_if_ctx(line_);
  if (!waiters_.empty()) {
    mth::Thread* next = waiters_.front();
    waiters_.pop_front();
    owner_ = next;  // direct handoff
    sched_.wake(next);
    return;
  }
  owner_ = nullptr;
}

CondVar::CondVar(mth::Scheduler& sched, std::string name)
    : sched_(sched), name_(std::move(name)) {}

void CondVar::wait(Mutex& m) {
  auto& ctx = mth::ExecContext::current();
  if (!ctx.can_block()) {
    if (san::violation("blocking-wait-in-hook", "CondVar::wait on \"" +
                                                    name_ +
                                                    "\" from hook context")) {
      return;
    }
    assert(false && "CondVar::wait in a non-blocking context");
    return;
  }
  mth::Thread* self = sched_.current_thread();
  if (m.owner() != self) {
    // Under analysis, report and return immediately -- indistinguishable
    // from a spurious wakeup, which Mesa semantics already permit.
    if (san::violation("condvar-wait-without-mutex",
                       "CondVar::wait on \"" + name_ +
                           "\" without holding its mutex")) {
      return;
    }
    assert(false && "CondVar::wait without holding the mutex");
    return;
  }
  san::block_point("CondVar::wait");
  waiters_.push_back(self);
  m.unlock();
  ctx.charge(sched_.costs().context_switch);
  sched_.block_current();  // a notify during the charge left a wake permit
  ctx.charge(sched_.costs().context_switch);
  m.lock();
  if (san::on()) san::hb_acquire(san_tag_, name_);
}

void CondVar::notify_one() {
  if (san::on()) san::hb_release(san_tag_, name_);
  charge_if_ctx(sched_.costs().sem_fast_path);
  if (waiters_.empty()) return;
  mth::Thread* t = waiters_.front();
  waiters_.pop_front();
  sched_.wake(t);
}

void CondVar::notify_all() {
  if (san::on()) san::hb_release(san_tag_, name_);
  charge_if_ctx(sched_.costs().sem_fast_path);
  while (!waiters_.empty()) {
    mth::Thread* t = waiters_.front();
    waiters_.pop_front();
    sched_.wake(t);
  }
}

}  // namespace pm2::sync
