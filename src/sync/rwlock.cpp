#include "sync/rwlock.hpp"

#include <cassert>

#include "simsan/context.hpp"
#include "sync/context_util.hpp"

namespace pm2::sync {

RwLock::RwLock(mth::Scheduler& sched, std::string name)
    : sched_(sched), name_(std::move(name)) {}

void RwLock::san_acquired(bool blocking) {
  if (san::on()) san::acquired(san_tag_, name_, san::LockKind::kRw, blocking);
}

void RwLock::lock_shared() {
  auto& ctx = mth::ExecContext::current();
  assert(ctx.can_block());
  san::block_point("RwLock::lock_shared");
  ctx.touch(line_);
  ctx.charge(sched_.costs().sem_fast_path);
  // Writer preference: yield to active AND queued writers.
  while (writer_ != nullptr || !waiting_writers_.empty()) {
    waiting_readers_.push_back(sched_.current_thread());
    ctx.charge(sched_.costs().context_switch);
    if (writer_ == nullptr && waiting_writers_.empty()) {
      // State changed while paying the switch-out; retract.
      std::erase(waiting_readers_, sched_.current_thread());
      break;
    }
    sched_.block_current();
    std::erase(waiting_readers_, sched_.current_thread());
    ctx.charge(sched_.costs().context_switch);
  }
  ++readers_;
  san_acquired(/*blocking=*/true);
}

void RwLock::unlock_shared() {
  assert(readers_ > 0);
  if (san::on()) san::released(san_tag_, name_, san::LockKind::kRw);
  charge_if_ctx(sched_.costs().sem_fast_path);
  touch_if_ctx(line_);
  if (--readers_ == 0) wake_next_locked();
}

void RwLock::lock() {
  auto& ctx = mth::ExecContext::current();
  assert(ctx.can_block());
  san::block_point("RwLock::lock");
  mth::Thread* self = sched_.current_thread();
  ctx.touch(line_);
  ctx.charge(sched_.costs().sem_fast_path);
  while (writer_ != nullptr || readers_ > 0) {
    waiting_writers_.push_back(self);
    ctx.charge(sched_.costs().context_switch);
    if (writer_ == nullptr && readers_ == 0) {
      std::erase(waiting_writers_, self);
      break;
    }
    sched_.block_current();
    std::erase(waiting_writers_, self);
    ctx.charge(sched_.costs().context_switch);
  }
  writer_ = self;
  san_acquired(/*blocking=*/true);
}

void RwLock::unlock() {
  assert(writer_ == sched_.current_thread() && "unlock by non-owner");
  if (san::on()) san::released(san_tag_, name_, san::LockKind::kRw);
  charge_if_ctx(sched_.costs().sem_fast_path);
  touch_if_ctx(line_);
  writer_ = nullptr;
  wake_next_locked();
}

bool RwLock::try_lock() {
  auto& ctx = mth::ExecContext::current();
  ctx.touch(line_);
  ctx.charge(sched_.costs().sem_fast_path);
  if (writer_ != nullptr || readers_ > 0) return false;
  writer_ = sched_.current_thread();
  san_acquired(/*blocking=*/false);
  return true;
}

bool RwLock::try_lock_shared() {
  auto& ctx = mth::ExecContext::current();
  ctx.touch(line_);
  ctx.charge(sched_.costs().sem_fast_path);
  if (writer_ != nullptr || !waiting_writers_.empty()) return false;
  ++readers_;
  san_acquired(/*blocking=*/false);
  return true;
}

void RwLock::wake_next_locked() {
  // Prefer a writer; otherwise release the whole reader herd.
  if (!waiting_writers_.empty()) {
    sched_.wake(waiting_writers_.front());
    return;
  }
  for (mth::Thread* t : waiting_readers_) sched_.wake(t);
}

}  // namespace pm2::sync
