// pm2sim -- blocking readers-writer lock (writer-preferring).
//
// For application-level shared state with read-mostly access; the library
// itself sticks to spinlocks (its critical sections are nanosecond-scale),
// but hybrid applications built on the stack want this primitive.
#pragma once

#include <cstdint>
#include <deque>
#include <string>

#include "simsan/simsan.hpp"
#include "simthread/scheduler.hpp"

namespace pm2::sync {

class RwLock {
 public:
  explicit RwLock(mth::Scheduler& sched, std::string name = "rwlock");

  RwLock(const RwLock&) = delete;
  RwLock& operator=(const RwLock&) = delete;

  /// Shared (read) acquisition. Blocks while a writer holds or waits
  /// (writer preference avoids writer starvation). Thread context only.
  void lock_shared();
  void unlock_shared();

  /// Exclusive (write) acquisition. Thread context only.
  void lock();
  void unlock();

  bool try_lock();
  bool try_lock_shared();

  int readers() const { return readers_; }
  bool has_writer() const { return writer_ != nullptr; }

 private:
  void wake_next_locked();
  void san_acquired(bool blocking);

  mth::Scheduler& sched_;
  std::string name_;
  mach::CacheLine line_;
  int readers_ = 0;
  mth::Thread* writer_ = nullptr;
  std::deque<mth::Thread*> waiting_writers_;
  std::deque<mth::Thread*> waiting_readers_;
  san::SlotTag san_tag_;
};

/// RAII guards.
class ReadGuard {
 public:
  explicit ReadGuard(RwLock& l) : l_(l) { l_.lock_shared(); }
  ~ReadGuard() { l_.unlock_shared(); }
  ReadGuard(const ReadGuard&) = delete;
  ReadGuard& operator=(const ReadGuard&) = delete;

 private:
  RwLock& l_;
};

class WriteGuard {
 public:
  explicit WriteGuard(RwLock& l) : l_(l) { l_.lock(); }
  ~WriteGuard() { l_.unlock(); }
  WriteGuard(const WriteGuard&) = delete;
  WriteGuard& operator=(const WriteGuard&) = delete;

 private:
  RwLock& l_;
};

}  // namespace pm2::sync
