#include "simnet/params.hpp"

namespace pm2::net {

NicParams NicParams::myri10g() {
  NicParams p;
  p.name = "myri-10g";
  // Defaults are the Myri-10G calibration.
  return p;
}

NicParams NicParams::connectx_ib() {
  NicParams p;
  p.name = "connectx-ib-ddr";
  p.tx_post_cost = 250;
  p.tx_copy_per_byte = 0.5;
  p.poll_empty_cost = 70;
  p.poll_hit_cost = 130;
  p.rx_copy_per_byte = 0.5;
  p.tx_dma_delay = 150;
  p.wire_ns_per_byte = 0.55;  // DDR 4x: ~1.8 GB/s effective
  p.wire_latency = 900;
  p.rx_deliver_delay = 150;
  return p;
}

NicParams NicParams::tcp_gige() {
  NicParams p;
  p.name = "tcp-gige";
  p.tx_post_cost = 4000;  // kernel socket path
  p.tx_copy_per_byte = 1.0;
  p.poll_empty_cost = 500;
  p.poll_hit_cost = 2000;
  p.rx_copy_per_byte = 1.0;
  p.tx_dma_delay = 2000;
  p.wire_ns_per_byte = 8.0;  // 1 Gb/s
  p.wire_latency = 20000;
  p.rx_deliver_delay = 3000;
  return p;
}

}  // namespace pm2::net
