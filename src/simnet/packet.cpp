#include "simnet/packet.hpp"

#include <cassert>
#include <cstring>

namespace pm2::net {

Payload::Payload(std::vector<std::uint8_t> flat) : rep_(new Rep()) {
  rep_->flat_mode = true;
  rep_->wire_size = flat.size();
  rep_->flat = std::move(flat);
}

Payload::~Payload() = default;

Payload::Payload(const Payload& o)
    : rep_(o.rep_ ? new Rep(*o.rep_) : nullptr) {}

Payload& Payload::operator=(const Payload& o) {
  if (this != &o) rep_.reset(o.rep_ ? new Rep(*o.rep_) : nullptr);
  return *this;
}

Payload Payload::segmented(SlabRef hdr, std::uint32_t hdr_len, SlabRef data,
                           std::vector<PayloadView> segs) {
  Payload p;
  p.rep_.reset(new Rep());
  p.rep_->flat_mode = false;
  p.rep_->hdr = std::move(hdr);
  p.rep_->hdr_len = hdr_len;
  p.rep_->data = std::move(data);
  std::size_t total = hdr_len;
  for (const auto& s : segs) total += s.len;
  p.rep_->wire_size = total;
  p.rep_->segs = std::move(segs);
  return p;
}

const std::vector<std::uint8_t>& Payload::flat_bytes() const {
  static const std::vector<std::uint8_t> kEmpty;
  return rep_ ? rep_->flat : kEmpty;
}

const std::uint8_t* Payload::header_bytes() const {
  assert(rep_ && !rep_->flat_mode);
  return rep_->hdr.data();
}

std::size_t Payload::header_len() const {
  return rep_ && !rep_->flat_mode ? rep_->hdr_len : 0;
}

std::size_t Payload::segments() const {
  return rep_ && !rep_->flat_mode ? rep_->segs.size() : 0;
}

const PayloadView& Payload::segment(std::size_t i) const {
  assert(rep_ && !rep_->flat_mode);
  return rep_->segs.at(i);
}

const SlabRef* Payload::data_slab() const {
  if (rep_ == nullptr || rep_->flat_mode || !rep_->data) return nullptr;
  return &rep_->data;
}

std::vector<std::uint8_t> Payload::linearize() const {
  if (flat()) return flat_bytes();
  std::vector<std::uint8_t> out;
  out.reserve(size());
  const std::uint8_t* hdr = rep_->hdr.data();
  const std::size_t n = rep_->segs.size();
  // The header region is the framing prefix followed by one fixed-size
  // header per segment; interleave them back with their data.
  const std::size_t stride = n > 0 ? (rep_->hdr_len - 2) / n : 0;
  out.insert(out.end(), hdr, hdr + 2);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint8_t* h = hdr + 2 + i * stride;
    out.insert(out.end(), h, h + stride);
    const PayloadView& s = rep_->segs[i];
    if (s.data != nullptr) {
      out.insert(out.end(), s.data, s.data + s.len);
    } else {
      out.insert(out.end(), s.len, std::uint8_t{0});
    }
  }
  return out;
}

std::uint8_t Payload::operator[](std::size_t i) const {
  if (flat()) return rep_->flat.at(i);
  return linearize().at(i);
}

bool operator==(const Payload& p, const std::vector<std::uint8_t>& bytes) {
  if (p.size() != bytes.size()) return false;
  if (p.flat()) return p.flat_bytes() == bytes;
  return p.linearize() == bytes;
}

}  // namespace pm2::net
