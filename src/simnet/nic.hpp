// pm2sim -- NIC and fabric: a reliable, in-order, polled packet transport.
//
// The interface deliberately mirrors MX's shape as the paper's drivers use
// it: post a send, poll a completion queue, no interrupts (PIOMan supplies
// the "when to poll" policy above this layer).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "simcore/engine.hpp"
#include "simmachine/machine.hpp"
#include "simnet/packet.hpp"
#include "simnet/params.hpp"

namespace pm2::sim {
class ChromeTrace;
}

namespace pm2::net {

class Nic;

/// A switched fabric: every attached NIC can reach every other. Wire timing
/// uses the sending NIC's parameters, so heterogeneous fabrics behave like
/// their slowest path.
class Fabric {
 public:
  explicit Fabric(sim::Engine& engine, std::string name = "fabric");

  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  sim::Engine& engine() { return engine_; }
  const std::string& name() const { return name_; }

  /// Attach a NIC; returns its port id on this fabric.
  int attach(Nic* nic);

  int num_ports() const { return static_cast<int>(ports_.size()); }
  Nic* port(int id) const { return ports_.at(static_cast<std::size_t>(id)); }

 private:
  friend class Nic;
  /// Deliver @p pkt to its dst_port. @p earliest is when the last bit
  /// could arrive if the receiving port were idle; with several senders
  /// converging on one port (incast), the switch serializes them: each
  /// packet additionally occupies the destination port for its
  /// serialization time @p occupancy.
  void deliver_at(sim::Time earliest, sim::Time occupancy, Packet pkt);

  sim::Engine& engine_;
  std::string name_;
  std::vector<Nic*> ports_;
  std::vector<sim::Time> port_busy_until_;
  /// Partition owning each port (recorded at attach time). In partitioned
  /// worlds the wire hop is the only cross-partition edge: deliver_at hops
  /// into the receiver's partition first, then resolves incast contention
  /// against port_busy_until_ there, so that state stays single-owner.
  std::vector<int> port_partition_;
};

/// Identifies an in-flight send; completes when the wire has absorbed the
/// packet (the sender may then reuse its buffer and post the next one).
class SendHandle {
 public:
  SendHandle() = default;
  bool valid() const { return static_cast<bool>(state_); }
  bool done() const { return state_ && *state_; }

 private:
  friend class Nic;
  explicit SendHandle(std::shared_ptr<bool> s) : state_(std::move(s)) {}
  std::shared_ptr<bool> state_;
};

class Nic {
 public:
  /// Create a NIC on @p machine attached to @p fabric.
  Nic(mach::Machine& machine, Fabric& fabric, NicParams params);

  Nic(const Nic&) = delete;
  Nic& operator=(const Nic&) = delete;

  mach::Machine& machine() const { return machine_; }
  const NicParams& params() const { return params_; }
  Fabric& fabric() const { return fabric_; }
  int port() const { return port_; }

  // --- send path -----------------------------------------------------------

  /// True if the tx queue has room for another post.
  bool tx_ready() const {
    return static_cast<int>(tx_inflight_) < params_.tx_queue_depth;
  }

  /// Packets posted and not yet absorbed by the wire.
  std::size_t tx_inflight() const { return tx_inflight_; }

  /// True if the transmit path is completely idle (the moment the
  /// NIC-driven optimization layer waits for, paper Fig. 1).
  bool tx_idle() const { return tx_inflight_ == 0; }

  /// Post one packet. Charges the host-side post cost to the current
  /// execution context (if any). Pre: tx_ready().
  /// @p on_wire_done, if given, fires (in engine context) once the wire has
  /// absorbed the packet -- the moment the sender's buffer is reusable.
  SendHandle post_send(int dst_port, Channel channel, Payload payload,
                       std::function<void()> on_wire_done = nullptr);

  /// Convenience overload: raw flat bytes (tests, fault injection).
  SendHandle post_send(int dst_port, Channel channel,
                       std::vector<std::uint8_t> payload,
                       std::function<void()> on_wire_done = nullptr) {
    return post_send(dst_port, channel, Payload(std::move(payload)),
                     std::move(on_wire_done));
  }

  /// Notifier invoked (in engine context) whenever a tx slot frees up.
  void set_tx_notifier(std::function<void()> fn) { tx_notifier_ = std::move(fn); }

  // --- receive path ----------------------------------------------------------

  /// Unpriced peek used by progression engines to decide whether polling
  /// is worth pricing. (A real driver reads a doorbell/seqno word; the
  /// price of that read is folded into poll()'s cost.)
  bool rx_pending() const { return !rx_queue_.empty(); }

  /// Poll the completion queue: pops the oldest delivered packet, if any.
  /// Charges poll_hit/poll_empty to the current context. Payload copy-out
  /// costs are charged by the consuming layer (it knows the user buffer).
  std::optional<Packet> poll();

  /// Notifier invoked (in engine context) at each packet arrival.
  void set_rx_notifier(std::function<void()> fn) { rx_notifier_ = std::move(fn); }

  /// Attach a Chrome-trace timeline: tx/rx instants recorded under
  /// (pid=@p pid, tid=@p tid).
  void set_timeline(sim::ChromeTrace* timeline, int pid, int tid);

  // --- statistics -------------------------------------------------------------

  std::uint64_t packets_sent() const { return packets_sent_; }
  std::uint64_t packets_received() const { return packets_received_; }
  std::uint64_t bytes_sent() const { return bytes_sent_; }
  std::uint64_t bytes_received() const { return bytes_received_; }
  std::uint64_t polls_empty() const { return polls_empty_; }
  std::uint64_t polls_hit() const { return polls_hit_; }

 private:
  friend class Fabric;
  void enqueue_rx(Packet pkt);

  mach::Machine& machine_;
  Fabric& fabric_;
  NicParams params_;
  int port_;

  sim::Time tx_busy_until_ = 0;
  std::size_t tx_inflight_ = 0;
  std::uint64_t tx_seq_ = 0;
  std::function<void()> tx_notifier_;

  std::deque<Packet> rx_queue_;
  std::function<void()> rx_notifier_;
  sim::ChromeTrace* timeline_ = nullptr;
  int timeline_pid_ = 0;
  int timeline_tid_ = 0;
  // Interned timeline names, cached per (size, port) so steady-state
  // pingpong traffic formats no strings on the hot path.
  std::uint16_t tl_cat_nic_ = 0;
  std::uint16_t tl_tx_name_ = 0;
  std::size_t tl_tx_size_ = static_cast<std::size_t>(-1);
  int tl_tx_port_ = -1;
  std::uint16_t tl_rx_name_ = 0;
  std::size_t tl_rx_size_ = static_cast<std::size_t>(-1);
  int tl_rx_port_ = -1;

  std::uint64_t packets_sent_ = 0;
  std::uint64_t packets_received_ = 0;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t bytes_received_ = 0;
  std::uint64_t polls_empty_ = 0;
  std::uint64_t polls_hit_ = 0;

  // Registry instruments, labeled (nic, <machine>, <fabric>.*) -- the
  // fabric name disambiguates the per-rail NICs of one node.
  obs::Counter m_tx_packets_;
  obs::Counter m_tx_bytes_;
  obs::Counter m_rx_packets_;
  obs::Counter m_rx_bytes_;
  obs::Counter m_polls_hit_;
  obs::Counter m_polls_empty_;
  obs::Gauge m_rx_queue_depth_;
};

}  // namespace pm2::net
