#include "simnet/buffer_pool.hpp"

#include <cassert>

namespace pm2::net {

struct SlabRef::Slab {
  std::unique_ptr<std::uint8_t[]> mem;
  std::size_t cap = 0;
  std::uint32_t bucket = 0;
  std::uint32_t refs = 0;
  BufferPool* owner = nullptr;
};

namespace {

constexpr std::size_t kMinSlab = 64;
constexpr std::size_t kNumBuckets = 48;  // up to 2^(6+47) -- never reached

/// Size class index: bucket b holds slabs of capacity kMinSlab << b.
std::uint32_t bucket_of(std::size_t size) {
  std::uint32_t b = 0;
  std::size_t cap = kMinSlab;
  while (cap < size) {
    cap <<= 1;
    ++b;
  }
  return b;
}

}  // namespace

SlabRef::SlabRef(const SlabRef& o) : slab_(o.slab_) {
  if (slab_ != nullptr) ++slab_->refs;
}

SlabRef& SlabRef::operator=(const SlabRef& o) {
  if (this == &o) return *this;
  reset();
  slab_ = o.slab_;
  if (slab_ != nullptr) ++slab_->refs;
  return *this;
}

SlabRef& SlabRef::operator=(SlabRef&& o) noexcept {
  if (this == &o) return *this;
  reset();
  slab_ = o.slab_;
  o.slab_ = nullptr;
  return *this;
}

std::uint8_t* SlabRef::data() const {
  assert(slab_ != nullptr);
  return slab_->mem.get();
}

std::size_t SlabRef::capacity() const {
  return slab_ != nullptr ? slab_->cap : 0;
}

void SlabRef::reset() {
  if (slab_ == nullptr) return;
  assert(slab_->refs > 0);
  if (--slab_->refs == 0) slab_->owner->recycle(slab_);
  slab_ = nullptr;
}

BufferPool& BufferPool::global() {
  static BufferPool* pool = new BufferPool();  // leaked: see header
  return *pool;
}

BufferPool::BufferPool() : free_(kNumBuckets) {
  auto& reg = obs::MetricsRegistry::global();
  m_hits_ = reg.counter({"pool", "", -1, "hits"});
  m_misses_ = reg.counter({"pool", "", -1, "misses"});
  m_bytes_reused_ = reg.counter({"pool", "", -1, "bytes_reused"});
  m_bytes_allocated_ = reg.counter({"pool", "", -1, "bytes_allocated"});
}

BufferPool::~BufferPool() { trim(); }

SlabRef BufferPool::acquire(std::size_t size) {
  const std::uint32_t b = bucket_of(size);
  assert(b < kNumBuckets);
  std::lock_guard<std::mutex> lock(mu_);
  auto& list = free_[b];
  SlabRef::Slab* s;
  if (!list.empty()) {
    s = list.back();
    list.pop_back();
    ++hits_;
    bytes_reused_ += s->cap;
    m_hits_.inc();
    m_bytes_reused_.inc(s->cap);
  } else {
    const std::size_t cap = kMinSlab << b;
    s = new SlabRef::Slab();
    s->mem = std::make_unique<std::uint8_t[]>(cap);
    s->cap = cap;
    s->bucket = b;
    s->owner = this;
    ++misses_;
    bytes_allocated_ += cap;
    m_misses_.inc();
    m_bytes_allocated_.inc(cap);
  }
  s->refs = 1;
  ++live_slabs_;
  return SlabRef(s);
}

void BufferPool::recycle(SlabRef::Slab* s) {
  std::lock_guard<std::mutex> lock(mu_);
  assert(live_slabs_ > 0);
  --live_slabs_;
  free_[s->bucket].push_back(s);
}

void BufferPool::trim() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& list : free_) {
    for (SlabRef::Slab* s : list) delete s;
    list.clear();
  }
}

std::size_t BufferPool::idle_slabs() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const auto& list : free_) n += list.size();
  return n;
}

}  // namespace pm2::net
