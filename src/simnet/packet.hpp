// pm2sim -- the unit the fabric moves: an opaque byte payload plus minimal
// link-level framing. All higher-level structure (NewMadeleine headers,
// aggregated sub-messages, rendezvous control) lives inside the payload,
// serialized as real bytes, exactly as on a real NIC.
#pragma once

#include <cstdint>
#include <vector>

namespace pm2::net {

/// Link-level channel, used by NewMadeleine to separate its two tracks
/// (trk0 = small/control, trk1 = bulk) on one NIC.
using Channel = std::uint8_t;

struct Packet {
  int src_port = -1;
  int dst_port = -1;
  Channel channel = 0;
  std::uint64_t seq = 0;  ///< per-NIC monotonic sequence (diagnostics)
  std::vector<std::uint8_t> payload;

  std::size_t size() const { return payload.size(); }
};

}  // namespace pm2::net
