// pm2sim -- the unit the fabric moves: a payload plus minimal link-level
// framing. All higher-level structure (NewMadeleine headers, aggregated
// sub-messages, rendezvous control) lives inside the payload.
//
// A payload has two representations:
//   * flat      -- one owned byte vector, exactly the wire bytes (raw
//                  injection, legacy tests);
//   * segmented -- a pool-owned header region plus an iovec-style segment
//                  list: gathered segments point into a pool-owned data
//                  slab; *placed* segments carry no bytes at all (the data
//                  already landed in the receiver's buffer via the modeled
//                  RDMA/DMA placement) but still count toward the wire
//                  size, so timing is byte-identical to a copying path.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "simnet/buffer_pool.hpp"

namespace pm2::net {

/// Link-level channel, used by NewMadeleine to separate its two tracks
/// (trk0 = small/control, trk1 = bulk) on one NIC.
using Channel = std::uint8_t;

/// One data segment of a segmented payload (one per chunk).
struct PayloadView {
  const std::uint8_t* data = nullptr;  ///< null iff len == 0 or placed
  std::uint32_t len = 0;               ///< wire bytes this segment represents
  bool placed = false;  ///< bytes already landed via modeled placement
  void* note = nullptr; ///< host-only annotation (never wire bytes)
};

class Payload {
 public:
  Payload() = default;
  /// Flat payload: exactly these wire bytes. Explicit so braced byte lists
  /// keep selecting std::vector overloads.
  explicit Payload(std::vector<std::uint8_t> flat);
  ~Payload();

  Payload(Payload&&) noexcept = default;
  Payload& operator=(Payload&&) noexcept = default;
  Payload(const Payload& o);
  Payload& operator=(const Payload& o);

  /// Segmented payload (wire-format builder): @p hdr_len bytes of framing
  /// in @p hdr, then one PayloadView per chunk.
  static Payload segmented(SlabRef hdr, std::uint32_t hdr_len, SlabRef data,
                           std::vector<PayloadView> segs);

  /// Wire size in bytes (placed segments included: they occupy the wire).
  std::size_t size() const { return rep_ ? rep_->wire_size : 0; }

  bool flat() const { return rep_ == nullptr || rep_->flat_mode; }
  const std::vector<std::uint8_t>& flat_bytes() const;

  const std::uint8_t* header_bytes() const;
  std::size_t header_len() const;
  std::size_t segments() const;
  const PayloadView& segment(std::size_t i) const;
  /// The slab backing gathered segments (null for flat payloads); shared by
  /// the unexpected-message store to hand bytes off without copying.
  const SlabRef* data_slab() const;

  /// Serialize to the flat wire layout (headers interleaved with data;
  /// placed segments render as zeros). Diagnostics/tests only.
  std::vector<std::uint8_t> linearize() const;

  /// Byte @p i of the flat wire layout (O(size) for segmented payloads;
  /// tests only).
  std::uint8_t operator[](std::size_t i) const;

 private:
  struct Rep {
    bool flat_mode = true;
    std::size_t wire_size = 0;
    std::vector<std::uint8_t> flat;
    SlabRef hdr;
    std::uint32_t hdr_len = 0;
    SlabRef data;
    std::vector<PayloadView> segs;
  };
  /// Single pointer so Packet stays small enough for the engine's inline
  /// event closures (Fabric::deliver_at captures a whole Packet).
  std::unique_ptr<Rep> rep_;
};

bool operator==(const Payload& p, const std::vector<std::uint8_t>& bytes);

struct Packet {
  int src_port = -1;
  int dst_port = -1;
  Channel channel = 0;
  std::uint64_t seq = 0;  ///< per-NIC monotonic sequence (diagnostics)
  Payload payload;

  std::size_t size() const { return payload.size(); }
};

}  // namespace pm2::net
