// pm2sim -- process-wide slab pool backing wire and unexpected buffers.
//
// Every packet payload built by the transfer layer lives in a pooled slab
// instead of a fresh std::vector: free slabs are kept on power-of-two
// size-class free lists, so a steady-state message stream recycles the same
// few allocations instead of hitting the host allocator per packet. Slabs
// are reference-counted (SlabRef) because one slab can outlive its packet:
// an unexpected-message store hands the slab off to the matching layer
// rather than copying out of it.
//
// Host-side infrastructure only: acquiring or releasing a slab never
// charges virtual time (the cost model prices the *copies*, which this pool
// exists to eliminate).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "obs/metrics.hpp"

namespace pm2::net {

class BufferPool;

/// Shared handle to one pooled slab. Copies share the slab; the slab
/// returns to its pool's free list when the last handle drops. The refcount
/// is plain (not atomic): a slab's handles all live within one partition at
/// a time -- cross-partition packet hand-off moves the ref through the
/// engine's window barrier, and the pool's free lists are mutex-guarded, so
/// recycling on one host thread happens-before reuse on another.
class SlabRef {
 public:
  SlabRef() = default;
  ~SlabRef() { reset(); }
  SlabRef(const SlabRef& o);
  SlabRef& operator=(const SlabRef& o);
  SlabRef(SlabRef&& o) noexcept : slab_(o.slab_) { o.slab_ = nullptr; }
  SlabRef& operator=(SlabRef&& o) noexcept;

  explicit operator bool() const { return slab_ != nullptr; }
  std::uint8_t* data() const;
  std::size_t capacity() const;

  /// Drop this handle (the slab is recycled once unreferenced).
  void reset();

 private:
  friend class BufferPool;
  struct Slab;
  explicit SlabRef(Slab* s) : slab_(s) {}
  Slab* slab_ = nullptr;
};

class BufferPool {
 public:
  /// The process-global pool (leaked singleton: slabs referenced from
  /// static storage at exit must stay valid).
  static BufferPool& global();

  BufferPool();
  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;
  ~BufferPool();

  /// A slab of at least @p size bytes (capacity is the size class, a power
  /// of two >= 64). Reuses a free slab of the class when one exists.
  SlabRef acquire(std::size_t size);

  /// Release every cached free slab back to the host allocator.
  void trim();

  // Host-side reuse statistics (always counted; the registry counters with
  // the same names only store while the registry is enabled).
  std::uint64_t hits() const {
    std::lock_guard<std::mutex> lock(mu_);
    return hits_;
  }
  std::uint64_t misses() const {
    std::lock_guard<std::mutex> lock(mu_);
    return misses_;
  }
  std::uint64_t bytes_reused() const {
    std::lock_guard<std::mutex> lock(mu_);
    return bytes_reused_;
  }
  std::uint64_t bytes_allocated() const {
    std::lock_guard<std::mutex> lock(mu_);
    return bytes_allocated_;
  }
  std::size_t idle_slabs() const;
  std::size_t live_slabs() const {
    std::lock_guard<std::mutex> lock(mu_);
    return live_slabs_;
  }

 private:
  friend class SlabRef;
  void recycle(SlabRef::Slab* s);

  mutable std::mutex mu_;
  std::vector<std::vector<SlabRef::Slab*>> free_;  ///< per size class
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t bytes_reused_ = 0;
  std::uint64_t bytes_allocated_ = 0;
  std::size_t live_slabs_ = 0;  ///< slabs currently referenced

  obs::Counter m_hits_;
  obs::Counter m_misses_;
  obs::Counter m_bytes_reused_;
  obs::Counter m_bytes_allocated_;
};

}  // namespace pm2::net
