#include "simnet/nic.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

#include "simcore/chrome_trace.hpp"
#include "simcore/trace.hpp"
#include "simthread/exec_context.hpp"

namespace pm2::net {

namespace {
sim::Time byte_time(double ns_per_byte, std::size_t bytes) {
  return static_cast<sim::Time>(
      std::llround(ns_per_byte * static_cast<double>(bytes)));
}

void charge_ctx(sim::Time t) {
  if (auto* ctx = mth::ExecContext::current_or_null()) ctx->charge(t);
}

// Hook contexts accumulate their CPU cost instead of advancing the clock;
// anything they do to the *timeline* (like starting a DMA) must be skewed
// by the work they have already performed in this pass.
sim::Time hook_skew() {
  auto* ctx = mth::ExecContext::current_or_null();
  if (ctx != nullptr && !ctx->can_block()) {
    return static_cast<mth::HookContext*>(ctx)->consumed();
  }
  return 0;
}
}  // namespace

Fabric::Fabric(sim::Engine& engine, std::string name)
    : engine_(engine), name_(std::move(name)) {}

int Fabric::attach(Nic* nic) {
  ports_.push_back(nic);
  port_busy_until_.push_back(0);
  port_partition_.push_back(engine_.current_partition());
  return static_cast<int>(ports_.size()) - 1;
}

void Fabric::deliver_at(sim::Time earliest, sim::Time occupancy, Packet pkt) {
  if (engine_.num_partitions() > 1) {
    // Partitioned engine: the port-contention clock belongs to the
    // receiver's partition, so hop there first -- the earliest-arrival time
    // is what carries the lookahead across the boundary -- and resolve
    // incast serialization on the receiver's side, in arrival order.
    const int dst_part =
        port_partition_[static_cast<std::size_t>(pkt.dst_port)];
    engine_.schedule_cross(
        dst_part, earliest, [this, occupancy, p = std::move(pkt)]() mutable {
          sim::Time& busy =
              port_busy_until_[static_cast<std::size_t>(p.dst_port)];
          const sim::Time now = engine_.now();
          const sim::Time when = std::max(now, busy + occupancy);
          busy = when;
          Nic* dst = port(p.dst_port);
          if (when == now) {
            dst->enqueue_rx(std::move(p));
          } else {
            engine_.schedule_at(when, [dst, p2 = std::move(p)]() mutable {
              dst->enqueue_rx(std::move(p2));
            });
          }
        });
    return;
  }
  // Output-port contention: packets from different senders converging on
  // one port serialize on its egress link.
  sim::Time& busy = port_busy_until_[static_cast<std::size_t>(pkt.dst_port)];
  const sim::Time when = std::max(earliest, busy + occupancy);
  busy = when;
  engine_.schedule_at(when, [this, p = std::move(pkt)]() mutable {
    Nic* dst = port(p.dst_port);
    dst->enqueue_rx(std::move(p));
  });
}

Nic::Nic(mach::Machine& machine, Fabric& fabric, NicParams params)
    : machine_(machine), fabric_(fabric), params_(std::move(params)) {
  port_ = fabric.attach(this);
  auto& reg = obs::MetricsRegistry::global();
  const std::string& node = machine_.name();
  const std::string& rail = fabric_.name();
  m_tx_packets_ = reg.counter({"nic", node, -1, rail + ".tx_packets"});
  m_tx_bytes_ = reg.counter({"nic", node, -1, rail + ".tx_bytes"});
  m_rx_packets_ = reg.counter({"nic", node, -1, rail + ".rx_packets"});
  m_rx_bytes_ = reg.counter({"nic", node, -1, rail + ".rx_bytes"});
  m_polls_hit_ = reg.counter({"nic", node, -1, rail + ".polls_hit"});
  m_polls_empty_ = reg.counter({"nic", node, -1, rail + ".polls_empty"});
  m_rx_queue_depth_ = reg.gauge({"nic", node, -1, rail + ".rx_queue_depth"});
}

SendHandle Nic::post_send(int dst_port, Channel channel, Payload payload,
                          std::function<void()> on_wire_done) {
  if (!tx_ready()) {
    throw std::logic_error("Nic::post_send: tx queue full (check tx_ready)");
  }
  if (dst_port < 0 || dst_port >= fabric_.num_ports()) {
    throw std::out_of_range("Nic::post_send: bad destination port");
  }
  const std::size_t size = payload.size();
  // Host-side cost: descriptor plus either the PIO staging copy (small
  // messages) or the constant DMA setup (large ones).
  const sim::Time xfer_cpu =
      size <= params_.pio_threshold
          ? byte_time(params_.tx_copy_per_byte, size)
          : params_.tx_dma_setup;
  charge_ctx(params_.tx_post_cost + xfer_cpu);

  Packet pkt;
  pkt.src_port = port_;
  pkt.dst_port = dst_port;
  pkt.channel = channel;
  pkt.seq = tx_seq_++;
  pkt.payload = std::move(payload);

  ++tx_inflight_;
  ++packets_sent_;
  bytes_sent_ += size;
  m_tx_packets_.inc();
  m_tx_bytes_.inc(size);

  sim::Engine& eng = fabric_.engine();
  // NIC pipeline: DMA, then the wire serializes this packet after any
  // packet already occupying our tx path. When posted from a hook, the
  // hook's accumulated CPU time has not reached the clock yet: skew the
  // pipeline start accordingly.
  const sim::Time dma_done = eng.now() + hook_skew() + params_.tx_dma_delay;
  const sim::Time wire_start = std::max(dma_done, tx_busy_until_);
  const sim::Time wire_end =
      wire_start + byte_time(params_.wire_ns_per_byte, size);
  tx_busy_until_ = wire_end;

  auto state = std::make_shared<bool>(false);
  eng.schedule_at(wire_end, [this, state, done = std::move(on_wire_done)] {
    *state = true;
    assert(tx_inflight_ > 0);
    --tx_inflight_;
    if (done) done();
    if (tx_notifier_) tx_notifier_();
  });

  if (timeline_ != nullptr) {
    if (size != tl_tx_size_ || dst_port != tl_tx_port_) {
      tl_tx_name_ = timeline_->intern("tx " + std::to_string(size) +
                                      "B -> port " + std::to_string(dst_port));
      tl_tx_size_ = size;
      tl_tx_port_ = dst_port;
    }
    timeline_->complete_event(tl_tx_name_, tl_cat_nic_, timeline_pid_,
                              timeline_tid_, wire_start,
                              wire_end - wire_start);
  }

  const sim::Time arrival =
      wire_end + params_.wire_latency + params_.rx_deliver_delay;
  PM2_TRACE("nic", kDebug, "port %d -> %d: %zu B ch%u seq %llu, arrives %s",
            port_, dst_port, size, static_cast<unsigned>(channel),
            static_cast<unsigned long long>(pkt.seq),
            sim::format_time(arrival).c_str());
  fabric_.deliver_at(arrival, byte_time(params_.wire_ns_per_byte, size),
                     std::move(pkt));
  return SendHandle(std::move(state));
}

void Nic::set_timeline(sim::ChromeTrace* timeline, int pid, int tid) {
  timeline_ = timeline;
  timeline_pid_ = pid;
  timeline_tid_ = tid;
  tl_cat_nic_ = timeline != nullptr ? timeline->intern("nic") : 0;
  tl_tx_size_ = static_cast<std::size_t>(-1);
  tl_tx_port_ = -1;
  tl_rx_size_ = static_cast<std::size_t>(-1);
  tl_rx_port_ = -1;
}

void Nic::enqueue_rx(Packet pkt) {
  ++packets_received_;
  bytes_received_ += pkt.size();
  m_rx_packets_.inc();
  m_rx_bytes_.inc(pkt.size());
  if (timeline_ != nullptr) {
    if (pkt.size() != tl_rx_size_ || pkt.src_port != tl_rx_port_) {
      tl_rx_name_ =
          timeline_->intern("rx " + std::to_string(pkt.size()) +
                            "B <- port " + std::to_string(pkt.src_port));
      tl_rx_size_ = pkt.size();
      tl_rx_port_ = pkt.src_port;
    }
    timeline_->instant_event(tl_rx_name_, tl_cat_nic_, timeline_pid_,
                             timeline_tid_, fabric_.engine().now());
  }
  rx_queue_.push_back(std::move(pkt));
  m_rx_queue_depth_.set(static_cast<std::int64_t>(rx_queue_.size()));
  if (rx_notifier_) rx_notifier_();
}

std::optional<Packet> Nic::poll() {
  if (rx_queue_.empty()) {
    ++polls_empty_;
    m_polls_empty_.inc();
    charge_ctx(params_.poll_empty_cost);
    return std::nullopt;
  }
  ++polls_hit_;
  m_polls_hit_.inc();
  charge_ctx(params_.poll_hit_cost);
  Packet pkt = std::move(rx_queue_.front());
  rx_queue_.pop_front();
  m_rx_queue_depth_.set(static_cast<std::int64_t>(rx_queue_.size()));
  return pkt;
}

}  // namespace pm2::net
