// pm2sim -- NIC/fabric parameter sets.
//
// The timing model of one message of S bytes posted at time T:
//
//   caller CPU   : tx_post_cost + S * tx_copy_per_byte      (charged to ctx)
//   NIC pipeline : tx_dma_delay, then the wire is occupied
//                  S * wire_ns_per_byte (serialization; back-to-back
//                  packets queue behind tx_busy_until)
//   propagation  : wire_latency
//   rx NIC       : rx_deliver_delay, then the packet is visible to poll()
//   receiver CPU : poll_hit_cost + S * rx_copy_per_byte      (charged by the
//                  caller of poll() / the copying layer)
//
// The presets are calibrated against the paper's testbed (Sec. 2): Myri-10G
// with MX 1.2.7 (the hardware behind Figs. 3-9), ConnectX IB DDR (the paper
// reports "similar results"), and a slow TCP/GigE profile used by tests and
// examples to exercise heterogeneous-rail configurations.
#pragma once

#include <cstddef>
#include <string>

#include "simcore/time.hpp"

namespace pm2::net {

using sim::Time;

struct NicParams {
  std::string name = "nic";

  // Host-side CPU costs. Like MX, the model distinguishes PIO (the CPU
  // copies every byte into the NIC window; cheap setup, per-byte cost) from
  // DMA (the NIC pulls from pinned host memory; constant setup, no CPU
  // per-byte cost). Messages up to pio_threshold use PIO.
  Time tx_post_cost = 300;        ///< descriptor write + doorbell
  double tx_copy_per_byte = 0.6;  ///< PIO staging copy, ns per byte
  std::size_t pio_threshold = 2048;  ///< above this, DMA replaces PIO
  Time tx_dma_setup = 400;        ///< pin/map + descriptor for a DMA send
  Time poll_empty_cost = 80;      ///< completion-queue check, nothing there
  Time poll_hit_cost = 150;       ///< completion-queue check with an entry
  double rx_copy_per_byte = 0.6;  ///< ring -> user buffer copy, ns per byte
  Time rx_match_cost = 300;       ///< matched large recv: DMA lands in place

  // NIC / wire timing.
  Time tx_dma_delay = 200;         ///< host memory -> NIC
  double wire_ns_per_byte = 0.8;   ///< 10 Gb/s => 0.8 ns per byte
  Time wire_latency = 1200;        ///< propagation + switch
  Time rx_deliver_delay = 200;     ///< NIC -> host memory, completion write

  /// Maximum number of messages the NIC accepts before post_send() refuses
  /// (the transfer layer keeps its own backlog above this).
  int tx_queue_depth = 8;

  /// Myri-10G / MX 1.2.7: ~3 us one-way small-message latency once the
  /// library costs above it are added, ~2 ns/byte effective slope.
  static NicParams myri10g();

  /// ConnectX InfiniBand DDR: slightly lower wire latency, higher bandwidth.
  static NicParams connectx_ib();

  /// TCP over GigE: the slow profile (tens of microseconds, kernel stack).
  static NicParams tcp_gige();
};

}  // namespace pm2::net
