// pm2sim -- Mad-MPI: the MPI-flavoured interface NewMadeleine exposes
// (paper Sec. 2: "NEWMADELEINE implements both a specific API and a MPI
// interface called Mad-MPI").
//
// One simulated node hosts one MPI process; rank == node id. The
// programming model mirrors the MPI subset hybrid applications use:
// point-to-point (blocking + non-blocking), waits, and the classic
// collectives, implemented with textbook algorithms (dissemination
// barrier, binomial-tree bcast/reduce) on top of nm::Core. Thread-safety
// follows the underlying nm::Config -- with LockMode::kFine this behaves
// like MPI_THREAD_MULTIPLE: any simulated thread of the node may call into
// its Comm concurrently.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "nmad/cluster.hpp"

namespace pm2::madmpi {

using Tag = std::uint32_t;

/// Communicator handle for one rank (MPI_COMM_WORLD equivalent).
///
/// Cheap to copy; all state lives in the Cluster. Collective calls must be
/// entered by every rank (one thread per rank), like their MPI namesakes.
class Comm {
 public:
  Comm(nm::Cluster& world, int rank) : world_(&world), rank_(rank) {}

  int rank() const { return rank_; }
  int size() const { return world_->num_nodes(); }

  /// Virtual time in seconds (MPI_Wtime equivalent).
  double wtime() const;

  // --- point to point -------------------------------------------------------

  void send(int dst, Tag tag, const void* buf, std::size_t len);
  std::size_t recv(int src, Tag tag, void* buf, std::size_t capacity);

  nm::Request* isend(int dst, Tag tag, const void* buf, std::size_t len);
  nm::Request* irecv(int src, Tag tag, void* buf, std::size_t capacity);
  void wait(nm::Request* req);
  bool test(nm::Request* req);
  void wait_all(std::vector<nm::Request*>& reqs);

  /// MPI_Waitany equivalent: waits for one completion, releases it, nulls
  /// its slot, and returns its index.
  std::size_t wait_any(std::vector<nm::Request*>& reqs);

  /// Combined exchange (MPI_Sendrecv): posts the receive first, so large
  /// exchanges cannot deadlock.
  std::size_t sendrecv(int dst, Tag send_tag, const void* send_buf,
                       std::size_t send_len, int src, Tag recv_tag,
                       void* recv_buf, std::size_t recv_capacity);

  // --- collectives ------------------------------------------------------------

  /// Dissemination barrier: ceil(log2(size)) rounds.
  void barrier();

  /// Binomial-tree broadcast from @p root.
  void bcast(int root, void* buf, std::size_t len);

  /// Binomial-tree sum-reduction of @p n doubles to @p root. @p inout holds
  /// the local contribution on entry and, on the root, the result on exit.
  void reduce_sum(int root, double* inout, std::size_t n);

  /// Sum-allreduce. Picks the algorithm by payload: binomial reduce+bcast
  /// (latency-optimal) for small vectors, ring reduce-scatter + allgather
  /// (bandwidth-optimal) for large ones.
  void allreduce_sum(double* inout, std::size_t n);

  /// Force the binomial-tree algorithm (reduce to 0 + bcast).
  void allreduce_sum_binomial(double* inout, std::size_t n);

  /// Force the ring algorithm (reduce-scatter + allgather).
  void allreduce_sum_ring(double* inout, std::size_t n);

  /// Gather @p len bytes from every rank into @p out (root only; size() *
  /// len bytes, rank order).
  void gather(int root, const void* in, std::size_t len, void* out);

  /// Scatter @p len bytes per rank from @p in (root only) into @p out.
  void scatter(int root, const void* in, std::size_t len, void* out);

  /// Gather @p len bytes from every rank into every rank's @p out
  /// (size() * len bytes, rank order). gather-to-0 + bcast.
  void allgather(const void* in, std::size_t len, void* out);

  /// Personalized all-to-all: @p in holds size() blocks of @p len bytes
  /// (block i for rank i); @p out receives one block from every rank, in
  /// rank order. Ring-scheduled pairwise sendrecv.
  void alltoall(const void* in, std::size_t len, void* out);

 private:
  nm::Core& core() const { return world_->core(rank_); }
  nm::Gate* gate(int peer) const { return world_->gate(rank_, peer); }
  /// Internal collective tags live above the user tag space.
  static nm::Tag coll_tag(Tag op, int round);
  static nm::Tag p2p_tag(Tag tag);

  nm::Cluster* world_;
  int rank_;
};

/// Launch helper: spawns one thread per rank running @p main_fn(comm) and
/// returns once the world is built (call cluster.run() to execute).
void launch(nm::Cluster& world, const std::function<void(Comm)>& main_fn,
            int bind_core = -1);

}  // namespace pm2::madmpi
