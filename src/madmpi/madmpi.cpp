#include "madmpi/madmpi.hpp"

#include <cassert>
#include <cstring>
#include <stdexcept>

namespace pm2::madmpi {

namespace {
/// User point-to-point tags map below this; collective traffic above.
constexpr nm::Tag kCollBase = nm::Tag{1} << 32;
}  // namespace

nm::Tag Comm::p2p_tag(Tag tag) { return nm::Tag{tag}; }

nm::Tag Comm::coll_tag(Tag op, int round) {
  return kCollBase + (nm::Tag{op} << 16) + static_cast<nm::Tag>(round);
}

double Comm::wtime() const {
  return sim::to_sec(world_->engine().now());
}

void Comm::send(int dst, Tag tag, const void* buf, std::size_t len) {
  assert(dst != rank_ && "self-send not supported");
  core().send(gate(dst), p2p_tag(tag), buf, len);
}

std::size_t Comm::recv(int src, Tag tag, void* buf, std::size_t capacity) {
  assert(src != rank_ && "self-recv not supported");
  return core().recv(gate(src), p2p_tag(tag), buf, capacity);
}

nm::Request* Comm::isend(int dst, Tag tag, const void* buf, std::size_t len) {
  return core().isend(gate(dst), p2p_tag(tag), buf, len);
}

nm::Request* Comm::irecv(int src, Tag tag, void* buf, std::size_t capacity) {
  return core().irecv(gate(src), p2p_tag(tag), buf, capacity);
}

void Comm::wait(nm::Request* req) {
  core().wait(req);
  core().release(req);
}

bool Comm::test(nm::Request* req) {
  if (!core().test(req)) return false;
  core().release(req);
  return true;
}

void Comm::wait_all(std::vector<nm::Request*>& reqs) {
  for (nm::Request* r : reqs) wait(r);
  reqs.clear();
}

std::size_t Comm::wait_any(std::vector<nm::Request*>& reqs) {
  const std::size_t i = core().wait_any(reqs);
  core().release(reqs[i]);
  reqs[i] = nullptr;
  return i;
}

std::size_t Comm::sendrecv(int dst, Tag send_tag, const void* send_buf,
                           std::size_t send_len, int src, Tag recv_tag,
                           void* recv_buf, std::size_t recv_capacity) {
  nm::Request* rr = irecv(src, recv_tag, recv_buf, recv_capacity);
  nm::Request* sr = isend(dst, send_tag, send_buf, send_len);
  core().wait(rr);
  core().wait(sr);
  const std::size_t n = rr->received_length();
  core().release(rr);
  core().release(sr);
  return n;
}

void Comm::barrier() {
  // Dissemination barrier: in round k, rank r signals (r + 2^k) mod size
  // and awaits a signal from (r - 2^k) mod size.
  const int n = size();
  if (n == 1) return;
  std::uint8_t token = 1;
  for (int k = 0, dist = 1; dist < n; ++k, dist *= 2) {
    const int to = (rank_ + dist) % n;
    const int from = (rank_ - dist % n + n) % n;
    std::uint8_t in = 0;
    nm::Request* rr = core().irecv(gate(from), coll_tag(1, k), &in, 1);
    nm::Request* sr = core().isend(gate(to), coll_tag(1, k), &token, 1);
    core().wait(rr);
    core().wait(sr);
    core().release(rr);
    core().release(sr);
  }
}

void Comm::bcast(int root, void* buf, std::size_t len) {
  // Binomial tree rooted at @p root, on rotated ranks.
  const int n = size();
  if (n == 1) return;
  const int vrank = (rank_ - root + n) % n;
  // Receive from the parent (clear lowest set bit), unless root.
  if (vrank != 0) {
    const int parent = ((vrank & (vrank - 1)) + root) % n;
    const std::size_t got =
        core().recv(gate(parent), coll_tag(2, vrank), buf, len);
    if (got != len) throw std::runtime_error("bcast: length mismatch");
  }
  // Forward to children: vrank + 2^k for 2^k > vrank's lowest set bit span.
  for (int dist = 1; dist < n; dist *= 2) {
    if (vrank & (dist - 1)) break;
    if (vrank & dist) break;
    const int vchild = vrank + dist;
    if (vchild >= n) break;
    const int child = (vchild + root) % n;
    core().send(gate(child), coll_tag(2, vchild), buf, len);
  }
}

void Comm::reduce_sum(int root, double* inout, std::size_t n_elems) {
  // Binomial tree: children send partial sums up.
  const int n = size();
  if (n == 1) return;
  const int vrank = (rank_ - root + n) % n;
  std::vector<double> tmp(n_elems);
  for (int dist = 1; dist < n; dist *= 2) {
    if (vrank & dist) {
      // Send to parent and stop.
      const int vparent = vrank - dist;
      const int parent = (vparent + root) % n;
      core().send(gate(parent), coll_tag(3, vrank), inout,
                  n_elems * sizeof(double));
      return;
    }
    const int vchild = vrank + dist;
    if (vchild >= n) continue;
    const int child = (vchild + root) % n;
    const std::size_t got = core().recv(gate(child), coll_tag(3, vchild),
                                        tmp.data(), n_elems * sizeof(double));
    if (got != n_elems * sizeof(double)) {
      throw std::runtime_error("reduce: length mismatch");
    }
    for (std::size_t i = 0; i < n_elems; ++i) inout[i] += tmp[i];
  }
}

void Comm::allreduce_sum(double* inout, std::size_t n_elems) {
  // Ring pays 2(p-1) latency steps but moves only 2n/p data per step; the
  // binomial tree pays log2(p) steps moving whole vectors. Crossover set
  // where the per-element ring saving beats the extra hops on the
  // Myri-10G-like fabric.
  constexpr std::size_t kRingThreshold = 4096;  // elements
  if (size() > 2 && n_elems >= kRingThreshold) {
    allreduce_sum_ring(inout, n_elems);
  } else {
    allreduce_sum_binomial(inout, n_elems);
  }
}

void Comm::allreduce_sum_binomial(double* inout, std::size_t n_elems) {
  reduce_sum(0, inout, n_elems);
  bcast(0, inout, n_elems * sizeof(double));
}

void Comm::allreduce_sum_ring(double* inout, std::size_t n_elems) {
  const int p = size();
  if (p == 1) return;
  const int right = (rank_ + 1) % p;
  const int left = (rank_ - 1 + p) % p;
  // Block b = elements [lo(b), lo(b+1)); blocks differ by at most 1.
  auto lo = [&](int b) {
    const std::size_t base = n_elems / static_cast<std::size_t>(p);
    const std::size_t extra = n_elems % static_cast<std::size_t>(p);
    const auto ub = static_cast<std::size_t>(b);
    return ub * base + std::min<std::size_t>(ub, extra);
  };
  auto blen = [&](int b) { return lo(b + 1) - lo(b); };
  const std::size_t max_block = blen(0);
  std::vector<double> tmp(max_block);

  // Phase 1: reduce-scatter. After step s, rank r holds the partial sum of
  // block (r - s - 1 mod p) covering s + 2 contributions.
  for (int s = 0; s < p - 1; ++s) {
    const int send_b = (rank_ - s + p) % p;
    const int recv_b = (rank_ - s - 1 + p) % p;
    const std::size_t got = sendrecv(
        right, coll_tag(7, s), inout + lo(send_b), blen(send_b) * sizeof(double),
        left, coll_tag(7, s), tmp.data(), tmp.size() * sizeof(double));
    if (got != blen(recv_b) * sizeof(double)) {
      throw std::runtime_error("allreduce_ring: reduce-scatter length");
    }
    double* dst = inout + lo(recv_b);
    for (std::size_t i = 0; i < blen(recv_b); ++i) dst[i] += tmp[i];
  }
  // Phase 2: allgather of the fully-reduced blocks around the ring.
  for (int s = 0; s < p - 1; ++s) {
    const int send_b = (rank_ + 1 - s + p) % p;
    const int recv_b = (rank_ - s + p) % p;
    const std::size_t got = sendrecv(
        right, coll_tag(8, s), inout + lo(send_b), blen(send_b) * sizeof(double),
        left, coll_tag(8, s), inout + lo(recv_b), blen(recv_b) * sizeof(double));
    if (got != blen(recv_b) * sizeof(double)) {
      throw std::runtime_error("allreduce_ring: allgather length");
    }
  }
}

void Comm::gather(int root, const void* in, std::size_t len, void* out) {
  if (rank_ == root) {
    auto* dst = static_cast<std::uint8_t*>(out);
    std::memcpy(dst + static_cast<std::size_t>(rank_) * len, in, len);
    for (int r = 0; r < size(); ++r) {
      if (r == root) continue;
      const std::size_t got = core().recv(
          gate(r), coll_tag(4, r), dst + static_cast<std::size_t>(r) * len, len);
      if (got != len) throw std::runtime_error("gather: length mismatch");
    }
  } else {
    core().send(gate(root), coll_tag(4, rank_), in, len);
  }
}

void Comm::scatter(int root, const void* in, std::size_t len, void* out) {
  if (rank_ == root) {
    const auto* src = static_cast<const std::uint8_t*>(in);
    std::memcpy(out, src + static_cast<std::size_t>(rank_) * len, len);
    for (int r = 0; r < size(); ++r) {
      if (r == root) continue;
      core().send(gate(r), coll_tag(5, r),
                  src + static_cast<std::size_t>(r) * len, len);
    }
  } else {
    const std::size_t got =
        core().recv(gate(root), coll_tag(5, rank_), out, len);
    if (got != len) throw std::runtime_error("scatter: length mismatch");
  }
}

void Comm::allgather(const void* in, std::size_t len, void* out) {
  auto* dst = static_cast<std::uint8_t*>(out);
  if (rank_ == 0) {
    gather(0, in, len, out);
  } else {
    gather(0, in, len, nullptr);
    (void)dst;
  }
  bcast(0, out, static_cast<std::size_t>(size()) * len);
}

void Comm::alltoall(const void* in, std::size_t len, void* out) {
  const int n = size();
  const auto* src = static_cast<const std::uint8_t*>(in);
  auto* dst = static_cast<std::uint8_t*>(out);
  // Own block: local copy.
  std::memcpy(dst + static_cast<std::size_t>(rank_) * len,
              src + static_cast<std::size_t>(rank_) * len, len);
  // Ring schedule: in step k exchange with (rank +/- k); every pair
  // exchanges exactly once per step, so no rank oversubscribes.
  for (int k = 1; k < n; ++k) {
    const int to = (rank_ + k) % n;
    const int from = (rank_ - k % n + n) % n;
    const std::size_t got = sendrecv(
        to, coll_tag(6, k), src + static_cast<std::size_t>(to) * len, len,
        from, coll_tag(6, k), dst + static_cast<std::size_t>(from) * len, len);
    if (got != len) throw std::runtime_error("alltoall: length mismatch");
  }
}

void launch(nm::Cluster& world, const std::function<void(Comm)>& main_fn,
            int bind_core) {
  for (int r = 0; r < world.num_nodes(); ++r) {
    world.spawn(r, [&world, main_fn, r] { main_fn(Comm(world, r)); },
                "rank" + std::to_string(r), bind_core);
  }
}

}  // namespace pm2::madmpi
