// pm2sim -- gates: per-peer connection state.
//
// A gate bundles everything NewMadeleine keeps per communication partner
// (paper Fig. 1 / Sec. 3.2):
//   * the collect layer's list of packet wrappers waiting to be scheduled
//     (plus a priority list for protocol control chunks),
//   * the receive-side matching state: posted receives, receives bound to an
//     in-flight wire message, and the unexpected-message store.
//
// Gate is a data holder; the logic that manipulates it lives in Core (with
// locking applied according to the configured LockMode) and in the
// strategies.
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "nmad/request.hpp"
#include "nmad/types.hpp"
#include "simmachine/machine.hpp"
#include "simnet/buffer_pool.hpp"
#include "simsan/simsan.hpp"

namespace pm2::nm {

/// An entry of the collect layer's outgoing lists: a message (or protocol
/// chunk) waiting to be arranged into packets by the optimization layer.
struct PackWrapper {
  enum class Kind : std::uint8_t {
    kEager,    ///< small-message data (whole message)
    kRts,      ///< rendezvous request (control)
    kCts,      ///< rendezvous grant (control)
    kRdvData,  ///< granted rendezvous bulk data
  };

  Kind kind = Kind::kEager;
  Request* req = nullptr;  ///< originating send request (null for kCts)
  Tag tag = 0;
  std::uint32_t msg_seq = 0;
  const std::uint8_t* data = nullptr;  ///< message bytes (kEager / kRdvData)
  /// Scatter/gather source segments (data is null when set).
  const ConstIoSlice* slices = nullptr;
  std::size_t n_slices = 0;
  std::size_t len = 0;                 ///< total message length
  std::size_t offset = 0;              ///< next byte to submit (split sends)
  std::uint64_t cookie = 0;            ///< rendezvous correlation
  /// kCts: the granting receive request -- the host-side model of the RDMA
  /// window the grant advertises. kRdvData: the same window, learned from
  /// the CTS, into which chunks are placed without any wire-side copy.
  Request* rdv_window = nullptr;

  std::size_t remaining() const { return len - offset; }
};

/// One chunk of an unexpected message, kept without copying: the packet's
/// data slab is shared (SlabRef) until the bytes reach a user buffer.
struct UnexpectedPiece {
  std::size_t offset = 0;  ///< byte offset within the message
  std::uint32_t len = 0;
  const std::uint8_t* data = nullptr;
  net::SlabRef backing;  ///< keeps *data alive (packet slab or pool copy)
};

/// A message (or rendezvous announcement) that arrived before a matching
/// receive was posted.
struct UnexpectedMsg {
  Tag tag = 0;
  std::uint32_t msg_seq = 0;
  std::size_t total_len = 0;
  bool is_rdv = false;
  std::uint64_t rts_cookie = 0;
  std::vector<UnexpectedPiece> pieces;  ///< eager chunks, arrival order
  std::size_t filled = 0;
};

class Gate {
 public:
  Gate(int peer_node, std::vector<int> peer_ports)
      : peer_node_(peer_node), peer_ports_(std::move(peer_ports)) {}

  Gate(const Gate&) = delete;
  Gate& operator=(const Gate&) = delete;

  int peer_node() const { return peer_node_; }

  /// Endpoint this gate belongs to (scalable endpoints): a core with N
  /// endpoints keeps N gates per peer, one per endpoint, each with its own
  /// collect/matching state. 0 for the classic single-instance layout.
  int endpoint() const { return endpoint_; }

  /// Destination fabric port on rail @p rail.
  int peer_port(int rail) const {
    return peer_ports_.at(static_cast<std::size_t>(rail));
  }

  bool has_outgoing() const {
    return !ctrl_list_.empty() || !out_list_.empty();
  }

 private:
  friend class Core;
  friend class Strategy;  // arrange_fifo manipulates the collect lists

  int peer_node_;
  std::vector<int> peer_ports_;
  int endpoint_ = 0;  ///< owning endpoint index (set by Core::connect)

  // --- collect layer (protected by the collect lock) ----------------------
  std::deque<PackWrapper> ctrl_list_;  ///< RTS/CTS: scheduled with priority
  std::deque<PackWrapper> out_list_;   ///< data awaiting arrangement
  std::uint32_t next_send_seq_ = 0;
  mach::CacheLine out_line_;  ///< tracks which core last touched the lists
  /// simsan shared-state handle covering the collect lists above; every
  /// mutation site reports SIMSAN_ACCESS on it (named by Core::connect).
  san::Shared san_collect_{"gate.collect"};

  // --- receive matching (protected by the matching lock) ------------------
  std::deque<Request*> posted_recvs_;                    ///< unmatched, FIFO
  std::unordered_map<std::uint32_t, Request*> bound_recvs_;  ///< msg_seq ->
  std::deque<UnexpectedMsg> unexpected_;                 ///< arrival order
  san::Shared san_matching_{"gate.matching"};  ///< covers the tables above
};

}  // namespace pm2::nm
