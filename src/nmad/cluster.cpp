#include "nmad/cluster.hpp"

#include <algorithm>
#include <stdexcept>

#include "simnet/buffer_pool.hpp"
#include "simsan/simsan.hpp"

namespace pm2::nm {

Cluster::Cluster(ClusterConfig cfg) : cfg_(std::move(cfg)) {
  if (cfg_.nodes < 1) throw std::invalid_argument("Cluster: nodes < 1");
  if (cfg_.rails.empty()) throw std::invalid_argument("Cluster: no rails");
  if (cfg_.partitions < 1) throw std::invalid_argument("Cluster: partitions < 1");
  if (cfg_.workers < 1) throw std::invalid_argument("Cluster: workers < 1");
  if (cfg_.endpoints < 1 || cfg_.endpoints > 255) {
    throw std::invalid_argument("Cluster: endpoints must be in [1, 255]");
  }
  // Forward into the per-node core config (a direct nm.endpoints setting
  // wins only when the cluster-level knob is left at its default).
  if (cfg_.endpoints > 1) cfg_.nm.endpoints = cfg_.endpoints;

  // Partition the engine before anything schedules an event. The lookahead
  // is the minimum virtual time any packet spends between leaving one
  // node's control (DMA start) and entering another's (rx delivery) --
  // exactly the slack the conservative window synchronization needs.
  const int parts = std::min(cfg_.partitions, cfg_.nodes);
  if (parts > 1) {
    sim::Time lookahead = sim::kTimeInfinity;
    for (const auto& rail : cfg_.rails) {
      lookahead = std::min(lookahead, rail.tx_dma_delay + rail.wire_latency +
                                          rail.rx_deliver_delay);
    }
    if (lookahead <= 0) {
      throw std::invalid_argument(
          "Cluster: partitions > 1 needs a positive minimum wire delay "
          "(tx_dma_delay + wire_latency + rx_deliver_delay) for lookahead");
    }
    engine_.configure_partitions(parts, lookahead);
  }
  engine_.set_workers(cfg_.workers);
  // Shard the partition-aware singletons, and make sure the pool's metric
  // registration happens now, on the setup thread, not mid-run.
  obs::MetricsRegistry::global().set_shards(parts);
  net::BufferPool::global();

  const bool hooks = cfg_.pioman_hooks ||
                     cfg_.nm.progress == ProgressMode::kPiomanHooks ||
                     cfg_.nm.progress == ProgressMode::kIdleCoreOffload;

  for (std::size_t r = 0; r < cfg_.rails.size(); ++r) {
    fabrics_.push_back(std::make_unique<net::Fabric>(
        engine_, "fabric-" + std::to_string(r)));
  }

  for (int n = 0; n < cfg_.nodes; ++n) {
    // Everything a node owns -- including its NIC's fabric port -- lives in
    // its partition: events the components schedule during construction and
    // operation land in that partition's heap.
    sim::Engine::PartitionScope scope(engine_, partition_of(n));
    auto node = std::make_unique<Node>();
    node->machine = std::make_unique<mach::Machine>(
        engine_, "node" + std::to_string(n), cfg_.topology, cfg_.costs);
    node->sched = std::make_unique<mth::Scheduler>(*node->machine);
    node->pioman = std::make_unique<piom::Server>(*node->sched);
    node->tasklets = std::make_unique<piom::TaskletEngine>(*node->sched);
    node->core = std::make_unique<Core>(*node->sched, cfg_.nm,
                                        "nm" + std::to_string(n));
    // One NIC per rail. Attach order guarantees port == node index on
    // every fabric, which connect() below relies on.
    for (std::size_t r = 0; r < cfg_.rails.size(); ++r) {
      node->nics.push_back(std::make_unique<net::Nic>(
          *node->machine, *fabrics_[r], cfg_.rails[r]));
      node->core->add_rail(*node->nics.back());
    }
    node->core->attach_tasklets(node->tasklets.get());
    node->core->attach_pioman(node->pioman.get());
    if (cfg_.pioman_poll_core >= 0) {
      node->pioman->bind_polling(cfg_.pioman_poll_core);
    }
    if (hooks) node->pioman->enable_hooks();
    nodes_.push_back(std::move(node));
  }

  // Full mesh of gates.
  for (int a = 0; a < cfg_.nodes; ++a) {
    sim::Engine::PartitionScope scope(engine_, partition_of(a));
    for (int b = 0; b < cfg_.nodes; ++b) {
      if (a == b) continue;
      std::vector<int> peer_ports(cfg_.rails.size(), b);
      nodes_[static_cast<std::size_t>(a)]->core->connect(b, peer_ports);
    }
  }
}

Cluster::~Cluster() {
  if (simsan_owner_) {
    // The now-fns capture this cluster's engine; detach before they
    // dangle. Findings stay readable (set_enabled(false) does not clear).
    for (int i = 0; i < san::Analyzer::num_shards(); ++i) {
      auto& an = san::Analyzer::shard(i);
      an.set_enabled(false);
      an.set_now_fn(nullptr);
    }
  }
}

void Cluster::enable_simsan() {
  san::Analyzer::configure_shards(engine_.num_partitions());
  // Reset/enable every existing shard (shards beyond this engine's
  // partition count simply stay idle): the engine's now() resolves through
  // the calling thread's partition, so each shard stamps findings with its
  // own partition's virtual clock.
  for (int i = 0; i < san::Analyzer::num_shards(); ++i) {
    auto& an = san::Analyzer::shard(i);
    an.reset();
    an.set_now_fn(
        [this] { return static_cast<std::uint64_t>(engine_.now()); });
    an.set_enabled(true);
  }
  simsan_owner_ = true;
}

obs::TraceLog& Cluster::ensure_trace_log() {
  if (!trace_log_) {
    obs::TraceLog::Options opts;
    opts.rings = engine_.num_partitions();
    opts.capacity = cfg_.trace_ring_capacity;
    opts.engine = &engine_;
    trace_log_ = std::make_unique<obs::TraceLog>(opts);
  }
  return *trace_log_;
}

void Cluster::run() {
  engine_.run();
  if (trace_log_) trace_log_->drain_now();
}

sim::ChromeTrace& Cluster::enable_timeline() {
  if (!timeline_) {
    timeline_ = std::make_unique<sim::ChromeTrace>();
    // Default: route events into the per-partition trace rings (attach the
    // sink before anything records or interns).
    if (!cfg_.legacy_trace) timeline_->set_record_sink(&ensure_trace_log());
    for (int n = 0; n < cfg_.nodes; ++n) {
      timeline_->set_process_name(n, "node " + std::to_string(n));
      nodes_[static_cast<std::size_t>(n)]->sched->set_timeline(timeline_.get(), n);
      for (std::size_t r = 0; r < cfg_.rails.size(); ++r) {
        const int tid = 64 + static_cast<int>(r);
        timeline_->set_thread_name(n, tid, "nic rail " + std::to_string(r));
        nodes_[static_cast<std::size_t>(n)]->nics[r]->set_timeline(
            timeline_.get(), n, tid);
      }
    }
    if (flow_ && cfg_.legacy_trace) flow_->set_trace(timeline_.get());
  }
  return *timeline_;
}

obs::FlowTracer& Cluster::enable_flow_trace() {
  if (!flow_) {
    flow_ = std::make_unique<obs::FlowTracer>();
    if (cfg_.legacy_trace) {
      if (timeline_) flow_->set_trace(timeline_.get());
    } else {
      flow_->set_ring(&ensure_trace_log());
    }
    for (int n = 0; n < cfg_.nodes; ++n) {
      nodes_[static_cast<std::size_t>(n)]->core->set_flow_tracer(flow_.get(),
                                                                 n);
    }
  }
  return *flow_;
}

void Cluster::write_timeline(const std::string& path) {
  if (!timeline_) throw std::logic_error("Cluster: timeline not enabled");
  timeline_->write(path);
}

void Cluster::write_trace_binary(const std::string& path) {
  if (!trace_log_) {
    throw std::logic_error(
        "Cluster: binary trace log not enabled (enable_timeline / "
        "enable_flow_trace without legacy_trace)");
  }
  trace_log_->write_binary(path);
}

mth::Thread* Cluster::spawn(int node, std::function<void()> fn,
                            const std::string& name, int bind_core) {
  mth::ThreadAttrs attrs;
  attrs.name = name;
  attrs.bind_core = bind_core;
  // The spawn event must land in the node's partition.
  sim::Engine::PartitionScope scope(engine_, partition_of(node));
  return sched(node).spawn(std::move(fn), attrs);
}

}  // namespace pm2::nm
