// pm2sim -- Cluster: one-call construction of a whole virtual testbed.
//
// A Cluster owns the engine, the per-node machine/scheduler/PIOMan/tasklet
// stacks, the fabrics (one per rail), the NICs, and the per-node
// NewMadeleine cores, fully inter-connected (every node has a gate to every
// other). This is what benchmarks, examples and integration tests build.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "nmad/core.hpp"
#include "obs/flow.hpp"
#include "obs/trace_log.hpp"
#include "pioman/server.hpp"
#include "simcore/chrome_trace.hpp"
#include "pioman/tasklet.hpp"
#include "simcore/engine.hpp"
#include "simmachine/machine.hpp"
#include "simnet/nic.hpp"
#include "simthread/scheduler.hpp"

namespace pm2::nm {

struct ClusterConfig {
  int nodes = 2;
  mach::CacheTopology topology = mach::CacheTopology::quad_core();
  mach::CostBook costs = mach::CostBook::xeon_quad();
  /// One entry per rail; every node gets one NIC per rail.
  std::vector<net::NicParams> rails = {net::NicParams::myri10g()};
  Config nm;
  /// Scalable endpoints per node (Config::endpoints): every node's core is
  /// built with this many independent collect/matching/transfer instances.
  /// 1 (default) is the paper's shared single instance.
  int endpoints = 1;
  /// Enable PIOMan scheduler hooks (implied by kPiomanHooks /
  /// kIdleCoreOffload progression).
  bool pioman_hooks = false;
  /// Restrict hook-driven polling to this core (-1 = any). See Fig. 6/8.
  int pioman_poll_core = -1;
  /// Engine partitioning: the nodes are spread over this many event-heap
  /// partitions (node n lives in partition n % partitions; clamped to the
  /// node count), synchronized with conservative lookahead equal to the
  /// minimum rail wire delay. 1 (default) is the reference single-heap
  /// engine. NOTE: the partition count is part of the schedule -- compare
  /// results at equal partition counts.
  int partitions = 1;
  /// Host worker threads executing the partitions (clamped to the
  /// partition count). Any value produces the identical schedule; > 1 uses
  /// real threads.
  int workers = 1;
  /// Debug fallback: record timeline/flow events through the original
  /// mutexed direct-JSON path instead of the lock-free binary trace rings.
  /// Byte-stable only for workers == 1, and no .trace.bin can be written.
  bool legacy_trace = false;
  /// Records per partition trace ring (rounded up to a power of two).
  /// Rings never lose records under the default spill policy; capacity
  /// only tunes how often the owning worker self-drains.
  std::size_t trace_ring_capacity = 4096;
};

class Cluster {
 public:
  explicit Cluster(ClusterConfig cfg);
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  const ClusterConfig& config() const { return cfg_; }
  sim::Engine& engine() { return engine_; }
  int num_nodes() const { return cfg_.nodes; }

  /// Engine partition hosting @p node (0 when unpartitioned).
  int partition_of(int node) const {
    const int p = engine_.num_partitions();
    return p > 1 ? node % p : 0;
  }

  mach::Machine& machine(int node) { return *nodes_.at(static_cast<std::size_t>(node))->machine; }
  mth::Scheduler& sched(int node) { return *nodes_.at(static_cast<std::size_t>(node))->sched; }
  piom::Server& pioman(int node) { return *nodes_.at(static_cast<std::size_t>(node))->pioman; }
  piom::TaskletEngine& tasklets(int node) { return *nodes_.at(static_cast<std::size_t>(node))->tasklets; }
  Core& core(int node) { return *nodes_.at(static_cast<std::size_t>(node))->core; }
  net::Nic& nic(int node, int rail) {
    return *nodes_.at(static_cast<std::size_t>(node))->nics.at(static_cast<std::size_t>(rail));
  }

  /// Gate from @p node to @p peer.
  Gate* gate(int node, int peer) { return core(node).gate_to(peer); }

  /// Spawn a simulated thread on a node (optionally bound to a core).
  mth::Thread* spawn(int node, std::function<void()> fn,
                     const std::string& name = "app", int bind_core = -1);

  /// Run the world to completion (all threads finished, events drained),
  /// then spill any buffered trace records.
  void run();

  /// Start recording a Chrome-trace timeline (thread spans per core, NIC
  /// tx/rx). Returns the recorder, owned by the cluster.
  sim::ChromeTrace& enable_timeline();

  /// Write the recorded timeline (enable_timeline() must have been called).
  void write_timeline(const std::string& path);

  sim::ChromeTrace* timeline() { return timeline_.get(); }

  /// Start flow-tracing every message's lifecycle across the cluster.
  /// If the timeline is (or later becomes) enabled, flow events are also
  /// recorded there so Perfetto draws send -> recv arrows.
  obs::FlowTracer& enable_flow_trace();

  obs::FlowTracer* flow_trace() { return flow_.get(); }

  /// The binary telemetry sink behind the timeline / flow tracer (null
  /// until one of them is enabled, or always in legacy_trace mode).
  obs::TraceLog* trace_log() { return trace_log_.get(); }

  /// Write the captured records as a compact binary log (convert offline
  /// with tools/trace2json). Requires the ring path (not legacy_trace).
  void write_trace_binary(const std::string& path);

  /// Start a fresh simsan analysis run over this world: resets the analyzer
  /// shards (one per engine partition), routes report timestamps to this
  /// cluster's virtual clock and enables all event taps. Findings accumulate
  /// per shard (read merged via san::Analyzer::merged_print_report /
  /// merged_report_json, or san::Analyzer::global() in single-partition
  /// worlds) and in the "simsan" metrics-registry counters until the next
  /// enable/reset. The analyzer is process-global: analyze one world at a
  /// time. Disabled again when this cluster is destroyed.
  void enable_simsan();

 private:
  struct Node {
    std::unique_ptr<mach::Machine> machine;
    std::unique_ptr<mth::Scheduler> sched;
    std::unique_ptr<piom::Server> pioman;
    std::unique_ptr<piom::TaskletEngine> tasklets;
    std::unique_ptr<Core> core;
    std::vector<std::unique_ptr<net::Nic>> nics;
  };

  obs::TraceLog& ensure_trace_log();

  ClusterConfig cfg_;
  sim::Engine engine_;
  std::vector<std::unique_ptr<net::Fabric>> fabrics_;
  std::vector<std::unique_ptr<Node>> nodes_;
  // Destroyed after the recorders that feed it records.
  std::unique_ptr<obs::TraceLog> trace_log_;
  std::unique_ptr<sim::ChromeTrace> timeline_;
  std::unique_ptr<obs::FlowTracer> flow_;
  bool simsan_owner_ = false;  ///< we enabled the analyzer; detach in dtor
};

}  // namespace pm2::nm
