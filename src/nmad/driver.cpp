#include "nmad/driver.hpp"

namespace pm2::nm {

int Driver::drain(
    const std::function<void(std::vector<Request*>)>& complete_chunks) {
  int posted = 0;
  // One packet at a time: the next one is posted when the wire is idle
  // again (NIC-driven activity, paper Fig. 1).
  while (!pending_.empty() && nic_.tx_idle() && nic_.tx_ready()) {
    StagedPacket pkt = std::move(pending_.front());
    pending_.pop_front();
    if (post_observer_) post_observer_(pkt);
    auto accounted = std::move(pkt.accounted);
    const bool pio = pkt.payload.size() <= nic_.params().pio_threshold;
    if (pio) {
      // PIO send: the CPU copied every byte into the NIC window at post
      // time, so the sender's buffer is reusable immediately.
      nic_.post_send(pkt.dst_port, pkt.trk, std::move(pkt.payload));
      complete_chunks(std::move(accounted));
    } else {
      // DMA send: the buffer must stay stable until the NIC has read it.
      nic_.post_send(pkt.dst_port, pkt.trk, std::move(pkt.payload),
                     [complete = complete_chunks, acc = std::move(accounted)] {
                       complete(acc);
                     });
    }
    ++packets_posted_;
    ++posted;
  }
  return posted;
}

}  // namespace pm2::nm
