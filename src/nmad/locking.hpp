// pm2sim -- the library's lock topology, switchable at runtime.
//
// Sec. 3 of the paper compares three designs; LockSet realizes all of them
// behind one interface so the rest of the library is written once:
//
//   kNone   : every operation is a no-op (the unsafe baseline of Fig. 3).
//   kCoarse : every domain maps onto ONE library-wide spinlock (Sec. 3.1).
//             A progression pass may take the whole-library lock once via
//             lock_library(); nested domain locks are then elided, matching
//             the "one locking operation per library access" design.
//   kFine   : one lock per shared list -- the collect lists (global, as the
//             scheduler iterates over all of them, Sec. 3.2), one per
//             driver's transfer list, and one for the matching tables.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nmad/types.hpp"
#include "sync/spinlock.hpp"

namespace pm2::nm {

/// Lock domains of the fine-grain design.
enum class Domain : int {
  kCollect = 0,   ///< per-gate out/ctrl lists (one lock for all gates)
  kMatching = 1,  ///< posted/bound/unexpected receive tables
  kDriver0 = 2,   ///< transfer list of rail i = kDriver0 + i
};

class LockSet {
 public:
  /// @p prefix names the underlying spinlocks ("<prefix>-global",
  /// "<prefix>-collect", ...). The default keeps the historical names; a
  /// core with N > 1 endpoints builds one LockSet per endpoint, suffixing
  /// the prefix with the endpoint index so lock metrics and simsan reports
  /// stay distinguishable.
  LockSet(mth::Scheduler& sched, LockMode mode, int num_drivers,
          const std::string& prefix = "nm");

  LockSet(const LockSet&) = delete;
  LockSet& operator=(const LockSet&) = delete;

  LockMode mode() const { return mode_; }

  void lock(Domain d);
  void unlock(Domain d);
  /// Hook-safe acquisition: never spins; false = skip the work.
  bool try_lock(Domain d);

  Domain driver_domain(int rail) const {
    return static_cast<Domain>(static_cast<int>(Domain::kDriver0) + rail);
  }

  /// Whole-library lock for coarse-grain waiting functions: the paper's
  /// coarse design holds the mutex for the whole library visit (releasing
  /// it only before blocking), which is what serializes concurrent
  /// communication (Fig. 5). Re-entrant for the owning context, so
  /// progression passes made while waiting elide their domain locks.
  /// No-ops under kNone/kFine. try variant for hook contexts.
  void lock_library();
  void unlock_library();
  bool try_lock_library();
  bool library_locked_by_me() const;

  /// "The mutex is released before entering a blocking section": drop the
  /// library lock entirely (whatever the re-entrancy depth) and return the
  /// depth, so reacquire_library() can restore it after the block.
  int release_library_all();
  void reacquire_library(int depth);

  /// Total acquire/release cycles performed (diagnostics / tests).
  std::uint64_t cycles() const;

 private:
  sync::SpinLock* resolve(Domain d);

  mth::Scheduler& sched_;
  LockMode mode_;
  sync::SpinLock global_;
  sync::SpinLock collect_;
  sync::SpinLock matching_;
  std::vector<std::unique_ptr<sync::SpinLock>> drivers_;
  bool library_held_ = false;
  int library_depth_ = 0;
  /// Execution context owning the library lock: domain elision only applies
  /// to the owner, never to other threads racing for the global lock.
  const void* library_holder_ = nullptr;
};

}  // namespace pm2::nm
