#include "nmad/locking.hpp"

#include <cassert>

#include "simsan/context.hpp"

namespace pm2::nm {

const char* to_string(LockMode m) {
  switch (m) {
    case LockMode::kNone: return "none";
    case LockMode::kCoarse: return "coarse";
    case LockMode::kFine: return "fine";
  }
  return "?";
}

const char* to_string(WaitMode m) {
  switch (m) {
    case WaitMode::kBusy: return "busy";
    case WaitMode::kPassive: return "passive";
    case WaitMode::kFixedSpin: return "fixed-spin";
  }
  return "?";
}

const char* to_string(ProgressMode m) {
  switch (m) {
    case ProgressMode::kAppDriven: return "app-driven";
    case ProgressMode::kPiomanHooks: return "pioman-hooks";
    case ProgressMode::kPollThread: return "poll-thread";
    case ProgressMode::kTaskletOffload: return "tasklet-offload";
    case ProgressMode::kIdleCoreOffload: return "idle-core-offload";
  }
  return "?";
}

const char* to_string(StrategyKind k) {
  switch (k) {
    case StrategyKind::kDefault: return "default";
    case StrategyKind::kAggreg: return "aggreg";
    case StrategyKind::kSplit: return "split";
  }
  return "?";
}

LockSet::LockSet(mth::Scheduler& sched, LockMode mode, int num_drivers,
                 const std::string& prefix)
    : sched_(sched),
      mode_(mode),
      global_(sched, prefix + "-global"),
      collect_(sched, prefix + "-collect"),
      matching_(sched, prefix + "-matching") {
  drivers_.reserve(static_cast<std::size_t>(num_drivers));
  for (int i = 0; i < num_drivers; ++i) {
    drivers_.push_back(std::make_unique<sync::SpinLock>(
        sched, prefix + "-driver" + std::to_string(i)));
  }
}

sync::SpinLock* LockSet::resolve(Domain d) {
  switch (mode_) {
    case LockMode::kNone:
      return nullptr;
    case LockMode::kCoarse:
      if (library_held_ &&
          library_holder_ == static_cast<const void*>(
                                 mth::ExecContext::current_or_null())) {
        return nullptr;  // nested inside our own library-wide section
      }
      return &global_;
    case LockMode::kFine:
      break;
  }
  if (d == Domain::kCollect) return &collect_;
  if (d == Domain::kMatching) return &matching_;
  const int rail = static_cast<int>(d) - static_cast<int>(Domain::kDriver0);
  return drivers_.at(static_cast<std::size_t>(rail)).get();
}

void LockSet::lock(Domain d) {
  if (sync::SpinLock* l = resolve(d)) l->lock();
}

void LockSet::unlock(Domain d) {
  if (sync::SpinLock* l = resolve(d)) l->unlock();
}

bool LockSet::try_lock(Domain d) {
  sync::SpinLock* l = resolve(d);
  return l == nullptr || l->try_lock();
}

bool LockSet::library_locked_by_me() const {
  return library_held_ &&
         library_holder_ == static_cast<const void*>(
                                mth::ExecContext::current_or_null());
}

void LockSet::lock_library() {
  if (mode_ != LockMode::kCoarse) return;
  if (library_locked_by_me()) {
    ++library_depth_;
    return;
  }
  global_.lock();
  library_held_ = true;
  library_depth_ = 1;
  library_holder_ = mth::ExecContext::current_or_null();
}

void LockSet::unlock_library() {
  if (mode_ != LockMode::kCoarse) return;
  // Contract: only the context that locked the library may unlock it (the
  // release_library_all()/reacquire_library() window hands the lock over
  // wholesale, never piecemeal).
  if (!library_locked_by_me()) {
    if (san::violation("library-unlock-not-holder",
                       "unlock_library() by a context that does not hold "
                       "the library lock")) {
      return;
    }
    assert(library_held_ && "unlock_library without lock_library");
  }
  if (--library_depth_ > 0) return;
  library_held_ = false;
  library_holder_ = nullptr;
  global_.unlock();
}

bool LockSet::try_lock_library() {
  if (mode_ != LockMode::kCoarse) return true;
  if (library_locked_by_me()) {
    ++library_depth_;
    return true;
  }
  if (!global_.try_lock()) return false;
  library_held_ = true;
  library_depth_ = 1;
  library_holder_ = mth::ExecContext::current_or_null();
  return true;
}

int LockSet::release_library_all() {
  if (mode_ != LockMode::kCoarse || !library_locked_by_me()) return 0;
  const int depth = library_depth_;
  library_depth_ = 0;
  library_held_ = false;
  library_holder_ = nullptr;
  global_.unlock();
  return depth;
}

void LockSet::reacquire_library(int depth) {
  if (mode_ != LockMode::kCoarse || depth == 0) return;
  // Contract: a double reacquire (without an intervening release) would
  // self-deadlock on the global spinlock.
  if (library_locked_by_me()) {
    if (san::violation("library-double-reacquire",
                       "reacquire_library() while already holding the "
                       "library lock")) {
      library_depth_ += depth;
      return;
    }
    assert(false && "reacquire_library while already held");
  }
  global_.lock();
  library_held_ = true;
  library_depth_ = depth;
  library_holder_ = mth::ExecContext::current_or_null();
}

std::uint64_t LockSet::cycles() const {
  std::uint64_t n = global_.acquisitions() + collect_.acquisitions() +
                    matching_.acquisitions();
  for (const auto& d : drivers_) n += d->acquisitions();
  return n;
}

}  // namespace pm2::nm
