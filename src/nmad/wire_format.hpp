// pm2sim -- on-the-wire format of NewMadeleine packets.
//
// A NIC packet payload carries one or more *chunks*, each with a fixed
// binary header. Headers are serialized as real little-endian bytes; chunk
// data is carried as an iovec-style segment list alongside the header
// region (net::Payload), one segment per chunk, so building a packet never
// re-copies payload bytes that already live in a stable buffer.
//
// Wire layout (what linearize() reproduces and flat packets carry):
//   packet payload := u16 chunk_count, chunk*
//   chunk          := ChunkHeader (37 bytes), data[chunk_len]
//
// Chunk kinds:
//   kEager   -- (a slice of) a small message; offset/total support both
//               aggregation (several chunks per packet) and splitting
//               (several packets per message, multirail).
//   kRts     -- rendezvous request: announces (tag, msg_seq, total_len);
//               cookie identifies the sender's request.
//   kCts     -- rendezvous grant: echoes the cookie.
//   kRdvData -- (a slice of) rendezvous bulk data, sent on trk 1. When the
//               receive buffer is already known (the CTS told the sender),
//               the chunk is *placed*: it occupies wire bytes but carries
//               no host bytes -- the modeled DMA landed them directly.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "nmad/types.hpp"
#include "simnet/packet.hpp"

namespace pm2::nm {

enum class ChunkKind : std::uint8_t {
  kEager = 1,
  kRts = 2,
  kCts = 3,
  kRdvData = 4,
};

const char* to_string(ChunkKind k);

struct ChunkHeader {
  ChunkKind kind = ChunkKind::kEager;
  Tag tag = 0;
  std::uint32_t msg_seq = 0;    ///< per-gate, per-direction message number
  std::uint32_t offset = 0;     ///< byte offset of this chunk in the message
  std::uint32_t chunk_len = 0;  ///< bytes of data following this header
  std::uint32_t total_len = 0;  ///< total message length
  std::uint64_t cookie = 0;     ///< rendezvous correlation id
  /// Originating endpoint (scalable-endpoints routing): the receiver
  /// demultiplexes the chunk to its endpoint of the same index, so
  /// rendezvous placements and matching resolve against the owning
  /// endpoint's state. Packed into the high 8 bits of the msg_seq wire
  /// word (msg_seq is per-(endpoint, gate) and capped at 2^24), so the
  /// wire size -- and the whole byte stream at endpoints = 1 -- is
  /// unchanged.
  std::uint8_t ep = 0;

  /// Serialized size of a chunk header in bytes.
  static constexpr std::size_t kWireSize = 1 + 8 + 4 + 4 + 4 + 4 + 8;

  /// Number of msg_seq values available per (endpoint, gate) direction.
  static constexpr std::uint32_t kMaxSeq = 1u << 24;
};

/// Endpoint id of the first chunk of a packet payload without full
/// decoding (the rx demultiplex peek). All chunks of one packet originate
/// from the same endpoint (packets are arranged per (endpoint, gate)).
/// Returns 0 on malformed/empty payloads (the reader reports those).
std::uint8_t peek_packet_ep(const net::Payload& payload);

/// Incrementally builds a packet payload. Chunk data is gathered once into
/// a pooled slab (or marked placed, carrying no bytes); headers live in a
/// reused header region. take() emits a segmented net::Payload.
class PacketBuilder {
 public:
  PacketBuilder();

  /// Pre-size for @p chunks headers and @p data_bytes of gathered data
  /// (growth hint; never required for correctness).
  void reserve(std::size_t chunks, std::size_t data_bytes);

  /// Append one chunk, gathering @p data (contiguous). @p data may be null
  /// iff len == 0.
  void add_chunk(const ChunkHeader& h, const std::uint8_t* data);

  /// Append one chunk whose data arrives via gather() pieces (scatter/
  /// gather sends). Exactly h.chunk_len bytes must follow.
  void add_chunk_begin(const ChunkHeader& h);
  void gather(const std::uint8_t* piece, std::size_t len);

  /// Append one *placed* chunk: h.chunk_len wire bytes, no host bytes.
  void add_chunk_placed(const ChunkHeader& h);

  /// Attach a host-only annotation to the most recently added chunk.
  void annotate_last(void* note);

  std::size_t chunk_count() const { return segs_.size(); }
  std::size_t payload_size() const { return wire_size_; }

  /// Size the payload would have after adding a chunk of @p data_len bytes.
  std::size_t size_with(std::size_t data_len) const {
    return wire_size_ + ChunkHeader::kWireSize + data_len;
  }

  /// Finalize and take the payload. The builder is reset for reuse.
  net::Payload take();

 private:
  void put_header(const ChunkHeader& h);
  void grow_data(std::size_t need);

  enum class SegMode : std::uint8_t { kGathered, kPlaced };
  struct Seg {
    std::uint32_t slab_off = 0;  ///< into the data slab (kGathered)
    std::uint32_t len = 0;
    SegMode mode = SegMode::kGathered;
    void* note = nullptr;
  };

  std::vector<std::uint8_t> hdr_;  ///< count slot + serialized headers
  std::vector<Seg> segs_;
  net::SlabRef data_;
  std::size_t data_used_ = 0;
  std::size_t wire_size_ = 2;
  std::size_t gather_left_ = 0;  ///< bytes an open add_chunk_begin still expects
};

/// Decodes a packet payload chunk by chunk. Works on both flat byte
/// payloads (raw injection) and segmented ones.
class PacketReader {
 public:
  explicit PacketReader(const std::vector<std::uint8_t>& payload);
  explicit PacketReader(const net::Payload& payload);

  /// Chunks remaining.
  std::size_t remaining() const { return remaining_; }

  /// Read the next chunk. Returns nullopt (and poisons the reader) on a
  /// malformed payload. @p data_out receives a pointer to the chunk data
  /// (null for placed chunks); @p note_out, if given, the chunk's host
  /// annotation.
  std::optional<ChunkHeader> next(const std::uint8_t** data_out,
                                  void** note_out = nullptr);

  /// True if the payload was well-formed so far.
  bool ok() const { return ok_; }

 private:
  const std::uint8_t* buf_ = nullptr;  ///< flat bytes, or the header region
  std::size_t buf_len_ = 0;
  const net::Payload* seg_payload_ = nullptr;  ///< non-null in segmented mode
  std::size_t seg_index_ = 0;
  std::size_t pos_ = 0;
  std::size_t remaining_ = 0;
  bool ok_ = true;
};

}  // namespace pm2::nm
