// pm2sim -- on-the-wire format of NewMadeleine packets.
//
// A NIC packet payload carries one or more *chunks*, each with a fixed
// binary header. Everything is serialized as real little-endian bytes: the
// receive path decodes exactly what the send path encoded, as on real
// hardware.
//
// Layout:
//   packet payload := u16 chunk_count, chunk*
//   chunk          := ChunkHeader (37 bytes), data[chunk_len]
//
// Chunk kinds:
//   kEager   -- (a slice of) a small message; offset/total support both
//               aggregation (several chunks per packet) and splitting
//               (several packets per message, multirail).
//   kRts     -- rendezvous request: announces (tag, msg_seq, total_len);
//               cookie identifies the sender's request.
//   kCts     -- rendezvous grant: echoes the cookie.
//   kRdvData -- (a slice of) rendezvous bulk data, sent on trk 1.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "nmad/types.hpp"

namespace pm2::nm {

enum class ChunkKind : std::uint8_t {
  kEager = 1,
  kRts = 2,
  kCts = 3,
  kRdvData = 4,
};

const char* to_string(ChunkKind k);

struct ChunkHeader {
  ChunkKind kind = ChunkKind::kEager;
  Tag tag = 0;
  std::uint32_t msg_seq = 0;    ///< per-gate, per-direction message number
  std::uint32_t offset = 0;     ///< byte offset of this chunk in the message
  std::uint32_t chunk_len = 0;  ///< bytes of data following this header
  std::uint32_t total_len = 0;  ///< total message length
  std::uint64_t cookie = 0;     ///< rendezvous correlation id

  /// Serialized size of a chunk header in bytes.
  static constexpr std::size_t kWireSize = 1 + 8 + 4 + 4 + 4 + 4 + 8;
};

/// Incrementally builds a packet payload.
class PacketBuilder {
 public:
  PacketBuilder();

  /// Append one chunk (header + data). @p data may be null iff len == 0.
  void add_chunk(const ChunkHeader& h, const std::uint8_t* data);

  std::size_t chunk_count() const { return count_; }
  std::size_t payload_size() const { return buf_.size(); }

  /// Size the payload would have after adding a chunk of @p data_len bytes.
  std::size_t size_with(std::size_t data_len) const {
    return buf_.size() + ChunkHeader::kWireSize + data_len;
  }

  /// Finalize and take the payload. The builder is reset for reuse.
  std::vector<std::uint8_t> take();

 private:
  std::vector<std::uint8_t> buf_;
  std::size_t count_ = 0;
};

/// Decodes a packet payload chunk by chunk.
class PacketReader {
 public:
  explicit PacketReader(const std::vector<std::uint8_t>& payload);

  /// Chunks remaining.
  std::size_t remaining() const { return remaining_; }

  /// Read the next chunk. Returns nullopt (and poisons the reader) on a
  /// malformed payload. @p data_out receives a pointer into the payload.
  std::optional<ChunkHeader> next(const std::uint8_t** data_out);

  /// True if the payload was well-formed so far.
  bool ok() const { return ok_; }

 private:
  const std::vector<std::uint8_t>& buf_;
  std::size_t pos_ = 0;
  std::size_t remaining_ = 0;
  bool ok_ = true;
};

}  // namespace pm2::nm
