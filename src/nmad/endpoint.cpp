#include "nmad/endpoint.hpp"

#include "simthread/scheduler.hpp"

namespace pm2::nm {

Endpoint::Endpoint(mth::Scheduler& sched, const Config& cfg, int id,
                   std::string name, int max_rails, int home_partition)
    : id_(id),
      name_(std::move(name)),
      home_partition_(home_partition),
      // Endpoint 0 keeps the historical "nm-*" lock names; higher endpoints
      // suffix the prefix so lock metrics and simsan reports stay apart.
      locks_(sched, cfg.lock, max_rails,
             id == 0 ? "nm" : "nm-ep" + std::to_string(id)),
      strategy_(Strategy::make(cfg.strategy)) {
  src_to_gate_.resize(static_cast<std::size_t>(max_rails));
  san_deferred_.set_name(name_ + ".deferred");
  if (cfg.endpoints > 1) {
    auto& reg = obs::MetricsRegistry::global();
    const std::string& node = sched.machine().name();
    m_sends_ = reg.counter({"nmad.ep", node, id, "sends"});
    m_recvs_ = reg.counter({"nmad.ep", node, id, "recvs"});
    m_steals_ = reg.counter({"nmad.ep", node, id, "steals"});
  }
}

}  // namespace pm2::nm
