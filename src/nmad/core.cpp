#include "nmad/core.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>
#include <stdexcept>

#include "obs/flow.hpp"
#include "simcore/trace.hpp"
#include "simsan/context.hpp"

namespace pm2::nm {

namespace {
constexpr int kMaxRails = 4;

sim::Time copy_cost(double ns_per_byte, std::size_t bytes) {
  return static_cast<sim::Time>(
      std::llround(ns_per_byte * static_cast<double>(bytes)));
}

/// Core index for flow-event placement; engine context maps to core 0.
int current_core() {
  auto* ctx = mth::ExecContext::current_or_null();
  return ctx != nullptr ? ctx->core() : 0;
}

/// Leaf-lock acquisition usable from any execution context: one RMW try
/// (hook-legal; blocking spins need a thread context). On failure the
/// caller mutates without the lock -- host-safe, like the contended
/// fallback in Core::flush_deferred: host execution is single-threaded per
/// partition, the locks model cost, not safety.
bool leaf_try(sync::SpinLock& l) { return l.try_lock(); }
}  // namespace

Core::Core(mth::Scheduler& sched, Config cfg, std::string name)
    : sched_(sched), cfg_(cfg), name_(std::move(name)) {
  if (cfg_.endpoints < 1 || cfg_.endpoints > 255) {
    throw std::invalid_argument("nm::Core: endpoints must be in [1, 255]");
  }
  num_eps_ = cfg_.endpoints;
  home_partition_ = engine().current_partition();
  // Endpoints first: endpoint 0's LockSet registers its lock instruments
  // before the core-level counters below, preserving the historical
  // registration order of the single-instance layout.
  eps_.reserve(static_cast<std::size_t>(num_eps_));
  for (int e = 0; e < num_eps_; ++e) {
    eps_.push_back(std::make_unique<Endpoint>(
        sched_, cfg_, e, e == 0 ? name_ : name_ + ".ep" + std::to_string(e),
        kMaxRails, home_partition_));
  }
  if (num_eps_ > 1) {
    wildcard_lock_ =
        std::make_unique<sync::SpinLock>(sched_, name_ + "-wildcard");
    park_lock_ = std::make_unique<sync::SpinLock>(sched_, name_ + "-rxpark");
    parked_rx_.resize(static_cast<std::size_t>(num_eps_));
    san_wildcard_.set_name(name_ + ".wildcard");
    san_parked_.set_name(name_ + ".rxpark");
  }
  auto& reg = obs::MetricsRegistry::global();
  const std::string& node = sched_.machine().name();
  stats_.sends = reg.counter({"nmad", node, -1, "sends"});
  stats_.recvs = reg.counter({"nmad", node, -1, "recvs"});
  stats_.packets_rx = reg.counter({"nmad", node, -1, "packets_rx"});
  stats_.chunks_rx = reg.counter({"nmad", node, -1, "chunks_rx"});
  stats_.unexpected_chunks = reg.counter({"nmad", node, -1, "unexpected_chunks"});
  stats_.rdv_handshakes = reg.counter({"nmad", node, -1, "rdv_handshakes"});
  stats_.progress_passes = reg.counter({"nmad", node, -1, "progress_passes"});
  m_bytes_copied_ = reg.counter({"nmad", node, -1, "data.bytes_copied"});
  m_copies_ = reg.counter({"nmad", node, -1, "data.copies"});
  m_deliver_bytes_copied_ =
      reg.counter({"nmad", node, -1, "data.deliver_bytes_copied"});
  m_adopt_bytes_copied_ =
      reg.counter({"nmad", node, -1, "data.adopt_bytes_copied"});
  m_placed_bytes_ = reg.counter({"nmad", node, -1, "data.placed_bytes"});
  m_copies_per_msg_ = reg.histogram({"nmad", node, -1, "data.copies_per_msg"});
  submit_tasklet_ = std::make_unique<piom::Tasklet>(
      [this](mth::HookContext& hctx) {
        progress_try(hctx, /*submission_only=*/true);
      },
      name_ + "-submit");
}

Core::~Core() {
  if (pioman_) pioman_->unregister_source(this);
}

Driver& Core::add_rail(net::Nic& nic) {
  if (num_rails() >= kMaxRails) {
    throw std::length_error("Core::add_rail: too many rails");
  }
  const int index = num_rails();
  nics_.push_back(&nic);
  if (num_eps_ > 1) {
    nic_rx_locks_.push_back(std::make_unique<sync::SpinLock>(
        sched_, name_ + "-rxpoll" + std::to_string(index)));
  }
  for (auto& ep : eps_) {
    ep->drivers_.push_back(std::make_unique<Driver>(nic, index));
    Driver* d = ep->drivers_.back().get();
    ep->rail_ptrs_.push_back(d);
    d->san_xfer().set_name(ep->name_ + ".rail" + std::to_string(index) +
                           ".xfer");
  }
  // A freed tx slot is a progression opportunity: let idle cores know.
  nic.set_tx_notifier([this] {
    if (pioman_) pioman_->notify_new_work();
  });
  return *eps_[0]->rail_ptrs_.back();
}

Gate* Core::connect(int peer_node, std::vector<int> peer_ports) {
  if (static_cast<int>(peer_ports.size()) != num_rails()) {
    throw std::invalid_argument("Core::connect: one peer port per rail");
  }
  Gate* g0 = nullptr;
  for (auto& ep : eps_) {
    ep->gates_.push_back(std::make_unique<Gate>(peer_node, peer_ports));
    Gate* g = ep->gates_.back().get();
    g->endpoint_ = ep->id_;
    const std::string gate_name = ep->name_ + ".gate" + std::to_string(peer_node);
    g->san_collect_.set_name(gate_name + ".collect");
    g->san_matching_.set_name(gate_name + ".matching");
    ep->by_peer_[peer_node] = g;
    for (int r = 0; r < num_rails(); ++r) {
      ep->src_to_gate_[static_cast<std::size_t>(r)]
                      [peer_ports[static_cast<std::size_t>(r)]] = g;
    }
    if (g0 == nullptr) g0 = g;
  }
  return g0;
}

Gate* Core::gate_to(int peer_node) const {
  auto it = eps_[0]->by_peer_.find(peer_node);
  return it == eps_[0]->by_peer_.end() ? nullptr : it->second;
}

Gate* Core::gate_on(int e, Gate* gate) const {
  if (gate->endpoint() == e) return gate;
  const auto& by_peer = eps_[static_cast<std::size_t>(e)]->by_peer_;
  auto it = by_peer.find(gate->peer_node());
  assert(it != by_peer.end() && "gate has no sibling on that endpoint");
  return it->second;
}

void Core::attach_pioman(piom::Server* server) {
  pioman_ = server;
  if (pioman_) pioman_->register_source(this);
}

void Core::attach_tasklets(piom::TaskletEngine* engine) { tasklets_ = engine; }

// --------------------------------------------------------------------------
// Requests
// --------------------------------------------------------------------------

Request* Core::alloc_request() {
  Request* req;
  if (!free_reqs_.empty()) {
    req = free_reqs_.back();
    free_reqs_.pop_back();
    req->flag_.reset();
  } else {
    req_pool_.push_back(std::make_unique<Request>(sched_, 0));
    req = req_pool_.back().get();
  }
  req->id_ = next_req_id_++;
  req->kind_ = ReqKind::kSend;
  req->ep_ = 0;
  req->gate_ = nullptr;
  req->tag_ = 0;
  req->matched_tag_ = 0;
  req->msg_seq_ = 0;
  req->seq_bound_ = false;
  req->send_data_ = nullptr;
  req->send_slices_.clear();
  req->inflight_chunks_ = 0;
  req->fully_submitted_ = false;
  req->rdv_granted_ = false;
  req->recv_buf_ = nullptr;
  req->recv_slices_.clear();
  req->capacity_ = 0;
  req->host_copies_ = 0;
  req->total_len_ = 0;
  req->total_known_ = false;
  req->filled_ = 0;
  req->flow_id_ = 0;
  req->released_ = false;
  return req;
}

void Core::set_flow_tracer(obs::FlowTracer* tracer, int node_id) {
  flow_ = tracer;
  node_id_ = node_id;
  for (auto& ep : eps_) {
    for (auto& d : ep->drivers_) {
      if (tracer == nullptr) {
        d->set_post_observer(nullptr);
        continue;
      }
      d->set_post_observer([this](const StagedPacket& pkt) {
        if (flow_ == nullptr) return;
        const sim::Time now = engine().now();
        const int core = current_core();
        for (Request* r : pkt.accounted) {
          if (r->flow_id_ != 0) {
            flow_->stamp(r->flow_id_, obs::FlowStage::kNicPost, now, node_id_,
                         core);
          }
        }
      });
    }
  }
}

void Core::release(Request* req) {
  assert(req != nullptr && !req->released_);
  assert(req->completed() && "release of an incomplete request");
  eps_[static_cast<std::size_t>(req->ep_)]->send_by_cookie_.erase(req->id_);
  req->released_ = true;
  req->owned_send_buf_.clear();
  req->owned_send_buf_.shrink_to_fit();
  free_reqs_.push_back(req);
}

void Core::complete_request(Request* req) {
  assert(!req->completed());
  if (flow_ != nullptr && req->kind_ == ReqKind::kRecv &&
      req->flow_id_ != 0) {
    flow_->stamp(req->flow_id_, obs::FlowStage::kComplete, engine().now(),
                 node_id_, current_core());
  }
  m_copies_per_msg_.observe(req->host_copies_);
  req->flag_.set();
  --active_reqs_;
}

void Core::on_chunks_wire_done(const std::vector<Request*>& reqs) {
  const sim::Time now = flow_ != nullptr ? engine().now() : 0;
  for (Request* req : reqs) {
    assert(req->inflight_chunks_ > 0);
    --req->inflight_chunks_;
    if (flow_ != nullptr && req->flow_id_ != 0) {
      flow_->stamp(req->flow_id_, obs::FlowStage::kWireDone, now, node_id_,
                   current_core());
    }
    if (req->fully_submitted_ && req->inflight_chunks_ == 0 &&
        !req->completed()) {
      complete_request(req);
    }
  }
}

// --------------------------------------------------------------------------
// Public API
// --------------------------------------------------------------------------

Request* Core::isend(Gate* gate, Tag tag, const void* data, std::size_t len) {
  assert(gate != nullptr);
  assert(tag != kAnyTag && "kAnyTag is receive-only");
  auto& ctx = mth::ExecContext::current();
  ctx.charge(cfg_.api_cost);

  Request* req = alloc_request();
  req->send_data_ = static_cast<const std::uint8_t*>(data);
  const int e = endpoint_of(tag);
  req->ep_ = e;
  return launch_send(ctx, *eps_[static_cast<std::size_t>(e)], req,
                     gate_on(e, gate), tag, len);
}

Request* Core::isend_sg(Gate* gate, Tag tag, const ConstIoSlice* slices,
                        std::size_t count) {
  assert(gate != nullptr);
  assert(tag != kAnyTag && "kAnyTag is receive-only");
  auto& ctx = mth::ExecContext::current();
  ctx.charge(cfg_.api_cost);

  Request* req = alloc_request();
  req->send_slices_.assign(slices, slices + count);
  std::size_t len = 0;
  for (std::size_t i = 0; i < count; ++i) len += slices[i].len;
  const int e = endpoint_of(tag);
  req->ep_ = e;
  return launch_send(ctx, *eps_[static_cast<std::size_t>(e)], req,
                     gate_on(e, gate), tag, len);
}

Request* Core::launch_send(mth::ExecContext& ctx, Endpoint& ep, Request* req,
                           Gate* gate, Tag tag, std::size_t len) {
  req->kind_ = ReqKind::kSend;
  req->gate_ = gate;
  req->tag_ = tag;
  req->total_len_ = len;
  req->total_known_ = true;
  ++active_reqs_;
  stats_.sends.add_always();
  ep.m_sends_.inc();

  const bool rdv = len > cfg_.rdv_threshold;
  if (rdv) ep.send_by_cookie_[req->id_] = req;

  const bool inline_submit =
      cfg_.progress != ProgressMode::kTaskletOffload &&
      cfg_.progress != ProgressMode::kIdleCoreOffload;

  // Collect phase: stage the pack wrapper and -- matching the paper's
  // Sec. 3.1 critical path ("held and released twice: once for submitting
  // the message to the collect layer, once to transmit it through the
  // network") -- arrange packets within the same collect section.
  std::vector<Strategy::Arranged> staged;
  ep.locks_.lock(Domain::kCollect);
  ctx.touch(gate->out_line_);
  SIMSAN_ACCESS(gate->san_collect_);
  req->msg_seq_ = gate->next_send_seq_++;
  req->seq_bound_ = true;
  if (flow_ != nullptr) {
    req->flow_id_ = obs::FlowTracer::flow_id(
        node_id_, gate->peer_node(), flow_seq(ep.id_, req->msg_seq_));
    flow_->stamp(req->flow_id_, obs::FlowStage::kPost, engine().now(),
                 node_id_, ctx.core());
  }
  PackWrapper pw;
  pw.req = req;
  pw.tag = tag;
  pw.msg_seq = req->msg_seq_;
  pw.data = req->send_data_;
  if (!req->send_slices_.empty()) {
    pw.slices = req->send_slices_.data();
    pw.n_slices = req->send_slices_.size();
  }
  pw.len = len;
  pw.cookie = req->id_;
  if (rdv) {
    pw.kind = PackWrapper::Kind::kRts;
    gate->ctrl_list_.push_back(pw);
  } else {
    pw.kind = PackWrapper::Kind::kEager;
    gate->out_list_.push_back(pw);
  }
  if (inline_submit) {
    ep.strategy_->arrange(cfg_, *gate, ep.rail_ptrs_, ctx, staged);
  }
  ep.locks_.unlock(Domain::kCollect);

  PM2_TRACE("nmad", kDebug, "%s: isend tag %llu len %zu seq %u (%s)",
            name_.c_str(), static_cast<unsigned long long>(tag), len,
            req->msg_seq_, rdv ? "rdv" : "eager");

  // Transmit phase.
  if (inline_submit) {
    commit_staged(ep, staged, /*use_try=*/false);
  } else {
    kick_submission(ctx, ep);
  }
  return req;
}

Request* Core::isend_owned(Gate* gate, Tag tag,
                           std::vector<std::uint8_t> data) {
  // Stash the bytes first; isend() records the pointer into the request we
  // are about to receive, so stage via a temporary slot on the free-list
  // head... simplest correct order: allocate through isend with a stable
  // heap location owned by the request afterwards.
  const std::size_t len = data.size();
  Request* req = isend(gate, tag, data.data(), len);
  req->owned_send_buf_ = std::move(data);
  // isend() captured the pointer before the move; vector moves preserve
  // the heap block, so send_data_ still points at the live bytes.
  assert(len == 0 || req->send_data_ == req->owned_send_buf_.data());
  return req;
}

void Core::kick_submission(mth::ExecContext& ctx, Endpoint& ep) {
  switch (cfg_.progress) {
    case ProgressMode::kTaskletOffload:
      assert(tasklets_ != nullptr && "kTaskletOffload without tasklet engine");
      tasklets_->schedule(submit_tasklet_.get(),
                          cfg_.poll_core >= 0 ? cfg_.poll_core : 0);
      break;
    case ProgressMode::kIdleCoreOffload:
      assert(pioman_ != nullptr && "kIdleCoreOffload without PIOMan");
      pioman_->notify_new_work();
      break;
    default:
      // Inline submission ("transmit through the network", Sec. 3.1).
      submit_step(ctx, ep, /*use_try=*/false);
      break;
  }
}

Request* Core::irecv(Gate* gate, Tag tag, void* buf, std::size_t capacity) {
  assert(gate != nullptr);
  auto& ctx = mth::ExecContext::current();
  ctx.charge(cfg_.api_cost);

  Request* req = alloc_request();
  req->recv_buf_ = static_cast<std::uint8_t*>(buf);
  req->capacity_ = capacity;
  if (tag == kAnyTag && num_eps_ > 1) {
    return launch_recv_wildcard(ctx, req, gate);
  }
  const int e = endpoint_of(tag);
  req->ep_ = e;
  return launch_recv(ctx, *eps_[static_cast<std::size_t>(e)], req,
                     gate_on(e, gate), tag);
}

Request* Core::irecv_sg(Gate* gate, Tag tag, const IoSlice* slices,
                        std::size_t count) {
  assert(gate != nullptr);
  auto& ctx = mth::ExecContext::current();
  ctx.charge(cfg_.api_cost);

  Request* req = alloc_request();
  req->recv_slices_.assign(slices, slices + count);
  req->recv_buf_ = nullptr;
  std::size_t capacity = 0;
  for (std::size_t i = 0; i < count; ++i) capacity += slices[i].len;
  req->capacity_ = capacity;
  if (tag == kAnyTag && num_eps_ > 1) {
    return launch_recv_wildcard(ctx, req, gate);
  }
  const int e = endpoint_of(tag);
  req->ep_ = e;
  return launch_recv(ctx, *eps_[static_cast<std::size_t>(e)], req,
                     gate_on(e, gate), tag);
}

bool Core::adopt_unexpected_locked(mth::ExecContext& ctx, Endpoint& ep,
                                   Gate& gate, Request* req, Tag tag,
                                   bool* adopted_rdv) {
  // Adopt the earliest (lowest msg_seq) unexpected message with this tag.
  auto best = gate.unexpected_.end();
  for (auto it = gate.unexpected_.begin(); it != gate.unexpected_.end();
       ++it) {
    if (tag != kAnyTag && it->tag != tag) continue;
    if (best == gate.unexpected_.end() || it->msg_seq < best->msg_seq) {
      best = it;
    }
  }
  if (best == gate.unexpected_.end()) return false;

  const std::size_t capacity = req->capacity_;
  UnexpectedMsg um = std::move(*best);
  gate.unexpected_.erase(best);
  req->matched_tag_ = um.tag;
  req->msg_seq_ = um.msg_seq;
  req->seq_bound_ = true;
  req->total_len_ = um.total_len;
  req->total_known_ = true;
  if (um.total_len > capacity) {
    throw std::length_error("nm::Core::irecv: message exceeds buffer (" +
                            std::to_string(um.total_len) + " > " +
                            std::to_string(capacity) + ")");
  }
  if (um.is_rdv) {
    // Late receiver: grant the rendezvous now.
    gate.bound_recvs_[req->msg_seq_] = req;
    PackWrapper cts;
    cts.kind = PackWrapper::Kind::kCts;
    cts.tag = tag;
    cts.msg_seq = um.msg_seq;
    cts.cookie = um.rts_cookie;
    cts.rdv_window = req;  // the window the grant advertises
    SIMSAN_ACCESS(ep.san_deferred_);
    ep.deferred_pws_.emplace_back(&gate, cts);
    *adopted_rdv = true;
    stats_.rdv_handshakes.add_always();
  } else {
    // Scatter the retained unexpected pieces into the user buffer: the
    // single host copy of the unexpected eager path.
    if (um.filled > 0) {
      for (const auto& piece : um.pieces) {
        req->scatter_into(piece.offset, piece.data, piece.len);
      }
      ++req->host_copies_;
      m_adopt_bytes_copied_.inc(um.filled);
      m_bytes_copied_.inc(um.filled);
      m_copies_.inc();
      ctx.charge(
          copy_cost(nics_[0]->params().rx_copy_per_byte, um.filled));
    }
    if (flow_ != nullptr) {
      // The bytes reach the user buffer here, not at chunk arrival: the
      // unexpected dwell is part of the unpack segment by design.
      req->flow_id_ = obs::FlowTracer::flow_id(
          gate.peer_node(), node_id_, flow_seq(ep.id_, req->msg_seq_));
      flow_->stamp(req->flow_id_, obs::FlowStage::kDeliver, engine().now(),
                   node_id_, ctx.core());
    }
    req->filled_ = um.filled;
    if (req->filled_ == req->total_len_) {
      complete_request(req);
    } else {
      gate.bound_recvs_[req->msg_seq_] = req;  // rest still in flight
    }
  }
  return true;
}

Request* Core::launch_recv(mth::ExecContext& ctx, Endpoint& ep, Request* req,
                           Gate* gate, Tag tag) {
  req->kind_ = ReqKind::kRecv;
  req->gate_ = gate;
  req->tag_ = tag;
  ++active_reqs_;
  stats_.recvs.add_always();
  ep.m_recvs_.inc();

  bool adopted_rdv = false;
  ep.locks_.lock(Domain::kMatching);
  SIMSAN_ACCESS(gate->san_matching_);
  if (!adopt_unexpected_locked(ctx, ep, *gate, req, tag, &adopted_rdv)) {
    gate->posted_recvs_.push_back(req);
  }
  ep.locks_.unlock(Domain::kMatching);

  if (adopted_rdv) {
    flush_deferred(ep, /*use_try=*/false);
    kick_submission(ctx, ep);
  }
  return req;
}

Request* Core::launch_recv_wildcard(mth::ExecContext& ctx, Request* req,
                                    Gate* gate) {
  req->kind_ = ReqKind::kRecv;
  req->gate_ = gate;
  req->tag_ = kAnyTag;
  ++active_reqs_;
  stats_.recvs.add_always();

  // Publish first: a message arriving on any endpoint after this instant
  // sees the wildcard in the shared list, and any message that arrived
  // before is found by the scan below -- no window where both sides miss
  // each other.
  {
    const bool locked = leaf_try(*wildcard_lock_);
    if (locked) SIMSAN_ACCESS(san_wildcard_);
    wildcard_recvs_.push_back(req);
    if (locked) wildcard_lock_->unlock();
  }

  for (int e = 0; e < num_eps_; ++e) {
    Endpoint& ep = *eps_[static_cast<std::size_t>(e)];
    Gate* g = gate_on(e, gate);
    bool adopted_rdv = false;
    bool matched = false;
    ep.locks_.lock(Domain::kMatching);
    SIMSAN_ACCESS(g->san_matching_);
    if (!g->unexpected_.empty()) {
      // Un-publish our request (matching -> wildcard lock order) before
      // adopting; if it is gone, an incoming message already claimed it.
      bool ours = false;
      {
        const bool locked = leaf_try(*wildcard_lock_);
        if (locked) SIMSAN_ACCESS(san_wildcard_);
        auto it =
            std::find(wildcard_recvs_.begin(), wildcard_recvs_.end(), req);
        if (it != wildcard_recvs_.end()) {
          wildcard_recvs_.erase(it);
          ours = true;
        }
        if (locked) wildcard_lock_->unlock();
      }
      if (!ours) {
        ep.locks_.unlock(Domain::kMatching);
        return req;
      }
      req->ep_ = e;
      req->gate_ = g;
      matched = adopt_unexpected_locked(ctx, ep, *g, req, kAnyTag,
                                        &adopted_rdv);
      if (!matched) {
        // Nothing adoptable after all: re-publish and keep scanning.
        req->ep_ = 0;
        req->gate_ = gate;
        const bool locked = leaf_try(*wildcard_lock_);
        if (locked) SIMSAN_ACCESS(san_wildcard_);
        wildcard_recvs_.push_back(req);
        if (locked) wildcard_lock_->unlock();
      }
    }
    ep.locks_.unlock(Domain::kMatching);
    if (matched) {
      if (adopted_rdv) {
        flush_deferred(ep, /*use_try=*/false);
        kick_submission(ctx, ep);
      }
      return req;
    }
  }
  return req;
}

Request* Core::claim_wildcard_locked(const Gate& gate) {
  // Unpriced host peek: skip the leaf lock when nothing is parked.
  if (wildcard_recvs_.empty()) return nullptr;
  const bool locked = leaf_try(*wildcard_lock_);
  if (locked) SIMSAN_ACCESS(san_wildcard_);
  Request* req = nullptr;
  for (auto it = wildcard_recvs_.begin(); it != wildcard_recvs_.end(); ++it) {
    if ((*it)->gate_->peer_node() == gate.peer_node()) {
      req = *it;
      wildcard_recvs_.erase(it);
      break;
    }
  }
  if (locked) wildcard_lock_->unlock();
  return req;
}

bool Core::test(Request* req) {
  auto& ctx = mth::ExecContext::current();
  ctx.charge(cfg_.api_cost);
  (void)ctx;
  return req->flag_.test();
}

void Core::wait(Request* req) {
  auto& ctx = mth::ExecContext::current();
  ctx.charge(cfg_.api_cost);

  if (cfg_.progress == ProgressMode::kPollThread) {
    // Progression belongs to the dedicated thread; we only watch the flag
    // (this is the Fig. 8 configuration).
    req->flag_.wait(cfg_.wait == WaitMode::kBusy
                        ? sync::WaitPolicy::kBusy
                        : cfg_.wait == WaitMode::kPassive
                              ? sync::WaitPolicy::kPassive
                              : sync::WaitPolicy::kFixedSpin,
                    cfg_.fixed_spin_budget);
    return;
  }

  // The endpoint whose locks this wait may block on. With one endpoint this
  // is the classic whole-library visit; with several, the waiter owns its
  // request's endpoint and only ever try-locks the others (work stealing),
  // so two waiters can never hold-and-wait across endpoints.
  Endpoint& own = *eps_[static_cast<std::size_t>(req->ep_)];

  auto progress_once = [&] {
    if (pioman_ != nullptr && cfg_.progress == ProgressMode::kPiomanHooks) {
      // Polling goes through PIOMan (Fig. 6 configuration).
      pioman_->poll_once(ctx);
    } else if (num_eps_ == 1) {
      progress(ctx);
    } else {
      stats_.progress_passes.add_always();
      progress_multi(ctx, own.id_, /*use_try=*/true);
    }
  };

  switch (cfg_.wait) {
    case WaitMode::kBusy:
      // Coarse-grain semantics (Sec. 3.1): the mutex is held for the whole
      // visit to the library -- the busy-waiting thread keeps it for the
      // entire polling loop, which is exactly what serializes concurrent
      // communication in Fig. 5. (Re-entrant: inner passes elide locks.)
      // The loop is preemptible at timeslice boundaries (with the lock
      // RELEASED around the preemption) so an oversubscribed core cannot
      // be starved by its own spinner.
      own.locks_.lock_library();
      while (!req->flag_.test()) {
        progress_once();
        if (sched_.runqueue_length(sched_.current_thread()->core()) > 0) {
          const int depth = own.locks_.release_library_all();
          sched_.maybe_preempt();
          own.locks_.reacquire_library(depth);
        }
      }
      own.locks_.unlock_library();
      return;
    case WaitMode::kPassive: {
      // "The mutex is released before entering a blocking section":
      // progression must come from elsewhere (PIOMan hooks, other threads).
      const int depth = own.locks_.release_library_all();
      req->flag_.wait_passive();
      own.locks_.reacquire_library(depth);
      return;
    }
    case WaitMode::kFixedSpin: {
      const sim::Time deadline = engine().now() + cfg_.fixed_spin_budget;
      own.locks_.lock_library();
      while (engine().now() < deadline) {
        if (req->flag_.test()) {
          own.locks_.unlock_library();
          return;
        }
        progress_once();
        if (sched_.runqueue_length(sched_.current_thread()->core()) > 0) {
          const int depth = own.locks_.release_library_all();
          sched_.maybe_preempt();
          own.locks_.reacquire_library(depth);
        }
      }
      own.locks_.unlock_library();
      // Release any enclosing library visit too before blocking.
      const int depth = own.locks_.release_library_all();
      req->flag_.wait_passive();
      own.locks_.reacquire_library(depth);
      return;
    }
  }
}

// Note: the blocking conveniences are deliberately NOT one lock-held
// library visit. Holding the coarse mutex from irecv through completion
// deadlocks two communicating thread pairs (each node's holder waits for a
// message whose sender is parked on the peer node's holder) -- the very
// trap the paper's "the mutex is also released before entering a blocking
// section" warns about. The wait itself still holds the lock across its
// polling loop (see wait()).

std::size_t Core::wait_any(const std::vector<Request*>& reqs) {
  auto& ctx = mth::ExecContext::current();
  ctx.charge(cfg_.api_cost);
  assert(std::any_of(reqs.begin(), reqs.end(),
                     [](Request* r) { return r != nullptr; }) &&
         "wait_any with no live requests");
  if (num_eps_ == 1) {
    auto& locks = eps_[0]->locks_;
    locks.lock_library();
    for (;;) {
      for (std::size_t i = 0; i < reqs.size(); ++i) {
        // Cheap host peek first; one priced read on the hit.
        if (reqs[i] != nullptr && reqs[i]->flag_.is_set()) {
          reqs[i]->flag_.test();
          locks.unlock_library();
          return i;
        }
      }
      ctx.charge(sched_.costs().spin_retry);
      if (pioman_ != nullptr && cfg_.progress == ProgressMode::kPiomanHooks) {
        pioman_->poll_once(ctx);
      } else {
        progress(ctx);
      }
      if (sched_.runqueue_length(sched_.current_thread()->core()) > 0) {
        const int depth = locks.release_library_all();
        sched_.maybe_preempt();
        locks.reacquire_library(depth);
      }
    }
  }
  // Multi-endpoint: the requests may span endpoints, so no single library
  // lock can cover the loop; progress all endpoints (blocking is safe --
  // no endpoint lock is held between passes).
  for (;;) {
    for (std::size_t i = 0; i < reqs.size(); ++i) {
      if (reqs[i] != nullptr && reqs[i]->flag_.is_set()) {
        reqs[i]->flag_.test();
        return i;
      }
    }
    ctx.charge(sched_.costs().spin_retry);
    if (pioman_ != nullptr && cfg_.progress == ProgressMode::kPiomanHooks) {
      pioman_->poll_once(ctx);
    } else {
      progress(ctx);
    }
    if (sched_.runqueue_length(sched_.current_thread()->core()) > 0) {
      sched_.maybe_preempt();
    }
  }
}

void Core::send(Gate* gate, Tag tag, const void* data, std::size_t len) {
  Request* req = isend(gate, tag, data, len);
  wait(req);
  release(req);
}

std::size_t Core::recv(Gate* gate, Tag tag, void* buf, std::size_t capacity) {
  Request* req = irecv(gate, tag, buf, capacity);
  wait(req);
  const std::size_t n = req->received_length();
  release(req);
  return n;
}

// --------------------------------------------------------------------------
// Progression
// --------------------------------------------------------------------------

bool Core::progress(mth::ExecContext& ctx) {
  stats_.progress_passes.add_always();
  if (num_eps_ > 1) {
    // Thread context holding no endpoint lock: blocking passes over every
    // endpoint are safe (one endpoint's locks at a time).
    return progress_multi(ctx, /*own_ep=*/-1, /*use_try=*/false);
  }
  Endpoint& ep = *eps_[0];
  ep.locks_.lock_library();
  bool any = flush_deferred(ep, false);
  any |= submit_step(ctx, ep, false);
  any |= pump_step(ctx, false);
  if (ep.resubmit_hint_) {
    ep.resubmit_hint_ = false;
    any |= flush_deferred(ep, false);
    any |= submit_step(ctx, ep, false);
  }
  ep.locks_.unlock_library();
  return any;
}

bool Core::progress_try(mth::ExecContext& ctx, bool submission_only) {
  stats_.progress_passes.add_always();
  if (num_eps_ > 1) {
    return progress_multi(ctx, /*own_ep=*/-1, /*use_try=*/true,
                          submission_only);
  }
  Endpoint& ep = *eps_[0];
  if (!ep.locks_.try_lock_library()) return false;
  bool any = flush_deferred(ep, true);
  any |= submit_step(ctx, ep, true);
  if (!submission_only) {
    any |= pump_step(ctx, true);
    if (ep.resubmit_hint_) {
      ep.resubmit_hint_ = false;
      any |= flush_deferred(ep, true);
      any |= submit_step(ctx, ep, true);
    }
  }
  ep.locks_.unlock_library();
  return any;
}

bool Core::progress_ep(mth::ExecContext& ctx, Endpoint& ep, bool blocking,
                       bool submission_only) {
  const bool use_try = !blocking;
  if (blocking) {
    ep.locks_.lock_library();
  } else if (!ep.locks_.try_lock_library()) {
    return false;
  }
  bool any = flush_deferred(ep, use_try);
  any |= submit_step(ctx, ep, use_try);
  if (!submission_only) {
    any |= drain_parked(ctx, ep, use_try);
    if (ep.resubmit_hint_) {
      ep.resubmit_hint_ = false;
      any |= flush_deferred(ep, use_try);
      any |= submit_step(ctx, ep, use_try);
    }
  }
  ep.locks_.unlock_library();
  return any;
}

bool Core::progress_multi(mth::ExecContext& ctx, int own_ep, bool use_try,
                          bool submission_only) {
  bool any = false;
  // Deterministic round-robin start so no endpoint is structurally starved
  // when many contexts drive progression.
  const int start = rr_;
  rr_ = (rr_ + 1) % num_eps_;
  for (int k = 0; k < num_eps_; ++k) {
    const int e = (start + k) % num_eps_;
    Endpoint& ep = *eps_[static_cast<std::size_t>(e)];
    const bool blocking = !use_try || e == own_ep;
    const bool adv = progress_ep(ctx, ep, blocking, submission_only);
    if (adv && use_try && e != own_ep) ep.m_steals_.inc();
    any |= adv;
  }
  if (!submission_only) any |= pump_step_multi(ctx, own_ep, use_try);
  return any;
}

bool Core::poll(mth::ExecContext& ctx) {
  if (cfg_.progress == ProgressMode::kIdleCoreOffload) {
    // Idle cores only take over *submission* work (Sec. 4.2, "while a core
    // is idle, Marcel invokes PIOMan that can detect that a message needs
    // to be submitted to a network").
    if (!has_submission_work()) return false;
    ctx.charge(sched_.costs().idle_offload_detect);
    return progress_try(ctx, /*submission_only=*/true);
  }
  return progress_try(ctx);
}

bool Core::pending() const {
  if (cfg_.progress == ProgressMode::kIdleCoreOffload) {
    return has_submission_work();
  }
  return active_reqs_ > 0 || has_submission_work();
}

bool Core::has_submission_work() const {
  for (const auto& ep : eps_) {
    if (ep->has_submission_work()) return true;
  }
  return false;
}

bool Core::flush_deferred(Endpoint& ep, bool use_try) {
  // Unpriced peek: the deque is only ever non-empty after a matching-locked
  // section queued protocol work.
  if (ep.deferred_pws_.empty()) return false;
  std::deque<std::pair<Gate*, PackWrapper>> local;
  if (use_try) {
    if (!ep.locks_.try_lock(Domain::kMatching)) return false;
  } else {
    ep.locks_.lock(Domain::kMatching);
  }
  SIMSAN_ACCESS(ep.san_deferred_);
  local.swap(ep.deferred_pws_);
  ep.locks_.unlock(Domain::kMatching);
  if (local.empty()) return false;

  if (use_try) {
    if (!ep.locks_.try_lock(Domain::kCollect)) {
      // Put them back; next pass retries.
      if (ep.locks_.try_lock(Domain::kMatching)) {
        SIMSAN_ACCESS(ep.san_deferred_);
        for (auto& e : local) ep.deferred_pws_.push_back(std::move(e));
        ep.locks_.unlock(Domain::kMatching);
        return false;
      }
      // Extremely contended: re-queue without the lock. Host execution is
      // single-threaded, so this is safe; the locks model cost, not safety.
      for (auto& e : local) ep.deferred_pws_.push_back(std::move(e));
      return false;
    }
  } else {
    ep.locks_.lock(Domain::kCollect);
  }
  for (auto& [gate, pw] : local) {
    SIMSAN_ACCESS(gate->san_collect_);
    if (pw.kind == PackWrapper::Kind::kCts) {
      gate->ctrl_list_.push_back(pw);
    } else {
      gate->out_list_.push_back(pw);
    }
  }
  ep.locks_.unlock(Domain::kCollect);
  return true;
}

bool Core::submit_step(mth::ExecContext& ctx, Endpoint& ep, bool use_try) {
  bool work = false;
  for (const auto& g : ep.gates_) {
    if (g->has_outgoing()) {
      work = true;
      break;
    }
  }
  for (const auto& d : ep.drivers_) {
    if (d->has_pending()) work = true;
  }
  if (!work) return false;

  std::vector<Strategy::Arranged> staged;
  bool locked_collect;
  if (use_try) {
    locked_collect = ep.locks_.try_lock(Domain::kCollect);
  } else {
    ep.locks_.lock(Domain::kCollect);
    locked_collect = true;
  }
  if (locked_collect) {
    for (const auto& g : ep.gates_) {
      if (!g->has_outgoing()) continue;
      ctx.touch(g->out_line_);
      ep.strategy_->arrange(cfg_, *g, ep.rail_ptrs_, ctx, staged);
    }
    ep.locks_.unlock(Domain::kCollect);
  }

  return commit_staged(ep, staged, use_try) || !staged.empty();
}

bool Core::commit_staged(Endpoint& ep, std::vector<Strategy::Arranged>& staged,
                         bool use_try) {
  bool posted = false;
  // Execute rendezvous placements now, before any wire event can fire: the
  // modeled RDMA lands the bytes in the receiver's window so neither side
  // ever observes missing data. Host copy accounting for gathered chunks
  // also lands here (the strategy counted, we publish).
  for (auto& a : staged) {
    if (!a.pkt.placements.empty()) {
      std::uint64_t placed = 0;
      for (const RdvPlacement& pl : a.pkt.placements) {
        pl.dst->scatter_into(pl.msg_off, pl.src, pl.len);
        placed += pl.len;
      }
      m_placed_bytes_.inc(placed);
      a.pkt.placements.clear();
    }
    if (a.pkt.gathered_bytes > 0) {
      m_bytes_copied_.inc(a.pkt.gathered_bytes);
      m_copies_.inc(a.pkt.gathered_chunks);
    }
  }
  if (flow_ != nullptr && !staged.empty()) {
    const sim::Time now = engine().now();
    const int core = current_core();
    for (const auto& a : staged) {
      for (Request* r : a.pkt.accounted) {
        if (r->flow_id_ != 0) {
          flow_->stamp(r->flow_id_, obs::FlowStage::kArrange, now, node_id_,
                       core);
        }
      }
    }
  }
  auto completer = [this](std::vector<Request*> reqs) {
    on_chunks_wire_done(reqs);
  };
  for (int r = 0; r < num_rails(); ++r) {
    Driver& drv = *ep.drivers_[static_cast<std::size_t>(r)];
    const bool has_commits =
        std::any_of(staged.begin(), staged.end(),
                    [r](const auto& a) { return a.rail == r; });
    if (!has_commits && !drv.has_pending()) continue;
    const Domain d = ep.locks_.driver_domain(r);
    if (use_try) {
      if (!ep.locks_.try_lock(d)) {
        // Staged packets for this rail must not be lost: nobody else can
        // be arranging (we popped the wrappers), so append without the
        // lock -- cost model only, host-safe -- and let a later pass drain.
        for (auto& a : staged) {
          if (a.rail == r) drv.commit(std::move(a.pkt));
        }
        continue;
      }
    } else {
      ep.locks_.lock(d);
    }
    SIMSAN_ACCESS(drv.san_xfer());
    for (auto& a : staged) {
      if (a.rail == r) drv.commit(std::move(a.pkt));
    }
    posted |= drv.drain(completer) > 0;
    ep.locks_.unlock(d);
  }
  return posted;
}

bool Core::pump_step(mth::ExecContext& ctx, bool use_try) {
  // Classic single-instance pump: endpoint 0 owns every packet.
  Endpoint& ep = *eps_[0];
  bool any = false;
  auto completer = [this](std::vector<Request*> reqs) {
    on_chunks_wire_done(reqs);
  };
  if (!use_try) {
    // Blocking path: never hold two domains at once.
    std::vector<std::pair<int, net::Packet>> received;
    for (int r = 0; r < num_rails(); ++r) {
      Driver& d = *ep.drivers_[static_cast<std::size_t>(r)];
      if (!d.has_pending() && !d.nic().rx_pending()) {
        // Doorbell peek: an empty completion queue is detected with a
        // plain (priced) read, no lock needed -- idle polling passes cost
        // the same under every locking mode.
        d.nic().poll();
        continue;
      }
      ep.locks_.lock(ep.locks_.driver_domain(r));
      SIMSAN_ACCESS(d.san_xfer());
      d.drain(completer);
      for (int k = 0; k < 4; ++k) {
        auto pkt = d.nic().poll();
        if (!pkt) break;
        received.emplace_back(r, std::move(*pkt));
      }
      ep.locks_.unlock(ep.locks_.driver_domain(r));
    }
    if (!received.empty()) {
      any = true;
      ep.locks_.lock(Domain::kMatching);
      for (auto& [r, pkt] : received) process_packet_locked(ctx, ep, r, pkt);
      ep.locks_.unlock(Domain::kMatching);
    }
    return any;
  }

  // Hook path: nested try-locks (deadlock-free) so no packet is popped
  // unless it can be processed.
  for (int r = 0; r < num_rails(); ++r) {
    Driver& d = *ep.drivers_[static_cast<std::size_t>(r)];
    if (!d.has_pending() && !d.nic().rx_pending()) {
      d.nic().poll();  // doorbell peek (see blocking path)
      continue;
    }
    if (!ep.locks_.try_lock(ep.locks_.driver_domain(r))) continue;
    SIMSAN_ACCESS(d.san_xfer());
    d.drain(completer);
    int budget = 4;
    while (budget-- > 0 && d.nic().rx_pending()) {
      if (!ep.locks_.try_lock(Domain::kMatching)) break;
      auto pkt = d.nic().poll();
      if (pkt) {
        process_packet_locked(ctx, ep, r, *pkt);
        any = true;
      }
      ep.locks_.unlock(Domain::kMatching);
    }
    ep.locks_.unlock(ep.locks_.driver_domain(r));
  }
  return any;
}

bool Core::pump_step_multi(mth::ExecContext& ctx, int own_ep, bool use_try) {
  bool any = false;
  auto completer = [this](std::vector<Request*> reqs) {
    on_chunks_wire_done(reqs);
  };
  // Per-endpoint transfer lists: drain tx completions and pending commits.
  for (int e = 0; e < num_eps_; ++e) {
    Endpoint& ep = *eps_[static_cast<std::size_t>(e)];
    const bool blocking = !use_try || e == own_ep;
    for (int r = 0; r < num_rails(); ++r) {
      Driver& d = *ep.drivers_[static_cast<std::size_t>(r)];
      if (!d.has_pending()) continue;
      const Domain dom = ep.locks_.driver_domain(r);
      if (blocking) {
        ep.locks_.lock(dom);
      } else if (!ep.locks_.try_lock(dom)) {
        continue;
      }
      SIMSAN_ACCESS(d.san_xfer());
      const bool adv = d.drain(completer) > 0;
      ep.locks_.unlock(dom);
      if (adv && use_try && e != own_ep) ep.m_steals_.inc();
      any |= adv;
    }
  }
  // Shared NIC completion queues: the rx doorbell is atomic MMIO (see
  // endpoint.hpp), so polling needs no lock; each popped packet is then
  // demultiplexed to its owning endpoint via the wire endpoint id.
  for (int r = 0; r < num_rails(); ++r) {
    net::Nic& nic = *nics_[static_cast<std::size_t>(r)];
    if (!nic.rx_pending()) {
      nic.poll();  // doorbell peek: priced like the single-endpoint pump
      continue;
    }
    // The peek above is the lock-free atomic doorbell read; *popping* the
    // completion queue is not fiber-atomic (poll's cost charge can yield
    // mid-dequeue), so one poller at a time per NIC. Contended pass: the
    // rail is already being drained, skip it.
    sync::SpinLock& rx_lock = *nic_rx_locks_[static_cast<std::size_t>(r)];
    if (!rx_lock.try_lock()) continue;
    for (int k = 0; k < 4; ++k) {
      auto pkt = nic.poll();
      if (!pkt) break;
      const int e =
          static_cast<int>(peek_packet_ep(pkt->payload)) % num_eps_;
      Endpoint& ep = *eps_[static_cast<std::size_t>(e)];
      auto park = [&] {
        const bool locked = leaf_try(*park_lock_);
        if (locked) SIMSAN_ACCESS(san_parked_);
        parked_rx_[static_cast<std::size_t>(e)].emplace_back(r,
                                                             std::move(*pkt));
        if (locked) park_lock_->unlock();
      };
      // FIFO per endpoint: once packets are parked for e, later arrivals
      // must queue behind them or matching would observe reordering.
      if (!parked_rx_[static_cast<std::size_t>(e)].empty()) {
        park();
        continue;
      }
      const bool blocking = !use_try || e == own_ep;
      bool locked;
      if (blocking) {
        ep.locks_.lock(Domain::kMatching);
        locked = true;
      } else {
        locked = ep.locks_.try_lock(Domain::kMatching);
      }
      if (!locked) {
        park();
        continue;
      }
      process_packet_locked(ctx, ep, r, *pkt);
      ep.locks_.unlock(Domain::kMatching);
      if (use_try && e != own_ep) ep.m_steals_.inc();
      any = true;
    }
    rx_lock.unlock();
  }
  return any;
}

bool Core::drain_parked(mth::ExecContext& ctx, Endpoint& ep, bool use_try) {
  if (parked_rx_.empty()) return false;  // single-endpoint core
  auto& q = parked_rx_[static_cast<std::size_t>(ep.id_)];
  if (q.empty()) return false;  // unpriced host peek
  if (use_try) {
    if (!ep.locks_.try_lock(Domain::kMatching)) return false;
  } else {
    ep.locks_.lock(Domain::kMatching);
  }
  std::deque<std::pair<int, net::Packet>> local;
  {
    const bool locked = leaf_try(*park_lock_);
    if (locked) SIMSAN_ACCESS(san_parked_);
    local.swap(q);
    if (locked) park_lock_->unlock();
  }
  for (auto& [r, pkt] : local) process_packet_locked(ctx, ep, r, pkt);
  ep.locks_.unlock(Domain::kMatching);
  return !local.empty();
}

// --------------------------------------------------------------------------
// Receive path (caller holds the endpoint's matching domain)
// --------------------------------------------------------------------------

void Core::process_packet_locked(mth::ExecContext& ctx, Endpoint& ep, int rail,
                                 const net::Packet& pkt) {
  stats_.packets_rx.add_always();
  const auto& map = ep.src_to_gate_.at(static_cast<std::size_t>(rail));
  auto gi = map.find(pkt.src_port);
  Gate* gate = gi == map.end() ? nullptr : gi->second;
  if (gate == nullptr) {
    PM2_TRACE("nmad", kWarn, "%s: packet from unknown port %d dropped",
              name_.c_str(), pkt.src_port);
    return;
  }
  SIMSAN_ACCESS(gate->san_matching_);
  PacketReader reader(pkt.payload);
  const net::SlabRef* backing = pkt.payload.data_slab();
  const std::uint8_t* data = nullptr;
  void* note = nullptr;
  while (auto h = reader.next(&data, &note)) {
    stats_.chunks_rx.add_always();
    handle_chunk_locked(ctx, ep, rail, *gate, *h, data, note, backing);
  }
  if (!reader.ok()) {
    PM2_TRACE("nmad", kError, "%s: malformed packet from port %d",
              name_.c_str(), pkt.src_port);
  }
}

void Core::handle_chunk_locked(mth::ExecContext& ctx, Endpoint& ep, int rail,
                               Gate& gate, const ChunkHeader& h,
                               const std::uint8_t* data, void* note,
                               const net::SlabRef* backing) {
  switch (h.kind) {
    case ChunkKind::kCts: {
      // Sender side: rendezvous granted; queue the bulk data. The CTS note
      // carries the receiving request -- the advertised memory window --
      // so the data chunks can be *placed* with zero host copies.
      auto it = ep.send_by_cookie_.find(h.cookie);
      assert(it != ep.send_by_cookie_.end() && "CTS for unknown request");
      Request* req = it->second;
      assert(!req->rdv_granted_);
      req->rdv_granted_ = true;
      stats_.rdv_handshakes.add_always();
      PackWrapper pw;
      pw.kind = PackWrapper::Kind::kRdvData;
      pw.req = req;
      pw.tag = req->tag_;
      pw.msg_seq = req->msg_seq_;
      pw.data = req->send_data_;
      if (!req->send_slices_.empty()) {
        pw.slices = req->send_slices_.data();
        pw.n_slices = req->send_slices_.size();
      }
      pw.len = req->total_len_;
      pw.cookie = req->id_;
      pw.rdv_window = static_cast<Request*>(note);
      SIMSAN_ACCESS(ep.san_deferred_);
      ep.deferred_pws_.emplace_back(req->gate_, pw);
      ep.resubmit_hint_ = true;
      return;
    }
    case ChunkKind::kRts: {
      // Receiver side: a rendezvous announcement matches like a message.
      Request* req = nullptr;
      for (auto it = gate.posted_recvs_.begin();
           it != gate.posted_recvs_.end(); ++it) {
        if ((*it)->tag_ == h.tag || (*it)->tag_ == kAnyTag) {
          req = *it;
          gate.posted_recvs_.erase(it);
          break;
        }
      }
      if (req == nullptr && num_eps_ > 1) {
        req = claim_wildcard_locked(gate);
        if (req != nullptr) {
          req->ep_ = ep.id_;
          req->gate_ = &gate;
        }
      }
      if (req != nullptr) {
        req->matched_tag_ = h.tag;
        req->msg_seq_ = h.msg_seq;
        req->seq_bound_ = true;
        req->total_len_ = h.total_len;
        req->total_known_ = true;
        if (h.total_len > req->capacity_) {
          throw std::length_error("nm: rendezvous message exceeds buffer");
        }
        gate.bound_recvs_[h.msg_seq] = req;
        PackWrapper cts;
        cts.kind = PackWrapper::Kind::kCts;
        cts.tag = h.tag;
        cts.msg_seq = h.msg_seq;
        cts.cookie = h.cookie;
        cts.rdv_window = req;  // the window the grant advertises
        SIMSAN_ACCESS(ep.san_deferred_);
        ep.deferred_pws_.emplace_back(&gate, cts);
        ep.resubmit_hint_ = true;
        stats_.rdv_handshakes.add_always();
      } else {
        UnexpectedMsg um;
        um.tag = h.tag;
        um.msg_seq = h.msg_seq;
        um.total_len = h.total_len;
        um.is_rdv = true;
        um.rts_cookie = h.cookie;
        gate.unexpected_.push_back(std::move(um));
        stats_.unexpected_chunks.add_always();
      }
      return;
    }
    case ChunkKind::kEager:
    case ChunkKind::kRdvData: {
      Request* req = nullptr;
      auto bound = gate.bound_recvs_.find(h.msg_seq);
      if (bound != gate.bound_recvs_.end()) {
        req = bound->second;
      } else {
        for (auto it = gate.posted_recvs_.begin();
             it != gate.posted_recvs_.end(); ++it) {
          if ((*it)->tag_ == h.tag || (*it)->tag_ == kAnyTag) {
            req = *it;
            gate.posted_recvs_.erase(it);
            break;
          }
        }
        if (req == nullptr && num_eps_ > 1) {
          req = claim_wildcard_locked(gate);
          if (req != nullptr) {
            req->ep_ = ep.id_;
            req->gate_ = &gate;
          }
        }
        if (req != nullptr) {
          req->matched_tag_ = h.tag;
          req->msg_seq_ = h.msg_seq;
          req->seq_bound_ = true;
          req->total_len_ = h.total_len;
          req->total_known_ = true;
          if (h.total_len > req->capacity_) {
            throw std::length_error("nm: message exceeds receive buffer");
          }
          gate.bound_recvs_[h.msg_seq] = req;
        }
      }
      if (req != nullptr) {
        deliver_chunk_locked(ctx, rail, gate, req, h, data);
        return;
      }
      // Unexpected: retain the chunk bytes without copying when the packet
      // payload lives in a pooled slab (segmented delivery) -- the piece
      // shares the slab via refcount. Flat payloads (raw injection) die
      // with the packet, so those bytes go into a fresh pooled slab.
      UnexpectedMsg* um = nullptr;
      for (auto& u : gate.unexpected_) {
        if (u.msg_seq == h.msg_seq) {
          um = &u;
          break;
        }
      }
      if (um == nullptr) {
        gate.unexpected_.emplace_back();
        um = &gate.unexpected_.back();
        um->tag = h.tag;
        um->msg_seq = h.msg_seq;
        um->total_len = h.total_len;
      }
      if (h.chunk_len > 0) {
        assert(data != nullptr && "placed chunk arrived unexpected");
        assert(h.offset + h.chunk_len <= um->total_len);
        UnexpectedPiece piece;
        piece.offset = h.offset;
        piece.len = h.chunk_len;
        if (backing != nullptr) {
          piece.backing = *backing;  // handoff, no host copy
          piece.data = data;
        } else {
          piece.backing = net::BufferPool::global().acquire(h.chunk_len);
          std::memcpy(piece.backing.data(), data, h.chunk_len);
          piece.data = piece.backing.data();
          m_bytes_copied_.inc(h.chunk_len);
          m_copies_.inc();
        }
        um->pieces.push_back(std::move(piece));
        ctx.charge(copy_cost(
            nics_[static_cast<std::size_t>(rail)]->params().rx_copy_per_byte,
            h.chunk_len));
      }
      um->filled += h.chunk_len;
      stats_.unexpected_chunks.add_always();
      return;
    }
  }
}

void Core::deliver_chunk_locked(mth::ExecContext& ctx, int rail, Gate& gate,
                                Request* req, const ChunkHeader& h,
                                const std::uint8_t* data) {
  assert(req->seq_bound_ && req->msg_seq_ == h.msg_seq);
  if (flow_ != nullptr) {
    req->flow_id_ = obs::FlowTracer::flow_id(
        gate.peer_node(), node_id_, flow_seq(gate.endpoint(), h.msg_seq));
    flow_->stamp(req->flow_id_, obs::FlowStage::kDeliver, engine().now(),
                 node_id_, ctx.core());
  }
  if (h.chunk_len > 0) {
    assert(h.offset + h.chunk_len <= req->capacity_);
    // Placed chunks (data == nullptr) already landed in the window at
    // commit time -- zero host copies on this side. Everything else is
    // scattered from the rx ring into the user buffer(s) here.
    if (data != nullptr) {
      req->scatter_into(h.offset, data, h.chunk_len);
      ++req->host_copies_;
      m_deliver_bytes_copied_.inc(h.chunk_len);
      m_bytes_copied_.inc(h.chunk_len);
      m_copies_.inc();
    }
    // Matched receives: small chunks are copied out of the rx ring; large
    // ones land in place by DMA and only pay completion handling. The
    // charge is taken either way (the DMA-completion model is unchanged).
    const auto& p = nics_[static_cast<std::size_t>(rail)]->params();
    ctx.charge(h.chunk_len <= p.pio_threshold
                   ? copy_cost(p.rx_copy_per_byte, h.chunk_len)
                   : p.rx_match_cost);
  }
  req->filled_ += h.chunk_len;
  assert(req->filled_ <= req->total_len_);
  if (req->filled_ == req->total_len_) {
    gate.bound_recvs_.erase(h.msg_seq);
    complete_request(req);
    PM2_TRACE("nmad", kDebug, "%s: recv complete tag %llu seq %u len %zu",
              name_.c_str(), static_cast<unsigned long long>(h.tag), h.msg_seq,
              req->filled_);
  }
}

// --------------------------------------------------------------------------
// Dedicated progression thread(s) (Fig. 8)
// --------------------------------------------------------------------------

mth::Thread* Core::start_poll_thread() {
  assert(poll_thread_ == nullptr && "poll thread already running");
  poll_thread_stop_ = false;
  for (int e = 0; e < num_eps_; ++e) {
    Endpoint& ep = *eps_[static_cast<std::size_t>(e)];
    mth::ThreadAttrs attrs;
    attrs.name =
        e == 0 ? name_ + "-poll" : name_ + "-poll-ep" + std::to_string(e);
    attrs.bind_core = cfg_.poll_core;
    if (num_eps_ > 1) {
      // Each endpoint's progress fiber lives in its endpoint's engine
      // partition (ThreadAttrs::partition); the single-endpoint core keeps
      // the scheduler's default placement.
      attrs.partition = ep.home_partition_;
    }
    ep.poll_thread_ = sched_.spawn(
        [this, e] {
          auto& ctx = mth::ExecContext::current();
          if (num_eps_ == 1) {
            while (!poll_thread_stop_) {
              progress(ctx);  // every pass consumes time; the loop is paced
            }
          } else {
            // Own this endpoint (blocking), steal from the others (try).
            while (!poll_thread_stop_) {
              stats_.progress_passes.add_always();
              progress_multi(ctx, e, /*use_try=*/true);
            }
          }
        },
        attrs);
  }
  poll_thread_ = eps_[0]->poll_thread_;
  return poll_thread_;
}

void Core::stop_poll_thread() {
  poll_thread_stop_ = true;
  poll_thread_ = nullptr;
  for (auto& ep : eps_) ep->poll_thread_ = nullptr;
}

}  // namespace pm2::nm
