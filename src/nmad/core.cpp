#include "nmad/core.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>
#include <stdexcept>

#include "obs/flow.hpp"
#include "simcore/trace.hpp"
#include "simsan/context.hpp"

namespace pm2::nm {

namespace {
constexpr int kMaxRails = 4;

sim::Time copy_cost(double ns_per_byte, std::size_t bytes) {
  return static_cast<sim::Time>(
      std::llround(ns_per_byte * static_cast<double>(bytes)));
}

/// Core index for flow-event placement; engine context maps to core 0.
int current_core() {
  auto* ctx = mth::ExecContext::current_or_null();
  return ctx != nullptr ? ctx->core() : 0;
}
}  // namespace

Core::Core(mth::Scheduler& sched, Config cfg, std::string name)
    : sched_(sched),
      cfg_(cfg),
      name_(std::move(name)),
      locks_(sched, cfg.lock, kMaxRails),
      strategy_(Strategy::make(cfg.strategy)) {
  auto& reg = obs::MetricsRegistry::global();
  const std::string& node = sched_.machine().name();
  stats_.sends = reg.counter({"nmad", node, -1, "sends"});
  stats_.recvs = reg.counter({"nmad", node, -1, "recvs"});
  stats_.packets_rx = reg.counter({"nmad", node, -1, "packets_rx"});
  stats_.chunks_rx = reg.counter({"nmad", node, -1, "chunks_rx"});
  stats_.unexpected_chunks = reg.counter({"nmad", node, -1, "unexpected_chunks"});
  stats_.rdv_handshakes = reg.counter({"nmad", node, -1, "rdv_handshakes"});
  stats_.progress_passes = reg.counter({"nmad", node, -1, "progress_passes"});
  m_bytes_copied_ = reg.counter({"nmad", node, -1, "data.bytes_copied"});
  m_copies_ = reg.counter({"nmad", node, -1, "data.copies"});
  m_deliver_bytes_copied_ =
      reg.counter({"nmad", node, -1, "data.deliver_bytes_copied"});
  m_adopt_bytes_copied_ =
      reg.counter({"nmad", node, -1, "data.adopt_bytes_copied"});
  m_placed_bytes_ = reg.counter({"nmad", node, -1, "data.placed_bytes"});
  m_copies_per_msg_ = reg.histogram({"nmad", node, -1, "data.copies_per_msg"});
  src_to_gate_.resize(kMaxRails);
  san_deferred_.set_name(name_ + ".deferred");
  submit_tasklet_ = std::make_unique<piom::Tasklet>(
      [this](mth::HookContext& hctx) {
        progress_try(hctx, /*submission_only=*/true);
      },
      name_ + "-submit");
}

Core::~Core() {
  if (pioman_) pioman_->unregister_source(this);
}

Driver& Core::add_rail(net::Nic& nic) {
  if (num_rails() >= kMaxRails) {
    throw std::length_error("Core::add_rail: too many rails");
  }
  const int index = num_rails();
  drivers_.push_back(std::make_unique<Driver>(nic, index));
  Driver* d = drivers_.back().get();
  rail_ptrs_.push_back(d);
  d->san_xfer().set_name(name_ + ".rail" + std::to_string(index) + ".xfer");
  // A freed tx slot is a progression opportunity: let idle cores know.
  nic.set_tx_notifier([this] {
    if (pioman_) pioman_->notify_new_work();
  });
  return *d;
}

Gate* Core::connect(int peer_node, std::vector<int> peer_ports) {
  if (static_cast<int>(peer_ports.size()) != num_rails()) {
    throw std::invalid_argument("Core::connect: one peer port per rail");
  }
  gates_.push_back(std::make_unique<Gate>(peer_node, peer_ports));
  Gate* g = gates_.back().get();
  const std::string gate_name = name_ + ".gate" + std::to_string(peer_node);
  g->san_collect_.set_name(gate_name + ".collect");
  g->san_matching_.set_name(gate_name + ".matching");
  by_peer_[peer_node] = g;
  for (int r = 0; r < num_rails(); ++r) {
    src_to_gate_[static_cast<std::size_t>(r)][peer_ports[static_cast<std::size_t>(r)]] = g;
  }
  return g;
}

Gate* Core::gate_to(int peer_node) const {
  auto it = by_peer_.find(peer_node);
  return it == by_peer_.end() ? nullptr : it->second;
}

void Core::attach_pioman(piom::Server* server) {
  pioman_ = server;
  if (pioman_) pioman_->register_source(this);
}

void Core::attach_tasklets(piom::TaskletEngine* engine) { tasklets_ = engine; }

Gate* Core::gate_of_src(int rail, int src_port) const {
  const auto& map = src_to_gate_.at(static_cast<std::size_t>(rail));
  auto it = map.find(src_port);
  return it == map.end() ? nullptr : it->second;
}

// --------------------------------------------------------------------------
// Requests
// --------------------------------------------------------------------------

Request* Core::alloc_request() {
  Request* req;
  if (!free_reqs_.empty()) {
    req = free_reqs_.back();
    free_reqs_.pop_back();
    req->flag_.reset();
  } else {
    req_pool_.push_back(std::make_unique<Request>(sched_, 0));
    req = req_pool_.back().get();
  }
  req->id_ = next_req_id_++;
  req->kind_ = ReqKind::kSend;
  req->gate_ = nullptr;
  req->tag_ = 0;
  req->matched_tag_ = 0;
  req->msg_seq_ = 0;
  req->seq_bound_ = false;
  req->send_data_ = nullptr;
  req->send_slices_.clear();
  req->inflight_chunks_ = 0;
  req->fully_submitted_ = false;
  req->rdv_granted_ = false;
  req->recv_buf_ = nullptr;
  req->recv_slices_.clear();
  req->capacity_ = 0;
  req->host_copies_ = 0;
  req->total_len_ = 0;
  req->total_known_ = false;
  req->filled_ = 0;
  req->flow_id_ = 0;
  req->released_ = false;
  return req;
}

void Core::set_flow_tracer(obs::FlowTracer* tracer, int node_id) {
  flow_ = tracer;
  node_id_ = node_id;
  for (auto& d : drivers_) {
    if (tracer == nullptr) {
      d->set_post_observer(nullptr);
      continue;
    }
    d->set_post_observer([this](const StagedPacket& pkt) {
      if (flow_ == nullptr) return;
      const sim::Time now = engine().now();
      const int core = current_core();
      for (Request* r : pkt.accounted) {
        if (r->flow_id_ != 0) {
          flow_->stamp(r->flow_id_, obs::FlowStage::kNicPost, now, node_id_,
                       core);
        }
      }
    });
  }
}

void Core::release(Request* req) {
  assert(req != nullptr && !req->released_);
  assert(req->completed() && "release of an incomplete request");
  send_by_cookie_.erase(req->id_);
  req->released_ = true;
  req->owned_send_buf_.clear();
  req->owned_send_buf_.shrink_to_fit();
  free_reqs_.push_back(req);
}

void Core::complete_request(Request* req) {
  assert(!req->completed());
  if (flow_ != nullptr && req->kind_ == ReqKind::kRecv &&
      req->flow_id_ != 0) {
    flow_->stamp(req->flow_id_, obs::FlowStage::kComplete, engine().now(),
                 node_id_, current_core());
  }
  m_copies_per_msg_.observe(req->host_copies_);
  req->flag_.set();
  --active_reqs_;
}

void Core::on_chunks_wire_done(const std::vector<Request*>& reqs) {
  const sim::Time now = flow_ != nullptr ? engine().now() : 0;
  for (Request* req : reqs) {
    assert(req->inflight_chunks_ > 0);
    --req->inflight_chunks_;
    if (flow_ != nullptr && req->flow_id_ != 0) {
      flow_->stamp(req->flow_id_, obs::FlowStage::kWireDone, now, node_id_,
                   current_core());
    }
    if (req->fully_submitted_ && req->inflight_chunks_ == 0 &&
        !req->completed()) {
      complete_request(req);
    }
  }
}

// --------------------------------------------------------------------------
// Public API
// --------------------------------------------------------------------------

Request* Core::isend(Gate* gate, Tag tag, const void* data, std::size_t len) {
  assert(gate != nullptr);
  assert(tag != kAnyTag && "kAnyTag is receive-only");
  auto& ctx = mth::ExecContext::current();
  ctx.charge(cfg_.api_cost);

  Request* req = alloc_request();
  req->send_data_ = static_cast<const std::uint8_t*>(data);
  return launch_send(ctx, req, gate, tag, len);
}

Request* Core::isend_sg(Gate* gate, Tag tag, const ConstIoSlice* slices,
                        std::size_t count) {
  assert(gate != nullptr);
  assert(tag != kAnyTag && "kAnyTag is receive-only");
  auto& ctx = mth::ExecContext::current();
  ctx.charge(cfg_.api_cost);

  Request* req = alloc_request();
  req->send_slices_.assign(slices, slices + count);
  std::size_t len = 0;
  for (std::size_t i = 0; i < count; ++i) len += slices[i].len;
  return launch_send(ctx, req, gate, tag, len);
}

Request* Core::launch_send(mth::ExecContext& ctx, Request* req, Gate* gate,
                           Tag tag, std::size_t len) {
  req->kind_ = ReqKind::kSend;
  req->gate_ = gate;
  req->tag_ = tag;
  req->total_len_ = len;
  req->total_known_ = true;
  ++active_reqs_;
  stats_.sends.add_always();

  const bool rdv = len > cfg_.rdv_threshold;
  if (rdv) send_by_cookie_[req->id_] = req;

  const bool inline_submit =
      cfg_.progress != ProgressMode::kTaskletOffload &&
      cfg_.progress != ProgressMode::kIdleCoreOffload;

  // Collect phase: stage the pack wrapper and -- matching the paper's
  // Sec. 3.1 critical path ("held and released twice: once for submitting
  // the message to the collect layer, once to transmit it through the
  // network") -- arrange packets within the same collect section.
  std::vector<Strategy::Arranged> staged;
  locks_.lock(Domain::kCollect);
  ctx.touch(gate->out_line_);
  SIMSAN_ACCESS(gate->san_collect_);
  req->msg_seq_ = gate->next_send_seq_++;
  req->seq_bound_ = true;
  if (flow_ != nullptr) {
    req->flow_id_ =
        obs::FlowTracer::flow_id(node_id_, gate->peer_node(), req->msg_seq_);
    flow_->stamp(req->flow_id_, obs::FlowStage::kPost, engine().now(),
                 node_id_, ctx.core());
  }
  PackWrapper pw;
  pw.req = req;
  pw.tag = tag;
  pw.msg_seq = req->msg_seq_;
  pw.data = req->send_data_;
  if (!req->send_slices_.empty()) {
    pw.slices = req->send_slices_.data();
    pw.n_slices = req->send_slices_.size();
  }
  pw.len = len;
  pw.cookie = req->id_;
  if (rdv) {
    pw.kind = PackWrapper::Kind::kRts;
    gate->ctrl_list_.push_back(pw);
  } else {
    pw.kind = PackWrapper::Kind::kEager;
    gate->out_list_.push_back(pw);
  }
  if (inline_submit) {
    strategy_->arrange(cfg_, *gate, rail_ptrs_, ctx, staged);
  }
  locks_.unlock(Domain::kCollect);

  PM2_TRACE("nmad", kDebug, "%s: isend tag %llu len %zu seq %u (%s)",
            name_.c_str(), static_cast<unsigned long long>(tag), len,
            req->msg_seq_, rdv ? "rdv" : "eager");

  // Transmit phase.
  if (inline_submit) {
    commit_staged(staged, /*use_try=*/false);
  } else {
    kick_submission(ctx);
  }
  return req;
}

Request* Core::isend_owned(Gate* gate, Tag tag,
                           std::vector<std::uint8_t> data) {
  // Stash the bytes first; isend() records the pointer into the request we
  // are about to receive, so stage via a temporary slot on the free-list
  // head... simplest correct order: allocate through isend with a stable
  // heap location owned by the request afterwards.
  const std::size_t len = data.size();
  Request* req = isend(gate, tag, data.data(), len);
  req->owned_send_buf_ = std::move(data);
  // isend() captured the pointer before the move; vector moves preserve
  // the heap block, so send_data_ still points at the live bytes.
  assert(len == 0 || req->send_data_ == req->owned_send_buf_.data());
  return req;
}

void Core::kick_submission(mth::ExecContext& ctx) {
  switch (cfg_.progress) {
    case ProgressMode::kTaskletOffload:
      assert(tasklets_ != nullptr && "kTaskletOffload without tasklet engine");
      tasklets_->schedule(submit_tasklet_.get(),
                          cfg_.poll_core >= 0 ? cfg_.poll_core : 0);
      break;
    case ProgressMode::kIdleCoreOffload:
      assert(pioman_ != nullptr && "kIdleCoreOffload without PIOMan");
      pioman_->notify_new_work();
      break;
    default:
      // Inline submission ("transmit through the network", Sec. 3.1).
      submit_step(ctx, /*use_try=*/false);
      break;
  }
}

Request* Core::irecv(Gate* gate, Tag tag, void* buf, std::size_t capacity) {
  assert(gate != nullptr);
  auto& ctx = mth::ExecContext::current();
  ctx.charge(cfg_.api_cost);

  Request* req = alloc_request();
  req->recv_buf_ = static_cast<std::uint8_t*>(buf);
  req->capacity_ = capacity;
  return launch_recv(ctx, req, gate, tag);
}

Request* Core::irecv_sg(Gate* gate, Tag tag, const IoSlice* slices,
                        std::size_t count) {
  assert(gate != nullptr);
  auto& ctx = mth::ExecContext::current();
  ctx.charge(cfg_.api_cost);

  Request* req = alloc_request();
  req->recv_slices_.assign(slices, slices + count);
  req->recv_buf_ = nullptr;
  std::size_t capacity = 0;
  for (std::size_t i = 0; i < count; ++i) capacity += slices[i].len;
  req->capacity_ = capacity;
  return launch_recv(ctx, req, gate, tag);
}

Request* Core::launch_recv(mth::ExecContext& ctx, Request* req, Gate* gate,
                           Tag tag) {
  const std::size_t capacity = req->capacity_;
  req->kind_ = ReqKind::kRecv;
  req->gate_ = gate;
  req->tag_ = tag;
  ++active_reqs_;
  stats_.recvs.add_always();

  bool adopted_rdv = false;
  locks_.lock(Domain::kMatching);
  SIMSAN_ACCESS(gate->san_matching_);
  // Adopt the earliest (lowest msg_seq) unexpected message with this tag.
  auto best = gate->unexpected_.end();
  for (auto it = gate->unexpected_.begin(); it != gate->unexpected_.end();
       ++it) {
    if (tag != kAnyTag && it->tag != tag) continue;
    if (best == gate->unexpected_.end() || it->msg_seq < best->msg_seq) {
      best = it;
    }
  }
  if (best != gate->unexpected_.end()) {
    UnexpectedMsg um = std::move(*best);
    gate->unexpected_.erase(best);
    req->matched_tag_ = um.tag;
    req->msg_seq_ = um.msg_seq;
    req->seq_bound_ = true;
    req->total_len_ = um.total_len;
    req->total_known_ = true;
    if (um.total_len > capacity) {
      throw std::length_error("nm::Core::irecv: message exceeds buffer (" +
                              std::to_string(um.total_len) + " > " +
                              std::to_string(capacity) + ")");
    }
    if (um.is_rdv) {
      // Late receiver: grant the rendezvous now.
      gate->bound_recvs_[req->msg_seq_] = req;
      PackWrapper cts;
      cts.kind = PackWrapper::Kind::kCts;
      cts.tag = tag;
      cts.msg_seq = um.msg_seq;
      cts.cookie = um.rts_cookie;
      cts.rdv_window = req;  // the window the grant advertises
      SIMSAN_ACCESS(san_deferred_);
      deferred_pws_.emplace_back(gate, cts);
      adopted_rdv = true;
      stats_.rdv_handshakes.add_always();
    } else {
      // Scatter the retained unexpected pieces into the user buffer: the
      // single host copy of the unexpected eager path.
      if (um.filled > 0) {
        for (const auto& piece : um.pieces) {
          req->scatter_into(piece.offset, piece.data, piece.len);
        }
        ++req->host_copies_;
        m_adopt_bytes_copied_.inc(um.filled);
        m_bytes_copied_.inc(um.filled);
        m_copies_.inc();
        ctx.charge(copy_cost(rail(0).nic().params().rx_copy_per_byte, um.filled));
      }
      if (flow_ != nullptr) {
        // The bytes reach the user buffer here, not at chunk arrival: the
        // unexpected dwell is part of the unpack segment by design.
        req->flow_id_ = obs::FlowTracer::flow_id(gate->peer_node(), node_id_,
                                                 req->msg_seq_);
        flow_->stamp(req->flow_id_, obs::FlowStage::kDeliver, engine().now(),
                     node_id_, ctx.core());
      }
      req->filled_ = um.filled;
      if (req->filled_ == req->total_len_) {
        complete_request(req);
      } else {
        gate->bound_recvs_[req->msg_seq_] = req;  // rest still in flight
      }
    }
  } else {
    gate->posted_recvs_.push_back(req);
  }
  locks_.unlock(Domain::kMatching);

  if (adopted_rdv) {
    flush_deferred(/*use_try=*/false);
    kick_submission(ctx);
  }
  return req;
}

bool Core::test(Request* req) {
  auto& ctx = mth::ExecContext::current();
  ctx.charge(cfg_.api_cost);
  (void)ctx;
  return req->flag_.test();
}

void Core::wait(Request* req) {
  auto& ctx = mth::ExecContext::current();
  ctx.charge(cfg_.api_cost);

  if (cfg_.progress == ProgressMode::kPollThread) {
    // Progression belongs to the dedicated thread; we only watch the flag
    // (this is the Fig. 8 configuration).
    req->flag_.wait(cfg_.wait == WaitMode::kBusy
                        ? sync::WaitPolicy::kBusy
                        : cfg_.wait == WaitMode::kPassive
                              ? sync::WaitPolicy::kPassive
                              : sync::WaitPolicy::kFixedSpin,
                    cfg_.fixed_spin_budget);
    return;
  }

  auto progress_once = [&] {
    if (pioman_ != nullptr && cfg_.progress == ProgressMode::kPiomanHooks) {
      // Polling goes through PIOMan (Fig. 6 configuration).
      pioman_->poll_once(ctx);
    } else {
      progress(ctx);
    }
  };

  switch (cfg_.wait) {
    case WaitMode::kBusy:
      // Coarse-grain semantics (Sec. 3.1): the mutex is held for the whole
      // visit to the library -- the busy-waiting thread keeps it for the
      // entire polling loop, which is exactly what serializes concurrent
      // communication in Fig. 5. (Re-entrant: inner passes elide locks.)
      // The loop is preemptible at timeslice boundaries (with the lock
      // RELEASED around the preemption) so an oversubscribed core cannot
      // be starved by its own spinner.
      locks_.lock_library();
      while (!req->flag_.test()) {
        progress_once();
        if (sched_.runqueue_length(sched_.current_thread()->core()) > 0) {
          const int depth = locks_.release_library_all();
          sched_.maybe_preempt();
          locks_.reacquire_library(depth);
        }
      }
      locks_.unlock_library();
      return;
    case WaitMode::kPassive: {
      // "The mutex is released before entering a blocking section":
      // progression must come from elsewhere (PIOMan hooks, other threads).
      const int depth = locks_.release_library_all();
      req->flag_.wait_passive();
      locks_.reacquire_library(depth);
      return;
    }
    case WaitMode::kFixedSpin: {
      const sim::Time deadline = engine().now() + cfg_.fixed_spin_budget;
      locks_.lock_library();
      while (engine().now() < deadline) {
        if (req->flag_.test()) {
          locks_.unlock_library();
          return;
        }
        progress_once();
        if (sched_.runqueue_length(sched_.current_thread()->core()) > 0) {
          const int depth = locks_.release_library_all();
          sched_.maybe_preempt();
          locks_.reacquire_library(depth);
        }
      }
      locks_.unlock_library();
      // Release any enclosing library visit too before blocking.
      const int depth = locks_.release_library_all();
      req->flag_.wait_passive();
      locks_.reacquire_library(depth);
      return;
    }
  }
}

// Note: the blocking conveniences are deliberately NOT one lock-held
// library visit. Holding the coarse mutex from irecv through completion
// deadlocks two communicating thread pairs (each node's holder waits for a
// message whose sender is parked on the peer node's holder) -- the very
// trap the paper's "the mutex is also released before entering a blocking
// section" warns about. The wait itself still holds the lock across its
// polling loop (see wait()).

std::size_t Core::wait_any(const std::vector<Request*>& reqs) {
  auto& ctx = mth::ExecContext::current();
  ctx.charge(cfg_.api_cost);
  assert(std::any_of(reqs.begin(), reqs.end(),
                     [](Request* r) { return r != nullptr; }) &&
         "wait_any with no live requests");
  locks_.lock_library();
  for (;;) {
    for (std::size_t i = 0; i < reqs.size(); ++i) {
      // Cheap host peek first; one priced read on the hit.
      if (reqs[i] != nullptr && reqs[i]->flag_.is_set()) {
        reqs[i]->flag_.test();
        locks_.unlock_library();
        return i;
      }
    }
    ctx.charge(sched_.costs().spin_retry);
    if (pioman_ != nullptr && cfg_.progress == ProgressMode::kPiomanHooks) {
      pioman_->poll_once(ctx);
    } else {
      progress(ctx);
    }
    if (sched_.runqueue_length(sched_.current_thread()->core()) > 0) {
      const int depth = locks_.release_library_all();
      sched_.maybe_preempt();
      locks_.reacquire_library(depth);
    }
  }
}

void Core::send(Gate* gate, Tag tag, const void* data, std::size_t len) {
  Request* req = isend(gate, tag, data, len);
  wait(req);
  release(req);
}

std::size_t Core::recv(Gate* gate, Tag tag, void* buf, std::size_t capacity) {
  Request* req = irecv(gate, tag, buf, capacity);
  wait(req);
  const std::size_t n = req->received_length();
  release(req);
  return n;
}

// --------------------------------------------------------------------------
// Progression
// --------------------------------------------------------------------------

bool Core::progress(mth::ExecContext& ctx) {
  stats_.progress_passes.add_always();
  locks_.lock_library();
  bool any = flush_deferred(false);
  any |= submit_step(ctx, false);
  any |= pump_step(ctx, false);
  if (resubmit_hint_) {
    resubmit_hint_ = false;
    any |= flush_deferred(false);
    any |= submit_step(ctx, false);
  }
  locks_.unlock_library();
  return any;
}

bool Core::progress_try(mth::ExecContext& ctx, bool submission_only) {
  stats_.progress_passes.add_always();
  if (!locks_.try_lock_library()) return false;
  bool any = flush_deferred(true);
  any |= submit_step(ctx, true);
  if (!submission_only) {
    any |= pump_step(ctx, true);
    if (resubmit_hint_) {
      resubmit_hint_ = false;
      any |= flush_deferred(true);
      any |= submit_step(ctx, true);
    }
  }
  locks_.unlock_library();
  return any;
}

bool Core::poll(mth::ExecContext& ctx) {
  if (cfg_.progress == ProgressMode::kIdleCoreOffload) {
    // Idle cores only take over *submission* work (Sec. 4.2, "while a core
    // is idle, Marcel invokes PIOMan that can detect that a message needs
    // to be submitted to a network").
    if (!has_submission_work()) return false;
    ctx.charge(sched_.costs().idle_offload_detect);
    return progress_try(ctx, /*submission_only=*/true);
  }
  return progress_try(ctx);
}

bool Core::pending() const {
  if (cfg_.progress == ProgressMode::kIdleCoreOffload) {
    return has_submission_work();
  }
  return active_reqs_ > 0 || has_submission_work();
}

bool Core::has_submission_work() const {
  if (!deferred_pws_.empty()) return true;
  for (const auto& g : gates_) {
    if (g->has_outgoing()) return true;
  }
  for (const auto& d : drivers_) {
    if (d->has_pending()) return true;
  }
  return false;
}

bool Core::flush_deferred(bool use_try) {
  // Unpriced peek: the deque is only ever non-empty after a matching-locked
  // section queued protocol work.
  if (deferred_pws_.empty()) return false;
  std::deque<std::pair<Gate*, PackWrapper>> local;
  if (use_try) {
    if (!locks_.try_lock(Domain::kMatching)) return false;
  } else {
    locks_.lock(Domain::kMatching);
  }
  SIMSAN_ACCESS(san_deferred_);
  local.swap(deferred_pws_);
  locks_.unlock(Domain::kMatching);
  if (local.empty()) return false;

  if (use_try) {
    if (!locks_.try_lock(Domain::kCollect)) {
      // Put them back; next pass retries.
      if (locks_.try_lock(Domain::kMatching)) {
        SIMSAN_ACCESS(san_deferred_);
        for (auto& e : local) deferred_pws_.push_back(std::move(e));
        locks_.unlock(Domain::kMatching);
        return false;
      }
      // Extremely contended: re-queue without the lock. Host execution is
      // single-threaded, so this is safe; the locks model cost, not safety.
      for (auto& e : local) deferred_pws_.push_back(std::move(e));
      return false;
    }
  } else {
    locks_.lock(Domain::kCollect);
  }
  for (auto& [gate, pw] : local) {
    SIMSAN_ACCESS(gate->san_collect_);
    if (pw.kind == PackWrapper::Kind::kCts) {
      gate->ctrl_list_.push_back(pw);
    } else {
      gate->out_list_.push_back(pw);
    }
  }
  locks_.unlock(Domain::kCollect);
  return true;
}

bool Core::submit_step(mth::ExecContext& ctx, bool use_try) {
  bool work = false;
  for (const auto& g : gates_) {
    if (g->has_outgoing()) {
      work = true;
      break;
    }
  }
  for (const auto& d : drivers_) {
    if (d->has_pending()) work = true;
  }
  if (!work) return false;

  std::vector<Strategy::Arranged> staged;
  bool locked_collect;
  if (use_try) {
    locked_collect = locks_.try_lock(Domain::kCollect);
  } else {
    locks_.lock(Domain::kCollect);
    locked_collect = true;
  }
  if (locked_collect) {
    for (const auto& g : gates_) {
      if (!g->has_outgoing()) continue;
      ctx.touch(g->out_line_);
      strategy_->arrange(cfg_, *g, rail_ptrs_, ctx, staged);
    }
    locks_.unlock(Domain::kCollect);
  }

  return commit_staged(staged, use_try) || !staged.empty();
}

bool Core::commit_staged(std::vector<Strategy::Arranged>& staged,
                         bool use_try) {
  bool posted = false;
  // Execute rendezvous placements now, before any wire event can fire: the
  // modeled RDMA lands the bytes in the receiver's window so neither side
  // ever observes missing data. Host copy accounting for gathered chunks
  // also lands here (the strategy counted, we publish).
  for (auto& a : staged) {
    if (!a.pkt.placements.empty()) {
      std::uint64_t placed = 0;
      for (const RdvPlacement& pl : a.pkt.placements) {
        pl.dst->scatter_into(pl.msg_off, pl.src, pl.len);
        placed += pl.len;
      }
      m_placed_bytes_.inc(placed);
      a.pkt.placements.clear();
    }
    if (a.pkt.gathered_bytes > 0) {
      m_bytes_copied_.inc(a.pkt.gathered_bytes);
      m_copies_.inc(a.pkt.gathered_chunks);
    }
  }
  if (flow_ != nullptr && !staged.empty()) {
    const sim::Time now = engine().now();
    const int core = current_core();
    for (const auto& a : staged) {
      for (Request* r : a.pkt.accounted) {
        if (r->flow_id_ != 0) {
          flow_->stamp(r->flow_id_, obs::FlowStage::kArrange, now, node_id_,
                       core);
        }
      }
    }
  }
  auto completer = [this](std::vector<Request*> reqs) {
    on_chunks_wire_done(reqs);
  };
  for (int r = 0; r < num_rails(); ++r) {
    Driver& drv = *drivers_[static_cast<std::size_t>(r)];
    const bool has_commits =
        std::any_of(staged.begin(), staged.end(),
                    [r](const auto& a) { return a.rail == r; });
    if (!has_commits && !drv.has_pending()) continue;
    const Domain d = locks_.driver_domain(r);
    if (use_try) {
      if (!locks_.try_lock(d)) {
        // Staged packets for this rail must not be lost: nobody else can
        // be arranging (we popped the wrappers), so append without the
        // lock -- cost model only, host-safe -- and let a later pass drain.
        for (auto& a : staged) {
          if (a.rail == r) drv.commit(std::move(a.pkt));
        }
        continue;
      }
    } else {
      locks_.lock(d);
    }
    SIMSAN_ACCESS(drv.san_xfer());
    for (auto& a : staged) {
      if (a.rail == r) drv.commit(std::move(a.pkt));
    }
    posted |= drv.drain(completer) > 0;
    locks_.unlock(d);
  }
  return posted;
}

bool Core::pump_step(mth::ExecContext& ctx, bool use_try) {
  bool any = false;
  auto completer = [this](std::vector<Request*> reqs) {
    on_chunks_wire_done(reqs);
  };
  if (!use_try) {
    // Blocking path: never hold two domains at once.
    std::vector<std::pair<int, net::Packet>> received;
    for (int r = 0; r < num_rails(); ++r) {
      Driver& d = *drivers_[static_cast<std::size_t>(r)];
      if (!d.has_pending() && !d.nic().rx_pending()) {
        // Doorbell peek: an empty completion queue is detected with a
        // plain (priced) read, no lock needed -- idle polling passes cost
        // the same under every locking mode.
        d.nic().poll();
        continue;
      }
      locks_.lock(locks_.driver_domain(r));
      SIMSAN_ACCESS(d.san_xfer());
      d.drain(completer);
      for (int k = 0; k < 4; ++k) {
        auto pkt = d.nic().poll();
        if (!pkt) break;
        received.emplace_back(r, std::move(*pkt));
      }
      locks_.unlock(locks_.driver_domain(r));
    }
    if (!received.empty()) {
      any = true;
      locks_.lock(Domain::kMatching);
      for (auto& [r, pkt] : received) process_packet_locked(ctx, r, pkt);
      locks_.unlock(Domain::kMatching);
    }
    return any;
  }

  // Hook path: nested try-locks (deadlock-free) so no packet is popped
  // unless it can be processed.
  for (int r = 0; r < num_rails(); ++r) {
    Driver& d = *drivers_[static_cast<std::size_t>(r)];
    if (!d.has_pending() && !d.nic().rx_pending()) {
      d.nic().poll();  // doorbell peek (see blocking path)
      continue;
    }
    if (!locks_.try_lock(locks_.driver_domain(r))) continue;
    SIMSAN_ACCESS(d.san_xfer());
    d.drain(completer);
    int budget = 4;
    while (budget-- > 0 && d.nic().rx_pending()) {
      if (!locks_.try_lock(Domain::kMatching)) break;
      auto pkt = d.nic().poll();
      if (pkt) {
        process_packet_locked(ctx, r, *pkt);
        any = true;
      }
      locks_.unlock(Domain::kMatching);
    }
    locks_.unlock(locks_.driver_domain(r));
  }
  return any;
}

// --------------------------------------------------------------------------
// Receive path (caller holds the matching domain)
// --------------------------------------------------------------------------

void Core::process_packet_locked(mth::ExecContext& ctx, int rail,
                                 const net::Packet& pkt) {
  stats_.packets_rx.add_always();
  Gate* gate = gate_of_src(rail, pkt.src_port);
  if (gate == nullptr) {
    PM2_TRACE("nmad", kWarn, "%s: packet from unknown port %d dropped",
              name_.c_str(), pkt.src_port);
    return;
  }
  SIMSAN_ACCESS(gate->san_matching_);
  PacketReader reader(pkt.payload);
  const net::SlabRef* backing = pkt.payload.data_slab();
  const std::uint8_t* data = nullptr;
  void* note = nullptr;
  while (auto h = reader.next(&data, &note)) {
    stats_.chunks_rx.add_always();
    handle_chunk_locked(ctx, rail, *gate, *h, data, note, backing);
  }
  if (!reader.ok()) {
    PM2_TRACE("nmad", kError, "%s: malformed packet from port %d",
              name_.c_str(), pkt.src_port);
  }
}

void Core::handle_chunk_locked(mth::ExecContext& ctx, int rail, Gate& gate,
                               const ChunkHeader& h, const std::uint8_t* data,
                               void* note, const net::SlabRef* backing) {
  switch (h.kind) {
    case ChunkKind::kCts: {
      // Sender side: rendezvous granted; queue the bulk data. The CTS note
      // carries the receiving request -- the advertised memory window --
      // so the data chunks can be *placed* with zero host copies.
      auto it = send_by_cookie_.find(h.cookie);
      assert(it != send_by_cookie_.end() && "CTS for unknown request");
      Request* req = it->second;
      assert(!req->rdv_granted_);
      req->rdv_granted_ = true;
      stats_.rdv_handshakes.add_always();
      PackWrapper pw;
      pw.kind = PackWrapper::Kind::kRdvData;
      pw.req = req;
      pw.tag = req->tag_;
      pw.msg_seq = req->msg_seq_;
      pw.data = req->send_data_;
      if (!req->send_slices_.empty()) {
        pw.slices = req->send_slices_.data();
        pw.n_slices = req->send_slices_.size();
      }
      pw.len = req->total_len_;
      pw.cookie = req->id_;
      pw.rdv_window = static_cast<Request*>(note);
      SIMSAN_ACCESS(san_deferred_);
      deferred_pws_.emplace_back(req->gate_, pw);
      resubmit_hint_ = true;
      return;
    }
    case ChunkKind::kRts: {
      // Receiver side: a rendezvous announcement matches like a message.
      Request* req = nullptr;
      for (auto it = gate.posted_recvs_.begin();
           it != gate.posted_recvs_.end(); ++it) {
        if ((*it)->tag_ == h.tag || (*it)->tag_ == kAnyTag) {
          req = *it;
          gate.posted_recvs_.erase(it);
          break;
        }
      }
      if (req != nullptr) {
        req->matched_tag_ = h.tag;
        req->msg_seq_ = h.msg_seq;
        req->seq_bound_ = true;
        req->total_len_ = h.total_len;
        req->total_known_ = true;
        if (h.total_len > req->capacity_) {
          throw std::length_error("nm: rendezvous message exceeds buffer");
        }
        gate.bound_recvs_[h.msg_seq] = req;
        PackWrapper cts;
        cts.kind = PackWrapper::Kind::kCts;
        cts.tag = h.tag;
        cts.msg_seq = h.msg_seq;
        cts.cookie = h.cookie;
        cts.rdv_window = req;  // the window the grant advertises
        SIMSAN_ACCESS(san_deferred_);
        deferred_pws_.emplace_back(&gate, cts);
        resubmit_hint_ = true;
        stats_.rdv_handshakes.add_always();
      } else {
        UnexpectedMsg um;
        um.tag = h.tag;
        um.msg_seq = h.msg_seq;
        um.total_len = h.total_len;
        um.is_rdv = true;
        um.rts_cookie = h.cookie;
        gate.unexpected_.push_back(std::move(um));
        stats_.unexpected_chunks.add_always();
      }
      return;
    }
    case ChunkKind::kEager:
    case ChunkKind::kRdvData: {
      Request* req = nullptr;
      auto bound = gate.bound_recvs_.find(h.msg_seq);
      if (bound != gate.bound_recvs_.end()) {
        req = bound->second;
      } else {
        for (auto it = gate.posted_recvs_.begin();
             it != gate.posted_recvs_.end(); ++it) {
          if ((*it)->tag_ == h.tag || (*it)->tag_ == kAnyTag) {
            req = *it;
            gate.posted_recvs_.erase(it);
            req->matched_tag_ = h.tag;
            req->msg_seq_ = h.msg_seq;
            req->seq_bound_ = true;
            req->total_len_ = h.total_len;
            req->total_known_ = true;
            if (h.total_len > req->capacity_) {
              throw std::length_error("nm: message exceeds receive buffer");
            }
            gate.bound_recvs_[h.msg_seq] = req;
            break;
          }
        }
      }
      if (req != nullptr) {
        deliver_chunk_locked(ctx, rail, gate, req, h, data);
        return;
      }
      // Unexpected: retain the chunk bytes without copying when the packet
      // payload lives in a pooled slab (segmented delivery) -- the piece
      // shares the slab via refcount. Flat payloads (raw injection) die
      // with the packet, so those bytes go into a fresh pooled slab.
      UnexpectedMsg* um = nullptr;
      for (auto& u : gate.unexpected_) {
        if (u.msg_seq == h.msg_seq) {
          um = &u;
          break;
        }
      }
      if (um == nullptr) {
        gate.unexpected_.emplace_back();
        um = &gate.unexpected_.back();
        um->tag = h.tag;
        um->msg_seq = h.msg_seq;
        um->total_len = h.total_len;
      }
      if (h.chunk_len > 0) {
        assert(data != nullptr && "placed chunk arrived unexpected");
        assert(h.offset + h.chunk_len <= um->total_len);
        UnexpectedPiece piece;
        piece.offset = h.offset;
        piece.len = h.chunk_len;
        if (backing != nullptr) {
          piece.backing = *backing;  // handoff, no host copy
          piece.data = data;
        } else {
          piece.backing = net::BufferPool::global().acquire(h.chunk_len);
          std::memcpy(piece.backing.data(), data, h.chunk_len);
          piece.data = piece.backing.data();
          m_bytes_copied_.inc(h.chunk_len);
          m_copies_.inc();
        }
        um->pieces.push_back(std::move(piece));
        ctx.charge(copy_cost(
            rail_ptrs_[static_cast<std::size_t>(rail)]->nic().params().rx_copy_per_byte,
            h.chunk_len));
      }
      um->filled += h.chunk_len;
      stats_.unexpected_chunks.add_always();
      return;
    }
  }
}

void Core::deliver_chunk_locked(mth::ExecContext& ctx, int rail, Gate& gate,
                                Request* req, const ChunkHeader& h,
                                const std::uint8_t* data) {
  assert(req->seq_bound_ && req->msg_seq_ == h.msg_seq);
  if (flow_ != nullptr) {
    req->flow_id_ =
        obs::FlowTracer::flow_id(gate.peer_node(), node_id_, h.msg_seq);
    flow_->stamp(req->flow_id_, obs::FlowStage::kDeliver, engine().now(),
                 node_id_, ctx.core());
  }
  if (h.chunk_len > 0) {
    assert(h.offset + h.chunk_len <= req->capacity_);
    // Placed chunks (data == nullptr) already landed in the window at
    // commit time -- zero host copies on this side. Everything else is
    // scattered from the rx ring into the user buffer(s) here.
    if (data != nullptr) {
      req->scatter_into(h.offset, data, h.chunk_len);
      ++req->host_copies_;
      m_deliver_bytes_copied_.inc(h.chunk_len);
      m_bytes_copied_.inc(h.chunk_len);
      m_copies_.inc();
    }
    // Matched receives: small chunks are copied out of the rx ring; large
    // ones land in place by DMA and only pay completion handling. The
    // charge is taken either way (the DMA-completion model is unchanged).
    const auto& p = rail_ptrs_[static_cast<std::size_t>(rail)]->nic().params();
    ctx.charge(h.chunk_len <= p.pio_threshold
                   ? copy_cost(p.rx_copy_per_byte, h.chunk_len)
                   : p.rx_match_cost);
  }
  req->filled_ += h.chunk_len;
  assert(req->filled_ <= req->total_len_);
  if (req->filled_ == req->total_len_) {
    gate.bound_recvs_.erase(h.msg_seq);
    complete_request(req);
    PM2_TRACE("nmad", kDebug, "%s: recv complete tag %llu seq %u len %zu",
              name_.c_str(), static_cast<unsigned long long>(h.tag), h.msg_seq,
              req->filled_);
  }
}

// --------------------------------------------------------------------------
// Dedicated progression thread (Fig. 8)
// --------------------------------------------------------------------------

mth::Thread* Core::start_poll_thread() {
  assert(poll_thread_ == nullptr && "poll thread already running");
  poll_thread_stop_ = false;
  mth::ThreadAttrs attrs;
  attrs.name = name_ + "-poll";
  attrs.bind_core = cfg_.poll_core;
  poll_thread_ = sched_.spawn(
      [this] {
        auto& ctx = mth::ExecContext::current();
        while (!poll_thread_stop_) {
          progress(ctx);  // every pass consumes time; the loop is paced
        }
      },
      attrs);
  return poll_thread_;
}

void Core::stop_poll_thread() {
  poll_thread_stop_ = true;
  poll_thread_ = nullptr;
}

}  // namespace pm2::nm
