#include "nmad/pack.hpp"

#include <cassert>
#include <cmath>

namespace pm2::nm {

namespace {
/// Host gather/scatter copy speed (memcpy-class), ns per byte.
constexpr double kCopyNsPerByte = 0.15;

void charge_copy(std::size_t bytes) {
  if (auto* ctx = mth::ExecContext::current_or_null()) {
    ctx->charge(static_cast<sim::Time>(
        std::llround(kCopyNsPerByte * static_cast<double>(bytes))));
  }
}
}  // namespace

PackBuilder& PackBuilder::pack(const void* data, std::size_t len) {
  assert((data != nullptr || len == 0) && "null segment with bytes");
  slices_.emplace_back(data, len);
  total_ += len;
  // The gather is deferred to arrangement (one copy, straight into the
  // wire buffer) but its cost belongs to nm_pack, so it is priced here.
  charge_copy(len);
  return *this;
}

Request* PackBuilder::isend(Gate* gate, Tag tag) {
  Request* req = core_.isend_sg(gate, tag, slices_.data(), slices_.size());
  slices_.clear();
  total_ = 0;
  return req;
}

void PackBuilder::send(Gate* gate, Tag tag) {
  Request* req = isend(gate, tag);
  core_.wait(req);
  core_.release(req);
}

UnpackDest& UnpackDest::unpack(void* data, std::size_t len) {
  assert((data != nullptr || len == 0) && "null segment with bytes");
  slices_.push_back(IoSlice{data, len});
  return *this;
}

std::size_t UnpackDest::capacity() const {
  std::size_t total = 0;
  for (const auto& s : slices_) total += s.len;
  return total;
}

Request* UnpackDest::irecv(Gate* gate, Tag tag) {
  return core_.irecv_sg(gate, tag, slices_.data(), slices_.size());
}

std::size_t UnpackDest::wait_and_scatter(Request* req) {
  core_.wait(req);
  const std::size_t n = req->received_length();
  core_.release(req);
  // The bytes already landed across the segments on the delivery path;
  // nm_unpack's scatter cost is still priced here, unchanged.
  charge_copy(n);
  return n;
}

std::size_t UnpackDest::recv(Gate* gate, Tag tag) {
  return wait_and_scatter(irecv(gate, tag));
}

Request* isend_v(Core& core, Gate* gate, Tag tag,
                 const std::vector<ConstIoSlice>& slices) {
  for (const auto& s : slices) charge_copy(s.len);  // nm_pack gather price
  return core.isend_sg(gate, tag, slices.data(), slices.size());
}

}  // namespace pm2::nm
