#include "nmad/pack.hpp"

#include <cassert>
#include <cmath>
#include <cstring>
#include <stdexcept>

namespace pm2::nm {

namespace {
/// Host gather/scatter copy speed (memcpy-class), ns per byte.
constexpr double kCopyNsPerByte = 0.15;

void charge_copy(std::size_t bytes) {
  if (auto* ctx = mth::ExecContext::current_or_null()) {
    ctx->charge(static_cast<sim::Time>(
        std::llround(kCopyNsPerByte * static_cast<double>(bytes))));
  }
}
}  // namespace

PackBuilder& PackBuilder::pack(const void* data, std::size_t len) {
  assert((data != nullptr || len == 0) && "null segment with bytes");
  const auto* p = static_cast<const std::uint8_t*>(data);
  buffer_.insert(buffer_.end(), p, p + len);
  charge_copy(len);
  return *this;
}

Request* PackBuilder::isend(Gate* gate, Tag tag) {
  // The request takes ownership of the gathered bytes (they stay alive
  // until release(), as rendezvous sends need); the builder resets.
  Request* req = core_.isend_owned(gate, tag, std::move(buffer_));
  buffer_.clear();
  return req;
}

void PackBuilder::send(Gate* gate, Tag tag) {
  Request* req = isend(gate, tag);
  core_.wait(req);
  core_.release(req);
}

UnpackDest& UnpackDest::unpack(void* data, std::size_t len) {
  assert((data != nullptr || len == 0) && "null segment with bytes");
  slices_.push_back(IoSlice{data, len});
  return *this;
}

std::size_t UnpackDest::capacity() const {
  std::size_t total = 0;
  for (const auto& s : slices_) total += s.len;
  return total;
}

Request* UnpackDest::irecv(Gate* gate, Tag tag) {
  staging_.resize(capacity());
  return core_.irecv(gate, tag, staging_.data(), staging_.size());
}

std::size_t UnpackDest::wait_and_scatter(Request* req) {
  core_.wait(req);
  const std::size_t n = req->received_length();
  core_.release(req);
  std::size_t off = 0;
  for (const auto& s : slices_) {
    if (off >= n) break;
    const std::size_t take = std::min(s.len, n - off);
    std::memcpy(s.base, staging_.data() + off, take);
    off += take;
  }
  charge_copy(n);
  return n;
}

std::size_t UnpackDest::recv(Gate* gate, Tag tag) {
  return wait_and_scatter(irecv(gate, tag));
}

Request* isend_v(Core& core, Gate* gate, Tag tag,
                 const std::vector<ConstIoSlice>& slices) {
  PackBuilder pk(core);
  for (const auto& s : slices) pk.pack(s);
  return pk.isend(gate, tag);
}

}  // namespace pm2::nm
