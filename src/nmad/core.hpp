// pm2sim -- NewMadeleine core: the per-node communication library instance.
//
// Ties the three layers together (paper Fig. 1):
//   collect layer      -- isend/irecv stage work into per-gate lists;
//   optimization layer -- a Strategy arranges packets when NICs have room;
//   transfer layer     -- Drivers feed packets to NICs and poll them.
//
// Orthogonally configurable (nm::Config):
//   locking     none / coarse / fine                      (Sec. 3.1-3.2)
//   waiting     busy / passive / fixed-spin               (Sec. 3.3)
//   progression app-driven / PIOMan hooks / dedicated poll thread /
//               tasklet-offloaded submission / idle-core submission (Sec. 4)
//   endpoints   1 (the paper's shared instance) .. N scalable endpoints:
//               the whole collect/matching/transfer state is instantiated
//               per endpoint (see endpoint.hpp), sends and exact receives
//               route to endpoint tag % N, and progression steals work
//               across endpoints with try-locks.
//
// Locking discipline: a thread never holds two lock domains at once on the
// blocking paths (collect -> unlock -> driver -> unlock -> matching), which
// keeps the coarse mapping (every domain = one global lock) deadlock-free.
// Hook contexts use try-locks exclusively and may nest them (try-locks
// cannot deadlock); work that cannot be done under a failed try-lock is
// left queued for the next pass. With N > 1 endpoints, blocking locks are
// only ever taken on the endpoint a request owns; every foreign-endpoint
// access (work stealing, rx demultiplex) is try-lock-only, so no context
// can wait on two endpoints' locks at once.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "nmad/driver.hpp"
#include "nmad/endpoint.hpp"
#include "nmad/gate.hpp"
#include "obs/metrics.hpp"
#include "nmad/locking.hpp"
#include "nmad/request.hpp"
#include "nmad/strategy.hpp"
#include "nmad/types.hpp"
#include "nmad/wire_format.hpp"
#include "pioman/server.hpp"
#include "pioman/tasklet.hpp"
#include "simnet/nic.hpp"
#include "simthread/scheduler.hpp"
#include "sync/spinlock.hpp"

namespace pm2::obs {
class FlowTracer;
}

namespace pm2::nm {

class Core final : public piom::PollSource {
 public:
  Core(mth::Scheduler& sched, Config cfg, std::string name = "nm");
  ~Core() override;

  Core(const Core&) = delete;
  Core& operator=(const Core&) = delete;

  // --- world wiring ---------------------------------------------------------

  /// Attach one NIC as rail N (in call order). Every endpoint gets its own
  /// Driver (transfer list) over the shared NIC; returns endpoint 0's.
  Driver& add_rail(net::Nic& nic);

  /// Open a gate to @p peer_node; @p peer_ports gives, per rail, the peer's
  /// fabric port (which is also the src_port of its incoming packets).
  /// Every endpoint gets its own gate; the endpoint-0 gate is returned as
  /// the public handle (isend/irecv reroute by tag internally).
  Gate* connect(int peer_node, std::vector<int> peer_ports);

  Gate* gate_to(int peer_node) const;

  /// Attach a PIOMan server; the core registers itself as a poll source.
  void attach_pioman(piom::Server* server);

  /// Attach a tasklet engine (required for ProgressMode::kTaskletOffload).
  void attach_tasklets(piom::TaskletEngine* engine);

  const Config& config() const { return cfg_; }
  mth::Scheduler& scheduler() const { return sched_; }
  sim::Engine& engine() const { return sched_.engine(); }
  const std::string& name() const { return name_; }
  int num_rails() const { return static_cast<int>(nics_.size()); }
  Driver& rail(int i) { return *eps_[0]->rail_ptrs_.at(static_cast<std::size_t>(i)); }
  LockSet& locks() { return eps_[0]->locks_; }

  int num_endpoints() const { return num_eps_; }
  Endpoint& endpoint(int i) { return *eps_.at(static_cast<std::size_t>(i)); }

  /// Endpoint a send / exact-tag receive with @p tag routes to.
  int endpoint_of(Tag tag) const {
    return num_eps_ > 1 ? static_cast<int>(tag % static_cast<Tag>(num_eps_))
                        : 0;
  }

  // --- data movement ----------------------------------------------------------

  /// Non-blocking send. The request completes once the message is on the
  /// wire (buffer reusable). @p data must stay valid until completion.
  Request* isend(Gate* gate, Tag tag, const void* data, std::size_t len);

  /// Non-blocking scatter/gather send: the message is the concatenation of
  /// @p slices. The slice *array* is copied; the segment bytes must stay
  /// valid until completion (they are gathered at most once, directly into
  /// the wire buffer).
  Request* isend_sg(Gate* gate, Tag tag, const ConstIoSlice* slices,
                    std::size_t count);

  /// Non-blocking send from a buffer the request takes ownership of (used
  /// by the pack interface); freed at release().
  Request* isend_owned(Gate* gate, Tag tag, std::vector<std::uint8_t> data);

  /// Non-blocking receive into @p buf (up to @p capacity bytes).
  Request* irecv(Gate* gate, Tag tag, void* buf, std::size_t capacity);

  /// Non-blocking scatter receive: incoming bytes land across @p slices in
  /// order, with no intermediate staging buffer.
  Request* irecv_sg(Gate* gate, Tag tag, const IoSlice* slices,
                    std::size_t count);

  /// Completion check (one priced flag read). Does not release.
  bool test(Request* req);

  /// Wait for completion using the configured WaitMode. Does not release,
  /// so received_length() stays queryable; call release() when done.
  void wait(Request* req);

  /// Wait until any request in @p reqs completes; returns its index.
  /// Null entries are skipped; at least one entry must be non-null.
  /// Always progress-polls (the fixed-spin/passive policies do not apply:
  /// multiple flags cannot share one blocking slot efficiently here).
  std::size_t wait_any(const std::vector<Request*>& reqs);

  /// Return a completed request to the core.
  void release(Request* req);

  /// Blocking conveniences (isend/irecv + wait + release).
  void send(Gate* gate, Tag tag, const void* data, std::size_t len);
  std::size_t recv(Gate* gate, Tag tag, void* buf, std::size_t capacity);

  // --- progression -------------------------------------------------------------

  /// One full progression pass with blocking locks (thread context).
  bool progress(mth::ExecContext& ctx);

  /// Hook-safe pass: try-locks only, never blocks.
  bool progress_try(mth::ExecContext& ctx, bool submission_only = false);

  // PollSource interface (PIOMan).
  bool poll(mth::ExecContext& ctx) override;
  bool pending() const override;

  /// Spawn/stop the dedicated progression thread(s) (kPollThread) on
  /// config().poll_core. With N > 1 endpoints, one fiber per endpoint is
  /// spawned (each pinned to its endpoint's home partition); the first is
  /// returned.
  mth::Thread* start_poll_thread();
  void stop_poll_thread();

  // --- observability ---------------------------------------------------------

  /// Attach a flow tracer: every request is stamped with a flow id and its
  /// lifecycle stages are recorded (see obs::FlowStage). @p node_id labels
  /// this core's side of each flow; nullptr detaches.
  void set_flow_tracer(obs::FlowTracer* tracer, int node_id);

  // --- statistics ----------------------------------------------------------------

  /// Thin view over registry counters, labeled (nmad, <machine>). Fields
  /// convert implicitly to std::uint64_t so legacy reads keep compiling;
  /// new code should prefer MetricsRegistry::counter_value lookups.
  struct Stats {
    obs::Counter sends;
    obs::Counter recvs;
    obs::Counter packets_rx;
    obs::Counter chunks_rx;
    obs::Counter unexpected_chunks;
    obs::Counter rdv_handshakes;
    obs::Counter progress_passes;
  };
  const Stats& stats() const { return stats_; }

  /// Incomplete (not yet completed) requests.
  int active_requests() const { return active_reqs_; }

 private:
  // Submission pipeline (all endpoint-scoped).
  Request* launch_send(mth::ExecContext& ctx, Endpoint& ep, Request* req,
                       Gate* gate, Tag tag, std::size_t len);
  Request* launch_recv(mth::ExecContext& ctx, Endpoint& ep, Request* req,
                       Gate* gate, Tag tag);
  Request* launch_recv_wildcard(mth::ExecContext& ctx, Request* req,
                                Gate* gate);
  void kick_submission(mth::ExecContext& ctx, Endpoint& ep);
  bool flush_deferred(Endpoint& ep, bool use_try);
  bool submit_step(mth::ExecContext& ctx, Endpoint& ep, bool use_try);
  bool commit_staged(Endpoint& ep, std::vector<Strategy::Arranged>& staged,
                     bool use_try);
  bool pump_step(mth::ExecContext& ctx, bool use_try);
  bool pump_step_multi(mth::ExecContext& ctx, int own_ep, bool use_try);
  bool drain_parked(mth::ExecContext& ctx, Endpoint& ep, bool use_try);
  /// One progression pass over a single endpoint. @p blocking passes may
  /// block on this endpoint's locks; try passes never block anywhere.
  bool progress_ep(mth::ExecContext& ctx, Endpoint& ep, bool blocking,
                   bool submission_only = false);
  /// Multi-endpoint pass: blocking on @p own_ep (-1 = none), try-lock
  /// stealing on every other endpoint, starting from the deterministic
  /// round-robin cursor.
  bool progress_multi(mth::ExecContext& ctx, int own_ep, bool use_try,
                      bool submission_only = false);
  void process_packet_locked(mth::ExecContext& ctx, Endpoint& ep, int rail,
                             const net::Packet& pkt);
  void handle_chunk_locked(mth::ExecContext& ctx, Endpoint& ep, int rail,
                           Gate& gate, const ChunkHeader& h,
                           const std::uint8_t* data, void* note,
                           const net::SlabRef* backing);
  void deliver_chunk_locked(mth::ExecContext& ctx, int rail, Gate& gate,
                            Request* req, const ChunkHeader& h,
                            const std::uint8_t* data);
  /// Adopt the earliest matching unexpected message into @p req (caller
  /// holds @p ep's matching lock). Returns false if nothing matched;
  /// *adopted_rdv is set when a deferred CTS was queued.
  bool adopt_unexpected_locked(mth::ExecContext& ctx, Endpoint& ep,
                               Gate& gate, Request* req, Tag tag,
                               bool* adopted_rdv);
  /// Claim a parked wildcard receive for @p gate's peer (caller holds the
  /// endpoint's matching lock; multi-endpoint mode only).
  Request* claim_wildcard_locked(const Gate& gate);
  void complete_request(Request* req);
  void on_chunks_wire_done(const std::vector<Request*>& reqs);
  bool has_submission_work() const;

  /// Flow-trace sequence: the endpoint id is folded into the high bits at
  /// N > 1 (mirroring the wire encoding) so flows on different endpoints
  /// of one gate never collide. Identity at endpoint 0.
  static std::uint32_t flow_seq(int ep, std::uint32_t seq) {
    return (static_cast<std::uint32_t>(ep) << 24) | seq;
  }

  /// The endpoint-@p e gate for the peer of @p gate (any endpoint's gate
  /// accepted as the public handle).
  Gate* gate_on(int e, Gate* gate) const;

  Request* alloc_request();

  mth::Scheduler& sched_;
  Config cfg_;
  std::string name_;
  int num_eps_ = 1;
  int home_partition_ = 0;

  std::vector<std::unique_ptr<Endpoint>> eps_;
  std::vector<net::Nic*> nics_;  ///< rails, shared by all endpoints

  piom::Server* pioman_ = nullptr;
  piom::TaskletEngine* tasklets_ = nullptr;
  std::unique_ptr<piom::Tasklet> submit_tasklet_;

  // --- multi-endpoint shared state (constructed only at N > 1) -------------
  /// Wildcard (kAnyTag) receives at N > 1 cannot hash to an endpoint; they
  /// park here and are claimed by whichever endpoint's matching pass first
  /// sees an otherwise-unmatched message for their gate. Lock order:
  /// matching -> wildcard (never the reverse).
  std::unique_ptr<sync::SpinLock> wildcard_lock_;
  std::deque<Request*> wildcard_recvs_;
  san::Shared san_wildcard_{"nm.wildcard"};
  /// Packets polled off a shared NIC but owned by an endpoint whose
  /// matching lock a try-pass could not take; drained by a later pass on
  /// the owning endpoint. Leaf lock (taken with no other domain held, or
  /// under a matching lock).
  std::unique_ptr<sync::SpinLock> park_lock_;
  std::vector<std::deque<std::pair<int, net::Packet>>> parked_rx_;  // per ep
  san::Shared san_parked_{"nm.rxpark"};
  /// One poller at a time per shared NIC completion queue (N > 1 only).
  /// The doorbell peek (rx_pending) models an atomic MMIO read and stays
  /// lock-free, but popping is not fiber-atomic -- Nic::poll charges its
  /// cost before dequeuing, and that charge can yield to another poller --
  /// so a try-only leaf lock serializes pollers; a contended pass just
  /// skips the rail (someone else is already draining it).
  std::vector<std::unique_ptr<sync::SpinLock>> nic_rx_locks_;
  int rr_ = 0;  ///< deterministic round-robin progression cursor

  std::vector<std::unique_ptr<Request>> req_pool_;
  std::vector<Request*> free_reqs_;
  std::uint64_t next_req_id_ = 1;
  int active_reqs_ = 0;

  bool poll_thread_stop_ = false;
  mth::Thread* poll_thread_ = nullptr;

  Stats stats_;

  // Data-path copy observability (registry-gated; zero cost when the
  // registry is disabled). "Copies" are host memcpys of payload bytes --
  // placements are the modeled DMA and counted separately.
  obs::Counter m_bytes_copied_;
  obs::Counter m_copies_;
  obs::Counter m_deliver_bytes_copied_;  ///< matched delivery memcpys
  obs::Counter m_adopt_bytes_copied_;    ///< unexpected -> user adoption
  obs::Counter m_placed_bytes_;          ///< landed with zero host copies
  obs::HistogramMetric m_copies_per_msg_;

  obs::FlowTracer* flow_ = nullptr;
  int node_id_ = -1;  ///< flow-trace label for this core's side
};

}  // namespace pm2::nm
