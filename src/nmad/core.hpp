// pm2sim -- NewMadeleine core: the per-node communication library instance.
//
// Ties the three layers together (paper Fig. 1):
//   collect layer      -- isend/irecv stage work into per-gate lists;
//   optimization layer -- a Strategy arranges packets when NICs have room;
//   transfer layer     -- Drivers feed packets to NICs and poll them.
//
// Orthogonally configurable (nm::Config):
//   locking     none / coarse / fine                      (Sec. 3.1-3.2)
//   waiting     busy / passive / fixed-spin               (Sec. 3.3)
//   progression app-driven / PIOMan hooks / dedicated poll thread /
//               tasklet-offloaded submission / idle-core submission (Sec. 4)
//
// Locking discipline: a thread never holds two lock domains at once on the
// blocking paths (collect -> unlock -> driver -> unlock -> matching), which
// keeps the coarse mapping (every domain = one global lock) deadlock-free.
// Hook contexts use try-locks exclusively and may nest them (try-locks
// cannot deadlock); work that cannot be done under a failed try-lock is
// left queued for the next pass.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "nmad/driver.hpp"
#include "nmad/gate.hpp"
#include "obs/metrics.hpp"
#include "nmad/locking.hpp"
#include "nmad/request.hpp"
#include "nmad/strategy.hpp"
#include "nmad/types.hpp"
#include "nmad/wire_format.hpp"
#include "pioman/server.hpp"
#include "pioman/tasklet.hpp"
#include "simnet/nic.hpp"
#include "simthread/scheduler.hpp"

namespace pm2::obs {
class FlowTracer;
}

namespace pm2::nm {

class Core final : public piom::PollSource {
 public:
  Core(mth::Scheduler& sched, Config cfg, std::string name = "nm");
  ~Core() override;

  Core(const Core&) = delete;
  Core& operator=(const Core&) = delete;

  // --- world wiring ---------------------------------------------------------

  /// Attach one NIC as rail N (in call order).
  Driver& add_rail(net::Nic& nic);

  /// Open a gate to @p peer_node; @p peer_ports gives, per rail, the peer's
  /// fabric port (which is also the src_port of its incoming packets).
  Gate* connect(int peer_node, std::vector<int> peer_ports);

  Gate* gate_to(int peer_node) const;

  /// Attach a PIOMan server; the core registers itself as a poll source.
  void attach_pioman(piom::Server* server);

  /// Attach a tasklet engine (required for ProgressMode::kTaskletOffload).
  void attach_tasklets(piom::TaskletEngine* engine);

  const Config& config() const { return cfg_; }
  mth::Scheduler& scheduler() const { return sched_; }
  sim::Engine& engine() const { return sched_.engine(); }
  const std::string& name() const { return name_; }
  int num_rails() const { return static_cast<int>(drivers_.size()); }
  Driver& rail(int i) { return *drivers_.at(static_cast<std::size_t>(i)); }
  LockSet& locks() { return locks_; }

  // --- data movement ----------------------------------------------------------

  /// Non-blocking send. The request completes once the message is on the
  /// wire (buffer reusable). @p data must stay valid until completion.
  Request* isend(Gate* gate, Tag tag, const void* data, std::size_t len);

  /// Non-blocking scatter/gather send: the message is the concatenation of
  /// @p slices. The slice *array* is copied; the segment bytes must stay
  /// valid until completion (they are gathered at most once, directly into
  /// the wire buffer).
  Request* isend_sg(Gate* gate, Tag tag, const ConstIoSlice* slices,
                    std::size_t count);

  /// Non-blocking send from a buffer the request takes ownership of (used
  /// by the pack interface); freed at release().
  Request* isend_owned(Gate* gate, Tag tag, std::vector<std::uint8_t> data);

  /// Non-blocking receive into @p buf (up to @p capacity bytes).
  Request* irecv(Gate* gate, Tag tag, void* buf, std::size_t capacity);

  /// Non-blocking scatter receive: incoming bytes land across @p slices in
  /// order, with no intermediate staging buffer.
  Request* irecv_sg(Gate* gate, Tag tag, const IoSlice* slices,
                    std::size_t count);

  /// Completion check (one priced flag read). Does not release.
  bool test(Request* req);

  /// Wait for completion using the configured WaitMode. Does not release,
  /// so received_length() stays queryable; call release() when done.
  void wait(Request* req);

  /// Wait until any request in @p reqs completes; returns its index.
  /// Null entries are skipped; at least one entry must be non-null.
  /// Always progress-polls (the fixed-spin/passive policies do not apply:
  /// multiple flags cannot share one blocking slot efficiently here).
  std::size_t wait_any(const std::vector<Request*>& reqs);

  /// Return a completed request to the core.
  void release(Request* req);

  /// Blocking conveniences (isend/irecv + wait + release).
  void send(Gate* gate, Tag tag, const void* data, std::size_t len);
  std::size_t recv(Gate* gate, Tag tag, void* buf, std::size_t capacity);

  // --- progression -------------------------------------------------------------

  /// One full progression pass with blocking locks (thread context).
  bool progress(mth::ExecContext& ctx);

  /// Hook-safe pass: try-locks only, never blocks.
  bool progress_try(mth::ExecContext& ctx, bool submission_only = false);

  // PollSource interface (PIOMan).
  bool poll(mth::ExecContext& ctx) override;
  bool pending() const override;

  /// Spawn/stop the dedicated progression thread (kPollThread) on
  /// config().poll_core.
  mth::Thread* start_poll_thread();
  void stop_poll_thread();

  // --- observability ---------------------------------------------------------

  /// Attach a flow tracer: every request is stamped with a flow id and its
  /// lifecycle stages are recorded (see obs::FlowStage). @p node_id labels
  /// this core's side of each flow; nullptr detaches.
  void set_flow_tracer(obs::FlowTracer* tracer, int node_id);

  // --- statistics ----------------------------------------------------------------

  /// Thin view over registry counters, labeled (nmad, <machine>). Fields
  /// convert implicitly to std::uint64_t so legacy reads keep compiling;
  /// new code should prefer MetricsRegistry::counter_value lookups.
  struct Stats {
    obs::Counter sends;
    obs::Counter recvs;
    obs::Counter packets_rx;
    obs::Counter chunks_rx;
    obs::Counter unexpected_chunks;
    obs::Counter rdv_handshakes;
    obs::Counter progress_passes;
  };
  const Stats& stats() const { return stats_; }

  /// Incomplete (not yet completed) requests.
  int active_requests() const { return active_reqs_; }

 private:
  // Submission pipeline.
  Request* launch_send(mth::ExecContext& ctx, Request* req, Gate* gate,
                       Tag tag, std::size_t len);
  Request* launch_recv(mth::ExecContext& ctx, Request* req, Gate* gate,
                       Tag tag);
  void kick_submission(mth::ExecContext& ctx);
  bool flush_deferred(bool use_try);
  bool submit_step(mth::ExecContext& ctx, bool use_try);
  bool commit_staged(std::vector<Strategy::Arranged>& staged, bool use_try);
  bool pump_step(mth::ExecContext& ctx, bool use_try);
  void process_packet_locked(mth::ExecContext& ctx, int rail,
                             const net::Packet& pkt);
  void handle_chunk_locked(mth::ExecContext& ctx, int rail, Gate& gate,
                           const ChunkHeader& h, const std::uint8_t* data,
                           void* note, const net::SlabRef* backing);
  void deliver_chunk_locked(mth::ExecContext& ctx, int rail, Gate& gate,
                            Request* req, const ChunkHeader& h,
                            const std::uint8_t* data);
  void complete_request(Request* req);
  void on_chunks_wire_done(const std::vector<Request*>& reqs);
  bool has_submission_work() const;

  Request* alloc_request();
  Gate* gate_of_src(int rail, int src_port) const;

  mth::Scheduler& sched_;
  Config cfg_;
  std::string name_;
  LockSet locks_;

  std::vector<std::unique_ptr<Driver>> drivers_;
  std::vector<Driver*> rail_ptrs_;
  std::vector<std::unordered_map<int, Gate*>> src_to_gate_;  // per rail
  std::vector<std::unique_ptr<Gate>> gates_;
  std::unordered_map<int, Gate*> by_peer_;

  std::unique_ptr<Strategy> strategy_;
  piom::Server* pioman_ = nullptr;
  piom::TaskletEngine* tasklets_ = nullptr;
  std::unique_ptr<piom::Tasklet> submit_tasklet_;

  /// Protocol pack-wrappers produced while holding the matching lock
  /// (CTS replies, granted rendezvous data); moved into the gates' collect
  /// lists by the next submission step. Guarded by the matching domain.
  std::deque<std::pair<Gate*, PackWrapper>> deferred_pws_;
  san::Shared san_deferred_{"nm.deferred"};  ///< simsan handle for the deque
  bool resubmit_hint_ = false;

  std::unordered_map<std::uint64_t, Request*> send_by_cookie_;
  std::vector<std::unique_ptr<Request>> req_pool_;
  std::vector<Request*> free_reqs_;
  std::uint64_t next_req_id_ = 1;
  int active_reqs_ = 0;

  bool poll_thread_stop_ = false;
  mth::Thread* poll_thread_ = nullptr;

  Stats stats_;

  // Data-path copy observability (registry-gated; zero cost when the
  // registry is disabled). "Copies" are host memcpys of payload bytes --
  // placements are the modeled DMA and counted separately.
  obs::Counter m_bytes_copied_;
  obs::Counter m_copies_;
  obs::Counter m_deliver_bytes_copied_;  ///< matched delivery memcpys
  obs::Counter m_adopt_bytes_copied_;    ///< unexpected -> user adoption
  obs::Counter m_placed_bytes_;          ///< landed with zero host copies
  obs::HistogramMetric m_copies_per_msg_;

  obs::FlowTracer* flow_ = nullptr;
  int node_id_ = -1;  ///< flow-trace label for this core's side
};

}  // namespace pm2::nm
