// pm2sim -- communication requests (the objects behind nm_isend / nm_irecv).
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <cstring>
#include <vector>

#include "nmad/types.hpp"
#include "sync/completion_flag.hpp"

namespace pm2::nm {

class Core;
class Gate;

enum class ReqKind : std::uint8_t { kSend, kRecv };

/// One outstanding communication operation. Created by Core::isend/irecv,
/// waited on with Core::wait/test, returned to the Core with
/// Core::release (wait does not release, so the result remains queryable).
class Request {
 public:
  Request(mth::Scheduler& sched, std::uint64_t id)
      : flag_(sched, "req"), id_(id) {}

  Request(const Request&) = delete;
  Request& operator=(const Request&) = delete;

  ReqKind kind() const { return kind_; }
  Gate* gate() const { return gate_; }
  Tag tag() const { return tag_; }
  std::uint64_t id() const { return id_; }

  /// Endpoint this request routes through (tag % Config::endpoints; for
  /// wildcard receives, bound at match time).
  int endpoint() const { return ep_; }

  /// For receives: the tag of the matched message (differs from tag() only
  /// for kAnyTag receives; valid once matched).
  Tag matched_tag() const { return matched_tag_; }

  /// Host-side (unpriced) completion peek.
  bool completed() const { return flag_.is_set(); }

  /// For completed receives: number of bytes received.
  std::size_t received_length() const { return filled_; }

  /// Message length (send: full message; recv: known once matched).
  std::size_t total_length() const { return total_len_; }

  /// The waitable completion flag (priced access).
  sync::CompletionFlag& flag() { return flag_; }

  /// Flow-trace id (nonzero only while a FlowTracer is attached to the
  /// core); shared by the send and recv requests of one message.
  std::uint64_t flow_id() const { return flow_id_; }

 private:
  friend class Core;
  friend class Strategy;  // submission accounting (inflight chunks)

  /// Land @p len bytes at message offset @p offset: directly into the flat
  /// receive buffer, or walked across the scatter list (irecv_sg).
  void scatter_into(std::size_t offset, const std::uint8_t* src,
                    std::size_t len) {
    if (len == 0) return;
    if (recv_slices_.empty()) {
      std::memcpy(recv_buf_ + offset, src, len);
      return;
    }
    for (const auto& s : recv_slices_) {
      if (offset >= s.len) {
        offset -= s.len;
        continue;
      }
      const std::size_t take = std::min(len, s.len - offset);
      std::memcpy(static_cast<std::uint8_t*>(s.base) + offset, src, take);
      src += take;
      len -= take;
      offset = 0;
      if (len == 0) break;
    }
    assert(len == 0 && "scatter past the registered segments");
  }

  sync::CompletionFlag flag_;
  std::uint64_t id_;
  ReqKind kind_ = ReqKind::kSend;
  int ep_ = 0;  ///< owning endpoint (tag % endpoints; 0 on 1-endpoint cores)
  Gate* gate_ = nullptr;
  Tag tag_ = 0;
  Tag matched_tag_ = 0;
  std::uint32_t msg_seq_ = 0;
  bool seq_bound_ = false;  ///< recv: matched to a wire msg_seq

  // Send side.
  const std::uint8_t* send_data_ = nullptr;
  /// Scatter/gather source segments (isend_sg); send_data_ is null when
  /// set. The *bytes* must stay valid until completion, like send_data_.
  std::vector<ConstIoSlice> send_slices_;
  /// Staging storage for gathered (packed) sends: the request owns the
  /// bytes until release, so callers need not keep their segments alive.
  std::vector<std::uint8_t> owned_send_buf_;
  unsigned inflight_chunks_ = 0;  ///< posted to a NIC, wire not done yet
  bool fully_submitted_ = false;  ///< all bytes handed to the transfer layer
  bool rdv_granted_ = false;      ///< CTS received

  // Receive side.
  std::uint8_t* recv_buf_ = nullptr;
  std::vector<IoSlice> recv_slices_;  ///< scatter destinations (irecv_sg)
  std::size_t capacity_ = 0;
  std::uint16_t host_copies_ = 0;  ///< host memcpys this message's bytes took

  std::size_t total_len_ = 0;
  bool total_known_ = false;
  std::size_t filled_ = 0;  ///< send: bytes submitted; recv: bytes landed

  std::uint64_t flow_id_ = 0;  ///< observability only; never drives protocol

  bool released_ = false;  ///< on the core's free list
};

}  // namespace pm2::nm
