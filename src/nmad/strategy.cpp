#include "nmad/strategy.hpp"

#include <algorithm>
#include <cassert>

#include "simsan/context.hpp"

namespace pm2::nm {

Strategy::~Strategy() = default;

std::unique_ptr<Strategy> Strategy::make(StrategyKind kind) {
  switch (kind) {
    case StrategyKind::kDefault: return std::make_unique<DefaultStrategy>();
    case StrategyKind::kAggreg: return std::make_unique<AggregStrategy>();
    case StrategyKind::kSplit: return std::make_unique<SplitStrategy>();
  }
  return std::make_unique<DefaultStrategy>();
}

namespace {

ChunkHeader header_for(const PackWrapper& pw, std::size_t chunk_len, int ep) {
  ChunkHeader h;
  h.ep = static_cast<std::uint8_t>(ep);
  switch (pw.kind) {
    case PackWrapper::Kind::kEager: h.kind = ChunkKind::kEager; break;
    case PackWrapper::Kind::kRts: h.kind = ChunkKind::kRts; break;
    case PackWrapper::Kind::kCts: h.kind = ChunkKind::kCts; break;
    case PackWrapper::Kind::kRdvData: h.kind = ChunkKind::kRdvData; break;
  }
  h.tag = pw.tag;
  h.msg_seq = pw.msg_seq;
  h.offset = static_cast<std::uint32_t>(pw.offset);
  h.chunk_len = static_cast<std::uint32_t>(chunk_len);
  h.total_len = static_cast<std::uint32_t>(pw.len);
  h.cookie = pw.cookie;
  return h;
}

/// Visit the contiguous pieces of [from, from+len) of @p pw's message,
/// whether it is a flat buffer or a scatter/gather slice list.
template <typename Fn>
void for_each_piece(const PackWrapper& pw, std::size_t from, std::size_t len,
                    Fn&& fn) {
  if (len == 0) return;
  if (pw.slices == nullptr) {
    fn(pw.data + from, len);
    return;
  }
  std::size_t skip = from;
  for (std::size_t i = 0; i < pw.n_slices && len > 0; ++i) {
    const ConstIoSlice& s = pw.slices[i];
    if (skip >= s.len) {
      skip -= s.len;
      continue;
    }
    const std::size_t take = std::min(len, s.len - skip);
    fn(static_cast<const std::uint8_t*>(s.base) + skip, take);
    len -= take;
    skip = 0;
  }
  assert(len == 0 && "message extends past its scatter/gather list");
}

}  // namespace

void Strategy::arrange_fifo(const Config& cfg, Gate& gate,
                            const std::vector<Driver*>& rails,
                            mth::ExecContext& ctx, std::size_t aggreg_budget,
                            bool split_rdv, std::vector<Arranged>& out) {
  assert(!rails.empty());
  // Arranging consumes the collect lists; the caller holds the collect lock.
  SIMSAN_ACCESS(gate.san_collect_);
  sim::Time cost = 0;
  // Control and eager data are FIFO on rail 0 (see rail policy above); if
  // rail 0 is backed up, leave everything in the collect lists for a later
  // round (a tx completion will trigger one).
  if (!rails[0]->ready()) {
    ctx.charge(cost);
    return;
  }

  // Header-size hint: every ctrl wrapper becomes one chunk in the first
  // packet, and eager aggregation typically adds at least one more.
  builder_.reserve(gate.ctrl_list_.size() + 1, 0);

  std::vector<Request*> accounted;
  std::vector<RdvPlacement> placements;
  std::uint64_t gathered_bytes = 0;
  std::uint32_t gathered_chunks = 0;

  auto account_chunk = [&](PackWrapper& pw, std::size_t chunk_len) {
    (void)chunk_len;
    cost += cfg.strategy_chunk_cost;
    // Data-bearing wrappers complete via wire-done accounting, including
    // zero-length messages; RTS completion instead awaits the bulk data.
    if (pw.req != nullptr && (pw.kind == PackWrapper::Kind::kEager ||
                              pw.kind == PackWrapper::Kind::kRdvData)) {
      ++pw.req->inflight_chunks_;
      accounted.push_back(pw.req);
    }
  };
  // Gather one data chunk into the packet's pooled slab -- the single host
  // copy of the eager path (and of rendezvous fallback when no window is
  // known, e.g. raw-injected CTS).
  auto gather_chunk = [&](PackWrapper& pw, std::size_t len) {
    builder_.add_chunk_begin(header_for(pw, len, gate.endpoint()));
    for_each_piece(pw, pw.offset, len,
                   [&](const std::uint8_t* p, std::size_t n) {
                     builder_.gather(p, n);
                   });
    if (len > 0) {
      gathered_bytes += len;
      ++gathered_chunks;
      if (pw.req != nullptr) ++pw.req->host_copies_;
    }
  };
  auto flush = [&](int rail, net::Channel trk) {
    if (builder_.chunk_count() == 0) return;
    Arranged a;
    a.rail = rail;
    a.pkt.trk = trk;
    a.pkt.dst_port = gate.peer_port(rail);
    a.pkt.payload = builder_.take();
    a.pkt.accounted = std::move(accounted);
    accounted.clear();
    a.pkt.placements = std::move(placements);
    placements.clear();
    a.pkt.gathered_bytes = gathered_bytes;
    a.pkt.gathered_chunks = gathered_chunks;
    gathered_bytes = 0;
    gathered_chunks = 0;
    out.push_back(std::move(a));
    cost += cfg.strategy_packet_cost;
  };

  // 1. Protocol control chunks (RTS / CTS) ride first, aggregated. A CTS
  //    carries the granting request as a host-only annotation: the model
  //    of the memory window an RDMA grant would advertise.
  while (!gate.ctrl_list_.empty()) {
    PackWrapper& pw = gate.ctrl_list_.front();
    builder_.add_chunk(header_for(pw, 0, gate.endpoint()), nullptr);
    if (pw.kind == PackWrapper::Kind::kCts) {
      builder_.annotate_last(pw.rdv_window);
    }
    account_chunk(pw, 0);
    gate.ctrl_list_.pop_front();
  }

  // 2. Eager data, FIFO, whole messages only.
  while (!gate.out_list_.empty() && out.size() < cfg.max_packets_per_round) {
    PackWrapper& pw = gate.out_list_.front();
    if (pw.kind == PackWrapper::Kind::kRdvData) break;  // bulk: step 3
    assert(pw.kind == PackWrapper::Kind::kEager);
    const std::size_t len = pw.remaining();
    const bool fits_aggregate =
        aggreg_budget > 0 && builder_.size_with(len) <= aggreg_budget;
    if (!fits_aggregate && builder_.chunk_count() > 0) {
      flush(0, kTrkSmall);  // close the current aggregate first
    }
    gather_chunk(pw, len);
    account_chunk(pw, len);
    pw.offset += len;
    pw.req->filled_ = pw.len;
    pw.req->fully_submitted_ = true;
    gate.out_list_.pop_front();
    if (!fits_aggregate) flush(0, kTrkSmall);
  }
  flush(0, kTrkSmall);

  // Emit one rendezvous data chunk. With a known window (the normal case:
  // the CTS told us the receiving request) the chunk is *placed*: zero host
  // copies, the Core executes the recorded placements at commit. Without a
  // window, fall back to gathering real bytes.
  auto emit_rdv_chunk = [&](PackWrapper& pw, std::size_t len) {
    if (pw.rdv_window != nullptr) {
      builder_.add_chunk_placed(header_for(pw, len, gate.endpoint()));
      std::size_t msg_off = pw.offset;
      for_each_piece(pw, pw.offset, len,
                     [&](const std::uint8_t* p, std::size_t n) {
                       placements.push_back(
                           {pw.rdv_window, static_cast<std::uint32_t>(msg_off),
                            p, static_cast<std::uint32_t>(n)});
                       msg_off += n;
                     });
    } else {
      gather_chunk(pw, len);
    }
  };

  // 3. Rendezvous bulk data on trk 1, optionally split across rails.
  while (!gate.out_list_.empty() && out.size() < cfg.max_packets_per_round &&
         gate.out_list_.front().kind == PackWrapper::Kind::kRdvData) {
    PackWrapper& pw = gate.out_list_.front();
    std::vector<int> ready;
    for (std::size_t r = 0; r < rails.size(); ++r) {
      if (rails[r]->ready()) ready.push_back(static_cast<int>(r));
    }
    if (ready.empty()) break;
    if (!split_rdv || ready.size() < 2 || pw.remaining() < cfg.split_min) {
      // Whole remaining payload on the first ready rail.
      const int rail = ready.front();
      const std::size_t len = pw.remaining();
      emit_rdv_chunk(pw, len);
      account_chunk(pw, len);
      pw.offset += len;
      flush(rail, kTrkBulk);
    } else {
      // Weight rails by bandwidth (inverse of ns/byte).
      double total_weight = 0;
      for (int r : ready) {
        total_weight += 1.0 / rails[static_cast<std::size_t>(r)]
                                  ->nic()
                                  .params()
                                  .wire_ns_per_byte;
      }
      const std::size_t total = pw.remaining();
      std::size_t assigned = 0;
      for (std::size_t i = 0; i < ready.size(); ++i) {
        const int r = ready[i];
        std::size_t len;
        if (i + 1 == ready.size()) {
          len = total - assigned;  // remainder
        } else {
          const double w = (1.0 / rails[static_cast<std::size_t>(r)]
                                      ->nic()
                                      .params()
                                      .wire_ns_per_byte) /
                           total_weight;
          len = std::min<std::size_t>(
              total - assigned,
              static_cast<std::size_t>(static_cast<double>(total) * w));
        }
        if (len == 0) continue;
        emit_rdv_chunk(pw, len);
        account_chunk(pw, len);
        pw.offset += len;
        assigned += len;
        flush(r, kTrkBulk);
      }
    }
    if (pw.remaining() == 0) {
      pw.req->filled_ = pw.len;
      pw.req->fully_submitted_ = true;
      gate.out_list_.pop_front();
    }
  }

  ctx.charge(cost);
}

void DefaultStrategy::arrange(const Config& cfg, Gate& gate,
                              const std::vector<Driver*>& rails,
                              mth::ExecContext& ctx,
                              std::vector<Arranged>& out) {
  arrange_fifo(cfg, gate, rails, ctx, /*aggreg_budget=*/0,
               /*split_rdv=*/false, out);
}

void AggregStrategy::arrange(const Config& cfg, Gate& gate,
                             const std::vector<Driver*>& rails,
                             mth::ExecContext& ctx,
                             std::vector<Arranged>& out) {
  arrange_fifo(cfg, gate, rails, ctx, cfg.aggreg_max, /*split_rdv=*/false,
               out);
}

void SplitStrategy::arrange(const Config& cfg, Gate& gate,
                            const std::vector<Driver*>& rails,
                            mth::ExecContext& ctx, std::vector<Arranged>& out) {
  arrange_fifo(cfg, gate, rails, ctx, cfg.aggreg_max, /*split_rdv=*/true, out);
}

}  // namespace pm2::nm
