#include "nmad/strategy.hpp"

#include <algorithm>
#include <cassert>

#include "nmad/wire_format.hpp"

namespace pm2::nm {

Strategy::~Strategy() = default;

std::unique_ptr<Strategy> Strategy::make(StrategyKind kind) {
  switch (kind) {
    case StrategyKind::kDefault: return std::make_unique<DefaultStrategy>();
    case StrategyKind::kAggreg: return std::make_unique<AggregStrategy>();
    case StrategyKind::kSplit: return std::make_unique<SplitStrategy>();
  }
  return std::make_unique<DefaultStrategy>();
}

namespace {

ChunkHeader header_for(const PackWrapper& pw, std::size_t chunk_len) {
  ChunkHeader h;
  switch (pw.kind) {
    case PackWrapper::Kind::kEager: h.kind = ChunkKind::kEager; break;
    case PackWrapper::Kind::kRts: h.kind = ChunkKind::kRts; break;
    case PackWrapper::Kind::kCts: h.kind = ChunkKind::kCts; break;
    case PackWrapper::Kind::kRdvData: h.kind = ChunkKind::kRdvData; break;
  }
  h.tag = pw.tag;
  h.msg_seq = pw.msg_seq;
  h.offset = static_cast<std::uint32_t>(pw.offset);
  h.chunk_len = static_cast<std::uint32_t>(chunk_len);
  h.total_len = static_cast<std::uint32_t>(pw.len);
  h.cookie = pw.cookie;
  return h;
}

}  // namespace

void Strategy::arrange_fifo(const Config& cfg, Gate& gate,
                            const std::vector<Driver*>& rails,
                            mth::ExecContext& ctx, std::size_t aggreg_budget,
                            bool split_rdv, std::vector<Arranged>& out) {
  assert(!rails.empty());
  sim::Time cost = 0;
  // Control and eager data are FIFO on rail 0 (see rail policy above); if
  // rail 0 is backed up, leave everything in the collect lists for a later
  // round (a tx completion will trigger one).
  if (!rails[0]->ready()) {
    ctx.charge(cost);
    return;
  }

  PacketBuilder builder;
  std::vector<Request*> accounted;

  auto account_chunk = [&](PackWrapper& pw, std::size_t chunk_len) {
    (void)chunk_len;
    cost += cfg.strategy_chunk_cost;
    // Data-bearing wrappers complete via wire-done accounting, including
    // zero-length messages; RTS completion instead awaits the bulk data.
    if (pw.req != nullptr && (pw.kind == PackWrapper::Kind::kEager ||
                              pw.kind == PackWrapper::Kind::kRdvData)) {
      ++pw.req->inflight_chunks_;
      accounted.push_back(pw.req);
    }
  };
  auto flush = [&](int rail, net::Channel trk) {
    if (builder.chunk_count() == 0) return;
    Arranged a;
    a.rail = rail;
    a.pkt.trk = trk;
    a.pkt.dst_port = gate.peer_port(rail);
    a.pkt.payload = builder.take();
    a.pkt.accounted = std::move(accounted);
    accounted.clear();
    out.push_back(std::move(a));
    cost += cfg.strategy_packet_cost;
  };

  // 1. Protocol control chunks (RTS / CTS) ride first, aggregated.
  while (!gate.ctrl_list_.empty()) {
    PackWrapper& pw = gate.ctrl_list_.front();
    builder.add_chunk(header_for(pw, 0), nullptr);
    account_chunk(pw, 0);
    gate.ctrl_list_.pop_front();
  }

  // 2. Eager data, FIFO, whole messages only.
  while (!gate.out_list_.empty() && out.size() < cfg.max_packets_per_round) {
    PackWrapper& pw = gate.out_list_.front();
    if (pw.kind == PackWrapper::Kind::kRdvData) break;  // bulk: step 3
    assert(pw.kind == PackWrapper::Kind::kEager);
    const std::size_t len = pw.remaining();
    const bool fits_aggregate =
        aggreg_budget > 0 && builder.size_with(len) <= aggreg_budget;
    if (!fits_aggregate && builder.chunk_count() > 0) {
      flush(0, kTrkSmall);  // close the current aggregate first
    }
    builder.add_chunk(header_for(pw, len), pw.data + pw.offset);
    account_chunk(pw, len);
    pw.offset += len;
    pw.req->filled_ = pw.len;
    pw.req->fully_submitted_ = true;
    gate.out_list_.pop_front();
    if (!fits_aggregate) flush(0, kTrkSmall);
  }
  flush(0, kTrkSmall);

  // 3. Rendezvous bulk data on trk 1, optionally split across rails.
  while (!gate.out_list_.empty() && out.size() < cfg.max_packets_per_round &&
         gate.out_list_.front().kind == PackWrapper::Kind::kRdvData) {
    PackWrapper& pw = gate.out_list_.front();
    std::vector<int> ready;
    for (std::size_t r = 0; r < rails.size(); ++r) {
      if (rails[r]->ready()) ready.push_back(static_cast<int>(r));
    }
    if (ready.empty()) break;
    if (!split_rdv || ready.size() < 2 || pw.remaining() < cfg.split_min) {
      // Whole remaining payload on the first ready rail.
      const int rail = ready.front();
      const std::size_t len = pw.remaining();
      builder.add_chunk(header_for(pw, len), pw.data + pw.offset);
      account_chunk(pw, len);
      pw.offset += len;
      flush(rail, kTrkBulk);
    } else {
      // Weight rails by bandwidth (inverse of ns/byte).
      double total_weight = 0;
      for (int r : ready) {
        total_weight += 1.0 / rails[static_cast<std::size_t>(r)]
                                  ->nic()
                                  .params()
                                  .wire_ns_per_byte;
      }
      const std::size_t total = pw.remaining();
      std::size_t assigned = 0;
      for (std::size_t i = 0; i < ready.size(); ++i) {
        const int r = ready[i];
        std::size_t len;
        if (i + 1 == ready.size()) {
          len = total - assigned;  // remainder
        } else {
          const double w = (1.0 / rails[static_cast<std::size_t>(r)]
                                      ->nic()
                                      .params()
                                      .wire_ns_per_byte) /
                           total_weight;
          len = std::min<std::size_t>(
              total - assigned,
              static_cast<std::size_t>(static_cast<double>(total) * w));
        }
        if (len == 0) continue;
        builder.add_chunk(header_for(pw, len), pw.data + pw.offset);
        account_chunk(pw, len);
        pw.offset += len;
        assigned += len;
        flush(r, kTrkBulk);
      }
    }
    if (pw.remaining() == 0) {
      pw.req->filled_ = pw.len;
      pw.req->fully_submitted_ = true;
      gate.out_list_.pop_front();
    }
  }

  ctx.charge(cost);
}

void DefaultStrategy::arrange(const Config& cfg, Gate& gate,
                              const std::vector<Driver*>& rails,
                              mth::ExecContext& ctx,
                              std::vector<Arranged>& out) {
  arrange_fifo(cfg, gate, rails, ctx, /*aggreg_budget=*/0,
               /*split_rdv=*/false, out);
}

void AggregStrategy::arrange(const Config& cfg, Gate& gate,
                             const std::vector<Driver*>& rails,
                             mth::ExecContext& ctx,
                             std::vector<Arranged>& out) {
  arrange_fifo(cfg, gate, rails, ctx, cfg.aggreg_max, /*split_rdv=*/false,
               out);
}

void SplitStrategy::arrange(const Config& cfg, Gate& gate,
                            const std::vector<Driver*>& rails,
                            mth::ExecContext& ctx, std::vector<Arranged>& out) {
  arrange_fifo(cfg, gate, rails, ctx, cfg.aggreg_max, /*split_rdv=*/true, out);
}

}  // namespace pm2::nm
