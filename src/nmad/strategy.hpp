// pm2sim -- optimization-layer strategies (paper Fig. 1, "Optimization
// Layer"): when a NIC can accept work, a strategy inspects the gate's
// collect lists and arranges the best packet(s) to commit to the transfer
// layer -- aggregating small messages, splitting bulk data across rails.
//
// Rail policy (and why): control and eager data always travel on rail 0 so
// that per-(gate, tag) FIFO ordering is guaranteed by the in-order wire;
// only *bound* rendezvous data -- whose matching was already established by
// the RTS/CTS handshake -- may be split across rails, where reordering is
// harmless because chunks carry explicit offsets.
#pragma once

#include <memory>
#include <vector>

#include "nmad/driver.hpp"
#include "nmad/gate.hpp"
#include "nmad/types.hpp"
#include "nmad/wire_format.hpp"
#include "simthread/exec_context.hpp"

namespace pm2::nm {

class Strategy {
 public:
  virtual ~Strategy();

  virtual const char* name() const = 0;

  /// Arrange chunks from @p gate's lists into packets. The caller holds the
  /// collect lock. Emits StagedPackets (rail index in StagedPacket order is
  /// carried separately via the .rail field below). Charges arrangement CPU
  /// to @p ctx. May emit nothing (e.g. no rail has room).
  struct Arranged {
    int rail = 0;
    StagedPacket pkt;
  };
  virtual void arrange(const Config& cfg, Gate& gate,
                       const std::vector<Driver*>& rails,
                       mth::ExecContext& ctx, std::vector<Arranged>& out) = 0;

  static std::unique_ptr<Strategy> make(StrategyKind kind);

 protected:
  /// Drain all control chunks (RTS/CTS) plus, under @p aggreg_budget, as
  /// many whole eager messages as fit, into one packet on rail 0.
  /// Oversized eager messages go whole into their own packet. Also emits
  /// rendezvous data (unsplit) on rail 0. Shared by all strategies.
  void arrange_fifo(const Config& cfg, Gate& gate,
                    const std::vector<Driver*>& rails, mth::ExecContext& ctx,
                    std::size_t aggreg_budget, bool split_rdv,
                    std::vector<Arranged>& out);

  /// Reused across arrangement rounds (always empty between calls) so the
  /// hot path does not reallocate header storage per packet.
  PacketBuilder builder_;
};

/// FIFO, one message per packet, rail 0 only.
class DefaultStrategy final : public Strategy {
 public:
  const char* name() const override { return "default"; }
  void arrange(const Config& cfg, Gate& gate, const std::vector<Driver*>& rails,
               mth::ExecContext& ctx, std::vector<Arranged>& out) override;
};

/// Aggregates control chunks and small messages into shared packets
/// (packet reordering/coalescing of the paper's core layer).
class AggregStrategy final : public Strategy {
 public:
  const char* name() const override { return "aggreg"; }
  void arrange(const Config& cfg, Gate& gate, const std::vector<Driver*>& rails,
               mth::ExecContext& ctx, std::vector<Arranged>& out) override;
};

/// Aggregation plus multirail distribution of rendezvous bulk data.
class SplitStrategy final : public Strategy {
 public:
  const char* name() const override { return "split"; }
  void arrange(const Config& cfg, Gate& gate, const std::vector<Driver*>& rails,
               mth::ExecContext& ctx, std::vector<Arranged>& out) override;
};

}  // namespace pm2::nm
