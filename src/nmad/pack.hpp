// pm2sim -- pack/unpack: NewMadeleine's multi-segment message interface.
//
// The real library's native API builds messages from several application
// buffers (nm_pack) and scatters received messages back (nm_unpack),
// avoiding caller-side marshalling. This layer is a thin veneer over the
// Core's scatter/gather entry points (isend_sg / irecv_sg): pack() records
// segment *references*, and the bytes are gathered at most once -- directly
// into the wire buffer -- when the message is arranged. Received bytes are
// scattered straight into the registered destination segments with no
// intermediate staging buffer.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "nmad/core.hpp"
#include "nmad/types.hpp"

namespace pm2::nm {

/// Outgoing multi-segment message: pack segments, then send.
///
///   PackBuilder pk(core);
///   pk.pack(&header, sizeof header).pack(body.data(), body.size());
///   Request* r = pk.isend(gate, tag);
///
/// Lifetime contract: pack() keeps a *reference* -- the segment bytes must
/// stay valid until the returned request completes (same rule as
/// Core::isend). The builder itself may be destroyed right after isend().
class PackBuilder {
 public:
  explicit PackBuilder(Core& core) : core_(core) {}

  /// Pre-size the segment list (satellite of the zero-copy path: callers
  /// that know their segment count avoid reallocation on the hot path).
  PackBuilder& reserve(std::size_t segments) {
    slices_.reserve(segments);
    return *this;
  }

  /// Append a segment reference (priced per byte: the gather copy is paid
  /// up front here, where the real library's nm_pack pays it).
  PackBuilder& pack(const void* data, std::size_t len);
  PackBuilder& pack(ConstIoSlice slice) { return pack(slice.base, slice.len); }

  std::size_t packed_size() const { return total_; }

  /// Send the recorded segments; the builder resets for reuse. Segment
  /// bytes must stay valid until the request completes.
  Request* isend(Gate* gate, Tag tag);

  /// Blocking variant.
  void send(Gate* gate, Tag tag);

 private:
  Core& core_;
  std::vector<ConstIoSlice> slices_;
  std::size_t total_ = 0;
};

/// Scatter an incoming message into multiple application buffers.
///
///   UnpackDest up(core);
///   up.unpack(&header, sizeof header).unpack(body.data(), body.size());
///   up.recv(gate, tag);   // blocking; or irecv + wait_and_scatter
class UnpackDest {
 public:
  explicit UnpackDest(Core& core) : core_(core) {}

  /// Pre-size the segment list.
  UnpackDest& reserve(std::size_t segments) {
    slices_.reserve(segments);
    return *this;
  }

  /// Append a destination segment.
  UnpackDest& unpack(void* data, std::size_t len);
  UnpackDest& unpack(IoSlice slice) { return unpack(slice.base, slice.len); }

  std::size_t capacity() const;

  /// Post the receive: incoming bytes land directly across the registered
  /// segments (no staging buffer). The segments must stay valid until the
  /// request completes; wait via wait_and_scatter().
  Request* irecv(Gate* gate, Tag tag);

  /// Wait for @p req, release it, return the received byte count. The
  /// scatter already happened on the delivery path; the unpack copy is
  /// still priced here, where the real library's nm_unpack pays it.
  std::size_t wait_and_scatter(Request* req);

  /// Blocking convenience: irecv + wait_and_scatter.
  std::size_t recv(Gate* gate, Tag tag);

 private:
  Core& core_;
  std::vector<IoSlice> slices_;
};

/// Scatter-gather one-shot helper. Segment bytes must stay valid until the
/// returned request completes.
Request* isend_v(Core& core, Gate* gate, Tag tag,
                 const std::vector<ConstIoSlice>& slices);

}  // namespace pm2::nm
