// pm2sim -- pack/unpack: NewMadeleine's multi-segment message interface.
//
// The real library's native API builds messages from several application
// buffers (nm_pack) and scatters received messages back (nm_unpack),
// avoiding caller-side marshalling. This layer provides the same
// convenience on top of Core: segments are gathered into one wire message
// (the gather copy is priced like any host copy) and scattered on arrival.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "nmad/core.hpp"

namespace pm2::nm {

/// One segment of a scatter/gather list.
struct IoSlice {
  void* base = nullptr;
  std::size_t len = 0;
};
struct ConstIoSlice {
  const void* base = nullptr;
  std::size_t len = 0;

  ConstIoSlice() = default;
  ConstIoSlice(const void* b, std::size_t l) : base(b), len(l) {}
  ConstIoSlice(const IoSlice& s) : base(s.base), len(s.len) {}  // NOLINT
};

/// Outgoing multi-segment message: pack segments, then send.
///
///   PackBuilder pk(core);
///   pk.pack(&header, sizeof header).pack(body.data(), body.size());
///   Request* r = pk.isend(gate, tag);
class PackBuilder {
 public:
  explicit PackBuilder(Core& core) : core_(core) {}

  /// Append a segment (copied immediately; priced per byte).
  PackBuilder& pack(const void* data, std::size_t len);
  PackBuilder& pack(ConstIoSlice slice) { return pack(slice.base, slice.len); }

  std::size_t packed_size() const { return buffer_.size(); }

  /// Send the gathered message; the builder resets for reuse. The internal
  /// buffer is owned by the returned request's lifetime (released with it).
  Request* isend(Gate* gate, Tag tag);

  /// Blocking variant.
  void send(Gate* gate, Tag tag);

 private:
  Core& core_;
  std::vector<std::uint8_t> buffer_;
};

/// Scatter an incoming message into multiple application buffers.
///
///   UnpackDest up(core);
///   up.unpack(&header, sizeof header).unpack(body.data(), body.size());
///   up.recv(gate, tag);   // blocking; or irecv + core.wait
class UnpackDest {
 public:
  explicit UnpackDest(Core& core) : core_(core) {}

  /// Append a destination segment.
  UnpackDest& unpack(void* data, std::size_t len);
  UnpackDest& unpack(IoSlice slice) { return unpack(slice.base, slice.len); }

  std::size_t capacity() const;

  /// Post the receive; on completion the staging buffer is scattered into
  /// the registered segments (priced per byte). The returned request must
  /// be waited via wait_and_scatter().
  Request* irecv(Gate* gate, Tag tag);

  /// Wait for @p req, scatter into the segments, release the request.
  /// Returns the received byte count.
  std::size_t wait_and_scatter(Request* req);

  /// Blocking convenience: irecv + wait_and_scatter.
  std::size_t recv(Gate* gate, Tag tag);

 private:
  Core& core_;
  std::vector<IoSlice> slices_;
  std::vector<std::uint8_t> staging_;
};

/// Scatter-gather one-shot helpers.
Request* isend_v(Core& core, Gate* gate, Tag tag,
                 const std::vector<ConstIoSlice>& slices);

}  // namespace pm2::nm
