// pm2sim -- communication endpoints (scalable endpoints / multi-channel).
//
// An Endpoint is one full instance of the library's shared per-node state:
// the collect lists and tag-matching tables (as per-endpoint Gates), the
// per-rail transfer lists (per-endpoint Drivers over the shared NICs), the
// deferred protocol queue, the rendezvous cookie table, an optimization
// strategy, and a LockSet guarding it all. A Core instantiates
// Config::endpoints of them; endpoint 0 of a 1-endpoint core is exactly
// the classic single-instance layout (same lock names, same simsan state
// names, same operation sequence -- byte-identical schedules).
//
// Routing: sends and exact-tag receives live on endpoint `tag % N`; both
// peers hash identically, so a message's whole lifecycle stays inside one
// endpoint pair and -- with per-endpoint locking -- threads driving
// distinct endpoints share no locked data-path state. The endpoint id
// travels in the chunk header (ChunkHeader::ep), so the receiver
// demultiplexes incoming packets, and rendezvous placements resolve,
// against the owning endpoint.
//
// The NICs themselves stay shared across a node's endpoints: the tx
// doorbell is modeled as atomic MMIO (a NIC serializes posts in hardware),
// which is why NIC state is not part of any endpoint's declared shared
// state. See DESIGN.md "Scalable endpoints".
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "nmad/driver.hpp"
#include "nmad/gate.hpp"
#include "nmad/locking.hpp"
#include "nmad/strategy.hpp"
#include "nmad/types.hpp"
#include "obs/metrics.hpp"
#include "simsan/simsan.hpp"

namespace pm2::mth {
class Thread;
}

namespace pm2::nm {

class Core;

class Endpoint {
 public:
  /// @p name is the owning core's name for endpoint 0 ("nm0") and the
  /// suffixed form ("nm0.ep1") otherwise; lock and simsan names derive
  /// from it so endpoint 0 keeps the historical names byte-for-byte.
  Endpoint(mth::Scheduler& sched, const Config& cfg, int id, std::string name,
           int max_rails, int home_partition);

  Endpoint(const Endpoint&) = delete;
  Endpoint& operator=(const Endpoint&) = delete;

  int id() const { return id_; }
  const std::string& name() const { return name_; }
  LockSet& locks() { return locks_; }

  /// Engine partition this endpoint's node lives in. Progress fibers
  /// spawned for this endpoint inherit it (ThreadAttrs::partition).
  int home_partition() const { return home_partition_; }

  /// Outgoing work queued anywhere in this endpoint (unpriced host peek).
  bool has_submission_work() const {
    if (!deferred_pws_.empty()) return true;
    for (const auto& g : gates_) {
      if (g->has_outgoing()) return true;
    }
    for (const auto& d : drivers_) {
      if (d->has_pending()) return true;
    }
    return false;
  }

 private:
  friend class Core;

  int id_;
  std::string name_;
  int home_partition_ = 0;
  LockSet locks_;

  std::vector<std::unique_ptr<Driver>> drivers_;
  std::vector<Driver*> rail_ptrs_;
  std::vector<std::unordered_map<int, Gate*>> src_to_gate_;  // per rail
  std::vector<std::unique_ptr<Gate>> gates_;
  std::unordered_map<int, Gate*> by_peer_;

  std::unique_ptr<Strategy> strategy_;

  /// Protocol pack-wrappers produced while holding this endpoint's
  /// matching lock (CTS replies, granted rendezvous data); moved into the
  /// gates' collect lists by the next submission step.
  std::deque<std::pair<Gate*, PackWrapper>> deferred_pws_;
  san::Shared san_deferred_{"nm.deferred"};
  bool resubmit_hint_ = false;

  std::unordered_map<std::uint64_t, Request*> send_by_cookie_;

  mth::Thread* poll_thread_ = nullptr;  ///< kPollThread: this ep's fiber

  // Per-endpoint observability, registered only for multi-endpoint cores
  // (keyed {"nmad.ep", node, endpoint, name}); zero-cost no-ops otherwise
  // so single-endpoint metric reports are unchanged.
  obs::Counter m_sends_;
  obs::Counter m_recvs_;
  obs::Counter m_steals_;  ///< progress made by a non-owning context
};

}  // namespace pm2::nm
