#include "nmad/wire_format.hpp"

#include <cassert>
#include <cstring>

namespace pm2::nm {

const char* to_string(ChunkKind k) {
  switch (k) {
    case ChunkKind::kEager: return "eager";
    case ChunkKind::kRts: return "rts";
    case ChunkKind::kCts: return "cts";
    case ChunkKind::kRdvData: return "rdv-data";
  }
  return "?";
}

namespace {

template <typename T>
void put(std::vector<std::uint8_t>& buf, T value) {
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    buf.push_back(static_cast<std::uint8_t>(value >> (8 * i)));
  }
}

template <typename T>
bool get(const std::vector<std::uint8_t>& buf, std::size_t& pos, T* out) {
  if (pos + sizeof(T) > buf.size()) return false;
  T v = 0;
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    v |= static_cast<T>(buf[pos + i]) << (8 * i);
  }
  pos += sizeof(T);
  *out = v;
  return true;
}

}  // namespace

PacketBuilder::PacketBuilder() {
  // Reserve the chunk-count slot.
  put<std::uint16_t>(buf_, 0);
}

void PacketBuilder::add_chunk(const ChunkHeader& h, const std::uint8_t* data) {
  assert((data != nullptr || h.chunk_len == 0) && "null data with bytes");
  put<std::uint8_t>(buf_, static_cast<std::uint8_t>(h.kind));
  put<std::uint64_t>(buf_, h.tag);
  put<std::uint32_t>(buf_, h.msg_seq);
  put<std::uint32_t>(buf_, h.offset);
  put<std::uint32_t>(buf_, h.chunk_len);
  put<std::uint32_t>(buf_, h.total_len);
  put<std::uint64_t>(buf_, h.cookie);
  if (h.chunk_len > 0) buf_.insert(buf_.end(), data, data + h.chunk_len);
  ++count_;
}

std::vector<std::uint8_t> PacketBuilder::take() {
  assert(count_ <= 0xFFFF);
  buf_[0] = static_cast<std::uint8_t>(count_ & 0xFF);
  buf_[1] = static_cast<std::uint8_t>(count_ >> 8);
  std::vector<std::uint8_t> out = std::move(buf_);
  buf_.clear();
  count_ = 0;
  put<std::uint16_t>(buf_, 0);
  return out;
}

PacketReader::PacketReader(const std::vector<std::uint8_t>& payload)
    : buf_(payload) {
  std::uint16_t count = 0;
  if (!get(buf_, pos_, &count)) {
    ok_ = false;
    return;
  }
  remaining_ = count;
}

std::optional<ChunkHeader> PacketReader::next(const std::uint8_t** data_out) {
  if (!ok_ || remaining_ == 0) return std::nullopt;
  ChunkHeader h;
  std::uint8_t kind = 0;
  if (!get(buf_, pos_, &kind) || !get(buf_, pos_, &h.tag) ||
      !get(buf_, pos_, &h.msg_seq) || !get(buf_, pos_, &h.offset) ||
      !get(buf_, pos_, &h.chunk_len) || !get(buf_, pos_, &h.total_len) ||
      !get(buf_, pos_, &h.cookie)) {
    ok_ = false;
    return std::nullopt;
  }
  h.kind = static_cast<ChunkKind>(kind);
  if (kind < 1 || kind > 4 || pos_ + h.chunk_len > buf_.size()) {
    ok_ = false;
    return std::nullopt;
  }
  *data_out = h.chunk_len > 0 ? buf_.data() + pos_ : nullptr;
  pos_ += h.chunk_len;
  --remaining_;
  return h;
}

}  // namespace pm2::nm
