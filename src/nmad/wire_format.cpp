#include "nmad/wire_format.hpp"

#include <cassert>
#include <cstring>

namespace pm2::nm {

const char* to_string(ChunkKind k) {
  switch (k) {
    case ChunkKind::kEager: return "eager";
    case ChunkKind::kRts: return "rts";
    case ChunkKind::kCts: return "cts";
    case ChunkKind::kRdvData: return "rdv-data";
  }
  return "?";
}

namespace {

template <typename T>
void put(std::vector<std::uint8_t>& buf, T value) {
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    buf.push_back(static_cast<std::uint8_t>(value >> (8 * i)));
  }
}

template <typename T>
bool get(const std::uint8_t* buf, std::size_t size, std::size_t& pos, T* out) {
  if (pos + sizeof(T) > size) return false;
  T v = 0;
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    v |= static_cast<T>(buf[pos + i]) << (8 * i);
  }
  pos += sizeof(T);
  *out = v;
  return true;
}

}  // namespace

// --------------------------------------------------------------------------
// PacketBuilder
// --------------------------------------------------------------------------

PacketBuilder::PacketBuilder() {
  // Reserve the chunk-count slot.
  put<std::uint16_t>(hdr_, 0);
}

void PacketBuilder::reserve(std::size_t chunks, std::size_t data_bytes) {
  hdr_.reserve(2 + chunks * ChunkHeader::kWireSize);
  segs_.reserve(chunks);
  if (data_bytes > 0 && data_used_ + data_bytes > data_.capacity()) {
    grow_data(data_used_ + data_bytes);
  }
}

void PacketBuilder::put_header(const ChunkHeader& h) {
  assert(h.msg_seq < ChunkHeader::kMaxSeq && "msg_seq overflows the seq word");
  put<std::uint8_t>(hdr_, static_cast<std::uint8_t>(h.kind));
  put<std::uint64_t>(hdr_, h.tag);
  put<std::uint32_t>(hdr_, (static_cast<std::uint32_t>(h.ep) << 24) |
                               (h.msg_seq & (ChunkHeader::kMaxSeq - 1)));
  put<std::uint32_t>(hdr_, h.offset);
  put<std::uint32_t>(hdr_, h.chunk_len);
  put<std::uint32_t>(hdr_, h.total_len);
  put<std::uint64_t>(hdr_, h.cookie);
  wire_size_ += ChunkHeader::kWireSize + h.chunk_len;
}

void PacketBuilder::grow_data(std::size_t need) {
  net::SlabRef bigger = net::BufferPool::global().acquire(need);
  if (data_used_ > 0) {
    std::memcpy(bigger.data(), data_.data(), data_used_);
  }
  data_ = std::move(bigger);
}

void PacketBuilder::add_chunk(const ChunkHeader& h, const std::uint8_t* data) {
  assert((data != nullptr || h.chunk_len == 0) && "null data with bytes");
  add_chunk_begin(h);
  gather(data, h.chunk_len);
}

void PacketBuilder::add_chunk_begin(const ChunkHeader& h) {
  assert(gather_left_ == 0 && "previous chunk's gather still open");
  put_header(h);
  Seg seg;
  seg.slab_off = static_cast<std::uint32_t>(data_used_);
  seg.len = h.chunk_len;
  segs_.push_back(seg);
  gather_left_ = h.chunk_len;
}

void PacketBuilder::gather(const std::uint8_t* piece, std::size_t len) {
  if (len == 0) return;
  assert(len <= gather_left_ && "gather overruns the announced chunk_len");
  if (data_used_ + len > data_.capacity()) grow_data(data_used_ + len);
  std::memcpy(data_.data() + data_used_, piece, len);
  data_used_ += len;
  gather_left_ -= len;
}

void PacketBuilder::add_chunk_placed(const ChunkHeader& h) {
  assert(gather_left_ == 0 && "previous chunk's gather still open");
  put_header(h);
  Seg seg;
  seg.len = h.chunk_len;
  seg.mode = SegMode::kPlaced;
  segs_.push_back(seg);
}

void PacketBuilder::annotate_last(void* note) {
  assert(!segs_.empty());
  segs_.back().note = note;
}

net::Payload PacketBuilder::take() {
  assert(gather_left_ == 0 && "take() with an open gather");
  assert(segs_.size() <= 0xFFFF);
  const std::size_t count = segs_.size();
  hdr_[0] = static_cast<std::uint8_t>(count & 0xFF);
  hdr_[1] = static_cast<std::uint8_t>(count >> 8);
  net::SlabRef hdr = net::BufferPool::global().acquire(hdr_.size());
  std::memcpy(hdr.data(), hdr_.data(), hdr_.size());

  std::vector<net::PayloadView> views;
  views.reserve(count);
  for (const Seg& seg : segs_) {
    net::PayloadView v;
    v.len = seg.len;
    v.note = seg.note;
    if (seg.mode == SegMode::kPlaced) {
      v.placed = true;
    } else if (seg.len > 0) {
      v.data = data_.data() + seg.slab_off;
    }
    views.push_back(v);
  }
  net::Payload out = net::Payload::segmented(
      std::move(hdr), static_cast<std::uint32_t>(hdr_.size()),
      std::move(data_), std::move(views));

  hdr_.clear();
  put<std::uint16_t>(hdr_, 0);
  segs_.clear();
  data_used_ = 0;
  wire_size_ = 2;
  return out;
}

// --------------------------------------------------------------------------
// PacketReader
// --------------------------------------------------------------------------

PacketReader::PacketReader(const std::vector<std::uint8_t>& payload)
    : buf_(payload.data()), buf_len_(payload.size()) {
  std::uint16_t count = 0;
  if (!get(buf_, buf_len_, pos_, &count)) {
    ok_ = false;
    return;
  }
  remaining_ = count;
}

PacketReader::PacketReader(const net::Payload& payload) {
  if (payload.flat()) {
    buf_ = payload.flat_bytes().data();
    buf_len_ = payload.flat_bytes().size();
  } else {
    buf_ = payload.header_bytes();
    buf_len_ = payload.header_len();
    seg_payload_ = &payload;
  }
  std::uint16_t count = 0;
  if (!get(buf_, buf_len_, pos_, &count)) {
    ok_ = false;
    return;
  }
  remaining_ = count;
}

std::optional<ChunkHeader> PacketReader::next(const std::uint8_t** data_out,
                                              void** note_out) {
  if (!ok_ || remaining_ == 0) return std::nullopt;
  ChunkHeader h;
  std::uint8_t kind = 0;
  std::uint32_t seq_word = 0;
  if (!get(buf_, buf_len_, pos_, &kind) ||
      !get(buf_, buf_len_, pos_, &h.tag) ||
      !get(buf_, buf_len_, pos_, &seq_word) ||
      !get(buf_, buf_len_, pos_, &h.offset) ||
      !get(buf_, buf_len_, pos_, &h.chunk_len) ||
      !get(buf_, buf_len_, pos_, &h.total_len) ||
      !get(buf_, buf_len_, pos_, &h.cookie)) {
    ok_ = false;
    return std::nullopt;
  }
  h.kind = static_cast<ChunkKind>(kind);
  h.ep = static_cast<std::uint8_t>(seq_word >> 24);
  h.msg_seq = seq_word & (ChunkHeader::kMaxSeq - 1);
  if (kind < 1 || kind > 4) {
    ok_ = false;
    return std::nullopt;
  }
  if (note_out != nullptr) *note_out = nullptr;
  if (seg_payload_ != nullptr) {
    if (seg_index_ >= seg_payload_->segments()) {
      ok_ = false;
      return std::nullopt;
    }
    const net::PayloadView& seg = seg_payload_->segment(seg_index_++);
    if (seg.len != h.chunk_len) {
      ok_ = false;
      return std::nullopt;
    }
    *data_out = seg.data;
    if (note_out != nullptr) *note_out = seg.note;
  } else {
    if (pos_ + h.chunk_len > buf_len_) {
      ok_ = false;
      return std::nullopt;
    }
    *data_out = h.chunk_len > 0 ? buf_ + pos_ : nullptr;
    pos_ += h.chunk_len;
  }
  --remaining_;
  return h;
}

std::uint8_t peek_packet_ep(const net::Payload& payload) {
  // Layout: u16 chunk_count, then the first header: kind (1) + tag (8) +
  // seq word (4, endpoint id in the high byte) + ... -- the ep byte sits at
  // offset 2 + 1 + 8 + 3 = 14 of the header region.
  constexpr std::size_t kEpByte = 2 + 1 + 8 + 3;
  const std::uint8_t* buf;
  std::size_t len;
  if (payload.flat()) {
    buf = payload.flat_bytes().data();
    len = payload.flat_bytes().size();
  } else {
    buf = payload.header_bytes();
    len = payload.header_len();
  }
  return len > kEpByte ? buf[kEpByte] : 0;
}

}  // namespace pm2::nm
