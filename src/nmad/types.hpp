// pm2sim -- NewMadeleine public types and configuration.
#pragma once

#include <cstddef>
#include <cstdint>

#include "simcore/time.hpp"

namespace pm2::nm {

/// Message tag: matches sends to receives within one gate (peer pair).
using Tag = std::uint64_t;

/// Wildcard receive tag: matches any incoming message on the gate
/// (MPI_ANY_TAG equivalent). Never valid as a SEND tag.
inline constexpr Tag kAnyTag = ~Tag{0};

/// One segment of a scatter/gather list (iovec equivalents).
struct IoSlice {
  void* base = nullptr;
  std::size_t len = 0;
};
struct ConstIoSlice {
  const void* base = nullptr;
  std::size_t len = 0;

  ConstIoSlice() = default;
  ConstIoSlice(const void* b, std::size_t l) : base(b), len(l) {}
  ConstIoSlice(const IoSlice& s) : base(s.base), len(s.len) {}  // NOLINT
};

/// How the library protects its shared state (paper Sec. 3).
enum class LockMode {
  kNone,    ///< no locking: single-threaded baseline ("No locking", Fig. 3)
  kCoarse,  ///< one library-wide spinlock (Sec. 3.1)
  kFine,    ///< per-list locks: collect / per-driver / matching (Sec. 3.2)
};

/// How waiting functions wait (paper Sec. 3.3).
enum class WaitMode {
  kBusy,       ///< poll until completion
  kPassive,    ///< block on a scheduler primitive
  kFixedSpin,  ///< spin for a fixed budget, then block [Karlin et al.]
};

/// Who makes communication progress (paper Sec. 3.3 / 4).
enum class ProgressMode {
  kAppDriven,       ///< only application calls (isend/irecv/wait) progress
  kPiomanHooks,     ///< + PIOMan polls from idle/switch/timer hooks
  kPollThread,      ///< a dedicated progression thread on poll_core (Fig. 8)
  kTaskletOffload,  ///< submission deferred to a tasklet on poll_core (Fig. 9)
  kIdleCoreOffload, ///< submission picked up by idle cores' hooks (Fig. 9)
};

/// Which optimization strategy arranges packets (paper Sec. 2, Fig. 1).
enum class StrategyKind {
  kDefault,  ///< FIFO, one message per packet
  kAggreg,   ///< aggregate small messages into one packet
  kSplit,    ///< aggregate + split large messages across rails (multirail)
};

const char* to_string(LockMode m);
const char* to_string(WaitMode m);
const char* to_string(ProgressMode m);
const char* to_string(StrategyKind k);

/// Per-core (per-node) library configuration.
struct Config {
  LockMode lock = LockMode::kFine;

  /// Number of independent communication endpoints (channels) this library
  /// instance exposes -- the scalable-endpoints/VCI design from the
  /// follow-on literature. 1 (default) is the paper's single shared
  /// library instance, byte-identical to the historical behavior. With
  /// N > 1, the collect lists, tag-matching tables and per-rail transfer
  /// lists are instantiated N times; sends and exact-tag receives route to
  /// endpoint `tag % endpoints`, so threads using distinct tags share no
  /// locked state. Must be in [1, 255] (the endpoint id travels in 8 bits
  /// of the chunk header).
  int endpoints = 1;
  WaitMode wait = WaitMode::kBusy;
  ProgressMode progress = ProgressMode::kAppDriven;
  StrategyKind strategy = StrategyKind::kAggreg;

  /// Spin budget before blocking under WaitMode::kFixedSpin (Sec. 3.3
  /// suggests "for instance 5 us").
  sim::Time fixed_spin_budget = sim::microseconds(5);

  /// Core the progression thread / offload tasklets live on (kPollThread,
  /// kTaskletOffload). -1 = unbound.
  int poll_core = -1;

  /// Messages larger than this use the rendezvous protocol.
  std::size_t rdv_threshold = std::size_t{32} * 1024;

  /// Maximum aggregated packet payload (strategy kAggreg/kSplit).
  std::size_t aggreg_max = 4096;

  /// Minimum message size worth splitting across rails (kSplit).
  std::size_t split_min = std::size_t{16} * 1024;

  /// Fixed per-call bookkeeping cost of the public API.
  sim::Time api_cost = 50;

  /// Optimization-layer CPU costs: per packet arranged / per chunk placed.
  sim::Time strategy_packet_cost = 60;
  sim::Time strategy_chunk_cost = 40;

  /// Cap on packets one arrangement round may stage (bounds the work done
  /// in a single progression pass).
  std::size_t max_packets_per_round = 8;
};

}  // namespace pm2::nm
