// pm2sim -- the transfer layer: one Driver per rail (NIC).
//
// The optimization layer commits arranged packets into the driver's pending
// list; the driver feeds them to the NIC whenever it has queue room (paper:
// "a NewMadeleine driver accesses its list when the corresponding NIC
// becomes idle"). Accesses to the pending list are serialized by the
// driver's lock domain, owned by the caller (Core).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "nmad/request.hpp"
#include "simnet/nic.hpp"
#include "simsan/simsan.hpp"

namespace pm2::nm {

/// NewMadeleine's two logical tracks, mapped onto link channels.
inline constexpr net::Channel kTrkSmall = 0;  ///< eager data + control
inline constexpr net::Channel kTrkBulk = 1;   ///< rendezvous bulk data

/// One placed rendezvous chunk piece: the modeled DMA lands @p len bytes
/// from the sender's buffer at message offset @p msg_off of the receiving
/// request (the window the CTS advertised). Executed by the Core when the
/// packet is committed -- before the wire events fire, so neither side ever
/// observes missing bytes.
struct RdvPlacement {
  Request* dst = nullptr;
  std::uint32_t msg_off = 0;
  const std::uint8_t* src = nullptr;
  std::uint32_t len = 0;
};

/// A fully-built packet waiting for NIC queue room.
struct StagedPacket {
  net::Channel trk = kTrkSmall;
  int dst_port = -1;
  net::Payload payload;
  /// Send requests with data chunks in this packet; each gets one
  /// inflight-chunk decrement when the wire absorbs the packet.
  std::vector<Request*> accounted;
  /// Placements to execute at commit (empty once committed).
  std::vector<RdvPlacement> placements;
  /// Copy accounting: bytes/chunks the strategy gathered into the payload.
  std::uint64_t gathered_bytes = 0;
  std::uint32_t gathered_chunks = 0;
};

class Driver {
 public:
  Driver(net::Nic& nic, int index) : nic_(nic), index_(index) {}

  Driver(const Driver&) = delete;
  Driver& operator=(const Driver&) = delete;

  net::Nic& nic() { return nic_; }
  const net::Nic& nic() const { return nic_; }
  int index() const { return index_; }

  /// True if arranging a packet now would reach an idle NIC: the paper's
  /// architecture is NIC-driven ("when a NIC becomes idle, the
  /// optimization layer is invoked to compute the best message
  /// arrangement") -- while a packet occupies the wire, new messages
  /// accumulate in the collect lists, which is what gives the aggregation
  /// strategy something to aggregate.
  bool ready() const { return pending_.empty() && nic_.tx_idle(); }

  bool has_pending() const { return !pending_.empty(); }
  std::size_t pending_count() const { return pending_.size(); }

  /// Append a packet to the transfer list. Caller holds the driver domain.
  void commit(StagedPacket pkt) { pending_.push_back(std::move(pkt)); }

  /// Push pending packets into the NIC while it has room. Caller holds the
  /// driver domain; @p on_wire_done is built by the Core for accounting.
  /// Returns the number of packets posted.
  int drain(const std::function<void(std::vector<Request*>)>& complete_chunks);

  /// Observer invoked for each packet as it is handed to the NIC (before
  /// the post). Observability only -- must not mutate the packet.
  void set_post_observer(std::function<void(const StagedPacket&)> fn) {
    post_observer_ = std::move(fn);
  }

  std::uint64_t packets_posted() const { return packets_posted_; }

  /// simsan shared-state handle covering the pending transfer list; the
  /// Core reports SIMSAN_ACCESS on it wherever it holds the driver domain.
  san::Shared& san_xfer() { return san_xfer_; }

 private:
  net::Nic& nic_;
  int index_;
  std::deque<StagedPacket> pending_;
  san::Shared san_xfer_{"driver.xfer"};
  std::function<void(const StagedPacket&)> post_observer_;
  std::uint64_t packets_posted_ = 0;
};

}  // namespace pm2::nm
