// pm2sim -- core/cache topology of a simulated node.
//
// The paper's testbed (Sec. 2) is built from quad-core Xeon X5460
// ("Harpertown") nodes: one chip carrying two L2 caches, each L2 shared by a
// pair of cores. A second testbed (Sec. 4.1) uses dual quad-core nodes.
// The topology only answers one question, the one Fig. 8 depends on: how
// "far apart" are two cores, cache-wise?
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace pm2::mach {

/// Cache-distance classes between two cores, ordered by increasing cost.
enum class CacheDomain {
  kSameCore = 0,       ///< same core: data is in the local cache already
  kSharedL2 = 1,       ///< different cores sharing an L2 (e.g. CPU 0 / CPU 1)
  kSameChip = 2,       ///< same chip, different L2 (e.g. CPU 0 / CPU 2)
  kOtherChip = 3,      ///< different chips (dual-socket nodes only)
};

const char* to_string(CacheDomain d);

/// Immutable description of the cores of one node and their cache sharing.
class CacheTopology {
 public:
  /// Xeon X5460-like quad-core: 1 chip, L2 pairs {0,1} and {2,3}.
  static CacheTopology quad_core();

  /// Dual quad-core node: chips {0..3} and {4..7}, L2 pairs {0,1} {2,3}
  /// {4,5} {6,7}.
  static CacheTopology dual_quad_core();

  /// Generic uniform topology: @p cores cores, all on one chip, grouped into
  /// L2 domains of @p cores_per_l2 consecutive cores.
  static CacheTopology uniform(int cores, int cores_per_l2);

  int num_cores() const { return static_cast<int>(l2_of_.size()); }
  int num_chips() const { return num_chips_; }

  /// L2 cache id of a core.
  int l2_of(int core) const { return l2_of_.at(static_cast<std::size_t>(core)); }

  /// Chip (socket) id of a core.
  int chip_of(int core) const { return chip_of_.at(static_cast<std::size_t>(core)); }

  /// Cache distance between two cores.
  CacheDomain domain(int a, int b) const;

  const std::string& name() const { return name_; }

 private:
  CacheTopology(std::string name, std::vector<int> l2_of, std::vector<int> chip_of);

  std::string name_;
  std::vector<int> l2_of_;
  std::vector<int> chip_of_;
  int num_chips_ = 1;
};

}  // namespace pm2::mach
