// pm2sim -- a simulated node: cores, caches, and the per-node cost model.
//
// Machine is passive: it describes hardware and prices operations. The
// thread scheduler (src/simthread) animates its cores; NICs (src/simnet)
// attach to it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "simcore/engine.hpp"
#include "simcore/time.hpp"
#include "simmachine/cost_book.hpp"
#include "simmachine/topology.hpp"

namespace pm2::mach {

/// Ownership tag for one logical cache line.
///
/// Shared objects whose ping-ponging between cores matters (locks,
/// completion flags, queue heads) embed a CacheLine; each access through
/// Machine::touch_line() charges the transfer cost implied by the last
/// owner and retags the line. This is the entire memory model — deliberately
/// minimal, but sufficient to reproduce the affinity effects of Fig. 8.
struct CacheLine {
  int owner_core = -1;  ///< -1: not resident anywhere yet (first touch free)
};

/// One simulated node.
class Machine {
 public:
  Machine(sim::Engine& engine, std::string name, CacheTopology topology,
          CostBook costs);

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  sim::Engine& engine() { return engine_; }
  const sim::Engine& engine() const { return engine_; }
  const std::string& name() const { return name_; }
  const CacheTopology& topology() const { return topology_; }
  const CostBook& costs() const { return costs_; }
  int num_cores() const { return topology_.num_cores(); }

  /// Cost for @p core to obtain a line currently owned by core @p from
  /// (0 if same core or not yet resident).
  sim::Time line_transfer_cost(int from, int to) const;

  /// Charge model for an access to a tagged shared line from @p core:
  /// returns the transfer cost and retags the line to @p core.
  sim::Time touch_line(CacheLine& line, int core);

  /// Read-only probe: what would touch_line() cost, without retagging.
  sim::Time peek_line(const CacheLine& line, int core) const;

  /// Diagnostics: total number of inter-core line transfers so far.
  std::uint64_t line_transfers() const { return line_transfers_; }

  /// Diagnostics: total virtual time spent in line transfers.
  sim::Time line_transfer_time() const { return line_transfer_time_; }

 private:
  sim::Engine& engine_;
  std::string name_;
  CacheTopology topology_;
  CostBook costs_;
  std::uint64_t line_transfers_ = 0;
  sim::Time line_transfer_time_ = 0;
};

}  // namespace pm2::mach
