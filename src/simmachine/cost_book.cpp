#include "simmachine/cost_book.hpp"

namespace pm2::mach {

CostBook CostBook::xeon_quad() {
  return CostBook{};  // defaults are the quad-core calibration
}

CostBook CostBook::xeon_dual_quad() {
  CostBook c;
  // The dual-socket Xeons pay more for any off-L2 handoff (FSB snooping):
  // calibrated against the Sec. 4.1 prose (+400 ns / +2.3 us / +3.1 us).
  c.line_shared_l2 = 75;
  c.line_same_chip = 425;
  c.line_other_chip = 575;
  return c;
}

}  // namespace pm2::mach
