#include "simmachine/topology.hpp"

#include <algorithm>
#include <stdexcept>

namespace pm2::mach {

const char* to_string(CacheDomain d) {
  switch (d) {
    case CacheDomain::kSameCore: return "same-core";
    case CacheDomain::kSharedL2: return "shared-l2";
    case CacheDomain::kSameChip: return "same-chip";
    case CacheDomain::kOtherChip: return "other-chip";
  }
  return "?";
}

CacheTopology::CacheTopology(std::string name, std::vector<int> l2_of,
                             std::vector<int> chip_of)
    : name_(std::move(name)), l2_of_(std::move(l2_of)), chip_of_(std::move(chip_of)) {
  if (l2_of_.empty() || l2_of_.size() != chip_of_.size()) {
    throw std::invalid_argument("CacheTopology: inconsistent core tables");
  }
  num_chips_ = 1 + *std::max_element(chip_of_.begin(), chip_of_.end());
}

CacheTopology CacheTopology::quad_core() {
  return CacheTopology("xeon-x5460-quad", {0, 0, 1, 1}, {0, 0, 0, 0});
}

CacheTopology CacheTopology::dual_quad_core() {
  return CacheTopology("xeon-dual-quad", {0, 0, 1, 1, 2, 2, 3, 3},
                       {0, 0, 0, 0, 1, 1, 1, 1});
}

CacheTopology CacheTopology::uniform(int cores, int cores_per_l2) {
  if (cores < 1 || cores_per_l2 < 1) {
    throw std::invalid_argument("CacheTopology::uniform: bad parameters");
  }
  std::vector<int> l2(static_cast<std::size_t>(cores));
  std::vector<int> chip(static_cast<std::size_t>(cores), 0);
  for (int c = 0; c < cores; ++c) l2[static_cast<std::size_t>(c)] = c / cores_per_l2;
  return CacheTopology("uniform", std::move(l2), std::move(chip));
}

CacheDomain CacheTopology::domain(int a, int b) const {
  if (a == b) return CacheDomain::kSameCore;
  if (chip_of(a) != chip_of(b)) return CacheDomain::kOtherChip;
  if (l2_of(a) == l2_of(b)) return CacheDomain::kSharedL2;
  return CacheDomain::kSameChip;
}

}  // namespace pm2::mach
