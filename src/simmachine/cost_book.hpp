// pm2sim -- the CostBook: every calibrated virtual-time constant in one place.
//
// Each constant is annotated with the paper measurement it is calibrated
// against. The derived figure-level overheads (140 ns coarse locking,
// 230 ns fine locking, 200 ns PIOMan, 750 ns semaphores, 400 ns / 1.2 us /
// 2.3 us / 3.1 us cache distances, 2 us tasklets) are NOT encoded anywhere:
// they must emerge from the number of primitive operations our
// implementation actually performs on the critical path. That emergence is
// what the benchmarks check.
#pragma once

#include "simcore/time.hpp"

namespace pm2::mach {

using sim::Time;

/// Calibrated primitive costs for one node type.
struct CostBook {
  // --- CPU synchronization primitives -------------------------------------
  /// Uncontended spinlock acquire on a locally-owned line. Paper Sec. 3.1:
  /// one acquire/release cycle costs 70 ns => 35 + 35.
  Time spin_acquire = 35;
  Time spin_release = 35;
  /// Re-check period while actively spinning on a held lock or a flag.
  Time spin_retry = 20;

  /// Spinlock fairness horizon. A releasing core's immediate re-acquire
  /// beats a remote spinner's retry (the line is still local: barging);
  /// but a spinner starved longer than this effectively wins the next
  /// release, as it does on real hardware over microsecond scales. This is
  /// what makes coarse-grain locking alternate -- and thus serialize --
  /// two communicating threads (Fig. 5).
  Time spin_fair_threshold = 1000;

  /// Semaphore / mutex fast path (no blocking).
  Time sem_fast_path = 25;

  /// One scheduler context switch (save + restore + runqueue manipulation).
  /// Paper Sec. 3.3: semaphore-based waiting costs ~750 ns per one-way
  /// latency; one blocked wait costs one switch-out plus one switch-in.
  Time context_switch = 375;

  /// Creating a thread (allocation + runqueue insertion).
  Time thread_spawn = 1500;

  /// Scheduler timeslice for preemptive round-robin between ready threads.
  Time timeslice = sim::microseconds(100);

  /// Period of the timer-interrupt hook (Marcel uses the OS tick).
  Time timer_tick = sim::milliseconds(1);

  // --- Cache-line transfer costs (Fig. 8) ---------------------------------
  /// Cost for a core to gain ownership of a line last owned by another core,
  /// by cache distance. A remote-polled pingpong bounces ~5.5 lines per
  /// message between the application core and the polling core (lock words,
  /// request state, the completion flag); the values are calibrated so the
  /// end-to-end Fig. 8 overheads land on the paper's measurements:
  ///   quad-core:  shared-L2 ~+400 ns, same-chip ~+1.2 us;
  ///   dual-quad:  shared-L2 ~+400 ns, same-chip ~+2.3 us,
  ///               other-chip ~+3.1 us.
  Time line_shared_l2 = 75;
  Time line_same_chip = 220;
  Time line_other_chip = 575;  ///< only meaningful on multi-chip nodes

  // --- PIOMan -------------------------------------------------------------
  /// Internal request-list management + locking per PIOMan poll pass.
  /// Mostly amortized off the critical path (paid while waiting anyway).
  Time pioman_pass = 100;

  /// Completion-side bookkeeping: when a poll pass makes progress, the
  /// satisfied request must be unlinked from PIOMan's lists and its waiter
  /// signalled -- this part lands squarely on the critical path.
  /// Paper Sec. 3.3 / Fig. 6: PIOMan adds ~200 ns per one-way latency
  /// ("management of PIOMan internal lists as well as locking").
  Time pioman_completion = 150;

  /// Tasklet machinery: scheduling a tasklet on a core, and the locking +
  /// dispatch cost when the target core runs it. Paper Sec. 4.2 / Fig. 9:
  /// tasklet-offloaded submission adds ~2 us per one-way latency, dominated
  /// by "the complex locking mechanism involved when a tasklet is invoked".
  Time tasklet_schedule = 600;
  Time tasklet_invoke = 1000;

  /// Extra bookkeeping for the idle-core (hook-based, lock-free) offload
  /// path; the rest of its Fig. 9 overhead comes from cache-line handoffs.
  Time idle_offload_detect = 100;

  /// Pacing of the idle-loop: how often an otherwise-idle core re-enters
  /// the PIOMan hook.
  Time idle_poll_period = 50;

  // --- Presets ------------------------------------------------------------
  /// Quad-core 3.16 GHz Xeon X5460 node (the paper's main testbed).
  static CostBook xeon_quad();

  /// Dual quad-core Xeon node (Sec. 4.1, second affinity experiment).
  /// Same-chip-different-L2 handoffs are pricier there (1150 ns per hop).
  static CostBook xeon_dual_quad();
};

}  // namespace pm2::mach
