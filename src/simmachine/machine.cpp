#include "simmachine/machine.hpp"

#include <cassert>
#include <stdexcept>

namespace pm2::mach {

Machine::Machine(sim::Engine& engine, std::string name, CacheTopology topology,
                 CostBook costs)
    : engine_(engine),
      name_(std::move(name)),
      topology_(std::move(topology)),
      costs_(costs) {}

sim::Time Machine::line_transfer_cost(int from, int to) const {
  if (from < 0 || from == to) return 0;
  switch (topology_.domain(from, to)) {
    case CacheDomain::kSameCore: return 0;
    case CacheDomain::kSharedL2: return costs_.line_shared_l2;
    case CacheDomain::kSameChip: return costs_.line_same_chip;
    case CacheDomain::kOtherChip: return costs_.line_other_chip;
  }
  return 0;
}

sim::Time Machine::touch_line(CacheLine& line, int core) {
  assert(core >= 0 && core < num_cores());
  const sim::Time cost = line_transfer_cost(line.owner_core, core);
  if (cost > 0) {
    ++line_transfers_;
    line_transfer_time_ += cost;
  }
  line.owner_core = core;
  return cost;
}

sim::Time Machine::peek_line(const CacheLine& line, int core) const {
  return line_transfer_cost(line.owner_core, core);
}

}  // namespace pm2::mach
