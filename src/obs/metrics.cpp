#include "obs/metrics.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <stdexcept>

namespace pm2::obs {

namespace {

void append_json_string(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_spec(std::string& out, const MetricSpec& spec) {
  out += "\"component\":";
  append_json_string(out, spec.component);
  out += ",\"node\":";
  append_json_string(out, spec.node);
  if (spec.core >= 0) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), ",\"core\":%d", spec.core);
    out += buf;
  }
  out += ",\"name\":";
  append_json_string(out, spec.name);
}

std::string display_key(const MetricSpec& spec) {
  std::string s = spec.component;
  if (!spec.node.empty()) s += "/" + spec.node;
  if (spec.core >= 0) s += "/core" + std::to_string(spec.core);
  s += "/" + spec.name;
  return s;
}

}  // namespace

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry g;
  return g;
}

void MetricsRegistry::set_shards(int n) {
  const std::size_t extra = n > 1 ? static_cast<std::size_t>(n - 1) : 0;
  while (shards_.size() < extra) shards_.push_back(std::make_unique<Shard>());
}

std::uint64_t MetricsRegistry::counter_total(std::uint32_t idx) const {
  std::uint64_t total = counters_[idx];
  for (const auto& sh : shards_) {
    if (idx < sh->counters.size()) total += sh->counters[idx];
  }
  return total;
}

MetricsRegistry::HistSlot MetricsRegistry::hist_total(
    std::uint32_t idx) const {
  HistSlot total = hists_[idx];
  for (const auto& sh : shards_) {
    if (idx >= sh->hists.size()) continue;
    const HistSlot& h = sh->hists[idx];
    if (h.count == 0) continue;
    if (total.count == 0 || h.min < total.min) total.min = h.min;
    if (h.max > total.max) total.max = h.max;
    total.count += h.count;
    total.sum += h.sum;
    for (int b = 0; b < 64; ++b) total.buckets[b] += h.buckets[b];
  }
  return total;
}

std::string MetricsRegistry::key_of(const std::string& component,
                                    const std::string& node, int core,
                                    const std::string& name) {
  std::string k = component;
  k += '\x1f';
  k += node;
  k += '\x1f';
  k += std::to_string(core);
  k += '\x1f';
  k += name;
  return k;
}

std::string MetricsRegistry::key_of(const MetricSpec& spec) {
  return key_of(spec.component, spec.node, spec.core, spec.name);
}

Counter MetricsRegistry::counter(const MetricSpec& spec) {
  const std::string key = key_of(spec);
  auto it = counter_keys_.find(key);
  if (it != counter_keys_.end()) {
    counters_[it->second] = 0;  // fresh instance, fresh count
    for (auto& sh : shards_) {
      if (it->second < sh->counters.size()) sh->counters[it->second] = 0;
    }
    return Counter(it->second);
  }
  const auto idx = static_cast<std::uint32_t>(counters_.size());
  counters_.push_back(0);
  counter_specs_.push_back(spec);
  counter_keys_.emplace(key, idx);
  return Counter(idx);
}

Gauge MetricsRegistry::gauge(const MetricSpec& spec) {
  const std::string key = key_of(spec);
  auto it = gauge_keys_.find(key);
  if (it != gauge_keys_.end()) {
    gauges_[it->second] = GaugeSlot{};
    return Gauge(it->second);
  }
  const auto idx = static_cast<std::uint32_t>(gauges_.size());
  gauges_.push_back(GaugeSlot{});
  gauge_specs_.push_back(spec);
  gauge_keys_.emplace(key, idx);
  return Gauge(idx);
}

HistogramMetric MetricsRegistry::histogram(const MetricSpec& spec) {
  const std::string key = key_of(spec);
  auto it = hist_keys_.find(key);
  if (it != hist_keys_.end()) {
    hists_[it->second] = HistSlot{};
    for (auto& sh : shards_) {
      if (it->second < sh->hists.size()) sh->hists[it->second] = HistSlot{};
    }
    return HistogramMetric(it->second);
  }
  const auto idx = static_cast<std::uint32_t>(hists_.size());
  hists_.push_back(HistSlot{});
  hist_specs_.push_back(spec);
  hist_keys_.emplace(key, idx);
  return HistogramMetric(idx);
}

std::optional<std::uint64_t> MetricsRegistry::counter_value(
    const std::string& component, const std::string& node,
    const std::string& name, int core) const {
  auto it = counter_keys_.find(key_of(component, node, core, name));
  if (it == counter_keys_.end()) return std::nullopt;
  return counter_total(it->second);
}

std::optional<std::int64_t> MetricsRegistry::gauge_value(
    const std::string& component, const std::string& node,
    const std::string& name, int core) const {
  auto it = gauge_keys_.find(key_of(component, node, core, name));
  if (it == gauge_keys_.end()) return std::nullopt;
  return gauges_[it->second].value;
}

std::optional<std::uint64_t> MetricsRegistry::histogram_count(
    const std::string& component, const std::string& node,
    const std::string& name, int core) const {
  auto it = hist_keys_.find(key_of(component, node, core, name));
  if (it == hist_keys_.end()) return std::nullopt;
  return hist_total(it->second).count;
}

void MetricsRegistry::reset_values() {
  std::fill(counters_.begin(), counters_.end(), 0);
  std::fill(gauges_.begin(), gauges_.end(), GaugeSlot{});
  std::fill(hists_.begin(), hists_.end(), HistSlot{});
  for (auto& sh : shards_) {
    sh->counters.clear();  // lazily regrown on next sharded write
    sh->hists.clear();
  }
}

std::string MetricsRegistry::to_json() const {
  std::string out = "{\"schema\":\"pm2sim-metrics-v1\",\"counters\":[";
  char buf[96];
  bool first = true;
  for (std::size_t i = 0; i < counters_.size(); ++i) {
    if (!first) out += ',';
    first = false;
    out += "\n{";
    append_spec(out, counter_specs_[i]);
    std::snprintf(
        buf, sizeof(buf), ",\"value\":%llu}",
        static_cast<unsigned long long>(
            counter_total(static_cast<std::uint32_t>(i))));
    out += buf;
  }
  out += "\n],\"gauges\":[";
  first = true;
  for (std::size_t i = 0; i < gauges_.size(); ++i) {
    if (!first) out += ',';
    first = false;
    out += "\n{";
    append_spec(out, gauge_specs_[i]);
    std::snprintf(buf, sizeof(buf), ",\"value\":%lld,\"max\":%lld}",
                  static_cast<long long>(gauges_[i].value),
                  static_cast<long long>(gauges_[i].max));
    out += buf;
  }
  out += "\n],\"histograms\":[";
  first = true;
  for (std::size_t i = 0; i < hists_.size(); ++i) {
    if (!first) out += ',';
    first = false;
    out += "\n{";
    append_spec(out, hist_specs_[i]);
    const HistSlot h = hist_total(static_cast<std::uint32_t>(i));
    std::snprintf(buf, sizeof(buf),
                  ",\"count\":%llu,\"sum\":%llu,\"min\":%llu,\"max\":%llu",
                  static_cast<unsigned long long>(h.count),
                  static_cast<unsigned long long>(h.sum),
                  static_cast<unsigned long long>(h.min),
                  static_cast<unsigned long long>(h.max));
    out += buf;
    out += ",\"buckets\":[";
    bool bfirst = true;
    for (int b = 0; b < 64; ++b) {
      if (h.buckets[b] == 0) continue;
      if (!bfirst) out += ',';
      bfirst = false;
      // Bucket 0 holds the value 0; bucket b >= 1 holds [2^(b-1), 2^b).
      const unsigned long long lo = b == 0 ? 0 : 1ull << (b - 1);
      std::snprintf(buf, sizeof(buf), "{\"lo\":%llu,\"n\":%llu}", lo,
                    static_cast<unsigned long long>(h.buckets[b]));
      out += buf;
    }
    out += "]}";
  }
  out += "\n]}\n";
  return out;
}

std::string MetricsRegistry::to_table() const {
  std::size_t width = 0;
  for (const auto& s : counter_specs_) width = std::max(width, display_key(s).size());
  for (const auto& s : gauge_specs_) width = std::max(width, display_key(s).size());
  for (const auto& s : hist_specs_) width = std::max(width, display_key(s).size());

  std::string out;
  char buf[160];
  for (std::size_t i = 0; i < counters_.size(); ++i) {
    std::snprintf(buf, sizeof(buf), "%-*s %20llu\n", static_cast<int>(width),
                  display_key(counter_specs_[i]).c_str(),
                  static_cast<unsigned long long>(
                      counter_total(static_cast<std::uint32_t>(i))));
    out += buf;
  }
  for (std::size_t i = 0; i < gauges_.size(); ++i) {
    std::snprintf(buf, sizeof(buf), "%-*s %20lld  (max %lld)\n",
                  static_cast<int>(width),
                  display_key(gauge_specs_[i]).c_str(),
                  static_cast<long long>(gauges_[i].value),
                  static_cast<long long>(gauges_[i].max));
    out += buf;
  }
  for (std::size_t i = 0; i < hists_.size(); ++i) {
    const HistSlot h = hist_total(static_cast<std::uint32_t>(i));
    const double mean =
        h.count == 0 ? 0.0
                     : static_cast<double>(h.sum) / static_cast<double>(h.count);
    std::snprintf(buf, sizeof(buf),
                  "%-*s %20llu  (mean %.1f, min %llu, max %llu)\n",
                  static_cast<int>(width),
                  display_key(hist_specs_[i]).c_str(),
                  static_cast<unsigned long long>(h.count), mean,
                  static_cast<unsigned long long>(h.min),
                  static_cast<unsigned long long>(h.max));
    out += buf;
  }
  return out;
}

void MetricsRegistry::write_json(const std::string& path) const {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("MetricsRegistry: cannot open " + path);
  f << to_json();
  if (!f) throw std::runtime_error("MetricsRegistry: write failed: " + path);
}

}  // namespace pm2::obs
