#include "obs/trace_log.hpp"

#include <algorithm>
#include <bit>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <tuple>

#include "obs/flow.hpp"
#include "simcore/chrome_trace.hpp"
#include "simcore/engine.hpp"

namespace pm2::obs {

namespace {

std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 1469598103934665603ull;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

constexpr char kMagic[8] = {'P', 'M', '2', 'T', 'R', 'C', '0', '1'};

struct BinHeader {
  char magic[8];
  std::uint32_t version;
  std::uint32_t record_size;
  std::uint32_t ring_count;
  std::uint32_t string_count;
};

struct BinRingHeader {
  std::uint64_t count;
  std::uint64_t first_seq;
  std::uint64_t dropped;
};

}  // namespace

void TraceLog::configure(const Options& opts) {
  stop_drain_thread();
  rings_.clear();
  const int n = opts.rings < 1 ? 1 : opts.rings;
  rings_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    rings_.push_back(std::make_unique<Ring>(opts.capacity));
  }
  overflow_ = opts.overflow;
  engine_ = opts.engine;
  dropped_metric_ =
      MetricsRegistry::global().counter({"obs", "", -1, "trace.dropped"});
  for (auto& slot : slots_) slot.store(nullptr, std::memory_order_relaxed);
  entries_.clear();
  strings_.assign(1, std::string());
}

std::uint16_t TraceLog::intern(std::string_view s) {
  if (s.empty()) return 0;
  const std::uint64_t h = fnv1a(s);
  const std::size_t mask = kInternSlots - 1;
  // Lock-free fast path: probe published entries only.
  for (std::size_t i = h & mask;; i = (i + 1) & mask) {
    const InternEntry* e = slots_[i].load(std::memory_order_acquire);
    if (e == nullptr) break;
    if (e->hash == h && e->str == s) return e->id;
  }
  // First sight (cold): insert under the mutex, re-probing for a racer
  // that published the same string between our probe and the lock.
  std::lock_guard<std::mutex> lock(intern_mu_);
  std::size_t i = h & mask;
  for (;; i = (i + 1) & mask) {
    const InternEntry* e = slots_[i].load(std::memory_order_relaxed);
    if (e == nullptr) break;
    if (e->hash == h && e->str == s) return e->id;
  }
  if (strings_.size() > kMaxInterned) return 0;  // table full: alias to ""
  const auto id = static_cast<std::uint16_t>(strings_.size());
  strings_.emplace_back(s);
  entries_.push_back(InternEntry{std::string(s), h, id});
  slots_[i].store(&entries_.back(), std::memory_order_release);
  return id;
}

void TraceLog::push_overflow(Ring& ring, const sim::TraceRecord& r) {
  // Full. With inline spill and no drain thread attached, the producer is
  // the only writer of this partition's ring, so it may take the consumer
  // side itself -- lossless. With a drain thread (or kDrop), drop + count.
  if (overflow_ == Overflow::kSpill &&
      !drain_running_.load(std::memory_order_acquire)) {
    spill_ring(ring);
    if (ring.ring.try_push(r)) return;
  }
  ring.dropped.fetch_add(1, std::memory_order_relaxed);
  dropped_metric_.inc();
}

void TraceLog::spill_ring(Ring& r) {
  std::lock_guard<std::mutex> lock(r.consume_mu);
  sim::TraceRecord buf[256];
  for (;;) {
    const std::size_t n = r.ring.pop_n(buf, 256);
    if (n == 0) break;
    r.spill.insert(r.spill.end(), buf, buf + n);
  }
}

void TraceLog::drain_now() {
  for (auto& r : rings_) spill_ring(*r);
}

void TraceLog::start_drain_thread(std::chrono::microseconds period) {
  if (drain_thread_.joinable()) return;
  drain_stop_.store(false, std::memory_order_relaxed);
  drain_running_.store(true, std::memory_order_release);
  drain_thread_ = std::thread([this, period] {
    while (!drain_stop_.load(std::memory_order_acquire)) {
      drain_now();
      std::this_thread::sleep_for(period);
    }
  });
}

void TraceLog::stop_drain_thread() {
  if (!drain_thread_.joinable()) return;
  drain_stop_.store(true, std::memory_order_release);
  drain_thread_.join();
  drain_thread_ = std::thread();
  drain_running_.store(false, std::memory_order_release);
  drain_now();
}

std::size_t TraceLog::record_count() {
  drain_now();
  std::size_t n = 0;
  for (auto& r : rings_) {
    std::lock_guard<std::mutex> lock(r->consume_mu);
    n += r->spill.size();
  }
  return n;
}

std::uint64_t TraceLog::dropped() const {
  std::uint64_t n = 0;
  for (const auto& r : rings_) n += r->dropped.load(std::memory_order_relaxed);
  return n;
}

std::uint64_t TraceLog::ring_dropped(int ring) const {
  return rings_[static_cast<std::size_t>(ring)]->dropped.load(
      std::memory_order_relaxed);
}

std::vector<sim::TraceRecord> TraceLog::canonicalize(
    const std::vector<const std::vector<sim::TraceRecord>*>& rings) {
  struct Ref {
    sim::Time emit;
    std::uint32_t ring;
    std::uint32_t idx;
  };
  std::size_t total = 0;
  for (const auto* r : rings) total += r->size();
  std::vector<Ref> refs;
  refs.reserve(total);
  for (std::uint32_t r = 0; r < rings.size(); ++r) {
    const auto& recs = *rings[r];
    for (std::uint32_t i = 0; i < recs.size(); ++i) {
      refs.push_back(Ref{recs[i].emit, r, i});
    }
  }
  // (ring, idx) pairs are unique, so this order is total and deterministic.
  std::sort(refs.begin(), refs.end(), [](const Ref& a, const Ref& b) {
    return std::tie(a.emit, a.ring, a.idx) < std::tie(b.emit, b.ring, b.idx);
  });
  std::vector<sim::TraceRecord> out;
  out.reserve(total);
  for (const Ref& ref : refs) out.push_back((*rings[ref.ring])[ref.idx]);
  return out;
}

std::vector<sim::TraceRecord> TraceLog::canonical_records() {
  drain_now();
  std::vector<std::unique_lock<std::mutex>> locks;
  std::vector<const std::vector<sim::TraceRecord>*> spills;
  locks.reserve(rings_.size());
  spills.reserve(rings_.size());
  for (auto& r : rings_) {
    locks.emplace_back(r->consume_mu);
    spills.push_back(&r->spill);
  }
  return canonicalize(spills);
}

std::string TraceLog::records_to_json(
    const std::vector<sim::TraceRecord>& canonical,
    const std::vector<std::string>& strings) {
  auto str = [&strings](std::uint16_t id) {
    return id < strings.size() ? std::string_view(strings[id])
                               : std::string_view();
  };
  std::string out = "{\"traceEvents\":[\n";
  bool first = true;
  // Flow-arrow synthesis state: stages already seen per flow id, replayed
  // in canonical order so "first stamp" resolves exactly as the legacy
  // inline emission did.
  std::unordered_map<std::uint64_t, unsigned> stages_seen;
  for (const sim::TraceRecord& r : canonical) {
    sim::TraceEventView v;
    if (r.phase == sim::kFlowStampPhase) {
      const int stage = static_cast<int>(r.dur);
      if (stage < 0 || stage >= kFlowStageCount) continue;
      unsigned& mask = stages_seen[r.id];
      const bool first_stamp = (mask & (1u << stage)) == 0;
      mask |= 1u << stage;
      if (!first_stamp) continue;
      switch (static_cast<FlowStage>(stage)) {
        case FlowStage::kNicPost: v.phase = 's'; break;
        case FlowStage::kDeliver: v.phase = 't'; break;
        case FlowStage::kComplete: v.phase = 'f'; break;
        default: continue;
      }
      v.name = "msg";
      v.category = "flow";
      v.ts = r.ts;
      v.flow_id = r.id;
    } else {
      v.phase = static_cast<char>(r.phase);
      v.name = str(r.name);
      if (v.phase == 'M') {
        v.meta_kind = str(r.cat);
      } else {
        v.category = str(r.cat);
      }
      v.ts = r.ts;
      v.dur = r.dur;
      if (v.phase == 'C') {
        v.value = std::bit_cast<double>(r.id);
      } else {
        v.flow_id = r.id;
      }
    }
    v.pid = r.pid;
    v.tid = r.tid;
    if (!first) out += ",\n";
    first = false;
    sim::append_trace_event_json(out, v);
  }
  out += "\n]}\n";
  return out;
}

std::string TraceLog::to_json() {
  const std::vector<sim::TraceRecord> recs = canonical_records();
  std::lock_guard<std::mutex> lock(intern_mu_);
  return records_to_json(recs, strings_);
}

void TraceLog::write_binary(const std::string& path) {
  drain_now();
  std::ofstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("TraceLog: cannot open " + path);

  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(rings_.size());
  for (auto& r : rings_) locks.emplace_back(r->consume_mu);
  std::lock_guard<std::mutex> slock(intern_mu_);

  BinHeader h{};
  std::memcpy(h.magic, kMagic, sizeof(kMagic));
  h.version = 1;
  h.record_size = sizeof(sim::TraceRecord);
  h.ring_count = static_cast<std::uint32_t>(rings_.size());
  h.string_count = static_cast<std::uint32_t>(strings_.size());
  f.write(reinterpret_cast<const char*>(&h), sizeof(h));

  for (const auto& r : rings_) {
    BinRingHeader rh{r->spill.size(), 0,
                     r->dropped.load(std::memory_order_relaxed)};
    f.write(reinterpret_cast<const char*>(&rh), sizeof(rh));
  }
  for (const auto& r : rings_) {
    if (r->spill.empty()) continue;
    f.write(reinterpret_cast<const char*>(r->spill.data()),
            static_cast<std::streamsize>(r->spill.size() *
                                         sizeof(sim::TraceRecord)));
  }
  for (const std::string& s : strings_) {
    const auto len = static_cast<std::uint32_t>(s.size());
    f.write(reinterpret_cast<const char*>(&len), sizeof(len));
    if (len != 0) f.write(s.data(), static_cast<std::streamsize>(s.size()));
  }
  if (!f) throw std::runtime_error("TraceLog: write failed: " + path);
}

TraceLog::Data TraceLog::read_binary(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("TraceLog: cannot open " + path);
  auto fail = [&path](const char* what) -> std::runtime_error {
    return std::runtime_error("TraceLog: " + path + ": " + what);
  };

  BinHeader h{};
  f.read(reinterpret_cast<char*>(&h), sizeof(h));
  if (!f) throw fail("truncated header");
  if (std::memcmp(h.magic, kMagic, sizeof(kMagic)) != 0)
    throw fail("not a pm2sim trace log (bad magic)");
  if (h.version != 1) throw fail("unsupported version");
  if (h.record_size != sizeof(sim::TraceRecord))
    throw fail("record size mismatch");

  Data data;
  std::vector<BinRingHeader> ring_headers(h.ring_count);
  f.read(reinterpret_cast<char*>(ring_headers.data()),
         static_cast<std::streamsize>(h.ring_count * sizeof(BinRingHeader)));
  if (!f) throw fail("truncated ring headers");

  data.rings.resize(h.ring_count);
  data.dropped.resize(h.ring_count);
  for (std::uint32_t r = 0; r < h.ring_count; ++r) {
    data.dropped[r] = ring_headers[r].dropped;
    if (ring_headers[r].count == 0) continue;
    data.rings[r].resize(ring_headers[r].count);
    f.read(reinterpret_cast<char*>(data.rings[r].data()),
           static_cast<std::streamsize>(ring_headers[r].count *
                                        sizeof(sim::TraceRecord)));
    if (!f) throw fail("truncated records");
  }
  data.strings.resize(h.string_count);
  for (std::uint32_t i = 0; i < h.string_count; ++i) {
    std::uint32_t len = 0;
    f.read(reinterpret_cast<char*>(&len), sizeof(len));
    if (!f) throw fail("truncated string table");
    if (len > (1u << 20)) throw fail("oversized string");
    if (len == 0) continue;
    data.strings[i].resize(len);
    f.read(data.strings[i].data(), static_cast<std::streamsize>(len));
    if (!f) throw fail("truncated string table");
  }
  return data;
}

std::string TraceLog::data_to_json(const Data& data) {
  std::vector<const std::vector<sim::TraceRecord>*> rings;
  rings.reserve(data.rings.size());
  for (const auto& r : data.rings) rings.push_back(&r);
  return records_to_json(canonicalize(rings), data.strings);
}

}  // namespace pm2::obs
