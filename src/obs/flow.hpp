// pm2sim -- message-lifecycle flow tracing.
//
// Each nmad request carries a flow id; the Core stamps the flow at every
// lifecycle stage it passes through:
//
//   kPost     isend accepted the message (collect layer, sender)
//   kArrange  the strategy arranged it into a staged packet (optimization)
//   kNicPost  the driver handed the packet to the NIC (transfer)
//   kWireDone the wire absorbed the last chunk (sender buffer reusable)
//   kDeliver  the last chunk landed in the receive buffer (receiver)
//   kComplete the receive request completed (notification done)
//
// Because every node shares one virtual clock, sender- and receiver-side
// stamps are directly comparable: the tracer derives a per-stage latency
// breakdown (pack / submit / wire / unpack / notify SampleSets) whose
// segments telescope exactly to the end-to-end latency, and optionally
// emits ChromeTrace flow events (ph "s"/"t"/"f") so Perfetto draws
// send -> recv arrows across node tracks.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/trace_log.hpp"
#include "simcore/stats.hpp"
#include "simcore/time.hpp"

namespace pm2::sim {
class ChromeTrace;
}

namespace pm2::obs {

enum class FlowStage : int {
  kPost = 0,
  kArrange = 1,
  kNicPost = 2,
  kWireDone = 3,
  kDeliver = 4,
  kComplete = 5,
};

inline constexpr int kFlowStageCount = 6;

const char* flow_stage_name(FlowStage stage);

/// Name of the latency segment ending at stage @p i (1..5):
/// pack, submit, wire, unpack, notify.
const char* flow_segment_name(int i);

class FlowTracer {
 public:
  FlowTracer() = default;
  FlowTracer(const FlowTracer&) = delete;
  FlowTracer& operator=(const FlowTracer&) = delete;

  /// Attach a ChromeTrace sink for flow events (nullptr detaches). Flow
  /// events bind to the slices already recorded on (pid=node, tid=core).
  void set_trace(sim::ChromeTrace* trace) { trace_ = trace; }

  /// Route stamps into the binary telemetry ring instead (nullptr
  /// detaches): stamp() becomes one lock-free record push -- no mutex, no
  /// map insert -- and the aggregation below is rebuilt lazily from the
  /// ring's canonical record order on first read (so call the read/export
  /// methods after the run, as before). ChromeTrace flow arrows are then
  /// synthesized by the ring's JSON conversion, not emitted here.
  void set_ring(TraceLog* log) { log_ = log; }

  /// Deterministic flow id both sides can compute without a wire-format
  /// change: the (src, dst, per-gate message seq) triple is unique per
  /// message and known to sender (at isend) and receiver (at match).
  static std::uint64_t flow_id(int src_node, int dst_node,
                               std::uint32_t msg_seq) {
    return (static_cast<std::uint64_t>(static_cast<std::uint16_t>(src_node))
            << 48) |
           (static_cast<std::uint64_t>(static_cast<std::uint16_t>(dst_node))
            << 32) |
           msg_seq;
  }

  /// Record that flow @p id reached @p stage at virtual time @p t on
  /// (node, core). Multi-chunk messages stamp a stage repeatedly; the last
  /// stamp wins (stages mean "the *message* finished this stage"), while
  /// the ChromeTrace flow event is emitted on the first stamp only.
  /// Thread-safe: partitions on different host threads stamp concurrently
  /// (each (id, stage) still comes from one partition, so last-stamp-wins
  /// stays deterministic). The read/export methods are not locked -- call
  /// them after the run, from one thread.
  void stamp(std::uint64_t id, FlowStage stage, sim::Time t, int node,
             int core) {
    if (log_ != nullptr) [[likely]] {
      // Hot path, inline: one lock-free ring push; aggregation and
      // flow-arrow emission are deferred to the canonical replay on read.
      sim::TraceRecord r;
      r.ts = t;
      r.emit = t;  // stamp sites pass the partition clock as @p t
      r.dur = static_cast<std::int64_t>(stage);
      r.id = id;
      r.pid = node;
      r.tid = core;
      r.phase = sim::kFlowStampPhase;
      log_->push_prestamped(r);
      return;
    }
    stamp_legacy(id, stage, t, node, core);
  }

  struct Flow {
    std::uint64_t id = 0;
    sim::Time ts[kFlowStageCount] = {};
    bool seen[kFlowStageCount] = {};
    bool complete() const {
      for (bool b : seen)
        if (!b) return false;
      return true;
    }
  };

  std::size_t flow_count() const;
  std::size_t completed_count() const;
  /// First-stamp order. Deterministic in single-partition worlds and in
  /// ring mode (canonical record order); in partitioned legacy mode it
  /// depends on host-thread interleaving, which is why the statistics
  /// below iterate in canonical (post-time, id) order instead.
  const std::vector<std::uint64_t>& ids() const;
  /// nullptr if @p id was never stamped.
  const Flow* find(std::uint64_t id) const;

  struct Segment {
    std::string name;
    sim::SampleSet us;  ///< segment latency in microseconds
  };

  /// Per-stage latency breakdown over completed flows. Segments telescope:
  /// their sum equals end_to_end_us() flow by flow (up to fp rounding).
  std::vector<Segment> breakdown() const;

  /// kPost -> kComplete latency (microseconds) over completed flows.
  sim::SampleSet end_to_end_us() const;

  /// {"schema":...,"flows":N,"completed":N,"stages":[{name,count,p50,...}]}.
  std::string to_json() const;

  /// Aligned human-readable breakdown table.
  std::string to_table() const;

 private:
  /// Flow ids sorted by (kPost stamp time, id): a virtual-time property,
  /// so aggregate statistics accumulate in the same order -- and float the
  /// same way -- no matter how many host threads ran the simulation.
  std::vector<std::uint64_t> canonical_order() const;

  /// Legacy mode: locked map insert plus inline ChromeTrace arrow emission.
  void stamp_legacy(std::uint64_t id, FlowStage stage, sim::Time t, int node,
                    int core);

  /// Ring mode: rebuild flows_/order_ from the ring's canonical record
  /// order if records arrived since the last ingest. No-op in legacy mode.
  void ensure_ingested() const;

  std::mutex mu_;  ///< guards flows_/order_/trace_ during legacy stamp()
  sim::ChromeTrace* trace_ = nullptr;
  TraceLog* log_ = nullptr;
  mutable std::unordered_map<std::uint64_t, Flow> flows_;
  mutable std::vector<std::uint64_t> order_;
  mutable std::size_t ingested_ = static_cast<std::size_t>(-1);
};

}  // namespace pm2::obs
