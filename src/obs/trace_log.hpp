// pm2sim -- the binary telemetry sink: per-partition trace rings, a binary
// log format, and the canonical merge back to ChromeTrace JSON.
//
// TraceLog implements sim::TraceRecordSink over one TraceRing per engine
// partition. The producer path (push) is the partition's host worker: it
// stamps the record with the partition clock (`emit`), routes by
// sim::tls_partition and does one lock-free SPSC ring write -- no mutex, no
// formatting, no allocation. Strings cross the boundary as u16 ids from a
// lock-free-read intern table (insert-locked, first sight of a string only).
//
// Drain side -- three ways to empty the rings, all serialized per ring by a
// consumer mutex:
//   * inline spill (default): when a producer finds its own ring full it
//     drains it into that ring's spill vector itself. Lossless and
//     deterministic -- the spill happens at the same virtual-time point in
//     every run -- and safe because within a partition there is exactly one
//     producer thread at a time.
//   * a host drain thread (start_drain_thread): real concurrency for
//     long-running sweeps. While it runs, producers never self-drain (that
//     would make two consumers); a full ring then *drops* the record and
//     counts it.
//   * drain_now(): end-of-run (Cluster::run) and read-side calls.
//
// Overflow::kDrop makes the full-ring case always drop-with-counter
// (`obs.trace.dropped` on the MetricsRegistry plus a per-ring count): at a
// fixed capacity the drop set is a pure virtual-time property, so it is
// byte-for-byte reproducible across runs and worker counts.
//
// The canonical order that makes every export byte-stable at any worker
// count: records sort by (emit, ring, seq) -- `emit` is partition-clock
// virtual time, ring is the partition id, seq the push order within the
// ring, all host-schedule-independent. For a single-partition world this
// order *is* append order, which is how the converted JSON byte-matches the
// legacy direct-JSON path there.
//
// write_binary() spills everything to a compact log (48 B/record + string
// table + per-ring sequence headers); tools/trace2json converts offline via
// read_binary()/data_to_json(), reusing the exact JSON emitter ChromeTrace
// uses, so online to_json() and the offline converter agree byte-for-byte.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace_ring.hpp"
#include "simcore/engine.hpp"
#include "simcore/trace_sink.hpp"

namespace pm2::obs {

class TraceLog final : public sim::TraceRecordSink {
 public:
  enum class Overflow {
    kSpill,  ///< producer self-drains its full ring (lossless); drops only
             ///< while a drain thread owns the consumer side
    kDrop,   ///< full ring always drops-with-counter (deterministic drops)
  };

  struct Options {
    int rings = 1;                 ///< one per engine partition
    std::size_t capacity = 4096;   ///< records per ring (rounded up to 2^k)
    Overflow overflow = Overflow::kSpill;
    const sim::Engine* engine = nullptr;  ///< stamps `emit`; may be null
  };

  TraceLog() { configure(Options{}); }
  explicit TraceLog(const Options& opts) { configure(opts); }
  ~TraceLog() override { stop_drain_thread(); }
  TraceLog(const TraceLog&) = delete;
  TraceLog& operator=(const TraceLog&) = delete;

  /// (Re)build the rings. Not callable while producers or a drain thread
  /// are active; discards previously captured records.
  void configure(const Options& opts);

  // --- sim::TraceRecordSink -----------------------------------------------

  std::uint16_t intern(std::string_view s) override;

  /// The producer hot path, inline: route by partition, stamp the partition
  /// clock, one SPSC ring write. The full-ring case is the out-of-line
  /// push_overflow (self-spill or drop-with-counter).
  void push(sim::TraceRecord r) override {
    r.emit = engine_ != nullptr ? engine_->now() : 0;
    push_prestamped(r);
  }

  /// push() for producers that already hold the partition clock: @p r.emit
  /// must be set to the partition's current virtual time. Skips the
  /// engine->now() lookup (flow stamps pass their stamp time, which *is*
  /// the partition clock at the stamp site).
  void push_prestamped(const sim::TraceRecord& r) {
    auto p = static_cast<std::size_t>(sim::tls_partition);
    if (p >= rings_.size()) p = 0;
    Ring& ring = *rings_[p];
    if (ring.ring.try_push(r)) [[likely]] return;
    push_overflow(ring, r);
  }

  std::size_t record_count() override;
  std::string to_json() override;

  // --- drain ----------------------------------------------------------------

  /// Drain every ring into its spill store (any thread; serialized per ring).
  void drain_now();

  /// Start a host thread draining all rings every @p period. While it runs,
  /// producers drop on a full ring instead of self-draining.
  void start_drain_thread(
      std::chrono::microseconds period = std::chrono::microseconds(200));

  /// Join the drain thread (if any) and run a final drain.
  void stop_drain_thread();

  bool drain_thread_running() const {
    return drain_running_.load(std::memory_order_acquire);
  }

  // --- results --------------------------------------------------------------

  std::size_t ring_count() const { return rings_.size(); }

  /// Records dropped on full rings so far (sum over rings).
  std::uint64_t dropped() const;
  std::uint64_t ring_dropped(int ring) const;

  /// Drain, then return every record merged in canonical (emit, ring, seq)
  /// order -- the byte-stable export order.
  std::vector<sim::TraceRecord> canonical_records();

  /// Everything needed to interpret a log outside this process.
  struct Data {
    std::vector<std::vector<sim::TraceRecord>> rings;
    std::vector<std::string> strings;
    std::vector<std::uint64_t> dropped;
    std::size_t record_count() const {
      std::size_t n = 0;
      for (const auto& r : rings) n += r.size();
      return n;
    }
  };

  /// Spill everything and write the compact binary log; throws on I/O
  /// failure. Layout: header, per-ring sequence headers (count, first seq,
  /// dropped), raw records per ring, string table.
  void write_binary(const std::string& path);

  /// Parse a binary log; throws std::runtime_error on malformed input.
  static Data read_binary(const std::string& path);

  /// Canonical-merge @p data and render ChromeTrace JSON -- byte-identical
  /// to what to_json() produced in the process that wrote the log.
  static std::string data_to_json(const Data& data);

 private:
  struct Ring {
    explicit Ring(std::size_t cap) : ring(cap) {}
    TraceRing ring;
    std::mutex consume_mu;                  ///< serializes pop_n callers
    std::vector<sim::TraceRecord> spill;    ///< drained records, push order
    std::atomic<std::uint64_t> dropped{0};
  };

  struct InternEntry {
    std::string str;
    std::uint64_t hash = 0;
    std::uint16_t id = 0;
  };

  static constexpr std::size_t kInternSlots = 8192;  // power of two
  static constexpr std::size_t kMaxInterned = kInternSlots / 2;

  void push_overflow(Ring& ring, const sim::TraceRecord& r);
  void spill_ring(Ring& r);
  static std::vector<sim::TraceRecord> canonicalize(
      const std::vector<const std::vector<sim::TraceRecord>*>& rings);
  static std::string records_to_json(
      const std::vector<sim::TraceRecord>& canonical,
      const std::vector<std::string>& strings);

  Overflow overflow_ = Overflow::kSpill;
  const sim::Engine* engine_ = nullptr;
  std::vector<std::unique_ptr<Ring>> rings_;
  Counter dropped_metric_;  ///< obs.trace.dropped

  // Intern table: lock-free probing reads, mutexed inserts.
  std::array<std::atomic<const InternEntry*>, kInternSlots> slots_{};
  std::mutex intern_mu_;
  std::deque<InternEntry> entries_;
  std::vector<std::string> strings_{std::string()};  // id -> string; [0]=""

  std::thread drain_thread_;
  std::atomic<bool> drain_running_{false};
  std::atomic<bool> drain_stop_{false};
};

}  // namespace pm2::obs
