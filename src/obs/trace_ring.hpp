// pm2sim -- lock-free SPSC ring buffer of binary trace records.
//
// One ring per engine partition: the single producer is whichever host
// worker is animating that partition (the engine pins partition p to worker
// p % workers, and within a partition events execute sequentially, so there
// is never more than one concurrent producer). The single consumer is the
// drain side of obs::TraceLog -- an optional host drain thread, or the
// producer itself between windows (inline spill), serialized by a per-ring
// consumer mutex at that layer.
//
// The classic head/tail idiom: power-of-two capacity, monotonically
// increasing 64-bit positions masked on access, producer publishes with a
// release store of head after writing the slot, consumer publishes space
// with a release store of tail after reading. The producer keeps a cached
// copy of tail so the common-case try_push touches no shared cache line
// except its own head; head and tail live on separate cache lines to avoid
// false sharing between producer and consumer cores.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>

#include "simcore/trace_sink.hpp"

namespace pm2::obs {

class TraceRing {
 public:
  /// @p capacity is rounded up to a power of two (minimum 2).
  explicit TraceRing(std::size_t capacity) {
    std::size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    mask_ = cap - 1;
    slots_ = std::make_unique_for_overwrite<sim::TraceRecord[]>(cap);
  }

  std::size_t capacity() const { return mask_ + 1; }

  /// Producer side. Returns false (and writes nothing) when the ring is
  /// full. ~few ns: one relaxed load of the private head, a cached-tail
  /// check (acquire reload only when the cache says full), a 48-byte store
  /// and a release store of head.
  bool try_push(const sim::TraceRecord& r) {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    if (head - tail_cache_ > mask_) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      if (head - tail_cache_ > mask_) return false;
    }
    slots_[head & mask_] = r;
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side: pop at most @p max records into @p out, returning the
  /// number popped. At most one consumer may call this at a time (TraceLog
  /// serializes with a per-ring mutex).
  std::size_t pop_n(sim::TraceRecord* out, std::size_t max) {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    std::size_t n = static_cast<std::size_t>(head - tail);
    if (n > max) n = max;
    for (std::size_t i = 0; i < n; ++i) out[i] = slots_[(tail + i) & mask_];
    tail_.store(tail + n, std::memory_order_release);
    return n;
  }

  /// Records currently buffered (racy snapshot; exact when quiescent).
  std::size_t size() const {
    return static_cast<std::size_t>(head_.load(std::memory_order_acquire) -
                                    tail_.load(std::memory_order_acquire));
  }

  bool empty() const { return size() == 0; }

 private:
  std::unique_ptr<sim::TraceRecord[]> slots_;
  std::size_t mask_ = 0;
  // Producer-owned line: head plus the producer's cached view of tail.
  alignas(64) std::atomic<std::uint64_t> head_{0};
  std::uint64_t tail_cache_ = 0;
  // Consumer-owned line.
  alignas(64) std::atomic<std::uint64_t> tail_{0};
};

}  // namespace pm2::obs
