// pm2sim -- combined per-run observability report.
//
// One JSON document bundling the metrics registry dump with (optionally)
// the flow tracer's per-stage latency breakdown and the binary telemetry
// summary; this is what the figure benches write for --metrics-out=FILE.
#pragma once

#include <string>

namespace pm2::obs {

class MetricsRegistry;
class FlowTracer;
class TraceLog;

/// {"schema":"pm2sim-report-v1","metrics":{...},"flow":{...},
///  "trace":{"records":N,"dropped":N}}; the "flow" / "trace" members are
/// omitted when the corresponding pointer is null.
std::string report_json(const MetricsRegistry& registry,
                        const FlowTracer* flow, TraceLog* trace = nullptr);

/// Write report_json() to @p path; throws on I/O failure.
void write_report(const std::string& path, const MetricsRegistry& registry,
                  const FlowTracer* flow, TraceLog* trace = nullptr);

}  // namespace pm2::obs
