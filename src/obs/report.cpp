#include "obs/report.hpp"

#include <cstdio>
#include <fstream>
#include <stdexcept>

#include "obs/flow.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_log.hpp"

namespace pm2::obs {

namespace {
/// Strip one trailing newline so the fragment nests cleanly.
std::string chomp(std::string s) {
  if (!s.empty() && s.back() == '\n') s.pop_back();
  return s;
}
}  // namespace

std::string report_json(const MetricsRegistry& registry,
                        const FlowTracer* flow, TraceLog* trace) {
  std::string out = "{\"schema\":\"pm2sim-report-v1\",\"metrics\":";
  out += chomp(registry.to_json());
  if (flow != nullptr) {
    out += ",\"flow\":";
    out += chomp(flow->to_json());
  }
  if (trace != nullptr) {
    char buf[96];
    std::snprintf(buf, sizeof(buf), ",\"trace\":{\"records\":%zu,\"dropped\":%llu}",
                  trace->record_count(),
                  static_cast<unsigned long long>(trace->dropped()));
    out += buf;
  }
  out += "}\n";
  return out;
}

void write_report(const std::string& path, const MetricsRegistry& registry,
                  const FlowTracer* flow, TraceLog* trace) {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("obs: cannot open " + path);
  f << report_json(registry, flow, trace);
  if (!f) throw std::runtime_error("obs: write failed: " + path);
}

}  // namespace pm2::obs
