#include "obs/report.hpp"

#include <fstream>
#include <stdexcept>

#include "obs/flow.hpp"
#include "obs/metrics.hpp"

namespace pm2::obs {

namespace {
/// Strip one trailing newline so the fragment nests cleanly.
std::string chomp(std::string s) {
  if (!s.empty() && s.back() == '\n') s.pop_back();
  return s;
}
}  // namespace

std::string report_json(const MetricsRegistry& registry,
                        const FlowTracer* flow) {
  std::string out = "{\"schema\":\"pm2sim-report-v1\",\"metrics\":";
  out += chomp(registry.to_json());
  if (flow != nullptr) {
    out += ",\"flow\":";
    out += chomp(flow->to_json());
  }
  out += "}\n";
  return out;
}

void write_report(const std::string& path, const MetricsRegistry& registry,
                  const FlowTracer* flow) {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("obs: cannot open " + path);
  f << report_json(registry, flow);
  if (!f) throw std::runtime_error("obs: write failed: " + path);
}

}  // namespace pm2::obs
