#include "obs/flow.hpp"

#include <algorithm>
#include <cstdio>

#include "obs/trace_log.hpp"
#include "simcore/chrome_trace.hpp"

namespace pm2::obs {

const char* flow_stage_name(FlowStage stage) {
  switch (stage) {
    case FlowStage::kPost: return "post";
    case FlowStage::kArrange: return "arrange";
    case FlowStage::kNicPost: return "nic_post";
    case FlowStage::kWireDone: return "wire_done";
    case FlowStage::kDeliver: return "deliver";
    case FlowStage::kComplete: return "complete";
  }
  return "?";
}

const char* flow_segment_name(int i) {
  switch (i) {
    case 1: return "pack";    // post -> arrange: collect-list dwell
    case 2: return "submit";  // arrange -> nic_post: driver queue dwell
    case 3: return "wire";    // nic_post -> wire_done: DMA + serialization
    case 4: return "unpack";  // wire_done -> deliver: flight + rx copy-out
    case 5: return "notify";  // deliver -> complete: completion signalling
  }
  return "?";
}

void FlowTracer::stamp_legacy(std::uint64_t id, FlowStage stage, sim::Time t,
                              int node, int core) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, fresh] = flows_.try_emplace(id);
  if (fresh) {
    it->second.id = id;
    order_.push_back(id);
  }
  Flow& f = it->second;
  const int i = static_cast<int>(stage);
  const bool first = !f.seen[i];
  f.seen[i] = true;
  f.ts[i] = t;  // last stamp wins (multi-chunk messages)
  if (trace_ != nullptr && first) {
    // One arrow per message: starts where the sender's NIC takes the
    // packet, steps at delivery into the receive buffer, finishes at
    // completion notification -- all bindable to existing thread slices.
    switch (stage) {
      case FlowStage::kNicPost:
        trace_->flow_begin("msg", "flow", node, core, t, id);
        break;
      case FlowStage::kDeliver:
        trace_->flow_step("msg", "flow", node, core, t, id);
        break;
      case FlowStage::kComplete:
        trace_->flow_end("msg", "flow", node, core, t, id);
        break;
      default:
        break;
    }
  }
}

void FlowTracer::ensure_ingested() const {
  if (log_ == nullptr) return;
  const std::size_t n = log_->record_count();
  if (n == ingested_) return;
  flows_.clear();
  order_.clear();
  for (const sim::TraceRecord& r : log_->canonical_records()) {
    if (r.phase != sim::kFlowStampPhase) continue;
    const int i = static_cast<int>(r.dur);
    if (i < 0 || i >= kFlowStageCount) continue;
    auto [it, fresh] = flows_.try_emplace(r.id);
    if (fresh) {
      it->second.id = r.id;
      order_.push_back(r.id);
    }
    it->second.seen[i] = true;
    it->second.ts[i] = r.ts;  // last stamp in canonical order wins
  }
  ingested_ = n;
}

std::size_t FlowTracer::flow_count() const {
  ensure_ingested();
  return order_.size();
}

const std::vector<std::uint64_t>& FlowTracer::ids() const {
  ensure_ingested();
  return order_;
}

std::size_t FlowTracer::completed_count() const {
  ensure_ingested();
  std::size_t n = 0;
  for (std::uint64_t id : order_) {
    if (flows_.at(id).complete()) ++n;
  }
  return n;
}

const FlowTracer::Flow* FlowTracer::find(std::uint64_t id) const {
  ensure_ingested();
  auto it = flows_.find(id);
  return it == flows_.end() ? nullptr : &it->second;
}

std::vector<std::uint64_t> FlowTracer::canonical_order() const {
  ensure_ingested();
  std::vector<std::uint64_t> ids = order_;
  std::sort(ids.begin(), ids.end(),
            [this](std::uint64_t a, std::uint64_t b) {
              const Flow& fa = flows_.at(a);
              const Flow& fb = flows_.at(b);
              const int post = static_cast<int>(FlowStage::kPost);
              const sim::Time ta =
                  fa.seen[post] ? fa.ts[post] : sim::kTimeInfinity;
              const sim::Time tb =
                  fb.seen[post] ? fb.ts[post] : sim::kTimeInfinity;
              if (ta != tb) return ta < tb;
              return a < b;
            });
  return ids;
}

std::vector<FlowTracer::Segment> FlowTracer::breakdown() const {
  std::vector<Segment> segs;
  segs.reserve(kFlowStageCount - 1);
  for (int i = 1; i < kFlowStageCount; ++i) {
    segs.push_back(Segment{flow_segment_name(i), {}});
  }
  for (std::uint64_t id : canonical_order()) {
    const Flow& f = flows_.at(id);
    if (!f.complete()) continue;
    for (int i = 1; i < kFlowStageCount; ++i) {
      segs[static_cast<std::size_t>(i - 1)].us.add(
          sim::to_us(f.ts[i] - f.ts[i - 1]));
    }
  }
  return segs;
}

sim::SampleSet FlowTracer::end_to_end_us() const {
  sim::SampleSet s;
  for (std::uint64_t id : canonical_order()) {
    const Flow& f = flows_.at(id);
    if (!f.complete()) continue;
    s.add(sim::to_us(f.ts[kFlowStageCount - 1] - f.ts[0]));
  }
  return s;
}

std::string FlowTracer::to_json() const {
  std::string out = "{\"schema\":\"pm2sim-flow-v1\"";
  char buf[192];
  std::snprintf(buf, sizeof(buf), ",\"flows\":%zu,\"completed\":%zu",
                flow_count(), completed_count());
  out += buf;
  out += ",\"stages\":[";
  bool first = true;
  auto emit = [&](const std::string& name, const sim::SampleSet& s) {
    if (!first) out += ',';
    first = false;
    std::snprintf(buf, sizeof(buf),
                  "\n{\"name\":\"%s\",\"count\":%zu,\"mean_us\":%.4f,"
                  "\"p50_us\":%.4f,\"p90_us\":%.4f,\"p99_us\":%.4f,"
                  "\"min_us\":%.4f,\"max_us\":%.4f}",
                  name.c_str(), s.count(), s.count() ? s.mean() : 0.0,
                  s.count() ? s.percentile(50) : 0.0,
                  s.count() ? s.percentile(90) : 0.0,
                  s.count() ? s.percentile(99) : 0.0,
                  s.count() ? s.min() : 0.0, s.count() ? s.max() : 0.0);
    out += buf;
  };
  for (const Segment& seg : breakdown()) emit(seg.name, seg.us);
  emit("end_to_end", end_to_end_us());
  out += "\n]}\n";
  return out;
}

std::string FlowTracer::to_table() const {
  std::string out;
  char buf[160];
  std::snprintf(buf, sizeof(buf), "flows: %zu (%zu completed)\n", flow_count(),
                completed_count());
  out += buf;
  auto row = [&](const std::string& name, const sim::SampleSet& s) {
    std::snprintf(buf, sizeof(buf),
                  "%-12s n=%-6zu mean=%9.3f us  p50=%9.3f  p99=%9.3f\n",
                  name.c_str(), s.count(), s.count() ? s.mean() : 0.0,
                  s.count() ? s.percentile(50) : 0.0,
                  s.count() ? s.percentile(99) : 0.0);
    out += buf;
  };
  for (const Segment& seg : breakdown()) row(seg.name, seg.us);
  row("end_to_end", end_to_end_us());
  return out;
}

}  // namespace pm2::obs
