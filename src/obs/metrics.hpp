// pm2sim -- process-global metrics registry (the paper's measurement layer).
//
// Every quantity the paper tabulates -- lock acquisitions/contention,
// per-core context switches, PIOMan poll counts, NIC byte counters -- is
// registered here once at component construction and updated through cheap
// handles. The hot-path contract:
//
//   * with a sink attached (registry enabled): one branch + one array store;
//   * with no sink: one branch.
//
// Handles are small indices into flat arrays owned by the registry; no
// allocation happens after registration. Instruments are keyed by
// (component, node, core, name); re-registering an existing key returns the
// same slot *zeroed*, so sequentially-constructed worlds (one Cluster per
// benchmark rep) each start from a clean count without growing the store.
//
// The registry is never consulted for simulation decisions and instruments
// are host-side only (no virtual-time charges), so enabling it cannot
// perturb virtual-time results.
// With the partitioned engine, events of different partitions execute on
// different host threads concurrently. Counters and histograms are therefore
// *sharded*: shard 0 is the original flat arrays, and each additional
// partition writes a private shard selected through sim::tls_partition --
// still one branch + one array store on the hot path, with no atomics and no
// false sharing. Every read path (value(), lookups, to_json, to_table) sums
// the shards, so reports are identical to the unsharded registry. Gauges are
// not sharded: every in-tree gauge has a single owning component, which
// lives in exactly one partition.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "simcore/partition.hpp"

namespace pm2::obs {

/// Identity of one instrument. `node` is the machine name ("node0"); empty
/// means process-wide. `core` is -1 unless the instrument is core-scoped.
struct MetricSpec {
  std::string component;
  std::string node;
  int core = -1;
  std::string name;
};

class Counter;
class Gauge;
class HistogramMetric;

class MetricsRegistry {
 public:
  /// The process-global instance (the simulator is single-threaded).
  static MetricsRegistry& global();

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The sink switch: instruments store only while enabled.
  bool enabled() const { return enabled_; }
  void set_enabled(bool on) { enabled_ = on; }

  /// Size the write shards for @p n engine partitions (shard 0 is the
  /// primary store; partitions 1..n-1 get private shards). Never shrinks,
  /// so stale partition ids stay in range between worlds; shard contents
  /// are zeroed by re-registration and reset_values() like the primary.
  void set_shards(int n);

  /// Register (or re-acquire, zeroing the slot) an instrument.
  Counter counter(const MetricSpec& spec);
  Gauge gauge(const MetricSpec& spec);
  HistogramMetric histogram(const MetricSpec& spec);

  // --- lookups (tests, reports) -------------------------------------------

  std::optional<std::uint64_t> counter_value(const std::string& component,
                                             const std::string& node,
                                             const std::string& name,
                                             int core = -1) const;
  std::optional<std::int64_t> gauge_value(const std::string& component,
                                          const std::string& node,
                                          const std::string& name,
                                          int core = -1) const;
  /// Sample count of a histogram (nullopt if not registered).
  std::optional<std::uint64_t> histogram_count(const std::string& component,
                                               const std::string& node,
                                               const std::string& name,
                                               int core = -1) const;

  std::size_t num_counters() const { return counters_.size(); }
  std::size_t num_gauges() const { return gauges_.size(); }
  std::size_t num_histograms() const { return hists_.size(); }

  /// Zero every value (registrations survive).
  void reset_values();

  /// Full dump: {"counters":[...],"gauges":[...],"histograms":[...]}.
  std::string to_json() const;

  /// Human-readable aligned table (one instrument per line).
  std::string to_table() const;

  /// Write to_json() to @p path; throws on I/O failure.
  void write_json(const std::string& path) const;

 private:
  friend class Counter;
  friend class Gauge;
  friend class HistogramMetric;

  struct GaugeSlot {
    std::int64_t value = 0;
    std::int64_t max = 0;
  };
  /// Power-of-two buckets: bucket 0 holds value 0, bucket i >= 1 holds
  /// [2^(i-1), 2^i).
  struct HistSlot {
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::uint64_t min = 0;
    std::uint64_t max = 0;
    std::uint64_t buckets[64] = {};
  };

  /// One partition's private write store (lazily sized on first write, so
  /// registration order and shard count are independent).
  struct Shard {
    std::vector<std::uint64_t> counters;
    std::vector<HistSlot> hists;
  };

  /// Cell the calling thread's counter writes land in.
  std::uint64_t& counter_cell(std::uint32_t idx) {
    const int s = sim::tls_partition;
    if (s <= 0 || shards_.empty()) return counters_[idx];
    auto& v = shard(s).counters;
    if (v.size() <= idx) v.resize(std::max(counters_.size(), idx + 1ul), 0);
    return v[idx];
  }

  /// Slot the calling thread's histogram writes land in.
  HistSlot& hist_cell(std::uint32_t idx) {
    const int s = sim::tls_partition;
    if (s <= 0 || shards_.empty()) return hists_[idx];
    auto& v = shard(s).hists;
    if (v.size() <= idx) v.resize(std::max(hists_.size(), idx + 1ul));
    return v[idx];
  }

  Shard& shard(int partition) {
    const std::size_t i =
        std::min(static_cast<std::size_t>(partition), shards_.size()) - 1;
    return *shards_[i];
  }

  std::uint64_t counter_total(std::uint32_t idx) const;
  HistSlot hist_total(std::uint32_t idx) const;

  static std::string key_of(const MetricSpec& spec);
  static std::string key_of(const std::string& component,
                            const std::string& node, int core,
                            const std::string& name);

  bool enabled_ = false;
  std::vector<std::unique_ptr<Shard>> shards_;  ///< partitions 1..n-1

  std::vector<std::uint64_t> counters_;
  std::vector<MetricSpec> counter_specs_;
  std::unordered_map<std::string, std::uint32_t> counter_keys_;

  std::vector<GaugeSlot> gauges_;
  std::vector<MetricSpec> gauge_specs_;
  std::unordered_map<std::string, std::uint32_t> gauge_keys_;

  std::vector<HistSlot> hists_;
  std::vector<MetricSpec> hist_specs_;
  std::unordered_map<std::string, std::uint32_t> hist_keys_;
};

inline constexpr std::uint32_t kInvalidMetric = 0xffffffffu;

/// Monotone event count. Default-constructed handles are inert.
class Counter {
 public:
  Counter() = default;

  bool valid() const { return idx_ != kInvalidMetric; }

  /// Hot path: branch + array add while the registry is enabled.
  void inc(std::uint64_t delta = 1) {
    MetricsRegistry& r = MetricsRegistry::global();
    if (r.enabled_ && idx_ != kInvalidMetric) r.counter_cell(idx_) += delta;
  }

  /// Unconditional add, for counters whose call sites predate the registry
  /// and are documented as always-on (nmad::Core::Stats). Still one array
  /// store; independent of enabled().
  void add_always(std::uint64_t delta = 1) {
    if (idx_ != kInvalidMetric)
      MetricsRegistry::global().counter_cell(idx_) += delta;
  }

  std::uint64_t value() const {
    return idx_ != kInvalidMetric
               ? MetricsRegistry::global().counter_total(idx_)
               : 0;
  }
  operator std::uint64_t() const { return value(); }

 private:
  friend class MetricsRegistry;
  explicit Counter(std::uint32_t idx) : idx_(idx) {}
  std::uint32_t idx_ = kInvalidMetric;
};

/// Last-value instrument that also tracks its high-water mark.
class Gauge {
 public:
  Gauge() = default;

  bool valid() const { return idx_ != kInvalidMetric; }

  void set(std::int64_t v) {
    MetricsRegistry& r = MetricsRegistry::global();
    if (r.enabled_ && idx_ != kInvalidMetric) {
      auto& slot = r.gauges_[idx_];
      slot.value = v;
      if (v > slot.max) slot.max = v;
    }
  }

  std::int64_t value() const {
    return idx_ != kInvalidMetric
               ? MetricsRegistry::global().gauges_[idx_].value
               : 0;
  }
  std::int64_t max() const {
    return idx_ != kInvalidMetric ? MetricsRegistry::global().gauges_[idx_].max
                                  : 0;
  }

 private:
  friend class MetricsRegistry;
  explicit Gauge(std::uint32_t idx) : idx_(idx) {}
  std::uint32_t idx_ = kInvalidMetric;
};

/// Fixed power-of-two-bucket histogram (no allocation on observe).
class HistogramMetric {
 public:
  HistogramMetric() = default;

  bool valid() const { return idx_ != kInvalidMetric; }

  void observe(std::uint64_t v) {
    MetricsRegistry& r = MetricsRegistry::global();
    if (r.enabled_ && idx_ != kInvalidMetric) {
      auto& slot = r.hist_cell(idx_);
      if (slot.count == 0 || v < slot.min) slot.min = v;
      if (v > slot.max) slot.max = v;
      ++slot.count;
      slot.sum += v;
      ++slot.buckets[bucket_of(v)];
    }
  }

  std::uint64_t count() const {
    return idx_ != kInvalidMetric
               ? MetricsRegistry::global().hist_total(idx_).count
               : 0;
  }
  std::uint64_t sum() const {
    return idx_ != kInvalidMetric
               ? MetricsRegistry::global().hist_total(idx_).sum
               : 0;
  }
  double mean() const {
    const std::uint64_t n = count();
    return n == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(n);
  }

  /// Bucket index covering @p v (0 -> value 0; i >= 1 -> [2^(i-1), 2^i)).
  static int bucket_of(std::uint64_t v) {
    int b = 0;
    while (v != 0) {
      ++b;
      v >>= 1;
    }
    return b > 63 ? 63 : b;
  }

 private:
  friend class MetricsRegistry;
  explicit HistogramMetric(std::uint32_t idx) : idx_(idx) {}
  std::uint32_t idx_ = kInvalidMetric;
};

}  // namespace pm2::obs
