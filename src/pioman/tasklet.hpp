// pm2sim -- tasklets: deferred execution on a chosen core.
//
// Modelled on Linux tasklets as the paper (Sec. 4.2, [12]) uses them
// through Marcel: schedule(t, core) queues t for execution on that core;
// the core runs it at its next progression opportunity (idle tick for idle
// cores, timer tick for busy ones). A tasklet runs in hook context: it must
// not block, and its serialization against other library activity relies on
// try-lock patterns ("the complex locking mechanism involved when a tasklet
// is invoked" whose cost Fig. 9 measures).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "simthread/scheduler.hpp"

namespace pm2::piom {

class TaskletEngine;

class Tasklet {
 public:
  using Fn = std::function<void(mth::HookContext&)>;

  explicit Tasklet(Fn fn, std::string name = "tasklet")
      : fn_(std::move(fn)), name_(std::move(name)) {}

  Tasklet(const Tasklet&) = delete;
  Tasklet& operator=(const Tasklet&) = delete;

  const std::string& name() const { return name_; }

  /// True while queued for execution (Linux semantics: re-scheduling a
  /// scheduled tasklet is a no-op).
  bool scheduled() const { return scheduled_; }

  std::uint64_t runs() const { return runs_; }

 private:
  friend class TaskletEngine;
  Fn fn_;
  std::string name_;
  bool scheduled_ = false;
  std::uint64_t runs_ = 0;
};

class TaskletEngine {
 public:
  explicit TaskletEngine(mth::Scheduler& sched);
  ~TaskletEngine();

  TaskletEngine(const TaskletEngine&) = delete;
  TaskletEngine& operator=(const TaskletEngine&) = delete;

  /// Queue @p t for execution on @p core. Charges the scheduling cost
  /// (queue insertion + inter-core signalling) to the current context.
  /// No-op if already scheduled.
  void schedule(Tasklet* t, int core);

  bool pending(int core) const {
    return !queues_[static_cast<std::size_t>(core)].empty();
  }

  std::uint64_t executed() const { return executed_; }

 private:
  void drain(mth::HookContext& ctx);

  mth::Scheduler& sched_;
  std::vector<std::deque<Tasklet*>> queues_;
  mach::CacheLine queue_line_;
  int idle_hook_id_ = -1;
  int timer_hook_id_ = -1;
  std::uint64_t executed_ = 0;
  obs::Counter m_executed_;  ///< (pioman, <machine>, tasklet_runs)
};

}  // namespace pm2::piom
