#include "pioman/tasklet.hpp"

#include <cassert>

#include "simcore/trace.hpp"
#include "sync/context_util.hpp"

namespace pm2::piom {

TaskletEngine::TaskletEngine(mth::Scheduler& sched) : sched_(sched) {
  m_executed_ = obs::MetricsRegistry::global().counter(
      {"pioman", sched.machine().name(), -1, "tasklet_runs"});
  queues_.resize(static_cast<std::size_t>(sched.num_cores()));
  auto run = [this](mth::HookContext& hctx) { drain(hctx); };
  auto want = [this](int core) { return pending(core); };
  idle_hook_id_ = sched_.add_idle_hook(mth::Hook{run, want});
  timer_hook_id_ = sched_.add_timer_hook(mth::Hook{run, nullptr});
}

TaskletEngine::~TaskletEngine() {
  sched_.remove_idle_hook(idle_hook_id_);
  sched_.remove_timer_hook(timer_hook_id_);
}

void TaskletEngine::schedule(Tasklet* t, int core) {
  assert(core >= 0 && core < sched_.num_cores());
  if (t->scheduled_) return;
  t->scheduled_ = true;
  // Queue insertion, cross-core signalling, and the tasklet queue line
  // moving to the scheduling core.
  sync::charge_if_ctx(sched_.costs().tasklet_schedule);
  sync::touch_if_ctx(queue_line_);
  queues_[static_cast<std::size_t>(core)].push_back(t);
  sched_.notify_idle_work();
}

void TaskletEngine::drain(mth::HookContext& ctx) {
  auto& q = queues_[static_cast<std::size_t>(ctx.core())];
  while (!q.empty()) {
    Tasklet* t = q.front();
    q.pop_front();
    // "The complex locking mechanism involved when a tasklet is invoked":
    // dispatch state, re-enable/serialization checks, queue line transfer.
    ctx.charge(sched_.costs().tasklet_invoke);
    ctx.touch(queue_line_);
    t->scheduled_ = false;
    ++t->runs_;
    ++executed_;
    m_executed_.inc();
    PM2_TRACE("tasklet", kDebug, "run '%s' on core %d", t->name().c_str(),
              ctx.core());
    t->fn_(ctx);
  }
}

}  // namespace pm2::piom
