#include "pioman/server.hpp"

#include <algorithm>
#include <cassert>

#include "simcore/trace.hpp"
#include "simsan/context.hpp"

namespace pm2::piom {

PollSource::~PollSource() = default;

Server::Server(mth::Scheduler& sched)
    : sched_(sched), list_lock_(sched, "pioman-list") {
  auto& reg = obs::MetricsRegistry::global();
  const std::string& node = sched_.machine().name();
  m_passes_ = reg.counter({"pioman", node, -1, "poll_passes"});
  m_skipped_passes_ = reg.counter({"pioman", node, -1, "skipped_passes"});
  m_poll_interval_ns_ = reg.histogram({"pioman", node, -1, "poll_interval_ns"});
}

Server::~Server() { remove_hooks(); }

void Server::register_source(PollSource* src) {
  SIMSAN_ACCESS(san_sources_);
  sources_.push_back(src);
  notify_new_work();
}

void Server::unregister_source(PollSource* src) {
  SIMSAN_ACCESS(san_sources_);
  std::erase(sources_, src);
}

bool Server::has_pending(int core) const {
  if (poll_core_ >= 0 && core >= 0 && core != poll_core_) return false;
  for (const PollSource* s : sources_) {
    if (!s->pending()) continue;
    const int pref = s->preferred_core();
    if (pref >= 0 && core >= 0 && pref != core) continue;
    return true;
  }
  return false;
}

bool Server::poll_once(mth::ExecContext& ctx) {
  ++passes_;
  m_passes_.inc();
  if (obs::MetricsRegistry::global().enabled()) {
    const sim::Time now = sched_.engine().now();
    if (last_pass_at_ >= 0 && now > last_pass_at_) {
      m_poll_interval_ns_.observe(
          static_cast<std::uint64_t>(now - last_pass_at_));
    }
    last_pass_at_ = now;
  }
  // Internal request-list management (Fig. 6's overhead).
  ctx.charge(sched_.costs().pioman_pass);
  // The server's lists are protected by a lock that hook/tasklet contexts
  // may only try: skipping a pass is always safe (someone else is polling).
  if (!list_lock_.try_lock()) {
    ++skipped_passes_;
    m_skipped_passes_.inc();
    return false;
  }
  bool progressed = false;
  SIMSAN_ACCESS_RO(san_sources_);  // iteration is read-only, under list_lock_
  const int core = ctx.core();
  for (PollSource* s : sources_) {
    const int pref = s->preferred_core();
    if (pref >= 0 && pref != core) continue;
    if (s->poll(ctx)) progressed = true;
  }
  list_lock_.unlock();
  if (progressed) {
    // Unlink satisfied requests from the internal lists and signal waiters.
    ctx.charge(sched_.costs().pioman_completion);
  }
  return progressed;
}

void Server::enable_hooks() {
  if (hooks_enabled()) return;
  auto run = [this](mth::HookContext& hctx) {
    if (!has_pending(hctx.core())) return;
    poll_once(hctx);
  };
  auto want = [this](int core) { return has_pending(core); };
  idle_hook_id_ = sched_.add_idle_hook(mth::Hook{run, want});
  switch_hook_id_ = sched_.add_switch_hook(mth::Hook{run, nullptr});
  timer_hook_id_ = sched_.add_timer_hook(mth::Hook{run, nullptr});
  PM2_TRACE("pioman", kInfo, "hooks enabled (poll core binding: %d)",
            poll_core_);
}

void Server::remove_hooks() {
  if (!hooks_enabled()) return;
  sched_.remove_idle_hook(idle_hook_id_);
  sched_.remove_switch_hook(switch_hook_id_);
  sched_.remove_timer_hook(timer_hook_id_);
  idle_hook_id_ = switch_hook_id_ = timer_hook_id_ = -1;
}

}  // namespace pm2::piom
