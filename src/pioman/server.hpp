// pm2sim -- PIOMan: the I/O event manager.
//
// PIOMan decouples "what to poll" (registered poll sources, in practice the
// NewMadeleine progression function) from "when to poll" (scheduler hooks:
// idle cores, context switches, timer ticks -- plus explicit passes from
// waiting functions). This is the paper's Sec. 3.3/4 machinery.
//
// Each pass through the server costs `pioman_pass` (internal request-list
// management) on top of whatever the sources themselves consume; Fig. 6
// measures exactly this overhead (~200 ns per one-way latency, two passes
// on the critical path).
#pragma once

#include <cstdint>
#include <vector>

#include "obs/metrics.hpp"
#include "simsan/simsan.hpp"
#include "simthread/scheduler.hpp"
#include "sync/spinlock.hpp"

namespace pm2::piom {

/// A unit of registered progression work.
class PollSource {
 public:
  virtual ~PollSource();

  /// One bounded progression pass; charge all CPU costs to @p ctx.
  /// Returns true if any progress was made.
  virtual bool poll(mth::ExecContext& ctx) = 0;

  /// True if the source may have work (gates idle-loop re-arming).
  virtual bool pending() const = 0;

  /// If >= 0, only this core should poll the source (Fig. 8's binding).
  virtual int preferred_core() const { return -1; }
};

class Server {
 public:
  explicit Server(mth::Scheduler& sched);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  mth::Scheduler& scheduler() const { return sched_; }

  void register_source(PollSource* src);
  void unregister_source(PollSource* src);

  /// Install idle / context-switch / timer hooks into the scheduler so the
  /// server polls on every spare cycle.
  void enable_hooks();
  void remove_hooks();
  bool hooks_enabled() const { return idle_hook_id_ >= 0; }

  /// Restrict hook-driven polling to one core (-1 = any core). Used by the
  /// Fig. 8 affinity experiment.
  void bind_polling(int core) { poll_core_ = core; }
  int polling_binding() const { return poll_core_; }

  /// One explicit pass: pay the list-management cost, take the internal
  /// lock (skipping the pass entirely if another context is already inside,
  /// as tasklet-safe code must), poll every source. Returns true if any
  /// source progressed.
  bool poll_once(mth::ExecContext& ctx);

  /// True if any source has potential work for @p core.
  bool has_pending(int core) const;

  /// Tell idle cores that new work appeared (re-arms their idle loops).
  void notify_new_work() { sched_.notify_idle_work(); }

  std::uint64_t passes() const { return passes_; }
  std::uint64_t skipped_passes() const { return skipped_passes_; }

 private:
  mth::Scheduler& sched_;
  std::vector<PollSource*> sources_;
  sync::SpinLock list_lock_;
  san::Shared san_sources_{"pioman.sources"};  ///< simsan handle for sources_
  int poll_core_ = -1;
  int idle_hook_id_ = -1;
  int switch_hook_id_ = -1;
  int timer_hook_id_ = -1;
  std::uint64_t passes_ = 0;
  std::uint64_t skipped_passes_ = 0;
  // Registry instruments, labeled (pioman, <machine>).
  obs::Counter m_passes_;
  obs::Counter m_skipped_passes_;
  obs::HistogramMetric m_poll_interval_ns_;
  sim::Time last_pass_at_ = -1;  ///< registry-only poll-interval tracking
};

}  // namespace pm2::piom
