// Guard: the metrics registry's hot-path cost stays negligible.
//
// Runs the BM_PingpongEndToEnd workload with the registry alternately
// disabled and enabled, compares the best-of-N host times, and fails when
// the enabled runs are more than 3% slower. Alternating the order and
// taking the minimum makes the comparison robust against host-side noise
// (frequency scaling, cache warm-up, other processes).
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <vector>

#include "nmad/cluster.hpp"
#include "obs/metrics.hpp"

using namespace pm2;

namespace {

constexpr std::size_t kPingpongIters = 192;
constexpr int kReps = 16;
constexpr double kMaxRatio = 1.03;
// A noisy host can push a single best-of-N comparison past the limit even
// with alternation; a genuine hot-path regression fails every attempt, so
// retry the whole measurement before declaring failure.
constexpr int kAttempts = 3;

/// One full pingpong world: the BM_PingpongEndToEnd body.
void run_workload() {
  nm::ClusterConfig cfg;
  nm::Cluster world(cfg);
  world.spawn(0, [&world] {
    auto& c = world.core(0);
    auto* g = world.gate(0, 1);
    std::vector<std::uint8_t> m(64), b(64);
    for (std::size_t i = 0; i < kPingpongIters; ++i) {
      c.send(g, 1, m.data(), m.size());
      c.recv(g, 2, b.data(), b.size());
    }
  });
  world.spawn(1, [&world] {
    auto& c = world.core(1);
    auto* g = world.gate(1, 0);
    std::vector<std::uint8_t> b(64);
    for (std::size_t i = 0; i < kPingpongIters; ++i) {
      c.recv(g, 1, b.data(), b.size());
      c.send(g, 2, b.data(), b.size());
    }
  });
  world.run();
}

double timed_run() {
  const auto t0 = std::chrono::steady_clock::now();
  run_workload();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

}  // namespace

int main() {
  auto& reg = obs::MetricsRegistry::global();

  // Warm up both variants (stack pools, allocator, instruction cache).
  for (int w = 0; w < 2; ++w) {
    reg.set_enabled(false);
    run_workload();
    reg.set_enabled(true);
    run_workload();
  }

  double ratio = 1e30;
  for (int attempt = 1; attempt <= kAttempts; ++attempt) {
    double best_off = 1e30;
    double best_on = 1e30;
    for (int r = 0; r < kReps; ++r) {
      // Alternate the order within each rep so drift hits both variants.
      if (r % 2 == 0) {
        reg.set_enabled(false);
        best_off = std::min(best_off, timed_run());
        reg.set_enabled(true);
        best_on = std::min(best_on, timed_run());
      } else {
        reg.set_enabled(true);
        best_on = std::min(best_on, timed_run());
        reg.set_enabled(false);
        best_off = std::min(best_off, timed_run());
      }
    }
    reg.set_enabled(false);

    ratio = best_on / best_off;
    std::printf("metrics off: %.3f ms   metrics on: %.3f ms   ratio: %.4f "
                "(limit %.2f, attempt %d/%d)\n",
                best_off * 1e3, best_on * 1e3, ratio, kMaxRatio, attempt,
                kAttempts);
    if (ratio <= kMaxRatio) break;
  }
  if (ratio > kMaxRatio) {
    std::fprintf(stderr, "FAIL: metrics hot-path overhead above %.0f%%\n",
                 (kMaxRatio - 1.0) * 100.0);
    return 1;
  }
  std::printf("PASS\n");
  return 0;
}
