// Fig. 6 -- "Impact of PIOMan on latency".
//
// Same pingpong as Fig. 3, but polling goes through the PIOMan event
// server (request-list management + internal locking on every pass).
// Paper result: ~200 ns of additional one-way latency over the plain
// library, for both locking modes.
#include <cstdio>

#include "bench/common/harness.hpp"

using namespace pm2;

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  const auto sizes = bench::small_sizes();

  bench::PingpongOptions opt;
  opt.iters = args.iters;
  opt.warmup = args.warmup;

  std::vector<bench::Series> series;
  struct Cfg {
    const char* label;
    nm::LockMode lock;
    bool pioman;
  };
  for (const Cfg& c : {Cfg{"coarse-grain", nm::LockMode::kCoarse, false},
                       Cfg{"fine-grain", nm::LockMode::kFine, false},
                       Cfg{"PIOMan (coarse)", nm::LockMode::kCoarse, true},
                       Cfg{"PIOMan (fine)", nm::LockMode::kFine, true}}) {
    nm::ClusterConfig cfg;
    bench::apply_parallel(args, cfg);
    cfg.nm.lock = c.lock;
    cfg.nm.wait = nm::WaitMode::kBusy;
    if (c.pioman) {
      cfg.nm.progress = nm::ProgressMode::kPiomanHooks;
      // The paper's latency test is single-threaded: polling happens in the
      // waiting thread's PIOMan passes on the app core.
      cfg.pioman_poll_core = 0;
    }
    series.push_back(bench::run_pingpong(c.label, cfg, sizes, opt));
  }

  bench::print_table("Fig. 6: impact of PIOMan on latency (one-way, us)",
                     sizes, series);

  std::printf("\nPIOMan overhead (ns):\n%-10s  %12s  %12s\n", "size(B)",
              "coarse", "fine");
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    std::printf("%-10zu  %12.0f  %12.0f\n", sizes[i],
                (series[2].latency_us[i] - series[0].latency_us[i]) * 1e3,
                (series[3].latency_us[i] - series[1].latency_us[i]) * 1e3);
  }
  std::printf("\npaper: PIOMan adds ~200 ns (internal list management + "
              "locking)\n");

  bench::write_csv(args.csv, sizes, series);

  // --metrics-out: instrumented run on the PIOMan (coarse) configuration.
  nm::ClusterConfig mcfg;
  bench::apply_parallel(args, mcfg);
  mcfg.nm.lock = nm::LockMode::kCoarse;
  mcfg.nm.wait = nm::WaitMode::kBusy;
  mcfg.nm.progress = nm::ProgressMode::kPiomanHooks;
  mcfg.pioman_poll_core = 0;
  // --simsan=on: concurrency analysis on the same configuration.
  bench::run_simsan_report(args, "representative", mcfg);
  bench::write_metrics_report(args, mcfg);
  return 0;
}
