// Gate for the scalable-endpoints scaling claim (ISSUE 8 acceptance): with
// 8 concurrent sender threads per node, one endpoint per thread must beat
// fine-grained locking on a single shared instance -- the per-endpoint
// split removes the residual collect/matching/driver lock contention that
// kFine still pays. Makespans are virtual time on the deterministic clock,
// so a strict comparison is stable across hosts; the full threads x
// strategy sweep lives in BM_ConcurrentSenders (BENCH_engine.json).
#include <algorithm>
#include <cstdio>
#include <vector>

#include "nmad/cluster.hpp"

using namespace pm2;

namespace {

constexpr int kThreads = 8;
constexpr int kMsgs = 16;

/// Coarse locking at high oversubscription can starve forever on the
/// deterministic schedule (see BM_ConcurrentSenders); the cap turns any
/// such regression at this thread count into a loud FAIL instead of a hang.
constexpr sim::Time kCap = sim::milliseconds(10);

/// Virtual makespan of kThreads senders on node 0, each blocking-sending
/// kMsgs 64 B messages on its own tag to a matching receiver on node 1.
/// Returns kCap if the world failed to complete within the cap.
sim::Time makespan(nm::LockMode lock, int endpoints) {
  nm::ClusterConfig cfg;
  cfg.nm.lock = lock;
  cfg.endpoints = endpoints;
  nm::Cluster world(cfg);
  // Makespan = virtual time the last thread exits, recorded by the threads
  // themselves: run_until() advances the clock to its deadline even after
  // the world drains, so engine().now() afterwards is always kCap.
  sim::Time finished = 0;
  for (int t = 0; t < kThreads; ++t) {
    const nm::Tag tag = static_cast<nm::Tag>(t);
    world.spawn(0, [&world, &finished, tag, t] {
      auto& c = world.core(0);
      auto* g = world.gate(0, 1);
      std::vector<std::uint8_t> m(64, static_cast<std::uint8_t>(t));
      for (int i = 0; i < kMsgs; ++i) {
        c.send(g, tag, m.data(), m.size());
      }
      finished = std::max(finished, world.engine().now());
    });
    world.spawn(1, [&world, &finished, tag] {
      auto& c = world.core(1);
      auto* g = world.gate(1, 0);
      std::vector<std::uint8_t> buf(64);
      for (int i = 0; i < kMsgs; ++i) {
        c.recv(g, tag, buf.data(), buf.size());
      }
      finished = std::max(finished, world.engine().now());
    });
  }
  world.engine().run_until(kCap);
  const bool done = world.sched(0).live_threads() == 0 &&
                    world.sched(1).live_threads() == 0;
  return done ? finished : kCap;
}

}  // namespace

int main() {
  const sim::Time coarse = makespan(nm::LockMode::kCoarse, 1);
  const sim::Time fine = makespan(nm::LockMode::kFine, 1);
  const sim::Time per_ep = makespan(nm::LockMode::kFine, kThreads);
  const double msgs = static_cast<double>(kThreads) * kMsgs;
  auto rate = [msgs](sim::Time t) {
    return msgs / (static_cast<double>(t) * 1e-9);
  };
  std::printf("concurrent senders, %d threads x %d msgs (virtual time):\n",
              kThreads, kMsgs);
  std::printf("  coarse        %8.1f us  %10.0f msgs/s\n",
              static_cast<double>(coarse) / 1e3, rate(coarse));
  std::printf("  fine          %8.1f us  %10.0f msgs/s\n",
              static_cast<double>(fine) / 1e3, rate(fine));
  std::printf("  %d endpoints   %8.1f us  %10.0f msgs/s\n", kThreads,
              static_cast<double>(per_ep) / 1e3, rate(per_ep));
  if (fine >= kCap || per_ep >= kCap) {
    std::fprintf(stderr,
                 "FAIL: run did not complete within the %lld ns virtual cap "
                 "(fine=%lld per_ep=%lld)\n",
                 static_cast<long long>(kCap), static_cast<long long>(fine),
                 static_cast<long long>(per_ep));
    return 1;
  }
  if (per_ep >= fine) {
    std::fprintf(stderr,
                 "FAIL: per-endpoint makespan (%lld ns) not strictly below "
                 "fine locking (%lld ns) at %d threads\n",
                 static_cast<long long>(per_ep),
                 static_cast<long long>(fine), kThreads);
    return 1;
  }
  std::printf("PASS\n");
  return 0;
}
