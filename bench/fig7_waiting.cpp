// Fig. 7 -- "Impact of semaphores on latency" (active vs passive waiting).
//
// Waiting functions implemented with blocking semaphores cost ~750 ns extra
// one-way latency (one context-switch out + one back in per wait) compared
// to active polling. The fixed-spin algorithm [Karlin et al.] -- spin for
// ~5 us, then block -- recovers active-wait latency for fast events; the
// paper describes it in Sec. 3.3, and the extra columns here show it.
#include <cstdio>

#include "bench/common/harness.hpp"

using namespace pm2;

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  const auto sizes = bench::small_sizes();

  bench::PingpongOptions opt;
  opt.iters = args.iters;
  opt.warmup = args.warmup;

  std::vector<bench::Series> series;
  struct Cfg {
    const char* label;
    nm::LockMode lock;
    nm::WaitMode wait;
  };
  for (const Cfg& c :
       {Cfg{"active (coarse)", nm::LockMode::kCoarse, nm::WaitMode::kBusy},
        Cfg{"active (fine)", nm::LockMode::kFine, nm::WaitMode::kBusy},
        Cfg{"passive (coarse)", nm::LockMode::kCoarse, nm::WaitMode::kPassive},
        Cfg{"passive (fine)", nm::LockMode::kFine, nm::WaitMode::kPassive},
        Cfg{"fixed-spin (coarse)", nm::LockMode::kCoarse, nm::WaitMode::kFixedSpin},
        Cfg{"fixed-spin (fine)", nm::LockMode::kFine, nm::WaitMode::kFixedSpin}}) {
    nm::ClusterConfig cfg;
    bench::apply_parallel(args, cfg);
    cfg.nm.lock = c.lock;
    cfg.nm.wait = c.wait;
    // All variants poll through PIOMan: passive waiting depends on it (the
    // scheduler hooks poll while the thread is blocked), and using it
    // everywhere isolates the waiting-policy effect.
    cfg.nm.progress = nm::ProgressMode::kPiomanHooks;
    cfg.pioman_poll_core = 0;
    series.push_back(bench::run_pingpong(c.label, cfg, sizes, opt));
  }

  bench::print_table(
      "Fig. 7: active vs passive vs fixed-spin waiting (one-way, us)", sizes,
      series);

  std::printf("\npassive-wait overhead vs active (ns):\n%-10s  %12s  %12s"
              "  %14s  %12s\n",
              "size(B)", "coarse", "fine", "fixspin-coarse", "fixspin-fine");
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    std::printf("%-10zu  %12.0f  %12.0f  %14.0f  %12.0f\n", sizes[i],
                (series[2].latency_us[i] - series[0].latency_us[i]) * 1e3,
                (series[3].latency_us[i] - series[1].latency_us[i]) * 1e3,
                (series[4].latency_us[i] - series[0].latency_us[i]) * 1e3,
                (series[5].latency_us[i] - series[1].latency_us[i]) * 1e3);
  }
  std::printf("\npaper: semaphores add ~750 ns (context switches); fixed "
              "spin avoids the switch when the event arrives within the "
              "budget\n");

  bench::write_csv(args.csv, sizes, series);

  // --metrics-out: instrumented run on the passive (coarse) configuration
  // (context switches per round are the interesting number here).
  nm::ClusterConfig mcfg;
  bench::apply_parallel(args, mcfg);
  mcfg.nm.lock = nm::LockMode::kCoarse;
  mcfg.nm.wait = nm::WaitMode::kPassive;
  mcfg.nm.progress = nm::ProgressMode::kPiomanHooks;
  mcfg.pioman_poll_core = 0;
  // --simsan=on: concurrency analysis on the same configuration.
  bench::run_simsan_report(args, "representative", mcfg);
  bench::write_metrics_report(args, mcfg);
  return 0;
}
