// Sec. 3.3 prose claim -- "on a 4-core machine, dedicating one core to
// communication leads to up to 25 % decrease of the computation power".
//
// Four configurations on a quad-core node, each measuring the aggregate
// compute work the node completes in a fixed window:
//   a) 4 compute workers, no polling          (baseline)
//   b) 3 compute workers + 1 busy poller      (dedicated polling core)
//   c) 4 compute workers + 1 busy poller      (poller timeshares a core)
//   d) 4 compute workers, PIOMan idle hooks   (polling only on spare cycles)
#include <cstdio>

#include "simmachine/machine.hpp"
#include "simthread/scheduler.hpp"

using namespace pm2;

namespace {

constexpr sim::Time kWindow = sim::milliseconds(50);
constexpr sim::Time kQuantum = sim::microseconds(10);

struct Result {
  double work_units = 0;  // completed compute quanta
};

Result run(int workers, bool poller, bool idle_hooks) {
  sim::Engine engine;
  mach::Machine machine(engine, "node", mach::CacheTopology::quad_core(),
                        mach::CostBook::xeon_quad());
  mth::Scheduler sched(machine);
  long completed = 0;

  if (idle_hooks) {
    // A PIOMan-style hook that always has something to poll.
    sched.add_idle_hook(mth::Hook{
        .run = [](mth::HookContext& hctx) { hctx.charge(100); },
        .want = [](int) { return true; },
    });
  }

  for (int w = 0; w < workers; ++w) {
    mth::ThreadAttrs attrs;
    attrs.name = "worker" + std::to_string(w);
    attrs.bind_core = w % 4;
    sched.spawn(
        [&engine, &sched, &completed] {
          while (engine.now() < kWindow) {
            sched.work(kQuantum);
            ++completed;
          }
        },
        attrs);
  }
  if (poller) {
    mth::ThreadAttrs attrs;
    attrs.name = "poller";
    attrs.bind_core = 3;
    sched.spawn(
        [&engine, &sched] {
          while (engine.now() < kWindow) {
            sched.work(100);  // tight polling loop
          }
        },
        attrs);
  }
  engine.run();
  return Result{static_cast<double>(completed)};
}

}  // namespace

int main() {
  const Result baseline = run(4, false, false);
  const Result dedicated = run(3, true, false);
  const Result shared = run(4, true, false);
  const Result hooks = run(4, false, true);

  auto report = [&](const char* label, const Result& r) {
    std::printf("%-42s %10.0f  %+7.1f%%\n", label, r.work_units,
                (r.work_units - baseline.work_units) / baseline.work_units *
                    100.0);
  };
  std::printf("Sec. 3.3: compute work completed in a %s window "
              "(quad-core)\n\n",
              sim::format_time(kWindow).c_str());
  std::printf("%-42s %10s  %8s\n", "configuration", "quanta", "vs base");
  report("4 workers (baseline)", baseline);
  report("3 workers + dedicated polling core", dedicated);
  report("4 workers + poller timesharing core 3", shared);
  report("4 workers + PIOMan idle hooks", hooks);
  std::printf("\npaper: dedicating 1 of 4 cores to communication costs up "
              "to 25%% of compute power;\nPIOMan's hook approach polls only "
              "on cycles the application does not use\n");
  return 0;
}
