// Guard: simsan's cost model holds on the end-to-end pingpong workload.
//
// Enabled via Cluster::enable_simsan(), the full lockset/vector-clock
// analysis must stay under 10% host overhead versus the disabled taps
// (which are each one branch on a global flag -- the disabled workload IS
// the plain-build hot path, so the baseline side of this ratio doubles as
// the "0 when disabled" claim). Alternating the order and taking best-of-N
// makes the comparison robust against host-side noise (frequency scaling,
// cache warm-up).
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <vector>

#include "nmad/cluster.hpp"
#include "simsan/simsan.hpp"

using namespace pm2;

namespace {

constexpr std::size_t kPingpongIters = 192;
constexpr int kReps = 16;
constexpr double kMaxRatioEnabled = 1.10;
// A noisy host can push a single best-of-N comparison past the limit even
// with alternation; a genuine analyzer regression fails every attempt, so
// retry the whole measurement before declaring failure.
constexpr int kAttempts = 3;

/// One full pingpong world: the BM_PingpongEndToEnd body. @p analyze
/// switches the analyzer on for this world.
void run_workload(bool analyze) {
  nm::ClusterConfig cfg;
  nm::Cluster world(cfg);
  if (analyze) world.enable_simsan();
  world.spawn(0, [&world] {
    auto& c = world.core(0);
    auto* g = world.gate(0, 1);
    std::vector<std::uint8_t> m(64), b(64);
    for (std::size_t i = 0; i < kPingpongIters; ++i) {
      c.send(g, 1, m.data(), m.size());
      c.recv(g, 2, b.data(), b.size());
    }
  });
  world.spawn(1, [&world] {
    auto& c = world.core(1);
    auto* g = world.gate(1, 0);
    std::vector<std::uint8_t> b(64);
    for (std::size_t i = 0; i < kPingpongIters; ++i) {
      c.recv(g, 1, b.data(), b.size());
      c.send(g, 2, b.data(), b.size());
    }
  });
  world.run();
}

double timed_run(bool analyze) {
  const auto t0 = std::chrono::steady_clock::now();
  run_workload(analyze);
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

}  // namespace

int main() {
  // Warm up both variants (stack pools, allocator, instruction cache).
  for (int w = 0; w < 2; ++w) {
    run_workload(false);
    run_workload(true);
  }

  double ratio = 1e30;
  for (int attempt = 1; attempt <= kAttempts; ++attempt) {
    double best_off = 1e30;
    double best_on = 1e30;
    for (int r = 0; r < kReps; ++r) {
      // Alternate the order within each rep so drift hits both variants.
      if (r % 2 == 0) {
        best_off = std::min(best_off, timed_run(false));
        best_on = std::min(best_on, timed_run(true));
      } else {
        best_on = std::min(best_on, timed_run(true));
        best_off = std::min(best_off, timed_run(false));
      }
    }

    ratio = best_on / best_off;
    std::printf("simsan off: %.3f ms   simsan on: %.3f ms   ratio: %.4f "
                "(limit %.2f, attempt %d/%d)\n",
                best_off * 1e3, best_on * 1e3, ratio, kMaxRatioEnabled,
                attempt, kAttempts);
    if (ratio <= kMaxRatioEnabled) break;
  }

  // The analysis itself must have stayed clean: fine locking, one app
  // thread per node -- a finding here is an analyzer bug.
  const auto& an = san::Analyzer::global();
  if (an.total_findings() != 0) {
    an.print_report(stderr);
    std::fprintf(stderr, "FAIL: simsan reported findings on a clean run\n");
    return 1;
  }

  if (ratio > kMaxRatioEnabled) {
    std::fprintf(stderr, "FAIL: simsan enabled overhead above %.0f%%\n",
                 (kMaxRatioEnabled - 1.0) * 100.0);
    return 1;
  }
  std::printf("PASS\n");
  return 0;
}
