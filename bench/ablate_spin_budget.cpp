// Ablation: the fixed-spin budget (Sec. 3.3, Karlin et al.).
//
// The paper suggests spinning "for a short duration (for instance 5 us)"
// before blocking. This bench sweeps the budget for two message sizes --
// one whose one-way latency sits well inside the budget range and one well
// outside -- and reports latency plus the fraction of waits that blocked.
#include <cstdio>
#include <vector>

#include "bench/common/harness.hpp"

using namespace pm2;

namespace {

struct Result {
  double latency_us;
};

Result run(std::size_t size, sim::Time budget, int iters) {
  nm::ClusterConfig cfg;
  cfg.nm.wait = nm::WaitMode::kFixedSpin;
  cfg.nm.fixed_spin_budget = budget;
  cfg.nm.progress = nm::ProgressMode::kPiomanHooks;
  cfg.pioman_poll_core = 0;
  bench::PingpongOptions opt;
  opt.iters = iters;
  opt.warmup = 10;
  auto series = bench::run_pingpong("x", cfg, {size}, opt);
  return {series.latency_us[0]};
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  std::printf("Ablation: fixed-spin budget before blocking "
              "(pingpong one-way latency, us)\n\n");
  const std::vector<sim::Time> budgets = {
      0,
      sim::microseconds(1),
      sim::microseconds(2),
      sim::microseconds(5),
      sim::microseconds(10),
      sim::microseconds(20),
  };
  std::printf("%-14s %14s %14s\n", "budget", "64 B msg", "2 KiB msg");
  for (sim::Time b : budgets) {
    const Result small = run(64, b, args.iters);
    const Result large = run(2048, b, args.iters);
    std::printf("%-14s %11.3f us %11.3f us\n", sim::format_time(b).c_str(),
                small.latency_us, large.latency_us);
  }
  std::printf("\nbudget 0 = pure passive waiting (context switches on every "
              "wait);\nbudgets past the one-way latency recover busy-wait "
              "latency -- the paper's ~5 us\nchoice covers small messages on "
              "this fabric\n");
  return 0;
}
