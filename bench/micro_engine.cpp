// Host-side microbenchmarks (google-benchmark): how fast the simulator
// itself runs. These measure wall-clock throughput of the substrate, not
// virtual-time results -- useful for keeping the simulator usable as the
// library grows.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <deque>
#include <vector>

#include "nmad/cluster.hpp"
#include "obs/metrics.hpp"
#include "simcore/engine.hpp"
#include "simthread/fiber.hpp"

using namespace pm2;

namespace {

void BM_EventScheduleAndRun(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine engine;
    const int n = static_cast<int>(state.range(0));
    for (int i = 0; i < n; ++i) {
      engine.schedule_at(i, [] {});
    }
    engine.run();
    benchmark::DoNotOptimize(engine.events_executed());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EventScheduleAndRun)->Arg(1000)->Arg(100000);

void BM_FiberSwitch(benchmark::State& state) {
  mth::Fiber* self = nullptr;
  bool stop = false;
  mth::Fiber fiber(
      [&] {
        while (!stop) self->suspend();
      },
      64 * 1024);
  self = &fiber;
  for (auto _ : state) {
    fiber.resume();
  }
  stop = true;
  fiber.resume();
  state.SetItemsProcessed(state.iterations() * 2);  // two switches per resume
}
BENCHMARK(BM_FiberSwitch);

void BM_CancelledEvents(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine engine;
    std::vector<sim::EventHandle> handles;
    for (int i = 0; i < 1000; ++i) {
      handles.push_back(engine.schedule_at(i, [] {}));
    }
    for (auto& h : handles) engine.cancel(h);
    engine.run();
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_CancelledEvents);

void BM_ScheduleCancelChurn(benchmark::State& state) {
  // Steady-state churn: a fixed-size window of pending events where each
  // fired event schedules a replacement and cancels a random victim.
  // Exercises slot reuse through the free list and lazy-cancel compaction;
  // after warm-up the loop should be allocation-free.
  const int kWindow = 512;
  sim::Engine engine;
  std::vector<sim::EventHandle> window;
  std::uint32_t rng = 0x9e3779b9u;
  auto next = [&rng] {
    rng ^= rng << 13;
    rng ^= rng >> 17;
    rng ^= rng << 5;
    return rng;
  };
  sim::Time t = 0;
  for (int i = 0; i < kWindow; ++i) {
    window.push_back(engine.schedule_at(++t, [] {}));
  }
  for (auto _ : state) {
    engine.cancel(window[next() % kWindow]);
    for (int i = 0; i < kWindow; ++i) {
      auto& h = window[i];
      if (!h.pending()) h = engine.schedule_at(++t, [] {});
    }
    engine.run_until(t - kWindow / 2);
    for (auto& h : window) {
      if (!h.pending()) h = engine.schedule_at(++t, [] {});
    }
  }
  state.SetItemsProcessed(state.iterations() * kWindow);
}
BENCHMARK(BM_ScheduleCancelChurn);

void BM_ScheduleBurstOutOfOrder(benchmark::State& state) {
  // Adversarial schedule order (decreasing times) so nothing rides the
  // monotone lane: measures the pure heap path.
  for (auto _ : state) {
    sim::Engine engine;
    const int n = static_cast<int>(state.range(0));
    for (int i = n; i-- > 0;) {
      engine.schedule_at(i, [] {});
    }
    engine.run();
    benchmark::DoNotOptimize(engine.events_executed());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ScheduleBurstOutOfOrder)->Arg(1000)->Arg(100000);

void BM_FiberCreateDestroy(benchmark::State& state) {
  // Fiber lifecycle cost; after the first iteration the stack comes from
  // mth::StackPool rather than a fresh mmap/new.
  for (auto _ : state) {
    mth::Fiber fiber([] {}, 64 * 1024);
    fiber.resume();
    benchmark::DoNotOptimize(fiber.finished());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FiberCreateDestroy);

void BM_PingpongEndToEnd(benchmark::State& state) {
  // Whole-stack host cost: one 64 B pingpong iteration (two nodes, fine
  // locking, busy waiting).
  const std::size_t kIters = 64;
  for (auto _ : state) {
    nm::ClusterConfig cfg;
    nm::Cluster world(cfg);
    world.spawn(0, [&world] {
      auto& c = world.core(0);
      auto* g = world.gate(0, 1);
      std::vector<std::uint8_t> m(64), b(64);
      for (std::size_t i = 0; i < kIters; ++i) {
        c.send(g, 1, m.data(), m.size());
        c.recv(g, 2, b.data(), b.size());
      }
    });
    world.spawn(1, [&world] {
      auto& c = world.core(1);
      auto* g = world.gate(1, 0);
      std::vector<std::uint8_t> b(64);
      for (std::size_t i = 0; i < kIters; ++i) {
        c.recv(g, 1, b.data(), b.size());
        c.send(g, 2, b.data(), b.size());
      }
    });
    world.run();
  }
  state.SetItemsProcessed(state.iterations() * kIters);
}
BENCHMARK(BM_PingpongEndToEnd)->Unit(benchmark::kMillisecond);

void BM_PingpongEndToEndMetrics(benchmark::State& state) {
  // Same workload as BM_PingpongEndToEnd with the metrics registry enabled:
  // the spread between the two is the hot-path cost of instrumentation
  // (ctest `metrics_overhead` asserts it stays under 3%).
  const std::size_t kIters = 64;
  auto& reg = obs::MetricsRegistry::global();
  reg.set_enabled(true);
  for (auto _ : state) {
    nm::ClusterConfig cfg;
    nm::Cluster world(cfg);
    world.spawn(0, [&world] {
      auto& c = world.core(0);
      auto* g = world.gate(0, 1);
      std::vector<std::uint8_t> m(64), b(64);
      for (std::size_t i = 0; i < kIters; ++i) {
        c.send(g, 1, m.data(), m.size());
        c.recv(g, 2, b.data(), b.size());
      }
    });
    world.spawn(1, [&world] {
      auto& c = world.core(1);
      auto* g = world.gate(1, 0);
      std::vector<std::uint8_t> b(64);
      for (std::size_t i = 0; i < kIters; ++i) {
        c.recv(g, 1, b.data(), b.size());
        c.send(g, 2, b.data(), b.size());
      }
    });
    world.run();
  }
  reg.set_enabled(false);
  state.SetItemsProcessed(state.iterations() * kIters);
}
BENCHMARK(BM_PingpongEndToEndMetrics)->Unit(benchmark::kMillisecond);

void BM_PingpongEndToEndSimsan(benchmark::State& state) {
  // Same workload with the concurrency analyzer on: the spread against
  // BM_PingpongEndToEnd is the cost of the lockset/vector-clock analysis
  // (ctest `simsan_overhead` asserts it stays under 10%).
  const std::size_t kIters = 64;
  for (auto _ : state) {
    nm::ClusterConfig cfg;
    nm::Cluster world(cfg);
    world.enable_simsan();
    world.spawn(0, [&world] {
      auto& c = world.core(0);
      auto* g = world.gate(0, 1);
      std::vector<std::uint8_t> m(64), b(64);
      for (std::size_t i = 0; i < kIters; ++i) {
        c.send(g, 1, m.data(), m.size());
        c.recv(g, 2, b.data(), b.size());
      }
    });
    world.spawn(1, [&world] {
      auto& c = world.core(1);
      auto* g = world.gate(1, 0);
      std::vector<std::uint8_t> b(64);
      for (std::size_t i = 0; i < kIters; ++i) {
        c.recv(g, 1, b.data(), b.size());
        c.send(g, 2, b.data(), b.size());
      }
    });
    world.run();
  }
  state.SetItemsProcessed(state.iterations() * kIters);
}
BENCHMARK(BM_PingpongEndToEndSimsan)->Unit(benchmark::kMillisecond);

void pingpong_traced_body(benchmark::State& state, bool legacy) {
  // Same workload with the full observability surface on -- Chrome-trace
  // timeline (scheduler spans, NIC tx/rx) plus flow-lifecycle stamps --
  // through either the lock-free binary trace rings (default) or the
  // mutexed direct-JSON fallback. The spread between the two variants is
  // the hot-path win of the ring sink; ctest `trace_overhead` asserts the
  // ring variant stays within 3% of BM_PingpongEndToEnd.
  const std::size_t kIters = 64;
  for (auto _ : state) {
    nm::ClusterConfig cfg;
    cfg.legacy_trace = legacy;
    nm::Cluster world(cfg);
    world.enable_timeline();
    world.enable_flow_trace();
    world.spawn(0, [&world] {
      auto& c = world.core(0);
      auto* g = world.gate(0, 1);
      std::vector<std::uint8_t> m(64), b(64);
      for (std::size_t i = 0; i < kIters; ++i) {
        c.send(g, 1, m.data(), m.size());
        c.recv(g, 2, b.data(), b.size());
      }
    });
    world.spawn(1, [&world] {
      auto& c = world.core(1);
      auto* g = world.gate(1, 0);
      std::vector<std::uint8_t> b(64);
      for (std::size_t i = 0; i < kIters; ++i) {
        c.recv(g, 1, b.data(), b.size());
        c.send(g, 2, b.data(), b.size());
      }
    });
    world.run();
  }
  state.SetItemsProcessed(state.iterations() * kIters);
}

void BM_PingpongEndToEndTraced(benchmark::State& state) {
  pingpong_traced_body(state, /*legacy=*/false);
}
BENCHMARK(BM_PingpongEndToEndTraced)->Unit(benchmark::kMillisecond);

void BM_PingpongEndToEndTracedLegacy(benchmark::State& state) {
  pingpong_traced_body(state, /*legacy=*/true);
}
BENCHMARK(BM_PingpongEndToEndTracedLegacy)->Unit(benchmark::kMillisecond);

void BM_ParallelEngine(benchmark::State& state) {
  // Partitioned-engine throughput: an 8-node world (4 independent pingpong
  // pairs), one partition per node, executed by range(0) host workers.
  // items/s = simulated events per wall-clock second.
  //
  // Two extra counters report what the partitioning achieves independently
  // of host core count (this matters on single-core CI hosts, where real
  // wall-clock scaling is not observable):
  //   parallelism  = total events / busiest partition's events -- the
  //                  speedup an unlimited-core host could reach;
  //   est_speedup  = total events / busiest worker's events at this worker
  //                  count (partition p runs on worker p % workers) -- the
  //                  speedup this configuration could reach, >= 1.7 at 2
  //                  workers on this balanced workload.
  const int workers = static_cast<int>(state.range(0));
  const int kNodes = 8;
  const std::size_t kIters = 32;
  std::uint64_t total = 0, part_max = 0, worker_max = 0;
  for (auto _ : state) {
    nm::ClusterConfig cfg;
    cfg.nodes = kNodes;
    cfg.partitions = kNodes;
    cfg.workers = workers;
    nm::Cluster world(cfg);
    for (int pair = 0; pair < kNodes / 2; ++pair) {
      const int a = 2 * pair, b = 2 * pair + 1;
      world.spawn(a, [&world, a, b] {
        auto& c = world.core(a);
        auto* g = world.gate(a, b);
        std::vector<std::uint8_t> m(256), buf(256);
        for (std::size_t i = 0; i < kIters; ++i) {
          c.send(g, 1, m.data(), m.size());
          c.recv(g, 2, buf.data(), buf.size());
        }
      });
      world.spawn(b, [&world, a, b] {
        auto& c = world.core(b);
        auto* g = world.gate(b, a);
        std::vector<std::uint8_t> buf(256);
        for (std::size_t i = 0; i < kIters; ++i) {
          c.recv(g, 1, buf.data(), buf.size());
          c.send(g, 2, buf.data(), buf.size());
        }
      });
    }
    world.run();
    auto& e = world.engine();
    total = e.events_executed();
    const int w = std::min(workers, e.num_partitions());
    std::vector<std::uint64_t> per_worker(static_cast<std::size_t>(w), 0);
    part_max = 0;
    for (int p = 0; p < e.num_partitions(); ++p) {
      const std::uint64_t n = e.partition_events_executed(p);
      part_max = std::max(part_max, n);
      per_worker[static_cast<std::size_t>(p % w)] += n;
    }
    worker_max = *std::max_element(per_worker.begin(), per_worker.end());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(total));
  state.counters["parallelism"] =
      static_cast<double>(total) / static_cast<double>(part_max);
  state.counters["est_speedup"] =
      static_cast<double>(total) / static_cast<double>(worker_max);
}
BENCHMARK(BM_ParallelEngine)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_LargeMessageBandwidth(benchmark::State& state) {
  // Host cost of the bulk data path: stream rendezvous-size messages with a
  // window of outstanding sends. items/s = messages/s of host (wall-clock)
  // throughput; bytes/s tracks how fast the simulator moves payload bytes.
  const std::size_t msg = static_cast<std::size_t>(state.range(0));
  const int kCount = 16;
  for (auto _ : state) {
    nm::ClusterConfig cfg;
    nm::Cluster world(cfg);
    world.spawn(0, [&world, msg] {
      auto& c = world.core(0);
      auto* g = world.gate(0, 1);
      std::vector<std::uint8_t> data(msg, 0x5a);
      std::deque<nm::Request*> window;
      for (int i = 0; i < kCount; ++i) {
        window.push_back(c.isend(g, 1, data.data(), data.size()));
        if (window.size() >= 4) {
          c.wait(window.front());
          c.release(window.front());
          window.pop_front();
        }
      }
      while (!window.empty()) {
        c.wait(window.front());
        c.release(window.front());
        window.pop_front();
      }
    });
    world.spawn(1, [&world, msg] {
      auto& c = world.core(1);
      auto* g = world.gate(1, 0);
      std::vector<std::uint8_t> buf(msg);
      for (int i = 0; i < kCount; ++i) {
        c.recv(g, 1, buf.data(), buf.size());
      }
    });
    world.run();
  }
  state.SetItemsProcessed(state.iterations() * kCount);
  state.SetBytesProcessed(state.iterations() * kCount *
                          static_cast<std::int64_t>(msg));
}
BENCHMARK(BM_LargeMessageBandwidth)
    ->Arg(64 * 1024)
    ->Arg(1024 * 1024)
    ->Unit(benchmark::kMillisecond);

void BM_ConcurrentSenders(benchmark::State& state) {
  // Fig. 5-style concurrent-senders scaling: range(0) sender threads on
  // node 0 each blocking-send 64 B messages on their own tag to a matching
  // receiver thread on node 1. range(1) picks the contention regime:
  //   0 = kCoarse (one big library lock),
  //   1 = kFine   (per-structure locks, still one shared instance),
  //   2 = kFine + one endpoint per thread (tag t hashes to endpoint t, so
  //       no two threads share collect/matching/transfer state).
  // Wall-clock items/s measures host cost as usual; the interesting result
  // is the *virtual* makespan counter: lock contention is simulated spin
  // time, so makespan_us orders the three regimes the way Fig. 5 orders
  // locking strategies, independent of host noise. The hard ordering gate
  // (endpoints beat kFine at 8 threads) is the `concurrent_senders_smoke`
  // ctest.
  //
  // The virtual clock is capped: under coarse locking at some thread
  // counts (e.g. 16 on these 4-core nodes) the deterministic schedule
  // locks into a starvation limit cycle among the spin-waiting senders and
  // the run never completes -- real systems escape such cycles through
  // timing noise the simulator deliberately lacks. A capped run with
  // messages missing IS the data point (progress collapse); vmsgs_per_s is
  // computed from messages actually received.
  const int threads = static_cast<int>(state.range(0));
  const int mode = static_cast<int>(state.range(1));
  const int kMsgs = 16;
  const sim::Time kCap = sim::milliseconds(10);
  sim::Time makespan = 0;
  double received = 0;
  for (auto _ : state) {
    nm::ClusterConfig cfg;
    cfg.nm.lock = mode == 0 ? nm::LockMode::kCoarse : nm::LockMode::kFine;
    if (mode == 2) cfg.endpoints = std::min(threads, 255);
    nm::Cluster world(cfg);
    // Makespan = virtual time the last thread exits, recorded by the
    // threads themselves: run_until() advances the clock to its deadline
    // even after the world drains, so engine().now() afterwards is kCap.
    sim::Time finished = 0;
    for (int t = 0; t < threads; ++t) {
      const nm::Tag tag = static_cast<nm::Tag>(t);
      world.spawn(0, [&world, &finished, tag, t] {
        auto& c = world.core(0);
        auto* g = world.gate(0, 1);
        std::vector<std::uint8_t> m(64, static_cast<std::uint8_t>(t));
        for (int i = 0; i < kMsgs; ++i) {
          c.send(g, tag, m.data(), m.size());
        }
        finished = std::max(finished, world.engine().now());
      });
      world.spawn(1, [&world, &finished, tag] {
        auto& c = world.core(1);
        auto* g = world.gate(1, 0);
        std::vector<std::uint8_t> buf(64);
        for (int i = 0; i < kMsgs; ++i) {
          c.recv(g, tag, buf.data(), buf.size());
        }
        finished = std::max(finished, world.engine().now());
      });
    }
    world.engine().run_until(kCap);
    const bool done = world.sched(0).live_threads() == 0 &&
                      world.sched(1).live_threads() == 0;
    makespan = done ? finished : kCap;
    received = static_cast<double>(world.core(1).stats().recvs);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(threads) * kMsgs);
  state.counters["makespan_us"] = static_cast<double>(makespan) / 1e3;
  state.counters["received"] = received;
  // Simulated messages per simulated second -- the scaling figure's y-axis.
  state.counters["vmsgs_per_s"] =
      received / (static_cast<double>(makespan) * 1e-9);
}
BENCHMARK(BM_ConcurrentSenders)
    ->ArgsProduct({{1, 8, 16, 64}, {0, 1, 2}})
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
