// Ablation: the optimization layer's aggregation strategy.
//
// The paper's Fig. 1 core layer exists to apply "dynamic scheduling
// optimizations ... such as packet reordering, coalescing". This bench
// quantifies that choice: a burst of small messages is pushed through the
// default (1 message = 1 packet) and the aggregating strategy; we report
// packets on the wire and burst completion time.
#include <cstdio>
#include <vector>

#include "bench/common/harness.hpp"

using namespace pm2;

namespace {

struct Result {
  double completion_us;
  std::uint64_t packets;
};

Result run_burst(nm::StrategyKind strategy, int count, std::size_t size) {
  nm::ClusterConfig cfg;
  cfg.nm.strategy = strategy;
  nm::Cluster world(cfg);
  sim::Time done = 0;
  world.spawn(0, [&world, count, size] {
    nm::Core& c = world.core(0);
    std::vector<std::uint8_t> data(size, 0x11);
    std::vector<nm::Request*> reqs;
    for (int i = 0; i < count; ++i) {
      reqs.push_back(c.isend(world.gate(0, 1), 1, data.data(), data.size()));
    }
    for (auto* r : reqs) {
      c.wait(r);
      c.release(r);
    }
  });
  world.spawn(1, [&world, count, size, &done] {
    nm::Core& c = world.core(1);
    std::vector<std::uint8_t> buf(size);
    for (int i = 0; i < count; ++i) {
      c.recv(world.gate(1, 0), 1, buf.data(), buf.size());
    }
    done = world.engine().now();
  });
  world.run();
  return {sim::to_us(done), world.nic(0, 0).packets_sent()};
}

}  // namespace

int main() {
  std::printf("Ablation: aggregation strategy (burst of small messages)\n\n");
  std::printf("%-8s %-8s  %18s %12s  %18s %12s  %8s\n", "count", "size",
              "default(us)", "packets", "aggreg(us)", "packets", "speedup");
  for (int count : {4, 16, 64}) {
    for (std::size_t size : {std::size_t{16}, std::size_t{256}, std::size_t{1024}}) {
      const Result d = run_burst(nm::StrategyKind::kDefault, count, size);
      const Result a = run_burst(nm::StrategyKind::kAggreg, count, size);
      std::printf("%-8d %-8zu  %18.2f %12llu  %18.2f %12llu  %7.2fx\n", count,
                  size, d.completion_us,
                  static_cast<unsigned long long>(d.packets), a.completion_us,
                  static_cast<unsigned long long>(a.packets),
                  d.completion_us / a.completion_us);
    }
  }
  std::printf("\naggregation coalesces queued messages into shared packets "
              "while the NIC is busy,\namortizing per-packet costs exactly as "
              "the paper's core layer intends\n");
  return 0;
}
