#!/usr/bin/env sh
# Build and run the tier-1 test suite under AddressSanitizer + UBSan, then
# again under ThreadSanitizer.
#
# The zero-copy data path hands pooled slabs across layers (strategy ->
# NIC -> matching -> adoption) by reference; ASan/UBSan is the memory-safety
# gate for that plumbing. The TSan pass exercises the ucontext fiber
# backend with TSan's fiber annotations (PM2SIM_SANITIZE=tsan forces it):
# the simulator is single-host-threaded, so a clean run certifies the
# fiber-switch bookkeeping, not application-level locking -- that is what
# simsan (src/simsan/) analyzes. Separate build trees keep the regular
# build untouched.
#
# Usage: bench/check_sanitize.sh [asan-build-dir [tsan-build-dir]]
#        (defaults: ./build-asan ./build-tsan)
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
asan_dir=${1:-"$repo_root/build-asan"}
tsan_dir=${2:-"$repo_root/build-tsan"}

cmake -S "$repo_root" -B "$asan_dir" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DPM2SIM_SANITIZE=address,undefined
cmake --build "$asan_dir" -j"$(nproc)"

# halt_on_error so UBSan failures are fatal, not just log lines.
UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1" \
  ctest --test-dir "$asan_dir" -j"$(nproc)" --output-on-failure

cmake -S "$repo_root" -B "$tsan_dir" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DPM2SIM_SANITIZE=tsan
cmake --build "$tsan_dir" -j"$(nproc)"

TSAN_OPTIONS="halt_on_error=1" \
  ctest --test-dir "$tsan_dir" -j"$(nproc)" --output-on-failure

echo "sanitizer suite clean (asan+ubsan, tsan)"
