#!/usr/bin/env sh
# Build and run the tier-1 test suite under AddressSanitizer + UBSan.
#
# The zero-copy data path hands pooled slabs across layers (strategy ->
# NIC -> matching -> adoption) by reference; this is the memory-safety
# gate for that plumbing. Uses a separate build tree so the regular build
# stays untouched.
#
# Usage: bench/check_sanitize.sh [build-dir]   (default: ./build-asan)
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build-asan"}

cmake -S "$repo_root" -B "$build_dir" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DPM2SIM_SANITIZE=address,undefined
cmake --build "$build_dir" -j"$(nproc)"

# halt_on_error so UBSan failures are fatal, not just log lines.
UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1" \
  ctest --test-dir "$build_dir" -j"$(nproc)" --output-on-failure

echo "sanitizer suite clean"
