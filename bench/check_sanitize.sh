#!/usr/bin/env sh
# Build and run the tier-1 test suite under AddressSanitizer + UBSan, then
# again under ThreadSanitizer.
#
# The zero-copy data path hands pooled slabs across layers (strategy ->
# NIC -> matching -> adoption) by reference; ASan/UBSan is the memory-safety
# gate for that plumbing. The TSan pass exercises the ucontext fiber
# backend with TSan's fiber annotations (PM2SIM_SANITIZE=tsan forces it)
# AND the partitioned parallel engine: the ParallelEngine/ParallelCluster
# suites plus the explicit multi-worker bench run below put real host
# threads on the window barrier, the cross-partition mailboxes and the
# sharded singletons. Simulated application-level locking is what simsan
# (src/simsan/) analyzes. Separate build trees keep the regular build
# untouched.
#
# Usage: bench/check_sanitize.sh [asan-build-dir [tsan-build-dir]]
#        (defaults: ./build-asan ./build-tsan)
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
asan_dir=${1:-"$repo_root/build-asan"}
tsan_dir=${2:-"$repo_root/build-tsan"}

cmake -S "$repo_root" -B "$asan_dir" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DPM2SIM_SANITIZE=address,undefined
cmake --build "$asan_dir" -j"$(nproc)"

# halt_on_error so UBSan failures are fatal, not just log lines.
UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1" \
  ctest --test-dir "$asan_dir" -j"$(nproc)" --output-on-failure

cmake -S "$repo_root" -B "$tsan_dir" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DPM2SIM_SANITIZE=tsan
cmake --build "$tsan_dir" -j"$(nproc)"

TSAN_OPTIONS="halt_on_error=1" \
  ctest --test-dir "$tsan_dir" -j"$(nproc)" --output-on-failure

# Parallel-mode pass under TSan: the engine/cluster suites that drive
# multiple host workers, then a whole figure bench at workers=2 (simsan
# analysis included) so the full stack crosses the window barrier.
TSAN_OPTIONS="halt_on_error=1" \
  "$tsan_dir"/tests/test_simcore --gtest_filter='ParallelEngine.*'
TSAN_OPTIONS="halt_on_error=1" \
  "$tsan_dir"/tests/test_nmad_units --gtest_filter='ParallelCluster.*'
TSAN_OPTIONS="halt_on_error=1" \
  "$tsan_dir"/bench/fig3_locking --iters=5 --warmup=1 --simsan=on \
  --partitions=2 --workers=2 > /dev/null
# Scalable endpoints under TSan: the per-endpoint suite (including the
# seeded multi-producer stress test) with real host workers, then fig3 on
# the multi-endpoint progress path at workers=2.
TSAN_OPTIONS="halt_on_error=1" \
  "$tsan_dir"/tests/test_nmad_units --gtest_filter='Endpoints.*:EndpointStress.*'
TSAN_OPTIONS="halt_on_error=1" \
  "$tsan_dir"/bench/fig3_locking --iters=5 --warmup=1 --simsan=on \
  --partitions=2 --workers=2 --endpoints=4 > /dev/null
# Lock-free trace-ring suite under TSan: real producer/consumer threads on
# the SPSC ring, the drain thread, the intern table, and the multi-worker
# traced cluster all cross host-thread boundaries here.
TSAN_OPTIONS="halt_on_error=1" \
  "$tsan_dir"/tests/test_obs --gtest_filter='TraceRing.*:TraceLog.*'

echo "sanitizer suite clean (asan+ubsan, tsan incl. parallel engine)"
