// Ablation: the eager/rendezvous switch-over threshold.
//
// Eager sends cost an extra copy (or unexpected-buffer landing) but no
// handshake; rendezvous costs an RTS/CTS round trip but lands in place.
// The crossover justifies the default 32 KiB threshold (MX-like).
#include <cstdio>
#include <vector>

#include "bench/common/harness.hpp"

using namespace pm2;

namespace {

double oneway_us(std::size_t size, std::size_t threshold, int iters) {
  nm::ClusterConfig cfg;
  cfg.nm.rdv_threshold = threshold;
  bench::PingpongOptions opt;
  opt.iters = iters;
  opt.warmup = 5;
  auto series = bench::run_pingpong("x", cfg, {size}, opt);
  return series.latency_us[0];
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  std::printf("Ablation: eager vs rendezvous protocol per message size "
              "(one-way, us)\n\n");
  std::printf("%-10s %16s %16s %12s\n", "size", "forced eager",
              "forced rdv", "rdv/eager");
  // threshold greater than size => eager; zero threshold => rendezvous.
  for (std::size_t size = 4096; size <= 512 * 1024; size *= 2) {
    const double eager = oneway_us(size, 1 << 30, args.iters);
    const double rdv = oneway_us(size, 0, args.iters);
    std::printf("%-10zu %13.2f us %13.2f us %11.2f\n", size, eager, rdv,
                rdv / eager);
  }
  std::printf("\nthe handshake's extra round trip dominates for small "
              "messages and amortizes for\nlarge ones; the in-place landing "
              "avoids the eager copy. Crossover near tens of KiB\nsupports "
              "the default 32 KiB threshold.\n");
  return 0;
}
