// Fig. 5 -- "Two threads perform concurrently pingpong programs".
//
// Two threads on each node run independent pingpong streams (distinct tags)
// over the same NIC. Paper result: with coarse-grain locking each stream
// sees roughly TWICE the single-thread latency (communication is fully
// serialized by the library-wide lock); fine-grain locking performs
// markedly better, though still above single-thread latency (NIC sharing
// and residual lock contention).
#include <cstdio>

#include "bench/common/harness.hpp"

using namespace pm2;

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  const auto sizes = bench::small_sizes();

  bench::PingpongOptions single;
  single.iters = args.iters;
  single.warmup = args.warmup;

  nm::ClusterConfig fine;
  bench::apply_parallel(args, fine);
  fine.nm.lock = nm::LockMode::kFine;
  nm::ClusterConfig coarse;
  bench::apply_parallel(args, coarse);
  coarse.nm.lock = nm::LockMode::kCoarse;

  std::vector<bench::Series> series;
  series.push_back(bench::run_pingpong("1 thread", fine, sizes, single));

  bench::PingpongOptions dual = single;
  dual.streams = 2;

  bench::Series f2 = bench::run_pingpong("fine x2", fine, sizes, dual);
  bench::Series c2 = bench::run_pingpong("coarse x2", coarse, sizes, dual);

  auto stream_series = [](const bench::Series& s, int k, std::string label) {
    bench::Series out;
    out.label = std::move(label);
    out.latency_us = s.per_stream_us[static_cast<std::size_t>(k)];
    return out;
  };
  series.push_back(stream_series(f2, 0, "fine (thread 1)"));
  series.push_back(stream_series(f2, 1, "fine (thread 2)"));
  series.push_back(stream_series(c2, 0, "coarse (thread 1)"));
  series.push_back(stream_series(c2, 1, "coarse (thread 2)"));

  bench::print_table(
      "Fig. 5: two concurrent pingpong threads (one-way latency, us)", sizes,
      series);

  std::printf("\nratio vs 1 thread:\n%-10s  %10s  %10s\n", "size(B)", "fine",
              "coarse");
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    std::printf("%-10zu  %10.2f  %10.2f\n", sizes[i],
                f2.latency_us[i] / series[0].latency_us[i],
                c2.latency_us[i] / series[0].latency_us[i]);
  }
  std::printf("\npaper: coarse ~= 2x single-thread latency (serialized); "
              "fine markedly better but above 1x\n");

  bench::write_csv(args.csv, sizes, series);

  // --simsan=on: both locked configurations must analyze clean on the
  // concurrent workload this figure is about.
  bench::run_simsan_report(args, "fine x2", fine);
  bench::run_simsan_report(args, "coarse x2", coarse);

  // --metrics-out: instrumented run on the fine-grain configuration.
  bench::write_metrics_report(args, fine);
  return 0;
}
