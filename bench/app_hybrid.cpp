// Application-level benchmark: hybrid threads + message passing.
//
// The paper's conclusion names this as the point of the whole exercise:
// "benchmark our multi-threaded communication library with real
// applications that mix multi-threading and message passing". This bench
// runs a BSP-style application kernel -- per-iteration: multi-threaded
// compute, halo exchange, allreduce -- across the library configurations
// the paper studies, and reports whole-application completion time:
//
//   a) coarse locking + busy waiting        (thread-safe baseline)
//   b) fine locking + busy waiting          (parallel library access)
//   c) fine + fixed-spin + PIOMan hooks     (the paper's full recipe)
//   d) fine + passive waiting + hooks       (cores freed while waiting)
//
// Unlike the microbenchmarks, compute threads oversubscribe the cores, so
// cycles burned in waiting policies translate into lost application time.
#include <cstdio>
#include <vector>

#include "madmpi/madmpi.hpp"
#include "sync/barrier.hpp"

using namespace pm2;

namespace {

constexpr int kNodes = 4;
constexpr int kThreadsPerNode = 6;  // > 4 cores: oversubscribed
constexpr int kIterations = 30;
constexpr std::size_t kHalo = 8 * 1024;
constexpr sim::Time kComputePerThread = sim::microseconds(40);

double run_app(nm::LockMode lock, nm::WaitMode wait, nm::ProgressMode progress,
               const char* label) {
  nm::ClusterConfig cfg;
  cfg.nodes = kNodes;
  cfg.nm.lock = lock;
  cfg.nm.wait = wait;
  cfg.nm.progress = progress;
  nm::Cluster world(cfg);

  std::vector<std::unique_ptr<sync::Barrier>> barriers;
  for (int n = 0; n < kNodes; ++n) {
    barriers.push_back(std::make_unique<sync::Barrier>(world.sched(n),
                                                       kThreadsPerNode, "bsp"));
  }

  for (int node = 0; node < kNodes; ++node) {
    for (int t = 0; t < kThreadsPerNode; ++t) {
      world.spawn(node, [&world, &barriers, node, t] {
        madmpi::Comm comm(world, node);
        auto& sched = world.sched(node);
        std::vector<std::uint8_t> halo_out(kHalo, 1), halo_in(kHalo);
        double acc = 1.0;
        for (int iter = 0; iter < kIterations; ++iter) {
          sched.work(kComputePerThread);  // local compute slice
          // Boundary threads exchange halos with both ring neighbours,
          // concurrently with each other (thread-multiple access).
          if (t == 0) {
            comm.sendrecv((node + 1) % kNodes, 10, halo_out.data(), kHalo,
                          (node - 1 + kNodes) % kNodes, 10, halo_in.data(),
                          kHalo);
          } else if (t == 1) {
            comm.sendrecv((node - 1 + kNodes) % kNodes, 11, halo_out.data(),
                          kHalo, (node + 1) % kNodes, 11, halo_in.data(),
                          kHalo);
          }
          barriers[static_cast<std::size_t>(node)]->arrive_and_wait();
          if (t == 0) {
            comm.allreduce_sum(&acc, 1);  // global convergence check
          }
          barriers[static_cast<std::size_t>(node)]->arrive_and_wait();
        }
      }, std::string(label) + "-w" + std::to_string(t));
    }
  }
  world.run();
  return sim::to_us(world.engine().now()) / 1000.0;  // ms
}

}  // namespace

int main() {
  std::printf("Hybrid application kernel: %d nodes x %d threads "
              "(oversubscribed on 4 cores),\n%d iterations of "
              "[compute, halo exchange, allreduce]\n\n",
              kNodes, kThreadsPerNode, kIterations);
  struct Cfg {
    const char* label;
    nm::LockMode lock;
    nm::WaitMode wait;
    nm::ProgressMode progress;
  };
  const Cfg cfgs[] = {
      {"coarse + busy", nm::LockMode::kCoarse, nm::WaitMode::kBusy,
       nm::ProgressMode::kAppDriven},
      {"fine + busy", nm::LockMode::kFine, nm::WaitMode::kBusy,
       nm::ProgressMode::kAppDriven},
      {"fine + fixed-spin + hooks", nm::LockMode::kFine,
       nm::WaitMode::kFixedSpin, nm::ProgressMode::kPiomanHooks},
      {"fine + passive + hooks", nm::LockMode::kFine, nm::WaitMode::kPassive,
       nm::ProgressMode::kPiomanHooks},
  };
  double base = 0;
  for (const Cfg& c : cfgs) {
    const double ms = run_app(c.lock, c.wait, c.progress, c.label);
    if (base == 0) base = ms;
    std::printf("%-28s %10.3f ms   %+6.1f%%\n", c.label, ms,
                (ms - base) / base * 100.0);
  }
  std::printf("\nwith more threads than cores, passive/fixed-spin waiting "
              "returns waiting cycles\nto compute threads -- the paper's "
              "Sec. 3.3 argument at application level\n");
  return 0;
}
