// pm2sim -- shared benchmark harness.
//
// Reproduces the paper's measurement methodology: pingpong tests between
// two nodes, reporting one-way latency (half the round-trip) per message
// size, median over many iterations on the deterministic virtual clock.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "nmad/cluster.hpp"

namespace pm2::bench {

/// Message sizes used by Figs. 3/5/6/7/8: 1 B .. 2 KB, powers of two.
std::vector<std::size_t> small_sizes();

/// Fig. 9 sizes: 2 KB .. 32 KB.
std::vector<std::size_t> overlap_sizes();

struct PingpongOptions {
  int iters = 200;
  int warmup = 20;
  /// Core the application thread binds to on both nodes (-1 = unbound).
  int app_core = 0;
  /// Spawn dedicated progression threads (ProgressMode::kPollThread).
  bool poll_threads = false;
  /// Virtual compute time inserted between isend and wait (Fig. 9).
  sim::Time compute_phase = 0;
  /// Number of concurrent pingpong thread pairs (Fig. 5); threads are bound
  /// to cores app_core, app_core+1, ...
  int streams = 1;
};

struct Series {
  std::string label;
  /// Median one-way latency in microseconds, one entry per size; for
  /// multi-stream runs, per-stream medians are averaged.
  std::vector<double> latency_us;
  /// Per-stream medians (streams x sizes), for Fig. 5-style reporting.
  std::vector<std::vector<double>> per_stream_us;
};

/// Run a pingpong sweep over @p sizes with the given cluster config.
Series run_pingpong(const std::string& label, const nm::ClusterConfig& cfg,
                    const std::vector<std::size_t>& sizes,
                    const PingpongOptions& opt);

/// Print a paper-style table: size column + one column per series.
void print_table(const std::string& title, const std::vector<std::size_t>& sizes,
                 const std::vector<Series>& series);

/// Write the same data as CSV to @p path (empty = skip).
void write_csv(const std::string& path, const std::vector<std::size_t>& sizes,
               const std::vector<Series>& series);

/// Tiny argv parser shared by the figure benches: recognizes
/// --iters=N, --warmup=N, --csv=PATH, --metrics-out=PATH, --simsan=on|off,
/// --partitions=N, --workers=N, --endpoints=N, --trace=ring|legacy.
struct BenchArgs {
  int iters = 200;
  int warmup = 20;
  /// Engine partitions / host worker threads for every world the bench
  /// builds (ClusterConfig::partitions/workers). Defaults 1/1 = the
  /// single-threaded reference engine. At a fixed partition count, results
  /// are byte-identical for any worker count.
  int partitions = 1;
  int workers = 1;
  /// nmad endpoints per node (ClusterConfig::endpoints). Default 1 = the
  /// single shared library instance; figure outputs are byte-identical to
  /// a build without endpoint support at 1.
  int endpoints = 1;
  std::string csv;
  /// When set, run one instrumented pingpong after the sweep and write a
  /// metrics + flow-stage report (JSON) here, plus a Perfetto timeline with
  /// send->recv flow arrows at <PATH>.trace.json.
  std::string metrics_out;
  /// --simsan=on: after the sweep, run a concurrency-analysis pingpong per
  /// configuration and print the simsan report. Off by default; the figure
  /// sweeps themselves always run unanalyzed, so CSV output is identical
  /// either way.
  bool simsan = false;
  /// --trace=legacy: record the --metrics-out timeline through the mutexed
  /// direct-JSON path instead of the lock-free binary trace rings (debug
  /// fallback; no .trace.bin is written then). --trace=ring is the default.
  bool legacy_trace = false;
};
BenchArgs parse_args(int argc, char** argv);

/// Copy the parallel-engine knobs (--partitions/--workers) into a cluster
/// config. Every fig bench calls this on each config it builds so existing
/// sweeps can opt in from the command line.
void apply_parallel(const BenchArgs& args, nm::ClusterConfig& cfg);

/// Honour --simsan=on: run a two-stream blocking pingpong on @p cfg under
/// the simsan analyzer (a separate world, after the sweep) and print the
/// findings report to stdout. Two streams sharing each node's gate is the
/// smallest workload where LockMode::kNone provably races on the collect
/// and matching lists. No-op when args.simsan is false. Returns the number
/// of findings (0 when disabled).
std::size_t run_simsan_report(const BenchArgs& args, const std::string& label,
                              const nm::ClusterConfig& cfg);

/// Honour --metrics-out: enable the metrics registry, run a short pingpong
/// on @p cfg with flow tracing and timeline recording, write the combined
/// report, then disable the registry again so figure sweeps stay
/// metrics-free. No-op when args.metrics_out is empty.
void write_metrics_report(const BenchArgs& args, const nm::ClusterConfig& cfg);

}  // namespace pm2::bench
