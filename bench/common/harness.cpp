#include "bench/common/harness.hpp"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <stdexcept>

#include "obs/flow.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "simcore/stats.hpp"
#include "simsan/simsan.hpp"

namespace pm2::bench {

std::vector<std::size_t> small_sizes() {
  std::vector<std::size_t> s;
  for (std::size_t n = 1; n <= 2048; n *= 2) s.push_back(n);
  return s;
}

std::vector<std::size_t> overlap_sizes() {
  std::vector<std::size_t> s;
  for (std::size_t n = 2048; n <= 32768; n *= 2) s.push_back(n);
  return s;
}

namespace {

std::vector<std::uint8_t> make_pattern(std::size_t n, std::uint8_t seed) {
  std::vector<std::uint8_t> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<std::uint8_t>(seed + i * 13);
  }
  return v;
}

/// One pingpong stream at one size; returns the median one-way latency (us).
double run_stream_size(const nm::ClusterConfig& cfg, std::size_t size,
                       const PingpongOptions& opt, int stream,
                       int total_streams) {
  nm::Cluster world(cfg);
  const nm::Tag tag_ping = 1000 + static_cast<nm::Tag>(stream);
  const nm::Tag tag_pong = 2000 + static_cast<nm::Tag>(stream);
  sim::SampleSet samples;

  if (opt.poll_threads) {
    world.core(0).start_poll_thread();
    world.core(1).start_poll_thread();
  }

  const int iters = opt.iters;
  const int warmup = opt.warmup;
  const int app_core = opt.app_core;
  (void)total_streams;

  world.spawn(0, [&, size] {
    nm::Core& c = world.core(0);
    nm::Gate* g = world.gate(0, 1);
    auto msg = make_pattern(size, 3);
    std::vector<std::uint8_t> back(size);
    auto& sched = world.sched(0);
    for (int i = 0; i < warmup + iters; ++i) {
      const sim::Time t0 = world.engine().now();
      nm::Request* rr = c.irecv(g, tag_pong, back.data(), back.size());
      nm::Request* sr = c.isend(g, tag_ping, msg.data(), msg.size());
      if (opt.compute_phase > 0) sched.work(opt.compute_phase);
      c.wait(rr);
      c.wait(sr);
      c.release(rr);
      c.release(sr);
      const sim::Time t1 = world.engine().now();
      if (i >= warmup) samples.add(sim::to_us(t1 - t0) / 2.0);
    }
    if (opt.poll_threads) world.core(0).stop_poll_thread();
  }, "ping", app_core);

  world.spawn(1, [&, size] {
    nm::Core& c = world.core(1);
    nm::Gate* g = world.gate(1, 0);
    std::vector<std::uint8_t> buf(size);
    auto& sched = world.sched(1);
    for (int i = 0; i < warmup + iters; ++i) {
      nm::Request* rr = c.irecv(g, tag_ping, buf.data(), buf.size());
      c.wait(rr);
      c.release(rr);
      nm::Request* sr = c.isend(g, tag_pong, buf.data(), buf.size());
      // Mirror structure: the compute phase sits between isend and wait.
      if (opt.compute_phase > 0) sched.work(opt.compute_phase);
      c.wait(sr);
      c.release(sr);
    }
    if (opt.poll_threads) world.core(1).stop_poll_thread();
  }, "pong", app_core);

  world.run();
  return samples.median();
}

/// Multi-stream run (Fig. 5): all streams share one cluster; stream k's
/// threads bind to core app_core + k on each node.
std::vector<double> run_streams_size(const nm::ClusterConfig& cfg,
                                     std::size_t size,
                                     const PingpongOptions& opt) {
  nm::Cluster world(cfg);
  std::vector<sim::SampleSet> samples(static_cast<std::size_t>(opt.streams));

  for (int s = 0; s < opt.streams; ++s) {
    const nm::Tag tag_ping = 1000 + static_cast<nm::Tag>(s);
    const nm::Tag tag_pong = 2000 + static_cast<nm::Tag>(s);
    const int core = opt.app_core + s;

    // Blocking send/recv, as in a classic threaded pingpong: the receive is
    // posted inside the timed visit, so under coarse locking a thread's
    // whole round trip keeps the other thread out of the library -- the
    // serialization Fig. 5 demonstrates.
    world.spawn(0, [&world, &samples, size, s, tag_ping, tag_pong, &opt] {
      nm::Core& c = world.core(0);
      nm::Gate* g = world.gate(0, 1);
      auto msg = make_pattern(size, static_cast<std::uint8_t>(s));
      std::vector<std::uint8_t> back(size);
      for (int i = 0; i < opt.warmup + opt.iters; ++i) {
        const sim::Time t0 = world.engine().now();
        c.send(g, tag_ping, msg.data(), msg.size());
        c.recv(g, tag_pong, back.data(), back.size());
        const sim::Time t1 = world.engine().now();
        if (i >= opt.warmup) {
          samples[static_cast<std::size_t>(s)].add(sim::to_us(t1 - t0) / 2.0);
        }
      }
    }, "ping" + std::to_string(s), core);

    world.spawn(1, [&world, size, tag_ping, tag_pong, &opt] {
      nm::Core& c = world.core(1);
      nm::Gate* g = world.gate(1, 0);
      std::vector<std::uint8_t> buf(size);
      for (int i = 0; i < opt.warmup + opt.iters; ++i) {
        c.recv(g, tag_ping, buf.data(), buf.size());
        c.send(g, tag_pong, buf.data(), buf.size());
      }
    }, "pong" + std::to_string(s), core);
  }

  world.run();
  std::vector<double> medians;
  for (auto& s : samples) medians.push_back(s.median());
  return medians;
}

}  // namespace

Series run_pingpong(const std::string& label, const nm::ClusterConfig& cfg,
                    const std::vector<std::size_t>& sizes,
                    const PingpongOptions& opt) {
  Series out;
  out.label = label;
  out.per_stream_us.resize(static_cast<std::size_t>(opt.streams));
  for (std::size_t size : sizes) {
    if (opt.streams == 1) {
      const double us = run_stream_size(cfg, size, opt, 0, 1);
      out.latency_us.push_back(us);
      out.per_stream_us[0].push_back(us);
    } else {
      const auto per = run_streams_size(cfg, size, opt);
      double sum = 0;
      for (int s = 0; s < opt.streams; ++s) {
        out.per_stream_us[static_cast<std::size_t>(s)].push_back(
            per[static_cast<std::size_t>(s)]);
        sum += per[static_cast<std::size_t>(s)];
      }
      out.latency_us.push_back(sum / opt.streams);
    }
  }
  return out;
}

void print_table(const std::string& title, const std::vector<std::size_t>& sizes,
                 const std::vector<Series>& series) {
  std::printf("\n%s\n", title.c_str());
  std::printf("%-10s", "size(B)");
  for (const auto& s : series) std::printf("  %22s", s.label.c_str());
  std::printf("\n");
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    std::printf("%-10zu", sizes[i]);
    for (const auto& s : series) std::printf("  %19.3f us", s.latency_us[i]);
    std::printf("\n");
  }
}

void write_csv(const std::string& path, const std::vector<std::size_t>& sizes,
               const std::vector<Series>& series) {
  if (path.empty()) return;
  std::ofstream f(path);
  if (!f) throw std::runtime_error("cannot open csv path: " + path);
  f << "size_bytes";
  for (const auto& s : series) f << "," << s.label;
  f << "\n";
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    f << sizes[i];
    for (const auto& s : series) f << "," << s.latency_us[i];
    f << "\n";
  }
  std::printf("csv written: %s\n", path.c_str());
}

BenchArgs parse_args(int argc, char** argv) {
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strncmp(a, "--iters=", 8) == 0) {
      args.iters = std::atoi(a + 8);
    } else if (std::strncmp(a, "--warmup=", 9) == 0) {
      args.warmup = std::atoi(a + 9);
    } else if (std::strncmp(a, "--csv=", 6) == 0) {
      args.csv = a + 6;
    } else if (std::strncmp(a, "--metrics-out=", 14) == 0) {
      args.metrics_out = a + 14;
    } else if (std::strncmp(a, "--simsan=", 9) == 0) {
      const char* v = a + 9;
      args.simsan = std::strcmp(v, "on") == 0 || std::strcmp(v, "1") == 0;
    } else if (std::strncmp(a, "--partitions=", 13) == 0) {
      args.partitions = std::atoi(a + 13);
    } else if (std::strncmp(a, "--workers=", 10) == 0) {
      args.workers = std::atoi(a + 10);
    } else if (std::strncmp(a, "--endpoints=", 12) == 0) {
      args.endpoints = std::atoi(a + 12);
    } else if (std::strncmp(a, "--trace=", 8) == 0) {
      args.legacy_trace = std::strcmp(a + 8, "legacy") == 0;
    } else {
      std::fprintf(stderr, "unknown arg: %s\n", a);
    }
  }
  return args;
}

void apply_parallel(const BenchArgs& args, nm::ClusterConfig& cfg) {
  cfg.partitions = args.partitions;
  cfg.workers = args.workers;
  cfg.endpoints = args.endpoints;
  cfg.legacy_trace = args.legacy_trace;
}

std::size_t run_simsan_report(const BenchArgs& args, const std::string& label,
                              const nm::ClusterConfig& cfg) {
  if (!args.simsan) return 0;

  constexpr std::size_t kSize = 64;
  constexpr int kIters = 50;
  constexpr int kStreams = 2;
  // Both streams share core 0 on each node. A thread that is paying for
  // virtual time keeps its core, so same-core threads only interleave at
  // scheduling boundaries -- which keeps the *host* data structures intact
  // even under LockMode::kNone, while the accesses of the two streams stay
  // unordered by happens-before (a context switch is not synchronization)
  // and the analyzer still proves the race.
  constexpr int kAppCore = 0;
  {
    nm::Cluster world(cfg);
    world.enable_simsan();
    const bool poll_threads = cfg.nm.progress == nm::ProgressMode::kPollThread;
    if (poll_threads) {
      world.core(0).start_poll_thread();
      world.core(1).start_poll_thread();
    }
    // Host-side bookkeeping (single host thread, no sim state): the last
    // stream to finish on each node stops that node's poll thread.
    int remaining[2] = {kStreams, kStreams};

    for (int s = 0; s < kStreams; ++s) {
      const nm::Tag tag_ping = 1000 + static_cast<nm::Tag>(s);
      const nm::Tag tag_pong = 2000 + static_cast<nm::Tag>(s);

      world.spawn(0, [&world, &remaining, s, tag_ping, tag_pong,
                      poll_threads] {
        nm::Core& c = world.core(0);
        nm::Gate* g = world.gate(0, 1);
        auto msg = make_pattern(kSize, static_cast<std::uint8_t>(s));
        std::vector<std::uint8_t> back(kSize);
        for (int i = 0; i < kIters; ++i) {
          c.send(g, tag_ping, msg.data(), msg.size());
          c.recv(g, tag_pong, back.data(), back.size());
        }
        if (poll_threads && --remaining[0] == 0) {
          world.core(0).stop_poll_thread();
        }
      }, "ping" + std::to_string(s), kAppCore);

      world.spawn(1, [&world, &remaining, s, tag_ping, tag_pong,
                      poll_threads] {
        nm::Core& c = world.core(1);
        nm::Gate* g = world.gate(1, 0);
        std::vector<std::uint8_t> buf(kSize);
        for (int i = 0; i < kIters; ++i) {
          c.recv(g, tag_ping, buf.data(), buf.size());
          c.send(g, tag_pong, buf.data(), buf.size());
        }
        if (poll_threads && --remaining[1] == 0) {
          world.core(1).stop_poll_thread();
        }
      }, "pong" + std::to_string(s), kAppCore);
    }

    world.run();
    std::printf("\n== simsan [%s] ==\n", label.c_str());
    // Merged across analyzer shards (one per engine partition), in shard
    // index order -- byte-identical for any worker count.
    san::Analyzer::merged_print_report(stdout);
  }  // ~Cluster disables the analyzer; findings stay readable
  return san::Analyzer::merged_total_findings();
}

void write_metrics_report(const BenchArgs& args, const nm::ClusterConfig& cfg) {
  if (args.metrics_out.empty()) return;

  auto& reg = obs::MetricsRegistry::global();
  reg.set_enabled(true);
  {
    nm::Cluster world(cfg);
    world.enable_timeline();
    obs::FlowTracer& flow = world.enable_flow_trace();
    reg.reset_values();

    constexpr std::size_t kSize = 64;
    constexpr int kIters = 100;
    const bool poll_threads = cfg.nm.progress == nm::ProgressMode::kPollThread;
    if (poll_threads) {
      world.core(0).start_poll_thread();
      world.core(1).start_poll_thread();
    }

    world.spawn(0, [&world, poll_threads] {
      nm::Core& c = world.core(0);
      nm::Gate* g = world.gate(0, 1);
      auto msg = make_pattern(kSize, 3);
      std::vector<std::uint8_t> back(kSize);
      for (int i = 0; i < kIters; ++i) {
        nm::Request* rr = c.irecv(g, 2000, back.data(), back.size());
        nm::Request* sr = c.isend(g, 1000, msg.data(), msg.size());
        c.wait(rr);
        c.wait(sr);
        c.release(rr);
        c.release(sr);
      }
      if (poll_threads) world.core(0).stop_poll_thread();
    }, "ping", 0);

    world.spawn(1, [&world, poll_threads] {
      nm::Core& c = world.core(1);
      nm::Gate* g = world.gate(1, 0);
      std::vector<std::uint8_t> buf(kSize);
      for (int i = 0; i < kIters; ++i) {
        nm::Request* rr = c.irecv(g, 1000, buf.data(), buf.size());
        c.wait(rr);
        c.release(rr);
        nm::Request* sr = c.isend(g, 2000, buf.data(), buf.size());
        c.wait(sr);
        c.release(sr);
      }
      if (poll_threads) world.core(1).stop_poll_thread();
    }, "pong", 0);

    world.run();
    obs::write_report(args.metrics_out, reg, &flow, world.trace_log());
    world.write_timeline(args.metrics_out + ".trace.json");
    if (world.trace_log() != nullptr) {
      obs::TraceLog& log = *world.trace_log();
      world.write_trace_binary(args.metrics_out + ".trace.bin");
      std::printf(
          "metrics report written: %s (timeline: %s.trace.json, binary: "
          "%s.trace.bin; %zu trace records, %llu dropped)\n",
          args.metrics_out.c_str(), args.metrics_out.c_str(),
          args.metrics_out.c_str(), log.record_count(),
          static_cast<unsigned long long>(log.dropped()));
    } else {
      std::printf("metrics report written: %s (timeline: %s.trace.json)\n",
                  args.metrics_out.c_str(), args.metrics_out.c_str());
    }
  }
  reg.set_enabled(false);
}

}  // namespace pm2::bench
