// Guard: scalable endpoints keep their data paths race-free.
//
// Two acceptance claims, mirroring Fig. 3's concurrency analysis:
//  1. endpoints=1 under LockMode::kNone still reports the 6 known races
//     (both nodes' collect lists, matching tables and transfer lists) --
//     the endpoint refactor must not have hidden the paper's baseline
//     hazards behind the new indirection;
//  2. endpoints=4 under fine locking, with four concurrent streams hashing
//     to four distinct endpoints on each node, reports zero findings: the
//     per-endpoint data paths share nothing unprotected, and every shared
//     structure (wildcard queue, rx parking, NIC poll serialization) is
//     covered by its own lock.
#include <cstdio>
#include <string>
#include <vector>

#include "nmad/cluster.hpp"
#include "simsan/simsan.hpp"

using namespace pm2;

namespace {

constexpr int kIters = 50;
constexpr std::size_t kSize = 64;
// All streams share core 0 on each node: threads paying for virtual time
// keep their core, so same-core threads only interleave at scheduling
// boundaries -- the *host* data structures survive even LockMode::kNone
// while the streams' accesses stay unordered by happens-before, which is
// exactly what the analyzer must flag.
constexpr int kAppCore = 0;

/// Two-node multi-stream pingpong; stream s uses ping tag 1000+s and pong
/// tag 2000+s, so with 4 endpoints both directions of stream s hash to
/// endpoint s (1000 and 2000 are multiples of 4). Returns the merged
/// finding count.
std::size_t analyzed_findings(nm::LockMode lock, int endpoints,
                              int streams) {
  nm::ClusterConfig cfg;
  cfg.nm.lock = lock;
  cfg.endpoints = endpoints;
  nm::Cluster world(cfg);
  world.enable_simsan();
  for (int s = 0; s < streams; ++s) {
    const nm::Tag ping = 1000 + static_cast<nm::Tag>(s);
    const nm::Tag pong = 2000 + static_cast<nm::Tag>(s);
    world.spawn(0, [&world, s, ping, pong] {
      nm::Core& c = world.core(0);
      nm::Gate* g = world.gate(0, 1);
      std::vector<std::uint8_t> msg(kSize, static_cast<std::uint8_t>(s));
      std::vector<std::uint8_t> back(kSize);
      for (int i = 0; i < kIters; ++i) {
        c.send(g, ping, msg.data(), msg.size());
        c.recv(g, pong, back.data(), back.size());
      }
    }, "ping" + std::to_string(s), kAppCore);
    world.spawn(1, [&world, ping, pong] {
      nm::Core& c = world.core(1);
      nm::Gate* g = world.gate(1, 0);
      std::vector<std::uint8_t> buf(kSize);
      for (int i = 0; i < kIters; ++i) {
        c.recv(g, ping, buf.data(), buf.size());
        c.send(g, pong, buf.data(), buf.size());
      }
    }, "pong" + std::to_string(s), kAppCore);
  }
  world.run();
  san::Analyzer::merged_print_report(stdout);
  return san::Analyzer::merged_total_findings();
}

}  // namespace

int main() {
  std::printf("== endpoints=1, no locking (paper baseline) ==\n");
  const std::size_t baseline =
      analyzed_findings(nm::LockMode::kNone, /*endpoints=*/1, /*streams=*/2);
  std::printf("\n== endpoints=4, fine locking, 4 streams ==\n");
  const std::size_t multi =
      analyzed_findings(nm::LockMode::kFine, /*endpoints=*/4, /*streams=*/4);

  if (baseline != 6) {
    std::fprintf(stderr,
                 "FAIL: endpoints=1 unlocked baseline reported %zu "
                 "finding(s), expected the 6 known races\n",
                 baseline);
    return 1;
  }
  if (multi != 0) {
    std::fprintf(stderr,
                 "FAIL: endpoints=4 fine-locked run not clean (%zu "
                 "finding(s))\n",
                 multi);
    return 1;
  }
  std::printf("\nPASS\n");
  return 0;
}
