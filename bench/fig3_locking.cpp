// Fig. 3 -- "Impact of locking on latency".
//
// Pingpong over Myri-10G, one thread, busy waiting, app-driven progression;
// series: no locking / coarse-grain / fine-grain.
//
// Paper result: coarse-grain locking adds a constant ~140 ns (two spinlock
// acquire/release cycles at 70 ns: one to submit to the collect layer, one
// to transmit), fine-grain adds ~230 ns; neither impacts bandwidth (the
// overhead is flat in message size).
#include <cstdio>

#include "bench/common/harness.hpp"

using namespace pm2;

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  const auto sizes = bench::small_sizes();

  bench::PingpongOptions opt;
  opt.iters = args.iters;
  opt.warmup = args.warmup;

  std::vector<bench::Series> series;
  struct Cfg {
    const char* label;
    nm::LockMode lock;
  };
  for (const Cfg& c : {Cfg{"no locking", nm::LockMode::kNone},
                       Cfg{"coarse-grain", nm::LockMode::kCoarse},
                       Cfg{"fine-grain", nm::LockMode::kFine}}) {
    nm::ClusterConfig cfg;
    bench::apply_parallel(args, cfg);
    cfg.nm.lock = c.lock;
    cfg.nm.wait = nm::WaitMode::kBusy;
    cfg.nm.progress = nm::ProgressMode::kAppDriven;
    series.push_back(bench::run_pingpong(c.label, cfg, sizes, opt));
  }

  bench::print_table("Fig. 3: impact of locking on latency (one-way, us)",
                     sizes, series);

  // Paper-style overheads vs the unlocked baseline.
  std::printf("\noverhead vs no locking (ns):\n%-10s  %12s  %12s\n", "size(B)",
              "coarse", "fine");
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    std::printf("%-10zu  %12.0f  %12.0f\n", sizes[i],
                (series[1].latency_us[i] - series[0].latency_us[i]) * 1e3,
                (series[2].latency_us[i] - series[0].latency_us[i]) * 1e3);
  }
  std::printf("\npaper: coarse +140 ns, fine +230 ns, flat in size\n");

  bench::write_csv(args.csv, sizes, series);

  // --simsan=on: concurrency analysis of each locking mode on a two-stream
  // workload. The unlocked baseline provably races on the collect/matching
  // lists; both locked modes must come back clean.
  for (const Cfg& c : {Cfg{"no locking", nm::LockMode::kNone},
                       Cfg{"coarse-grain", nm::LockMode::kCoarse},
                       Cfg{"fine-grain", nm::LockMode::kFine}}) {
    nm::ClusterConfig cfg;
    bench::apply_parallel(args, cfg);
    cfg.nm.lock = c.lock;
    cfg.nm.wait = nm::WaitMode::kBusy;
    cfg.nm.progress = nm::ProgressMode::kAppDriven;
    bench::run_simsan_report(args, c.label, cfg);
  }

  // --metrics-out: instrumented run on the coarse-grain configuration.
  nm::ClusterConfig mcfg;
  bench::apply_parallel(args, mcfg);
  mcfg.nm.lock = nm::LockMode::kCoarse;
  mcfg.nm.wait = nm::WaitMode::kBusy;
  mcfg.nm.progress = nm::ProgressMode::kAppDriven;
  bench::write_metrics_report(args, mcfg);
  return 0;
}
