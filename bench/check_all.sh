#!/usr/bin/env sh
# One-command pre-merge gate: build + tests + sanitizers + lint + simsan
# selfcheck, in that order (fastest signal first, most expensive last).
#
#   1. regular build + full ctest suite        (./build)
#   2. simsan selfcheck + fig3 analysis check   (same tree; seeded racy /
#      deadlocky scenarios must be caught, kNone must race, kCoarse clean)
#   3. clang-tidy lint                          (skips if not installed)
#   4. ASan/UBSan + TSan suites                 (separate build trees)
#
# Usage: bench/check_all.sh [build-dir]   (default: ./build)
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build"}

echo "== [1/4] build + ctest =="
cmake -S "$repo_root" -B "$build_dir" -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$build_dir" -j"$(nproc)"
ctest --test-dir "$build_dir" -j"$(nproc)" --output-on-failure

echo "== [2/4] simsan selfcheck + parallel smoke =="
ctest --test-dir "$build_dir" -R simsan_selfcheck --output-on-failure
"$build_dir"/bench/fig3_locking --iters=5 --warmup=1 --simsan=on > /dev/null
# Partitioned engine smoke: two partitions on two host workers must run the
# same bench clean (the byte-identity gate proper is ctest
# `parallel_byte_identity`, part of stage 1).
"$build_dir"/bench/fig3_locking --iters=5 --warmup=1 --simsan=on \
  --partitions=2 --workers=2 > /dev/null

echo "== [3/4] lint =="
"$repo_root"/bench/check_lint.sh

echo "== [4/4] sanitizers =="
"$repo_root"/bench/check_sanitize.sh

echo "check_all: all gates clean"
