#!/usr/bin/env sh
# One-command pre-merge gate: build + tests + sanitizers + lint + simsan
# selfcheck, in that order (fastest signal first, most expensive last).
#
#   1. regular build + full ctest suite        (./build)
#   2. simsan selfcheck + fig3 analysis check   (same tree; seeded racy /
#      deadlocky scenarios must be caught, kNone must race, kCoarse clean)
#   3. clang-tidy lint                          (skips if not installed)
#   4. ASan/UBSan + TSan suites                 (separate build trees)
#
# Usage: bench/check_all.sh [build-dir]   (default: ./build)
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build"}

echo "== [1/4] build + ctest =="
cmake -S "$repo_root" -B "$build_dir" -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$build_dir" -j"$(nproc)"
ctest --test-dir "$build_dir" -j"$(nproc)" --output-on-failure

echo "== [2/4] simsan selfcheck + parallel smoke + trace gates =="
ctest --test-dir "$build_dir" -R simsan_selfcheck --output-on-failure
"$build_dir"/bench/fig3_locking --iters=5 --warmup=1 --simsan=on > /dev/null
# Partitioned engine smoke: two partitions on two host workers must run the
# same bench clean (the byte-identity gate proper is ctest
# `parallel_byte_identity`, part of stage 1).
"$build_dir"/bench/fig3_locking --iters=5 --warmup=1 --simsan=on \
  --partitions=2 --workers=2 > /dev/null
# Binary-telemetry hot-path gate (traced pingpong must stay within 3% of
# untraced) and converter smoke: a figure bench writes the binary trace log,
# trace2json converts it offline, and the result must be byte-identical to
# the JSON the run rendered online.
ctest --test-dir "$build_dir" -R '^trace_overhead$' --output-on-failure
trace_tmp=$(mktemp -d)
trap 'rm -rf "$trace_tmp"' EXIT INT TERM
"$build_dir"/bench/fig3_locking --iters=5 --warmup=1 \
  --metrics-out="$trace_tmp/metrics.json" > /dev/null
"$build_dir"/tools/trace2json "$trace_tmp/metrics.json.trace.bin" \
  "$trace_tmp/converted.trace.json"
cmp "$trace_tmp/metrics.json.trace.json" "$trace_tmp/converted.trace.json" || {
  echo "check_all: trace2json output differs from online .trace.json" >&2
  exit 1
}

echo "== [3/4] lint =="
"$repo_root"/bench/check_lint.sh

echo "== [4/4] sanitizers =="
"$repo_root"/bench/check_sanitize.sh

echo "check_all: all gates clean"
