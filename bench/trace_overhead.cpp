// Guard: full tracing through the binary ring sink stays cheap.
//
// Runs the BM_PingpongEndToEnd workload alternately untraced and with the
// complete observability surface on -- Chrome-trace timeline (scheduler
// spans, NIC tx/rx) plus flow-lifecycle stamps, all routed through the
// lock-free per-partition trace rings -- compares the best-of-N host
// times, and fails when the traced runs are more than 3% slower. The
// structure mirrors metrics_overhead: alternate the order within each rep
// and take minima so host noise hits both variants equally.
#include <ctime>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <vector>

#include "nmad/cluster.hpp"

using namespace pm2;

namespace {

constexpr std::size_t kPingpongIters = 192;
constexpr int kPairs = 24;
constexpr double kMaxRatio = 1.03;
// A noisy host can push a single comparison past the limit even with
// alternation; a genuine hot-path regression fails every attempt, so
// retry the whole measurement before declaring failure.
constexpr int kAttempts = 3;

/// One full pingpong world: the BM_PingpongEndToEnd body, optionally with
/// the ring-sink timeline + flow tracing enabled. Only world.run() is
/// timed: this guards the per-record steady-state cost, not the one-time
/// recorder setup/teardown (ring and intern-table allocation), which a
/// whole-lifecycle timer would drown the hot path in.
double timed_run(bool traced) {
  nm::ClusterConfig cfg;
  nm::Cluster world(cfg);
  if (traced) {
    world.enable_timeline();
    world.enable_flow_trace();
  }
  world.spawn(0, [&world] {
    auto& c = world.core(0);
    auto* g = world.gate(0, 1);
    std::vector<std::uint8_t> m(64), b(64);
    for (std::size_t i = 0; i < kPingpongIters; ++i) {
      c.send(g, 1, m.data(), m.size());
      c.recv(g, 2, b.data(), b.size());
    }
  });
  world.spawn(1, [&world] {
    auto& c = world.core(1);
    auto* g = world.gate(1, 0);
    std::vector<std::uint8_t> b(64);
    for (std::size_t i = 0; i < kPingpongIters; ++i) {
      c.recv(g, 1, b.data(), b.size());
      c.send(g, 2, b.data(), b.size());
    }
  });
  // Thread CPU time, not wall clock: the workload is single-threaded, so
  // this excludes the time a busy host spends running *other* processes in
  // the middle of a rep -- the dominant noise source for a ratio this tight.
  timespec t0{};
  timespec t1{};
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &t0);
  world.run();
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &t1);
  return static_cast<double>(t1.tv_sec - t0.tv_sec) +
         static_cast<double>(t1.tv_nsec - t0.tv_nsec) * 1e-9;
}

}  // namespace

int main() {
  // Warm up both variants (stack pools, allocator, instruction cache).
  for (int w = 0; w < 2; ++w) {
    (void)timed_run(false);
    (void)timed_run(true);
  }

  double ratio = 1e30;
  for (int attempt = 1; attempt <= kAttempts; ++attempt) {
    // Paired back-to-back runs cancel slow host drift (frequency scaling,
    // background load ramps) that independent best-of minima cannot; the
    // median of the per-pair ratios shrugs off one-sided spikes.
    std::vector<double> ratios;
    ratios.reserve(kPairs);
    double best_off = 1e30;
    double best_on = 1e30;
    for (int r = 0; r < kPairs; ++r) {
      double off;
      double on;
      // Alternate the order within each pair so residual drift hits both.
      if (r % 2 == 0) {
        off = timed_run(false);
        on = timed_run(true);
      } else {
        on = timed_run(true);
        off = timed_run(false);
      }
      best_off = std::min(best_off, off);
      best_on = std::min(best_on, on);
      ratios.push_back(on / off);
    }
    std::nth_element(ratios.begin(), ratios.begin() + kPairs / 2,
                     ratios.end());
    ratio = ratios[kPairs / 2];

    std::printf("trace off: %.3f ms   trace on (ring): %.3f ms   median "
                "pair ratio: %.4f (limit %.2f, attempt %d/%d)\n",
                best_off * 1e3, best_on * 1e3, ratio, kMaxRatio, attempt,
                kAttempts);
    if (ratio <= kMaxRatio) break;
  }
  if (ratio > kMaxRatio) {
    std::fprintf(stderr, "FAIL: ring trace hot-path overhead above %.0f%%\n",
                 (kMaxRatio - 1.0) * 100.0);
    return 1;
  }
  std::printf("PASS\n");
  return 0;
}
