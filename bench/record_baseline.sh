#!/usr/bin/env sh
# Record the host-throughput baseline for the simulator engine.
#
# Runs bench/micro_engine (google-benchmark) and writes its JSON report to
# BENCH_engine.json at the repo root. Commit the refreshed file whenever the
# engine hot path changes on purpose; CI and humans compare items_per_second
# against it to catch accidental regressions.
#
# Usage: bench/record_baseline.sh [build-dir]   (default: ./build)
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build"}
bin="$build_dir/bench/micro_engine"

if [ ! -x "$bin" ]; then
  echo "error: $bin not found -- build first: cmake --build $build_dir -j" >&2
  exit 1
fi

"$bin" \
  --benchmark_repetitions=5 \
  --benchmark_report_aggregates_only=true \
  --benchmark_format=json \
  --benchmark_out_format=json \
  --benchmark_out="$repo_root/BENCH_engine.json" >/dev/null

echo "wrote $repo_root/BENCH_engine.json"

# The baseline includes BM_PingpongEndToEnd both with the metrics registry
# off and on (BM_PingpongEndToEndMetrics); print the median pair so the
# instrumentation overhead is visible at record time. The hard <3% gate is
# the `metrics_overhead` ctest.
awk '
  /"name": "BM_PingpongEndToEnd(Metrics)?_median"/ { want = 1; name = $2 }
  want && /"real_time":/ {
    gsub(/[",]/, "", name); gsub(/,/, "", $2)
    printf "  %-34s %.3f ms\n", name, $2
    want = 0
  }
' "$repo_root/BENCH_engine.json"

# Full-tracing cost: the pingpong run with timeline + flow tracing through
# the lock-free trace rings vs the legacy direct-JSON recorder. The hard
# <3% ring gate is the `trace_overhead` ctest.
awk '
  /"name": "BM_PingpongEndToEndTraced(Legacy)?_median"/ { want = 1; name = $2 }
  want && /"real_time":/ {
    gsub(/[",]/, "", name); gsub(/,/, "", $2)
    printf "  %-34s %.3f ms\n", name, $2
    want = 0
  }
' "$repo_root/BENCH_engine.json"

# Data-path throughput: the large-message bandwidth runs (64 KiB eager-ish
# and 1 MiB rendezvous) exercise the zero-copy scatter/gather path.
awk '
  /"name": "BM_LargeMessageBandwidth\/[0-9]+_median"/ { want = 1; name = $2 }
  want && /"items_per_second":/ {
    gsub(/[",]/, "", name); gsub(/,/, "", $2)
    printf "  %-34s %.1f msgs/s\n", name, $2
    want = 0
  }
' "$repo_root/BENCH_engine.json"

# Partitioned-engine scaling: parallelism is the unlimited-core speedup
# bound (total events / busiest partition), est_speedup the bound at the
# run's worker count. On a single-core host only these bounds -- not
# wall-clock time -- show what the partitioning buys.
awk '
  /"name": "BM_ParallelEngine\/[0-9]+_median"/ { want = 1; name = $2 }
  want && /"est_speedup":/ {
    gsub(/[",]/, "", name); gsub(/,/, "", $2)
    printf "  %-34s est_speedup %.2f\n", name, $2
    want = 0
  }
' "$repo_root/BENCH_engine.json"

overhead_bin="$build_dir/bench/metrics_overhead"
if [ -x "$overhead_bin" ]; then
  echo "checking metrics hot-path overhead (<3%):"
  "$overhead_bin"
fi

trace_overhead_bin="$build_dir/bench/trace_overhead"
if [ -x "$trace_overhead_bin" ]; then
  echo "checking ring-trace hot-path overhead (<3%):"
  "$trace_overhead_bin"
fi
