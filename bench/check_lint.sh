#!/usr/bin/env sh
# Run clang-tidy (config: .clang-tidy at the repo root) over the library and
# bench sources and fail on any warning. WarningsAsErrors is '*' in the
# config, so a clean exit means a clean tree -- "no new warnings" falls out
# of keeping the baseline at zero.
#
# Skips with success when clang-tidy is not installed (minimal CI images):
# the lint gate is advisory where the tool is missing, never a build break.
#
# Usage: bench/check_lint.sh [build-dir]   (default: ./build-lint)
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build-lint"}

tidy=""
for cand in clang-tidy clang-tidy-20 clang-tidy-19 clang-tidy-18 \
            clang-tidy-17 clang-tidy-16; do
  if command -v "$cand" > /dev/null 2>&1; then
    tidy=$cand
    break
  fi
done
if [ -z "$tidy" ]; then
  echo "check_lint: clang-tidy not found; skipping lint (install clang-tidy to enable)"
  exit 0
fi

# clang-tidy drives off the compilation database.
cmake -S "$repo_root" -B "$build_dir" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_EXPORT_COMPILE_COMMANDS=ON > /dev/null

# Library + bench translation units; tests are gtest-macro-heavy and would
# drown the signal.
files=$(find "$repo_root/src" "$repo_root/bench" -name '*.cpp' | sort)

status=0
for f in $files; do
  "$tidy" -p "$build_dir" --quiet "$f" || status=1
done

if [ "$status" -ne 0 ]; then
  echo "check_lint: clang-tidy reported warnings (see above)"
  exit 1
fi
echo "lint clean ($tidy)"
