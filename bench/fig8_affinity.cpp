// Fig. 8 -- "Impact of cache affinity on a quad-core chip" (+ the dual
// quad-core numbers quoted in Sec. 4.1).
//
// The application thread is bound to CPU 0; polling is deferred to a
// dedicated progression thread bound to CPU k. Paper results (quad-core
// X5460): polling on CPU 0 is best; CPU 1 (shared L2) adds ~400 ns; CPU 2/3
// (no shared cache) add ~1.2 us. Dual quad-core: shared cache +400 ns, same
// chip different cache +2.3 us, other chip +3.1 us.
#include <cstdio>

#include "bench/common/harness.hpp"

using namespace pm2;

namespace {

bench::Series run_affinity(const bench::BenchArgs& args, const char* label,
                           int poll_cpu, const mach::CacheTopology& topo,
                           const mach::CostBook& costs,
                           const std::vector<std::size_t>& sizes,
                           const bench::PingpongOptions& base) {
  nm::ClusterConfig cfg;
  bench::apply_parallel(args, cfg);
  cfg.topology = topo;
  cfg.costs = costs;
  cfg.nm.lock = nm::LockMode::kFine;
  cfg.nm.wait = nm::WaitMode::kBusy;
  bench::PingpongOptions opt = base;
  opt.app_core = 0;
  if (poll_cpu == 0) {
    // Polling on the application's own CPU: the waiting thread polls.
    cfg.nm.progress = nm::ProgressMode::kAppDriven;
  } else {
    cfg.nm.progress = nm::ProgressMode::kPollThread;
    cfg.nm.poll_core = poll_cpu;
    opt.poll_threads = true;
  }
  return bench::run_pingpong(label, cfg, sizes, opt);
}

void report(const char* title, const std::vector<bench::Series>& series,
            const std::vector<std::size_t>& sizes) {
  bench::print_table(title, sizes, series);
  std::printf("\noverhead vs polling on cpu 0 (ns), per poll cpu:\n%-10s",
              "size(B)");
  for (std::size_t k = 1; k < series.size(); ++k) {
    std::printf("  %16s", series[k].label.c_str());
  }
  std::printf("\n");
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    std::printf("%-10zu", sizes[i]);
    for (std::size_t k = 1; k < series.size(); ++k) {
      std::printf("  %16.0f",
                  (series[k].latency_us[i] - series[0].latency_us[i]) * 1e3);
    }
    std::printf("\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  const auto sizes = bench::small_sizes();

  bench::PingpongOptions opt;
  opt.iters = args.iters;
  opt.warmup = args.warmup;

  // --- quad-core X5460 node (Fig. 8 proper) -------------------------------
  {
    const auto topo = mach::CacheTopology::quad_core();
    const auto costs = mach::CostBook::xeon_quad();
    std::vector<bench::Series> series;
    series.push_back(run_affinity(args, "cpu 0 (same core)", 0, topo, costs, sizes, opt));
    series.push_back(run_affinity(args, "cpu 1 (shared cache)", 1, topo, costs, sizes, opt));
    series.push_back(run_affinity(args, "cpu 2 (no shared)", 2, topo, costs, sizes, opt));
    series.push_back(run_affinity(args, "cpu 3 (no shared)", 3, topo, costs, sizes, opt));
    report("Fig. 8: polling-core placement, quad-core node (one-way, us)",
           series, sizes);
    std::printf("\npaper (quad-core): cpu1 +400 ns, cpu2/cpu3 +1.2 us\n");
    bench::write_csv(args.csv, sizes, series);
  }

  // --- dual quad-core node (Sec. 4.1 prose) --------------------------------
  {
    const auto topo = mach::CacheTopology::dual_quad_core();
    const auto costs = mach::CostBook::xeon_dual_quad();
    std::vector<bench::Series> series;
    series.push_back(run_affinity(args, "cpu 0 (same core)", 0, topo, costs, sizes, opt));
    series.push_back(run_affinity(args, "cpu 1 (shared cache)", 1, topo, costs, sizes, opt));
    series.push_back(run_affinity(args, "cpu 2 (same chip)", 2, topo, costs, sizes, opt));
    series.push_back(run_affinity(args, "cpu 4 (other chip)", 4, topo, costs, sizes, opt));
    report("Sec. 4.1: polling-core placement, dual quad-core node (one-way, us)",
           series, sizes);
    std::printf("\npaper (dual quad): shared cache +400 ns, same chip "
                "+2.3 us, other chip +3.1 us\n");
  }

  // --metrics-out: instrumented run with a dedicated poll thread on the
  // shared-cache neighbour (the quad-core "cpu 1" series).
  nm::ClusterConfig mcfg;
  bench::apply_parallel(args, mcfg);
  mcfg.nm.lock = nm::LockMode::kFine;
  mcfg.nm.wait = nm::WaitMode::kBusy;
  mcfg.nm.progress = nm::ProgressMode::kPollThread;
  mcfg.nm.poll_core = 1;
  // --simsan=on: concurrency analysis on the same configuration.
  bench::run_simsan_report(args, "representative", mcfg);
  bench::write_metrics_report(args, mcfg);
  return 0;
}
