// Ablation: allreduce algorithm choice (binomial tree vs ring).
//
// Classic MPI-library trade-off on top of our stack: the binomial tree is
// latency-optimal (log2 p steps, whole vector each), the ring is
// bandwidth-optimal (2(p-1) steps, 1/p of the vector each). The crossover
// justifies Comm::allreduce_sum's size-based selection.
#include <cstdio>
#include <vector>

#include "madmpi/madmpi.hpp"

using namespace pm2;

namespace {

double run_allreduce(int nodes, std::size_t elems, bool ring, int reps) {
  nm::ClusterConfig cfg;
  cfg.nodes = nodes;
  nm::Cluster world(cfg);
  sim::Time total = 0;
  madmpi::launch(world, [&, elems, ring, reps](madmpi::Comm comm) {
    std::vector<double> v(elems, comm.rank() * 1.0);
    comm.barrier();
    const sim::Time t0 = world.engine().now();
    for (int r = 0; r < reps; ++r) {
      if (ring) {
        comm.allreduce_sum_ring(v.data(), elems);
      } else {
        comm.allreduce_sum_binomial(v.data(), elems);
      }
    }
    comm.barrier();
    if (comm.rank() == 0) total = world.engine().now() - t0;
  });
  world.run();
  return sim::to_us(total) / reps;
}

}  // namespace

int main() {
  std::printf("Ablation: allreduce algorithm (time per operation, us)\n");
  for (int nodes : {4, 8}) {
    std::printf("\n%d nodes:\n%-12s %14s %14s %10s\n", nodes, "elements",
                "binomial", "ring", "ring/tree");
    for (std::size_t elems : {std::size_t{64}, std::size_t{1024},
                              std::size_t{16384}, std::size_t{131072}}) {
      const double tree = run_allreduce(nodes, elems, false, 5);
      const double ring = run_allreduce(nodes, elems, true, 5);
      std::printf("%-12zu %11.2f us %11.2f us %10.2f\n", elems, tree, ring,
                  ring / tree);
    }
  }
  std::printf("\nring wins once the vector is large enough to amortize its "
              "2(p-1) latency steps;\nallreduce_sum() switches algorithms at "
              "4096 elements\n");
  return 0;
}
