// Fig. 9 -- "Impact of tasklets on deferred message submission".
//
// Non-blocking pingpong with a 10 us compute phase inserted between
// nm_isend and nm_wait; message submission is either performed inline
// (reference), deferred to a tasklet on another core, or picked up by an
// idle core's scheduler hook (no tasklets). Paper result: tasklets add
// ~2 us (the "complex locking mechanism involved when a tasklet is
// invoked"); the hook-based idle-core offload costs only ~400 ns.
#include <cstdio>

#include "bench/common/harness.hpp"

using namespace pm2;

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  const auto sizes = bench::overlap_sizes();

  bench::PingpongOptions opt;
  opt.iters = args.iters;
  opt.warmup = args.warmup;
  opt.compute_phase = sim::microseconds(10);
  opt.app_core = 0;

  std::vector<bench::Series> series;
  struct Cfg {
    const char* label;
    nm::ProgressMode progress;
  };
  for (const Cfg& c :
       {Cfg{"reference", nm::ProgressMode::kAppDriven},
        Cfg{"offload w/o tasklets", nm::ProgressMode::kIdleCoreOffload},
        Cfg{"offload w/ tasklets", nm::ProgressMode::kTaskletOffload}}) {
    nm::ClusterConfig cfg;
    bench::apply_parallel(args, cfg);
    cfg.nm.lock = nm::LockMode::kFine;
    cfg.nm.wait = nm::WaitMode::kBusy;
    cfg.nm.progress = c.progress;
    // Offload target: core 1, which shares its L2 with the application
    // core (Sec. 4.1 showed why the neighbour is the right choice).
    cfg.nm.poll_core = 1;
    if (c.progress == nm::ProgressMode::kIdleCoreOffload) {
      cfg.pioman_poll_core = 1;
    }
    series.push_back(bench::run_pingpong(c.label, cfg, sizes, opt));
  }

  bench::print_table(
      "Fig. 9: deferred message submission with a 10 us compute phase "
      "(one-way, us)",
      sizes, series);

  std::printf("\noffload overhead vs reference (ns):\n%-10s  %14s  %14s\n",
              "size(B)", "idle-core", "tasklets");
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    std::printf("%-10zu  %14.0f  %14.0f\n", sizes[i],
                (series[1].latency_us[i] - series[0].latency_us[i]) * 1e3,
                (series[2].latency_us[i] - series[0].latency_us[i]) * 1e3);
  }
  std::printf("\npaper: tasklets +2 us, idle-core offload +400 ns\n");

  bench::write_csv(args.csv, sizes, series);

  // --metrics-out: instrumented run on the tasklet-offload configuration.
  nm::ClusterConfig mcfg;
  bench::apply_parallel(args, mcfg);
  mcfg.nm.lock = nm::LockMode::kFine;
  mcfg.nm.wait = nm::WaitMode::kBusy;
  mcfg.nm.progress = nm::ProgressMode::kTaskletOffload;
  mcfg.nm.poll_core = 1;
  // --simsan=on: concurrency analysis on the same configuration.
  bench::run_simsan_report(args, "representative", mcfg);
  bench::write_metrics_report(args, mcfg);
  return 0;
}
