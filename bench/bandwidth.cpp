// Bandwidth sweep: streaming throughput per NIC preset and with multirail
// striping. Complements the latency-centric paper figures with the other
// half of the classic characterization.
#include <cstdio>
#include <deque>
#include <vector>

#include "nmad/cluster.hpp"

using namespace pm2;

namespace {

double stream_gbps(const std::vector<net::NicParams>& rails,
                   nm::StrategyKind strategy, std::size_t msg, int count) {
  nm::ClusterConfig cfg;
  cfg.rails = rails;
  cfg.nm.strategy = strategy;
  nm::Cluster world(cfg);
  double gbps = 0;
  world.spawn(0, [&world, msg, count] {
    nm::Core& c = world.core(0);
    static std::vector<std::uint8_t> data;
    data.assign(msg, 0x55);
    // Window of 4 outstanding sends keeps the pipe full.
    std::deque<nm::Request*> window;
    for (int i = 0; i < count; ++i) {
      window.push_back(c.isend(world.gate(0, 1), 1, data.data(), data.size()));
      if (window.size() >= 4) {
        c.wait(window.front());
        c.release(window.front());
        window.pop_front();
      }
    }
    while (!window.empty()) {
      c.wait(window.front());
      c.release(window.front());
      window.pop_front();
    }
  });
  world.spawn(1, [&world, msg, count, &gbps] {
    nm::Core& c = world.core(1);
    std::vector<std::uint8_t> buf(msg);
    const sim::Time t0 = world.engine().now();
    for (int i = 0; i < count; ++i) {
      c.recv(world.gate(1, 0), 1, buf.data(), buf.size());
    }
    const sim::Time dt = world.engine().now() - t0;
    gbps = static_cast<double>(msg) * count / sim::to_sec(dt) / 1e9;
  });
  world.run();
  return gbps;
}

}  // namespace

int main() {
  std::printf("Streaming bandwidth (GB/s), window of 4 outstanding sends\n\n");
  std::printf("%-10s %12s %12s %12s %16s\n", "size", "myri-10g", "ib-ddr",
              "tcp-gige", "myri+ib (split)");
  const auto mx = net::NicParams::myri10g();
  const auto ib = net::NicParams::connectx_ib();
  const auto tcp = net::NicParams::tcp_gige();
  for (std::size_t msg = 4096; msg <= 1 << 20; msg *= 4) {
    const int count = msg >= (1 << 18) ? 16 : 64;
    std::printf("%-10zu %12.3f %12.3f %12.3f %16.3f\n", msg,
                stream_gbps({mx}, nm::StrategyKind::kAggreg, msg, count),
                stream_gbps({ib}, nm::StrategyKind::kAggreg, msg, count),
                stream_gbps({tcp}, nm::StrategyKind::kAggreg, msg, count / 4),
                stream_gbps({mx, ib}, nm::StrategyKind::kSplit, msg, count));
  }
  std::printf("\nwire limits: myri-10g 1.25 GB/s, ib-ddr ~1.8 GB/s, "
              "tcp-gige 0.125 GB/s\n");
  return 0;
}
