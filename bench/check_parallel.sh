#!/usr/bin/env sh
# Byte-identity gate for the partitioned parallel engine: every figure
# bench, run with --partitions=2, must produce byte-for-byte identical
# output (tables, CSV, simsan report, metrics report, Chrome-trace JSON)
# at --workers=1 and --workers=2. Worker count may only change wall-clock
# time, never the schedule. The .trace.bin byte layout is NOT compared:
# ring packing and string-intern order legitimately depend on host thread
# interleaving; only the canonically merged JSON must be stable.
#
# Usage: bench/check_parallel.sh [build-dir]   (default: ./build)
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build"}

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT INT TERM
mkdir -p "$tmp/w1" "$tmp/w2"

for bench in fig3_locking fig5_concurrent fig6_pioman fig7_waiting \
             fig8_affinity fig9_offload; do
  echo "== check_parallel: $bench =="
  # Same CSV basename on both sides: the benches echo the path to stdout,
  # and stdout is part of the byte-for-byte comparison.
  (cd "$tmp/w1" && "$build_dir"/bench/"$bench" --iters=5 --warmup=1 \
      --simsan=on --partitions=2 --workers=1 --csv=out.csv \
      --metrics-out=metrics.json > out.txt)
  (cd "$tmp/w2" && "$build_dir"/bench/"$bench" --iters=5 --warmup=1 \
      --simsan=on --partitions=2 --workers=2 --csv=out.csv \
      --metrics-out=metrics.json > out.txt)
  for f in out.csv out.txt metrics.json metrics.json.trace.json; do
    cmp "$tmp/w1/$f" "$tmp/w2/$f" || {
      echo "check_parallel: $bench $f differs between workers=1 and workers=2" >&2
      exit 1
    }
  done
done

# Same gate across endpoint counts: fig3 at endpoints=1 and endpoints=4
# must each be worker-count invariant (the multi-endpoint progress path has
# its own locking and round-robin order, so it gets its own byte-compare).
# Endpoint counts are NOT compared against each other -- more endpoints
# legitimately changes the schedule.
for eps in 1 4; do
  echo "== check_parallel: fig3_locking endpoints=$eps =="
  for w in 1 2; do
    d="$tmp/ep$eps-w$w"
    mkdir -p "$d"
    (cd "$d" && "$build_dir"/bench/fig3_locking --iters=5 --warmup=1 \
        --simsan=on --partitions=2 --workers=$w --endpoints=$eps \
        --csv=out.csv --metrics-out=metrics.json > out.txt)
  done
  for f in out.csv out.txt metrics.json metrics.json.trace.json; do
    cmp "$tmp/ep$eps-w1/$f" "$tmp/ep$eps-w2/$f" || {
      echo "check_parallel: fig3 endpoints=$eps $f differs between workers=1 and workers=2" >&2
      exit 1
    }
  done
done

echo "check_parallel: workers=1 and workers=2 outputs byte-identical"
