// Sec. 3.1 / 3.3 prose claims -- primitive costs on the virtual clock.
//
// Verifies that the calibrated primitives land where the paper measured
// them: a spinlock acquire/release cycle costs 70 ns, a blocked semaphore
// wait costs ~750 ns (two context switches), and cache-line handoffs follow
// the Fig. 8 distance table.
#include <cstdio>

#include "simmachine/machine.hpp"
#include "simthread/scheduler.hpp"
#include "sync/semaphore.hpp"
#include "sync/spinlock.hpp"

using namespace pm2;

int main() {
  const auto topo = mach::CacheTopology::quad_core();
  const auto costs = mach::CostBook::xeon_quad();

  std::printf("Sec. 3.1/3.3 primitive costs (virtual clock)\n");
  std::printf("%-44s %10s %10s\n", "primitive", "measured", "paper");

  // Spinlock acquire/release cycle (local line).
  {
    sim::Engine engine;
    mach::Machine machine(engine, "n", topo, costs);
    mth::Scheduler sched(machine);
    sim::Time per_cycle = 0;
    mth::ThreadAttrs attrs;
    attrs.bind_core = 0;
    sched.spawn(
        [&] {
          sync::SpinLock lock(sched);
          lock.lock();
          lock.unlock();  // warm the lock line
          const sim::Time t0 = engine.now();
          for (int i = 0; i < 100; ++i) {
            lock.lock();
            lock.unlock();
          }
          per_cycle = (engine.now() - t0) / 100;
        },
        attrs);
    engine.run();
    std::printf("%-44s %7lld ns %10s\n", "spinlock acquire/release cycle",
                static_cast<long long>(per_cycle), "70 ns");
  }

  // Blocked semaphore acquire (context switch out + in).
  {
    sim::Engine engine;
    mach::Machine machine(engine, "n", topo, costs);
    mth::Scheduler sched(machine);
    sync::Semaphore sem(sched);
    sim::Time released_at = 0, acquired_at = 0;
    mth::ThreadAttrs a0;
    a0.bind_core = 0;
    sched.spawn(
        [&] {
          sem.acquire();
          acquired_at = engine.now();
        },
        a0);
    mth::ThreadAttrs a1;
    a1.bind_core = 0;  // same core: no line-transfer noise
    sched.spawn(
        [&] {
          sched.work(sim::microseconds(20));
          released_at = engine.now();
          sem.release();
        },
        a1);
    engine.run();
    // The switch-out (375 ns) was paid when blocking; the wake-to-acquire
    // delta covers the switch back in.
    const sim::Time total = costs.context_switch + (acquired_at - released_at);
    std::printf("%-44s %7lld ns %10s\n",
                "blocked semaphore wait (switch out + in)",
                static_cast<long long>(total), "~750 ns");
  }

  // Cache-line handoff costs by distance.
  {
    sim::Engine engine;
    mach::Machine machine(engine, "n", topo, costs);
    mach::CacheLine line;
    machine.touch_line(line, 0);
    std::printf("%-44s %7lld ns %10s\n", "line handoff, shared L2 (x2 = Fig.8)",
                static_cast<long long>(machine.peek_line(line, 1)), "200 ns");
    std::printf("%-44s %7lld ns %10s\n", "line handoff, same chip (x2 = Fig.8)",
                static_cast<long long>(machine.peek_line(line, 2)), "600 ns");
  }
  {
    sim::Engine engine;
    mach::Machine machine(engine, "n", mach::CacheTopology::dual_quad_core(),
                          mach::CostBook::xeon_dual_quad());
    mach::CacheLine line;
    machine.touch_line(line, 0);
    std::printf("%-44s %7lld ns %10s\n", "line handoff, dual-quad same chip",
                static_cast<long long>(machine.peek_line(line, 2)), "1150 ns");
    std::printf("%-44s %7lld ns %10s\n", "line handoff, dual-quad other chip",
                static_cast<long long>(machine.peek_line(line, 4)), "1550 ns");
  }

  return 0;
}
