// Failure injection: malformed wire data and traffic from unknown peers
// must be contained (dropped / rejected), never corrupt matching state.
#include <gtest/gtest.h>

#include "nmad/cluster.hpp"

namespace pm2::nm {
namespace {

TEST(FailureInjection, PacketFromUnknownPortIsDropped) {
  // A rogue NIC attaches to the fabric after the cluster wired its gates;
  // its packets reach node 1's NIC but match no gate.
  nm::ClusterConfig cfg;
  nm::Cluster world(cfg);
  net::Nic rogue(world.machine(0), world.nic(0, 0).fabric(),
                 net::NicParams::myri10g());
  rogue.post_send(/*dst_port=*/1, 0, {1, 2, 3});

  bool got_real_message = false;
  world.spawn(0, [&world] {
    world.sched(0).work(sim::microseconds(20));  // rogue packet lands first
    std::uint8_t v = 9;
    world.core(0).send(world.gate(0, 1), 1, &v, 1);
  });
  world.spawn(1, [&world, &got_real_message] {
    std::uint8_t v = 0;
    world.core(1).recv(world.gate(1, 0), 1, &v, 1);
    got_real_message = (v == 9);
  });
  world.run();
  EXPECT_TRUE(got_real_message);
  // The rogue packet was consumed (polled) and dropped.
  EXPECT_GE(world.nic(1, 0).packets_received(), 2u);
}

TEST(FailureInjection, MalformedPayloadIsRejectedNotCrashed) {
  // Garbage bytes injected on the legitimate peer's port: the reader must
  // poison and the library keep functioning for the next good message.
  nm::ClusterConfig cfg;
  nm::Cluster world(cfg);
  bool ok = false;
  world.spawn(0, [&world, &ok] {
    // Inject garbage below the nmad layer, straight into the NIC.
    world.nic(0, 0).post_send(1, 0, {0xFF, 0xFF, 0xFF, 0x01, 0x02});
    world.sched(0).work(sim::microseconds(20));
    std::uint8_t v = 7;
    world.core(0).send(world.gate(0, 1), 1, &v, 1);
    std::uint8_t r = 0;
    world.core(0).recv(world.gate(0, 1), 2, &r, 1);
    ok = (r == 8);
  });
  world.spawn(1, [&world] {
    std::uint8_t v = 0;
    world.core(1).recv(world.gate(1, 0), 1, &v, 1);
    const std::uint8_t reply = static_cast<std::uint8_t>(v + 1);
    world.core(1).send(world.gate(1, 0), 2, &reply, 1);
  });
  world.run();
  EXPECT_TRUE(ok);
}

TEST(FailureInjection, TruncatedChunkCountHandled) {
  nm::ClusterConfig cfg;
  nm::Cluster world(cfg);
  bool ok = false;
  world.spawn(0, [&world, &ok] {
    world.nic(0, 0).post_send(1, 0, {0x05});  // half a chunk-count field
    world.sched(0).work(sim::microseconds(20));
    std::uint8_t v = 1;
    world.core(0).send(world.gate(0, 1), 1, &v, 1);
    ok = true;
  });
  world.spawn(1, [&world] {
    std::uint8_t v = 0;
    world.core(1).recv(world.gate(1, 0), 1, &v, 1);
  });
  world.run();
  EXPECT_TRUE(ok);
}

TEST(FailureInjection, ChunkCountLyingAboutContentIsContained) {
  // Header claims 3 chunks but carries none: reader must stop at the
  // malformed boundary without touching matching state.
  nm::ClusterConfig cfg;
  nm::Cluster world(cfg);
  world.spawn(0, [&world] {
    world.nic(0, 0).post_send(1, 0, {0x03, 0x00});
    world.sched(0).work(sim::microseconds(20));
    std::uint8_t v = 1;
    world.core(0).send(world.gate(0, 1), 1, &v, 1);
  });
  bool delivered = false;
  world.spawn(1, [&world, &delivered] {
    std::uint8_t v = 0;
    world.core(1).recv(world.gate(1, 0), 1, &v, 1);
    delivered = (v == 1);
  });
  world.run();
  EXPECT_TRUE(delivered);
}

}  // namespace
}  // namespace pm2::nm
