#include <gtest/gtest.h>

#include "nmad/cluster.hpp"

namespace pm2::nm {
namespace {

TEST(WaitAny, ReturnsTheCompletedIndex) {
  nm::ClusterConfig cfg;
  nm::Cluster world(cfg);
  world.spawn(0, [&world] {
    nm::Core& c = world.core(0);
    std::uint8_t a = 0, b = 0;
    std::vector<nm::Request*> reqs = {
        c.irecv(world.gate(0, 1), 1, &a, 1),
        c.irecv(world.gate(0, 1), 2, &b, 1),
    };
    // The peer sends tag 2 first.
    const std::size_t first = c.wait_any(reqs);
    EXPECT_EQ(first, 1u);
    EXPECT_EQ(b, 22);
    c.release(reqs[1]);
    reqs[1] = nullptr;
    const std::size_t second = c.wait_any(reqs);
    EXPECT_EQ(second, 0u);
    EXPECT_EQ(a, 11);
    c.release(reqs[0]);
  });
  world.spawn(1, [&world] {
    nm::Core& c = world.core(1);
    std::uint8_t v2 = 22, v1 = 11;
    c.send(world.gate(1, 0), 2, &v2, 1);
    world.sched(1).work(sim::microseconds(15));
    c.send(world.gate(1, 0), 1, &v1, 1);
  });
  world.run();
}

TEST(WaitAny, AlreadyCompleteReturnsImmediately) {
  nm::ClusterConfig cfg;
  nm::Cluster world(cfg);
  world.spawn(0, [&world] {
    nm::Core& c = world.core(0);
    std::uint8_t v = 1;
    nm::Request* sr = c.isend(world.gate(0, 1), 1, &v, 1);
    c.wait(sr);  // PIO send: complete
    std::vector<nm::Request*> reqs = {nullptr, sr};
    const sim::Time t0 = world.engine().now();
    EXPECT_EQ(c.wait_any(reqs), 1u);
    EXPECT_LT(world.engine().now() - t0, 500);
    c.release(sr);
  });
  world.spawn(1, [&world] {
    std::uint8_t b = 0;
    world.core(1).recv(world.gate(1, 0), 1, &b, 1);
  });
  world.run();
}

TEST(WaitAny, ServicesManyStreams) {
  nm::ClusterConfig cfg;
  cfg.nodes = 3;
  nm::Cluster world(cfg);
  world.spawn(0, [&world] {
    nm::Core& c = world.core(0);
    std::uint32_t bufs[8] = {};
    std::vector<nm::Request*> reqs;
    for (int k = 0; k < 8; ++k) {
      reqs.push_back(c.irecv(world.gate(0, 1 + k % 2), static_cast<Tag>(k),
                             &bufs[k], sizeof(std::uint32_t)));
    }
    std::uint64_t sum = 0;
    for (int k = 0; k < 8; ++k) {
      const std::size_t i = c.wait_any(reqs);
      sum += bufs[i];
      c.release(reqs[i]);
      reqs[i] = nullptr;
    }
    EXPECT_EQ(sum, 8u * 100 + (0 + 1 + 2 + 3 + 4 + 5 + 6 + 7));
  });
  for (int n = 1; n <= 2; ++n) {
    world.spawn(n, [&world, n] {
      nm::Core& c = world.core(n);
      for (int k = n - 1; k < 8; k += 2) {
        std::uint32_t v = 100 + static_cast<std::uint32_t>(k);
        world.sched(n).work(sim::microseconds((k * 7) % 11));
        c.send(world.gate(n, 0), static_cast<Tag>(k), &v, sizeof(v));
      }
    });
  }
  world.run();
}

}  // namespace
}  // namespace pm2::nm
