// Integration: pingpong correctness over the full stack, across the
// locking x waiting x progression configuration matrix.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "nmad/cluster.hpp"

namespace pm2::nm {
namespace {

std::vector<std::uint8_t> pattern(std::size_t n, std::uint8_t seed) {
  std::vector<std::uint8_t> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<std::uint8_t>(seed + i * 7);
  }
  return v;
}

TEST(Pingpong, BasicEagerRoundtrip) {
  ClusterConfig cfg;
  Cluster world(cfg);
  const auto msg = pattern(64, 1);
  bool ok = false;
  world.spawn(0, [&] {
    Core& c = world.core(0);
    Gate* g = world.gate(0, 1);
    c.send(g, /*tag=*/7, msg.data(), msg.size());
    std::vector<std::uint8_t> back(64);
    const std::size_t n = c.recv(g, 8, back.data(), back.size());
    ok = (n == 64) && back == pattern(64, 2);
  });
  world.spawn(1, [&] {
    Core& c = world.core(1);
    Gate* g = world.gate(1, 0);
    std::vector<std::uint8_t> buf(64);
    const std::size_t n = c.recv(g, 7, buf.data(), buf.size());
    EXPECT_EQ(n, 64u);
    EXPECT_EQ(buf, msg);
    const auto reply = pattern(64, 2);
    c.send(g, 8, reply.data(), reply.size());
  });
  world.run();
  EXPECT_TRUE(ok);
  EXPECT_EQ(world.core(0).active_requests(), 0);
  EXPECT_EQ(world.core(1).active_requests(), 0);
}

struct MatrixParam {
  LockMode lock;
  WaitMode wait;
  ProgressMode progress;
};

std::string param_name(const ::testing::TestParamInfo<MatrixParam>& info) {
  std::string s = to_string(info.param.lock);
  s += "_";
  s += to_string(info.param.wait);
  s += "_";
  s += to_string(info.param.progress);
  for (char& c : s) {
    if (c == '-') c = '_';
  }
  return s;
}

class PingpongMatrix : public ::testing::TestWithParam<MatrixParam> {};

TEST_P(PingpongMatrix, DataIntegrityAcrossSizes) {
  const MatrixParam p = GetParam();
  ClusterConfig cfg;
  cfg.nm.lock = p.lock;
  cfg.nm.wait = p.wait;
  cfg.nm.progress = p.progress;
  cfg.nm.poll_core = 1;
  Cluster world(cfg);

  const std::vector<std::size_t> sizes = {0, 1, 13, 256, 2048, 40000};
  int verified = 0;

  if (p.progress == ProgressMode::kPollThread) {
    world.core(0).start_poll_thread();
    world.core(1).start_poll_thread();
  }

  world.spawn(0, [&] {
    Core& c = world.core(0);
    Gate* g = world.gate(0, 1);
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      const auto msg = pattern(sizes[i], static_cast<std::uint8_t>(i));
      c.send(g, 100 + i, msg.data(), msg.size());
      std::vector<std::uint8_t> back(sizes[i] + 16, 0xAA);
      const std::size_t n = c.recv(g, 200 + i, back.data(), back.size());
      EXPECT_EQ(n, sizes[i]);
      back.resize(sizes[i]);
      EXPECT_EQ(back, pattern(sizes[i], static_cast<std::uint8_t>(i + 1)))
          << "size " << sizes[i];
      ++verified;
    }
    if (p.progress == ProgressMode::kPollThread) world.core(0).stop_poll_thread();
  }, "ping", 0);

  world.spawn(1, [&] {
    Core& c = world.core(1);
    Gate* g = world.gate(1, 0);
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      std::vector<std::uint8_t> buf(sizes[i] + 16, 0xBB);
      const std::size_t n = c.recv(g, 100 + i, buf.data(), buf.size());
      EXPECT_EQ(n, sizes[i]);
      buf.resize(sizes[i]);
      EXPECT_EQ(buf, pattern(sizes[i], static_cast<std::uint8_t>(i)));
      const auto reply = pattern(sizes[i], static_cast<std::uint8_t>(i + 1));
      c.send(g, 200 + i, reply.data(), reply.size());
    }
    if (p.progress == ProgressMode::kPollThread) world.core(1).stop_poll_thread();
  }, "pong", 0);

  world.run();
  EXPECT_EQ(verified, static_cast<int>(sizes.size()));
  EXPECT_EQ(world.core(0).active_requests(), 0);
  EXPECT_EQ(world.core(1).active_requests(), 0);
}

INSTANTIATE_TEST_SUITE_P(
    LockWaitProgress, PingpongMatrix,
    ::testing::Values(
        MatrixParam{LockMode::kNone, WaitMode::kBusy, ProgressMode::kAppDriven},
        MatrixParam{LockMode::kCoarse, WaitMode::kBusy, ProgressMode::kAppDriven},
        MatrixParam{LockMode::kFine, WaitMode::kBusy, ProgressMode::kAppDriven},
        MatrixParam{LockMode::kCoarse, WaitMode::kBusy, ProgressMode::kPiomanHooks},
        MatrixParam{LockMode::kFine, WaitMode::kBusy, ProgressMode::kPiomanHooks},
        MatrixParam{LockMode::kCoarse, WaitMode::kPassive, ProgressMode::kPiomanHooks},
        MatrixParam{LockMode::kFine, WaitMode::kPassive, ProgressMode::kPiomanHooks},
        MatrixParam{LockMode::kFine, WaitMode::kFixedSpin, ProgressMode::kPiomanHooks},
        MatrixParam{LockMode::kFine, WaitMode::kBusy, ProgressMode::kPollThread},
        MatrixParam{LockMode::kFine, WaitMode::kBusy, ProgressMode::kTaskletOffload},
        MatrixParam{LockMode::kFine, WaitMode::kBusy, ProgressMode::kIdleCoreOffload}),
    param_name);

}  // namespace
}  // namespace pm2::nm
