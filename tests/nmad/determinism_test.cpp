// Determinism guard: the engine hot-path optimizations (slab-pooled event
// slots, monotone lane + 4-ary heap, lazy-cancel compaction, recycled fiber
// stacks) must be invisible in virtual time. Running the same communication
// workload twice in one process -- so the second run sees warm pools,
// recycled slots and reused stacks -- has to execute the exact same number
// of events and land on the exact same final clock.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "nmad/cluster.hpp"

namespace pm2::nm {
namespace {

struct RunResult {
  std::uint64_t events_executed;
  sim::Time final_time;
  std::vector<sim::Time> iteration_times;
};

RunResult run_pingpong() {
  ClusterConfig cfg;
  Cluster world(cfg);
  RunResult r{};
  const std::size_t kIters = 32;
  world.spawn(0, [&world, &r] {
    auto& c = world.core(0);
    auto* g = world.gate(0, 1);
    std::vector<std::uint8_t> m(256), b(256);
    for (std::size_t i = 0; i < kIters; ++i) {
      c.send(g, 1, m.data(), m.size());
      c.recv(g, 2, b.data(), b.size());
      r.iteration_times.push_back(world.engine().now());
    }
  });
  world.spawn(1, [&world] {
    auto& c = world.core(1);
    auto* g = world.gate(1, 0);
    std::vector<std::uint8_t> b(256);
    for (std::size_t i = 0; i < kIters; ++i) {
      c.recv(g, 1, b.data(), b.size());
      c.send(g, 2, b.data(), b.size());
    }
  });
  world.run();
  r.events_executed = world.engine().events_executed();
  r.final_time = world.engine().now();
  return r;
}

TEST(Determinism, PingpongIsBitIdenticalAcrossRuns) {
  const RunResult first = run_pingpong();
  const RunResult second = run_pingpong();
  EXPECT_EQ(first.events_executed, second.events_executed);
  EXPECT_EQ(first.final_time, second.final_time);
  ASSERT_EQ(first.iteration_times.size(), second.iteration_times.size());
  for (std::size_t i = 0; i < first.iteration_times.size(); ++i) {
    EXPECT_EQ(first.iteration_times[i], second.iteration_times[i])
        << "virtual time diverged at pingpong iteration " << i;
  }
  EXPECT_GT(first.events_executed, 0u);
  EXPECT_GT(first.final_time, 0);
}

}  // namespace
}  // namespace pm2::nm
