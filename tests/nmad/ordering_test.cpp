// Property tests: matching and ordering invariants of the communication
// core, swept across locking modes, strategies and seeds.
#include <gtest/gtest.h>

#include "nmad/cluster.hpp"
#include "obs/metrics.hpp"
#include "simcore/random.hpp"

namespace pm2::nm {
namespace {

TEST(Ordering, SameTagMessagesArriveInSendOrder) {
  nm::ClusterConfig cfg;
  nm::Cluster world(cfg);
  constexpr int kCount = 50;
  world.spawn(0, [&world] {
    nm::Core& c = world.core(0);
    for (std::uint32_t i = 0; i < kCount; ++i) {
      c.send(world.gate(0, 1), 7, &i, sizeof(i));
    }
  });
  world.spawn(1, [&world] {
    nm::Core& c = world.core(1);
    for (std::uint32_t i = 0; i < kCount; ++i) {
      std::uint32_t got = 0;
      c.recv(world.gate(1, 0), 7, &got, sizeof(got));
      EXPECT_EQ(got, i);
    }
  });
  world.run();
}

TEST(Ordering, UnexpectedMessagesAdoptedInSendOrder) {
  // All messages arrive before any receive is posted: adoption must still
  // follow send order (lowest msg_seq first).
  nm::ClusterConfig cfg;
  nm::Cluster world(cfg);
  constexpr int kCount = 20;
  world.spawn(0, [&world] {
    nm::Core& c = world.core(0);
    for (std::uint32_t i = 0; i < kCount; ++i) {
      c.send(world.gate(0, 1), 7, &i, sizeof(i));
    }
  });
  world.spawn(1, [&world] {
    world.sched(1).work(sim::microseconds(200));  // let everything land
    nm::Core& c = world.core(1);
    for (std::uint32_t i = 0; i < kCount; ++i) {
      std::uint32_t got = 0;
      c.recv(world.gate(1, 0), 7, &got, sizeof(got));
      EXPECT_EQ(got, i) << "unexpected adoption out of order";
    }
  });
  world.run();
  // Stats are registry counters now; the canonical read is the lookup.
  EXPECT_GT(obs::MetricsRegistry::global()
                .counter_value("nmad", "node1", "unexpected_chunks")
                .value_or(0),
            0u);
}

TEST(Ordering, DifferentTagsMatchIndependently) {
  nm::ClusterConfig cfg;
  nm::Cluster world(cfg);
  world.spawn(0, [&world] {
    nm::Core& c = world.core(0);
    const std::uint32_t a = 0xAAAA, b = 0xBBBB;
    c.send(world.gate(0, 1), 1, &a, sizeof(a));
    c.send(world.gate(0, 1), 2, &b, sizeof(b));
  });
  world.spawn(1, [&world] {
    nm::Core& c = world.core(1);
    // Receive tag 2 FIRST, although it was sent second.
    std::uint32_t got2 = 0, got1 = 0;
    c.recv(world.gate(1, 0), 2, &got2, sizeof(got2));
    c.recv(world.gate(1, 0), 1, &got1, sizeof(got1));
    EXPECT_EQ(got2, 0xBBBBu);
    EXPECT_EQ(got1, 0xAAAAu);
  });
  world.run();
}

TEST(Ordering, GatesIsolateFlows) {
  // Same tags on different gates must not cross-match.
  nm::ClusterConfig cfg;
  cfg.nodes = 3;
  nm::Cluster world(cfg);
  world.spawn(0, [&world] {
    nm::Core& c = world.core(0);
    const std::uint32_t to1 = 111, to2 = 222;
    c.send(world.gate(0, 1), 9, &to1, sizeof(to1));
    c.send(world.gate(0, 2), 9, &to2, sizeof(to2));
  });
  world.spawn(1, [&world] {
    std::uint32_t got = 0;
    world.core(1).recv(world.gate(1, 0), 9, &got, sizeof(got));
    EXPECT_EQ(got, 111u);
  });
  world.spawn(2, [&world] {
    std::uint32_t got = 0;
    world.core(2).recv(world.gate(2, 0), 9, &got, sizeof(got));
    EXPECT_EQ(got, 222u);
  });
  world.run();
}

struct SweepParam {
  LockMode lock;
  StrategyKind strategy;
  std::uint64_t seed;
};

class RandomTrafficSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(RandomTrafficSweep, MixedSizesAndTagsDeliverIntact) {
  const SweepParam p = GetParam();
  nm::ClusterConfig cfg;
  cfg.nm.lock = p.lock;
  cfg.nm.strategy = p.strategy;
  nm::Cluster world(cfg);

  // Deterministic random schedule shared by both sides.
  constexpr int kMessages = 40;
  sim::Rng rng(p.seed);
  struct Msg {
    Tag tag;
    std::size_t size;
    std::uint8_t fill;
  };
  std::vector<Msg> plan;
  for (int i = 0; i < kMessages; ++i) {
    const Tag tag = static_cast<Tag>(rng.uniform_int(0, 3));
    // Sizes spanning eager PIO, eager DMA, and rendezvous territory.
    const std::size_t size =
        static_cast<std::size_t>(rng.uniform_int(0, 60000));
    plan.push_back({tag, size, static_cast<std::uint8_t>(rng.uniform_int(1, 255))});
  }

  world.spawn(0, [&world, &plan] {
    nm::Core& c = world.core(0);
    auto& sched = world.sched(0);
    sim::Rng pace(99);
    for (const auto& m : plan) {
      std::vector<std::uint8_t> data(m.size, m.fill);
      c.send(world.gate(0, 1), m.tag, data.data(), data.size());
      sched.work(pace.uniform_int(0, 2000));
    }
  });
  world.spawn(1, [&world, &plan] {
    nm::Core& c = world.core(1);
    // Pre-post every receive (per-tag order = send order), then wait in a
    // shuffled order: matching must pair each recv with the right message.
    std::vector<std::vector<std::uint8_t>> bufs;
    std::vector<nm::Request*> reqs;
    bufs.reserve(plan.size());
    for (const auto& m : plan) {
      bufs.emplace_back(m.size + 8, 0);
      reqs.push_back(
          c.irecv(world.gate(1, 0), m.tag, bufs.back().data(), bufs.back().size()));
    }
    std::vector<std::size_t> order(plan.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    sim::Rng pick(7);
    for (std::size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1], order[static_cast<std::size_t>(
                                  pick.uniform_int(0, static_cast<std::int64_t>(i) - 1))]);
    }
    for (std::size_t idx : order) {
      c.wait(reqs[idx]);
      ASSERT_EQ(reqs[idx]->received_length(), plan[idx].size);
      c.release(reqs[idx]);
      for (std::size_t i = 0; i < plan[idx].size; ++i) {
        ASSERT_EQ(bufs[idx][i], plan[idx].fill) << "corruption at byte " << i;
      }
    }
  });
  world.run();
  EXPECT_EQ(world.core(0).active_requests(), 0);
  EXPECT_EQ(world.core(1).active_requests(), 0);
}

std::string sweep_name(const ::testing::TestParamInfo<SweepParam>& info) {
  std::string s = std::string(to_string(info.param.lock)) + "_" +
                  to_string(info.param.strategy) + "_s" +
                  std::to_string(info.param.seed);
  return s;
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, RandomTrafficSweep,
    ::testing::Values(
        SweepParam{LockMode::kNone, StrategyKind::kDefault, 1},
        SweepParam{LockMode::kNone, StrategyKind::kAggreg, 2},
        SweepParam{LockMode::kCoarse, StrategyKind::kAggreg, 3},
        SweepParam{LockMode::kCoarse, StrategyKind::kDefault, 4},
        SweepParam{LockMode::kFine, StrategyKind::kAggreg, 5},
        SweepParam{LockMode::kFine, StrategyKind::kDefault, 6},
        SweepParam{LockMode::kFine, StrategyKind::kSplit, 7},
        SweepParam{LockMode::kFine, StrategyKind::kAggreg, 8},
        SweepParam{LockMode::kCoarse, StrategyKind::kAggreg, 9},
        SweepParam{LockMode::kFine, StrategyKind::kSplit, 10}),
    sweep_name);

TEST(Determinism, IdenticalRunsProduceIdenticalTimelines) {
  auto run_once = [] {
    nm::ClusterConfig cfg;
    nm::Cluster world(cfg);
    world.spawn(0, [&world] {
      nm::Core& c = world.core(0);
      std::vector<std::uint8_t> m(777, 3), b(777);
      for (int i = 0; i < 20; ++i) {
        c.send(world.gate(0, 1), 1, m.data(), m.size());
        c.recv(world.gate(0, 1), 2, b.data(), b.size());
      }
    });
    world.spawn(1, [&world] {
      nm::Core& c = world.core(1);
      std::vector<std::uint8_t> b(777);
      for (int i = 0; i < 20; ++i) {
        c.recv(world.gate(1, 0), 1, b.data(), b.size());
        c.send(world.gate(1, 0), 2, b.data(), b.size());
      }
    });
    world.run();
    return std::pair(world.engine().now(), world.engine().events_executed());
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
}

}  // namespace
}  // namespace pm2::nm
