// Parallel-engine guard at the cluster level: a partitioned multi-node
// world must produce the exact same virtual-time schedule no matter how
// many host worker threads execute it. The partition count itself is part
// of the schedule (documented in ClusterConfig), so runs are only compared
// at equal partition counts.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "nmad/cluster.hpp"

namespace pm2::nm {
namespace {

struct RunResult {
  std::uint64_t events_executed;
  std::uint64_t cross_events;
  sim::Time final_time;
  std::vector<sim::Time> iteration_times;
};

// Two independent pingpong pairs (0 <-> 1, 2 <-> 3). With partitions = 2
// every message crosses partitions (node n lives in partition n % 2); with
// partitions = 4 each node owns a partition.
RunResult run_pairs(int partitions, int workers) {
  ClusterConfig cfg;
  cfg.nodes = 4;
  cfg.partitions = partitions;
  cfg.workers = workers;
  Cluster world(cfg);
  RunResult r{};
  const std::size_t kIters = 16;

  // Iteration stamps are appended by two different virtual nodes; collect
  // them per pair so host-thread interleaving cannot reorder the vector.
  std::vector<std::vector<sim::Time>> stamps(2);

  for (int pair = 0; pair < 2; ++pair) {
    const int a = 2 * pair, b = 2 * pair + 1;
    world.spawn(a, [&world, &stamps, pair, a, b] {
      auto& c = world.core(a);
      auto* g = world.gate(a, b);
      std::vector<std::uint8_t> m(256), buf(256);
      for (std::size_t i = 0; i < kIters; ++i) {
        c.send(g, 1, m.data(), m.size());
        c.recv(g, 2, buf.data(), buf.size());
        stamps[static_cast<std::size_t>(pair)].push_back(world.engine().now());
      }
    });
    world.spawn(b, [&world, a, b] {
      auto& c = world.core(b);
      auto* g = world.gate(b, a);
      std::vector<std::uint8_t> buf(256);
      for (std::size_t i = 0; i < kIters; ++i) {
        c.recv(g, 1, buf.data(), buf.size());
        c.send(g, 2, buf.data(), buf.size());
      }
    });
  }
  world.run();
  for (auto& s : stamps) {
    r.iteration_times.insert(r.iteration_times.end(), s.begin(), s.end());
  }
  r.events_executed = world.engine().events_executed();
  r.cross_events = world.engine().cross_events();
  r.final_time = world.engine().now();
  return r;
}

void expect_same(const RunResult& a, const RunResult& b, const char* what) {
  EXPECT_EQ(a.events_executed, b.events_executed) << what;
  EXPECT_EQ(a.cross_events, b.cross_events) << what;
  EXPECT_EQ(a.final_time, b.final_time) << what;
  ASSERT_EQ(a.iteration_times.size(), b.iteration_times.size()) << what;
  for (std::size_t i = 0; i < a.iteration_times.size(); ++i) {
    EXPECT_EQ(a.iteration_times[i], b.iteration_times[i])
        << what << ": virtual time diverged at iteration " << i;
  }
}

TEST(ParallelCluster, ScheduleIsIdenticalAcrossWorkerCounts) {
  for (const int partitions : {2, 4}) {
    const RunResult w1 = run_pairs(partitions, 1);
    const RunResult w2 = run_pairs(partitions, 2);
    const RunResult w4 = run_pairs(partitions, 4);
    SCOPED_TRACE(testing::Message() << "partitions=" << partitions);
    expect_same(w1, w2, "workers 1 vs 2");
    expect_same(w1, w4, "workers 1 vs 4");
    EXPECT_GT(w1.events_executed, 0u);
    EXPECT_GT(w1.cross_events, 0u);  // wire traffic really crossed partitions
    EXPECT_GT(w1.final_time, 0);
  }
}

TEST(ParallelCluster, PartitionedRunIsRepeatableInProcess) {
  const RunResult first = run_pairs(2, 2);
  const RunResult second = run_pairs(2, 2);
  expect_same(first, second, "warm pools, same partitioning");
}

}  // namespace
}  // namespace pm2::nm
