#include <gtest/gtest.h>

#include "nmad/cluster.hpp"

namespace pm2::nm {
namespace {

TEST(AnyTag, MatchesWhateverArrives) {
  nm::ClusterConfig cfg;
  nm::Cluster world(cfg);
  world.spawn(0, [&world] {
    std::uint32_t v = 0xCAFE;
    world.core(0).send(world.gate(0, 1), 42, &v, sizeof(v));
  });
  world.spawn(1, [&world] {
    nm::Core& c = world.core(1);
    std::uint32_t got = 0;
    nm::Request* r = c.irecv(world.gate(1, 0), kAnyTag, &got, sizeof(got));
    c.wait(r);
    EXPECT_EQ(got, 0xCAFEu);
    EXPECT_EQ(r->matched_tag(), 42u);
    c.release(r);
  });
  world.run();
}

TEST(AnyTag, AdoptsEarliestUnexpectedAcrossTags) {
  nm::ClusterConfig cfg;
  nm::Cluster world(cfg);
  world.spawn(0, [&world] {
    nm::Core& c = world.core(0);
    std::uint32_t first = 1, second = 2;
    c.send(world.gate(0, 1), 100, &first, sizeof(first));
    c.send(world.gate(0, 1), 200, &second, sizeof(second));
  });
  world.spawn(1, [&world] {
    world.sched(1).work(sim::microseconds(30));  // both land unexpected
    nm::Core& c = world.core(1);
    std::uint32_t got = 0;
    nm::Request* r = c.irecv(world.gate(1, 0), kAnyTag, &got, sizeof(got));
    c.wait(r);
    EXPECT_EQ(got, 1u);  // send order wins, regardless of tag
    EXPECT_EQ(r->matched_tag(), 100u);
    c.release(r);
    // The second message still matches its own tag.
    EXPECT_EQ(c.recv(world.gate(1, 0), 200, &got, sizeof(got)), sizeof(got));
    EXPECT_EQ(got, 2u);
  });
  world.run();
}

TEST(AnyTag, WildcardAndExactRecvsCoexist) {
  nm::ClusterConfig cfg;
  nm::Cluster world(cfg);
  world.spawn(0, [&world] {
    nm::Core& c = world.core(0);
    std::uint32_t a = 10, b = 20;
    c.send(world.gate(0, 1), 7, &a, sizeof(a));
    c.send(world.gate(0, 1), 8, &b, sizeof(b));
  });
  world.spawn(1, [&world] {
    nm::Core& c = world.core(1);
    std::uint32_t exact = 0, any = 0;
    // Exact tag-8 posted first, wildcard second: tag-7 must flow to the
    // wildcard, tag-8 to the exact receive.
    nm::Request* r8 = c.irecv(world.gate(1, 0), 8, &exact, sizeof(exact));
    nm::Request* rw = c.irecv(world.gate(1, 0), kAnyTag, &any, sizeof(any));
    c.wait(r8);
    c.wait(rw);
    EXPECT_EQ(exact, 20u);
    EXPECT_EQ(any, 10u);
    EXPECT_EQ(rw->matched_tag(), 7u);
    c.release(r8);
    c.release(rw);
  });
  world.run();
}

TEST(AnyTag, WorksWithRendezvous) {
  nm::ClusterConfig cfg;
  nm::Cluster world(cfg);
  constexpr std::size_t kBig = 64 * 1024;
  world.spawn(0, [&world] {
    static std::vector<std::uint8_t> data(kBig, 0x7E);
    world.core(0).send(world.gate(0, 1), 9, data.data(), data.size());
  });
  world.spawn(1, [&world, kBig] {
    nm::Core& c = world.core(1);
    std::vector<std::uint8_t> buf(kBig);
    nm::Request* r = c.irecv(world.gate(1, 0), kAnyTag, buf.data(), buf.size());
    c.wait(r);
    EXPECT_EQ(r->received_length(), kBig);
    EXPECT_EQ(r->matched_tag(), 9u);
    EXPECT_EQ(buf[kBig - 1], 0x7E);
    c.release(r);
  });
  world.run();
}

}  // namespace
}  // namespace pm2::nm
