// Unit tests of the optimization-layer strategies, driven through a real
// cluster so submission bookkeeping (inflight chunks, completion) is
// exercised end to end, plus packet-level checks via NIC stats.
#include <gtest/gtest.h>

#include <numeric>

#include "nmad/cluster.hpp"

namespace pm2::nm {
namespace {

nm::ClusterConfig config_with(StrategyKind strategy, int rails = 1) {
  nm::ClusterConfig cfg;
  cfg.nm.strategy = strategy;
  cfg.rails.clear();
  for (int i = 0; i < rails; ++i) cfg.rails.push_back(net::NicParams::myri10g());
  return cfg;
}

/// Send @p count messages of @p size in one burst, then deliver them all;
/// returns the number of packets the sender's rail 0 NIC emitted.
std::uint64_t burst_packets(StrategyKind strategy, int count,
                            std::size_t size) {
  nm::Cluster world(config_with(strategy));
  world.spawn(0, [&world, count, size] {
    nm::Core& c = world.core(0);
    nm::Gate* g = world.gate(0, 1);
    std::vector<std::uint8_t> data(size, 0x33);
    std::vector<nm::Request*> reqs;
    for (int i = 0; i < count; ++i) {
      reqs.push_back(c.isend(g, 7, data.data(), data.size()));
    }
    for (auto* r : reqs) {
      c.wait(r);
      c.release(r);
    }
  });
  world.spawn(1, [&world, count, size] {
    nm::Core& c = world.core(1);
    nm::Gate* g = world.gate(1, 0);
    std::vector<std::uint8_t> buf(size);
    for (int i = 0; i < count; ++i) {
      EXPECT_EQ(c.recv(g, 7, buf.data(), buf.size()), size);
    }
  });
  world.run();
  return world.nic(0, 0).packets_sent();
}

TEST(Strategy, DefaultSendsOnePacketPerMessage) {
  EXPECT_EQ(burst_packets(StrategyKind::kDefault, 8, 64), 8u);
}

TEST(Strategy, AggregCoalescesBurstsIntoFewerPackets) {
  // 8 x 64 B messages queued while the NIC is busy with the first packet
  // get coalesced; the packet count must drop well below 8.
  const std::uint64_t aggreg = burst_packets(StrategyKind::kAggreg, 8, 64);
  EXPECT_LT(aggreg, 8u);
  EXPECT_GE(aggreg, 1u);
}

TEST(Strategy, AggregRespectsBudget) {
  // Messages bigger than aggreg_max can never share a packet.
  const std::uint64_t packets = burst_packets(StrategyKind::kAggreg, 5, 8000);
  EXPECT_EQ(packets, 5u);
}

TEST(Strategy, AggregatedBurstIsFasterThanDefault) {
  auto burst_time = [&](StrategyKind strategy) {
    nm::Cluster world(config_with(strategy));
    sim::Time done = 0;
    world.spawn(0, [&world] {
      nm::Core& c = world.core(0);
      nm::Gate* g = world.gate(0, 1);
      std::vector<std::uint8_t> data(64, 1);
      std::vector<nm::Request*> reqs;
      for (int i = 0; i < 16; ++i) {
        reqs.push_back(c.isend(g, 7, data.data(), data.size()));
      }
      for (auto* r : reqs) {
        c.wait(r);
        c.release(r);
      }
    });
    world.spawn(1, [&world, &done] {
      nm::Core& c = world.core(1);
      nm::Gate* g = world.gate(1, 0);
      std::vector<std::uint8_t> buf(64);
      for (int i = 0; i < 16; ++i) c.recv(g, 7, buf.data(), buf.size());
      done = world.engine().now();
    });
    world.run();
    return done;
  };
  // Aggregation amortizes per-packet overheads (headers ride together):
  // the whole burst completes sooner.
  EXPECT_LT(burst_time(StrategyKind::kAggreg),
            burst_time(StrategyKind::kDefault));
}

TEST(Strategy, SplitStripesRendezvousAcrossRails) {
  nm::Cluster world(config_with(StrategyKind::kSplit, 2));
  const std::size_t kBig = 1 << 20;
  world.spawn(0, [&world, kBig] {
    nm::Core& c = world.core(0);
    std::vector<std::uint8_t> data(kBig);
    for (std::size_t i = 0; i < kBig; ++i) data[i] = static_cast<std::uint8_t>(i);
    c.send(world.gate(0, 1), 9, data.data(), data.size());
  });
  world.spawn(1, [&world, kBig] {
    nm::Core& c = world.core(1);
    std::vector<std::uint8_t> buf(kBig, 0);
    EXPECT_EQ(c.recv(world.gate(1, 0), 9, buf.data(), buf.size()), kBig);
    for (std::size_t i = 0; i < kBig; i += 4099) {
      ASSERT_EQ(buf[i], static_cast<std::uint8_t>(i)) << i;
    }
  });
  world.run();
  // Both rails carried a meaningful share of the bulk data.
  EXPECT_GT(world.nic(0, 0).bytes_sent(), kBig / 4);
  EXPECT_GT(world.nic(0, 1).bytes_sent(), kBig / 4);
  EXPECT_GE(world.nic(0, 0).bytes_sent() + world.nic(0, 1).bytes_sent(), kBig);
}

TEST(Strategy, SplitLeavesSmallMessagesOnRailZero) {
  nm::Cluster world(config_with(StrategyKind::kSplit, 2));
  world.spawn(0, [&world] {
    nm::Core& c = world.core(0);
    std::vector<std::uint8_t> data(256, 5);
    for (int i = 0; i < 10; ++i) {
      c.send(world.gate(0, 1), 3, data.data(), data.size());
    }
  });
  world.spawn(1, [&world] {
    nm::Core& c = world.core(1);
    std::vector<std::uint8_t> buf(256);
    for (int i = 0; i < 10; ++i) c.recv(world.gate(1, 0), 3, buf.data(), 256);
  });
  world.run();
  EXPECT_EQ(world.nic(0, 1).packets_sent(), 0u);  // rail 1 untouched
  EXPECT_GT(world.nic(0, 0).packets_sent(), 0u);
}

TEST(Strategy, MultirailFasterThanSingleRailForBulk) {
  auto transfer_time = [](int rails) {
    nm::ClusterConfig cfg = config_with(StrategyKind::kSplit, rails);
    nm::Cluster world(cfg);
    sim::Time done = 0;
    const std::size_t kBig = 2 << 20;
    world.spawn(0, [&world, kBig] {
      static std::vector<std::uint8_t> data(kBig, 0x42);
      world.core(0).send(world.gate(0, 1), 1, data.data(), data.size());
    });
    world.spawn(1, [&world, &done, kBig] {
      static std::vector<std::uint8_t> buf(kBig);
      world.core(1).recv(world.gate(1, 0), 1, buf.data(), buf.size());
      done = world.engine().now();
    });
    world.run();
    return done;
  };
  const sim::Time single = transfer_time(1);
  const sim::Time dual = transfer_time(2);
  EXPECT_LT(dual, single);
  // Two equal rails: close to half the time (within 25%).
  EXPECT_LT(static_cast<double>(dual), 0.75 * static_cast<double>(single));
}

TEST(Strategy, FactoryMakesRightKinds) {
  EXPECT_STREQ(Strategy::make(StrategyKind::kDefault)->name(), "default");
  EXPECT_STREQ(Strategy::make(StrategyKind::kAggreg)->name(), "aggreg");
  EXPECT_STREQ(Strategy::make(StrategyKind::kSplit)->name(), "split");
}

}  // namespace
}  // namespace pm2::nm
