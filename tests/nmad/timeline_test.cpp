// Full-stack timeline recording through Cluster::enable_timeline().
#include <gtest/gtest.h>

#include <fstream>

#include "nmad/cluster.hpp"

namespace pm2::nm {
namespace {

TEST(Timeline, RecordsThreadSpansAndNicActivity) {
  nm::ClusterConfig cfg;
  nm::Cluster world(cfg);
  sim::ChromeTrace& trace = world.enable_timeline();
  world.spawn(0, [&world] {
    std::uint8_t b[32] = {};
    world.core(0).send(world.gate(0, 1), 1, b, 32);
    world.core(0).recv(world.gate(0, 1), 2, b, 32);
  }, "pinger");
  world.spawn(1, [&world] {
    std::uint8_t b[32];
    world.core(1).recv(world.gate(1, 0), 1, b, 32);
    world.core(1).send(world.gate(1, 0), 2, b, 32);
  }, "ponger");
  world.run();

  EXPECT_GT(trace.event_count(), 4u);
  const std::string json = trace.to_json();
  EXPECT_NE(json.find("pinger"), std::string::npos);
  EXPECT_NE(json.find("ponger"), std::string::npos);
  EXPECT_NE(json.find("tx 67B -> port 1"), std::string::npos)
      << "expected a NIC tx span (2 B count + 33 B header + 32 B data)";
  EXPECT_NE(json.find("node 0"), std::string::npos);
  EXPECT_NE(json.find("nic rail 0"), std::string::npos);
}

TEST(Timeline, WriteThroughClusterHelper) {
  nm::ClusterConfig cfg;
  nm::Cluster world(cfg);
  world.enable_timeline();
  world.spawn(0, [&world] { world.sched(0).work(sim::microseconds(5)); });
  world.run();
  const std::string path = ::testing::TempDir() + "/pm2sim_cluster_trace.json";
  world.write_timeline(path);
  std::ifstream f(path);
  EXPECT_TRUE(f.good());
  std::remove(path.c_str());
}

TEST(Timeline, DisabledByDefault) {
  nm::ClusterConfig cfg;
  nm::Cluster world(cfg);
  EXPECT_EQ(world.timeline(), nullptr);
  EXPECT_THROW(world.write_timeline("/tmp/x.json"), std::logic_error);
}

}  // namespace
}  // namespace pm2::nm
