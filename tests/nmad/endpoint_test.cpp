// pm2sim -- scalable-endpoint tests: tag routing across N endpoints,
// wildcard receives spanning endpoints, per-endpoint counters, poll-thread
// progression at N > 1, and a seeded multi-producer stress workload whose
// matching correctness and run-to-run determinism (same seed => byte
// identical flow trace) gate the whole per-endpoint data path.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "nmad/cluster.hpp"
#include "obs/metrics.hpp"
#include "simcore/random.hpp"

namespace pm2::nm {
namespace {

TEST(Endpoints, ConfigValidated) {
  ClusterConfig zero;
  zero.endpoints = 0;
  EXPECT_THROW(Cluster{zero}, std::invalid_argument);
  // The wire format carries the endpoint id in one byte.
  ClusterConfig huge;
  huge.endpoints = 256;
  EXPECT_THROW(Cluster{huge}, std::invalid_argument);
}

TEST(Endpoints, ExactTagsRouteByModulo) {
  ClusterConfig cfg;
  cfg.endpoints = 4;
  Cluster world(cfg);
  ASSERT_EQ(world.core(0).num_endpoints(), 4);
  ASSERT_EQ(world.core(1).num_endpoints(), 4);
  constexpr int kTags = 8;
  world.spawn(0, [&world] {
    Core& c = world.core(0);
    std::vector<std::uint32_t> vals(kTags);
    std::vector<Request*> reqs;
    for (int t = 0; t < kTags; ++t) {
      vals[static_cast<std::size_t>(t)] =
          0xA0000000u + static_cast<std::uint32_t>(t);
      Request* r =
          c.isend(world.gate(0, 1), static_cast<Tag>(t),
                  &vals[static_cast<std::size_t>(t)], sizeof(std::uint32_t));
      EXPECT_EQ(r->endpoint(), t % 4);
      reqs.push_back(r);
    }
    for (Request* r : reqs) {
      c.wait(r);
      c.release(r);
    }
  });
  world.spawn(1, [&world] {
    Core& c = world.core(1);
    std::vector<std::uint32_t> got(kTags, 0);
    std::vector<Request*> reqs;
    for (int t = 0; t < kTags; ++t) {
      Request* r =
          c.irecv(world.gate(1, 0), static_cast<Tag>(t),
                  &got[static_cast<std::size_t>(t)], sizeof(std::uint32_t));
      EXPECT_EQ(r->endpoint(), t % 4);
      reqs.push_back(r);
    }
    for (int t = 0; t < kTags; ++t) {
      c.wait(reqs[static_cast<std::size_t>(t)]);
      EXPECT_EQ(got[static_cast<std::size_t>(t)],
                0xA0000000u + static_cast<std::uint32_t>(t));
      c.release(reqs[static_cast<std::size_t>(t)]);
    }
  });
  world.run();
  EXPECT_EQ(world.core(0).active_requests(), 0);
  EXPECT_EQ(world.core(1).active_requests(), 0);
}

TEST(Endpoints, RendezvousOnNonZeroEndpoint) {
  ClusterConfig cfg;
  cfg.endpoints = 4;
  Cluster world(cfg);
  static constexpr std::size_t kBig = 96 * 1024;
  std::vector<std::uint8_t> data(kBig);
  for (std::size_t i = 0; i < kBig; ++i) {
    data[i] = static_cast<std::uint8_t>(i * 7 + 3);
  }
  world.spawn(0, [&world, &data] {
    world.core(0).send(world.gate(0, 1), 7, data.data(), data.size());
  });
  world.spawn(1, [&world, &data] {
    Core& c = world.core(1);
    std::vector<std::uint8_t> buf(kBig, 0);
    Request* r = c.irecv(world.gate(1, 0), 7, buf.data(), buf.size());
    EXPECT_EQ(r->endpoint(), 3);  // 7 % 4
    c.wait(r);
    EXPECT_EQ(r->received_length(), kBig);
    EXPECT_EQ(buf, data);
    c.release(r);
  });
  world.run();
}

TEST(Endpoints, WildcardClaimsPostedAcrossEndpoints) {
  ClusterConfig cfg;
  cfg.endpoints = 4;
  Cluster world(cfg);
  world.spawn(0, [&world] {
    // Give the receiver time to park its wildcard first.
    world.sched(0).work(sim::microseconds(30));
    std::uint32_t v = 0xBEEF;
    world.core(0).send(world.gate(0, 1), 5, &v, sizeof(v));
  });
  world.spawn(1, [&world] {
    Core& c = world.core(1);
    std::uint32_t got = 0;
    Request* r = c.irecv(world.gate(1, 0), kAnyTag, &got, sizeof(got));
    c.wait(r);
    EXPECT_EQ(got, 0xBEEFu);
    EXPECT_EQ(r->matched_tag(), 5u);
    EXPECT_EQ(r->endpoint(), 1);  // bound at claim time: 5 % 4
    c.release(r);
  });
  world.run();
}

TEST(Endpoints, WildcardAdoptsUnexpectedAcrossEndpoints) {
  ClusterConfig cfg;
  cfg.endpoints = 4;
  Cluster world(cfg);
  world.spawn(0, [&world] {
    Core& c = world.core(0);
    std::uint32_t a = 1, b = 2;
    c.send(world.gate(0, 1), 9, &a, sizeof(a));  // endpoint 1
    c.send(world.gate(0, 1), 6, &b, sizeof(b));  // endpoint 2
  });
  world.spawn(1, [&world] {
    world.sched(1).work(sim::microseconds(30));  // both land unexpected
    Core& c = world.core(1);
    // Unexpected adoption scans endpoints in id order, so the endpoint-1
    // message is adopted first regardless of global send order (each
    // endpoint is an independent channel; only per-endpoint order holds).
    std::uint32_t got = 0;
    Request* r1 = c.irecv(world.gate(1, 0), kAnyTag, &got, sizeof(got));
    c.wait(r1);
    EXPECT_EQ(r1->matched_tag(), 9u);
    EXPECT_EQ(r1->endpoint(), 1);
    EXPECT_EQ(got, 1u);
    c.release(r1);
    Request* r2 = c.irecv(world.gate(1, 0), kAnyTag, &got, sizeof(got));
    c.wait(r2);
    EXPECT_EQ(r2->matched_tag(), 6u);
    EXPECT_EQ(r2->endpoint(), 2);
    EXPECT_EQ(got, 2u);
    c.release(r2);
  });
  world.run();
}

TEST(Endpoints, WildcardAndExactCoexistAcrossEndpoints) {
  ClusterConfig cfg;
  cfg.endpoints = 4;
  Cluster world(cfg);
  world.spawn(0, [&world] {
    Core& c = world.core(0);
    std::uint32_t a = 10, b = 20;
    c.send(world.gate(0, 1), 7, &a, sizeof(a));  // endpoint 3
    c.send(world.gate(0, 1), 8, &b, sizeof(b));  // endpoint 0
  });
  world.spawn(1, [&world] {
    Core& c = world.core(1);
    std::uint32_t exact = 0, any = 0;
    // Exact tag-8 posted first, wildcard second: tag-7 (another endpoint)
    // must flow to the wildcard, tag-8 to the exact receive.
    Request* r8 = c.irecv(world.gate(1, 0), 8, &exact, sizeof(exact));
    Request* rw = c.irecv(world.gate(1, 0), kAnyTag, &any, sizeof(any));
    c.wait(r8);
    c.wait(rw);
    EXPECT_EQ(exact, 20u);
    EXPECT_EQ(any, 10u);
    EXPECT_EQ(rw->matched_tag(), 7u);
    c.release(r8);
    c.release(rw);
  });
  world.run();
}

TEST(Endpoints, PerEndpointCountersTrack) {
  auto& reg = obs::MetricsRegistry::global();
  reg.set_enabled(true);
  {
    ClusterConfig cfg;
    cfg.endpoints = 2;
    Cluster world(cfg);
    world.spawn(0, [&world] {
      Core& c = world.core(0);
      std::uint32_t v = 1;
      c.send(world.gate(0, 1), 0, &v, sizeof(v));  // endpoint 0
      c.send(world.gate(0, 1), 1, &v, sizeof(v));  // endpoint 1
      c.send(world.gate(0, 1), 3, &v, sizeof(v));  // endpoint 1
    });
    world.spawn(1, [&world] {
      Core& c = world.core(1);
      std::uint32_t v = 0;
      c.recv(world.gate(1, 0), 0, &v, sizeof(v));
      c.recv(world.gate(1, 0), 1, &v, sizeof(v));
      c.recv(world.gate(1, 0), 3, &v, sizeof(v));
    });
    world.run();
    EXPECT_EQ(reg.counter_value("nmad.ep", "node0", "sends", 0).value_or(0),
              1u);
    EXPECT_EQ(reg.counter_value("nmad.ep", "node0", "sends", 1).value_or(0),
              2u);
    EXPECT_EQ(reg.counter_value("nmad.ep", "node1", "recvs", 0).value_or(0),
              1u);
    EXPECT_EQ(reg.counter_value("nmad.ep", "node1", "recvs", 1).value_or(0),
              2u);
    // The aggregate core stats still see every operation.
    EXPECT_EQ(world.core(0).stats().sends, 3u);
    EXPECT_EQ(world.core(1).stats().recvs, 3u);
  }
  reg.set_enabled(false);
}

TEST(Endpoints, PollThreadProgressionMultiEndpoint) {
  ClusterConfig cfg;
  cfg.endpoints = 2;
  cfg.partitions = 2;  // per-endpoint poll fibers pin to the node partition
  cfg.nm.progress = ProgressMode::kPollThread;
  cfg.nm.poll_core = 1;
  Cluster world(cfg);
  world.core(0).start_poll_thread();
  world.core(1).start_poll_thread();
  world.spawn(0, [&world] {
    Core& c = world.core(0);
    std::uint32_t a = 11, b = 22, sum = 0;
    c.send(world.gate(0, 1), 2, &a, sizeof(a));  // endpoint 0
    c.send(world.gate(0, 1), 3, &b, sizeof(b));  // endpoint 1
    c.recv(world.gate(0, 1), 4, &sum, sizeof(sum));
    EXPECT_EQ(sum, 33u);
    world.core(0).stop_poll_thread();
  }, "ping", 0);
  world.spawn(1, [&world] {
    Core& c = world.core(1);
    std::uint32_t a = 0, b = 0;
    c.recv(world.gate(1, 0), 2, &a, sizeof(a));
    c.recv(world.gate(1, 0), 3, &b, sizeof(b));
    std::uint32_t sum = a + b;
    c.send(world.gate(1, 0), 4, &sum, sizeof(sum));
    world.core(1).stop_poll_thread();
  }, "pong", 0);
  world.run();
  EXPECT_EQ(world.core(0).active_requests(), 0);
  EXPECT_EQ(world.core(1).active_requests(), 0);
}

// --- seeded multi-producer stress -----------------------------------------
//
// M producer threads on node 0 send a seeded schedule of messages to node 1;
// tags below kExactTags are consumed by pre-posted exact receives (one
// consumer fiber per tag), the rest by pre-posted wildcard receives split
// over two consumer fibers. Every payload is self-describing (producer,
// tag, per-(producer,tag) sequence, length, then a seeded byte pattern), so
// each delivery is checked for integrity, correct tag, correct endpoint
// binding, and per-(producer, tag) FIFO -- the MPI non-overtaking rule,
// which per-endpoint channels must preserve for any fixed tag.

struct MsgSpec {
  Tag tag = 0;
  std::uint32_t len = 0;
  std::uint32_t pair_seq = 0;  ///< per (producer, tag) sequence number
};

constexpr int kProducers = 4;
constexpr int kMsgsPerProducer = 12;
constexpr Tag kExactTags = 6;  ///< tags [0, 6) -> exact receives
constexpr Tag kWildTags = 6;   ///< tags [6, 12) -> wildcard receives
constexpr int kStressEndpoints = 4;
constexpr std::size_t kHeader = 16;
constexpr std::size_t kMaxLen = 96 * 1024;

std::uint8_t pattern_byte(std::uint32_t producer, std::uint32_t tag,
                          std::uint32_t pair_seq, std::size_t i) {
  return static_cast<std::uint8_t>(producer * 151 + tag * 43 + pair_seq * 17 +
                                   i * 131 + 5);
}

std::vector<std::uint8_t> make_message(std::uint32_t producer,
                                       const MsgSpec& m) {
  std::vector<std::uint8_t> buf(m.len);
  const auto tag32 = static_cast<std::uint32_t>(m.tag);
  std::memcpy(buf.data(), &producer, 4);
  std::memcpy(buf.data() + 4, &tag32, 4);
  std::memcpy(buf.data() + 8, &m.pair_seq, 4);
  std::memcpy(buf.data() + 12, &m.len, 4);
  for (std::size_t i = kHeader; i < m.len; ++i) {
    buf[i] = pattern_byte(producer, tag32, m.pair_seq, i);
  }
  return buf;
}

/// Both sides derive the whole message schedule from the seed alone.
std::vector<std::vector<MsgSpec>> make_schedule(std::uint64_t seed) {
  std::vector<std::vector<MsgSpec>> out(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    sim::Rng rng(seed + 0x9E3779B97F4A7C15ull *
                            static_cast<std::uint64_t>(p + 1));
    std::map<Tag, std::uint32_t> next_seq;
    for (int i = 0; i < kMsgsPerProducer; ++i) {
      MsgSpec m;
      m.tag = rng.bernoulli(0.5) ? kExactTags + rng.next_below(kWildTags)
                                 : rng.next_below(kExactTags);
      const std::size_t body = rng.bernoulli(0.15)
                                   ? 48 * 1024 + rng.next_below(32 * 1024)
                                   : rng.next_below(2048);
      m.len = static_cast<std::uint32_t>(kHeader + body);
      m.pair_seq = next_seq[m.tag]++;
      out[static_cast<std::size_t>(p)].push_back(m);
    }
  }
  return out;
}

/// Check one delivered message against its self-describing payload and the
/// per-(producer, tag) FIFO order seen so far by this consumer. (Each
/// consumer's deliveries are a subsequence of the per-pair seq order, so
/// strict monotonicity per pair must hold within any single consumer.)
void verify_message(const Request& r, const std::vector<std::uint8_t>& buf,
                    bool wildcard, Tag exact_tag,
                    std::map<std::uint64_t, std::int64_t>& last_seq) {
  ASSERT_GE(r.received_length(), kHeader);
  std::uint32_t producer = 0, tag = 0, pair_seq = 0, len = 0;
  std::memcpy(&producer, buf.data(), 4);
  std::memcpy(&tag, buf.data() + 4, 4);
  std::memcpy(&pair_seq, buf.data() + 8, 4);
  std::memcpy(&len, buf.data() + 12, 4);
  EXPECT_EQ(r.received_length(), len);
  if (wildcard) {
    EXPECT_GE(tag, static_cast<std::uint32_t>(kExactTags));
    EXPECT_EQ(r.matched_tag(), tag);
  } else {
    EXPECT_EQ(tag, static_cast<std::uint32_t>(exact_tag));
  }
  EXPECT_EQ(r.endpoint(), static_cast<int>(tag % kStressEndpoints));
  std::size_t bad = 0;
  bool ok = true;
  for (std::size_t i = kHeader; i < len && ok; ++i) {
    if (buf[i] != pattern_byte(producer, tag, pair_seq, i)) {
      ok = false;
      bad = i;
    }
  }
  EXPECT_TRUE(ok) << "payload mismatch at byte " << bad << " (producer "
                  << producer << " tag " << tag << " seq " << pair_seq << ")";
  const std::uint64_t key = (static_cast<std::uint64_t>(producer) << 32) | tag;
  auto it = last_seq.find(key);
  if (it != last_seq.end()) {
    EXPECT_GT(static_cast<std::int64_t>(pair_seq), it->second)
        << "per-(producer " << producer << ", tag " << tag
        << ") order violated";
  }
  last_seq[key] = pair_seq;
}

struct StressResult {
  std::uint64_t events = 0;
  sim::Time final_time = 0;
  std::vector<char> trace;  ///< the binary flow/trace log, byte for byte
};

std::vector<char> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::vector<char>(std::istreambuf_iterator<char>(in),
                           std::istreambuf_iterator<char>());
}

StressResult run_stress(std::uint64_t seed, const std::string& trace_path) {
  const auto schedule = make_schedule(seed);
  ClusterConfig cfg;
  cfg.endpoints = kStressEndpoints;
  Cluster world(cfg);
  world.enable_flow_trace();

  for (int p = 0; p < kProducers; ++p) {
    world.spawn(0, [&world, &schedule, p, seed] {
      Core& c = world.core(0);
      sim::Rng delay(seed ^ (0xD1B54A32D192ED03ull *
                             static_cast<std::uint64_t>(p + 1)));
      std::vector<std::vector<std::uint8_t>> bufs;
      std::vector<Request*> pending;
      const auto& list = schedule[static_cast<std::size_t>(p)];
      bufs.reserve(list.size());  // buffers must not move while in flight
      // Let the consumers pre-post everything first: exact-range arrivals
      // must always find their posted receive, or a parked wildcard would
      // (correctly, per matching semantics) claim them and skew the
      // schedule-derived receive counts.
      world.sched(0).work(sim::microseconds(500));
      for (const MsgSpec& m : list) {
        world.sched(0).work(
            sim::nanoseconds(100 + static_cast<sim::Time>(
                                       delay.next_below(3000))));
        bufs.push_back(make_message(static_cast<std::uint32_t>(p), m));
        Request* r = c.isend(world.gate(0, 1), m.tag, bufs.back().data(),
                             bufs.back().size());
        EXPECT_EQ(r->endpoint(), static_cast<int>(m.tag % kStressEndpoints));
        pending.push_back(r);
        if (pending.size() >= 4) {
          c.wait(pending.front());
          c.release(pending.front());
          pending.erase(pending.begin());
        }
      }
      for (Request* r : pending) {
        c.wait(r);
        c.release(r);
      }
    }, "prod" + std::to_string(p));
  }

  // Receive counts are derived from the shared schedule: consumers pre-post
  // everything, so exact-tag arrivals always find their posted receive and
  // the wildcard pool absorbs exactly the wildcard-range messages.
  std::array<int, kExactTags> exact_count{};
  int wild_count = 0;
  for (const auto& list : schedule) {
    for (const MsgSpec& m : list) {
      if (m.tag < kExactTags) {
        ++exact_count[static_cast<std::size_t>(m.tag)];
      } else {
        ++wild_count;
      }
    }
  }

  for (Tag t = 0; t < kExactTags; ++t) {
    const int n = exact_count[static_cast<std::size_t>(t)];
    if (n == 0) continue;
    world.spawn(1, [&world, t, n] {
      Core& c = world.core(1);
      std::vector<std::vector<std::uint8_t>> bufs(
          static_cast<std::size_t>(n), std::vector<std::uint8_t>(kMaxLen));
      std::vector<Request*> reqs;
      for (int i = 0; i < n; ++i) {
        reqs.push_back(c.irecv(world.gate(1, 0), t,
                               bufs[static_cast<std::size_t>(i)].data(),
                               kMaxLen));
      }
      std::map<std::uint64_t, std::int64_t> last_seq;
      for (int i = 0; i < n; ++i) {
        c.wait(reqs[static_cast<std::size_t>(i)]);
        verify_message(*reqs[static_cast<std::size_t>(i)],
                       bufs[static_cast<std::size_t>(i)], /*wildcard=*/false,
                       t, last_seq);
        c.release(reqs[static_cast<std::size_t>(i)]);
      }
    }, "exact" + std::to_string(t));
  }

  for (int w = 0; w < 2; ++w) {
    const int share = wild_count / 2 + (w < wild_count % 2 ? 1 : 0);
    if (share == 0) continue;
    world.spawn(1, [&world, share] {
      Core& c = world.core(1);
      std::vector<std::vector<std::uint8_t>> bufs(
          static_cast<std::size_t>(share),
          std::vector<std::uint8_t>(kMaxLen));
      std::vector<Request*> reqs;
      for (int i = 0; i < share; ++i) {
        reqs.push_back(c.irecv(world.gate(1, 0), kAnyTag,
                               bufs[static_cast<std::size_t>(i)].data(),
                               kMaxLen));
      }
      std::map<std::uint64_t, std::int64_t> last_seq;
      for (int i = 0; i < share; ++i) {
        c.wait(reqs[static_cast<std::size_t>(i)]);
        verify_message(*reqs[static_cast<std::size_t>(i)],
                       bufs[static_cast<std::size_t>(i)], /*wildcard=*/true,
                       kAnyTag, last_seq);
        c.release(reqs[static_cast<std::size_t>(i)]);
      }
    }, "wild" + std::to_string(w));
  }

  world.run();
  world.write_trace_binary(trace_path);

  EXPECT_EQ(world.core(0).active_requests(), 0);
  EXPECT_EQ(world.core(1).active_requests(), 0);
  StressResult res;
  res.events = world.engine().events_executed();
  res.final_time = world.engine().now();
  res.trace = read_file(trace_path);
  return res;
}

TEST(EndpointStress, SeededMultiProducerMatches) {
  run_stress(0xC0FFEEull,
             testing::TempDir() + "pm2sim_ep_stress_a.trace.bin");
}

TEST(EndpointStress, SameSeedSameFlowTrace) {
  const std::string dir = testing::TempDir();
  const StressResult a =
      run_stress(42, dir + "pm2sim_ep_stress_r1.trace.bin");
  const StressResult b =
      run_stress(42, dir + "pm2sim_ep_stress_r2.trace.bin");
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.final_time, b.final_time);
  ASSERT_FALSE(a.trace.empty());
  EXPECT_EQ(a.trace, b.trace);  // same seed => byte-identical flow trace
  // A different seed must actually change the workload.
  const StressResult c =
      run_stress(43, dir + "pm2sim_ep_stress_r3.trace.bin");
  EXPECT_NE(a.trace, c.trace);
}

}  // namespace
}  // namespace pm2::nm
