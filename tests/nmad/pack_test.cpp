#include "nmad/pack.hpp"

#include <gtest/gtest.h>

#include <cstring>

#include "nmad/cluster.hpp"

namespace pm2::nm {
namespace {

TEST(Pack, GatherScatterRoundTrip) {
  nm::ClusterConfig cfg;
  nm::Cluster world(cfg);
  world.spawn(0, [&world] {
    struct Header {
      std::uint32_t kind;
      std::uint32_t count;
    } h{7, 3};
    const double values[3] = {1.5, 2.5, 3.5};
    PackBuilder pk(world.core(0));
    pk.pack(&h, sizeof(h)).pack(values, sizeof(values));
    EXPECT_EQ(pk.packed_size(), sizeof(h) + sizeof(values));
    pk.send(world.gate(0, 1), 9);
  });
  world.spawn(1, [&world] {
    struct Header {
      std::uint32_t kind;
      std::uint32_t count;
    } h{};
    double values[3] = {};
    UnpackDest up(world.core(1));
    up.unpack(&h, sizeof(h)).unpack(values, sizeof(values));
    const std::size_t n = up.recv(world.gate(1, 0), 9);
    EXPECT_EQ(n, sizeof(h) + sizeof(values));
    EXPECT_EQ(h.kind, 7u);
    EXPECT_EQ(h.count, 3u);
    EXPECT_DOUBLE_EQ(values[0], 1.5);
    EXPECT_DOUBLE_EQ(values[2], 3.5);
  });
  world.run();
}

TEST(Pack, BuilderMayDieBeforeCompletion) {
  // Zero-copy contract: pack() records references, so the *builder* may be
  // destroyed right after isend while the caller's segments stay alive
  // until completion (rendezvous-sized to stress the placed path).
  nm::ClusterConfig cfg;
  nm::Cluster world(cfg);
  constexpr std::size_t kBig = 80 * 1024;
  world.spawn(0, [&world] {
    nm::Core& c = world.core(0);
    std::vector<std::uint8_t> part1(kBig / 2, 0xA1);
    std::vector<std::uint8_t> part2(kBig / 2, 0xB2);
    Request* req = nullptr;
    {
      PackBuilder pk(c);
      pk.reserve(2);
      pk.pack(part1.data(), part1.size()).pack(part2.data(), part2.size());
      req = pk.isend(world.gate(0, 1), 5);
      // builder destroyed here, before the rendezvous completes
    }
    c.wait(req);
    c.release(req);
  });
  world.spawn(1, [&world, kBig] {
    std::vector<std::uint8_t> buf(kBig);
    EXPECT_EQ(world.core(1).recv(world.gate(1, 0), 5, buf.data(), buf.size()),
              kBig);
    EXPECT_EQ(buf[0], 0xA1);
    EXPECT_EQ(buf[kBig - 1], 0xB2);
    EXPECT_EQ(buf[kBig / 2 - 1], 0xA1);
    EXPECT_EQ(buf[kBig / 2], 0xB2);
  });
  world.run();
}

TEST(Pack, BuilderIsReusable) {
  nm::ClusterConfig cfg;
  nm::Cluster world(cfg);
  world.spawn(0, [&world] {
    PackBuilder pk(world.core(0));
    for (std::uint32_t i = 0; i < 5; ++i) {
      pk.pack(&i, sizeof(i));
      pk.send(world.gate(0, 1), 1);
      EXPECT_EQ(pk.packed_size(), 0u);
    }
  });
  world.spawn(1, [&world] {
    for (std::uint32_t i = 0; i < 5; ++i) {
      std::uint32_t got = 99;
      EXPECT_EQ(world.core(1).recv(world.gate(1, 0), 1, &got, sizeof(got)),
                sizeof(got));
      EXPECT_EQ(got, i);
    }
  });
  world.run();
}

TEST(Pack, ShortMessageFillsOnlyLeadingSlices) {
  nm::ClusterConfig cfg;
  nm::Cluster world(cfg);
  world.spawn(0, [&world] {
    const std::uint8_t five[5] = {1, 2, 3, 4, 5};
    world.core(0).send(world.gate(0, 1), 2, five, sizeof(five));
  });
  world.spawn(1, [&world] {
    std::uint8_t a[3] = {0xFF, 0xFF, 0xFF};
    std::uint8_t b[8];
    std::memset(b, 0xEE, sizeof(b));
    UnpackDest up(world.core(1));
    up.unpack(a, sizeof(a)).unpack(b, sizeof(b));
    EXPECT_EQ(up.capacity(), 11u);
    const std::size_t n = up.recv(world.gate(1, 0), 2);
    EXPECT_EQ(n, 5u);
    EXPECT_EQ(a[0], 1);
    EXPECT_EQ(a[2], 3);
    EXPECT_EQ(b[0], 4);
    EXPECT_EQ(b[1], 5);
    EXPECT_EQ(b[2], 0xEE);  // untouched past the message end
  });
  world.run();
}

TEST(Pack, IsendVHelper) {
  nm::ClusterConfig cfg;
  nm::Cluster world(cfg);
  world.spawn(0, [&world] {
    nm::Core& c = world.core(0);
    const char a[] = "seg-a|";
    const char b[] = "seg-b";
    Request* req =
        isend_v(c, world.gate(0, 1), 4,
                {ConstIoSlice{a, 6}, ConstIoSlice{b, 5}});
    c.wait(req);
    c.release(req);
  });
  world.spawn(1, [&world] {
    char buf[16] = {};
    EXPECT_EQ(world.core(1).recv(world.gate(1, 0), 4, buf, sizeof(buf)), 11u);
    EXPECT_STREQ(buf, "seg-a|seg-b");
  });
  world.run();
}

TEST(Pack, PackingCostIsCharged) {
  nm::ClusterConfig cfg;
  nm::Cluster world(cfg);
  world.spawn(0, [&world] {
    PackBuilder pk(world.core(0));
    std::vector<std::uint8_t> seg(100000, 1);
    const sim::Time t0 = world.engine().now();
    pk.pack(seg.data(), seg.size());
    EXPECT_GT(world.engine().now() - t0, 0);  // the gather copy costs time
  });
  world.run();
}

}  // namespace
}  // namespace pm2::nm
