#include "nmad/wire_format.hpp"

#include <gtest/gtest.h>

#include <cstring>

namespace pm2::nm {
namespace {

TEST(WireFormat, EmptyBuilderYieldsCountOnlyPayload) {
  PacketBuilder b;
  EXPECT_EQ(b.chunk_count(), 0u);
  auto payload = b.take();
  EXPECT_EQ(payload.size(), 2u);
  PacketReader r(payload);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(WireFormat, RoundTripSingleChunk) {
  PacketBuilder b;
  const std::uint8_t data[5] = {1, 2, 3, 4, 5};
  ChunkHeader h;
  h.kind = ChunkKind::kEager;
  h.tag = 0xDEADBEEFCAFEull;
  h.msg_seq = 42;
  h.offset = 7;
  h.chunk_len = 5;
  h.total_len = 12;
  h.cookie = 0x1122334455667788ull;
  b.add_chunk(h, data);
  auto payload = b.take();

  PacketReader r(payload);
  ASSERT_EQ(r.remaining(), 1u);
  const std::uint8_t* out = nullptr;
  auto got = r.next(&out);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->kind, ChunkKind::kEager);
  EXPECT_EQ(got->tag, h.tag);
  EXPECT_EQ(got->msg_seq, 42u);
  EXPECT_EQ(got->offset, 7u);
  EXPECT_EQ(got->chunk_len, 5u);
  EXPECT_EQ(got->total_len, 12u);
  EXPECT_EQ(got->cookie, h.cookie);
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(std::memcmp(out, data, 5), 0);
  EXPECT_FALSE(r.next(&out).has_value());
}

TEST(WireFormat, RoundTripMultipleChunks) {
  PacketBuilder b;
  for (std::uint32_t i = 0; i < 5; ++i) {
    std::uint8_t byte = static_cast<std::uint8_t>(i + 10);
    ChunkHeader h;
    h.kind = i % 2 ? ChunkKind::kEager : ChunkKind::kRts;
    h.tag = i;
    h.msg_seq = i * 100;
    h.chunk_len = i % 2 ? 1 : 0;
    b.add_chunk(h, h.chunk_len ? &byte : nullptr);
  }
  auto payload = b.take();
  PacketReader r(payload);
  EXPECT_EQ(r.remaining(), 5u);
  for (std::uint32_t i = 0; i < 5; ++i) {
    const std::uint8_t* out = nullptr;
    auto got = r.next(&out);
    ASSERT_TRUE(got.has_value()) << i;
    EXPECT_EQ(got->tag, i);
    EXPECT_EQ(got->msg_seq, i * 100);
    if (i % 2) {
      ASSERT_NE(out, nullptr);
      EXPECT_EQ(*out, i + 10);
    }
  }
  EXPECT_TRUE(r.ok());
}

TEST(WireFormat, BuilderIsReusableAfterTake) {
  PacketBuilder b;
  ChunkHeader h;
  h.chunk_len = 0;
  b.add_chunk(h, nullptr);
  auto first = b.take();
  EXPECT_EQ(b.chunk_count(), 0u);
  auto second = b.take();
  EXPECT_EQ(second.size(), 2u);
  EXPECT_GT(first.size(), second.size());
}

TEST(WireFormat, ReserveDoesNotChangeTheWire) {
  PacketBuilder plain;
  PacketBuilder hinted;
  hinted.reserve(3, 64);
  const std::uint8_t data[16] = {1, 2, 3, 4, 5, 6, 7, 8};
  for (std::uint32_t i = 0; i < 3; ++i) {
    ChunkHeader h;
    h.kind = ChunkKind::kEager;
    h.tag = i;
    h.chunk_len = 16;
    plain.add_chunk(h, data);
    hinted.add_chunk(h, data);
  }
  EXPECT_EQ(plain.payload_size(), hinted.payload_size());
  EXPECT_EQ(plain.take().linearize(), hinted.take().linearize());
}

TEST(WireFormat, SizeWithPredictsGrowth) {
  PacketBuilder b;
  const std::size_t predicted = b.size_with(10);
  std::uint8_t data[10] = {};
  ChunkHeader h;
  h.chunk_len = 10;
  b.add_chunk(h, data);
  EXPECT_EQ(b.payload_size(), predicted);
}

TEST(WireFormat, TruncatedPayloadRejected) {
  PacketBuilder b;
  std::uint8_t data[4] = {9, 9, 9, 9};
  ChunkHeader h;
  h.chunk_len = 4;
  b.add_chunk(h, data);
  std::vector<std::uint8_t> bytes = b.take().linearize();
  bytes.resize(bytes.size() - 3);  // chop the tail
  PacketReader r(bytes);
  const std::uint8_t* out = nullptr;
  EXPECT_FALSE(r.next(&out).has_value());
  EXPECT_FALSE(r.ok());
}

TEST(WireFormat, BadKindRejected) {
  PacketBuilder b;
  ChunkHeader h;
  h.chunk_len = 0;
  b.add_chunk(h, nullptr);
  std::vector<std::uint8_t> bytes = b.take().linearize();
  bytes[2] = 0x7F;  // corrupt the kind byte of the first chunk
  PacketReader r(bytes);
  const std::uint8_t* out = nullptr;
  EXPECT_FALSE(r.next(&out).has_value());
  EXPECT_FALSE(r.ok());
}

TEST(WireFormat, EmptyPayloadRejected) {
  std::vector<std::uint8_t> empty;
  PacketReader r(empty);
  EXPECT_FALSE(r.ok());
}

TEST(WireFormat, HeaderWireSizeMatchesSerialization) {
  PacketBuilder b;
  ChunkHeader h;
  h.chunk_len = 0;
  b.add_chunk(h, nullptr);
  EXPECT_EQ(b.payload_size(), 2 + ChunkHeader::kWireSize);
}

}  // namespace
}  // namespace pm2::nm
