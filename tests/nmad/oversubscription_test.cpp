// Regression tests for oversubscribed nodes (threads > cores): spinners
// and busy-waiters must not starve the threads they wait on.
#include <gtest/gtest.h>

#include "nmad/cluster.hpp"
#include "sync/spinlock.hpp"

namespace pm2::nm {
namespace {

TEST(Oversubscription, BusyWaiterSharesCoreWithItsPeer) {
  // Single-core nodes: the busy-waiting receiver and (later) another
  // compute thread share the core; the wait loop must preempt itself.
  nm::ClusterConfig cfg;
  cfg.topology = mach::CacheTopology::uniform(1, 1);
  nm::Cluster world(cfg);
  bool compute_ran = false;
  world.spawn(0, [&world] {
    std::uint8_t b = 0;
    world.core(0).recv(world.gate(0, 1), 1, &b, 1);  // busy wait, core 0
    EXPECT_EQ(b, 5);
  });
  world.spawn(0, [&world, &compute_ran] {
    // Queued behind the busy waiter on the only core.
    world.sched(0).work(sim::microseconds(50));
    compute_ran = true;
  });
  world.spawn(1, [&world] {
    world.sched(1).work(sim::microseconds(400));  // longer than a timeslice
    std::uint8_t v = 5;
    world.core(1).send(world.gate(1, 0), 1, &v, 1);
  });
  world.run();
  EXPECT_TRUE(compute_ran);
}

TEST(Oversubscription, CoarseLockSpinnersYieldToQueuedThreads) {
  // Two threads on ONE core contend for the coarse library: the one
  // spinning for the lock must yield so the holder (queued on the same
  // core after preemption) can finish its wait.
  nm::ClusterConfig cfg;
  cfg.topology = mach::CacheTopology::uniform(1, 1);
  cfg.nm.lock = LockMode::kCoarse;
  nm::Cluster world(cfg);
  int done = 0;
  for (int t = 0; t < 2; ++t) {
    world.spawn(0, [&world, t, &done] {
      nm::Core& c = world.core(0);
      std::uint32_t v = static_cast<std::uint32_t>(t);
      std::uint32_t echo = 0;
      c.send(world.gate(0, 1), static_cast<Tag>(t), &v, sizeof(v));
      c.recv(world.gate(0, 1), 10 + static_cast<Tag>(t), &echo, sizeof(echo));
      if (echo == v + 1) ++done;
    });
  }
  for (int t = 0; t < 2; ++t) {
    world.spawn(1, [&world, t] {
      nm::Core& c = world.core(1);
      std::uint32_t v = 0;
      c.recv(world.gate(1, 0), static_cast<Tag>(t), &v, sizeof(v));
      ++v;
      c.send(world.gate(1, 0), 10 + static_cast<Tag>(t), &v, sizeof(v));
    });
  }
  world.run();
  EXPECT_EQ(done, 2);
}

TEST(Oversubscription, ManyThreadsFewCoresAllConfigsComplete) {
  for (auto wait : {WaitMode::kBusy, WaitMode::kPassive, WaitMode::kFixedSpin}) {
    for (auto lock : {LockMode::kCoarse, LockMode::kFine}) {
      nm::ClusterConfig cfg;
      cfg.topology = mach::CacheTopology::uniform(2, 2);
      cfg.nm.lock = lock;
      cfg.nm.wait = wait;
      cfg.nm.progress = wait == WaitMode::kBusy ? ProgressMode::kAppDriven
                                                : ProgressMode::kPiomanHooks;
      nm::Cluster world(cfg);
      int ok = 0;
      constexpr int kThreads = 5;  // on 2 cores
      for (int t = 0; t < kThreads; ++t) {
        world.spawn(0, [&world, t, &ok] {
          nm::Core& c = world.core(0);
          std::uint8_t v = static_cast<std::uint8_t>(t);
          std::uint8_t echo = 0;
          c.send(world.gate(0, 1), static_cast<Tag>(t), &v, 1);
          c.recv(world.gate(0, 1), 50 + static_cast<Tag>(t), &echo, 1);
          if (echo == t + 1) ++ok;
        });
        world.spawn(1, [&world, t] {
          nm::Core& c = world.core(1);
          std::uint8_t v = 0;
          c.recv(world.gate(1, 0), static_cast<Tag>(t), &v, 1);
          ++v;
          c.send(world.gate(1, 0), 50 + static_cast<Tag>(t), &v, 1);
        });
      }
      world.run();
      EXPECT_EQ(ok, kThreads)
          << "lock=" << to_string(lock) << " wait=" << to_string(wait);
    }
  }
}

TEST(Oversubscription, MaybePreemptRenewsSliceOnIdleCore) {
  sim::Engine engine;
  mach::Machine machine(engine, "n", mach::CacheTopology::quad_core(),
                        mach::CostBook::xeon_quad());
  mth::Scheduler sched(machine);
  int preemptions = 0;
  sched.spawn([&] {
    // Alone on the core: maybe_preempt never preempts, always renews.
    for (int i = 0; i < 5; ++i) {
      sched.charge_current(machine.costs().timeslice + 10);
      if (sched.maybe_preempt()) ++preemptions;
    }
  });
  engine.run();
  EXPECT_EQ(preemptions, 0);
}

TEST(Oversubscription, MaybePreemptRotatesWhenQueued) {
  sim::Engine engine;
  mach::Machine machine(engine, "n", mach::CacheTopology::quad_core(),
                        mach::CostBook::xeon_quad());
  mth::Scheduler sched(machine);
  std::vector<int> order;
  mth::ThreadAttrs a;
  a.bind_core = 0;
  sched.spawn([&] {
    sched.charge_current(machine.costs().timeslice + 10);
    EXPECT_TRUE(sched.maybe_preempt());  // thread 2 is queued
    order.push_back(1);
  }, a);
  sched.spawn([&] { order.push_back(2); }, a);
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{2, 1}));
}

}  // namespace
}  // namespace pm2::nm
