// Request lifecycle, error paths, statistics, cluster wiring, and
// thread-multiple (concurrent threads in one library instance) behaviour.
#include <gtest/gtest.h>

#include "nmad/cluster.hpp"
#include "obs/metrics.hpp"
#include "sync/barrier.hpp"

namespace pm2::nm {
namespace {

TEST(RequestLifecycle, RequestsAreRecycled) {
  nm::ClusterConfig cfg;
  nm::Cluster world(cfg);
  world.spawn(0, [&world] {
    nm::Core& c = world.core(0);
    std::uint8_t byte = 1;
    std::set<nm::Request*> seen;
    for (int i = 0; i < 10; ++i) {
      nm::Request* r = c.isend(world.gate(0, 1), 1, &byte, 1);
      seen.insert(r);
      c.wait(r);
      c.release(r);
    }
    // The free list recycles: far fewer distinct objects than operations.
    EXPECT_LE(seen.size(), 2u);
  });
  world.spawn(1, [&world] {
    std::uint8_t b = 0;
    for (int i = 0; i < 10; ++i) world.core(1).recv(world.gate(1, 0), 1, &b, 1);
  });
  world.run();
}

TEST(RequestLifecycle, TestReportsCompletionWithoutBlocking) {
  nm::ClusterConfig cfg;
  nm::Cluster world(cfg);
  world.spawn(0, [&world] {
    nm::Core& c = world.core(0);
    std::uint8_t buf = 0;
    nm::Request* r = c.irecv(world.gate(0, 1), 1, &buf, 1);
    EXPECT_FALSE(c.test(r));  // nothing sent yet
    // Poll until completion via test() only.
    auto& ctx = mth::ExecContext::current();
    while (!c.test(r)) c.progress(ctx);
    EXPECT_EQ(buf, 42);
    c.release(r);
  });
  world.spawn(1, [&world] {
    world.sched(1).work(sim::microseconds(10));
    std::uint8_t v = 42;
    world.core(1).send(world.gate(1, 0), 1, &v, 1);
  });
  world.run();
}

TEST(RequestLifecycle, ReceivedLengthReflectsShorterMessage) {
  nm::ClusterConfig cfg;
  nm::Cluster world(cfg);
  world.spawn(0, [&world] {
    std::uint8_t big[64];
    const std::size_t n = world.core(0).recv(world.gate(0, 1), 1, big, 64);
    EXPECT_EQ(n, 5u);
  });
  world.spawn(1, [&world] {
    const char msg[5] = {'h', 'e', 'l', 'l', 'o'};
    world.core(1).send(world.gate(1, 0), 1, msg, 5);
  });
  world.run();
}

TEST(ErrorPaths, EagerOverflowThrows) {
  nm::ClusterConfig cfg;
  nm::Cluster world(cfg);
  world.spawn(0, [&world] {
    std::uint8_t tiny[4];
    EXPECT_THROW(world.core(0).recv(world.gate(0, 1), 1, tiny, 4),
                 std::length_error);
  });
  world.spawn(1, [&world] {
    std::uint8_t big[100] = {};
    world.core(1).isend(world.gate(1, 0), 1, big, 100);
    world.sched(1).work(sim::microseconds(50));
  });
  world.run();
}

TEST(ErrorPaths, ConnectRequiresOnePortPerRail) {
  sim::Engine engine;
  mach::Machine machine(engine, "n", mach::CacheTopology::quad_core(),
                        mach::CostBook::xeon_quad());
  mth::Scheduler sched(machine);
  net::Fabric fabric(engine, "f");
  net::Nic nic(machine, fabric, net::NicParams::myri10g());
  Core core(sched, Config{});
  core.add_rail(nic);
  EXPECT_THROW(core.connect(1, {0, 1}), std::invalid_argument);  // 2 ports, 1 rail
  EXPECT_NE(core.connect(1, {0}), nullptr);
}

TEST(ErrorPaths, TooManyRailsRejected) {
  sim::Engine engine;
  mach::Machine machine(engine, "n", mach::CacheTopology::quad_core(),
                        mach::CostBook::xeon_quad());
  mth::Scheduler sched(machine);
  net::Fabric fabric(engine, "f");
  std::vector<std::unique_ptr<net::Nic>> nics;
  Core core(sched, Config{});
  for (int i = 0; i < 4; ++i) {
    nics.push_back(std::make_unique<net::Nic>(machine, fabric,
                                              net::NicParams::myri10g()));
    core.add_rail(*nics.back());
  }
  nics.push_back(
      std::make_unique<net::Nic>(machine, fabric, net::NicParams::myri10g()));
  EXPECT_THROW(core.add_rail(*nics.back()), std::length_error);
}

TEST(ErrorPaths, BadClusterConfigs) {
  nm::ClusterConfig none;
  none.nodes = 0;
  EXPECT_THROW(nm::Cluster{none}, std::invalid_argument);
  nm::ClusterConfig norails;
  norails.rails.clear();
  EXPECT_THROW(nm::Cluster{norails}, std::invalid_argument);
}

TEST(Stats, CountersTrackTraffic) {
  nm::ClusterConfig cfg;
  nm::Cluster world(cfg);
  world.spawn(0, [&world] {
    nm::Core& c = world.core(0);
    std::uint8_t b[16] = {};
    for (int i = 0; i < 5; ++i) c.send(world.gate(0, 1), 1, b, 16);
  });
  world.spawn(1, [&world] {
    std::uint8_t b[16];
    for (int i = 0; i < 5; ++i) world.core(1).recv(world.gate(1, 0), 1, b, 16);
  });
  world.run();
  // The Stats struct is now a thin view over registry counters: the view
  // and the registry lookup must agree.
  EXPECT_EQ(world.core(0).stats().sends, 5u);
  const auto& reg = obs::MetricsRegistry::global();
  EXPECT_EQ(reg.counter_value("nmad", "node0", "sends"), 5u);
  EXPECT_EQ(reg.counter_value("nmad", "node1", "recvs"), 5u);
  EXPECT_GE(reg.counter_value("nmad", "node1", "packets_rx").value_or(0), 1u);
  EXPECT_GE(reg.counter_value("nmad", "node1", "chunks_rx").value_or(0), 5u);
  // Receiver polls.
  EXPECT_GT(reg.counter_value("nmad", "node1", "progress_passes").value_or(0),
            0u);
  EXPECT_EQ(world.core(1).stats().recvs,
            reg.counter_value("nmad", "node1", "recvs").value_or(0));
}

TEST(ClusterWiring, FullMeshGates) {
  nm::ClusterConfig cfg;
  cfg.nodes = 4;
  nm::Cluster world(cfg);
  for (int a = 0; a < 4; ++a) {
    for (int b = 0; b < 4; ++b) {
      if (a == b) {
        EXPECT_EQ(world.gate(a, b), nullptr);
      } else {
        ASSERT_NE(world.gate(a, b), nullptr);
        EXPECT_EQ(world.gate(a, b)->peer_node(), b);
      }
    }
  }
}

TEST(ClusterWiring, AllPairsCanCommunicate) {
  nm::ClusterConfig cfg;
  cfg.nodes = 4;
  nm::Cluster world(cfg);
  int received = 0;
  for (int node = 0; node < 4; ++node) {
    world.spawn(node, [&world, node, &received] {
      nm::Core& c = world.core(node);
      // Send to every peer, then receive from every peer.
      std::uint32_t mine = 0x100u + static_cast<std::uint32_t>(node);
      std::vector<nm::Request*> reqs;
      for (int peer = 0; peer < 4; ++peer) {
        if (peer == node) continue;
        reqs.push_back(c.isend(world.gate(node, peer),
                               static_cast<Tag>(node), &mine, sizeof(mine)));
      }
      for (int peer = 0; peer < 4; ++peer) {
        if (peer == node) continue;
        std::uint32_t got = 0;
        c.recv(world.gate(node, peer), static_cast<Tag>(peer), &got,
               sizeof(got));
        EXPECT_EQ(got, 0x100u + static_cast<std::uint32_t>(peer));
        ++received;
      }
      for (auto* r : reqs) {
        c.wait(r);
        c.release(r);
      }
    });
  }
  world.run();
  EXPECT_EQ(received, 12);
}

TEST(ThreadMultiple, ConcurrentThreadsShareOneCore) {
  // Four threads of one node all talk through the same nm::Core with fine
  // locking -- the MPI_THREAD_MULTIPLE scenario of the paper's intro.
  nm::ClusterConfig cfg;
  cfg.nm.lock = LockMode::kFine;
  nm::Cluster world(cfg);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 12;
  int ok = 0;
  for (int t = 0; t < kThreads; ++t) {
    world.spawn(0, [&world, t, &ok] {
      nm::Core& c = world.core(0);
      for (int i = 0; i < kPerThread; ++i) {
        const std::uint32_t v =
            static_cast<std::uint32_t>(t) << 16 | static_cast<std::uint32_t>(i);
        std::uint32_t echo = 0;
        c.send(world.gate(0, 1), static_cast<Tag>(t), &v, sizeof(v));
        c.recv(world.gate(0, 1), 100 + static_cast<Tag>(t), &echo, sizeof(echo));
        if (echo == v + 1) ++ok;
      }
    }, "client" + std::to_string(t), t);
  }
  for (int t = 0; t < kThreads; ++t) {
    world.spawn(1, [&world, t] {
      nm::Core& c = world.core(1);
      for (int i = 0; i < kPerThread; ++i) {
        std::uint32_t v = 0;
        c.recv(world.gate(1, 0), static_cast<Tag>(t), &v, sizeof(v));
        const std::uint32_t reply = v + 1;
        c.send(world.gate(1, 0), 100 + static_cast<Tag>(t), &reply,
               sizeof(reply));
      }
    }, "server" + std::to_string(t), t);
  }
  world.run();
  EXPECT_EQ(ok, kThreads * kPerThread);
}

TEST(ThreadMultiple, CoarseModeAlsoCorrectJustSlower) {
  auto run_with = [](LockMode lock) {
    nm::ClusterConfig cfg;
    cfg.nm.lock = lock;
    nm::Cluster world(cfg);
    int ok = 0;
    for (int t = 0; t < 2; ++t) {
      world.spawn(0, [&world, t, &ok] {
        nm::Core& c = world.core(0);
        std::uint8_t b[32] = {};
        for (int i = 0; i < 8; ++i) {
          c.send(world.gate(0, 1), static_cast<Tag>(t), b, 32);
          c.recv(world.gate(0, 1), 10 + static_cast<Tag>(t), b, 32);
          ++ok;
        }
      }, "c" + std::to_string(t), t);
      world.spawn(1, [&world, t] {
        nm::Core& c = world.core(1);
        std::uint8_t b[32];
        for (int i = 0; i < 8; ++i) {
          c.recv(world.gate(1, 0), static_cast<Tag>(t), b, 32);
          c.send(world.gate(1, 0), 10 + static_cast<Tag>(t), b, 32);
        }
      }, "s" + std::to_string(t), t);
    }
    world.run();
    return std::pair(ok, world.engine().now());
  };
  const auto fine = run_with(LockMode::kFine);
  const auto coarse = run_with(LockMode::kCoarse);
  EXPECT_EQ(fine.first, 16);
  EXPECT_EQ(coarse.first, 16);
  EXPECT_GT(coarse.second, fine.second);  // serialization costs time
}

TEST(ZeroLength, EmptyMessagesCompleteBothSides) {
  nm::ClusterConfig cfg;
  nm::Cluster world(cfg);
  world.spawn(0, [&world] {
    nm::Core& c = world.core(0);
    nm::Request* sr = c.isend(world.gate(0, 1), 1, nullptr, 0);
    c.wait(sr);
    c.release(sr);
  });
  world.spawn(1, [&world] {
    nm::Core& c = world.core(1);
    EXPECT_EQ(c.recv(world.gate(1, 0), 1, nullptr, 0), 0u);
  });
  world.run();
}

}  // namespace
}  // namespace pm2::nm
