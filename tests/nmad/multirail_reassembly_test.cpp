// Multi-rail rendezvous reassembly (ISSUE satellite): when the split
// strategy stripes one bulk message across rails of different speeds, the
// chunks' completions arrive out of order -- the slow rail's low-offset
// chunk lands after the fast rail's high-offset chunk. Every byte must
// still land exactly once at its message offset, for posted receives,
// scatter receives, and the unexpected-then-matched handshake.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "nmad/cluster.hpp"
#include "nmad/pack.hpp"
#include "obs/metrics.hpp"

namespace pm2::nm {
namespace {

std::vector<std::uint8_t> pattern(std::size_t n, std::uint8_t salt) {
  std::vector<std::uint8_t> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<std::uint8_t>(i * 37 + salt);
  }
  return v;
}

/// Two rails with a 16x bandwidth gap: rail 0 (where the first, low-offset
/// split chunk goes) is much slower than rail 1, so completions reorder.
ClusterConfig split_config() {
  ClusterConfig cfg;
  net::NicParams slow = net::NicParams::myri10g();
  slow.name = "slow";
  slow.wire_ns_per_byte = 12.8;  // ~0.6 Gb/s
  net::NicParams fast = net::NicParams::myri10g();
  fast.name = "fast";
  fast.wire_ns_per_byte = 0.8;  // 10 Gb/s
  cfg.rails = {slow, fast};
  cfg.nm.strategy = StrategyKind::kSplit;
  return cfg;
}

constexpr std::size_t kBig = 192 * 1024;  // far above the 32 KiB threshold

TEST(MultirailReassembly, OutOfOrderChunksLandExactlyOnce) {
  ClusterConfig cfg = split_config();
  Cluster world(cfg);
  world.spawn(1, [&world] {
    // Sentinel prefill: any byte the reassembly misses stays 0xEE.
    std::vector<std::uint8_t> buf(kBig, 0xEE);
    EXPECT_EQ(world.core(1).recv(world.gate(1, 0), 6, buf.data(), buf.size()),
              kBig);
    EXPECT_EQ(buf, pattern(kBig, 3));
  });
  world.spawn(0, [&world] {
    world.sched(0).work(sim::microseconds(20));  // receiver posts first
    static auto data = pattern(kBig, 3);
    world.core(0).send(world.gate(0, 1), 6, data.data(), data.size());
  });
  world.run();

  // Both rails carried part of the message.
  EXPECT_GT(world.core(0).rail(0).packets_posted(), 0u);
  EXPECT_GT(world.core(0).rail(1).packets_posted(), 0u);
}

TEST(MultirailReassembly, UnexpectedThenMatchedRendezvous) {
  // The RTS sits unexpected; the late irecv adopts it, grants the window,
  // and the striped data still reassembles exactly.
  ClusterConfig cfg = split_config();
  Cluster world(cfg);
  world.spawn(0, [&world] {
    static auto data = pattern(kBig, 9);
    world.core(0).send(world.gate(0, 1), 8, data.data(), data.size());
  });
  world.spawn(1, [&world] {
    world.sched(1).work(sim::microseconds(200));  // RTS arrives unexpected
    std::vector<std::uint8_t> buf(kBig, 0xEE);
    EXPECT_EQ(world.core(1).recv(world.gate(1, 0), 8, buf.data(), buf.size()),
              kBig);
    EXPECT_EQ(buf, pattern(kBig, 9));
  });
  world.run();
}

TEST(MultirailReassembly, ScatterReceiveAcrossRails) {
  // irecv_sg: the striped chunks scatter across three destination segments
  // whose boundaries do not line up with the rail split.
  ClusterConfig cfg = split_config();
  Cluster world(cfg);
  world.spawn(1, [&world] {
    std::vector<std::uint8_t> a(10 * 1024 + 7, 0xEE);
    std::vector<std::uint8_t> b(100 * 1024 + 13, 0xEE);
    std::vector<std::uint8_t> c(kBig, 0xEE);  // oversized tail
    UnpackDest up(world.core(1));
    up.unpack(a.data(), a.size()).unpack(b.data(), b.size()).unpack(
        c.data(), c.size());
    EXPECT_EQ(up.recv(world.gate(1, 0), 2), kBig);
    const auto want = pattern(kBig, 5);
    EXPECT_EQ(std::memcmp(a.data(), want.data(), a.size()), 0);
    EXPECT_EQ(std::memcmp(b.data(), want.data() + a.size(), b.size()), 0);
    const std::size_t tail = kBig - a.size() - b.size();
    EXPECT_EQ(std::memcmp(c.data(), want.data() + a.size() + b.size(), tail),
              0);
    EXPECT_EQ(c[tail], 0xEE);  // untouched past the message end
  });
  world.spawn(0, [&world] {
    world.sched(0).work(sim::microseconds(20));
    static auto data = pattern(kBig, 5);
    world.core(0).send(world.gate(0, 1), 2, data.data(), data.size());
  });
  world.run();
}

TEST(MultirailReassembly, GatherSendAcrossRails) {
  // isend_sg: the message lives in three source segments; split rendezvous
  // placements must walk the slice list correctly.
  ClusterConfig cfg = split_config();
  Cluster world(cfg);
  world.spawn(1, [&world] {
    std::vector<std::uint8_t> buf(kBig, 0xEE);
    EXPECT_EQ(world.core(1).recv(world.gate(1, 0), 4, buf.data(), buf.size()),
              kBig);
    EXPECT_EQ(buf, pattern(kBig, 7));
  });
  world.spawn(0, [&world] {
    world.sched(0).work(sim::microseconds(20));
    static auto data = pattern(kBig, 7);
    static const std::size_t cut1 = 9 * 1024 + 11;
    static const std::size_t cut2 = 120 * 1024 + 3;
    Request* req = isend_v(
        world.core(0), world.gate(0, 1), 4,
        {ConstIoSlice{data.data(), cut1},
         ConstIoSlice{data.data() + cut1, cut2 - cut1},
         ConstIoSlice{data.data() + cut2, kBig - cut2}});
    world.core(0).wait(req);
    world.core(0).release(req);
  });
  world.run();
}

}  // namespace
}  // namespace pm2::nm
