// Copy accounting of the zero-copy data path (ISSUE satellite): the
// registry counters prove how many host copies each path takes --
//   eager send:       1 gather copy into the pooled wire buffer;
//   matched delivery: 1 scatter copy out of the rx ring;
//   rendezvous recv:  0 host copies (placed into the window);
//   unexpected eager: slab handoff, 1 copy total at adoption.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "nmad/cluster.hpp"
#include "obs/metrics.hpp"
#include "simnet/buffer_pool.hpp"

namespace pm2::nm {
namespace {

std::uint64_t counter(const char* node, const char* name) {
  return obs::MetricsRegistry::global()
      .counter_value("nmad", node, name)
      .value_or(0);
}

class DataPathTest : public ::testing::Test {
 protected:
  void SetUp() override {
    was_enabled_ = obs::MetricsRegistry::global().enabled();
    obs::MetricsRegistry::global().set_enabled(true);
  }
  void TearDown() override {
    obs::MetricsRegistry::global().set_enabled(was_enabled_);
  }
  bool was_enabled_ = false;
};

TEST_F(DataPathTest, EagerSendTakesOneGatherCopy) {
  ClusterConfig cfg;
  Cluster world(cfg);  // construction re-registers + zeroes the counters
  constexpr std::size_t kLen = 1000;
  world.spawn(0, [&world, kLen] {
    std::vector<std::uint8_t> msg(kLen, 0x42);
    world.core(0).send(world.gate(0, 1), 7, msg.data(), msg.size());
  });
  world.spawn(1, [&world, kLen] {
    std::vector<std::uint8_t> buf(kLen);
    EXPECT_EQ(world.core(1).recv(world.gate(1, 0), 7, buf.data(), buf.size()),
              kLen);
  });
  world.run();

  // Sender: exactly one host copy -- the gather into the wire slab.
  EXPECT_EQ(counter("node0", "data.bytes_copied"), kLen);
  EXPECT_EQ(counter("node0", "data.copies"), 1u);
  EXPECT_EQ(counter("node0", "data.placed_bytes"), 0u);
  // Receiver: exactly one host copy -- the scatter out of the rx ring.
  EXPECT_EQ(counter("node1", "data.deliver_bytes_copied") +
                counter("node1", "data.adopt_bytes_copied"),
            kLen);
  EXPECT_EQ(counter("node1", "data.copies"), 1u);
  // Each completed request observed its copies-per-message sample.
  EXPECT_GE(obs::MetricsRegistry::global()
                .histogram_count("nmad", "node0", "data.copies_per_msg")
                .value_or(0),
            1u);
}

TEST_F(DataPathTest, RendezvousReceiveTakesZeroHostCopies) {
  ClusterConfig cfg;
  Cluster world(cfg);
  const std::size_t kLen = cfg.nm.rdv_threshold * 4;
  world.spawn(1, [&world, kLen] {
    std::vector<std::uint8_t> buf(kLen, 0);
    EXPECT_EQ(world.core(1).recv(world.gate(1, 0), 9, buf.data(), buf.size()),
              kLen);
    for (std::size_t i = 0; i < kLen; i += 4097) {
      ASSERT_EQ(buf[i], static_cast<std::uint8_t>(i * 131 + 5)) << i;
    }
  });
  world.spawn(0, [&world, kLen] {
    std::vector<std::uint8_t> msg(kLen);
    for (std::size_t i = 0; i < kLen; ++i) {
      msg[i] = static_cast<std::uint8_t>(i * 131 + 5);
    }
    world.core(0).send(world.gate(0, 1), 9, msg.data(), msg.size());
  });
  world.run();

  // The bulk data was placed into the receiver's window: zero host copies
  // on either side's data path.
  EXPECT_EQ(counter("node0", "data.placed_bytes"), kLen);
  EXPECT_EQ(counter("node0", "data.bytes_copied"), 0u);
  EXPECT_EQ(counter("node1", "data.deliver_bytes_copied"), 0u);
  EXPECT_EQ(counter("node1", "data.adopt_bytes_copied"), 0u);
}

TEST_F(DataPathTest, UnexpectedEagerHandsOffTheSlabThenCopiesOnce) {
  ClusterConfig cfg;
  Cluster world(cfg);
  constexpr std::size_t kLen = 512;
  world.spawn(0, [&world, kLen] {
    std::vector<std::uint8_t> msg(kLen);
    for (std::size_t i = 0; i < kLen; ++i) {
      msg[i] = static_cast<std::uint8_t>(i ^ 0x3C);
    }
    world.core(0).send(world.gate(0, 1), 3, msg.data(), msg.size());
    std::uint8_t flush = 0xFF;
    world.core(0).send(world.gate(0, 1), 1, &flush, 1);
  });
  world.spawn(1, [&world, kLen] {
    // Receive the later tag first: its poll loop processes the tag-3
    // packet with no posted match, so it is stored unexpected.
    std::uint8_t flush = 0;
    EXPECT_EQ(world.core(1).recv(world.gate(1, 0), 1, &flush, 1), 1u);
    std::vector<std::uint8_t> buf(kLen, 0);
    EXPECT_EQ(world.core(1).recv(world.gate(1, 0), 3, buf.data(), buf.size()),
              kLen);
    for (std::size_t i = 0; i < kLen; ++i) {
      ASSERT_EQ(buf[i], static_cast<std::uint8_t>(i ^ 0x3C)) << i;
    }
  });
  world.run();

  // The unexpected store shares the packet's slab (no copy); adoption into
  // the user buffer is the single receive-side copy of the tag-3 message.
  // The 1-byte flush message adds one ordinary delivery copy.
  EXPECT_EQ(counter("node1", "data.adopt_bytes_copied"), kLen);
  EXPECT_EQ(counter("node1", "data.bytes_copied"), kLen + 1);
  EXPECT_EQ(counter("node1", "data.copies"), 2u);
}

TEST_F(DataPathTest, SteadyStateTrafficReusesPooledSlabs) {
  ClusterConfig cfg;
  Cluster world(cfg);
  const std::uint64_t hits0 = net::BufferPool::global().hits();
  world.spawn(0, [&world] {
    std::vector<std::uint8_t> msg(256, 0x11);
    for (int i = 0; i < 32; ++i) {
      world.core(0).send(world.gate(0, 1), 4, msg.data(), msg.size());
    }
  });
  world.spawn(1, [&world] {
    std::vector<std::uint8_t> buf(256);
    for (int i = 0; i < 32; ++i) {
      world.core(1).recv(world.gate(1, 0), 4, buf.data(), buf.size());
    }
  });
  world.run();
  // After warmup, every wire buffer comes off a free list.
  EXPECT_GT(net::BufferPool::global().hits(), hits0 + 16);
}

}  // namespace
}  // namespace pm2::nm
