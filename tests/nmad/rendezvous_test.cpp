// Rendezvous protocol: RTS/CTS handshake, early/late receivers, unexpected
// handling, and overlap with background progression.
#include <gtest/gtest.h>

#include "nmad/cluster.hpp"
#include "obs/metrics.hpp"

namespace pm2::nm {
namespace {

std::vector<std::uint8_t> pattern(std::size_t n) {
  std::vector<std::uint8_t> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<std::uint8_t>(i * 11);
  return v;
}

constexpr std::size_t kBig = 100 * 1024;  // above the 32 KiB threshold

TEST(Rendezvous, EarlyReceiverCompletes) {
  nm::ClusterConfig cfg;
  nm::Cluster world(cfg);
  world.spawn(1, [&world] {
    // Receiver posts first, then the RTS finds a posted recv.
    std::vector<std::uint8_t> buf(kBig);
    EXPECT_EQ(world.core(1).recv(world.gate(1, 0), 5, buf.data(), buf.size()),
              kBig);
    EXPECT_EQ(buf, pattern(kBig));
  });
  world.spawn(0, [&world] {
    auto& sched = world.sched(0);
    sched.work(sim::microseconds(50));  // ensure the receiver went first
    static auto data = pattern(kBig);
    world.core(0).send(world.gate(0, 1), 5, data.data(), data.size());
  });
  world.run();
  const auto& reg = obs::MetricsRegistry::global();
  EXPECT_GE(reg.counter_value("nmad", "node0", "rdv_handshakes").value_or(0) +
                reg.counter_value("nmad", "node1", "rdv_handshakes").value_or(0),
            1u);
}

TEST(Rendezvous, LateReceiverAdoptsUnexpectedRts) {
  nm::ClusterConfig cfg;
  nm::Cluster world(cfg);
  world.spawn(0, [&world] {
    static auto data = pattern(kBig);
    world.core(0).send(world.gate(0, 1), 5, data.data(), data.size());
  });
  world.spawn(1, [&world] {
    auto& sched = world.sched(1);
    // Let the RTS arrive and sit unexpected before posting the receive.
    // A busy progression pass is needed since nothing else polls: use a
    // dummy recv on another tag? Simpler: sleep, then post -- the RTS is
    // pulled in by our own wait loop's polling.
    sched.work(sim::microseconds(30));
    std::vector<std::uint8_t> buf(kBig);
    EXPECT_EQ(world.core(1).recv(world.gate(1, 0), 5, buf.data(), buf.size()),
              kBig);
    EXPECT_EQ(buf, pattern(kBig));
  });
  world.run();
}

TEST(Rendezvous, ThresholdBoundaryIsRespected) {
  // A message of exactly the threshold stays eager; one byte more goes
  // rendezvous.
  for (std::size_t delta : {std::size_t{0}, std::size_t{1}}) {
    nm::ClusterConfig cfg;
    cfg.nm.rdv_threshold = 4096;
    nm::Cluster world(cfg);
    const std::size_t size = 4096 + delta;
    world.spawn(0, [&world, size] {
      static std::vector<std::uint8_t> data;
      data = pattern(size);
      world.core(0).send(world.gate(0, 1), 5, data.data(), data.size());
    });
    world.spawn(1, [&world, size] {
      std::vector<std::uint8_t> buf(size);
      EXPECT_EQ(world.core(1).recv(world.gate(1, 0), 5, buf.data(), buf.size()),
                size);
    });
    world.run();
    const std::uint64_t handshakes =
        obs::MetricsRegistry::global()
            .counter_value("nmad", "node0", "rdv_handshakes")
            .value_or(0);
    if (delta == 0) {
      EXPECT_EQ(handshakes, 0u) << "at-threshold message must stay eager";
    } else {
      EXPECT_GE(handshakes, 1u) << "above-threshold message must rendezvous";
    }
  }
}

TEST(Rendezvous, ManyConcurrentLargeTransfers) {
  nm::ClusterConfig cfg;
  nm::Cluster world(cfg);
  constexpr int kCount = 6;
  world.spawn(0, [&world] {
    nm::Core& c = world.core(0);
    static std::vector<std::vector<std::uint8_t>> blocks;
    blocks.clear();
    std::vector<nm::Request*> reqs;
    for (int i = 0; i < kCount; ++i) {
      blocks.push_back(pattern(kBig + static_cast<std::size_t>(i) * 1000));
      reqs.push_back(c.isend(world.gate(0, 1), 100 + static_cast<Tag>(i),
                             blocks.back().data(), blocks.back().size()));
    }
    for (auto* r : reqs) {
      c.wait(r);
      c.release(r);
    }
  });
  world.spawn(1, [&world] {
    nm::Core& c = world.core(1);
    std::vector<nm::Request*> reqs;
    static std::vector<std::vector<std::uint8_t>> bufs;
    bufs.assign(kCount, {});
    for (int i = 0; i < kCount; ++i) {
      bufs[static_cast<std::size_t>(i)].resize(kBig + static_cast<std::size_t>(i) * 1000);
      reqs.push_back(c.irecv(world.gate(1, 0), 100 + static_cast<Tag>(i),
                             bufs[static_cast<std::size_t>(i)].data(),
                             bufs[static_cast<std::size_t>(i)].size()));
    }
    for (int i = 0; i < kCount; ++i) {
      c.wait(reqs[static_cast<std::size_t>(i)]);
      EXPECT_EQ(reqs[static_cast<std::size_t>(i)]->received_length(),
                kBig + static_cast<std::size_t>(i) * 1000);
      c.release(reqs[static_cast<std::size_t>(i)]);
      EXPECT_EQ(bufs[static_cast<std::size_t>(i)],
                pattern(kBig + static_cast<std::size_t>(i) * 1000));
    }
  });
  world.run();
}

TEST(Rendezvous, TooSmallReceiveBufferThrows) {
  nm::ClusterConfig cfg;
  nm::Cluster world(cfg);
  world.spawn(0, [&world] {
    static auto data = pattern(kBig);
    world.core(0).isend(world.gate(0, 1), 5, data.data(), data.size());
    // Keep polling so the RTS is on the wire; the peer will abort.
    world.sched(0).work(sim::microseconds(100));
  });
  world.spawn(1, [&world] {
    std::vector<std::uint8_t> tiny(128);
    world.sched(1).work(sim::microseconds(30));
    EXPECT_THROW(
        world.core(1).recv(world.gate(1, 0), 5, tiny.data(), tiny.size()),
        std::length_error);
  });
  world.run();
}

TEST(Rendezvous, BackgroundProgressionOverlapsHandshake) {
  // With PIOMan hooks, a sender that computes after isend still completes
  // the handshake + transfer in the background; app-driven does not.
  auto completion_time = [](ProgressMode mode) {
    nm::ClusterConfig cfg;
    cfg.nm.progress = mode;
    nm::Cluster world(cfg);
    sim::Time received_at = 0;
    world.spawn(0, [&world] {
      static auto data = pattern(kBig);
      world.core(0).isend(world.gate(0, 1), 5, data.data(), data.size());
      world.sched(0).work(sim::milliseconds(2));  // long compute, no polling
      // (request intentionally not waited before the compute ends)
      nm::Request* done = world.core(0).irecv(world.gate(0, 1), 6, nullptr, 0);
      world.core(0).wait(done);
      world.core(0).release(done);
    });
    world.spawn(1, [&world, &received_at] {
      std::vector<std::uint8_t> buf(kBig);
      world.core(1).recv(world.gate(1, 0), 5, buf.data(), buf.size());
      received_at = world.engine().now();
      world.core(1).send(world.gate(1, 0), 6, nullptr, 0);
    });
    world.run();
    return received_at;
  };
  const sim::Time hooks = completion_time(ProgressMode::kPiomanHooks);
  const sim::Time app = completion_time(ProgressMode::kAppDriven);
  // With hooks the transfer lands during the 2 ms compute; app-driven only
  // finishes after it.
  EXPECT_LT(hooks, sim::milliseconds(1));
  EXPECT_GT(app, sim::milliseconds(2));
}

}  // namespace
}  // namespace pm2::nm
