#include "nmad/locking.hpp"

#include <gtest/gtest.h>

namespace pm2::nm {
namespace {

class LockSetTest : public ::testing::Test {
 protected:
  sim::Engine engine_;
  mach::Machine machine_{engine_, "node", mach::CacheTopology::quad_core(),
                         mach::CostBook::xeon_quad()};
  mth::Scheduler sched_{machine_};
};

TEST_F(LockSetTest, NoneModeIsFree) {
  LockSet locks(sched_, LockMode::kNone, 2);
  sim::Time cost = -1;
  sched_.spawn([&] {
    const sim::Time t0 = engine_.now();
    locks.lock(Domain::kCollect);
    locks.unlock(Domain::kCollect);
    locks.lock_library();
    locks.unlock_library();
    EXPECT_TRUE(locks.try_lock(Domain::kMatching));
    locks.unlock(Domain::kMatching);
    cost = engine_.now() - t0;
  });
  engine_.run();
  EXPECT_EQ(cost, 0);
  EXPECT_EQ(locks.cycles(), 0u);
}

TEST_F(LockSetTest, FineModeUsesSeparateLocks) {
  LockSet locks(sched_, LockMode::kFine, 2);
  sched_.spawn([&] {
    // Different domains can be held simultaneously under fine grain.
    locks.lock(Domain::kCollect);
    locks.lock(Domain::kMatching);
    locks.lock(locks.driver_domain(0));
    locks.lock(locks.driver_domain(1));
    locks.unlock(locks.driver_domain(1));
    locks.unlock(locks.driver_domain(0));
    locks.unlock(Domain::kMatching);
    locks.unlock(Domain::kCollect);
  });
  engine_.run();
  EXPECT_EQ(locks.cycles(), 4u);
}

TEST_F(LockSetTest, FineLibraryLockIsNoop) {
  LockSet locks(sched_, LockMode::kFine, 1);
  sched_.spawn([&] {
    locks.lock_library();
    // Another "thread's" domain access is not blocked: same thread proves
    // the library lock did not take the collect lock.
    locks.lock(Domain::kCollect);
    locks.unlock(Domain::kCollect);
    locks.unlock_library();
  });
  engine_.run();
}

TEST_F(LockSetTest, CoarseMapsDomainsToOneLock) {
  LockSet locks(sched_, LockMode::kCoarse, 2);
  mth::ThreadAttrs a0, a1;
  a0.bind_core = 0;
  a1.bind_core = 1;
  sim::Time blocked_until = -1;
  sched_.spawn([&] {
    locks.lock(Domain::kCollect);
    sched_.charge_current(sim::microseconds(3));
    locks.unlock(Domain::kCollect);
  }, a0);
  sched_.spawn([&] {
    sched_.charge_current(500);
    // A DIFFERENT domain still contends: it is the same global lock.
    locks.lock(Domain::kMatching);
    blocked_until = engine_.now();
    locks.unlock(Domain::kMatching);
  }, a1);
  engine_.run();
  EXPECT_GE(blocked_until, sim::microseconds(3));
}

TEST_F(LockSetTest, CoarseLibraryLockElidesOwnerDomains) {
  LockSet locks(sched_, LockMode::kCoarse, 1);
  sched_.spawn([&] {
    locks.lock_library();
    const std::uint64_t before = locks.cycles();
    locks.lock(Domain::kCollect);  // elided: we own the library
    locks.unlock(Domain::kCollect);
    locks.lock(Domain::kMatching);
    locks.unlock(Domain::kMatching);
    EXPECT_EQ(locks.cycles(), before);
    locks.unlock_library();
  });
  engine_.run();
}

TEST_F(LockSetTest, CoarseLibraryLockIsReentrant) {
  LockSet locks(sched_, LockMode::kCoarse, 1);
  sched_.spawn([&] {
    locks.lock_library();
    locks.lock_library();  // nested visit
    EXPECT_TRUE(locks.library_locked_by_me());
    locks.unlock_library();
    EXPECT_TRUE(locks.library_locked_by_me());
    locks.unlock_library();
    EXPECT_FALSE(locks.library_locked_by_me());
  });
  engine_.run();
}

TEST_F(LockSetTest, CoarseElisionDoesNotLeakToOtherThreads) {
  LockSet locks(sched_, LockMode::kCoarse, 1);
  mth::ThreadAttrs a0, a1;
  a0.bind_core = 0;
  a1.bind_core = 1;
  sim::Time t1_entered = -1;
  sched_.spawn([&] {
    locks.lock_library();
    sched_.charge_current(sim::microseconds(2));
    locks.unlock_library();
  }, a0);
  sched_.spawn([&] {
    sched_.charge_current(300);
    // While thread 0 holds the library, our domain access must NOT be
    // elided -- it has to wait.
    locks.lock(Domain::kCollect);
    t1_entered = engine_.now();
    locks.unlock(Domain::kCollect);
  }, a1);
  engine_.run();
  EXPECT_GE(t1_entered, sim::microseconds(2));
}

TEST_F(LockSetTest, TryLockLibraryFailsWhenHeldElsewhere) {
  LockSet locks(sched_, LockMode::kCoarse, 1);
  mth::ThreadAttrs a0, a1;
  a0.bind_core = 0;
  a1.bind_core = 1;
  bool got = true;
  sched_.spawn([&] {
    locks.lock_library();
    sched_.charge_current(sim::microseconds(2));
    locks.unlock_library();
  }, a0);
  sched_.spawn([&] {
    sched_.charge_current(500);
    got = locks.try_lock_library();
    if (got) locks.unlock_library();
  }, a1);
  engine_.run();
  EXPECT_FALSE(got);
}

TEST_F(LockSetTest, ReleaseAllAndReacquireRestoresDepth) {
  LockSet locks(sched_, LockMode::kCoarse, 1);
  sched_.spawn([&] {
    locks.lock_library();
    locks.lock_library();
    const int depth = locks.release_library_all();
    EXPECT_EQ(depth, 2);
    EXPECT_FALSE(locks.library_locked_by_me());
    locks.reacquire_library(depth);
    EXPECT_TRUE(locks.library_locked_by_me());
    locks.unlock_library();
    locks.unlock_library();
    EXPECT_FALSE(locks.library_locked_by_me());
  });
  engine_.run();
}

TEST_F(LockSetTest, ReleaseAllWithoutHoldIsZero) {
  LockSet coarse(sched_, LockMode::kCoarse, 1);
  LockSet fine(sched_, LockMode::kFine, 1);
  sched_.spawn([&] {
    EXPECT_EQ(coarse.release_library_all(), 0);
    EXPECT_EQ(fine.release_library_all(), 0);
    fine.reacquire_library(0);  // no-op
  });
  engine_.run();
}

TEST(LockModeNames, ToString) {
  EXPECT_STREQ(to_string(LockMode::kNone), "none");
  EXPECT_STREQ(to_string(LockMode::kCoarse), "coarse");
  EXPECT_STREQ(to_string(LockMode::kFine), "fine");
  EXPECT_STREQ(to_string(WaitMode::kFixedSpin), "fixed-spin");
  EXPECT_STREQ(to_string(ProgressMode::kIdleCoreOffload), "idle-core-offload");
  EXPECT_STREQ(to_string(StrategyKind::kAggreg), "aggreg");
}

}  // namespace
}  // namespace pm2::nm
