// Figure-property regression tests: the paper's qualitative claims, pinned
// as assertions so refactors cannot silently lose them. Each test is a
// miniature of the corresponding bench (fewer iterations, 1-2 sizes).
#include <gtest/gtest.h>

#include "bench/common/harness.hpp"

namespace pm2 {
namespace {

double oneway_us(nm::ClusterConfig cfg, std::size_t size,
                 bench::PingpongOptions opt = {}) {
  opt.iters = 30;
  opt.warmup = 5;
  return bench::run_pingpong("x", cfg, {size}, opt).latency_us[0];
}

TEST(FigureProperties, Fig3LockingOverheadFlatAndOrdered) {
  auto latency = [&](nm::LockMode lock, std::size_t size) {
    nm::ClusterConfig cfg;
    cfg.nm.lock = lock;
    return oneway_us(cfg, size);
  };
  for (std::size_t size : {std::size_t{1}, std::size_t{2048}}) {
    const double none = latency(nm::LockMode::kNone, size);
    const double coarse = latency(nm::LockMode::kCoarse, size);
    const double fine = latency(nm::LockMode::kFine, size);
    // Ordering: none < coarse < fine.
    EXPECT_LT(none, coarse) << size;
    EXPECT_LT(coarse, fine) << size;
    // Magnitudes: tens-to-hundreds of ns, not µs (paper: 140 / 230 ns).
    EXPECT_GT(coarse - none, 0.05) << size;   // > 50 ns
    EXPECT_LT(coarse - none, 0.5) << size;    // < 500 ns
    EXPECT_LT(fine - none, 0.6) << size;
  }
  // Flatness: the 2 KB overhead within 150 ns of the 1 B overhead.
  const double d1 = latency(nm::LockMode::kCoarse, 1) -
                    latency(nm::LockMode::kNone, 1);
  const double d2k = latency(nm::LockMode::kCoarse, 2048) -
                     latency(nm::LockMode::kNone, 2048);
  EXPECT_NEAR(d1, d2k, 0.15);
}

TEST(FigureProperties, Fig5ConcurrentThreadsCostMoreUnderCoarse) {
  auto ratio = [&](nm::LockMode lock) {
    nm::ClusterConfig cfg;
    cfg.nm.lock = lock;
    bench::PingpongOptions one;
    one.iters = 30;
    one.warmup = 5;
    const double single =
        bench::run_pingpong("1", cfg, {64}, one).latency_us[0];
    bench::PingpongOptions two = one;
    two.streams = 2;
    const double dual = bench::run_pingpong("2", cfg, {64}, two).latency_us[0];
    return dual / single;
  };
  const double coarse = ratio(nm::LockMode::kCoarse);
  const double fine = ratio(nm::LockMode::kFine);
  EXPECT_GT(coarse, fine);   // coarse serializes more
  EXPECT_GT(coarse, 1.15);   // well above single-thread
  EXPECT_GT(fine, 1.0);
  EXPECT_LT(fine, 1.25);     // fine stays close to single-thread
}

TEST(FigureProperties, Fig6PiomanAddsBoundedOverhead) {
  nm::ClusterConfig plain;
  plain.nm.lock = nm::LockMode::kFine;
  nm::ClusterConfig pioman = plain;
  pioman.nm.progress = nm::ProgressMode::kPiomanHooks;
  pioman.pioman_poll_core = 0;
  const double delta = oneway_us(pioman, 8) - oneway_us(plain, 8);
  EXPECT_GT(delta, 0.05);  // it is not free (paper: ~200 ns)
  EXPECT_LT(delta, 0.5);   // and not dominant
}

TEST(FigureProperties, Fig7PassiveCostsAboutTwoSwitches) {
  auto with_wait = [&](nm::WaitMode wait) {
    nm::ClusterConfig cfg;
    cfg.nm.wait = wait;
    cfg.nm.progress = nm::ProgressMode::kPiomanHooks;
    cfg.pioman_poll_core = 0;
    return oneway_us(cfg, 8);
  };
  const double busy = with_wait(nm::WaitMode::kBusy);
  const double passive = with_wait(nm::WaitMode::kPassive);
  const double fixed = with_wait(nm::WaitMode::kFixedSpin);
  EXPECT_GT(passive - busy, 0.4);  // paper: ~750 ns
  EXPECT_LT(passive - busy, 1.2);
  // Fixed spin at 8 B (latency < 5 us budget) recovers busy-wait latency.
  EXPECT_NEAR(fixed, busy, 0.15);
}

TEST(FigureProperties, Fig8AffinityOrdering) {
  auto with_poll_cpu = [&](int cpu) {
    nm::ClusterConfig cfg;
    cfg.nm.lock = nm::LockMode::kFine;
    bench::PingpongOptions opt;
    if (cpu == 0) {
      cfg.nm.progress = nm::ProgressMode::kAppDriven;
    } else {
      cfg.nm.progress = nm::ProgressMode::kPollThread;
      cfg.nm.poll_core = cpu;
      opt.poll_threads = true;
    }
    opt.app_core = 0;
    return oneway_us(cfg, 8, opt);
  };
  const double same = with_poll_cpu(0);
  const double shared = with_poll_cpu(1);
  const double cross = with_poll_cpu(2);
  EXPECT_LT(same, shared);
  EXPECT_LT(shared, cross);
  // Paper magnitudes: +400 ns and +1.2 us.
  EXPECT_NEAR(shared - same, 0.4, 0.2);
  EXPECT_NEAR(cross - same, 1.2, 0.4);
}

TEST(FigureProperties, Fig9TaskletsCostMoreThanIdleCores) {
  auto with_progress = [&](nm::ProgressMode mode) {
    nm::ClusterConfig cfg;
    cfg.nm.lock = nm::LockMode::kFine;
    cfg.nm.progress = mode;
    cfg.nm.poll_core = 1;
    if (mode == nm::ProgressMode::kIdleCoreOffload) cfg.pioman_poll_core = 1;
    bench::PingpongOptions opt;
    opt.compute_phase = sim::microseconds(10);
    return oneway_us(cfg, 8192, opt);
  };
  const double reference = with_progress(nm::ProgressMode::kAppDriven);
  const double idle = with_progress(nm::ProgressMode::kIdleCoreOffload);
  const double tasklet = with_progress(nm::ProgressMode::kTaskletOffload);
  EXPECT_LT(reference, idle);
  EXPECT_LT(idle, tasklet);
  // Paper magnitudes: ~0.4 us and ~2 us.
  EXPECT_LT(idle - reference, 1.2);
  EXPECT_GT(tasklet - reference, 1.5);
  EXPECT_LT(tasklet - reference, 3.0);
}

}  // namespace
}  // namespace pm2
