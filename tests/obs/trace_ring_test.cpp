// Tests for the binary telemetry path: the lock-free SPSC trace ring, the
// TraceLog sink (spill / drop policies, drain thread, intern table), the
// binary log round trip, and byte-stability of the converted ChromeTrace
// JSON against the legacy direct-JSON path and across worker counts.
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "nmad/cluster.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace_log.hpp"
#include "obs/trace_ring.hpp"

namespace pm2 {
namespace {

sim::TraceRecord make_rec(std::uint64_t i) {
  sim::TraceRecord r;
  r.ts = static_cast<sim::Time>(i);
  r.id = i;
  r.pid = static_cast<std::int32_t>(i % 7);
  r.phase = 'i';
  return r;
}

TEST(TraceRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(obs::TraceRing(1).capacity(), 2u);
  EXPECT_EQ(obs::TraceRing(2).capacity(), 2u);
  EXPECT_EQ(obs::TraceRing(3).capacity(), 4u);
  EXPECT_EQ(obs::TraceRing(4096).capacity(), 4096u);
  EXPECT_EQ(obs::TraceRing(5000).capacity(), 8192u);
}

TEST(TraceRing, FifoAcrossWraparound) {
  obs::TraceRing ring(8);
  sim::TraceRecord out[8];
  std::uint64_t next = 0;
  std::uint64_t expect = 0;
  // Push/pop in a pattern that wraps the indices many times.
  for (int round = 0; round < 100; ++round) {
    for (int k = 0; k < 5; ++k) ASSERT_TRUE(ring.try_push(make_rec(next++)));
    const std::size_t n = ring.pop_n(out, 5);
    ASSERT_EQ(n, 5u);
    for (std::size_t k = 0; k < n; ++k) {
      EXPECT_EQ(out[k].id, expect);
      EXPECT_EQ(out[k].ts, static_cast<sim::Time>(expect));
      ++expect;
    }
  }
  EXPECT_TRUE(ring.empty());
}

TEST(TraceRing, RejectsWhenFullAndRecoversAfterPop) {
  obs::TraceRing ring(4);
  ASSERT_EQ(ring.capacity(), 4u);
  for (std::uint64_t i = 0; i < 4; ++i) EXPECT_TRUE(ring.try_push(make_rec(i)));
  EXPECT_FALSE(ring.try_push(make_rec(99)));
  EXPECT_EQ(ring.size(), 4u);
  sim::TraceRecord out[2];
  ASSERT_EQ(ring.pop_n(out, 2), 2u);
  EXPECT_EQ(out[0].id, 0u);
  EXPECT_EQ(out[1].id, 1u);
  EXPECT_TRUE(ring.try_push(make_rec(4)));
  EXPECT_TRUE(ring.try_push(make_rec(5)));
  EXPECT_FALSE(ring.try_push(make_rec(100)));
}

TEST(TraceRing, SpscRealThreads) {
  // One real producer thread, one real consumer thread (the configuration
  // the memory ordering is written for; run under TSan via
  // bench/check_sanitize.sh).
  constexpr std::uint64_t kRecords = 200000;
  obs::TraceRing ring(256);
  std::thread producer([&ring] {
    for (std::uint64_t i = 0; i < kRecords; ++i) {
      while (!ring.try_push(make_rec(i))) std::this_thread::yield();
    }
  });
  std::uint64_t expect = 0;
  sim::TraceRecord out[64];
  while (expect < kRecords) {
    const std::size_t n = ring.pop_n(out, 64);
    if (n == 0) {
      std::this_thread::yield();
      continue;
    }
    for (std::size_t k = 0; k < n; ++k) {
      ASSERT_EQ(out[k].id, expect);
      ++expect;
    }
  }
  producer.join();
  EXPECT_TRUE(ring.empty());
}

TEST(TraceLog, InternReturnsStableIdsAndZeroForEmpty) {
  obs::TraceLog log;
  EXPECT_EQ(log.intern(""), 0);
  const std::uint16_t a = log.intern("alpha");
  const std::uint16_t b = log.intern("beta");
  EXPECT_NE(a, 0);
  EXPECT_NE(b, 0);
  EXPECT_NE(a, b);
  EXPECT_EQ(log.intern("alpha"), a);
  EXPECT_EQ(log.intern("beta"), b);
}

TEST(TraceLog, InternConcurrentThreadsAgree) {
  obs::TraceLog log;
  constexpr int kThreads = 4;
  constexpr int kStrings = 64;
  std::vector<std::vector<std::uint16_t>> ids(
      kThreads, std::vector<std::uint16_t>(kStrings));
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&log, &ids, t] {
      for (int s = 0; s < kStrings; ++s) {
        ids[static_cast<std::size_t>(t)][static_cast<std::size_t>(s)] =
            log.intern("str-" + std::to_string(s));
      }
    });
  }
  for (auto& t : threads) t.join();
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(ids[static_cast<std::size_t>(t)], ids[0]);
  }
}

TEST(TraceLog, SelfSpillIsLosslessBeyondCapacity) {
  obs::TraceLog::Options opts;
  opts.capacity = 64;
  obs::TraceLog log(opts);
  constexpr std::uint64_t kRecords = 10000;
  for (std::uint64_t i = 0; i < kRecords; ++i) log.push(make_rec(i));
  EXPECT_EQ(log.dropped(), 0u);
  EXPECT_EQ(log.record_count(), kRecords);
  const auto recs = log.canonical_records();
  ASSERT_EQ(recs.size(), kRecords);
  for (std::uint64_t i = 0; i < kRecords; ++i) EXPECT_EQ(recs[i].id, i);
}

TEST(TraceLog, DropPolicyIsDeterministicAtFixedCapacity) {
  auto& reg = obs::MetricsRegistry::global();
  reg.set_enabled(true);
  for (int run = 0; run < 2; ++run) {
    obs::TraceLog::Options opts;
    opts.capacity = 64;
    opts.overflow = obs::TraceLog::Overflow::kDrop;
    obs::TraceLog log(opts);  // re-registers obs.trace.dropped, zeroing it
    for (std::uint64_t i = 0; i < 200; ++i) log.push(make_rec(i));
    // Same capacity, same input: the drop set is identical every run.
    EXPECT_EQ(log.dropped(), 200u - 64u);
    EXPECT_EQ(log.record_count(), 64u);
    EXPECT_EQ(reg.counter_value("obs", "", "trace.dropped"),
              std::optional<std::uint64_t>(200u - 64u));
    const auto recs = log.canonical_records();
    ASSERT_EQ(recs.size(), 64u);
    for (std::uint64_t i = 0; i < 64; ++i) EXPECT_EQ(recs[i].id, i);
  }
  reg.set_enabled(false);
}

TEST(TraceLog, DrainThreadCollectsConcurrentPushes) {
  // Host drain thread + simulated producer: real concurrency (the TSan
  // stage of check_sanitize.sh runs this). Capacity exceeds the record
  // count, so nothing may be dropped even if the drain thread lags.
  obs::TraceLog::Options opts;
  opts.capacity = 1u << 15;
  obs::TraceLog log(opts);
  log.start_drain_thread(std::chrono::microseconds(50));
  EXPECT_TRUE(log.drain_thread_running());
  constexpr std::uint64_t kRecords = 20000;
  std::thread producer([&log] {
    for (std::uint64_t i = 0; i < kRecords; ++i) log.push(make_rec(i));
  });
  producer.join();
  log.stop_drain_thread();
  EXPECT_FALSE(log.drain_thread_running());
  EXPECT_EQ(log.dropped(), 0u);
  EXPECT_EQ(log.record_count(), kRecords);
  const auto recs = log.canonical_records();
  ASSERT_EQ(recs.size(), kRecords);
  for (std::uint64_t i = 0; i < kRecords; ++i) EXPECT_EQ(recs[i].id, i);
}

// --- whole-world conversions ------------------------------------------------

void run_pingpong(nm::Cluster& world, int src, int dst, int iters,
                  nm::Tag tag_base) {
  world.spawn(src, [&world, src, dst, iters, tag_base] {
    auto& c = world.core(src);
    auto* g = world.gate(src, dst);
    std::vector<std::uint8_t> m(64), b(64);
    for (int i = 0; i < iters; ++i) {
      c.send(g, tag_base, m.data(), m.size());
      c.recv(g, tag_base + 1, b.data(), b.size());
    }
  });
  world.spawn(dst, [&world, src, dst, iters, tag_base] {
    auto& c = world.core(dst);
    auto* g = world.gate(dst, src);
    std::vector<std::uint8_t> b(64);
    for (int i = 0; i < iters; ++i) {
      c.recv(g, tag_base, b.data(), b.size());
      c.send(g, tag_base + 1, b.data(), b.size());
    }
  });
}

std::string traced_pingpong_json(bool legacy_trace) {
  nm::ClusterConfig cfg;
  cfg.legacy_trace = legacy_trace;
  nm::Cluster world(cfg);
  world.enable_timeline();
  world.enable_flow_trace();
  run_pingpong(world, 0, 1, 20, 1000);
  world.run();
  return world.timeline()->to_json();
}

TEST(TraceLog, RingJsonByteIdenticalToLegacyOnSinglePartition) {
  const std::string ring = traced_pingpong_json(false);
  const std::string legacy = traced_pingpong_json(true);
  ASSERT_FALSE(ring.empty());
  EXPECT_EQ(ring, legacy);
  // Sanity: both paths actually recorded the interesting material.
  EXPECT_NE(ring.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(ring.find("\"cat\":\"flow\""), std::string::npos);
  EXPECT_NE(ring.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(ring.find("\"ph\":\"f\""), std::string::npos);
}

TEST(TraceLog, BinaryRoundTripByteIdenticalToOnlineJson) {
  nm::ClusterConfig cfg;
  nm::Cluster world(cfg);
  world.enable_timeline();
  world.enable_flow_trace();
  run_pingpong(world, 0, 1, 20, 1000);
  world.run();
  const std::string online = world.timeline()->to_json();

  const std::string path =
      testing::TempDir() + "pm2sim_trace_roundtrip.trace.bin";
  world.write_trace_binary(path);
  const obs::TraceLog::Data data = obs::TraceLog::read_binary(path);
  std::remove(path.c_str());

  EXPECT_EQ(data.rings.size(), 1u);
  EXPECT_EQ(data.record_count(), world.trace_log()->record_count());
  // The offline converter (same code as tools/trace2json) reproduces the
  // online JSON byte for byte.
  EXPECT_EQ(obs::TraceLog::data_to_json(data), online);
}

TEST(TraceLog, TimelineJsonByteStableAcrossWorkerCounts) {
  // 4 nodes in 2 partitions (nodes 0/2 -> partition 0, nodes 1/3 ->
  // partition 1), two cross-partition pingpong pairs: with 2 workers, two
  // host threads trace concurrently into their own rings. The canonical
  // (emit, partition, seq) merge must render identical bytes either way.
  auto traced_json = [](int workers) {
    nm::ClusterConfig cfg;
    cfg.nodes = 4;
    cfg.partitions = 2;
    cfg.workers = workers;
    nm::Cluster world(cfg);
    world.enable_timeline();
    world.enable_flow_trace();
    run_pingpong(world, 0, 1, 20, 1000);
    run_pingpong(world, 2, 3, 20, 3000);
    world.run();
    return world.timeline()->to_json();
  };
  const std::string w1 = traced_json(1);
  const std::string w2 = traced_json(2);
  ASSERT_FALSE(w1.empty());
  EXPECT_EQ(w1, w2);
}

TEST(TraceLog, ReportIncludesTraceSummary) {
  obs::TraceLog log;
  for (std::uint64_t i = 0; i < 5; ++i) log.push(make_rec(i));
  const std::string report =
      obs::report_json(obs::MetricsRegistry::global(), nullptr, &log);
  EXPECT_NE(report.find("\"trace\":{\"records\":5,\"dropped\":0}"),
            std::string::npos);
}

}  // namespace
}  // namespace pm2
