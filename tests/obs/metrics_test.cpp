#include "obs/metrics.hpp"

#include <gtest/gtest.h>

namespace pm2::obs {
namespace {

/// The registry is process-global: every test restores enabled=false so the
/// other suites in this binary (and their Clusters) see the default state.
class MetricsTest : public ::testing::Test {
 protected:
  void TearDown() override { MetricsRegistry::global().set_enabled(false); }
};

TEST_F(MetricsTest, RegisterIncrementLookup) {
  auto& reg = MetricsRegistry::global();
  Counter c = reg.counter({"testm", "nodeA", -1, "hits"});
  ASSERT_TRUE(c.valid());
  reg.set_enabled(true);
  c.inc();
  c.inc(3);
  EXPECT_EQ(c.value(), 4u);
  auto v = reg.counter_value("testm", "nodeA", "hits");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 4u);
  // The implicit conversion legacy call sites rely on.
  EXPECT_EQ(c, 4u);
}

TEST_F(MetricsTest, DisabledIncIsNoOp) {
  auto& reg = MetricsRegistry::global();
  Counter c = reg.counter({"testm", "nodeA", -1, "gated"});
  reg.set_enabled(false);
  c.inc(100);
  EXPECT_EQ(c.value(), 0u);
  reg.set_enabled(true);
  c.inc();
  EXPECT_EQ(c.value(), 1u);
}

TEST_F(MetricsTest, AddAlwaysIgnoresEnabledSwitch) {
  auto& reg = MetricsRegistry::global();
  Counter c = reg.counter({"testm", "nodeA", -1, "always"});
  reg.set_enabled(false);
  c.add_always(7);
  EXPECT_EQ(c.value(), 7u);
}

TEST_F(MetricsTest, ReRegisterZeroesSlotWithoutGrowing) {
  auto& reg = MetricsRegistry::global();
  Counter c1 = reg.counter({"testm", "nodeA", 2, "reused"});
  reg.set_enabled(true);
  c1.inc(5);
  const std::size_t n = reg.num_counters();
  // A new world re-registers the same identity: same slot, count reset.
  Counter c2 = reg.counter({"testm", "nodeA", 2, "reused"});
  EXPECT_EQ(reg.num_counters(), n);
  EXPECT_EQ(c2.value(), 0u);
  EXPECT_EQ(c1.value(), 0u);  // same slot
  c2.inc();
  EXPECT_EQ(c1.value(), 1u);
}

TEST_F(MetricsTest, CoreScopedKeysAreDistinct) {
  auto& reg = MetricsRegistry::global();
  Counter c0 = reg.counter({"testm", "nodeA", 0, "per_core"});
  Counter c1 = reg.counter({"testm", "nodeA", 1, "per_core"});
  reg.set_enabled(true);
  c0.inc(2);
  c1.inc(9);
  EXPECT_EQ(reg.counter_value("testm", "nodeA", "per_core", 0), 2u);
  EXPECT_EQ(reg.counter_value("testm", "nodeA", "per_core", 1), 9u);
}

TEST_F(MetricsTest, LookupMissingReturnsNullopt) {
  auto& reg = MetricsRegistry::global();
  EXPECT_FALSE(reg.counter_value("testm", "nodeA", "no-such").has_value());
  EXPECT_FALSE(reg.gauge_value("testm", "nodeA", "no-such").has_value());
  EXPECT_FALSE(reg.histogram_count("testm", "nodeA", "no-such").has_value());
}

TEST_F(MetricsTest, DefaultHandlesAreInert) {
  Counter c;
  Gauge g;
  HistogramMetric h;
  EXPECT_FALSE(c.valid());
  MetricsRegistry::global().set_enabled(true);
  c.inc();
  c.add_always();
  g.set(5);
  h.observe(5);
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0);
  EXPECT_EQ(h.count(), 0u);
}

TEST_F(MetricsTest, GaugeTracksHighWaterMark) {
  auto& reg = MetricsRegistry::global();
  Gauge g = reg.gauge({"testm", "nodeA", -1, "depth"});
  reg.set_enabled(true);
  g.set(3);
  g.set(11);
  g.set(2);
  EXPECT_EQ(g.value(), 2);
  EXPECT_EQ(g.max(), 11);
  EXPECT_EQ(reg.gauge_value("testm", "nodeA", "depth"), 2);
}

TEST_F(MetricsTest, HistogramBucketsAndStats) {
  EXPECT_EQ(HistogramMetric::bucket_of(0), 0);
  EXPECT_EQ(HistogramMetric::bucket_of(1), 1);
  EXPECT_EQ(HistogramMetric::bucket_of(2), 2);
  EXPECT_EQ(HistogramMetric::bucket_of(3), 2);
  EXPECT_EQ(HistogramMetric::bucket_of(4), 3);
  EXPECT_EQ(HistogramMetric::bucket_of(1023), 10);
  EXPECT_EQ(HistogramMetric::bucket_of(1024), 11);
  EXPECT_EQ(HistogramMetric::bucket_of(~0ull), 63);

  auto& reg = MetricsRegistry::global();
  HistogramMetric h = reg.histogram({"testm", "nodeA", -1, "lat_ns"});
  reg.set_enabled(true);
  h.observe(10);
  h.observe(70);
  h.observe(70);
  h.observe(0);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 150u);
  EXPECT_DOUBLE_EQ(h.mean(), 37.5);
  EXPECT_EQ(reg.histogram_count("testm", "nodeA", "lat_ns"), 4u);
}

TEST_F(MetricsTest, ResetValuesKeepsRegistrations) {
  auto& reg = MetricsRegistry::global();
  Counter c = reg.counter({"testm", "nodeA", -1, "resettable"});
  Gauge g = reg.gauge({"testm", "nodeA", -1, "resettable_g"});
  HistogramMetric h = reg.histogram({"testm", "nodeA", -1, "resettable_h"});
  reg.set_enabled(true);
  c.inc(4);
  g.set(9);
  h.observe(16);
  const std::size_t n = reg.num_counters();
  reg.reset_values();
  EXPECT_EQ(reg.num_counters(), n);
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0);
  EXPECT_EQ(g.max(), 0);
  EXPECT_EQ(h.count(), 0u);
}

TEST_F(MetricsTest, JsonAndTableCarryTheInstruments) {
  auto& reg = MetricsRegistry::global();
  Counter c = reg.counter({"testm", "nodeB", 3, "json_hits"});
  HistogramMetric h = reg.histogram({"testm", "nodeB", -1, "json_ns"});
  reg.set_enabled(true);
  c.inc(42);
  h.observe(5);
  const std::string json = reg.to_json();
  EXPECT_NE(json.find("\"component\":\"testm\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"json_hits\""), std::string::npos);
  EXPECT_NE(json.find("\"core\":3"), std::string::npos);
  EXPECT_NE(json.find("\"value\":42"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"json_ns\""), std::string::npos);
  EXPECT_NE(json.find("\"count\":1"), std::string::npos);
  const std::string table = reg.to_table();
  EXPECT_NE(table.find("json_hits"), std::string::npos);
  EXPECT_NE(table.find("42"), std::string::npos);
}

}  // namespace
}  // namespace pm2::obs
