// Message-lifecycle flow tracing over a real two-node pingpong: the stage
// breakdown must telescope to the end-to-end latency, the ChromeTrace flow
// events must pair send/recv 1:1, and none of it may perturb virtual time.
#include "obs/flow.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "nmad/cluster.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "simcore/chrome_trace.hpp"

namespace pm2::obs {
namespace {

class FlowTraceTest : public ::testing::Test {
 protected:
  void TearDown() override { MetricsRegistry::global().set_enabled(false); }
};

TEST_F(FlowTraceTest, FlowIdPacksBothEndpoints) {
  const std::uint64_t id = FlowTracer::flow_id(3, 7, 0x1234u);
  EXPECT_EQ(id >> 48, 3u);
  EXPECT_EQ((id >> 32) & 0xffffu, 7u);
  EXPECT_EQ(id & 0xffffffffu, 0x1234u);
  EXPECT_NE(FlowTracer::flow_id(0, 1, 5), FlowTracer::flow_id(1, 0, 5));
}

TEST_F(FlowTraceTest, StampLastWinsAndCompletes) {
  FlowTracer tracer;
  const std::uint64_t id = FlowTracer::flow_id(0, 1, 1);
  tracer.stamp(id, FlowStage::kPost, 100, 0, 0);
  tracer.stamp(id, FlowStage::kArrange, 150, 0, 0);
  tracer.stamp(id, FlowStage::kNicPost, 200, 0, 0);
  // Multi-chunk message: the stage is re-stamped; the last timestamp wins.
  tracer.stamp(id, FlowStage::kWireDone, 300, 0, 0);
  tracer.stamp(id, FlowStage::kWireDone, 400, 0, 0);
  const FlowTracer::Flow* f = tracer.find(id);
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->ts[static_cast<int>(FlowStage::kWireDone)], 400);
  EXPECT_FALSE(f->complete());
  EXPECT_EQ(tracer.completed_count(), 0u);
  tracer.stamp(id, FlowStage::kDeliver, 500, 1, 0);
  tracer.stamp(id, FlowStage::kComplete, 550, 1, 0);
  EXPECT_TRUE(f->complete());
  EXPECT_EQ(tracer.completed_count(), 1u);
  EXPECT_EQ(tracer.flow_count(), 1u);
}

/// Run @p iters 64 B pingpong rounds; returns the final virtual time.
sim::Time run_pingpong(nm::Cluster& world, int iters) {
  world.spawn(0, [&world, iters] {
    auto& c = world.core(0);
    auto* g = world.gate(0, 1);
    std::vector<std::uint8_t> m(64), b(64);
    for (int i = 0; i < iters; ++i) {
      c.send(g, 1, m.data(), m.size());
      c.recv(g, 2, b.data(), b.size());
    }
  });
  world.spawn(1, [&world, iters] {
    auto& c = world.core(1);
    auto* g = world.gate(1, 0);
    std::vector<std::uint8_t> b(64);
    for (int i = 0; i < iters; ++i) {
      c.recv(g, 1, b.data(), b.size());
      c.send(g, 2, b.data(), b.size());
    }
  });
  world.run();
  return world.engine().now();
}

TEST_F(FlowTraceTest, PingpongBreakdownTelescopesToEndToEnd) {
  MetricsRegistry::global().set_enabled(true);
  nm::ClusterConfig cfg;
  nm::Cluster world(cfg);
  FlowTracer& tracer = world.enable_flow_trace();
  const int kIters = 25;
  run_pingpong(world, kIters);

  // One flow per message: ping + pong per round.
  EXPECT_EQ(tracer.flow_count(), static_cast<std::size_t>(2 * kIters));
  EXPECT_EQ(tracer.completed_count(), tracer.flow_count());

  // Every flow saw all six stages in non-decreasing time order, half
  // starting on node 0 and half on node 1.
  int from0 = 0;
  for (std::uint64_t id : tracer.ids()) {
    const FlowTracer::Flow* f = tracer.find(id);
    ASSERT_NE(f, nullptr);
    ASSERT_TRUE(f->complete());
    for (int s = 1; s < kFlowStageCount; ++s) {
      EXPECT_GE(f->ts[s], f->ts[s - 1]) << "flow " << id << " stage " << s;
    }
    if (id >> 48 == 0) ++from0;
  }
  EXPECT_EQ(from0, kIters);

  // The five segments telescope: per flow (hence also on average) their sum
  // is exactly the post -> complete latency, up to fp rounding.
  const auto segments = tracer.breakdown();
  ASSERT_EQ(segments.size(), 5u);
  const sim::SampleSet e2e = tracer.end_to_end_us();
  EXPECT_EQ(e2e.count(), tracer.completed_count());
  double segment_mean_sum = 0.0;
  for (const auto& seg : segments) {
    EXPECT_EQ(seg.us.count(), tracer.completed_count()) << seg.name;
    segment_mean_sum += seg.us.mean();
  }
  EXPECT_NEAR(segment_mean_sum, e2e.mean(), 1e-6);
  EXPECT_GT(e2e.mean(), 0.0);

  const std::string json = tracer.to_json();
  for (const char* name : {"pack", "submit", "wire", "unpack", "notify"}) {
    EXPECT_NE(json.find(name), std::string::npos) << name;
  }
}

/// Collect the ids of flow events with phase @p ph (one JSON line each).
std::vector<std::uint64_t> flow_ids_of_phase(const std::string& json,
                                             char ph) {
  std::vector<std::uint64_t> ids;
  const std::string needle = std::string("\"ph\":\"") + ph + "\"";
  std::istringstream lines(json);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.find(needle) == std::string::npos) continue;
    const std::size_t at = line.find("\"id\":");
    EXPECT_NE(at, std::string::npos) << line;
    if (at != std::string::npos) ids.push_back(std::stoull(line.substr(at + 5)));
  }
  return ids;
}

TEST_F(FlowTraceTest, ChromeFlowEventsPairSendAndRecv) {
  nm::ClusterConfig cfg;
  nm::Cluster world(cfg);
  world.enable_timeline();
  FlowTracer& tracer = world.enable_flow_trace();
  const int kIters = 10;
  run_pingpong(world, kIters);

  const std::string json = world.timeline()->to_json();
  std::vector<std::uint64_t> begins = flow_ids_of_phase(json, 's');
  std::vector<std::uint64_t> steps = flow_ids_of_phase(json, 't');
  std::vector<std::uint64_t> ends = flow_ids_of_phase(json, 'f');

  // One begin ('s', at NIC post), one step ('t', at delivery) and one end
  // ('f', at completion) per flow -- ids pair 1:1 across the three phases.
  EXPECT_EQ(begins.size(), tracer.flow_count());
  std::sort(begins.begin(), begins.end());
  std::sort(steps.begin(), steps.end());
  std::sort(ends.begin(), ends.end());
  EXPECT_TRUE(std::adjacent_find(begins.begin(), begins.end()) ==
              begins.end());  // ids are unique
  EXPECT_EQ(begins, steps);
  EXPECT_EQ(begins, ends);
  // The terminating event binds to the enclosing slice (Perfetto draws the
  // arrowhead there).
  EXPECT_NE(json.find("\"bp\":\"e\""), std::string::npos);
}

TEST_F(FlowTraceTest, ReportCarriesCrossLayerMetricsAndFlows) {
  auto& reg = MetricsRegistry::global();
  reg.set_enabled(true);
  nm::ClusterConfig cfg;
  cfg.nm.lock = nm::LockMode::kCoarse;
  nm::Cluster world(cfg);
  reg.reset_values();
  FlowTracer& tracer = world.enable_flow_trace();
  run_pingpong(world, 10);

  const std::string json = report_json(reg, &tracer);
  for (const char* want :
       {"pm2sim-report-v1", "acquisitions", "contentions", "hold_ns",
        "context_switches", "poll_passes", "tasklet_runs", "tx_bytes",
        "rx_packets", "sends", "recvs", "unpack"}) {
    EXPECT_NE(json.find(want), std::string::npos) << want;
  }

  // The registry saw real traffic on both nodes.
  EXPECT_GT(reg.counter_value("nmad", "node0", "sends").value_or(0), 0u);
  EXPECT_GT(reg.counter_value("nmad", "node1", "recvs").value_or(0), 0u);
  EXPECT_GT(
      reg.counter_value("nic", "node0", "fabric-0.tx_bytes").value_or(0), 0u);
  EXPECT_GT(
      reg.counter_value("sync", "node0", "nm-global.acquisitions").value_or(0),
      0u);
  EXPECT_GT(reg.counter_value("sched", "node0", "context_switches", 0)
                .value_or(0),
            0u);
}

TEST_F(FlowTraceTest, InstrumentationDoesNotPerturbVirtualTime) {
  const int kIters = 15;
  sim::Time plain;
  {
    nm::ClusterConfig cfg;
    nm::Cluster world(cfg);
    plain = run_pingpong(world, kIters);
  }
  sim::Time instrumented;
  {
    MetricsRegistry::global().set_enabled(true);
    nm::ClusterConfig cfg;
    nm::Cluster world(cfg);
    world.enable_timeline();
    world.enable_flow_trace();
    instrumented = run_pingpong(world, kIters);
    MetricsRegistry::global().set_enabled(false);
  }
  EXPECT_EQ(plain, instrumented);
}

}  // namespace
}  // namespace pm2::obs
