#include "simmachine/topology.hpp"

#include <gtest/gtest.h>

namespace pm2::mach {
namespace {

TEST(Topology, QuadCoreLayout) {
  auto t = CacheTopology::quad_core();
  EXPECT_EQ(t.num_cores(), 4);
  EXPECT_EQ(t.num_chips(), 1);
  // X5460: L2 pairs {0,1} and {2,3}.
  EXPECT_EQ(t.domain(0, 0), CacheDomain::kSameCore);
  EXPECT_EQ(t.domain(0, 1), CacheDomain::kSharedL2);
  EXPECT_EQ(t.domain(0, 2), CacheDomain::kSameChip);
  EXPECT_EQ(t.domain(0, 3), CacheDomain::kSameChip);
  EXPECT_EQ(t.domain(2, 3), CacheDomain::kSharedL2);
}

TEST(Topology, DomainIsSymmetric) {
  auto t = CacheTopology::dual_quad_core();
  for (int a = 0; a < t.num_cores(); ++a) {
    for (int b = 0; b < t.num_cores(); ++b) {
      EXPECT_EQ(t.domain(a, b), t.domain(b, a)) << a << "," << b;
    }
  }
}

TEST(Topology, DualQuadCrossChip) {
  auto t = CacheTopology::dual_quad_core();
  EXPECT_EQ(t.num_cores(), 8);
  EXPECT_EQ(t.num_chips(), 2);
  EXPECT_EQ(t.domain(0, 1), CacheDomain::kSharedL2);
  EXPECT_EQ(t.domain(0, 2), CacheDomain::kSameChip);
  for (int b = 4; b < 8; ++b) {
    EXPECT_EQ(t.domain(0, b), CacheDomain::kOtherChip) << b;
  }
  EXPECT_EQ(t.domain(4, 5), CacheDomain::kSharedL2);
}

TEST(Topology, UniformGrouping) {
  auto t = CacheTopology::uniform(6, 2);
  EXPECT_EQ(t.num_cores(), 6);
  EXPECT_EQ(t.domain(0, 1), CacheDomain::kSharedL2);
  EXPECT_EQ(t.domain(1, 2), CacheDomain::kSameChip);
  EXPECT_EQ(t.l2_of(5), 2);
}

TEST(Topology, UniformBadArgsThrow) {
  EXPECT_THROW(CacheTopology::uniform(0, 1), std::invalid_argument);
  EXPECT_THROW(CacheTopology::uniform(4, 0), std::invalid_argument);
}

TEST(Topology, DomainNames) {
  EXPECT_STREQ(to_string(CacheDomain::kSameCore), "same-core");
  EXPECT_STREQ(to_string(CacheDomain::kOtherChip), "other-chip");
}

}  // namespace
}  // namespace pm2::mach
