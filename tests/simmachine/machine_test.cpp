#include "simmachine/machine.hpp"

#include <gtest/gtest.h>

namespace pm2::mach {
namespace {

class MachineTest : public ::testing::Test {
 protected:
  sim::Engine engine_;
  Machine machine_{engine_, "node0", CacheTopology::quad_core(),
                   CostBook::xeon_quad()};
};

TEST_F(MachineTest, FirstTouchIsFree) {
  CacheLine line;
  EXPECT_EQ(machine_.touch_line(line, 2), 0);
  EXPECT_EQ(line.owner_core, 2);
}

TEST_F(MachineTest, SameCoreReaccessIsFree) {
  CacheLine line;
  machine_.touch_line(line, 1);
  EXPECT_EQ(machine_.touch_line(line, 1), 0);
}

TEST_F(MachineTest, SharedL2TransferCost) {
  CacheLine line;
  machine_.touch_line(line, 0);
  EXPECT_EQ(machine_.touch_line(line, 1), machine_.costs().line_shared_l2);
  EXPECT_EQ(line.owner_core, 1);
}

TEST_F(MachineTest, CrossL2TransferCost) {
  CacheLine line;
  machine_.touch_line(line, 0);
  EXPECT_EQ(machine_.touch_line(line, 2), machine_.costs().line_same_chip);
}

TEST_F(MachineTest, PeekDoesNotRetag) {
  CacheLine line;
  machine_.touch_line(line, 0);
  EXPECT_EQ(machine_.peek_line(line, 3), machine_.costs().line_same_chip);
  EXPECT_EQ(line.owner_core, 0);
}

TEST_F(MachineTest, TransferStatsAccumulate) {
  CacheLine line;
  machine_.touch_line(line, 0);
  machine_.touch_line(line, 1);
  machine_.touch_line(line, 2);
  EXPECT_EQ(machine_.line_transfers(), 2u);
  EXPECT_EQ(machine_.line_transfer_time(),
            machine_.costs().line_shared_l2 + machine_.costs().line_same_chip);
}

TEST(MachineDualQuad, CrossChipCost) {
  sim::Engine engine;
  Machine m(engine, "big", CacheTopology::dual_quad_core(),
            CostBook::xeon_dual_quad());
  CacheLine line;
  m.touch_line(line, 0);
  EXPECT_EQ(m.touch_line(line, 7), m.costs().line_other_chip);
  m.touch_line(line, 0);
  EXPECT_EQ(m.touch_line(line, 2), m.costs().line_same_chip);
  EXPECT_EQ(m.costs().line_same_chip, 425);
  EXPECT_EQ(m.costs().line_other_chip, 575);
}

TEST(CostBookCalibration, MatchesPaperPrimitives) {
  const CostBook c = CostBook::xeon_quad();
  // Sec. 3.1: one spinlock acquire/release cycle = 70 ns.
  EXPECT_EQ(c.spin_acquire + c.spin_release, 70);
  // Sec. 3.3: one block+wake round = ~750 ns (switch out + switch in).
  EXPECT_EQ(2 * c.context_switch, 750);
  // Fig. 8 quad-core: ~5.5 handoffs on the remote-poll critical path land
  // the end-to-end overhead at ~400 ns (shared L2) / ~1.2 us (same chip).
  EXPECT_NEAR(5.5 * static_cast<double>(c.line_shared_l2), 400.0, 30.0);
  EXPECT_NEAR(5.5 * static_cast<double>(c.line_same_chip), 1200.0, 30.0);
}

}  // namespace
}  // namespace pm2::mach
