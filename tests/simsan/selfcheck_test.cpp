// simsan selfcheck -- seeded racy / deadlocky / rule-breaking scenarios.
//
// Each test plants a known concurrency defect in a tiny simulated world and
// asserts that the analyzer reports it (and, symmetrically, that the fixed
// version analyzes clean). Because the simulator is deterministic, the
// reports are byte-stable: the last test re-runs a scenario and compares
// the full JSON reports.
#include <gtest/gtest.h>

#include <string>

#include "bench/common/harness.hpp"
#include "simsan/context.hpp"
#include "sync/barrier.hpp"
#include "sync/completion_flag.hpp"
#include "sync/mutex.hpp"
#include "sync/semaphore.hpp"
#include "sync/spinlock.hpp"

namespace pm2 {
namespace {

class SimsanSelfcheck : public ::testing::Test {
 protected:
  void SetUp() override {
    auto& an = san::Analyzer::global();
    an.reset();
    an.set_enabled(true);
  }
  void TearDown() override { san::Analyzer::global().set_enabled(false); }

  san::Analyzer& an() { return san::Analyzer::global(); }

  sim::Engine engine_;
  mach::Machine machine_{engine_, "node0", mach::CacheTopology::quad_core(),
                         mach::CostBook::xeon_quad()};
  mth::Scheduler sched_{machine_};

  mth::Thread* spawn_named(std::function<void()> fn, const std::string& name,
                           int core = -1) {
    mth::ThreadAttrs a;
    a.name = name;
    a.bind_core = core;
    return sched_.spawn(std::move(fn), a);
  }
};

// --- race detection ---------------------------------------------------------

TEST_F(SimsanSelfcheck, UnlockedSharedWriteRaces) {
  san::Shared list("test.list");
  auto writer = [&] {
    sched_.charge_current(100);
    SIMSAN_ACCESS(list);
  };
  spawn_named(writer, "w0", 0);
  spawn_named(writer, "w1", 1);
  engine_.run();
  EXPECT_GE(an().races(), 1u);
  EXPECT_EQ(an().lock_order_cycles(), 0u);
  EXPECT_EQ(an().context_violations(), 0u);
  ASSERT_FALSE(an().findings().empty());
  EXPECT_EQ(an().findings()[0].rule, "write-write-race");
  EXPECT_NE(an().findings()[0].message.find("test.list"), std::string::npos);
}

TEST_F(SimsanSelfcheck, LockedSharedWriteIsClean) {
  san::Shared list("test.list");
  sync::SpinLock lock(sched_, "test.lock");
  auto writer = [&] {
    sched_.charge_current(100);
    sync::SpinGuard g(lock);
    SIMSAN_ACCESS(list);
  };
  spawn_named(writer, "w0", 0);
  spawn_named(writer, "w1", 1);
  engine_.run();
  EXPECT_EQ(an().total_findings(), 0u);
}

TEST_F(SimsanSelfcheck, ReadersDoNotRaceWriterOrderedByFlag) {
  // write -> flag.set() -> wait() -> read: ordered by happens-before even
  // though no lock is ever held.
  san::Shared buf("test.buf");
  sync::CompletionFlag done(sched_, "test.done");
  spawn_named([&] {
    SIMSAN_ACCESS(buf);
    done.set();
  }, "producer", 0);
  spawn_named([&] {
    done.wait_passive();
    SIMSAN_ACCESS_RO(buf);
  }, "consumer", 1);
  engine_.run();
  EXPECT_EQ(an().total_findings(), 0u);
}

TEST_F(SimsanSelfcheck, UnorderedReadWriteRaces) {
  san::Shared buf("test.buf");
  spawn_named([&] { SIMSAN_ACCESS(buf); }, "writer", 0);
  spawn_named([&] {
    sched_.charge_current(500);
    SIMSAN_ACCESS_RO(buf);
  }, "reader", 1);
  engine_.run();
  EXPECT_GE(an().races(), 1u);
}

// --- lock-order cycles ------------------------------------------------------

TEST_F(SimsanSelfcheck, AbBaLockOrderCycleFlagged) {
  // The two acquisition chains never overlap in time (t2 starts 10 us
  // later), so no runtime deadlock occurs -- the *potential* is flagged.
  sync::Mutex a(sched_, "lockA");
  sync::Mutex b(sched_, "lockB");
  spawn_named([&] {
    a.lock();
    b.lock();
    b.unlock();
    a.unlock();
  }, "t0", 0);
  spawn_named([&] {
    sched_.work(sim::microseconds(10));
    b.lock();
    a.lock();
    a.unlock();
    b.unlock();
  }, "t1", 1);
  engine_.run();
  EXPECT_EQ(an().lock_order_cycles(), 1u);
  EXPECT_EQ(an().races(), 0u);
  bool found = false;
  for (const auto& f : an().findings()) {
    if (f.rule == "lock-order-cycle") {
      found = true;
      EXPECT_NE(f.message.find("lockA"), std::string::npos);
      EXPECT_NE(f.message.find("lockB"), std::string::npos);
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(SimsanSelfcheck, ConsistentLockOrderIsClean) {
  sync::Mutex a(sched_, "lockA");
  sync::Mutex b(sched_, "lockB");
  auto body = [&] {
    a.lock();
    b.lock();
    sched_.charge_current(200);
    b.unlock();
    a.unlock();
  };
  spawn_named(body, "t0", 0);
  spawn_named(body, "t1", 1);
  engine_.run();
  EXPECT_EQ(an().total_findings(), 0u);
}

// --- context rules ----------------------------------------------------------

TEST_F(SimsanSelfcheck, BlockingLockInHookContextReported) {
  sync::Mutex m(sched_, "hook.mutex");
  bool tried = false;
  sched_.add_idle_hook(mth::Hook{
      .run = [&](mth::HookContext& ctx) {
        ctx.charge(50);
        if (!tried) {
          tried = true;
          m.lock();  // contract violation: hooks must not block
        }
      },
      .want = [&](int) { return !tried; },
  });
  // Keep core 0 busy so an idle core runs the hook.
  spawn_named([&] { sched_.work(sim::microseconds(5)); }, "busy", 0);
  engine_.run();
  EXPECT_TRUE(tried);
  EXPECT_GE(an().context_violations(), 1u);
  bool found = false;
  for (const auto& f : an().findings()) {
    found = found || f.rule == "blocking-lock-in-hook";
  }
  EXPECT_TRUE(found);
  // The acquisition was abandoned: nobody owns the mutex afterwards.
  EXPECT_FALSE(m.held());
}

TEST_F(SimsanSelfcheck, BlockingWhileHoldingSpinlockReported) {
  sync::SpinLock spin(sched_, "held.spin");
  sync::Semaphore sem(sched_, /*initial=*/1, "tokens");
  spawn_named([&] {
    spin.lock();
    sem.acquire();  // may-block primitive entered with a spinlock held
    spin.unlock();
  }, "t0", 0);
  engine_.run();
  EXPECT_GE(an().context_violations(), 1u);
  bool found = false;
  for (const auto& f : an().findings()) {
    if (f.rule == "block-while-spinlock-held") {
      found = true;
      EXPECT_NE(f.message.find("held.spin"), std::string::npos);
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(SimsanSelfcheck, CondVarWaitWithoutMutexReported) {
  sync::Mutex m(sched_, "cv.mutex");
  sync::CondVar cv(sched_, "cv");
  spawn_named([&] {
    cv.wait(m);  // never locked m: reported, then treated as spurious wake
  }, "t0", 0);
  engine_.run();
  EXPECT_GE(an().context_violations(), 1u);
  bool found = false;
  for (const auto& f : an().findings()) {
    found = found || f.rule == "condvar-wait-without-mutex";
  }
  EXPECT_TRUE(found);
}

TEST_F(SimsanSelfcheck, RecursiveMutexLockReported) {
  sync::Mutex m(sched_, "rec.mutex");
  spawn_named([&] {
    m.lock();
    m.lock();  // non-recursive by contract; reported, treated as no-op
    m.unlock();
  }, "t0", 0);
  engine_.run();
  EXPECT_GE(an().context_violations(), 1u);
  bool found = false;
  for (const auto& f : an().findings()) {
    found = found || f.rule == "recursive-mutex-lock";
  }
  EXPECT_TRUE(found);
}

// --- determinism ------------------------------------------------------------

TEST_F(SimsanSelfcheck, ReportsAreByteIdenticalAcrossRuns) {
  auto run_once = [] {
    auto& an = san::Analyzer::global();
    an.reset();
    an.set_enabled(true);
    sim::Engine engine;
    mach::Machine machine(engine, "node0", mach::CacheTopology::quad_core(),
                          mach::CostBook::xeon_quad());
    mth::Scheduler sched(machine);
    san::Shared list("det.list");
    sync::Mutex a(sched, "detA");
    sync::Mutex b(sched, "detB");
    mth::ThreadAttrs a0, a1;
    a0.name = "d0";
    a0.bind_core = 0;
    a1.name = "d1";
    a1.bind_core = 1;
    sched.spawn([&] {
      a.lock();
      b.lock();
      SIMSAN_ACCESS(list);
      b.unlock();
      a.unlock();
      SIMSAN_ACCESS(list);  // outside the locks: races with the other thread
    }, a0);
    sched.spawn([&] {
      sched.work(sim::microseconds(10));
      b.lock();
      a.lock();
      SIMSAN_ACCESS(list);
      a.unlock();
      b.unlock();
    }, a1);
    engine.run();
    return an.report_json();
  };
  const std::string first = run_once();
  const std::string second = run_once();
  EXPECT_FALSE(first.empty());
  EXPECT_NE(first.find("\"findings\""), std::string::npos);
  EXPECT_EQ(first, second);
  EXPECT_GE(san::Analyzer::global().races(), 1u);
  EXPECT_GE(san::Analyzer::global().lock_order_cycles(), 1u);
}

// --- the paper workload (Fig. 3 configurations) -----------------------------

class SimsanFig3Workload : public ::testing::Test {};

TEST_F(SimsanFig3Workload, NoLockingRacesLockedModesClean) {
  bench::BenchArgs args;
  args.simsan = true;
  auto findings_for = [&](nm::LockMode lock) {
    nm::ClusterConfig cfg;
    cfg.nm.lock = lock;
    cfg.nm.wait = nm::WaitMode::kBusy;
    cfg.nm.progress = nm::ProgressMode::kAppDriven;
    return bench::run_simsan_report(args, "selfcheck", cfg);
  };
  EXPECT_GE(findings_for(nm::LockMode::kNone), 1u);
  EXPECT_EQ(findings_for(nm::LockMode::kCoarse), 0u);
  EXPECT_EQ(findings_for(nm::LockMode::kFine), 0u);
}

TEST_F(SimsanFig3Workload, AnalysisRunsAreDeterministic) {
  bench::BenchArgs args;
  args.simsan = true;
  nm::ClusterConfig cfg;
  cfg.nm.lock = nm::LockMode::kNone;
  cfg.nm.wait = nm::WaitMode::kBusy;
  cfg.nm.progress = nm::ProgressMode::kAppDriven;
  auto report_once = [&] {
    bench::run_simsan_report(args, "det", cfg);
    return san::Analyzer::global().report_json();
  };
  const std::string first = report_once();
  const std::string second = report_once();
  EXPECT_EQ(first, second);
}

}  // namespace
}  // namespace pm2
