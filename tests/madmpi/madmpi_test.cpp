#include "madmpi/madmpi.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <vector>

namespace pm2::madmpi {
namespace {

nm::ClusterConfig cluster_config(int nodes) {
  nm::ClusterConfig cfg;
  cfg.nodes = nodes;
  cfg.nm.lock = nm::LockMode::kFine;
  return cfg;
}

TEST(MadMpi, RankAndSize) {
  nm::Cluster world(cluster_config(3));
  std::vector<int> ranks;
  launch(world, [&](Comm comm) {
    EXPECT_EQ(comm.size(), 3);
    ranks.push_back(comm.rank());
  });
  world.run();
  std::sort(ranks.begin(), ranks.end());
  EXPECT_EQ(ranks, (std::vector<int>{0, 1, 2}));
}

TEST(MadMpi, BlockingSendRecv) {
  nm::Cluster world(cluster_config(2));
  launch(world, [&](Comm comm) {
    if (comm.rank() == 0) {
      const int value = 12345;
      comm.send(1, 7, &value, sizeof(value));
    } else {
      int got = 0;
      const std::size_t n = comm.recv(0, 7, &got, sizeof(got));
      EXPECT_EQ(n, sizeof(got));
      EXPECT_EQ(got, 12345);
    }
  });
  world.run();
}

TEST(MadMpi, NonblockingWaitAll) {
  nm::Cluster world(cluster_config(2));
  launch(world, [&](Comm comm) {
    std::vector<int> data(8);
    std::vector<int> got(8);
    if (comm.rank() == 0) {
      std::iota(data.begin(), data.end(), 100);
      std::vector<nm::Request*> reqs;
      for (int k = 0; k < 8; ++k) {
        reqs.push_back(comm.isend(1, static_cast<Tag>(k), &data[static_cast<size_t>(k)],
                                  sizeof(int)));
      }
      comm.wait_all(reqs);
    } else {
      std::vector<nm::Request*> reqs;
      for (int k = 0; k < 8; ++k) {
        reqs.push_back(comm.irecv(0, static_cast<Tag>(k), &got[static_cast<size_t>(k)],
                                  sizeof(int)));
      }
      comm.wait_all(reqs);
      for (int k = 0; k < 8; ++k) EXPECT_EQ(got[static_cast<size_t>(k)], 100 + k);
    }
  });
  world.run();
}

TEST(MadMpi, SendrecvExchangesWithoutDeadlock) {
  nm::Cluster world(cluster_config(2));
  launch(world, [&](Comm comm) {
    // Both ranks exchange 64 KiB (rendezvous territory) simultaneously.
    std::vector<std::uint8_t> out(65536, static_cast<std::uint8_t>(comm.rank() + 1));
    std::vector<std::uint8_t> in(65536);
    const int peer = 1 - comm.rank();
    const std::size_t n = comm.sendrecv(peer, 5, out.data(), out.size(), peer,
                                        5, in.data(), in.size());
    EXPECT_EQ(n, in.size());
    EXPECT_EQ(in[0], static_cast<std::uint8_t>(peer + 1));
    EXPECT_EQ(in[65535], static_cast<std::uint8_t>(peer + 1));
  });
  world.run();
}

class MadMpiSizes : public ::testing::TestWithParam<int> {};

TEST_P(MadMpiSizes, BarrierSynchronizes) {
  const int nodes = GetParam();
  nm::Cluster world(cluster_config(nodes));
  int phase_counter = 0;
  bool order_ok = true;
  launch(world, [&](Comm comm) {
    auto& sched = world.sched(comm.rank());
    // Stagger arrivals; after the barrier everyone must observe that all
    // ranks incremented the counter.
    sched.work(sim::microseconds(comm.rank() * 10 + 1));
    ++phase_counter;
    comm.barrier();
    if (phase_counter != nodes) order_ok = false;
  });
  world.run();
  EXPECT_TRUE(order_ok);
  EXPECT_EQ(phase_counter, nodes);
}

TEST_P(MadMpiSizes, BcastFromEveryRoot) {
  const int nodes = GetParam();
  for (int root = 0; root < nodes; ++root) {
    nm::Cluster world(cluster_config(nodes));
    int wrong = 0;
    launch(world, [&, root](Comm comm) {
      std::vector<std::uint32_t> buf(16, 0);
      if (comm.rank() == root) {
        for (std::uint32_t i = 0; i < 16; ++i) buf[i] = 0xABC0 + i;
      }
      comm.bcast(root, buf.data(), buf.size() * sizeof(std::uint32_t));
      for (std::uint32_t i = 0; i < 16; ++i) {
        if (buf[i] != 0xABC0 + i) ++wrong;
      }
    });
    world.run();
    EXPECT_EQ(wrong, 0) << "root " << root;
  }
}

TEST_P(MadMpiSizes, ReduceSumsToRoot) {
  const int nodes = GetParam();
  nm::Cluster world(cluster_config(nodes));
  double result[4] = {0, 0, 0, 0};
  launch(world, [&](Comm comm) {
    double vals[4];
    for (int i = 0; i < 4; ++i) {
      vals[i] = comm.rank() * 10.0 + i;
    }
    comm.reduce_sum(0, vals, 4);
    if (comm.rank() == 0) {
      for (int i = 0; i < 4; ++i) result[i] = vals[i];
    }
  });
  world.run();
  const double ranksum = nodes * (nodes - 1) / 2.0;
  for (int i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(result[i], ranksum * 10.0 + i * nodes) << i;
  }
}

TEST_P(MadMpiSizes, AllreduceGivesEveryoneTheSum) {
  const int nodes = GetParam();
  nm::Cluster world(cluster_config(nodes));
  int wrong = 0;
  launch(world, [&](Comm comm) {
    double v = comm.rank() + 1.0;
    comm.allreduce_sum(&v, 1);
    const double expect = nodes * (nodes + 1) / 2.0;
    if (v != expect) ++wrong;
  });
  world.run();
  EXPECT_EQ(wrong, 0);
}

TEST_P(MadMpiSizes, GatherCollectsInRankOrder) {
  const int nodes = GetParam();
  nm::Cluster world(cluster_config(nodes));
  std::vector<std::uint32_t> gathered(static_cast<std::size_t>(nodes), 0);
  launch(world, [&](Comm comm) {
    const std::uint32_t mine = 0x1000u + static_cast<std::uint32_t>(comm.rank());
    comm.gather(0, &mine, sizeof(mine),
                comm.rank() == 0 ? gathered.data() : nullptr);
  });
  world.run();
  for (int r = 0; r < nodes; ++r) {
    EXPECT_EQ(gathered[static_cast<std::size_t>(r)], 0x1000u + static_cast<std::uint32_t>(r));
  }
}

TEST_P(MadMpiSizes, ScatterDistributesInRankOrder) {
  const int nodes = GetParam();
  nm::Cluster world(cluster_config(nodes));
  int wrong = 0;
  launch(world, [&](Comm comm) {
    std::vector<std::uint32_t> chunks;
    if (comm.rank() == 0) {
      for (int r = 0; r < nodes; ++r) chunks.push_back(0x2000u + static_cast<std::uint32_t>(r));
    }
    std::uint32_t mine = 0;
    comm.scatter(0, comm.rank() == 0 ? chunks.data() : nullptr, sizeof(mine),
                 &mine);
    if (mine != 0x2000u + static_cast<std::uint32_t>(comm.rank())) ++wrong;
  });
  world.run();
  EXPECT_EQ(wrong, 0);
}

TEST_P(MadMpiSizes, RingAllreduceMatchesBinomial) {
  const int nodes = GetParam();
  if (nodes < 3) GTEST_SKIP() << "ring needs > 2 ranks to differ";
  nm::Cluster world(cluster_config(nodes));
  int wrong = 0;
  launch(world, [&](Comm comm) {
    // Vector long enough to exercise uneven block splits.
    const std::size_t n = 257;
    std::vector<double> ring(n), tree(n);
    for (std::size_t i = 0; i < n; ++i) {
      ring[i] = tree[i] = comm.rank() * 1000.0 + static_cast<double>(i);
    }
    comm.allreduce_sum_ring(ring.data(), n);
    comm.allreduce_sum_binomial(tree.data(), n);
    for (std::size_t i = 0; i < n; ++i) {
      if (ring[i] != tree[i]) ++wrong;
    }
  });
  world.run();
  EXPECT_EQ(wrong, 0);
}

TEST(MadMpi, LargeAllreduceUsesRingAndIsCorrect) {
  nm::Cluster world(cluster_config(4));
  int wrong = 0;
  launch(world, [&](Comm comm) {
    const std::size_t n = 8192;  // above the ring threshold
    std::vector<double> v(n, static_cast<double>(comm.rank() + 1));
    comm.allreduce_sum(v.data(), n);
    for (std::size_t i = 0; i < n; ++i) {
      if (v[i] != 10.0) ++wrong;  // 1+2+3+4
    }
  });
  world.run();
  EXPECT_EQ(wrong, 0);
}

TEST_P(MadMpiSizes, AllgatherGivesEveryoneEverything) {
  const int nodes = GetParam();
  nm::Cluster world(cluster_config(nodes));
  int wrong = 0;
  launch(world, [&](Comm comm) {
    const std::uint32_t mine = 0x3000u + static_cast<std::uint32_t>(comm.rank());
    std::vector<std::uint32_t> all(static_cast<std::size_t>(nodes), 0);
    comm.allgather(&mine, sizeof(mine), all.data());
    for (int r = 0; r < nodes; ++r) {
      if (all[static_cast<std::size_t>(r)] != 0x3000u + static_cast<std::uint32_t>(r)) ++wrong;
    }
  });
  world.run();
  EXPECT_EQ(wrong, 0);
}

TEST_P(MadMpiSizes, AlltoallPersonalizedExchange) {
  const int nodes = GetParam();
  nm::Cluster world(cluster_config(nodes));
  int wrong = 0;
  launch(world, [&](Comm comm) {
    const int me = comm.rank();
    // Block for rank d carries (me * 100 + d).
    std::vector<std::uint32_t> out_blocks(static_cast<std::size_t>(nodes));
    for (int d = 0; d < nodes; ++d) {
      out_blocks[static_cast<std::size_t>(d)] =
          static_cast<std::uint32_t>(me * 100 + d);
    }
    std::vector<std::uint32_t> in_blocks(static_cast<std::size_t>(nodes), 9999);
    comm.alltoall(out_blocks.data(), sizeof(std::uint32_t), in_blocks.data());
    for (int s = 0; s < nodes; ++s) {
      if (in_blocks[static_cast<std::size_t>(s)] !=
          static_cast<std::uint32_t>(s * 100 + me)) {
        ++wrong;
      }
    }
  });
  world.run();
  EXPECT_EQ(wrong, 0);
}

TEST(MadMpi, AlltoallLargeBlocksUseRendezvous) {
  nm::Cluster world(cluster_config(3));
  constexpr std::size_t kBlock = 50 * 1024;
  int wrong = 0;
  launch(world, [&](Comm comm) {
    const int n = comm.size();
    std::vector<std::uint8_t> out(static_cast<std::size_t>(n) * kBlock);
    for (int d = 0; d < n; ++d) {
      std::fill_n(out.begin() + d * static_cast<long>(kBlock), kBlock,
                  static_cast<std::uint8_t>(comm.rank() * 16 + d));
    }
    std::vector<std::uint8_t> in(static_cast<std::size_t>(n) * kBlock, 0);
    comm.alltoall(out.data(), kBlock, in.data());
    for (int s = 0; s < n; ++s) {
      const std::uint8_t expect = static_cast<std::uint8_t>(s * 16 + comm.rank());
      if (in[static_cast<std::size_t>(s) * kBlock] != expect) ++wrong;
      if (in[static_cast<std::size_t>(s + 1) * kBlock - 1] != expect) ++wrong;
    }
  });
  world.run();
  EXPECT_EQ(wrong, 0);
}

INSTANTIATE_TEST_SUITE_P(Worlds, MadMpiSizes, ::testing::Values(2, 3, 4, 5, 8));

TEST(MadMpi, WaitAnyReleasesAndNulls) {
  nm::Cluster world(cluster_config(2));
  launch(world, [&](Comm comm) {
    if (comm.rank() == 0) {
      int a = 0, b = 0;
      std::vector<nm::Request*> reqs = {
          comm.irecv(1, 5, &a, sizeof(a)),
          comm.irecv(1, 6, &b, sizeof(b)),
      };
      const std::size_t first = comm.wait_any(reqs);
      EXPECT_EQ(first, 1u);
      EXPECT_EQ(reqs[1], nullptr);
      EXPECT_EQ(b, 66);
      const std::size_t second = comm.wait_any(reqs);
      EXPECT_EQ(second, 0u);
      EXPECT_EQ(a, 55);
    } else {
      int v6 = 66, v5 = 55;
      comm.send(0, 6, &v6, sizeof(v6));
      world.sched(1).work(sim::microseconds(10));
      comm.send(0, 5, &v5, sizeof(v5));
    }
  });
  world.run();
}

TEST(MadMpi, WtimeAdvances) {
  nm::Cluster world(cluster_config(2));
  double elapsed = 0;
  launch(world, [&](Comm comm) {
    if (comm.rank() == 0) {
      const double t0 = comm.wtime();
      world.sched(0).work(sim::milliseconds(3));
      elapsed = comm.wtime() - t0;
    }
  });
  world.run();
  EXPECT_NEAR(elapsed, 3e-3, 1e-4);
}

}  // namespace
}  // namespace pm2::madmpi
