#include "simnet/buffer_pool.hpp"

#include <gtest/gtest.h>

#include <cstring>

namespace pm2::net {
namespace {

TEST(BufferPool, AcquireRoundsUpToPowerOfTwoClass) {
  BufferPool pool;
  EXPECT_EQ(pool.acquire(1).capacity(), 64u);    // floor class
  EXPECT_EQ(pool.acquire(64).capacity(), 64u);
  EXPECT_EQ(pool.acquire(65).capacity(), 128u);
  EXPECT_EQ(pool.acquire(4096).capacity(), 4096u);
  EXPECT_EQ(pool.acquire(4097).capacity(), 8192u);
}

TEST(BufferPool, ReleasedSlabIsReused) {
  BufferPool pool;
  std::uint8_t* first = nullptr;
  {
    SlabRef s = pool.acquire(1000);
    first = s.data();
    ASSERT_NE(first, nullptr);
  }
  EXPECT_EQ(pool.misses(), 1u);
  EXPECT_EQ(pool.idle_slabs(), 1u);
  SlabRef again = pool.acquire(600);  // same 1024 class
  EXPECT_EQ(again.data(), first);
  EXPECT_EQ(pool.hits(), 1u);
  EXPECT_EQ(pool.bytes_reused(), 1024u);
  EXPECT_EQ(pool.idle_slabs(), 0u);
}

TEST(BufferPool, CopiesShareTheSlabUntilLastRefDrops) {
  BufferPool pool;
  SlabRef a = pool.acquire(128);
  std::memset(a.data(), 0x5A, 128);
  SlabRef b = a;  // shared
  EXPECT_EQ(b.data(), a.data());
  EXPECT_EQ(pool.live_slabs(), 1u);
  a.reset();
  EXPECT_EQ(pool.idle_slabs(), 0u);  // b still holds it
  EXPECT_EQ(b.data()[7], 0x5A);
  b.reset();
  EXPECT_EQ(pool.idle_slabs(), 1u);
  EXPECT_EQ(pool.live_slabs(), 0u);
}

TEST(BufferPool, MoveTransfersOwnership) {
  BufferPool pool;
  SlabRef a = pool.acquire(64);
  std::uint8_t* p = a.data();
  SlabRef b = std::move(a);
  EXPECT_FALSE(static_cast<bool>(a));
  EXPECT_EQ(b.data(), p);
  EXPECT_EQ(pool.live_slabs(), 1u);
}

TEST(BufferPool, TrimReleasesIdleSlabs) {
  BufferPool pool;
  pool.acquire(100);
  pool.acquire(5000);
  EXPECT_EQ(pool.idle_slabs(), 2u);
  pool.trim();
  EXPECT_EQ(pool.idle_slabs(), 0u);
  // A fresh acquire after trim is a miss again.
  pool.acquire(100);
  EXPECT_EQ(pool.misses(), 3u);
}

TEST(BufferPool, DistinctClassesDoNotMix) {
  BufferPool pool;
  { SlabRef s = pool.acquire(64); }
  SlabRef big = pool.acquire(8192);  // must not reuse the 64-byte slab
  EXPECT_GE(big.capacity(), 8192u);
  EXPECT_EQ(pool.hits(), 0u);
}

TEST(BufferPool, GlobalPoolRegistersReuseCounters) {
  auto& reg = obs::MetricsRegistry::global();
  const bool was_enabled = reg.enabled();
  reg.set_enabled(true);
  const std::uint64_t h0 =
      reg.counter_value("pool", "", "hits").value_or(0);
  const std::uint64_t m0 =
      reg.counter_value("pool", "", "misses").value_or(0);
  BufferPool& pool = BufferPool::global();
  { SlabRef s = pool.acquire(777); }
  SlabRef s2 = pool.acquire(777);
  const auto h1 = reg.counter_value("pool", "", "hits");
  const auto m1 = reg.counter_value("pool", "", "misses");
  ASSERT_TRUE(h1.has_value());
  ASSERT_TRUE(m1.has_value());
  EXPECT_GE(*h1, h0 + 1);  // the second acquire reused the first slab
  EXPECT_GE(*m1, m0);
  reg.set_enabled(was_enabled);
}

}  // namespace
}  // namespace pm2::net
