#include "simnet/nic.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "simthread/scheduler.hpp"

namespace pm2::net {
namespace {

class NicTest : public ::testing::Test {
 protected:
  NicTest()
      : machine_a_(engine_, "a", mach::CacheTopology::quad_core(),
                   mach::CostBook::xeon_quad()),
        machine_b_(engine_, "b", mach::CacheTopology::quad_core(),
                   mach::CostBook::xeon_quad()),
        fabric_(engine_, "net"),
        nic_a_(machine_a_, fabric_, NicParams::myri10g()),
        nic_b_(machine_b_, fabric_, NicParams::myri10g()) {}

  std::vector<std::uint8_t> bytes(std::size_t n, std::uint8_t seed = 1) {
    std::vector<std::uint8_t> v(n);
    for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<std::uint8_t>(seed + i);
    return v;
  }

  sim::Engine engine_;
  mach::Machine machine_a_, machine_b_;
  Fabric fabric_;
  Nic nic_a_, nic_b_;
};

TEST_F(NicTest, PortsAssignedInAttachOrder) {
  EXPECT_EQ(nic_a_.port(), 0);
  EXPECT_EQ(nic_b_.port(), 1);
  EXPECT_EQ(fabric_.num_ports(), 2);
  EXPECT_EQ(fabric_.port(0), &nic_a_);
  EXPECT_EQ(fabric_.port(1), &nic_b_);
}

TEST_F(NicTest, DeliversPayloadIntact) {
  auto payload = bytes(100);
  nic_a_.post_send(1, 0, payload);
  engine_.run();
  ASSERT_TRUE(nic_b_.rx_pending());
  auto pkt = nic_b_.poll();
  ASSERT_TRUE(pkt.has_value());
  EXPECT_EQ(pkt->payload, payload);
  EXPECT_EQ(pkt->src_port, 0);
  EXPECT_EQ(pkt->dst_port, 1);
  EXPECT_EQ(pkt->channel, 0);
  EXPECT_FALSE(nic_b_.rx_pending());
}

TEST_F(NicTest, ArrivalTimeFollowsTimingModel) {
  const auto& p = nic_a_.params();
  const std::size_t size = 512;
  sim::Time arrival = -1;
  nic_b_.set_rx_notifier([&] { arrival = engine_.now(); });
  nic_a_.post_send(1, 0, bytes(size));
  engine_.run();
  const auto wire = static_cast<sim::Time>(
      std::llround(p.wire_ns_per_byte * static_cast<double>(size)));
  EXPECT_EQ(arrival,
            p.tx_dma_delay + wire + p.wire_latency + p.rx_deliver_delay);
}

TEST_F(NicTest, BackToBackPacketsSerializeOnTheWire) {
  const auto& p = nic_a_.params();
  const std::size_t size = 1000;
  std::vector<sim::Time> arrivals;
  nic_b_.set_rx_notifier([&] { arrivals.push_back(engine_.now()); });
  nic_a_.post_send(1, 0, bytes(size));
  nic_a_.post_send(1, 0, bytes(size));
  engine_.run();
  ASSERT_EQ(arrivals.size(), 2u);
  const auto wire = static_cast<sim::Time>(p.wire_ns_per_byte * size);
  // Second packet queues behind the first's wire occupancy.
  EXPECT_EQ(arrivals[1] - arrivals[0], wire);
}

TEST_F(NicTest, InOrderDeliveryPerSender) {
  const int kCount = nic_a_.params().tx_queue_depth;  // fill the queue once
  for (int i = 0; i < kCount; ++i) {
    nic_a_.post_send(1, 0, bytes(8, static_cast<std::uint8_t>(i)));
  }
  engine_.run();
  for (int i = 0; i < kCount; ++i) {
    auto pkt = nic_b_.poll();
    ASSERT_TRUE(pkt.has_value()) << i;
    EXPECT_EQ(pkt->payload[0], static_cast<std::uint8_t>(i));
    EXPECT_EQ(pkt->seq, static_cast<std::uint64_t>(i));
  }
}

TEST_F(NicTest, TxQueueDepthEnforced) {
  for (int i = 0; i < nic_a_.params().tx_queue_depth; ++i) {
    ASSERT_TRUE(nic_a_.tx_ready());
    nic_a_.post_send(1, 0, bytes(4096));
  }
  EXPECT_FALSE(nic_a_.tx_ready());
  EXPECT_THROW(nic_a_.post_send(1, 0, bytes(8)), std::logic_error);
  engine_.run();
  EXPECT_TRUE(nic_a_.tx_ready());
}

TEST_F(NicTest, TxNotifierFiresWhenSlotFrees) {
  int notified = 0;
  nic_a_.set_tx_notifier([&] { ++notified; });
  nic_a_.post_send(1, 0, bytes(64));
  engine_.run();
  EXPECT_EQ(notified, 1);
}

TEST_F(NicTest, WireDoneCallbackMarksBufferReusable) {
  bool done = false;
  auto h = nic_a_.post_send(1, 0, bytes(64), [&] { done = true; });
  EXPECT_FALSE(h.done());
  engine_.run();
  EXPECT_TRUE(done);
  EXPECT_TRUE(h.done());
}

TEST_F(NicTest, BadDestinationThrows) {
  EXPECT_THROW(nic_a_.post_send(7, 0, bytes(8)), std::out_of_range);
}

TEST_F(NicTest, PollCostsChargedToContext) {
  // Use a scheduler thread to observe priced polls.
  mth::Scheduler sched(machine_b_);
  nic_a_.post_send(1, 0, bytes(8));
  sim::Time empty_cost = -1, hit_cost = -1;
  sched.spawn([&] {
    sched.sleep_for(sim::microseconds(10));  // let the packet arrive
    sim::Time t0 = engine_.now();
    (void)nic_b_.poll();  // hit
    hit_cost = engine_.now() - t0;
    t0 = engine_.now();
    (void)nic_b_.poll();  // empty
    empty_cost = engine_.now() - t0;
  });
  engine_.run();
  EXPECT_EQ(hit_cost, nic_b_.params().poll_hit_cost);
  EXPECT_EQ(empty_cost, nic_b_.params().poll_empty_cost);
}

TEST_F(NicTest, ChannelsArePreserved) {
  nic_a_.post_send(1, 1, bytes(8));
  engine_.run();
  auto pkt = nic_b_.poll();
  ASSERT_TRUE(pkt.has_value());
  EXPECT_EQ(pkt->channel, 1);
}

TEST_F(NicTest, StatsAccumulate) {
  nic_a_.post_send(1, 0, bytes(100));
  nic_a_.post_send(1, 0, bytes(50));
  engine_.run();
  (void)nic_b_.poll();
  (void)nic_b_.poll();
  (void)nic_b_.poll();  // empty
  EXPECT_EQ(nic_a_.packets_sent(), 2u);
  EXPECT_EQ(nic_a_.bytes_sent(), 150u);
  EXPECT_EQ(nic_b_.packets_received(), 2u);
  EXPECT_EQ(nic_b_.bytes_received(), 150u);
  EXPECT_EQ(nic_b_.polls_hit(), 2u);
  EXPECT_EQ(nic_b_.polls_empty(), 1u);
}

TEST(NicParamsTest, PresetsDiffer) {
  const auto mx = NicParams::myri10g();
  const auto ib = NicParams::connectx_ib();
  const auto tcp = NicParams::tcp_gige();
  EXPECT_LT(ib.wire_latency, mx.wire_latency);
  EXPECT_LT(ib.wire_ns_per_byte, mx.wire_ns_per_byte);
  EXPECT_GT(tcp.wire_latency, 10 * mx.wire_latency);
  EXPECT_GT(tcp.wire_ns_per_byte, mx.wire_ns_per_byte);
}

TEST(FabricContention, IncastSerializesAtTheDestinationPort) {
  // Two senders fire equal-size packets at one receiver simultaneously:
  // the second delivery must queue behind the first on the egress port.
  sim::Engine engine;
  mach::Machine m(engine, "m", mach::CacheTopology::quad_core(),
                  mach::CostBook::xeon_quad());
  Fabric fabric(engine, "f");
  Nic rx(m, fabric, NicParams::myri10g());
  Nic tx1(m, fabric, NicParams::myri10g());
  Nic tx2(m, fabric, NicParams::myri10g());
  std::vector<sim::Time> arrivals;
  rx.set_rx_notifier([&] { arrivals.push_back(engine.now()); });
  const std::size_t size = 2000;
  std::vector<std::uint8_t> payload(size, 1);
  tx1.post_send(0, 0, payload);
  tx2.post_send(0, 0, payload);
  engine.run();
  ASSERT_EQ(arrivals.size(), 2u);
  const auto wire = static_cast<sim::Time>(
      std::llround(rx.params().wire_ns_per_byte * static_cast<double>(size)));
  EXPECT_EQ(arrivals[1] - arrivals[0], wire);
}

TEST(FabricContention, DistinctDestinationsDoNotContend) {
  sim::Engine engine;
  mach::Machine m(engine, "m", mach::CacheTopology::quad_core(),
                  mach::CostBook::xeon_quad());
  Fabric fabric(engine, "f");
  Nic rx1(m, fabric, NicParams::myri10g());
  Nic rx2(m, fabric, NicParams::myri10g());
  Nic tx1(m, fabric, NicParams::myri10g());
  Nic tx2(m, fabric, NicParams::myri10g());
  std::vector<sim::Time> arrivals;
  rx1.set_rx_notifier([&] { arrivals.push_back(engine.now()); });
  rx2.set_rx_notifier([&] { arrivals.push_back(engine.now()); });
  std::vector<std::uint8_t> payload(2000, 1);
  tx1.post_send(0, 0, payload);
  tx2.post_send(1, 0, payload);
  engine.run();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_EQ(arrivals[0], arrivals[1]);  // fully parallel paths
}

TEST(NicParamsTest, ThreeNicFabricRoutesCorrectly) {
  sim::Engine engine;
  mach::Machine m(engine, "m", mach::CacheTopology::quad_core(),
                  mach::CostBook::xeon_quad());
  Fabric fabric(engine, "f");
  Nic n0(m, fabric, NicParams::myri10g());
  Nic n1(m, fabric, NicParams::myri10g());
  Nic n2(m, fabric, NicParams::myri10g());
  n0.post_send(2, 0, {1});
  n1.post_send(0, 0, {2});
  engine.run();
  EXPECT_FALSE(n1.rx_pending());
  ASSERT_TRUE(n2.rx_pending());
  ASSERT_TRUE(n0.rx_pending());
  EXPECT_EQ(n2.poll()->payload[0], 1);
  EXPECT_EQ(n0.poll()->payload[0], 2);
}

}  // namespace
}  // namespace pm2::net
