// Model-based fuzz: EventQueue must behave exactly like a reference
// implementation (sorted multimap with tombstones) under random schedules,
// cancellations and pops.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <utility>
#include <vector>

#include "simcore/event_queue.hpp"
#include "simcore/random.hpp"

namespace pm2::sim {
namespace {

class ReferenceQueue {
 public:
  int schedule(Time when) {
    const int id = next_id_++;
    entries_.emplace(std::pair(when, id), true);
    ++live_;
    return id;
  }
  bool cancel(int id) {
    for (auto& [key, alive] : entries_) {
      if (key.second == id && alive) {
        alive = false;
        --live_;
        return true;
      }
    }
    return false;
  }
  bool empty() const { return live_ == 0; }
  Time next_time() const {
    for (const auto& [key, alive] : entries_) {
      if (alive) return key.first;
    }
    return kTimeInfinity;
  }
  /// Pops the earliest live entry; returns its id.
  std::pair<Time, int> pop() {
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->second) {
        auto key = it->first;
        entries_.erase(it);
        --live_;
        return key;
      }
    }
    ADD_FAILURE() << "pop on empty reference queue";
    return {0, -1};
  }

 private:
  // (time, seq) -> alive; map iteration order == priority order because
  // ids increase monotonically (deterministic FIFO tie-break).
  std::map<std::pair<Time, int>, bool> entries_;
  int next_id_ = 0;
  int live_ = 0;
};

class QueueFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(QueueFuzz, MatchesReferenceModel) {
  Rng rng(GetParam());
  EventQueue q;
  ReferenceQueue ref;
  std::map<int, EventHandle> handles;  // ref id -> real handle
  std::map<int, int> fired;            // ref id -> fire count
  int next_expected = -1;

  Time clock = 0;
  for (int step = 0; step < 3000; ++step) {
    const int op = static_cast<int>(rng.uniform_int(0, 9));
    if (op <= 4) {
      // Schedule at a (possibly duplicate) future time.
      const Time when = clock + rng.uniform_int(0, 50);
      const int id = ref.schedule(when);
      handles[id] = q.schedule(when, [&fired, id, &next_expected] {
        ++fired[id];
        EXPECT_EQ(id, next_expected) << "fired out of order";
      });
    } else if (op <= 6) {
      // Cancel a random known id.
      if (!handles.empty()) {
        auto it = handles.begin();
        std::advance(it, static_cast<long>(rng.next_below(handles.size())));
        EXPECT_EQ(q.cancel(it->second), ref.cancel(it->first));
      }
    } else {
      // Pop.
      ASSERT_EQ(q.empty(), ref.empty());
      if (!ref.empty()) {
        auto [when, id] = ref.pop();
        ASSERT_EQ(q.next_time(), when);
        auto [qt, cb] = q.pop();
        ASSERT_EQ(qt, when);
        ASSERT_GE(when, clock);
        clock = when;
        next_expected = id;
        cb();
        EXPECT_EQ(fired[id], 1);
      }
    }
    ASSERT_EQ(q.size(), [&] {
      // Count reference live entries.
      std::size_t n = 0;
      ReferenceQueue copy = ref;  // cheap enough at this size
      while (!copy.empty()) {
        copy.pop();
        ++n;
      }
      return n;
    }());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QueueFuzz,
                         ::testing::Values(11, 23, 37, 59, 71, 97));

class CancelHeavyFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CancelHeavyFuzz, AdversarialCancelChurn) {
  // Cancel-dominated schedule designed to stress slot reuse and compaction:
  // every handle ever issued is retained and randomly re-cancelled (most are
  // stale by then, many with their slot already reused by a newer event),
  // while pops interleave. Checks the reference model, the dead-entry bound
  // and that stale handles never affect the slot's new occupant.
  Rng rng(GetParam());
  EventQueue q;
  ReferenceQueue ref;
  std::vector<std::pair<int, EventHandle>> all;  // every (id, handle) ever
  Time clock = 0;

  for (int step = 0; step < 5000; ++step) {
    const int op = static_cast<int>(rng.uniform_int(0, 9));
    if (op <= 3) {
      // Schedule; adversarial times hop between near and far future so
      // entries split across the monotone lane and the heap.
      const Time when = clock + (rng.uniform_int(0, 1) != 0
                                     ? rng.uniform_int(0, 20)
                                     : rng.uniform_int(500, 1000));
      const int id = ref.schedule(when);
      all.emplace_back(id, q.schedule(when, [] {}));
    } else if (op <= 7) {
      // Cancel any handle ever issued -- live, fired, cancelled or stale
      // with a reused slot. Result must match the reference exactly.
      if (!all.empty()) {
        auto& [id, h] = all[rng.next_below(all.size())];
        ASSERT_EQ(q.cancel(h), ref.cancel(id));
        ASSERT_FALSE(h.pending());
      }
    } else if (!ref.empty()) {
      auto [when, id] = ref.pop();
      ASSERT_EQ(q.next_time(), when);
      auto [qt, cb] = q.pop();
      ASSERT_EQ(qt, when);
      clock = when;
    }
    ASSERT_EQ(q.empty(), ref.empty());
    ASSERT_LE(q.dead_entries(),
              std::max(EventQueue::kCompactFloor, q.size()))
        << "compaction bound violated at step " << step;
  }
  // Drain and cross-check the survivors' order.
  while (!ref.empty()) {
    auto [when, id] = ref.pop();
    auto [qt, cb] = q.pop();
    ASSERT_EQ(qt, when);
  }
  EXPECT_TRUE(q.empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, CancelHeavyFuzz,
                         ::testing::Values(3, 13, 29, 43, 67, 89));

}  // namespace
}  // namespace pm2::sim
