#include "simcore/engine.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace pm2::sim {
namespace {

TEST(Engine, ClockStartsAtZero) {
  Engine e;
  EXPECT_EQ(e.now(), 0);
}

TEST(Engine, RunAdvancesClockToLastEvent) {
  Engine e;
  e.schedule_at(100, [] {});
  e.schedule_at(250, [] {});
  e.run();
  EXPECT_EQ(e.now(), 250);
  EXPECT_EQ(e.events_executed(), 2u);
}

TEST(Engine, ScheduleAfterIsRelative) {
  Engine e;
  Time seen = -1;
  e.schedule_at(100, [&] {
    e.schedule_after(50, [&] { seen = e.now(); });
  });
  e.run();
  EXPECT_EQ(seen, 150);
}

TEST(Engine, SchedulingInThePastThrows) {
  Engine e;
  e.schedule_at(100, [&] {
    EXPECT_THROW(e.schedule_at(50, [] {}), std::logic_error);
  });
  e.run();
}

TEST(Engine, EventsCanCascade) {
  Engine e;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 10) e.schedule_after(10, recurse);
  };
  e.schedule_at(0, recurse);
  e.run();
  EXPECT_EQ(depth, 10);
  EXPECT_EQ(e.now(), 90);
}

TEST(Engine, StopHaltsRun) {
  Engine e;
  int fired = 0;
  e.schedule_at(10, [&] {
    ++fired;
    e.stop();
  });
  e.schedule_at(20, [&] { ++fired; });
  e.run();
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(e.stopped());
  EXPECT_EQ(e.pending_events(), 1u);
  e.run();  // resume
  EXPECT_EQ(fired, 2);
}

TEST(Engine, RunUntilStopsAtDeadline) {
  Engine e;
  std::vector<Time> fired;
  for (Time t : {10, 20, 30, 40}) {
    e.schedule_at(t, [&fired, &e] { fired.push_back(e.now()); });
  }
  e.run_until(25);
  EXPECT_EQ(fired, (std::vector<Time>{10, 20}));
  EXPECT_EQ(e.now(), 25);
  e.run();
  EXPECT_EQ(fired, (std::vector<Time>{10, 20, 30, 40}));
}

TEST(Engine, RunUntilAdvancesClockEvenWithoutEvents) {
  Engine e;
  e.run_until(1000);
  EXPECT_EQ(e.now(), 1000);
}

TEST(Engine, StepExecutesOneEvent) {
  Engine e;
  int fired = 0;
  e.schedule_at(5, [&] { ++fired; });
  e.schedule_at(6, [&] { ++fired; });
  EXPECT_TRUE(e.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(e.step());
  EXPECT_FALSE(e.step());
  EXPECT_EQ(fired, 2);
}

TEST(Engine, CancelledEventDoesNotRun) {
  Engine e;
  int fired = 0;
  auto h = e.schedule_at(10, [&] { ++fired; });
  e.cancel(h);
  e.run();
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(e.now(), 0);  // nothing executed, clock untouched
}

TEST(Engine, DeterministicOrderAtSameTimestamp) {
  std::vector<int> a, b;
  for (auto* out : {&a, &b}) {
    Engine e;
    for (int i = 0; i < 8; ++i) {
      e.schedule_at(7, [out, i] { out->push_back(i); });
    }
    e.run();
  }
  EXPECT_EQ(a, b);
}

TEST(TimeFormat, HumanReadable) {
  EXPECT_EQ(format_time(nanoseconds(70)), "70 ns");
  EXPECT_EQ(format_time(microseconds(5)), "5.000 us");
  EXPECT_EQ(format_time(milliseconds(2)), "2.000 ms");
  EXPECT_EQ(format_time(seconds(3)), "3.000 s");
}

TEST(TimeConversions, Roundtrip) {
  EXPECT_DOUBLE_EQ(to_us(microseconds(7)), 7.0);
  EXPECT_DOUBLE_EQ(to_sec(seconds(2)), 2.0);
  EXPECT_EQ(microseconds(1), nanoseconds(1000));
}

}  // namespace
}  // namespace pm2::sim
