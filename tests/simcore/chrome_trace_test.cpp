#include "simcore/chrome_trace.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace pm2::sim {
namespace {

TEST(ChromeTrace, EmitsCompleteEvents) {
  ChromeTrace t;
  t.complete_event("work", "thread", 0, 1, 1000, 500);
  const std::string json = t.to_json();
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"work\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":1.000"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":0.500"), std::string::npos);
  EXPECT_NE(json.find("\"pid\":0,\"tid\":1"), std::string::npos);
}

TEST(ChromeTrace, EmitsInstantAndCounter) {
  ChromeTrace t;
  t.instant_event("rx", "nic", 1, 64, 2000);
  t.counter_event("queue", 1, 2000, 3.5);
  const std::string json = t.to_json();
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(json.find("\"value\":3.5"), std::string::npos);
}

TEST(ChromeTrace, MetadataNamesProcessesAndThreads) {
  ChromeTrace t;
  t.set_process_name(2, "node 2");
  t.set_thread_name(2, 0, "core 0");
  const std::string json = t.to_json();
  EXPECT_NE(json.find("process_name"), std::string::npos);
  EXPECT_NE(json.find("thread_name"), std::string::npos);
  EXPECT_NE(json.find("node 2"), std::string::npos);
}

TEST(ChromeTrace, EscapesSpecialCharacters) {
  ChromeTrace t;
  t.instant_event("we\"ird\\name", "cat", 0, 0, 0);
  const std::string json = t.to_json();
  EXPECT_NE(json.find("we\\\"ird\\\\name"), std::string::npos);
}

TEST(ChromeTrace, EscapesControlCharacters) {
  // Regression: thread names with control characters used to produce JSON
  // that Perfetto rejects. Every char below 0x20 must be escaped.
  ChromeTrace t;
  t.instant_event("tab\there", "cat", 0, 0, 0);
  t.instant_event("line\nbreak", "cat", 0, 0, 0);
  t.instant_event("cr\rlf", "cat", 0, 0, 0);
  t.instant_event("bell\x07!", "cat", 0, 0, 0);
  t.instant_event("back\bspace", "cat", 0, 0, 0);
  t.instant_event("form\ffeed", "cat", 0, 0, 0);
  const std::string json = t.to_json();
  EXPECT_NE(json.find("tab\\there"), std::string::npos);
  EXPECT_NE(json.find("line\\nbreak"), std::string::npos);
  EXPECT_NE(json.find("cr\\rlf"), std::string::npos);
  EXPECT_NE(json.find("bell\\u0007!"), std::string::npos);
  EXPECT_NE(json.find("back\\bspace"), std::string::npos);
  EXPECT_NE(json.find("form\\ffeed"), std::string::npos);
  // No raw control character may survive into the serialized output; the
  // only one allowed is the '\n' the serializer itself emits between
  // events (legal JSON whitespace, outside every string).
  for (char c : json) {
    if (c == '\n') continue;
    EXPECT_GE(static_cast<unsigned char>(c), 0x20u);
  }
}

TEST(ChromeTrace, EmitsFlowEvents) {
  ChromeTrace t;
  t.flow_begin("msg", "flow", 0, 3, 1000, 42);
  t.flow_step("msg", "flow", 1, 0, 1500, 42);
  t.flow_end("msg", "flow", 1, 0, 2000, 42);
  const std::string json = t.to_json();
  EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"t\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos);
  // All three share the flow id; the end event binds to the enclosing slice.
  EXPECT_NE(json.find("\"id\":42"), std::string::npos);
  EXPECT_NE(json.find("\"bp\":\"e\""), std::string::npos);
  // Non-flow events must not carry an id.
  ChromeTrace plain;
  plain.instant_event("rx", "nic", 0, 0, 0);
  EXPECT_EQ(plain.to_json().find("\"id\":"), std::string::npos);
}

TEST(ChromeTrace, WritesFile) {
  ChromeTrace t;
  t.complete_event("x", "y", 0, 0, 0, 10);
  const std::string path = ::testing::TempDir() + "/pm2sim_trace_test.json";
  t.write(path);
  std::ifstream f(path);
  ASSERT_TRUE(f.good());
  std::string content((std::istreambuf_iterator<char>(f)),
                      std::istreambuf_iterator<char>());
  EXPECT_NE(content.find("traceEvents"), std::string::npos);
  std::remove(path.c_str());
}

TEST(ChromeTrace, WriteToBadPathThrows) {
  ChromeTrace t;
  EXPECT_THROW(t.write("/nonexistent-dir-xyz/trace.json"), std::runtime_error);
}

}  // namespace
}  // namespace pm2::sim
