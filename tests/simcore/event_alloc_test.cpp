// Allocation accounting for the engine hot path. The whole point of the
// slab-pooled event queue + InplaceFunction callbacks is that steady-state
// schedule/fire performs zero heap allocations; this test pins that down
// with counting global operator new/delete replacements, so a regression
// (say, a capture outgrowing the inline budget) fails loudly instead of
// showing up as a mysterious slowdown.
//
// Kept in its own test binary: the global new/delete replacement is
// process-wide and should not be linked into the other suites.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <vector>

#include "simcore/engine.hpp"

namespace {

std::uint64_t g_news = 0;
std::uint64_t g_deletes = 0;

}  // namespace

void* operator new(std::size_t size) {
  ++g_news;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  ++g_news;
  return std::malloc(size);
}

void operator delete(void* p) noexcept {
  ++g_deletes;
  std::free(p);
}

void operator delete(void* p, std::size_t) noexcept {
  ++g_deletes;
  std::free(p);
}

void operator delete(void* p, const std::nothrow_t&) noexcept {
  ++g_deletes;
  std::free(p);
}

namespace pm2::sim {
namespace {

struct AllocDelta {
  std::uint64_t news = g_news;
  std::uint64_t deletes = g_deletes;
  std::uint64_t new_count() const { return g_news - news; }
  std::uint64_t delete_count() const { return g_deletes - deletes; }
};

TEST(EventAlloc, SteadyStateScheduleAndFireIsAllocationFree) {
  Engine engine;
  std::uint64_t sink = 0;
  // Warm-up: grows the slot slab, the lane/heap vectors and the fiber-free
  // schedule path to their steady-state footprint.
  for (int i = 0; i < 4096; ++i) {
    engine.schedule_at(engine.now() + 1, [&sink] { ++sink; });
    engine.run();
  }
  AllocDelta d;
  for (int i = 0; i < 4096; ++i) {
    engine.schedule_at(engine.now() + 1, [&sink] { ++sink; });
    engine.run();
  }
  EXPECT_EQ(d.new_count(), 0u) << "schedule/fire hot path allocated";
  EXPECT_EQ(d.delete_count(), 0u);
  EXPECT_EQ(sink, 8192u);
}

TEST(EventAlloc, InTreeSizedCapturesStayInline) {
  // The NIC wire-done completion is the largest in-tree capture (56 bytes);
  // captures of that size must neither allocate nor count as fallbacks.
  Engine engine;
  struct Payload {
    void* a;
    void* b;
    std::uint64_t c[5];
  };
  static_assert(sizeof(Payload) == 56);
  Payload payload{};
  std::uint64_t sink = 0;
  for (int i = 0; i < 64; ++i) {
    engine.schedule_at(engine.now() + 1, [payload, &sink] {
      sink += reinterpret_cast<std::uintptr_t>(payload.a) + payload.c[0];
    });
    engine.run();
  }
  const auto fallbacks_before = EventQueue::Callback::heap_fallbacks();
  AllocDelta d;
  for (int i = 0; i < 64; ++i) {
    engine.schedule_at(engine.now() + 1, [payload, &sink] {
      sink += reinterpret_cast<std::uintptr_t>(payload.b) + payload.c[4];
    });
    engine.run();
  }
  EXPECT_EQ(d.new_count(), 0u);
  EXPECT_EQ(EventQueue::Callback::heap_fallbacks(), fallbacks_before);
}

TEST(EventAlloc, OversizedCaptureFallsBackToHeapOnce) {
  Engine engine;
  struct Huge {
    std::uint64_t words[16];  // 128 B > kEventCallbackCapacity
  };
  Huge huge{};
  std::uint64_t sink = 0;
  // Warm the engine so the only hot-path allocation left is the spill.
  engine.schedule_at(engine.now() + 1, [] {});
  engine.run();
  const auto fallbacks_before = EventQueue::Callback::heap_fallbacks();
  AllocDelta d;
  engine.schedule_at(engine.now() + 1, [huge, &sink] { sink += huge.words[0]; });
  engine.run();
  EXPECT_EQ(EventQueue::Callback::heap_fallbacks(), fallbacks_before + 1);
  EXPECT_GE(d.new_count(), 1u) << "oversized capture should hit the heap";
}

TEST(EventAlloc, CancelChurnIsAllocationFreeAfterWarmup) {
  Engine engine;
  std::vector<EventHandle> handles;
  handles.reserve(512);
  auto churn = [&] {
    handles.clear();
    for (int i = 0; i < 512; ++i) {
      handles.push_back(engine.schedule_at(engine.now() + 1000 + i, [] {}));
    }
    for (auto& h : handles) engine.cancel(h);
  };
  for (int i = 0; i < 32; ++i) churn();  // warm-up: slab + vectors at size
  AllocDelta d;
  for (int i = 0; i < 32; ++i) churn();
  EXPECT_EQ(d.new_count(), 0u) << "cancel churn hot path allocated";
}

}  // namespace
}  // namespace pm2::sim
