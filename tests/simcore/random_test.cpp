#include "simcore/random.hpp"

#include <gtest/gtest.h>

#include <set>

namespace pm2::sim {
namespace {

TEST(Rng, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, SeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng r(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(r.uniform_int(3, 7));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.begin(), 3);
  EXPECT_EQ(*seen.rbegin(), 7);
}

TEST(Rng, NextBelowBound) {
  Rng r(13);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.next_below(17), 17u);
}

TEST(Rng, ExponentialMeanRoughlyRight) {
  Rng r(17);
  double sum = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += r.exponential(10.0);
  EXPECT_NEAR(sum / n, 10.0, 0.3);
}

TEST(Rng, BernoulliEdges) {
  Rng r(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.bernoulli(0.0));
    EXPECT_TRUE(r.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliRate) {
  Rng r(23);
  int hits = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) hits += r.bernoulli(0.25) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.02);
}

TEST(Rng, SplitIsIndependentButDeterministic) {
  Rng a(31);
  Rng a2(31);
  Rng c1 = a.split();
  Rng c2 = a2.split();
  for (int i = 0; i < 32; ++i) EXPECT_EQ(c1.next_u64(), c2.next_u64());
}

}  // namespace
}  // namespace pm2::sim
