// Partitioned-engine contract tests: conservative window synchronization,
// cross-partition mailboxes, backpressure, and schedule determinism across
// host worker counts. Everything here runs the SAME windowed algorithm at
// workers = 1 and workers > 1, so traces must match exactly.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <vector>

#include "simcore/engine.hpp"

namespace pm2::sim {
namespace {

constexpr Time kLookahead = 100;

// Per-partition event trace. Each entry is appended by the partition that
// executes the event, so no cross-thread sharing happens even at workers>1.
struct Trace {
  std::vector<std::vector<std::uint64_t>> per_part;

  explicit Trace(int parts) : per_part(static_cast<std::size_t>(parts)) {}

  void record(int part, Time when, std::uint64_t tag) {
    per_part[static_cast<std::size_t>(part)].push_back(
        (static_cast<std::uint64_t>(when) << 16) | tag);
  }
};

TEST(ParallelEngine, ConfigureValidation) {
  {
    Engine e;
    EXPECT_THROW(e.configure_partitions(0, kLookahead), std::invalid_argument);
  }
  {
    Engine e;
    EXPECT_THROW(e.configure_partitions(2, 0), std::invalid_argument);
  }
  {
    Engine e;
    e.configure_partitions(2, kLookahead);
    // Repartitioning a partitioned engine is refused.
    EXPECT_THROW(e.configure_partitions(3, kLookahead), std::logic_error);
  }
  {
    Engine e;
    e.schedule_at(5, [] {});
    // Too late: an event is already scheduled.
    EXPECT_THROW(e.configure_partitions(2, kLookahead), std::logic_error);
  }
  {
    // n == 1 stays the reference engine and is allowed any time pre-events.
    Engine e;
    e.configure_partitions(1, 0);
    EXPECT_EQ(e.num_partitions(), 1);
  }
}

TEST(ParallelEngine, CrossEventAtExactHorizonLandsInNextWindow) {
  Engine e;
  e.configure_partitions(2, kLookahead);
  Trace trace(2);

  // Window 1: T_min = 0, horizon = 100 (exclusive). The cross event is
  // posted at exactly t = 100, so it must NOT run inside window 1 -- it is
  // delivered at the barrier and becomes window 2's T_min.
  e.schedule_at(0, [&] {
    trace.record(0, e.now(), 1);
    e.schedule_cross(1, e.now() + kLookahead, [&] {
      trace.record(1, e.now(), 2);
    });
  });
  e.run();

  EXPECT_EQ(e.windows_executed(), 2u);
  EXPECT_EQ(e.cross_events(), 1u);
  EXPECT_EQ(e.partition_events_executed(0), 1u);
  EXPECT_EQ(e.partition_events_executed(1), 1u);
  ASSERT_EQ(trace.per_part[1].size(), 1u);
  EXPECT_EQ(trace.per_part[1][0], (100u << 16) | 2u);
}

TEST(ParallelEngine, CrossEventsMergeInCanonicalOrder) {
  // Two partitions send to partition 2 at the same timestamp; the drain
  // must order them (time, src, seq) regardless of mailbox gather order.
  Engine e;
  e.configure_partitions(3, kLookahead);
  std::vector<int> order;
  {
    // Post from partition 1 first so FIFO gather order (src 1 before src 0)
    // would be wrong; the canonical sort has to fix it.
    Engine::PartitionScope scope(e, 1);
    e.schedule_at(0, [&] {
      e.schedule_cross(2, kLookahead, [&] { order.push_back(10); });
      e.schedule_cross(2, kLookahead, [&] { order.push_back(11); });
    });
  }
  {
    Engine::PartitionScope scope(e, 0);
    e.schedule_at(0, [&] {
      e.schedule_cross(2, kLookahead, [&] { order.push_back(0); });
    });
  }
  e.run();
  // src 0 before src 1; within src 1, send order (seq).
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 0);
  EXPECT_EQ(order[1], 10);
  EXPECT_EQ(order[2], 11);
}

TEST(ParallelEngine, MailboxBackpressureAbortsWindowDeterministically) {
  Engine e;
  e.configure_partitions(2, kLookahead);
  e.set_mailbox_capacity(2);
  int delivered = 0;
  bool late_local_ran_in_first_window = true;

  e.schedule_at(0, [&] {
    for (int i = 0; i < 3; ++i) {
      e.schedule_cross(1, kLookahead + i, [&] { ++delivered; });
    }
  });
  // Would run inside window 1 (t = 50 < horizon 100) -- but the overflow
  // above aborts the sender's window first, deferring it.
  e.schedule_at(50, [&] {
    late_local_ran_in_first_window = (e.windows_executed() == 1);
  });
  e.run();

  EXPECT_EQ(e.mailbox_overflows(), 1u);
  EXPECT_EQ(delivered, 3);  // backpressure delays, never drops
  EXPECT_FALSE(late_local_ran_in_first_window);
  // Window 1 (aborted early) + window 2 (deferred local + the 3 deliveries).
  EXPECT_EQ(e.windows_executed(), 2u);
}

TEST(ParallelEngine, SameSourceCrossDegradesToLocalSchedule) {
  Engine e;
  e.configure_partitions(2, kLookahead);
  bool ran = false;
  e.schedule_at(0, [&] {
    // dst == src: plain local event, exempt from the lookahead contract.
    e.schedule_cross(0, e.now() + 1, [&] { ran = true; });
  });
  e.run();
  EXPECT_TRUE(ran);
  EXPECT_EQ(e.cross_events(), 0u);
}

TEST(ParallelEngine, RunUntilStopsEveryPartitionAtDeadline) {
  Engine e;
  e.configure_partitions(2, kLookahead);
  int ran = 0;
  e.schedule_at(10, [&] { ++ran; });
  {
    Engine::PartitionScope scope(e, 1);
    e.schedule_at(500, [&] { ++ran; });
  }
  e.run_until(200);
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(e.partition_now(0), 200);
  EXPECT_EQ(e.partition_now(1), 200);
  EXPECT_EQ(e.pending_events(), 1u);
  e.run();
  EXPECT_EQ(ran, 2);
}

TEST(ParallelEngine, RunJoinsPartitionClocks) {
  Engine e;
  e.configure_partitions(2, kLookahead);
  e.schedule_at(10, [] {});
  {
    Engine::PartitionScope scope(e, 1);
    e.schedule_at(7500, [] {});
  }
  e.run();
  EXPECT_EQ(e.partition_now(0), 7500);
  EXPECT_EQ(e.partition_now(1), 7500);
  EXPECT_EQ(e.now(), 7500);
}

TEST(ParallelEngine, StopIsWindowGranular) {
  Engine e;
  e.configure_partitions(2, kLookahead);
  bool far_ran = false;
  e.schedule_at(0, [&] { e.stop(); });
  {
    Engine::PartitionScope scope(e, 1);
    // Beyond window 1's horizon: must never run once stop() lands.
    e.schedule_at(1000, [&] { far_ran = true; });
  }
  e.run();
  EXPECT_TRUE(e.stopped());
  EXPECT_FALSE(far_ran);
  EXPECT_EQ(e.pending_events(), 1u);
}

// Build one fixed communication pattern: each partition runs a chain of
// events that alternates local work with cross sends to the next partition.
// Returns the full execution trace.
Trace run_ring(int workers) {
  constexpr int kParts = 4;
  constexpr int kHops = 64;
  Engine e;
  e.configure_partitions(kParts, kLookahead);
  e.set_workers(workers);
  Trace trace(kParts);

  // Recursive driver: one local follow-up plus one cross hop per event,
  // with timestamps chosen so windows regularly contain events from
  // several partitions. The std::function outlives run() (same scope) and
  // is only read concurrently, never mutated.
  std::function<void(int, std::uint64_t)> hop = [&](int remaining,
                                                    std::uint64_t tag) {
    const int here = e.current_partition();
    trace.record(here, e.now(), tag);
    if (remaining == 0) return;
    e.schedule_after(7 + (tag % 5),
                     [&, remaining, tag] { hop(remaining - 1, tag + 1); });
    e.schedule_cross(
        (here + 1) % kParts, e.now() + kLookahead + (tag % 3),
        [&, remaining, tag] { hop(remaining / 2, tag + 1000); });
  };

  for (int p = 0; p < kParts; ++p) {
    Engine::PartitionScope scope(e, p);
    e.schedule_at(p, [&, p] { hop(kHops, static_cast<std::uint64_t>(p)); });
  }
  e.run();
  return trace;
}

TEST(ParallelEngine, TraceIsIdenticalAcrossWorkerCounts) {
  const Trace w1 = run_ring(1);
  const Trace w2 = run_ring(2);
  const Trace w4 = run_ring(4);
  for (std::size_t p = 0; p < w1.per_part.size(); ++p) {
    EXPECT_EQ(w1.per_part[p], w2.per_part[p]) << "partition " << p;
    EXPECT_EQ(w1.per_part[p], w4.per_part[p]) << "partition " << p;
    EXPECT_FALSE(w1.per_part[p].empty()) << "partition " << p;
  }
}

}  // namespace
}  // namespace pm2::sim
