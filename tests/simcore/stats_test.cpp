#include "simcore/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace pm2::sim {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, SingleSample) {
  RunningStats s;
  s.add(42.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 42.0);
  EXPECT_DOUBLE_EQ(s.min(), 42.0);
  EXPECT_DOUBLE_EQ(s.max(), 42.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, KnownMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // unbiased
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, ClearResets) {
  RunningStats s;
  s.add(1);
  s.add(2);
  s.clear();
  EXPECT_EQ(s.count(), 0u);
  s.add(10);
  EXPECT_DOUBLE_EQ(s.mean(), 10.0);
}

TEST(SampleSet, MedianOfOddCount) {
  SampleSet s;
  for (double x : {5.0, 1.0, 3.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.median(), 3.0);
}

TEST(SampleSet, PercentileInterpolates) {
  SampleSet s;
  for (int i = 0; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.percentile(0), 0.0);
  EXPECT_DOUBLE_EQ(s.percentile(50), 50.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
  EXPECT_NEAR(s.percentile(25), 25.0, 1e-9);
}

TEST(SampleSet, EmptyPercentileIsZero) {
  SampleSet s;
  EXPECT_DOUBLE_EQ(s.median(), 0.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(SampleSet, MeanMatches) {
  SampleSet s;
  s.add(1);
  s.add(2);
  s.add(6);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
}

TEST(Histogram, CountsFallInBuckets) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(1.5);
  h.add(1.7);
  h.add(9.9);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 2u);
  EXPECT_EQ(h.bucket(9), 1u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, OutOfRangeClamps) {
  Histogram h(0.0, 10.0, 5);
  h.add(-100.0);
  h.add(1e9);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(4), 1u);
}

TEST(Histogram, BadArgsThrow) {
  EXPECT_THROW(Histogram(0.0, 0.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(Histogram, RenderContainsBars) {
  Histogram h(0.0, 2.0, 2);
  h.add(0.5);
  h.add(0.6);
  h.add(1.5);
  const std::string out = h.render(10);
  EXPECT_NE(out.find('#'), std::string::npos);
  EXPECT_NE(out.find('\n'), std::string::npos);
}

}  // namespace
}  // namespace pm2::sim
