#include "simcore/trace.hpp"

#include <gtest/gtest.h>

namespace pm2::sim {
namespace {

TEST(Trace, ConfigureParsesDefaults) {
  EXPECT_TRUE(Trace::configure("info"));
  EXPECT_TRUE(Trace::enabled("anything", TraceLevel::kInfo));
  EXPECT_FALSE(Trace::enabled("anything", TraceLevel::kDebug));
  Trace::set_level(TraceLevel::kOff);
}

TEST(Trace, ConfigurePerComponent) {
  EXPECT_TRUE(Trace::configure("off,nmad=debug"));
  EXPECT_TRUE(Trace::enabled("nmad", TraceLevel::kDebug));
  EXPECT_FALSE(Trace::enabled("sched", TraceLevel::kError));
  Trace::set_level("nmad", TraceLevel::kOff);
  Trace::set_level(TraceLevel::kOff);
}

TEST(Trace, MalformedSpecRejected) {
  EXPECT_FALSE(Trace::configure("verbose"));
  EXPECT_FALSE(Trace::configure("nmad=loud"));
  Trace::set_level(TraceLevel::kOff);
}

TEST(Trace, EmptySegmentsTolerated) {
  EXPECT_TRUE(Trace::configure(",,info,,"));
  Trace::set_level(TraceLevel::kOff);
}

}  // namespace
}  // namespace pm2::sim
