#include "simcore/trace.hpp"

#include <gtest/gtest.h>

namespace pm2::sim {
namespace {

TEST(Trace, ConfigureParsesDefaults) {
  EXPECT_TRUE(Trace::configure("info"));
  EXPECT_TRUE(Trace::enabled("anything", TraceLevel::kInfo));
  EXPECT_FALSE(Trace::enabled("anything", TraceLevel::kDebug));
  Trace::set_level(TraceLevel::kOff);
}

TEST(Trace, ConfigurePerComponent) {
  EXPECT_TRUE(Trace::configure("off,nmad=debug"));
  EXPECT_TRUE(Trace::enabled("nmad", TraceLevel::kDebug));
  EXPECT_FALSE(Trace::enabled("sched", TraceLevel::kError));
  Trace::set_level("nmad", TraceLevel::kOff);
  Trace::set_level(TraceLevel::kOff);
}

TEST(Trace, MalformedSpecRejected) {
  EXPECT_FALSE(Trace::configure("verbose"));
  EXPECT_FALSE(Trace::configure("nmad=loud"));
  Trace::set_level(TraceLevel::kOff);
}

TEST(Trace, EmptySegmentsRejected) {
  // A trailing comma (or any empty segment) is a typo, not a request:
  // reject it instead of silently ignoring half the spec.
  EXPECT_FALSE(Trace::configure("info,"));
  EXPECT_FALSE(Trace::configure(",info"));
  EXPECT_FALSE(Trace::configure(",,info,,"));
  EXPECT_FALSE(Trace::configure("info,,nmad=debug"));
  EXPECT_FALSE(Trace::configure("=debug"));
  Trace::set_level(TraceLevel::kOff);
}

TEST(Trace, EmptySpecIsNoOp) {
  Trace::set_level(TraceLevel::kWarn);
  EXPECT_TRUE(Trace::configure(""));
  EXPECT_TRUE(Trace::enabled("anything", TraceLevel::kWarn));
  EXPECT_FALSE(Trace::enabled("anything", TraceLevel::kInfo));
  Trace::set_level(TraceLevel::kOff);
}

TEST(Trace, LevelsAreCaseInsensitive) {
  EXPECT_TRUE(Trace::configure("INFO"));
  EXPECT_TRUE(Trace::enabled("anything", TraceLevel::kInfo));
  EXPECT_TRUE(Trace::configure("Debug"));
  EXPECT_TRUE(Trace::enabled("anything", TraceLevel::kDebug));
  EXPECT_TRUE(Trace::configure("off,nmad=DEBUG"));
  EXPECT_TRUE(Trace::enabled("nmad", TraceLevel::kDebug));
  EXPECT_FALSE(Trace::enabled("sched", TraceLevel::kError));
  Trace::set_level("nmad", TraceLevel::kOff);
  Trace::set_level(TraceLevel::kOff);
}

TEST(Trace, FailedConfigureLeavesStateIntact) {
  EXPECT_TRUE(Trace::configure("warn,nmad=debug"));
  // The default level parses before the bad tail; neither may stick.
  EXPECT_FALSE(Trace::configure("error,nmad=loud"));
  EXPECT_FALSE(Trace::configure("info,"));
  EXPECT_TRUE(Trace::enabled("anything", TraceLevel::kWarn));
  EXPECT_FALSE(Trace::enabled("anything", TraceLevel::kInfo));
  EXPECT_TRUE(Trace::enabled("nmad", TraceLevel::kDebug));
  Trace::set_level("nmad", TraceLevel::kOff);
  Trace::set_level(TraceLevel::kOff);
}

}  // namespace
}  // namespace pm2::sim
