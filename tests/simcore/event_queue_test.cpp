#include "simcore/event_queue.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace pm2::sim {
namespace {

TEST(EventQueue, StartsEmpty) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  EXPECT_EQ(q.next_time(), kTimeInfinity);
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(30, [&] { order.push_back(3); });
  q.schedule(10, [&] { order.push_back(1); });
  q.schedule(20, [&] { order.push_back(2); });
  while (!q.empty()) {
    auto [t, cb] = q.pop();
    cb();
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesBreakByInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 16; ++i) {
    q.schedule(42, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop().second();
  for (int i = 0; i < 16; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(EventQueue, NextTimeReportsEarliestLive) {
  EventQueue q;
  q.schedule(50, [] {});
  auto h = q.schedule(20, [] {});
  EXPECT_EQ(q.next_time(), 20);
  q.cancel(h);
  EXPECT_EQ(q.next_time(), 50);
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  int fired = 0;
  auto h = q.schedule(10, [&] { ++fired; });
  q.schedule(20, [&] { ++fired; });
  EXPECT_TRUE(h.pending());
  EXPECT_TRUE(q.cancel(h));
  EXPECT_FALSE(h.pending());
  EXPECT_EQ(q.size(), 1u);
  while (!q.empty()) q.pop().second();
  EXPECT_EQ(fired, 1);
}

TEST(EventQueue, CancelTwiceIsNoop) {
  EventQueue q;
  auto h = q.schedule(10, [] {});
  EXPECT_TRUE(q.cancel(h));
  EXPECT_FALSE(q.cancel(h));
}

TEST(EventQueue, CancelAfterFireIsNoop) {
  EventQueue q;
  auto h = q.schedule(10, [] {});
  q.pop().second();
  EXPECT_FALSE(h.pending());
  EXPECT_FALSE(q.cancel(h));
}

TEST(EventQueue, DefaultHandleIsInvalid) {
  EventHandle h;
  EXPECT_FALSE(h.valid());
  EXPECT_FALSE(h.pending());
  EventQueue q;
  EXPECT_FALSE(q.cancel(h));
}

TEST(EventQueue, PopSkipsCancelledEntries) {
  EventQueue q;
  auto h1 = q.schedule(10, [] {});
  int fired = 0;
  q.schedule(20, [&] { fired = 1; });
  q.cancel(h1);
  auto [t, cb] = q.pop();
  EXPECT_EQ(t, 20);
  cb();
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, StaleHandleAfterSlotReuse) {
  // After cancel, the slot goes back to the pool and the very next schedule
  // reuses it. The old handle must stay stale: it names a (slot, sequence)
  // pairing that no longer exists, even though the slot is occupied again.
  EventQueue q;
  auto h1 = q.schedule(10, [] {});
  EXPECT_TRUE(q.cancel(h1));
  EXPECT_EQ(q.free_slots(), 1u);
  int fired = 0;
  auto h2 = q.schedule(20, [&] { ++fired; });
  EXPECT_EQ(q.free_slots(), 0u);  // the slot was reused...
  EXPECT_FALSE(h1.pending());     // ...but the stale handle sees through it
  EXPECT_FALSE(q.cancel(h1));
  EXPECT_TRUE(h2.pending());
  auto [t, cb] = q.pop();
  EXPECT_EQ(t, 20);
  cb();
  EXPECT_EQ(fired, 1);
}

TEST(EventQueue, StaleHandleAfterFireAndSlotReuse) {
  EventQueue q;
  auto h1 = q.schedule(10, [] {});
  q.pop().second();
  auto h2 = q.schedule(20, [] {});  // reuses h1's slot
  EXPECT_FALSE(h1.pending());
  EXPECT_FALSE(q.cancel(h1));
  EXPECT_TRUE(q.cancel(h2));
}

TEST(EventQueue, DeadEntriesBoundedUnderCancelChurn) {
  // Lazy cancellation must not retain unbounded tombstones: compaction
  // keeps dead_entries() <= max(kCompactFloor, live) after every op.
  EventQueue q;
  auto bound_holds = [&q] {
    return q.dead_entries() <= std::max(EventQueue::kCompactFloor, q.size());
  };
  std::vector<EventHandle> handles;
  // Far-future blockers that never reach the front: dead entries behind
  // them can only be reclaimed by compaction, not by front dropping.
  for (int i = 0; i < 8; ++i) q.schedule(1'000'000, [] {});
  for (int round = 0; round < 50; ++round) {
    handles.clear();
    for (int i = 0; i < 100; ++i) {
      handles.push_back(q.schedule(1000 + round, [] {}));
      ASSERT_TRUE(bound_holds());
    }
    for (auto& h : handles) {
      q.cancel(h);
      ASSERT_TRUE(bound_holds()) << "dead=" << q.dead_entries()
                                 << " live=" << q.size();
    }
  }
  EXPECT_EQ(q.size(), 8u);
  EXPECT_LE(q.dead_entries(), EventQueue::kCompactFloor);
}

TEST(EventQueue, ManyInterleavedSchedulesAndCancels) {
  EventQueue q;
  std::vector<EventHandle> handles;
  int fired = 0;
  for (int i = 0; i < 1000; ++i) {
    handles.push_back(q.schedule(i % 97, [&] { ++fired; }));
  }
  for (size_t i = 0; i < handles.size(); i += 2) q.cancel(handles[i]);
  EXPECT_EQ(q.size(), 500u);
  Time last = -1;
  while (!q.empty()) {
    auto [t, cb] = q.pop();
    EXPECT_GE(t, last);
    last = t;
    cb();
  }
  EXPECT_EQ(fired, 500);
}

}  // namespace
}  // namespace pm2::sim
