#include "sync/completion_flag.hpp"

#include <gtest/gtest.h>

namespace pm2::sync {
namespace {

class FlagTest : public ::testing::Test {
 protected:
  sim::Engine engine_;
  mach::Machine machine_{engine_, "node0", mach::CacheTopology::quad_core(),
                         mach::CostBook::xeon_quad()};
  mth::Scheduler sched_{machine_};
};

TEST_F(FlagTest, AlreadySetReturnsImmediately) {
  CompletionFlag f(sched_);
  for (WaitPolicy p :
       {WaitPolicy::kBusy, WaitPolicy::kPassive, WaitPolicy::kFixedSpin}) {
    sched_.spawn([&, p] {
      f.set();
      const sim::Time before = engine_.now();
      f.wait(p);
      EXPECT_LT(engine_.now() - before, 100) << to_string(p);
    });
    engine_.run();
    f.reset();
  }
}

TEST_F(FlagTest, BusyWaitCompletesAndOccupiesCore) {
  CompletionFlag f(sched_);
  mth::ThreadAttrs a0, a1;
  a0.bind_core = 0;
  a1.bind_core = 1;
  bool done = false;
  sched_.spawn([&] {
    f.wait_busy();
    done = true;
  }, a0);
  sched_.spawn([&] {
    sched_.work(sim::microseconds(20));
    f.set();
  }, a1);
  engine_.run();
  EXPECT_TRUE(done);
  // The busy waiter burned ~20 us of CPU on core 0.
  EXPECT_GT(sched_.core_busy_time(0), sim::microseconds(18));
}

TEST_F(FlagTest, PassiveWaitFreesTheCore) {
  CompletionFlag f(sched_);
  mth::ThreadAttrs a0, a1;
  a0.bind_core = 0;
  a1.bind_core = 1;
  sched_.spawn([&] { f.wait_passive(); }, a0);
  sched_.spawn([&] {
    sched_.work(sim::microseconds(20));
    f.set();
  }, a1);
  engine_.run();
  EXPECT_LT(sched_.core_busy_time(0), sim::microseconds(5));
  EXPECT_EQ(f.blocked_waits(), 1u);
}

TEST_F(FlagTest, PassiveWaitCostsContextSwitches) {
  CompletionFlag f(sched_);
  mth::ThreadAttrs a0, a1;
  a0.bind_core = 0;
  a1.bind_core = 1;
  sim::Time set_at = 0, woke_at = 0;
  sched_.spawn([&] {
    f.wait_passive();
    woke_at = engine_.now();
  }, a0);
  sched_.spawn([&] {
    sched_.work(sim::microseconds(20));
    set_at = engine_.now();
    f.set();
  }, a1);
  engine_.run();
  // Switch-in (375 ns) plus the line transfer from core 1.
  EXPECT_GE(woke_at - set_at, machine_.costs().context_switch);
}

TEST_F(FlagTest, FixedSpinAvoidsSwitchWhenEventIsFast) {
  CompletionFlag f(sched_);
  mth::ThreadAttrs a0, a1;
  a0.bind_core = 0;
  a1.bind_core = 1;
  sched_.spawn([&] { f.wait_fixed_spin(sim::microseconds(5)); }, a0);
  sched_.spawn([&] {
    sched_.work(sim::microseconds(2));  // within the spin budget
    f.set();
  }, a1);
  engine_.run();
  EXPECT_EQ(f.blocked_waits(), 0u);  // never blocked
}

TEST_F(FlagTest, FixedSpinFallsBackToBlocking) {
  CompletionFlag f(sched_);
  mth::ThreadAttrs a0, a1;
  a0.bind_core = 0;
  a1.bind_core = 1;
  bool done = false;
  sched_.spawn([&] {
    f.wait_fixed_spin(sim::microseconds(5));
    done = true;
  }, a0);
  sched_.spawn([&] {
    sched_.work(sim::microseconds(50));  // far beyond the budget
    f.set();
  }, a1);
  engine_.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(f.blocked_waits(), 1u);
  // Core 0 spun only ~5 us, then slept.
  EXPECT_LT(sched_.core_busy_time(0), sim::microseconds(10));
}

TEST_F(FlagTest, SetFromEngineContext) {
  CompletionFlag f(sched_);
  bool done = false;
  sched_.spawn([&] {
    f.wait_passive();
    done = true;
  });
  engine_.schedule_at(sim::microseconds(3), [&] { f.set(); });
  engine_.run();
  EXPECT_TRUE(done);
}

TEST_F(FlagTest, SetIsIdempotent) {
  CompletionFlag f(sched_);
  sched_.spawn([&] {
    f.set();
    f.set();
    EXPECT_TRUE(f.is_set());
    f.wait_busy();
  });
  engine_.run();
}

TEST_F(FlagTest, MultipleWaitersAllReleased) {
  CompletionFlag f(sched_);
  int released = 0;
  const WaitPolicy policies[3] = {WaitPolicy::kBusy, WaitPolicy::kPassive,
                                  WaitPolicy::kFixedSpin};
  for (int i = 0; i < 3; ++i) {
    mth::ThreadAttrs a;
    a.bind_core = i;
    sched_.spawn([&, i] {
      f.wait(policies[i], sim::microseconds(100));
      ++released;
    }, a);
  }
  mth::ThreadAttrs a3;
  a3.bind_core = 3;
  sched_.spawn([&] {
    sched_.work(sim::microseconds(10));
    f.set();
  }, a3);
  engine_.run();
  EXPECT_EQ(released, 3);
}

TEST_F(FlagTest, CrossCoreCompletionPaysTwoLineTransfers) {
  // The Fig. 8 mechanism: setter on another core => the completion line
  // bounces twice (setter's write + waiter's final read).
  auto measure = [&](int poll_core) {
    sim::Engine engine;
    mach::Machine machine(engine, "n", mach::CacheTopology::quad_core(),
                          mach::CostBook::xeon_quad());
    mth::Scheduler sched(machine);
    CompletionFlag flag(sched);
    sim::Time set_at = 0, woke = 0;
    mth::ThreadAttrs a0;
    a0.bind_core = 0;
    sched.spawn([&] {
      flag.wait_busy();
      woke = engine.now();
    }, a0);
    mth::ThreadAttrs ap;
    ap.bind_core = poll_core;
    sched.spawn([&] {
      sched.work(sim::microseconds(10));
      set_at = engine.now();
      flag.set();
    }, ap);
    engine.run();
    return woke - set_at;
  };
  // (Polling on the app's own core means the app itself polls -- a second
  // thread there would cost context switches instead; see fig8_affinity
  // for the faithful same-core baseline.)
  const sim::Time shared = measure(1);
  const sim::Time far = measure(2);
  EXPECT_LT(shared, far);
  // Two transfers: difference is twice the per-line cost gap.
  sim::Engine probe_engine;
  mach::Machine probe(probe_engine, "probe", mach::CacheTopology::quad_core(),
                      mach::CostBook::xeon_quad());
  EXPECT_EQ(far - shared,
            2 * (probe.costs().line_same_chip - probe.costs().line_shared_l2));
}

TEST_F(FlagTest, TestChecksWithoutBlocking) {
  CompletionFlag f(sched_);
  sched_.spawn([&] {
    EXPECT_FALSE(f.test());
    f.set();
    EXPECT_TRUE(f.test());
  });
  engine_.run();
}

TEST_F(FlagTest, SignalBeforeWaitNeverBlocksAcrossReuse) {
  // set() strictly before wait() must take the fast path -- no scheduler
  // block -- under every policy, including after reset() re-arms the flag.
  CompletionFlag f(sched_);
  for (int round = 0; round < 2; ++round) {
    for (WaitPolicy p :
         {WaitPolicy::kBusy, WaitPolicy::kPassive, WaitPolicy::kFixedSpin}) {
      const std::uint64_t blocked_before = f.blocked_waits();
      sched_.spawn([&] { f.set(); });
      mth::ThreadAttrs a;
      a.bind_core = 1;
      sched_.spawn([&, p] {
        // Arrive well after the setter ran: the signal is already latched.
        sched_.charge_current(sim::microseconds(5));
        f.wait(p);
        EXPECT_TRUE(f.is_set());
      }, a);
      engine_.run();
      EXPECT_EQ(f.blocked_waits(), blocked_before) << to_string(p);
      f.reset();
      EXPECT_FALSE(f.is_set());
    }
  }
}

}  // namespace
}  // namespace pm2::sync
