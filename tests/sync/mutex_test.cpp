#include "sync/mutex.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace pm2::sync {
namespace {

class MutexTest : public ::testing::Test {
 protected:
  sim::Engine engine_;
  mach::Machine machine_{engine_, "node0", mach::CacheTopology::quad_core(),
                         mach::CostBook::xeon_quad()};
  mth::Scheduler sched_{machine_};
};

TEST_F(MutexTest, LockUnlockSingleThread) {
  Mutex m(sched_);
  sched_.spawn([&] {
    m.lock();
    EXPECT_TRUE(m.held());
    m.unlock();
    EXPECT_FALSE(m.held());
  });
  engine_.run();
}

TEST_F(MutexTest, GuardReleasesOnScopeExit) {
  Mutex m(sched_);
  sched_.spawn([&] {
    {
      MutexGuard g(m);
      EXPECT_TRUE(m.held());
    }
    EXPECT_FALSE(m.held());
  });
  engine_.run();
}

TEST_F(MutexTest, ContendersBlockNotSpin) {
  Mutex m(sched_);
  mth::ThreadAttrs a0, a1;
  a0.bind_core = 0;
  a1.bind_core = 1;
  sched_.spawn([&] {
    m.lock();
    sched_.work(sim::microseconds(50));
    m.unlock();
  }, a0);
  sched_.spawn([&] {
    sched_.charge_current(500);
    m.lock();
    m.unlock();
  }, a1);
  engine_.run();
  // Core 1 slept while waiting: its busy time is far below the 50 us hold.
  EXPECT_LT(sched_.core_busy_time(1), sim::microseconds(10));
}

TEST_F(MutexTest, HandoffIsFifo) {
  Mutex m(sched_);
  std::vector<int> order;
  sched_.spawn([&] {
    m.lock();
    sched_.work(sim::microseconds(5));
    m.unlock();
  });
  for (int i = 1; i <= 3; ++i) {
    mth::ThreadAttrs a;
    a.bind_core = i;
    sched_.spawn([&, i] {
      // Stagger arrivals beyond any cache-line transfer cost.
      sched_.charge_current(sim::microseconds(2) * i);
      m.lock();
      order.push_back(i);
      m.unlock();
    }, a);
  }
  engine_.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST_F(MutexTest, CriticalSectionInvariant) {
  Mutex m(sched_);
  int in = 0, max_in = 0;
  long ops = 0;
  for (int i = 0; i < 4; ++i) {
    sched_.spawn([&] {
      for (int k = 0; k < 25; ++k) {
        MutexGuard g(m);
        max_in = std::max(max_in, ++in);
        sched_.charge_current(200);
        ++ops;
        --in;
      }
    });
  }
  engine_.run();
  EXPECT_EQ(max_in, 1);
  EXPECT_EQ(ops, 100);
}

TEST_F(MutexTest, TryLockSemantics) {
  Mutex m(sched_);
  sched_.spawn([&] {
    EXPECT_TRUE(m.try_lock());
    EXPECT_FALSE(m.try_lock());
    m.unlock();
    EXPECT_TRUE(m.try_lock());
    m.unlock();
  });
  engine_.run();
}

class CondVarTest : public MutexTest {};

TEST_F(CondVarTest, WaitReleasesMutexAndReacquires) {
  Mutex m(sched_);
  CondVar cv(sched_);
  bool flag = false;
  bool waiter_done = false;
  sched_.spawn([&] {
    MutexGuard g(m);
    while (!flag) cv.wait(m);
    EXPECT_TRUE(m.held());
    waiter_done = true;
  });
  sched_.spawn([&] {
    sched_.work(sim::microseconds(10));
    MutexGuard g(m);  // must be acquirable: waiter released it
    flag = true;
    cv.notify_one();
  });
  engine_.run();
  EXPECT_TRUE(waiter_done);
}

TEST_F(CondVarTest, NotifyAllWakesEveryone) {
  Mutex m(sched_);
  CondVar cv(sched_);
  bool go = false;
  int woke = 0;
  for (int i = 0; i < 3; ++i) {
    sched_.spawn([&] {
      MutexGuard g(m);
      while (!go) cv.wait(m);
      ++woke;
    });
  }
  sched_.spawn([&] {
    sched_.work(sim::microseconds(5));
    MutexGuard g(m);
    go = true;
    cv.notify_all();
  });
  engine_.run();
  EXPECT_EQ(woke, 3);
}

TEST_F(CondVarTest, NotifyWithoutWaitersIsNoop) {
  Mutex m(sched_);
  CondVar cv(sched_);
  sched_.spawn([&] {
    cv.notify_one();
    cv.notify_all();
  });
  engine_.run();
  EXPECT_EQ(cv.waiters(), 0u);
}

}  // namespace
}  // namespace pm2::sync
