#include "sync/rwlock.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

namespace pm2::sync {
namespace {

class RwLockTest : public ::testing::Test {
 protected:
  sim::Engine engine_;
  mach::Machine machine_{engine_, "n", mach::CacheTopology::quad_core(),
                         mach::CostBook::xeon_quad()};
  mth::Scheduler sched_{machine_};
};

TEST_F(RwLockTest, ReadersShare) {
  RwLock rw(sched_);
  int concurrent = 0, peak = 0;
  for (int i = 0; i < 3; ++i) {
    mth::ThreadAttrs a;
    a.bind_core = i;
    sched_.spawn([&] {
      ReadGuard g(rw);
      peak = std::max(peak, ++concurrent);
      sched_.work(sim::microseconds(10));
      --concurrent;
    }, a);
  }
  engine_.run();
  EXPECT_EQ(peak, 3);  // all three readers inside simultaneously
}

TEST_F(RwLockTest, WriterExcludesEveryone) {
  RwLock rw(sched_);
  bool writer_in = false;
  int violations = 0;
  mth::ThreadAttrs a0, a1, a2;
  a0.bind_core = 0;
  a1.bind_core = 1;
  a2.bind_core = 2;
  sched_.spawn([&] {
    WriteGuard g(rw);
    writer_in = true;
    sched_.work(sim::microseconds(20));
    writer_in = false;
  }, a0);
  for (auto* attrs : {&a1, &a2}) {
    sched_.spawn([&] {
      sched_.charge_current(sim::microseconds(1));
      ReadGuard g(rw);
      if (writer_in) ++violations;
    }, *attrs);
  }
  engine_.run();
  EXPECT_EQ(violations, 0);
}

TEST_F(RwLockTest, WriterPreferenceBlocksNewReaders) {
  RwLock rw(sched_);
  std::vector<std::string> order;
  mth::ThreadAttrs a0, a1, a2;
  a0.bind_core = 0;
  a1.bind_core = 1;
  a2.bind_core = 2;
  sched_.spawn([&] {
    ReadGuard g(rw);
    sched_.work(sim::microseconds(20));  // long read
  }, a0);
  sched_.spawn([&] {
    sched_.charge_current(sim::microseconds(2));
    WriteGuard g(rw);  // queued behind the reader
    order.push_back("writer");
  }, a1);
  sched_.spawn([&] {
    sched_.charge_current(sim::microseconds(5));
    ReadGuard g(rw);  // arrives later: must wait for the queued writer
    order.push_back("reader2");
  }, a2);
  engine_.run();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], "writer");
  EXPECT_EQ(order[1], "reader2");
}

TEST_F(RwLockTest, TryLockVariants) {
  RwLock rw(sched_);
  sched_.spawn([&] {
    EXPECT_TRUE(rw.try_lock_shared());
    EXPECT_FALSE(rw.try_lock());  // reader active
    EXPECT_TRUE(rw.try_lock_shared());
    rw.unlock_shared();
    rw.unlock_shared();
    EXPECT_TRUE(rw.try_lock());
    EXPECT_FALSE(rw.try_lock_shared());  // writer active
    rw.unlock();
  });
  engine_.run();
}

TEST_F(RwLockTest, ManyMixedOperationsKeepInvariant) {
  RwLock rw(sched_);
  int data = 0;
  int bad_reads = 0;
  for (int i = 0; i < 4; ++i) {
    mth::ThreadAttrs a;
    a.bind_core = i;
    sched_.spawn([&, i] {
      for (int k = 0; k < 20; ++k) {
        if ((k + i) % 4 == 0) {
          WriteGuard g(rw);
          ++data;  // writers mutate under exclusion
          sched_.charge_current(200);
          ++data;
        } else {
          ReadGuard g(rw);
          // Writers always leave data even; a reader seeing odd data raced.
          if (data % 2 != 0) ++bad_reads;
          sched_.charge_current(100);
        }
      }
    }, a);
  }
  engine_.run();
  EXPECT_EQ(bad_reads, 0);
  EXPECT_EQ(data % 2, 0);
}

TEST_F(RwLockTest, WaitingWriterNotStarvedByReaderStream) {
  // A continuous, overlapping stream of readers must not starve a writer:
  // once the writer queues, only the readers already inside finish ahead of
  // it; readers that arrive later are held back until the writer is done.
  RwLock rw(sched_);
  std::vector<std::string> order;
  for (int i = 0; i < 4; ++i) {
    mth::ThreadAttrs a;
    a.bind_core = i % 3;  // core 3 is reserved for the writer
    sched_.spawn([&, i] {
      // Readers arrive at 0,4,8,12 us and hold for 6 us: the stream
      // overlaps itself, so without writer preference it never drains.
      sched_.charge_current(sim::microseconds(4) * i);
      ReadGuard g(rw);
      sched_.work(sim::microseconds(6));
      order.push_back("r" + std::to_string(i));
    }, a);
  }
  mth::ThreadAttrs wa;
  wa.bind_core = 3;
  sched_.spawn([&] {
    sched_.charge_current(sim::microseconds(5));  // after r0, r1 arrived
    WriteGuard g(rw);
    order.push_back("w");
  }, wa);
  engine_.run();
  ASSERT_EQ(order.size(), 5u);
  const auto pos = [&](const std::string& s) {
    return std::find(order.begin(), order.end(), s) - order.begin();
  };
  // The writer overtakes every reader that arrived after it queued.
  EXPECT_LT(pos("w"), pos("r2"));
  EXPECT_LT(pos("w"), pos("r3"));
}

TEST_F(RwLockTest, WritersHandOffInArrivalOrder) {
  RwLock rw(sched_);
  std::vector<int> order;
  for (int i = 0; i < 3; ++i) {
    mth::ThreadAttrs a;
    a.bind_core = i;
    sched_.spawn([&, i] {
      sched_.charge_current(sim::microseconds(2) * (i + 1));
      WriteGuard g(rw);
      sched_.work(sim::microseconds(10));
      order.push_back(i);
    }, a);
  }
  engine_.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

}  // namespace
}  // namespace pm2::sync
