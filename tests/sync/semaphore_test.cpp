#include "sync/semaphore.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace pm2::sync {
namespace {

class SemaphoreTest : public ::testing::Test {
 protected:
  sim::Engine engine_;
  mach::Machine machine_{engine_, "node0", mach::CacheTopology::quad_core(),
                         mach::CostBook::xeon_quad()};
  mth::Scheduler sched_{machine_};
};

TEST_F(SemaphoreTest, InitialValueConsumable) {
  Semaphore sem(sched_, 2);
  int got = 0;
  sched_.spawn([&] {
    sem.acquire();
    sem.acquire();
    got = 2;
  });
  engine_.run();
  EXPECT_EQ(got, 2);
  EXPECT_EQ(sem.value(), 0);
}

TEST_F(SemaphoreTest, AcquireBlocksUntilRelease) {
  Semaphore sem(sched_);
  sim::Time acquired_at = -1;
  sched_.spawn([&] {
    sem.acquire();
    acquired_at = engine_.now();
  });
  sched_.spawn([&] {
    sched_.work(sim::microseconds(10));
    sem.release();
  });
  engine_.run();
  EXPECT_GE(acquired_at, sim::microseconds(10));
  EXPECT_EQ(sem.blocked_acquires(), 1u);
}

TEST_F(SemaphoreTest, BlockedAcquireCostsTwoContextSwitches) {
  // Fig. 7's ~750 ns: switch out + switch in.
  Semaphore sem(sched_);
  mth::ThreadAttrs a0;
  a0.bind_core = 0;
  sim::Time released_at = 0, acquired_at = 0;
  sched_.spawn([&] {
    sem.acquire();
    acquired_at = engine_.now();
  }, a0);
  mth::ThreadAttrs a1;
  a1.bind_core = 1;
  sched_.spawn([&] {
    sched_.work(sim::microseconds(10));
    released_at = engine_.now();
    sem.release();
  }, a1);
  engine_.run();
  // Wake-side switch-in (375) dominates; there may also be a line transfer.
  const sim::Time delta = acquired_at - released_at;
  EXPECT_GE(delta, machine_.costs().context_switch);
  EXPECT_LE(delta, machine_.costs().context_switch + 1000);
}

TEST_F(SemaphoreTest, ReleaseFromEngineContextWorks) {
  Semaphore sem(sched_);
  bool done = false;
  sched_.spawn([&] {
    sem.acquire();
    done = true;
  });
  engine_.schedule_at(sim::microseconds(5), [&] { sem.release(); });
  engine_.run();
  EXPECT_TRUE(done);
}

TEST_F(SemaphoreTest, FifoOrderAmongWaiters) {
  Semaphore sem(sched_);
  std::vector<int> order;
  for (int i = 0; i < 3; ++i) {
    // All waiters on one core: the wake order then maps 1:1 onto the
    // dispatch order, making grant FIFO-ness observable.
    mth::ThreadAttrs a;
    a.bind_core = 0;
    sched_.spawn([&, i] {
      sched_.charge_current(sim::microseconds(2) * (i + 1));
      sem.acquire();
      order.push_back(i);
    }, a);
  }
  mth::ThreadAttrs a3;
  a3.bind_core = 3;
  sched_.spawn([&] {
    sched_.work(sim::microseconds(20));
    for (int i = 0; i < 3; ++i) sem.release();
  }, a3);
  engine_.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST_F(SemaphoreTest, TryAcquireNeverBlocks) {
  Semaphore sem(sched_, 1);
  bool first = false, second = true;
  sched_.spawn([&] {
    first = sem.try_acquire();
    second = sem.try_acquire();
  });
  engine_.run();
  EXPECT_TRUE(first);
  EXPECT_FALSE(second);
}

TEST_F(SemaphoreTest, ReleaseDuringSwitchOutIsNotLost) {
  // The releaser fires while the acquirer is paying its switch-out charge:
  // the token must not be lost.
  Semaphore sem(sched_);
  bool done = false;
  mth::ThreadAttrs a0, a1;
  a0.bind_core = 0;
  a1.bind_core = 1;
  sched_.spawn([&] {
    sem.acquire();  // charge window: sem_fast_path + context_switch
    done = true;
  }, a0);
  sched_.spawn([&] {
    // Land the release inside the acquirer's blocking sequence.
    sched_.charge_current(400);
    sem.release();
  }, a1);
  engine_.run();
  EXPECT_TRUE(done);
}

TEST_F(SemaphoreTest, ProducerConsumerPipeline) {
  Semaphore items(sched_);
  Semaphore slots(sched_, 4);
  std::vector<int> consumed;
  int buffer[4];
  int head = 0, tail = 0;
  sched_.spawn([&] {
    for (int i = 0; i < 32; ++i) {
      slots.acquire();
      buffer[head++ % 4] = i;
      items.release();
      sched_.charge_current(50);
    }
  });
  sched_.spawn([&] {
    for (int i = 0; i < 32; ++i) {
      items.acquire();
      consumed.push_back(buffer[tail++ % 4]);
      slots.release();
      sched_.charge_current(80);
    }
  });
  engine_.run();
  ASSERT_EQ(consumed.size(), 32u);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(consumed[static_cast<size_t>(i)], i);
}

TEST_F(SemaphoreTest, QueuedWaiterNotOvertakenByLateArriver) {
  // Releases hand the token to the head of the queue directly (Mesa-style
  // grant), so a thread that calls acquire() after the release has landed
  // but before the waiter dispatched cannot barge ahead of the queue.
  Semaphore sem(sched_);
  std::vector<std::string> order;
  mth::ThreadAttrs a0, a1, a2;
  a0.bind_core = 0;
  a1.bind_core = 1;
  a2.bind_core = 2;
  sched_.spawn([&] {
    sem.acquire();  // queues immediately (no tokens)
    order.push_back("queued");
  }, a0);
  sched_.spawn([&] {
    sched_.work(sim::microseconds(10));
    sem.release();
  }, a1);
  sched_.spawn([&] {
    // Arrives just after the release: must go behind the queued waiter.
    sched_.charge_current(sim::microseconds(10) + 100);
    sem.acquire();
    order.push_back("late");
  }, a2);
  sched_.spawn([&] {
    sched_.work(sim::microseconds(30));
    sem.release();  // second token, for whoever is still waiting
  }, a1);
  engine_.run();
  EXPECT_EQ(order, (std::vector<std::string>{"queued", "late"}));
}

}  // namespace
}  // namespace pm2::sync
