#include "sync/barrier.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace pm2::sync {
namespace {

class BarrierTest : public ::testing::Test {
 protected:
  sim::Engine engine_;
  mach::Machine machine_{engine_, "node0", mach::CacheTopology::quad_core(),
                         mach::CostBook::xeon_quad()};
  mth::Scheduler sched_{machine_};
};

TEST_F(BarrierTest, AllArriveBeforeAnyoneLeaves) {
  Barrier bar(sched_, 4);
  int arrived = 0;
  int min_seen = 100;
  for (int i = 0; i < 4; ++i) {
    sched_.spawn([&, i] {
      sched_.work(sim::microseconds(static_cast<std::int64_t>(i) * 10 + 1));
      ++arrived;
      bar.arrive_and_wait();
      min_seen = std::min(min_seen, arrived);
    });
  }
  engine_.run();
  EXPECT_EQ(min_seen, 4);
  EXPECT_EQ(bar.generation(), 1u);
}

TEST_F(BarrierTest, ReusableAcrossGenerations) {
  Barrier bar(sched_, 3);
  std::vector<int> phases;
  for (int i = 0; i < 3; ++i) {
    sched_.spawn([&, i] {
      for (int phase = 0; phase < 5; ++phase) {
        sched_.work(sim::microseconds(static_cast<std::int64_t>(i) + 1));
        bar.arrive_and_wait();
        if (i == 0) phases.push_back(phase);
      }
    });
  }
  engine_.run();
  EXPECT_EQ(phases, (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_EQ(bar.generation(), 5u);
}

TEST_F(BarrierTest, SinglePartyNeverBlocks) {
  Barrier bar(sched_, 1);
  sched_.spawn([&] {
    for (int i = 0; i < 10; ++i) bar.arrive_and_wait();
  });
  engine_.run();
  EXPECT_EQ(bar.generation(), 10u);
}

TEST_F(BarrierTest, BadPartiesThrows) {
  EXPECT_THROW(Barrier(sched_, 0), std::invalid_argument);
}

TEST_F(BarrierTest, LastArriverReleasesOthersPromptly) {
  Barrier bar(sched_, 2);
  sim::Time released = 0;
  mth::ThreadAttrs a0, a1;
  a0.bind_core = 0;
  a1.bind_core = 1;
  sched_.spawn([&] {
    bar.arrive_and_wait();
    released = engine_.now();
  }, a0);
  sched_.spawn([&] {
    sched_.work(sim::microseconds(30));
    bar.arrive_and_wait();
  }, a1);
  engine_.run();
  EXPECT_GE(released, sim::microseconds(30));
  EXPECT_LE(released, sim::microseconds(32));
}

TEST_F(BarrierTest, GenerationsStayIsolatedWhenArrivalOrderFlips) {
  // Reverse the stagger every phase so a different thread is last to arrive
  // each generation; nobody may enter generation g+1 while a peer is still
  // inside generation g, and per-generation arrival counts stay exact.
  constexpr int kParties = 3;
  constexpr int kPhases = 6;
  Barrier bar(sched_, kParties);
  int arrived[kPhases] = {};
  int in_phase[kParties] = {};
  int max_skew = 0;
  for (int i = 0; i < kParties; ++i) {
    mth::ThreadAttrs a;
    a.bind_core = i;
    sched_.spawn([&, i] {
      for (int phase = 0; phase < kPhases; ++phase) {
        const int slot = (phase % 2 == 0) ? i : (kParties - 1 - i);
        sched_.work(sim::microseconds(static_cast<std::int64_t>(slot) + 1));
        ++arrived[phase];
        in_phase[i] = phase;
        for (int j = 0; j < kParties; ++j) {
          max_skew = std::max(max_skew, in_phase[i] - in_phase[j]);
        }
        bar.arrive_and_wait();
      }
    }, a);
  }
  engine_.run();
  for (int phase = 0; phase < kPhases; ++phase) {
    EXPECT_EQ(arrived[phase], kParties) << "phase " << phase;
  }
  // At any arrival, peers are at most one generation behind (they may not
  // have re-arrived yet) and never ahead without us having left.
  EXPECT_LE(max_skew, 1);
  EXPECT_EQ(bar.generation(), static_cast<unsigned>(kPhases));
}

}  // namespace
}  // namespace pm2::sync
