#include "sync/spinlock.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace pm2::sync {
namespace {

class SpinLockTest : public ::testing::Test {
 protected:
  sim::Engine engine_;
  mach::Machine machine_{engine_, "node0", mach::CacheTopology::quad_core(),
                         mach::CostBook::xeon_quad()};
  mth::Scheduler sched_{machine_};
};

TEST_F(SpinLockTest, UncontendedCycleCosts70ns) {
  // The paper's Sec. 3.1 measurement: one acquire/release cycle = 70 ns.
  SpinLock lock(sched_);
  sim::Time cycle = -1;
  mth::ThreadAttrs a;
  a.bind_core = 0;
  sched_.spawn([&] {
    lock.lock();  // first cycle warms the cache line
    lock.unlock();
    const sim::Time before = engine_.now();
    lock.lock();
    lock.unlock();
    cycle = engine_.now() - before;
  }, a);
  engine_.run();
  EXPECT_EQ(cycle, 70);
}

TEST_F(SpinLockTest, MutualExclusionUnderContention) {
  SpinLock lock(sched_);
  int in_section = 0;
  int max_in_section = 0;
  long counter = 0;
  for (int i = 0; i < 4; ++i) {
    mth::ThreadAttrs a;
    a.bind_core = i;
    sched_.spawn([&] {
      for (int k = 0; k < 50; ++k) {
        lock.lock();
        ++in_section;
        max_in_section = std::max(max_in_section, in_section);
        sched_.charge_current(100);  // hold the lock for a while
        ++counter;
        --in_section;
        lock.unlock();
        sched_.charge_current(50);
      }
    }, a);
  }
  engine_.run();
  EXPECT_EQ(max_in_section, 1);
  EXPECT_EQ(counter, 200);
  EXPECT_GT(lock.contentions(), 0u);
}

TEST_F(SpinLockTest, ContendedHandoffIsFifo) {
  SpinLock lock(sched_);
  std::vector<int> order;
  mth::ThreadAttrs a0;
  a0.bind_core = 0;
  sched_.spawn([&] {
    lock.lock();
    sched_.charge_current(sim::microseconds(10));  // let others pile up
    lock.unlock();
  }, a0);
  for (int i = 1; i <= 3; ++i) {
    mth::ThreadAttrs a;
    a.bind_core = i;
    sched_.spawn([&, i] {
      // Stagger arrivals far enough apart that cache-line transfer costs
      // (up to 600 ns) cannot reorder them.
      sched_.charge_current(sim::microseconds(2) * i);
      lock.lock();
      order.push_back(i);
      lock.unlock();
    }, a);
  }
  engine_.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST_F(SpinLockTest, TryLockFailsWhenHeld) {
  SpinLock lock(sched_);
  mth::ThreadAttrs a0, a1;
  a0.bind_core = 0;
  a1.bind_core = 1;
  sched_.spawn([&] {
    lock.lock();
    sched_.charge_current(sim::microseconds(1));
    lock.unlock();
  }, a0);
  bool first_try = true, second_try = false;
  sched_.spawn([&] {
    sched_.charge_current(200);  // while the lock is held
    first_try = lock.try_lock();
    sched_.charge_current(sim::microseconds(2));  // after release
    second_try = lock.try_lock();
    if (second_try) lock.unlock();
  }, a1);
  engine_.run();
  EXPECT_FALSE(first_try);
  EXPECT_TRUE(second_try);
}

TEST_F(SpinLockTest, CrossCoreAcquirePaysLineTransfer) {
  SpinLock lock(sched_);
  sim::Time local_cycle = 0, remote_cycle = 0;
  mth::ThreadAttrs a0;
  a0.bind_core = 0;
  mth::Thread* t0 = sched_.spawn([&] {
    lock.lock();
    lock.unlock();
    sim::Time before = engine_.now();
    lock.lock();
    lock.unlock();
    local_cycle = engine_.now() - before;
  }, a0);
  mth::ThreadAttrs a2;
  a2.bind_core = 2;  // no shared cache with core 0
  sched_.spawn([&] {
    sched_.join(t0);
    const sim::Time before = engine_.now();
    lock.lock();
    lock.unlock();
    remote_cycle = engine_.now() - before;
  }, a2);
  engine_.run();
  EXPECT_EQ(local_cycle, 70);
  EXPECT_EQ(remote_cycle, 70 + machine_.costs().line_same_chip);
}

TEST_F(SpinLockTest, SpinnerOccupiesItsCore) {
  SpinLock lock(sched_);
  mth::ThreadAttrs a0, a1;
  a0.bind_core = 0;
  a1.bind_core = 1;
  sched_.spawn([&] {
    lock.lock();
    sched_.charge_current(sim::microseconds(5));
    lock.unlock();
  }, a0);
  sched_.spawn([&] {
    sched_.charge_current(100);
    lock.lock();  // spins ~5 us
    lock.unlock();
  }, a1);
  engine_.run();
  // Core 1 was busy (spinning) for most of the 5 us wait.
  EXPECT_GT(sched_.core_busy_time(1), sim::microseconds(4));
}

TEST_F(SpinLockTest, StatsCountAcquisitions) {
  SpinLock lock(sched_);
  sched_.spawn([&] {
    for (int i = 0; i < 10; ++i) {
      lock.lock();
      lock.unlock();
    }
  });
  engine_.run();
  EXPECT_EQ(lock.acquisitions(), 10u);
  EXPECT_EQ(lock.contentions(), 0u);
}

}  // namespace
}  // namespace pm2::sync
