#include "simthread/exec_context.hpp"

#include <gtest/gtest.h>

#include "simthread/scheduler.hpp"

namespace pm2::mth {
namespace {

class ExecContextTest : public ::testing::Test {
 protected:
  sim::Engine engine_;
  mach::Machine machine_{engine_, "n", mach::CacheTopology::quad_core(),
                         mach::CostBook::xeon_quad()};
  Scheduler sched_{machine_};
};

TEST_F(ExecContextTest, NoContextOutsideExecution) {
  EXPECT_EQ(ExecContext::current_or_null(), nullptr);
}

TEST_F(ExecContextTest, ThreadContextActiveInsideThread) {
  bool checked = false;
  sched_.spawn([&] {
    auto& ctx = ExecContext::current();
    EXPECT_TRUE(ctx.can_block());
    EXPECT_EQ(ctx.core(), sched_.current_thread()->core());
    EXPECT_EQ(&ctx.machine(), &machine_);
    checked = true;
  });
  engine_.run();
  EXPECT_TRUE(checked);
}

TEST_F(ExecContextTest, ThreadChargeAdvancesClock) {
  sim::Time delta = -1;
  sched_.spawn([&] {
    auto& ctx = ExecContext::current();
    const sim::Time t0 = engine_.now();
    ctx.charge(1234);
    delta = engine_.now() - t0;
  });
  engine_.run();
  EXPECT_EQ(delta, 1234);
}

TEST_F(ExecContextTest, HookContextAccumulatesWithoutClockAdvance) {
  HookContext hctx(machine_, 2);
  EXPECT_FALSE(hctx.can_block());
  EXPECT_EQ(hctx.core(), 2);
  const sim::Time consumed = hctx.run([&] {
    ExecContext::current().charge(100);
    ExecContext::current().charge(250);
  });
  EXPECT_EQ(consumed, 350);
  EXPECT_EQ(hctx.consumed(), 350);
  EXPECT_EQ(engine_.now(), 0);  // the clock did not move
  hctx.reset();
  EXPECT_EQ(hctx.consumed(), 0);
}

TEST_F(ExecContextTest, HookActivationNestsAndRestores) {
  HookContext outer(machine_, 0);
  HookContext inner(machine_, 1);
  outer.run([&] {
    EXPECT_EQ(ExecContext::current_or_null(), &outer);
    inner.run([&] { EXPECT_EQ(ExecContext::current_or_null(), &inner); });
    EXPECT_EQ(ExecContext::current_or_null(), &outer);
  });
  EXPECT_EQ(ExecContext::current_or_null(), nullptr);
}

TEST_F(ExecContextTest, TouchChargesLineTransfer) {
  mach::CacheLine line;
  machine_.touch_line(line, 3);  // owned by core 3
  HookContext hctx(machine_, 0);
  hctx.run([&] { ExecContext::current().touch(line); });
  EXPECT_EQ(hctx.consumed(), machine_.costs().line_same_chip);  // 3 -> 0
  EXPECT_EQ(line.owner_core, 0);
}

TEST_F(ExecContextTest, ThreadTouchMovesLineAndCharges) {
  mach::CacheLine line;
  sim::Time cost = -1;
  mth::ThreadAttrs a;
  a.bind_core = 1;
  sched_.spawn([&] {
    auto& ctx = ExecContext::current();
    ctx.touch(line);  // first touch: free
    const sim::Time t0 = engine_.now();
    ctx.touch(line);  // same core: free
    cost = engine_.now() - t0;
  }, a);
  engine_.run();
  EXPECT_EQ(cost, 0);
  EXPECT_EQ(line.owner_core, 1);
}

}  // namespace
}  // namespace pm2::mth
