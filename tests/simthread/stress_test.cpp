// Randomized scheduler stress: many threads mixing work, yields, sleeps,
// joins and spawns across seeds; invariants checked at the end.
#include <gtest/gtest.h>

#include "simcore/random.hpp"
#include "simthread/scheduler.hpp"
#include "sync/mutex.hpp"

namespace pm2::mth {
namespace {

class SchedulerStress : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SchedulerStress, RandomMixCompletes) {
  sim::Engine engine;
  mach::Machine machine(engine, "n", mach::CacheTopology::quad_core(),
                        mach::CostBook::xeon_quad());
  Scheduler sched(machine);
  sim::Rng seed_rng(GetParam());

  int completed = 0;
  std::vector<Thread*> first_wave;
  constexpr int kThreads = 24;

  for (int i = 0; i < kThreads; ++i) {
    const std::uint64_t tseed = seed_rng.next_u64();
    Thread* t = sched.spawn([&sched, &engine, &completed, tseed] {
      sim::Rng rng(tseed);
      for (int op = 0; op < 30; ++op) {
        switch (rng.uniform_int(0, 3)) {
          case 0:
            sched.work(rng.uniform_int(10, 5000));
            break;
          case 1:
            sched.yield();
            break;
          case 2:
            sched.sleep_for(rng.uniform_int(100, 20000));
            break;
          case 3:
            sched.charge_current(rng.uniform_int(1, 500));
            break;
        }
      }
      ++completed;
    });
    first_wave.push_back(t);
  }

  // A joiner thread waits for everyone, then spawns a second wave.
  int second_wave_done = 0;
  sched.spawn([&] {
    for (Thread* t : first_wave) sched.join(t);
    EXPECT_EQ(completed, kThreads);
    for (int i = 0; i < 8; ++i) {
      sched.spawn([&sched, &second_wave_done] {
        sched.work(1000);
        ++second_wave_done;
      });
    }
  });

  engine.run();
  EXPECT_EQ(completed, kThreads);
  EXPECT_EQ(second_wave_done, 8);
  EXPECT_EQ(sched.live_threads(), 0);
  // Virtual busy time must be conserved: total cpu across threads equals
  // the sum of core busy times.
  sim::Time busy = 0;
  for (int c = 0; c < sched.num_cores(); ++c) busy += sched.core_busy_time(c);
  EXPECT_GT(busy, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulerStress,
                         ::testing::Values(101, 202, 303, 404));

TEST(SchedulerStressMutex, HeavyContentionConserves) {
  sim::Engine engine;
  mach::Machine machine(engine, "n", mach::CacheTopology::quad_core(),
                        mach::CostBook::xeon_quad());
  Scheduler sched(machine);
  sync::Mutex m(sched);
  long counter = 0;
  constexpr int kThreads = 10;
  constexpr int kIncrements = 40;
  for (int i = 0; i < kThreads; ++i) {
    sched.spawn([&] {
      for (int k = 0; k < kIncrements; ++k) {
        sync::MutexGuard g(m);
        const long snapshot = counter;
        sched.charge_current(137);  // widen the race window
        counter = snapshot + 1;
      }
    });
  }
  engine.run();
  EXPECT_EQ(counter, kThreads * kIncrements);
}

}  // namespace
}  // namespace pm2::mth
