#include <gtest/gtest.h>

#include "simmachine/machine.hpp"
#include "simthread/scheduler.hpp"

namespace pm2::mth {
namespace {

class HooksTest : public ::testing::Test {
 protected:
  sim::Engine engine_;
  mach::Machine machine_{engine_, "node0", mach::CacheTopology::quad_core(),
                         mach::CostBook::xeon_quad()};
  Scheduler sched_{machine_};
};

TEST_F(HooksTest, IdleHookRunsOnIdleCores) {
  int polls = 0;
  bool want = true;
  sched_.add_idle_hook(Hook{
      .run = [&](HookContext& ctx) {
        ++polls;
        ctx.charge(100);
        if (polls >= 10) want = false;
      },
      .want = [&](int) { return want; },
  });
  // One thread busy on core 0; cores 1..3 idle and should poll.
  sched_.spawn([&] { sched_.work(sim::microseconds(5)); });
  engine_.run();
  EXPECT_GE(polls, 10);
}

TEST_F(HooksTest, IdleHookNotRunWithoutWant) {
  int polls = 0;
  sched_.add_idle_hook(Hook{
      .run = [&](HookContext&) { ++polls; },
      .want = [](int) { return false; },
  });
  sched_.spawn([&] { sched_.work(sim::microseconds(5)); });
  engine_.run();
  EXPECT_EQ(polls, 0);
}

TEST_F(HooksTest, IdleHookStopsWhenAllThreadsFinish) {
  // want() stays true: the idle loop must still terminate once no thread
  // remains, otherwise the engine would never drain.
  int polls = 0;
  sched_.add_idle_hook(Hook{
      .run = [&](HookContext& ctx) {
        ++polls;
        ctx.charge(50);
      },
      .want = [](int) { return true; },
  });
  sched_.spawn([&] { sched_.work(sim::microseconds(2)); });
  engine_.run();  // must terminate
  EXPECT_GT(polls, 0);
}

TEST_F(HooksTest, SwitchHookFiresOnContextSwitch) {
  int switches_seen = 0;
  sched_.add_switch_hook(Hook{
      .run = [&](HookContext& ctx) {
        ++switches_seen;
        ctx.charge(10);
      },
      .want = nullptr,
  });
  ThreadAttrs a;
  a.bind_core = 0;
  sched_.spawn([&] { sched_.yield(); }, a);
  sched_.spawn([&] { sched_.yield(); }, a);
  engine_.run();
  EXPECT_GE(switches_seen, 2);
}

TEST_F(HooksTest, TimerHookFiresDuringLongWork) {
  int ticks = 0;
  sched_.add_timer_hook(Hook{
      .run = [&](HookContext& ctx) {
        ++ticks;
        ctx.charge(100);
      },
      .want = nullptr,
  });
  sched_.spawn([&] { sched_.work(sim::milliseconds(10)); });
  engine_.run();
  // 10 ms of work at a 1 ms tick: ~10 ticks (first tick after 1 ms).
  EXPECT_GE(ticks, 8);
  EXPECT_LE(ticks, 12);
}

TEST_F(HooksTest, TimerHookCostDelaysThread) {
  sched_.add_timer_hook(Hook{
      .run = [](HookContext& ctx) { ctx.charge(sim::microseconds(10)); },
      .want = nullptr,
  });
  sim::Time end = 0;
  sched_.spawn([&] {
    sched_.work(sim::milliseconds(5));
    end = engine_.now();
  });
  engine_.run();
  // 5 ticks x 10 us of hook work stolen from the thread.
  EXPECT_GE(end, sim::milliseconds(5) + 4 * sim::microseconds(10));
}

TEST_F(HooksTest, HookWakeIsDelayedByAccruedCost) {
  Thread* blocked = nullptr;
  sim::Time woke_at = -1;
  blocked = sched_.spawn([&] {
    sched_.block_current();
    woke_at = engine_.now();
  });
  bool fired = false;
  sched_.add_idle_hook(Hook{
      .run = [&](HookContext& ctx) {
        if (fired) return;
        fired = true;
        ctx.charge(sim::microseconds(2));
        sched_.wake(blocked);  // wake visible only after the 2 us
      },
      .want = [&](int) { return !fired; },
  });
  // Keep one other thread alive so the world does not end early.
  sched_.spawn([&] { sched_.work(sim::microseconds(10)); });
  engine_.run();
  ASSERT_GE(woke_at, 0);
  EXPECT_GE(woke_at, sim::microseconds(2));
}

TEST_F(HooksTest, RemoveIdleHookStopsPolling) {
  int polls = 0;
  const int id = sched_.add_idle_hook(Hook{
      .run = [&](HookContext& ctx) {
        ++polls;
        ctx.charge(100);
      },
      .want = [](int) { return true; },
  });
  sched_.spawn([&] {
    sched_.work(sim::microseconds(5));
    sched_.remove_idle_hook(id);
    const int before = polls;
    sched_.work(sim::microseconds(5));
    EXPECT_EQ(polls, before);
  });
  engine_.run();
  EXPECT_GT(polls, 0);
}

TEST_F(HooksTest, NotifyIdleWorkReArmsIdleCores) {
  int polls = 0;
  bool want = false;
  sched_.add_idle_hook(Hook{
      .run = [&](HookContext& ctx) {
        ++polls;
        ctx.charge(100);
        want = false;  // one-shot
      },
      .want = [&](int) { return want; },
  });
  sched_.spawn([&] {
    sched_.work(sim::microseconds(2));
    EXPECT_EQ(polls, 0);
    want = true;
    sched_.notify_idle_work();
    sched_.work(sim::microseconds(2));
    EXPECT_GT(polls, 0);
  });
  engine_.run();
}

TEST_F(HooksTest, HookTimeAccountedPerCore) {
  bool want = true;
  sched_.add_idle_hook(Hook{
      .run = [&](HookContext& ctx) {
        ctx.charge(200);
        want = false;
      },
      .want = [&](int core) { return want && core == 3; },
  });
  sched_.spawn([&] { sched_.work(sim::microseconds(5)); });
  engine_.run();
  EXPECT_EQ(sched_.core_hook_time(3), 200);
  EXPECT_EQ(sched_.core_hook_time(1), 0);
}

}  // namespace
}  // namespace pm2::mth
