#include "simthread/fiber.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace pm2::mth {
namespace {

TEST(Fiber, RunsToCompletion) {
  int x = 0;
  Fiber f([&] { x = 42; });
  EXPECT_FALSE(f.finished());
  f.resume();
  EXPECT_TRUE(f.finished());
  EXPECT_EQ(x, 42);
}

TEST(Fiber, SuspendAndResume) {
  std::vector<int> order;
  Fiber* self = nullptr;
  Fiber f([&] {
    order.push_back(1);
    self->suspend();
    order.push_back(3);
    self->suspend();
    order.push_back(5);
  });
  self = &f;
  f.resume();
  order.push_back(2);
  f.resume();
  order.push_back(4);
  f.resume();
  EXPECT_TRUE(f.finished());
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4, 5}));
}

TEST(Fiber, CurrentTracksActiveFiber) {
  EXPECT_EQ(Fiber::current(), nullptr);
  Fiber* seen = reinterpret_cast<Fiber*>(1);
  Fiber f([&] { seen = Fiber::current(); });
  f.resume();
  EXPECT_EQ(seen, &f);
  EXPECT_EQ(Fiber::current(), nullptr);
}

TEST(Fiber, TwoFibersInterleave) {
  std::vector<int> order;
  Fiber *pa = nullptr, *pb = nullptr;
  Fiber a([&] {
    order.push_back(1);
    pa->suspend();
    order.push_back(3);
  });
  Fiber b([&] {
    order.push_back(2);
    pb->suspend();
    order.push_back(4);
  });
  pa = &a;
  pb = &b;
  a.resume();
  b.resume();
  a.resume();
  b.resume();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
}

TEST(Fiber, DeepStackUsage) {
  // Recursion deep enough to validate the stack actually works.
  std::function<int(int)> fib = [&](int n) -> int {
    return n < 2 ? n : fib(n - 1) + fib(n - 2);
  };
  int result = 0;
  Fiber f([&] { result = fib(18); }, 512 * 1024);
  f.resume();
  EXPECT_EQ(result, 2584);
}

TEST(Fiber, LocalStateSurvivesSuspension) {
  Fiber* self = nullptr;
  int out = 0;
  Fiber f([&] {
    int local = 7;
    self->suspend();
    local *= 6;
    out = local;
  });
  self = &f;
  f.resume();
  f.resume();
  EXPECT_EQ(out, 42);
}

}  // namespace
}  // namespace pm2::mth
