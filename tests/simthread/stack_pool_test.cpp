#include "simthread/stack_pool.hpp"

#include <gtest/gtest.h>

#include <utility>

#include "simthread/fiber.hpp"

namespace pm2::mth {
namespace {

TEST(StackPool, RoundsUpToGranule) {
  auto& pool = StackPool::instance();
  auto s = pool.acquire(1);
  EXPECT_EQ(s.size, StackPool::kGranule);
  auto s2 = pool.acquire(StackPool::kGranule + 1);
  EXPECT_EQ(s2.size, 2 * StackPool::kGranule);
  pool.release(std::move(s));
  pool.release(std::move(s2));
}

TEST(StackPool, ReleasedStackIsReused) {
  auto& pool = StackPool::instance();
  pool.trim();
  auto s = pool.acquire(256 * 1024);
  auto* mem = s.mem.get();
  pool.release(std::move(s));
  EXPECT_EQ(pool.pooled_bytes(), 256u * 1024u);
  const auto reuses_before = pool.reuses();
  auto s2 = pool.acquire(256 * 1024);
  EXPECT_EQ(s2.mem.get(), mem) << "should hand back the cached stack";
  EXPECT_EQ(pool.reuses(), reuses_before + 1);
  EXPECT_EQ(pool.pooled_bytes(), 0u);
  pool.release(std::move(s2));
}

TEST(StackPool, SizeClassesAreSeparate) {
  auto& pool = StackPool::instance();
  pool.trim();
  auto small = pool.acquire(StackPool::kGranule);
  pool.release(std::move(small));
  const auto fresh_before = pool.fresh_allocs();
  auto big = pool.acquire(4 * StackPool::kGranule);
  EXPECT_EQ(pool.fresh_allocs(), fresh_before + 1)
      << "a pooled small stack must not satisfy a bigger request";
  pool.release(std::move(big));
  pool.trim();
}

TEST(StackPool, TrimFreesCachedStacks) {
  auto& pool = StackPool::instance();
  auto s = pool.acquire(StackPool::kGranule);
  pool.release(std::move(s));
  EXPECT_GT(pool.pooled_bytes(), 0u);
  pool.trim();
  EXPECT_EQ(pool.pooled_bytes(), 0u);
}

TEST(StackPool, FiberChurnRecyclesStacks) {
  auto& pool = StackPool::instance();
  pool.trim();
  {
    Fiber warm([] {}, 256 * 1024);
    warm.resume();
  }
  const auto fresh_before = pool.fresh_allocs();
  const auto reuses_before = pool.reuses();
  for (int i = 0; i < 100; ++i) {
    Fiber f([] {}, 256 * 1024);
    f.resume();
    EXPECT_TRUE(f.finished());
  }
  EXPECT_EQ(pool.fresh_allocs(), fresh_before)
      << "fiber churn should never allocate a fresh stack";
  EXPECT_EQ(pool.reuses(), reuses_before + 100);
}

}  // namespace
}  // namespace pm2::mth
