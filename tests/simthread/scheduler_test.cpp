#include "simthread/scheduler.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "simmachine/machine.hpp"

namespace pm2::mth {
namespace {

class SchedulerTest : public ::testing::Test {
 protected:
  sim::Engine engine_;
  mach::Machine machine_{engine_, "node0", mach::CacheTopology::quad_core(),
                         mach::CostBook::xeon_quad()};
  Scheduler sched_{machine_};
};

TEST_F(SchedulerTest, SingleThreadRuns) {
  int ran = 0;
  sched_.spawn([&] { ran = 1; });
  engine_.run();
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(sched_.live_threads(), 0);
}

TEST_F(SchedulerTest, WorkAdvancesVirtualTime) {
  sim::Time end = -1;
  sched_.spawn([&] {
    sched_.work(sim::microseconds(10));
    end = engine_.now();
  });
  engine_.run();
  // First dispatch pays one context switch before the work itself.
  EXPECT_EQ(end, sim::microseconds(10) + machine_.costs().context_switch);
}

TEST_F(SchedulerTest, ThreadCpuTimeAccounted) {
  Thread* t = sched_.spawn([&] { sched_.work(sim::microseconds(3)); });
  engine_.run();
  EXPECT_EQ(t->cpu_time(), sim::microseconds(3));
  EXPECT_TRUE(t->finished());
}

TEST_F(SchedulerTest, BindingRespected) {
  std::vector<int> cores;
  for (int c : {2, 0, 3}) {
    ThreadAttrs attrs;
    attrs.bind_core = c;
    sched_.spawn([&cores, this] { cores.push_back(sched_.current_thread()->core()); },
                 attrs);
  }
  engine_.run();
  EXPECT_EQ(cores, (std::vector<int>{2, 0, 3}));
}

TEST_F(SchedulerTest, UnboundThreadsSpreadAcrossCores) {
  std::vector<int> cores;
  for (int i = 0; i < 4; ++i) {
    sched_.spawn([&cores, this] {
      cores.push_back(sched_.current_thread()->core());
      sched_.work(sim::microseconds(100));
    });
  }
  engine_.run();
  std::sort(cores.begin(), cores.end());
  EXPECT_EQ(cores, (std::vector<int>{0, 1, 2, 3}));
}

TEST_F(SchedulerTest, TwoThreadsOnOneCoreTimeshare) {
  ThreadAttrs a;
  a.bind_core = 0;
  sim::Time end1 = 0, end2 = 0;
  sched_.spawn([&] {
    sched_.work(sim::microseconds(300));
    end1 = engine_.now();
  }, a);
  sched_.spawn([&] {
    sched_.work(sim::microseconds(300));
    end2 = engine_.now();
  }, a);
  engine_.run();
  // Round-robin at 100 us slices: both finish within one slice of each
  // other, in the 600 us region, not serialized 300-then-600.
  EXPECT_GT(end1, sim::microseconds(450));
  EXPECT_GT(end2, sim::microseconds(450));
  EXPECT_GT(sched_.context_switches(), 4u);
}

TEST_F(SchedulerTest, SleepWakesAtRightTime) {
  sim::Time woke = -1;
  sched_.spawn([&] {
    sched_.sleep_for(sim::microseconds(50));
    woke = engine_.now();
  });
  engine_.run();
  // sleep 50 us, then a context switch to resume.
  EXPECT_GE(woke, sim::microseconds(50));
  EXPECT_LE(woke, sim::microseconds(51));
}

TEST_F(SchedulerTest, YieldRotatesRunqueue) {
  ThreadAttrs a;
  a.bind_core = 1;
  std::vector<int> order;
  sched_.spawn([&] {
    order.push_back(1);
    sched_.yield();
    order.push_back(3);
  }, a);
  sched_.spawn([&] {
    order.push_back(2);
    sched_.yield();
    order.push_back(4);
  }, a);
  engine_.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
}

TEST_F(SchedulerTest, JoinWaitsForTarget) {
  bool child_done = false;
  sim::Time join_time = -1;
  sched_.spawn([&] {
    Thread* child = sched_.spawn([&] {
      sched_.work(sim::microseconds(20));
      child_done = true;
    });
    sched_.join(child);
    EXPECT_TRUE(child_done);
    join_time = engine_.now();
  });
  engine_.run();
  EXPECT_GE(join_time, sim::microseconds(20));
}

TEST_F(SchedulerTest, JoinFinishedThreadReturnsImmediately) {
  sched_.spawn([&] {
    Thread* child = sched_.spawn([] {});
    sched_.sleep_for(sim::microseconds(100));
    EXPECT_TRUE(child->finished());
    const sim::Time before = engine_.now();
    sched_.join(child);
    EXPECT_EQ(engine_.now(), before);
  });
  engine_.run();
}

TEST_F(SchedulerTest, BlockAndWake) {
  Thread* sleeper = nullptr;
  bool woke = false;
  sleeper = sched_.spawn([&] {
    sched_.block_current();
    woke = true;
  });
  sched_.spawn([&] {
    sched_.work(sim::microseconds(5));
    sched_.wake(sleeper);
  });
  engine_.run();
  EXPECT_TRUE(woke);
}

TEST_F(SchedulerTest, WakePermitPreventsLostWakeup) {
  // Wake a thread that is Running (mid-charge) and about to block: the
  // permit must make the subsequent block_current() a no-op.
  Thread* t = nullptr;
  bool done = false;
  t = sched_.spawn([&] {
    sched_.work(sim::microseconds(10));  // waker fires mid-work
    sched_.block_current();
    done = true;
  });
  sched_.spawn([&] {
    sched_.work(sim::microseconds(3));
    sched_.wake(t);  // t is Running on another core right now
  });
  engine_.run();
  EXPECT_TRUE(done);
}

TEST_F(SchedulerTest, MigrateMovesThread) {
  std::vector<int> cores;
  ThreadAttrs a;
  a.bind_core = 0;
  sched_.spawn([&] {
    cores.push_back(sched_.current_thread()->core());
    sched_.migrate_current(2);
    cores.push_back(sched_.current_thread()->core());
  }, a);
  engine_.run();
  EXPECT_EQ(cores, (std::vector<int>{0, 2}));
}

TEST_F(SchedulerTest, SpinParkUnparkAccountsBusyTime) {
  Thread* spinner = nullptr;
  sim::Time resumed_at = -1;
  spinner = sched_.spawn([&] {
    sched_.spin_park();
    resumed_at = engine_.now();
  });
  sched_.spawn([&] {
    sched_.work(sim::microseconds(7));
    sched_.spin_unpark(spinner, 20);
  });
  engine_.run();
  EXPECT_GT(resumed_at, sim::microseconds(7));
  // The spinner's whole park time counts as CPU (it was busy-waiting).
  EXPECT_GT(spinner->cpu_time(), sim::microseconds(6));
}

TEST_F(SchedulerTest, SpinUnparkIsIdempotent) {
  Thread* spinner = nullptr;
  int resumes = 0;
  spinner = sched_.spawn([&] {
    sched_.spin_park();
    ++resumes;
  });
  sched_.spawn([&] {
    sched_.work(sim::microseconds(1));
    sched_.spin_unpark(spinner, 0);
    sched_.spin_unpark(spinner, 0);
  });
  engine_.run();
  EXPECT_EQ(resumes, 1);
}

TEST_F(SchedulerTest, SpawnFromThreadChargesCost) {
  sim::Time spawn_cost = -1;
  sched_.spawn([&] {
    const sim::Time before = engine_.now();
    sched_.spawn([] {});
    spawn_cost = engine_.now() - before;
  });
  engine_.run();
  EXPECT_EQ(spawn_cost, machine_.costs().thread_spawn);
}

TEST_F(SchedulerTest, ManyThreadsAllComplete) {
  int done = 0;
  for (int i = 0; i < 64; ++i) {
    sched_.spawn([&done, this, i] {
      sched_.work(sim::nanoseconds(100 * (i + 1)));
      ++done;
    });
  }
  engine_.run();
  EXPECT_EQ(done, 64);
  EXPECT_EQ(sched_.live_threads(), 0);
}

TEST_F(SchedulerTest, DeterministicAcrossRuns) {
  auto run_once = [] {
    sim::Engine engine;
    mach::Machine machine(engine, "n", mach::CacheTopology::quad_core(),
                          mach::CostBook::xeon_quad());
    Scheduler sched(machine);
    std::vector<std::uint64_t> order;
    for (int i = 0; i < 8; ++i) {
      sched.spawn([&order, &sched, i] {
        sched.work(sim::nanoseconds(50 * (8 - i)));
        order.push_back(static_cast<std::uint64_t>(i));
      });
    }
    engine.run();
    return std::pair(order, engine.now());
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
}

TEST(SchedulerPartition, SpawnPinsToAttrsPartition) {
  sim::Engine engine;
  engine.configure_partitions(2, sim::microseconds(1));
  mach::Machine machine(engine, "node0", mach::CacheTopology::quad_core(),
                        mach::CostBook::xeon_quad());
  Scheduler sched(machine);  // built in partition 0
  int seen_default = -1, seen_pinned = -1, seen_foreign_caller = -1;
  sched.spawn([&] { seen_default = engine.current_partition(); });
  ThreadAttrs pinned;
  pinned.partition = 1;
  sched.spawn([&] { seen_pinned = engine.current_partition(); }, pinned);
  {
    // A spawn arriving from a foreign partition's scope (e.g. a stolen
    // progression pass) must still land in the scheduler's home partition,
    // not the caller's.
    sim::Engine::PartitionScope scope(engine, 1);
    sched.spawn([&] { seen_foreign_caller = engine.current_partition(); });
  }
  ThreadAttrs bad;
  bad.partition = 7;
  EXPECT_THROW(sched.spawn([] {}, bad), std::out_of_range);
  engine.run();
  EXPECT_EQ(seen_default, 0);
  EXPECT_EQ(seen_pinned, 1);
  EXPECT_EQ(seen_foreign_caller, 0);
}

}  // namespace
}  // namespace pm2::mth
