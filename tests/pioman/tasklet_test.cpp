#include "pioman/tasklet.hpp"

#include <gtest/gtest.h>

namespace pm2::piom {
namespace {

class TaskletTest : public ::testing::Test {
 protected:
  sim::Engine engine_;
  mach::Machine machine_{engine_, "node", mach::CacheTopology::quad_core(),
                         mach::CostBook::xeon_quad()};
  mth::Scheduler sched_{machine_};
  TaskletEngine tasklets_{sched_};
};

TEST_F(TaskletTest, RunsOnTargetCore) {
  int ran_on = -1;
  Tasklet t([&](mth::HookContext& ctx) { ran_on = ctx.core(); });
  sched_.spawn([&] {
    tasklets_.schedule(&t, 2);
    sched_.work(sim::microseconds(20));
  });
  engine_.run();
  EXPECT_EQ(ran_on, 2);
  EXPECT_EQ(t.runs(), 1u);
}

TEST_F(TaskletTest, DoubleScheduleIsNoop) {
  Tasklet t([](mth::HookContext&) {});
  sched_.spawn([&] {
    tasklets_.schedule(&t, 1);
    EXPECT_TRUE(t.scheduled());
    tasklets_.schedule(&t, 1);  // Linux semantics: already queued
    sched_.work(sim::microseconds(20));
  });
  engine_.run();
  EXPECT_EQ(t.runs(), 1u);
  EXPECT_FALSE(t.scheduled());
}

TEST_F(TaskletTest, ReschedulableAfterRun) {
  Tasklet t([](mth::HookContext&) {});
  sched_.spawn([&] {
    tasklets_.schedule(&t, 1);
    sched_.work(sim::microseconds(20));
    EXPECT_EQ(t.runs(), 1u);
    tasklets_.schedule(&t, 1);
    sched_.work(sim::microseconds(20));
    EXPECT_EQ(t.runs(), 2u);
  });
  engine_.run();
}

TEST_F(TaskletTest, SchedulingChargesTheCaller) {
  Tasklet t([](mth::HookContext&) {});
  sim::Time cost = -1;
  sched_.spawn([&] {
    const sim::Time t0 = engine_.now();
    tasklets_.schedule(&t, 1);
    cost = engine_.now() - t0;
    sched_.work(sim::microseconds(5));
  });
  engine_.run();
  EXPECT_GE(cost, machine_.costs().tasklet_schedule);
}

TEST_F(TaskletTest, RunsViaTimerHookOnBusyCore) {
  // All four cores busy: the tasklet still runs, via the timer tick.
  int ran_on = -1;
  sim::Time ran_at = -1;
  Tasklet t([&](mth::HookContext& ctx) {
    ran_on = ctx.core();
    ran_at = engine_.now();
  });
  for (int c = 0; c < 4; ++c) {
    mth::ThreadAttrs a;
    a.bind_core = c;
    sched_.spawn([&, c] {
      if (c == 0) tasklets_.schedule(&t, 3);
      sched_.work(sim::milliseconds(3));
    }, a);
  }
  engine_.run();
  EXPECT_EQ(ran_on, 3);
  // Executed within roughly one timer tick (1 ms), not immediately.
  EXPECT_GT(ran_at, sim::microseconds(100));
  EXPECT_LE(ran_at, sim::milliseconds(2));
}

TEST_F(TaskletTest, ManyTaskletsAllExecute) {
  std::vector<std::unique_ptr<Tasklet>> ts;
  int executed = 0;
  for (int i = 0; i < 32; ++i) {
    ts.push_back(std::make_unique<Tasklet>(
        [&executed](mth::HookContext&) { ++executed; }));
  }
  sched_.spawn([&] {
    for (int i = 0; i < 32; ++i) {
      tasklets_.schedule(ts[static_cast<std::size_t>(i)].get(), 1 + i % 3);
    }
    sched_.work(sim::microseconds(100));
  });
  engine_.run();
  EXPECT_EQ(executed, 32);
  EXPECT_EQ(tasklets_.executed(), 32u);
}

TEST_F(TaskletTest, TaskletMaySpawnWork) {
  // A tasklet wakes a blocked thread (the offload completion pattern).
  mth::Thread* waiter = nullptr;
  bool woke = false;
  waiter = sched_.spawn([&] {
    sched_.block_current();
    woke = true;
  });
  Tasklet t([&](mth::HookContext&) { sched_.wake(waiter); });
  sched_.spawn([&] {
    sched_.work(sim::microseconds(2));
    tasklets_.schedule(&t, 2);
    sched_.work(sim::microseconds(20));
  });
  engine_.run();
  EXPECT_TRUE(woke);
}

}  // namespace
}  // namespace pm2::piom
