#include "pioman/server.hpp"

#include <gtest/gtest.h>

namespace pm2::piom {
namespace {

/// Scriptable poll source for testing the server.
class FakeSource : public PollSource {
 public:
  explicit FakeSource(sim::Time cost = 100) : cost_(cost) {}

  bool poll(mth::ExecContext& ctx) override {
    ++polls_;
    last_core_ = ctx.core();
    ctx.charge(cost_);
    if (work_ > 0) {
      --work_;
      return true;
    }
    return false;
  }
  bool pending() const override { return work_ > 0; }
  int preferred_core() const override { return preferred_core_; }

  int polls_ = 0;
  int work_ = 0;
  int last_core_ = -1;
  int preferred_core_ = -1;
  sim::Time cost_;
};

class ServerTest : public ::testing::Test {
 protected:
  sim::Engine engine_;
  mach::Machine machine_{engine_, "node", mach::CacheTopology::quad_core(),
                         mach::CostBook::xeon_quad()};
  mth::Scheduler sched_{machine_};
  Server server_{sched_};
};

TEST_F(ServerTest, PollOncePollsRegisteredSources) {
  FakeSource src;
  src.work_ = 1;
  server_.register_source(&src);
  bool progressed = false;
  sched_.spawn([&] {
    progressed = server_.poll_once(mth::ExecContext::current());
  });
  engine_.run();
  EXPECT_TRUE(progressed);
  EXPECT_EQ(src.polls_, 1);
  EXPECT_EQ(server_.passes(), 1u);
}

TEST_F(ServerTest, PassChargesListManagement) {
  FakeSource src(0);  // source itself free: isolate the server cost
  server_.register_source(&src);
  sim::Time cost = -1;
  sched_.spawn([&] {
    const sim::Time t0 = engine_.now();
    server_.poll_once(mth::ExecContext::current());
    cost = engine_.now() - t0;
  });
  engine_.run();
  // pioman_pass + internal try-lock cycle; no completion (no progress).
  EXPECT_GE(cost, machine_.costs().pioman_pass);
  EXPECT_LE(cost, machine_.costs().pioman_pass + 200);
}

TEST_F(ServerTest, CompletionChargesExtra) {
  FakeSource src(0);
  server_.register_source(&src);
  sim::Time idle_cost = 0, completion_cost = 0;
  sched_.spawn([&] {
    auto& ctx = mth::ExecContext::current();
    sim::Time t0 = engine_.now();
    server_.poll_once(ctx);  // no work
    idle_cost = engine_.now() - t0;
    src.work_ = 1;
    t0 = engine_.now();
    server_.poll_once(ctx);  // completes one request
    completion_cost = engine_.now() - t0;
  });
  engine_.run();
  EXPECT_EQ(completion_cost - idle_cost, machine_.costs().pioman_completion);
}

TEST_F(ServerTest, HasPendingHonoursPollCoreBinding) {
  FakeSource src;
  src.work_ = 1;
  server_.register_source(&src);
  EXPECT_TRUE(server_.has_pending(0));
  EXPECT_TRUE(server_.has_pending(2));
  server_.bind_polling(1);
  EXPECT_TRUE(server_.has_pending(1));
  EXPECT_FALSE(server_.has_pending(0));
}

TEST_F(ServerTest, SourcePreferredCoreRespected) {
  FakeSource src;
  src.work_ = 1;
  src.preferred_core_ = 3;
  server_.register_source(&src);
  EXPECT_FALSE(server_.has_pending(0));
  EXPECT_TRUE(server_.has_pending(3));
  sched_.spawn([&] {
    // A pass from core 0 must skip the core-3-only source.
    server_.poll_once(mth::ExecContext::current());
    EXPECT_EQ(src.polls_, 0);
  }, mth::ThreadAttrs{.name = "t", .bind_core = 0, .stack_size = 64 * 1024});
  engine_.run();
}

TEST_F(ServerTest, HooksPollIdleCores) {
  FakeSource src;
  src.work_ = 5;
  server_.register_source(&src);
  server_.enable_hooks();
  EXPECT_TRUE(server_.hooks_enabled());
  sched_.spawn([&] { sched_.work(sim::microseconds(20)); });
  engine_.run();
  EXPECT_GE(src.polls_, 5);
  EXPECT_EQ(src.work_, 0);
}

TEST_F(ServerTest, RemoveHooksStopsPolling) {
  FakeSource src;
  src.work_ = 1000000;  // effectively endless
  server_.register_source(&src);
  server_.enable_hooks();
  sched_.spawn([&] {
    sched_.work(sim::microseconds(5));
    server_.remove_hooks();
    const int seen = src.polls_;
    sched_.work(sim::microseconds(5));
    EXPECT_EQ(src.polls_, seen);
  });
  engine_.run();
  EXPECT_FALSE(server_.hooks_enabled());
  src.work_ = 0;
}

TEST_F(ServerTest, UnregisterStopsSource) {
  FakeSource src;
  src.work_ = 1;
  server_.register_source(&src);
  server_.unregister_source(&src);
  sched_.spawn([&] {
    server_.poll_once(mth::ExecContext::current());
  });
  engine_.run();
  EXPECT_EQ(src.polls_, 0);
}

TEST_F(ServerTest, ConcurrentPassSkipsViaTryLock) {
  // A source that re-enters the server: the inner pass must be skipped
  // (the internal list lock is try-only), not deadlock.
  class Reentrant : public PollSource {
   public:
    explicit Reentrant(Server& s) : server_(s) {}
    bool poll(mth::ExecContext& ctx) override {
      ++polls_;
      if (polls_ == 1) server_.poll_once(ctx);  // nested
      return false;
    }
    bool pending() const override { return false; }
    Server& server_;
    int polls_ = 0;
  };
  Reentrant src(server_);
  server_.register_source(&src);
  sched_.spawn([&] { server_.poll_once(mth::ExecContext::current()); });
  engine_.run();
  EXPECT_EQ(src.polls_, 1);
  EXPECT_EQ(server_.skipped_passes(), 1u);
}

}  // namespace
}  // namespace pm2::piom
