# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_simcore[1]_include.cmake")
include("/root/repo/build/tests/test_simmachine[1]_include.cmake")
include("/root/repo/build/tests/test_simthread[1]_include.cmake")
include("/root/repo/build/tests/test_sync[1]_include.cmake")
include("/root/repo/build/tests/test_nmad[1]_include.cmake")
include("/root/repo/build/tests/test_madmpi[1]_include.cmake")
include("/root/repo/build/tests/test_simnet[1]_include.cmake")
include("/root/repo/build/tests/test_pioman[1]_include.cmake")
include("/root/repo/build/tests/test_nmad_units[1]_include.cmake")
include("/root/repo/build/tests/test_figures[1]_include.cmake")
