# Empty dependencies file for test_nmad.
# This may be replaced when dependencies are built.
