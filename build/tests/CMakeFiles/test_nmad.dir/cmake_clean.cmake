file(REMOVE_RECURSE
  "CMakeFiles/test_nmad.dir/nmad/pingpong_test.cpp.o"
  "CMakeFiles/test_nmad.dir/nmad/pingpong_test.cpp.o.d"
  "CMakeFiles/test_nmad.dir/nmad/wire_format_test.cpp.o"
  "CMakeFiles/test_nmad.dir/nmad/wire_format_test.cpp.o.d"
  "test_nmad"
  "test_nmad.pdb"
  "test_nmad[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nmad.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
