
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/simcore/chrome_trace_test.cpp" "tests/CMakeFiles/test_simcore.dir/simcore/chrome_trace_test.cpp.o" "gcc" "tests/CMakeFiles/test_simcore.dir/simcore/chrome_trace_test.cpp.o.d"
  "/root/repo/tests/simcore/engine_test.cpp" "tests/CMakeFiles/test_simcore.dir/simcore/engine_test.cpp.o" "gcc" "tests/CMakeFiles/test_simcore.dir/simcore/engine_test.cpp.o.d"
  "/root/repo/tests/simcore/event_queue_fuzz_test.cpp" "tests/CMakeFiles/test_simcore.dir/simcore/event_queue_fuzz_test.cpp.o" "gcc" "tests/CMakeFiles/test_simcore.dir/simcore/event_queue_fuzz_test.cpp.o.d"
  "/root/repo/tests/simcore/event_queue_test.cpp" "tests/CMakeFiles/test_simcore.dir/simcore/event_queue_test.cpp.o" "gcc" "tests/CMakeFiles/test_simcore.dir/simcore/event_queue_test.cpp.o.d"
  "/root/repo/tests/simcore/random_test.cpp" "tests/CMakeFiles/test_simcore.dir/simcore/random_test.cpp.o" "gcc" "tests/CMakeFiles/test_simcore.dir/simcore/random_test.cpp.o.d"
  "/root/repo/tests/simcore/stats_test.cpp" "tests/CMakeFiles/test_simcore.dir/simcore/stats_test.cpp.o" "gcc" "tests/CMakeFiles/test_simcore.dir/simcore/stats_test.cpp.o.d"
  "/root/repo/tests/simcore/trace_test.cpp" "tests/CMakeFiles/test_simcore.dir/simcore/trace_test.cpp.o" "gcc" "tests/CMakeFiles/test_simcore.dir/simcore/trace_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/simcore/CMakeFiles/pm2_simcore.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
