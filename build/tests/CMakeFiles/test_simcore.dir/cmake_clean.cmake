file(REMOVE_RECURSE
  "CMakeFiles/test_simcore.dir/simcore/chrome_trace_test.cpp.o"
  "CMakeFiles/test_simcore.dir/simcore/chrome_trace_test.cpp.o.d"
  "CMakeFiles/test_simcore.dir/simcore/engine_test.cpp.o"
  "CMakeFiles/test_simcore.dir/simcore/engine_test.cpp.o.d"
  "CMakeFiles/test_simcore.dir/simcore/event_queue_fuzz_test.cpp.o"
  "CMakeFiles/test_simcore.dir/simcore/event_queue_fuzz_test.cpp.o.d"
  "CMakeFiles/test_simcore.dir/simcore/event_queue_test.cpp.o"
  "CMakeFiles/test_simcore.dir/simcore/event_queue_test.cpp.o.d"
  "CMakeFiles/test_simcore.dir/simcore/random_test.cpp.o"
  "CMakeFiles/test_simcore.dir/simcore/random_test.cpp.o.d"
  "CMakeFiles/test_simcore.dir/simcore/stats_test.cpp.o"
  "CMakeFiles/test_simcore.dir/simcore/stats_test.cpp.o.d"
  "CMakeFiles/test_simcore.dir/simcore/trace_test.cpp.o"
  "CMakeFiles/test_simcore.dir/simcore/trace_test.cpp.o.d"
  "test_simcore"
  "test_simcore.pdb"
  "test_simcore[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simcore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
