file(REMOVE_RECURSE
  "CMakeFiles/test_sync.dir/sync/barrier_test.cpp.o"
  "CMakeFiles/test_sync.dir/sync/barrier_test.cpp.o.d"
  "CMakeFiles/test_sync.dir/sync/completion_flag_test.cpp.o"
  "CMakeFiles/test_sync.dir/sync/completion_flag_test.cpp.o.d"
  "CMakeFiles/test_sync.dir/sync/mutex_test.cpp.o"
  "CMakeFiles/test_sync.dir/sync/mutex_test.cpp.o.d"
  "CMakeFiles/test_sync.dir/sync/rwlock_test.cpp.o"
  "CMakeFiles/test_sync.dir/sync/rwlock_test.cpp.o.d"
  "CMakeFiles/test_sync.dir/sync/semaphore_test.cpp.o"
  "CMakeFiles/test_sync.dir/sync/semaphore_test.cpp.o.d"
  "CMakeFiles/test_sync.dir/sync/spinlock_test.cpp.o"
  "CMakeFiles/test_sync.dir/sync/spinlock_test.cpp.o.d"
  "test_sync"
  "test_sync.pdb"
  "test_sync[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
