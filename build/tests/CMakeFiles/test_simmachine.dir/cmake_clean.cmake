file(REMOVE_RECURSE
  "CMakeFiles/test_simmachine.dir/simmachine/machine_test.cpp.o"
  "CMakeFiles/test_simmachine.dir/simmachine/machine_test.cpp.o.d"
  "CMakeFiles/test_simmachine.dir/simmachine/topology_test.cpp.o"
  "CMakeFiles/test_simmachine.dir/simmachine/topology_test.cpp.o.d"
  "test_simmachine"
  "test_simmachine.pdb"
  "test_simmachine[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simmachine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
