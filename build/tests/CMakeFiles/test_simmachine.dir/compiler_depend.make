# Empty compiler generated dependencies file for test_simmachine.
# This may be replaced when dependencies are built.
