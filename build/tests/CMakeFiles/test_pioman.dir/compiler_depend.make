# Empty compiler generated dependencies file for test_pioman.
# This may be replaced when dependencies are built.
