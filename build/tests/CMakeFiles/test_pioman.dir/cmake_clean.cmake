file(REMOVE_RECURSE
  "CMakeFiles/test_pioman.dir/pioman/server_test.cpp.o"
  "CMakeFiles/test_pioman.dir/pioman/server_test.cpp.o.d"
  "CMakeFiles/test_pioman.dir/pioman/tasklet_test.cpp.o"
  "CMakeFiles/test_pioman.dir/pioman/tasklet_test.cpp.o.d"
  "test_pioman"
  "test_pioman.pdb"
  "test_pioman[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pioman.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
