# Empty compiler generated dependencies file for test_simthread.
# This may be replaced when dependencies are built.
