
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/simthread/exec_context_test.cpp" "tests/CMakeFiles/test_simthread.dir/simthread/exec_context_test.cpp.o" "gcc" "tests/CMakeFiles/test_simthread.dir/simthread/exec_context_test.cpp.o.d"
  "/root/repo/tests/simthread/fiber_test.cpp" "tests/CMakeFiles/test_simthread.dir/simthread/fiber_test.cpp.o" "gcc" "tests/CMakeFiles/test_simthread.dir/simthread/fiber_test.cpp.o.d"
  "/root/repo/tests/simthread/hooks_test.cpp" "tests/CMakeFiles/test_simthread.dir/simthread/hooks_test.cpp.o" "gcc" "tests/CMakeFiles/test_simthread.dir/simthread/hooks_test.cpp.o.d"
  "/root/repo/tests/simthread/scheduler_test.cpp" "tests/CMakeFiles/test_simthread.dir/simthread/scheduler_test.cpp.o" "gcc" "tests/CMakeFiles/test_simthread.dir/simthread/scheduler_test.cpp.o.d"
  "/root/repo/tests/simthread/stress_test.cpp" "tests/CMakeFiles/test_simthread.dir/simthread/stress_test.cpp.o" "gcc" "tests/CMakeFiles/test_simthread.dir/simthread/stress_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sync/CMakeFiles/pm2_sync.dir/DependInfo.cmake"
  "/root/repo/build/src/simthread/CMakeFiles/pm2_simthread.dir/DependInfo.cmake"
  "/root/repo/build/src/simmachine/CMakeFiles/pm2_simmachine.dir/DependInfo.cmake"
  "/root/repo/build/src/simcore/CMakeFiles/pm2_simcore.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
