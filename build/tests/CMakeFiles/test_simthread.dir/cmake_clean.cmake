file(REMOVE_RECURSE
  "CMakeFiles/test_simthread.dir/simthread/exec_context_test.cpp.o"
  "CMakeFiles/test_simthread.dir/simthread/exec_context_test.cpp.o.d"
  "CMakeFiles/test_simthread.dir/simthread/fiber_test.cpp.o"
  "CMakeFiles/test_simthread.dir/simthread/fiber_test.cpp.o.d"
  "CMakeFiles/test_simthread.dir/simthread/hooks_test.cpp.o"
  "CMakeFiles/test_simthread.dir/simthread/hooks_test.cpp.o.d"
  "CMakeFiles/test_simthread.dir/simthread/scheduler_test.cpp.o"
  "CMakeFiles/test_simthread.dir/simthread/scheduler_test.cpp.o.d"
  "CMakeFiles/test_simthread.dir/simthread/stress_test.cpp.o"
  "CMakeFiles/test_simthread.dir/simthread/stress_test.cpp.o.d"
  "test_simthread"
  "test_simthread.pdb"
  "test_simthread[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simthread.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
