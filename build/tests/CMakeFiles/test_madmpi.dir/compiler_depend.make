# Empty compiler generated dependencies file for test_madmpi.
# This may be replaced when dependencies are built.
