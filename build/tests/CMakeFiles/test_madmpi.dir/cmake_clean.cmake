file(REMOVE_RECURSE
  "CMakeFiles/test_madmpi.dir/madmpi/madmpi_test.cpp.o"
  "CMakeFiles/test_madmpi.dir/madmpi/madmpi_test.cpp.o.d"
  "test_madmpi"
  "test_madmpi.pdb"
  "test_madmpi[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_madmpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
