
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/nmad/anytag_test.cpp" "tests/CMakeFiles/test_nmad_units.dir/nmad/anytag_test.cpp.o" "gcc" "tests/CMakeFiles/test_nmad_units.dir/nmad/anytag_test.cpp.o.d"
  "/root/repo/tests/nmad/core_misc_test.cpp" "tests/CMakeFiles/test_nmad_units.dir/nmad/core_misc_test.cpp.o" "gcc" "tests/CMakeFiles/test_nmad_units.dir/nmad/core_misc_test.cpp.o.d"
  "/root/repo/tests/nmad/failure_injection_test.cpp" "tests/CMakeFiles/test_nmad_units.dir/nmad/failure_injection_test.cpp.o" "gcc" "tests/CMakeFiles/test_nmad_units.dir/nmad/failure_injection_test.cpp.o.d"
  "/root/repo/tests/nmad/locking_test.cpp" "tests/CMakeFiles/test_nmad_units.dir/nmad/locking_test.cpp.o" "gcc" "tests/CMakeFiles/test_nmad_units.dir/nmad/locking_test.cpp.o.d"
  "/root/repo/tests/nmad/ordering_test.cpp" "tests/CMakeFiles/test_nmad_units.dir/nmad/ordering_test.cpp.o" "gcc" "tests/CMakeFiles/test_nmad_units.dir/nmad/ordering_test.cpp.o.d"
  "/root/repo/tests/nmad/oversubscription_test.cpp" "tests/CMakeFiles/test_nmad_units.dir/nmad/oversubscription_test.cpp.o" "gcc" "tests/CMakeFiles/test_nmad_units.dir/nmad/oversubscription_test.cpp.o.d"
  "/root/repo/tests/nmad/pack_test.cpp" "tests/CMakeFiles/test_nmad_units.dir/nmad/pack_test.cpp.o" "gcc" "tests/CMakeFiles/test_nmad_units.dir/nmad/pack_test.cpp.o.d"
  "/root/repo/tests/nmad/rendezvous_test.cpp" "tests/CMakeFiles/test_nmad_units.dir/nmad/rendezvous_test.cpp.o" "gcc" "tests/CMakeFiles/test_nmad_units.dir/nmad/rendezvous_test.cpp.o.d"
  "/root/repo/tests/nmad/strategy_test.cpp" "tests/CMakeFiles/test_nmad_units.dir/nmad/strategy_test.cpp.o" "gcc" "tests/CMakeFiles/test_nmad_units.dir/nmad/strategy_test.cpp.o.d"
  "/root/repo/tests/nmad/timeline_test.cpp" "tests/CMakeFiles/test_nmad_units.dir/nmad/timeline_test.cpp.o" "gcc" "tests/CMakeFiles/test_nmad_units.dir/nmad/timeline_test.cpp.o.d"
  "/root/repo/tests/nmad/wait_any_test.cpp" "tests/CMakeFiles/test_nmad_units.dir/nmad/wait_any_test.cpp.o" "gcc" "tests/CMakeFiles/test_nmad_units.dir/nmad/wait_any_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nmad/CMakeFiles/pm2_nmad.dir/DependInfo.cmake"
  "/root/repo/build/src/pioman/CMakeFiles/pm2_pioman.dir/DependInfo.cmake"
  "/root/repo/build/src/sync/CMakeFiles/pm2_sync.dir/DependInfo.cmake"
  "/root/repo/build/src/simnet/CMakeFiles/pm2_simnet.dir/DependInfo.cmake"
  "/root/repo/build/src/simthread/CMakeFiles/pm2_simthread.dir/DependInfo.cmake"
  "/root/repo/build/src/simmachine/CMakeFiles/pm2_simmachine.dir/DependInfo.cmake"
  "/root/repo/build/src/simcore/CMakeFiles/pm2_simcore.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
