# Empty dependencies file for test_nmad_units.
# This may be replaced when dependencies are built.
