file(REMOVE_RECURSE
  "CMakeFiles/test_nmad_units.dir/nmad/anytag_test.cpp.o"
  "CMakeFiles/test_nmad_units.dir/nmad/anytag_test.cpp.o.d"
  "CMakeFiles/test_nmad_units.dir/nmad/core_misc_test.cpp.o"
  "CMakeFiles/test_nmad_units.dir/nmad/core_misc_test.cpp.o.d"
  "CMakeFiles/test_nmad_units.dir/nmad/failure_injection_test.cpp.o"
  "CMakeFiles/test_nmad_units.dir/nmad/failure_injection_test.cpp.o.d"
  "CMakeFiles/test_nmad_units.dir/nmad/locking_test.cpp.o"
  "CMakeFiles/test_nmad_units.dir/nmad/locking_test.cpp.o.d"
  "CMakeFiles/test_nmad_units.dir/nmad/ordering_test.cpp.o"
  "CMakeFiles/test_nmad_units.dir/nmad/ordering_test.cpp.o.d"
  "CMakeFiles/test_nmad_units.dir/nmad/oversubscription_test.cpp.o"
  "CMakeFiles/test_nmad_units.dir/nmad/oversubscription_test.cpp.o.d"
  "CMakeFiles/test_nmad_units.dir/nmad/pack_test.cpp.o"
  "CMakeFiles/test_nmad_units.dir/nmad/pack_test.cpp.o.d"
  "CMakeFiles/test_nmad_units.dir/nmad/rendezvous_test.cpp.o"
  "CMakeFiles/test_nmad_units.dir/nmad/rendezvous_test.cpp.o.d"
  "CMakeFiles/test_nmad_units.dir/nmad/strategy_test.cpp.o"
  "CMakeFiles/test_nmad_units.dir/nmad/strategy_test.cpp.o.d"
  "CMakeFiles/test_nmad_units.dir/nmad/timeline_test.cpp.o"
  "CMakeFiles/test_nmad_units.dir/nmad/timeline_test.cpp.o.d"
  "CMakeFiles/test_nmad_units.dir/nmad/wait_any_test.cpp.o"
  "CMakeFiles/test_nmad_units.dir/nmad/wait_any_test.cpp.o.d"
  "test_nmad_units"
  "test_nmad_units.pdb"
  "test_nmad_units[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nmad_units.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
