
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/figures/figure_properties_test.cpp" "tests/CMakeFiles/test_figures.dir/figures/figure_properties_test.cpp.o" "gcc" "tests/CMakeFiles/test_figures.dir/figures/figure_properties_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/pm2_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/madmpi/CMakeFiles/pm2_madmpi.dir/DependInfo.cmake"
  "/root/repo/build/src/nmad/CMakeFiles/pm2_nmad.dir/DependInfo.cmake"
  "/root/repo/build/src/pioman/CMakeFiles/pm2_pioman.dir/DependInfo.cmake"
  "/root/repo/build/src/sync/CMakeFiles/pm2_sync.dir/DependInfo.cmake"
  "/root/repo/build/src/simnet/CMakeFiles/pm2_simnet.dir/DependInfo.cmake"
  "/root/repo/build/src/simthread/CMakeFiles/pm2_simthread.dir/DependInfo.cmake"
  "/root/repo/build/src/simmachine/CMakeFiles/pm2_simmachine.dir/DependInfo.cmake"
  "/root/repo/build/src/simcore/CMakeFiles/pm2_simcore.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
