file(REMOVE_RECURSE
  "libpm2_simnet.a"
)
