# Empty dependencies file for pm2_simnet.
# This may be replaced when dependencies are built.
