file(REMOVE_RECURSE
  "CMakeFiles/pm2_simnet.dir/nic.cpp.o"
  "CMakeFiles/pm2_simnet.dir/nic.cpp.o.d"
  "CMakeFiles/pm2_simnet.dir/params.cpp.o"
  "CMakeFiles/pm2_simnet.dir/params.cpp.o.d"
  "libpm2_simnet.a"
  "libpm2_simnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pm2_simnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
