file(REMOVE_RECURSE
  "CMakeFiles/pm2_sync.dir/barrier.cpp.o"
  "CMakeFiles/pm2_sync.dir/barrier.cpp.o.d"
  "CMakeFiles/pm2_sync.dir/completion_flag.cpp.o"
  "CMakeFiles/pm2_sync.dir/completion_flag.cpp.o.d"
  "CMakeFiles/pm2_sync.dir/mutex.cpp.o"
  "CMakeFiles/pm2_sync.dir/mutex.cpp.o.d"
  "CMakeFiles/pm2_sync.dir/rwlock.cpp.o"
  "CMakeFiles/pm2_sync.dir/rwlock.cpp.o.d"
  "CMakeFiles/pm2_sync.dir/semaphore.cpp.o"
  "CMakeFiles/pm2_sync.dir/semaphore.cpp.o.d"
  "CMakeFiles/pm2_sync.dir/spinlock.cpp.o"
  "CMakeFiles/pm2_sync.dir/spinlock.cpp.o.d"
  "libpm2_sync.a"
  "libpm2_sync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pm2_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
