# Empty dependencies file for pm2_sync.
# This may be replaced when dependencies are built.
