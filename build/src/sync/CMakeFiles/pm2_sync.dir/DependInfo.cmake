
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sync/barrier.cpp" "src/sync/CMakeFiles/pm2_sync.dir/barrier.cpp.o" "gcc" "src/sync/CMakeFiles/pm2_sync.dir/barrier.cpp.o.d"
  "/root/repo/src/sync/completion_flag.cpp" "src/sync/CMakeFiles/pm2_sync.dir/completion_flag.cpp.o" "gcc" "src/sync/CMakeFiles/pm2_sync.dir/completion_flag.cpp.o.d"
  "/root/repo/src/sync/mutex.cpp" "src/sync/CMakeFiles/pm2_sync.dir/mutex.cpp.o" "gcc" "src/sync/CMakeFiles/pm2_sync.dir/mutex.cpp.o.d"
  "/root/repo/src/sync/rwlock.cpp" "src/sync/CMakeFiles/pm2_sync.dir/rwlock.cpp.o" "gcc" "src/sync/CMakeFiles/pm2_sync.dir/rwlock.cpp.o.d"
  "/root/repo/src/sync/semaphore.cpp" "src/sync/CMakeFiles/pm2_sync.dir/semaphore.cpp.o" "gcc" "src/sync/CMakeFiles/pm2_sync.dir/semaphore.cpp.o.d"
  "/root/repo/src/sync/spinlock.cpp" "src/sync/CMakeFiles/pm2_sync.dir/spinlock.cpp.o" "gcc" "src/sync/CMakeFiles/pm2_sync.dir/spinlock.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/simthread/CMakeFiles/pm2_simthread.dir/DependInfo.cmake"
  "/root/repo/build/src/simmachine/CMakeFiles/pm2_simmachine.dir/DependInfo.cmake"
  "/root/repo/build/src/simcore/CMakeFiles/pm2_simcore.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
