file(REMOVE_RECURSE
  "libpm2_sync.a"
)
