# Empty compiler generated dependencies file for pm2_simmachine.
# This may be replaced when dependencies are built.
