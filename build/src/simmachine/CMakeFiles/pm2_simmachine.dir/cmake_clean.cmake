file(REMOVE_RECURSE
  "CMakeFiles/pm2_simmachine.dir/cost_book.cpp.o"
  "CMakeFiles/pm2_simmachine.dir/cost_book.cpp.o.d"
  "CMakeFiles/pm2_simmachine.dir/machine.cpp.o"
  "CMakeFiles/pm2_simmachine.dir/machine.cpp.o.d"
  "CMakeFiles/pm2_simmachine.dir/topology.cpp.o"
  "CMakeFiles/pm2_simmachine.dir/topology.cpp.o.d"
  "libpm2_simmachine.a"
  "libpm2_simmachine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pm2_simmachine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
