
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/simmachine/cost_book.cpp" "src/simmachine/CMakeFiles/pm2_simmachine.dir/cost_book.cpp.o" "gcc" "src/simmachine/CMakeFiles/pm2_simmachine.dir/cost_book.cpp.o.d"
  "/root/repo/src/simmachine/machine.cpp" "src/simmachine/CMakeFiles/pm2_simmachine.dir/machine.cpp.o" "gcc" "src/simmachine/CMakeFiles/pm2_simmachine.dir/machine.cpp.o.d"
  "/root/repo/src/simmachine/topology.cpp" "src/simmachine/CMakeFiles/pm2_simmachine.dir/topology.cpp.o" "gcc" "src/simmachine/CMakeFiles/pm2_simmachine.dir/topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/simcore/CMakeFiles/pm2_simcore.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
