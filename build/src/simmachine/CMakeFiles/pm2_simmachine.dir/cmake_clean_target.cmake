file(REMOVE_RECURSE
  "libpm2_simmachine.a"
)
