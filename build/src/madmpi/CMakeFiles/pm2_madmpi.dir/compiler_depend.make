# Empty compiler generated dependencies file for pm2_madmpi.
# This may be replaced when dependencies are built.
