file(REMOVE_RECURSE
  "CMakeFiles/pm2_madmpi.dir/madmpi.cpp.o"
  "CMakeFiles/pm2_madmpi.dir/madmpi.cpp.o.d"
  "libpm2_madmpi.a"
  "libpm2_madmpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pm2_madmpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
