file(REMOVE_RECURSE
  "libpm2_madmpi.a"
)
