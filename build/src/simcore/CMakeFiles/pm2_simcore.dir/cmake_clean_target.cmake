file(REMOVE_RECURSE
  "libpm2_simcore.a"
)
