
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/simcore/chrome_trace.cpp" "src/simcore/CMakeFiles/pm2_simcore.dir/chrome_trace.cpp.o" "gcc" "src/simcore/CMakeFiles/pm2_simcore.dir/chrome_trace.cpp.o.d"
  "/root/repo/src/simcore/engine.cpp" "src/simcore/CMakeFiles/pm2_simcore.dir/engine.cpp.o" "gcc" "src/simcore/CMakeFiles/pm2_simcore.dir/engine.cpp.o.d"
  "/root/repo/src/simcore/event_queue.cpp" "src/simcore/CMakeFiles/pm2_simcore.dir/event_queue.cpp.o" "gcc" "src/simcore/CMakeFiles/pm2_simcore.dir/event_queue.cpp.o.d"
  "/root/repo/src/simcore/random.cpp" "src/simcore/CMakeFiles/pm2_simcore.dir/random.cpp.o" "gcc" "src/simcore/CMakeFiles/pm2_simcore.dir/random.cpp.o.d"
  "/root/repo/src/simcore/stats.cpp" "src/simcore/CMakeFiles/pm2_simcore.dir/stats.cpp.o" "gcc" "src/simcore/CMakeFiles/pm2_simcore.dir/stats.cpp.o.d"
  "/root/repo/src/simcore/time.cpp" "src/simcore/CMakeFiles/pm2_simcore.dir/time.cpp.o" "gcc" "src/simcore/CMakeFiles/pm2_simcore.dir/time.cpp.o.d"
  "/root/repo/src/simcore/trace.cpp" "src/simcore/CMakeFiles/pm2_simcore.dir/trace.cpp.o" "gcc" "src/simcore/CMakeFiles/pm2_simcore.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
