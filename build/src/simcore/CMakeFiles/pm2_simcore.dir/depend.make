# Empty dependencies file for pm2_simcore.
# This may be replaced when dependencies are built.
