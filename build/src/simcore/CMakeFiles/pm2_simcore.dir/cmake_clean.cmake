file(REMOVE_RECURSE
  "CMakeFiles/pm2_simcore.dir/chrome_trace.cpp.o"
  "CMakeFiles/pm2_simcore.dir/chrome_trace.cpp.o.d"
  "CMakeFiles/pm2_simcore.dir/engine.cpp.o"
  "CMakeFiles/pm2_simcore.dir/engine.cpp.o.d"
  "CMakeFiles/pm2_simcore.dir/event_queue.cpp.o"
  "CMakeFiles/pm2_simcore.dir/event_queue.cpp.o.d"
  "CMakeFiles/pm2_simcore.dir/random.cpp.o"
  "CMakeFiles/pm2_simcore.dir/random.cpp.o.d"
  "CMakeFiles/pm2_simcore.dir/stats.cpp.o"
  "CMakeFiles/pm2_simcore.dir/stats.cpp.o.d"
  "CMakeFiles/pm2_simcore.dir/time.cpp.o"
  "CMakeFiles/pm2_simcore.dir/time.cpp.o.d"
  "CMakeFiles/pm2_simcore.dir/trace.cpp.o"
  "CMakeFiles/pm2_simcore.dir/trace.cpp.o.d"
  "libpm2_simcore.a"
  "libpm2_simcore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pm2_simcore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
