file(REMOVE_RECURSE
  "libpm2_pioman.a"
)
