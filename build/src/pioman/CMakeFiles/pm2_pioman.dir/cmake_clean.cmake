file(REMOVE_RECURSE
  "CMakeFiles/pm2_pioman.dir/server.cpp.o"
  "CMakeFiles/pm2_pioman.dir/server.cpp.o.d"
  "CMakeFiles/pm2_pioman.dir/tasklet.cpp.o"
  "CMakeFiles/pm2_pioman.dir/tasklet.cpp.o.d"
  "libpm2_pioman.a"
  "libpm2_pioman.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pm2_pioman.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
