# Empty dependencies file for pm2_pioman.
# This may be replaced when dependencies are built.
