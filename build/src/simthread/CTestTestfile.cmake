# CMake generated Testfile for 
# Source directory: /root/repo/src/simthread
# Build directory: /root/repo/build/src/simthread
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
