file(REMOVE_RECURSE
  "libpm2_simthread.a"
)
