file(REMOVE_RECURSE
  "CMakeFiles/pm2_simthread.dir/fiber.cpp.o"
  "CMakeFiles/pm2_simthread.dir/fiber.cpp.o.d"
  "CMakeFiles/pm2_simthread.dir/scheduler.cpp.o"
  "CMakeFiles/pm2_simthread.dir/scheduler.cpp.o.d"
  "libpm2_simthread.a"
  "libpm2_simthread.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pm2_simthread.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
