# Empty dependencies file for pm2_simthread.
# This may be replaced when dependencies are built.
