# Empty dependencies file for pm2_nmad.
# This may be replaced when dependencies are built.
