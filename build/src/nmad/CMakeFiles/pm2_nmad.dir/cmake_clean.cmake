file(REMOVE_RECURSE
  "CMakeFiles/pm2_nmad.dir/cluster.cpp.o"
  "CMakeFiles/pm2_nmad.dir/cluster.cpp.o.d"
  "CMakeFiles/pm2_nmad.dir/core.cpp.o"
  "CMakeFiles/pm2_nmad.dir/core.cpp.o.d"
  "CMakeFiles/pm2_nmad.dir/driver.cpp.o"
  "CMakeFiles/pm2_nmad.dir/driver.cpp.o.d"
  "CMakeFiles/pm2_nmad.dir/locking.cpp.o"
  "CMakeFiles/pm2_nmad.dir/locking.cpp.o.d"
  "CMakeFiles/pm2_nmad.dir/pack.cpp.o"
  "CMakeFiles/pm2_nmad.dir/pack.cpp.o.d"
  "CMakeFiles/pm2_nmad.dir/strategy.cpp.o"
  "CMakeFiles/pm2_nmad.dir/strategy.cpp.o.d"
  "CMakeFiles/pm2_nmad.dir/wire_format.cpp.o"
  "CMakeFiles/pm2_nmad.dir/wire_format.cpp.o.d"
  "libpm2_nmad.a"
  "libpm2_nmad.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pm2_nmad.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
