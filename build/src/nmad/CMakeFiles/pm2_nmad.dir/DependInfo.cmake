
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nmad/cluster.cpp" "src/nmad/CMakeFiles/pm2_nmad.dir/cluster.cpp.o" "gcc" "src/nmad/CMakeFiles/pm2_nmad.dir/cluster.cpp.o.d"
  "/root/repo/src/nmad/core.cpp" "src/nmad/CMakeFiles/pm2_nmad.dir/core.cpp.o" "gcc" "src/nmad/CMakeFiles/pm2_nmad.dir/core.cpp.o.d"
  "/root/repo/src/nmad/driver.cpp" "src/nmad/CMakeFiles/pm2_nmad.dir/driver.cpp.o" "gcc" "src/nmad/CMakeFiles/pm2_nmad.dir/driver.cpp.o.d"
  "/root/repo/src/nmad/locking.cpp" "src/nmad/CMakeFiles/pm2_nmad.dir/locking.cpp.o" "gcc" "src/nmad/CMakeFiles/pm2_nmad.dir/locking.cpp.o.d"
  "/root/repo/src/nmad/pack.cpp" "src/nmad/CMakeFiles/pm2_nmad.dir/pack.cpp.o" "gcc" "src/nmad/CMakeFiles/pm2_nmad.dir/pack.cpp.o.d"
  "/root/repo/src/nmad/strategy.cpp" "src/nmad/CMakeFiles/pm2_nmad.dir/strategy.cpp.o" "gcc" "src/nmad/CMakeFiles/pm2_nmad.dir/strategy.cpp.o.d"
  "/root/repo/src/nmad/wire_format.cpp" "src/nmad/CMakeFiles/pm2_nmad.dir/wire_format.cpp.o" "gcc" "src/nmad/CMakeFiles/pm2_nmad.dir/wire_format.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pioman/CMakeFiles/pm2_pioman.dir/DependInfo.cmake"
  "/root/repo/build/src/simnet/CMakeFiles/pm2_simnet.dir/DependInfo.cmake"
  "/root/repo/build/src/sync/CMakeFiles/pm2_sync.dir/DependInfo.cmake"
  "/root/repo/build/src/simthread/CMakeFiles/pm2_simthread.dir/DependInfo.cmake"
  "/root/repo/build/src/simmachine/CMakeFiles/pm2_simmachine.dir/DependInfo.cmake"
  "/root/repo/build/src/simcore/CMakeFiles/pm2_simcore.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
