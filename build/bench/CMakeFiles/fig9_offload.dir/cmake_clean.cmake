file(REMOVE_RECURSE
  "CMakeFiles/fig9_offload.dir/fig9_offload.cpp.o"
  "CMakeFiles/fig9_offload.dir/fig9_offload.cpp.o.d"
  "fig9_offload"
  "fig9_offload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_offload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
