# Empty dependencies file for fig9_offload.
# This may be replaced when dependencies are built.
