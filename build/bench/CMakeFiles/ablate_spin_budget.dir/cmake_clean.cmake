file(REMOVE_RECURSE
  "CMakeFiles/ablate_spin_budget.dir/ablate_spin_budget.cpp.o"
  "CMakeFiles/ablate_spin_budget.dir/ablate_spin_budget.cpp.o.d"
  "ablate_spin_budget"
  "ablate_spin_budget.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_spin_budget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
