# Empty compiler generated dependencies file for ablate_spin_budget.
# This may be replaced when dependencies are built.
