# Empty compiler generated dependencies file for fig6_pioman.
# This may be replaced when dependencies are built.
