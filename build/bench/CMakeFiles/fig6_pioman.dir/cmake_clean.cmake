file(REMOVE_RECURSE
  "CMakeFiles/fig6_pioman.dir/fig6_pioman.cpp.o"
  "CMakeFiles/fig6_pioman.dir/fig6_pioman.cpp.o.d"
  "fig6_pioman"
  "fig6_pioman.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_pioman.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
