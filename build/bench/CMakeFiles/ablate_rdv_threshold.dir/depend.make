# Empty dependencies file for ablate_rdv_threshold.
# This may be replaced when dependencies are built.
