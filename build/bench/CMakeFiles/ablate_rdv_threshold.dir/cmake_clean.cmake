file(REMOVE_RECURSE
  "CMakeFiles/ablate_rdv_threshold.dir/ablate_rdv_threshold.cpp.o"
  "CMakeFiles/ablate_rdv_threshold.dir/ablate_rdv_threshold.cpp.o.d"
  "ablate_rdv_threshold"
  "ablate_rdv_threshold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_rdv_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
