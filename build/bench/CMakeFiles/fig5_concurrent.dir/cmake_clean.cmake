file(REMOVE_RECURSE
  "CMakeFiles/fig5_concurrent.dir/fig5_concurrent.cpp.o"
  "CMakeFiles/fig5_concurrent.dir/fig5_concurrent.cpp.o.d"
  "fig5_concurrent"
  "fig5_concurrent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_concurrent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
