# Empty dependencies file for fig5_concurrent.
# This may be replaced when dependencies are built.
