# Empty dependencies file for ablate_collectives.
# This may be replaced when dependencies are built.
