file(REMOVE_RECURSE
  "CMakeFiles/ablate_collectives.dir/ablate_collectives.cpp.o"
  "CMakeFiles/ablate_collectives.dir/ablate_collectives.cpp.o.d"
  "ablate_collectives"
  "ablate_collectives.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_collectives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
