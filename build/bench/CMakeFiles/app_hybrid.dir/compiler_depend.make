# Empty compiler generated dependencies file for app_hybrid.
# This may be replaced when dependencies are built.
