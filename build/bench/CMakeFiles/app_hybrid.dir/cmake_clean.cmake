file(REMOVE_RECURSE
  "CMakeFiles/app_hybrid.dir/app_hybrid.cpp.o"
  "CMakeFiles/app_hybrid.dir/app_hybrid.cpp.o.d"
  "app_hybrid"
  "app_hybrid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/app_hybrid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
