file(REMOVE_RECURSE
  "libpm2_bench_common.a"
)
