file(REMOVE_RECURSE
  "CMakeFiles/pm2_bench_common.dir/common/harness.cpp.o"
  "CMakeFiles/pm2_bench_common.dir/common/harness.cpp.o.d"
  "libpm2_bench_common.a"
  "libpm2_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pm2_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
