# Empty compiler generated dependencies file for pm2_bench_common.
# This may be replaced when dependencies are built.
