file(REMOVE_RECURSE
  "CMakeFiles/ablate_strategy.dir/ablate_strategy.cpp.o"
  "CMakeFiles/ablate_strategy.dir/ablate_strategy.cpp.o.d"
  "ablate_strategy"
  "ablate_strategy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_strategy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
