# Empty dependencies file for ablate_strategy.
# This may be replaced when dependencies are built.
