# Empty compiler generated dependencies file for sec33_corewaste.
# This may be replaced when dependencies are built.
