file(REMOVE_RECURSE
  "CMakeFiles/sec33_corewaste.dir/sec33_corewaste.cpp.o"
  "CMakeFiles/sec33_corewaste.dir/sec33_corewaste.cpp.o.d"
  "sec33_corewaste"
  "sec33_corewaste.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec33_corewaste.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
