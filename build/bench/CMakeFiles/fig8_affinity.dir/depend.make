# Empty dependencies file for fig8_affinity.
# This may be replaced when dependencies are built.
