file(REMOVE_RECURSE
  "CMakeFiles/fig8_affinity.dir/fig8_affinity.cpp.o"
  "CMakeFiles/fig8_affinity.dir/fig8_affinity.cpp.o.d"
  "fig8_affinity"
  "fig8_affinity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_affinity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
