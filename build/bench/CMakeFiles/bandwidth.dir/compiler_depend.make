# Empty compiler generated dependencies file for bandwidth.
# This may be replaced when dependencies are built.
