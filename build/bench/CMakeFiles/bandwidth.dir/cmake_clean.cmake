file(REMOVE_RECURSE
  "CMakeFiles/bandwidth.dir/bandwidth.cpp.o"
  "CMakeFiles/bandwidth.dir/bandwidth.cpp.o.d"
  "bandwidth"
  "bandwidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
