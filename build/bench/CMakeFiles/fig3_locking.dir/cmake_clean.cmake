file(REMOVE_RECURSE
  "CMakeFiles/fig3_locking.dir/fig3_locking.cpp.o"
  "CMakeFiles/fig3_locking.dir/fig3_locking.cpp.o.d"
  "fig3_locking"
  "fig3_locking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_locking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
