# Empty dependencies file for fig3_locking.
# This may be replaced when dependencies are built.
