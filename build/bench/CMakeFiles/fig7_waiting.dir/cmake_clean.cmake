file(REMOVE_RECURSE
  "CMakeFiles/fig7_waiting.dir/fig7_waiting.cpp.o"
  "CMakeFiles/fig7_waiting.dir/fig7_waiting.cpp.o.d"
  "fig7_waiting"
  "fig7_waiting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_waiting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
