# Empty dependencies file for fig7_waiting.
# This may be replaced when dependencies are built.
