# Empty dependencies file for multirail_transfer.
# This may be replaced when dependencies are built.
