file(REMOVE_RECURSE
  "CMakeFiles/madmpi_ring.dir/madmpi_ring.cpp.o"
  "CMakeFiles/madmpi_ring.dir/madmpi_ring.cpp.o.d"
  "madmpi_ring"
  "madmpi_ring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/madmpi_ring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
