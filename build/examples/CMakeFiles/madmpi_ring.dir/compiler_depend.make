# Empty compiler generated dependencies file for madmpi_ring.
# This may be replaced when dependencies are built.
