file(REMOVE_RECURSE
  "CMakeFiles/hybrid_stencil.dir/hybrid_stencil.cpp.o"
  "CMakeFiles/hybrid_stencil.dir/hybrid_stencil.cpp.o.d"
  "hybrid_stencil"
  "hybrid_stencil.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hybrid_stencil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
