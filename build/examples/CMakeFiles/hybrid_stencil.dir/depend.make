# Empty dependencies file for hybrid_stencil.
# This may be replaced when dependencies are built.
