# Empty compiler generated dependencies file for overlap_pipeline.
# This may be replaced when dependencies are built.
