file(REMOVE_RECURSE
  "CMakeFiles/overlap_pipeline.dir/overlap_pipeline.cpp.o"
  "CMakeFiles/overlap_pipeline.dir/overlap_pipeline.cpp.o.d"
  "overlap_pipeline"
  "overlap_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overlap_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
