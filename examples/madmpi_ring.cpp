// Mad-MPI collectives on a ring of nodes.
//
// Demonstrates the MPI-flavoured interface (paper Sec. 2: "NEWMADELEINE
// implements ... a MPI interface called Mad-MPI"): ring-neighbour
// exchanges via sendrecv, then the built-in collectives.
#include <cstdio>
#include <vector>

#include "madmpi/madmpi.hpp"

using namespace pm2;

int main() {
  constexpr int kNodes = 6;
  nm::ClusterConfig cfg;
  cfg.nodes = kNodes;

  nm::Cluster world(cfg);

  madmpi::launch(world, [&world](madmpi::Comm comm) {
    const int r = comm.rank();
    const int n = comm.size();
    const int right = (r + 1) % n;
    const int left = (r - 1 + n) % n;

    // 1. Ring shift: pass the rank around the full circle.
    int token = r;
    for (int step = 0; step < n; ++step) {
      int incoming = -1;
      comm.sendrecv(right, 1, &token, sizeof(token), left, 1, &incoming,
                    sizeof(incoming));
      token = incoming;
    }
    // After n hops everyone has their own rank back.
    if (token != r) std::printf("rank %d: ring shift FAILED\n", r);

    comm.barrier();

    // 2. Collectives: the root broadcasts a vector, everyone contributes
    //    to a sum, and rank 0 gathers the per-rank contributions.
    std::vector<double> weights(4);
    if (r == 0) weights = {0.1, 0.2, 0.3, 0.4};
    comm.bcast(0, weights.data(), weights.size() * sizeof(double));

    double contribution = 0;
    for (double w : weights) contribution += w * (r + 1);
    double total = contribution;
    comm.allreduce_sum(&total, 1);

    std::vector<double> all(static_cast<std::size_t>(n));
    comm.gather(0, &contribution, sizeof(double), r == 0 ? all.data() : nullptr);

    if (r == 0) {
      std::printf("weights broadcast, per-rank contributions gathered:\n");
      for (int i = 0; i < n; ++i) {
        std::printf("  rank %d: %.2f\n", i, all[static_cast<std::size_t>(i)]);
      }
      std::printf("allreduce total: %.2f (expected %.2f)\n", total,
                  1.0 * (n * (n + 1) / 2));
      std::printf("virtual time: %.3f ms\n", comm.wtime() * 1e3);
    }
  });

  world.run();
  return 0;
}
